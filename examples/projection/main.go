// Projection: demonstrates the pass-by-projection semantics (§VI) — the
// reverse-axis Problem 1 of the paper solved by runtime XML projection, and
// the message-size reduction on a document with untouched bulk.
package main

import (
	"fmt"
	"log"
	"strings"

	"distxq"
)

func main() {
	net := distxq.NewNetwork()
	remote := net.AddPeer("peer")
	filler := strings.Repeat("<detail>not needed by the query</detail>", 40)
	if err := remote.LoadXML("catalog.xml",
		`<catalog><section name="db"><book id="b1"><title>XQuery</title>`+filler+
			`</book><book id="b2"><title>XML</title>`+filler+`</book></section></catalog>`); err != nil {
		log.Fatal(err)
	}
	local := net.AddPeer("local")

	// Problem 1 (Table I): navigating UP from a remotely produced node.
	// The explicit execute-at fixes the distribution boundary, so the
	// parent:: step runs locally on the shipped node. Under by-value and
	// by-fragment it finds nothing — the response message only carries the
	// book subtree. By-projection detects the parent::section returned path
	// and ships the ancestor chain (Fig. 5), while pruning the bulk.
	query := `
	declare function pick() as node()*
	{ doc("xrpc://peer/catalog.xml")//book[@id = "b2"] };
	let $b := execute at {"peer"} { pick() }
	return ($b/title/text(), $b/parent::section/@name)`

	for _, strat := range []distxq.Strategy{distxq.ByValue, distxq.ByFragment, distxq.ByProjection} {
		sess := net.NewSession(local, strat)
		res, rep, err := sess.Query(query)
		if err != nil {
			log.Fatalf("%s: %v", strat, err)
		}
		fmt.Printf("%-20s result=%-30q msgs=%5dB\n", strat, distxq.Serialize(res), rep.MsgBytes)
	}
	fmt.Println("\nonly by-projection returns the section name (db); it also prunes the")
	fmt.Println("40 <detail> elements per book from the response, shipping just the")
	fmt.Println("title and the ancestor chain the parent:: step needs (Fig. 5).")
}
