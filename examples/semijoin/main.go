// Semijoin: the paper's Q2 scenario — students at peer A, course results at
// peer B — executed under all four strategies, showing how pass-by-fragment
// achieves the distributed semijoin plan and what each strategy transfers.
package main

import (
	"fmt"
	"log"

	"distxq"
)

func main() {
	net := distxq.NewNetwork()
	a := net.AddPeer("A")
	b := net.AddPeer("B")
	local := net.AddPeer("local")

	students := `<people>
		<person><name>prof.lee</name><tutor>none</tutor><id>s1</id></person>
		<person><name>kim</name><tutor>prof.lee</tutor><id>s2</id></person>
		<person><name>jan</name><tutor>prof.lee</tutor><id>s3</id></person>
		<person><name>mia</name><tutor>kim</tutor><id>s4</id></person>
	</people>`
	course := `<enroll>
		<exam id="s1"><grade>A</grade></exam>
		<exam id="s2"><grade>B</grade></exam>
		<exam id="s3"><grade>C</grade></exam>
		<exam id="s4"><grade>A</grade></exam>
	</enroll>`
	if err := a.LoadXML("students.xml", students); err != nil {
		log.Fatal(err)
	}
	if err := b.LoadXML("course42.xml", course); err != nil {
		log.Fatal(err)
	}

	// Q2 (Table III, normalized): grades in course42 of students whose tutor
	// is also a student.
	q2 := `
	(let $t := (let $s := doc("xrpc://A/students.xml")/child::people/child::person
	            return for $x in $s return
	                   if ($x/child::tutor = $s/child::name) then $x else ())
	 return for $e in (let $c := doc("xrpc://B/course42.xml")
	                   return $c/child::enroll/child::exam)
	        return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`

	for _, strat := range []distxq.Strategy{
		distxq.DataShipping, distxq.ByValue, distxq.ByFragment, distxq.ByProjection,
	} {
		sess := net.NewSession(local, strat)
		res, rep, err := sess.Query(q2)
		if err != nil {
			log.Fatalf("%s: %v", strat, err)
		}
		fmt.Printf("%-20s result=%-60s docs=%5dB msgs=%5dB\n",
			strat, distxq.Serialize(res), rep.DocBytes, rep.MsgBytes)
	}

	fmt.Println("\ndecomposed form under pass-by-fragment (the Qf2 semijoin of Table IV):")
	plan, err := distxq.ExplainDecomposition(q2, distxq.ByFragment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
}
