// Failover: a four-peer sharded XMark federation with every shard
// replicated x2, queried while peers die. Scenario one kills a peer
// outright (a dead host); scenario two kills it mid-query, after it has
// already streamed part of its answer. Both times the scatter query
// completes with results byte-identical to the healthy run: the failed lane
// re-issues to the shard's replica, and the replay filter suppresses the
// increments the dead peer had already delivered.
package main

import (
	"errors"
	"fmt"
	"log"

	"distxq"
	"distxq/internal/xrpc"
)

// dieMidStream wraps a peer's XRPC endpoint: it answers normally until its
// fuse burns, then every stream dies after `frames` chunk frames — the
// injected "power loss mid-query".
type dieMidStream struct {
	*xrpc.Server
	frames int
}

func (d *dieMidStream) HandleStream(request []byte, emit func([]byte) error) error {
	n := 0
	return d.Server.HandleStream(request, func(frame []byte) error {
		if n >= d.frames {
			return errors.New("injected: peer lost power mid-stream")
		}
		n++
		return emit(frame)
	})
}

func main() {
	const shards = 4
	cfg := distxq.XMarkDefaultConfig()

	net := distxq.NewNetwork()
	var primaries []string
	var replicas [][]string
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		rname := fmt.Sprintf("rep%d", i+1)
		// Primary and replica hold byte-identical copies of shard i under
		// the same peer-local path.
		p := net.AddPeer(name)
		p.AddDoc("xmk.xml", distxq.XMarkPeopleShard(cfg, i, shards, "xrpc://"+name+"/xmk.xml"))
		p.Server.ChunkItems = 4 // small chunks so streams span many frames
		r := net.AddPeer(rname)
		r.AddDoc("xmk.xml", distxq.XMarkPeopleShard(cfg, i, shards, "xrpc://"+rname+"/xmk.xml"))
		r.Server.ChunkItems = 4
		primaries = append(primaries, name)
		replicas = append(replicas, []string{rname})
	}
	local := net.AddPeer("local")

	shardMap := distxq.XMarkPeopleShardMap(primaries)
	shardMap.Replicas = replicas
	query := distxq.ScatterQuery(primaries)

	run := func(label string) (string, *distxq.Report) {
		sess := net.NewSession(local, distxq.ByFragment).UseRetry(&distxq.RetryPolicy{})
		sess.Replicas = shardMap.ReplicaSets()
		sess.Streamed = true
		res, rep, err := sess.Query(query)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		return distxq.Serialize(res), rep
	}

	healthy, _ := run("healthy")
	fmt.Printf("healthy run: %d bytes of results from %d shards\n\n", len(healthy), shards)

	// Scenario 1: peer3 is down before the query starts — a dead host whose
	// connections fail immediately.
	net.KillPeer("peer3")
	got, rep := run("peer3 dead")
	fmt.Printf("peer3 killed:     identical=%v retries=%d winner=%s\n",
		got == healthy, rep.Retries, rep.WinnerReplica["peer3"])
	net.RevivePeer("peer3")

	// Scenario 2: peer2 dies mid-query, after streaming two chunk frames of
	// its answer. The replica's replayed prefix is suppressed, so nothing
	// duplicates and order is preserved.
	p2, _ := net.Peer("peer2")
	net.Transport.Register("peer2", &dieMidStream{Server: p2.Server, frames: 2})
	got, rep = run("peer2 mid-stream death")
	fmt.Printf("peer2 mid-query:  identical=%v retries=%d winner=%s\n",
		got == healthy, rep.Retries, rep.WinnerReplica["peer2"])
	net.Transport.Register("peer2", p2.Server) // heal

	if got != healthy {
		log.Fatal("failover runs diverged from the healthy result")
	}
	fmt.Println("\nall failover runs returned byte-identical results")
}
