// Quickstart: a two-peer federation, one remote document, one decomposed
// query. Demonstrates the public distxq API end to end.
package main

import (
	"fmt"
	"log"

	"distxq"
)

func main() {
	// A federation of in-process peers ("example.org" owns the data).
	net := distxq.NewNetwork()
	remote := net.AddPeer("example.org")
	err := remote.LoadXML("depts.xml", `
		<depts>
			<dept name="hr"><head>Ann</head><budget>120000</budget></dept>
			<dept name="it"><head>Bob</head><budget>480000</budget></dept>
			<dept name="legal"><head>Cyd</head><budget>310000</budget></dept>
		</depts>`)
	if err != nil {
		log.Fatal(err)
	}
	local := net.AddPeer("local")

	// The intro example of the paper: push a predicate to the peer owning
	// depts.xml instead of fetching the whole document. The remote call in
	// loop position triggers Bulk RPC: one message carries all iterations.
	query := `
	declare function fcn($n as xs:string) as item()*
	{ if ($n = doc("xrpc://example.org/depts.xml")//dept/@name)
	  then concat($n, ": known department") else concat($n, ": unknown") };
	for $e in ("it", "catering", "legal")
	return execute at { "example.org" } { fcn($e) }`

	sess := net.NewSession(local, distxq.ByFragment)
	res, rep, err := sess.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(distxq.Serialize(res))
	fmt.Printf("transferred %d message bytes in %d exchange(s) (bulk RPC), no documents shipped (%d B)\n",
		rep.MsgBytes, rep.Requests, rep.DocBytes)

	// Show the rewrite a fully automatic decomposition would produce.
	plan, err := distxq.ExplainDecomposition(
		`doc("xrpc://example.org/depts.xml")//dept[budget > 200000]/@name`,
		distxq.ByProjection)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nautomatic decomposition of a filter query:")
	fmt.Println(plan)
}
