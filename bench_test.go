// Benchmarks regenerating every figure of the paper's evaluation (§VII).
// Run with: go test -bench=. -benchmem
//
// Each benchmark reports the figure's metric via b.ReportMetric so the
// harness output reads like the paper's plots:
//
//	Figure 7  → bytes/query per strategy (bandwidth usage)
//	Figure 8  → per-phase ms at the largest size (time breakdown)
//	Figure 9  → total simulated ms per strategy (execution time)
//	Figure 10 → projected-document bytes (projection precision)
//	Figure 11 → projection ms (projection execution time)
//
// cmd/figures prints the same data as tables; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package distxq_test

import (
	"fmt"
	"testing"

	"distxq/internal/bench"
	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/netsim"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xq"
)

const benchDocBytes = 1 << 19 // 512 KiB combined; scale via cmd/figures -size

// BenchmarkFig7Bandwidth measures bytes moved per query for each strategy.
func BenchmarkFig7Bandwidth(b *testing.B) {
	for _, strat := range bench.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			f := bench.NewFixture(benchDocBytes)
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := f.Run(strat)
				if err != nil {
					b.Fatal(err)
				}
				bytes = rep.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "transfer-bytes/query")
		})
	}
}

// BenchmarkFig8Breakdown measures the per-phase time split per strategy.
func BenchmarkFig8Breakdown(b *testing.B) {
	for _, strat := range bench.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			f := bench.NewFixture(benchDocBytes)
			var shred, local, serde, remote, network int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := f.Run(strat)
				if err != nil {
					b.Fatal(err)
				}
				shred, local, serde = rep.ShredNS, rep.LocalExecNS, rep.SerdeNS
				remote, network = rep.RemoteExecNS, rep.NetworkNS
			}
			b.ReportMetric(float64(shred)/1e6, "shred-ms")
			b.ReportMetric(float64(local)/1e6, "localexec-ms")
			b.ReportMetric(float64(serde)/1e6, "serde-ms")
			b.ReportMetric(float64(remote)/1e6, "remoteexec-ms")
			b.ReportMetric(float64(network)/1e6, "network-ms")
		})
	}
}

// BenchmarkFig9ExecTime measures total simulated execution time per strategy
// across two document sizes (the scaling series of Figure 9).
func BenchmarkFig9ExecTime(b *testing.B) {
	for _, size := range []int64{benchDocBytes / 2, benchDocBytes} {
		for _, strat := range bench.Strategies {
			name := strat.String() + "/" + byteLabel(size)
			b.Run(name, func(b *testing.B) {
				f := bench.NewFixture(size)
				var total int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := f.Run(strat)
					if err != nil {
						b.Fatal(err)
					}
					total = rep.TotalNS()
				}
				b.ReportMetric(float64(total)/1e6, "simulated-ms/query")
			})
		}
	}
}

// BenchmarkFig10Precision measures projected-document sizes for the
// compile-time and runtime projection techniques.
func BenchmarkFig10Precision(b *testing.B) {
	b.Run("sweep", func(b *testing.B) {
		var rows []bench.ProjRow
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = bench.Fig10and11Projection([]int64{benchDocBytes / 2})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows[0].CompileTimeSize), "compiletime-bytes")
		b.ReportMetric(float64(rows[0].RuntimeSize), "runtime-bytes")
		b.ReportMetric(float64(rows[0].CompileTimeSize)/float64(rows[0].RuntimeSize), "precision-ratio")
	})
}

// BenchmarkFig11ProjTime measures the two projection techniques' runtime.
func BenchmarkFig11ProjTime(b *testing.B) {
	cfg := xmark.ForSize(benchDocBytes)
	doc := xmark.PeopleDocument(cfg, "xmk.xml")
	personPath, _ := projection.ParsePath(
		`child::site/child::people/child::person/descendant-or-self::node()`)
	b.Run("compile-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := projection.CompileTimeProject(nil,
				projection.PathSet{personPath}, doc, projection.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("runtime", func(b *testing.B) {
		var selected []*xdm.Node
		doc.Root.WalkDescendants(func(n *xdm.Node) bool {
			if n.Kind == xdm.ElementNode && n.Name == "age" && n.StringValue() > "45" {
				selected = append(selected, n.Parent.Parent)
			}
			return true
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := projection.RuntimeProject(selected, nil, nil, doc,
				projection.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1Semantics exercises the Q1 problem cases of Table I under
// each passing semantics (the paper's motivating example as a micro-bench).
func BenchmarkTable1Semantics(b *testing.B) {
	src := `
	declare function makenodes() as node() { <a><b><c/></b></a>/b };
	let $bc := execute at {"peer"} { makenodes() }
	return count($bc/parent::a)`
	for _, strat := range []core.Strategy{core.ByValue, core.ByFragment, core.ByProjection} {
		b.Run(strat.String(), func(b *testing.B) {
			f := newQ1Fixture()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.Net.NewSession(f.Local, strat).Query(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteLabel(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}

func newQ1Fixture() *bench.Fixture {
	f := bench.NewFixture(1 << 14)
	f.Net.AddPeer("peer")
	return f
}

// BenchmarkAblationCodeMotion compares the Qf2 message sizes with and
// without distributed code motion (the §IV optimization): moving the
// $t/child::id extraction to the caller ships strings instead of nodes.
func BenchmarkAblationCodeMotion(b *testing.B) {
	for _, withMotion := range []bool{false, true} {
		name := "without-motion"
		if withMotion {
			name = "with-motion"
		}
		b.Run(name, func(b *testing.B) {
			f := bench.NewFixture(benchDocBytes / 4)
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q, err := xq.ParseQuery(f.Query)
				if err != nil {
					b.Fatal(err)
				}
				plan, err := core.Decompose(q, core.ByFragment,
					core.Options{SinkLets: true, CodeMotion: withMotion})
				if err != nil {
					b.Fatal(err)
				}
				sess := f.Net.NewSession(f.Local, core.ByFragment)
				_, rep, err := sess.ExecutePlan(plan)
				if err != nil {
					b.Fatal(err)
				}
				bytes = rep.MsgBytes
			}
			b.ReportMetric(float64(bytes), "msg-bytes/query")
		})
	}
}

// BenchmarkAblationBulkRPC compares a remote-call-in-loop with Bulk RPC (one
// message) against the same workload issued as individual calls.
func BenchmarkAblationBulkRPC(b *testing.B) {
	bulk := `
	declare function f($n as xs:string) as item()*
	{ count(doc("xrpc://peer1/xmk.xml")//person[attribute::id = $n]) };
	for $i in ("person0","person1","person2","person3","person4","person5","person6","person7")
	return execute at {"peer1"} { f($i) }`
	single := `
	declare function f($n as xs:string) as item()*
	{ count(doc("xrpc://peer1/xmk.xml")//person[attribute::id = $n]) };
	(execute at {"peer1"} { f("person0") }, execute at {"peer1"} { f("person1") },
	 execute at {"peer1"} { f("person2") }, execute at {"peer1"} { f("person3") },
	 execute at {"peer1"} { f("person4") }, execute at {"peer1"} { f("person5") },
	 execute at {"peer1"} { f("person6") }, execute at {"peer1"} { f("person7") })`
	for _, tc := range []struct{ name, src string }{{"bulk", bulk}, {"single-calls", single}} {
		b.Run(tc.name, func(b *testing.B) {
			f := bench.NewFixture(1 << 16)
			var requests int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := f.Net.NewSession(f.Local, core.ByFragment)
				_, rep, err := sess.Query(tc.src)
				if err != nil {
					b.Fatal(err)
				}
				requests = rep.Requests
			}
			b.ReportMetric(float64(requests), "messages/query")
		})
	}
}

// BenchmarkEngineLocal measures raw local evaluation throughput (substrate
// speed, not a paper figure): the query is parsed and planned once — the way
// the service's plan cache runs it — and each iteration is pure execution,
// under the tree-walker and under the compiled closure chains.
func BenchmarkEngineLocal(b *testing.B) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Items, cfg.Auctions = 100, 50, 0
	doc := xmark.PeopleDocument(cfg, "xmk.xml")
	const src = `count(doc("local-people")//person[descendant::age > 30])`
	for _, mode := range []struct {
		name    string
		compile bool
	}{{"tree-walk", false}, {"compiled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
				if uri == "local-people" {
					return doc, nil
				}
				return nil, fmt.Errorf("no such document %q", uri)
			}))
			eng.Options.Compile = mode.compile
			q, err := xq.ParseQuery(src)
			if err != nil {
				b.Fatal(err)
			}
			// Warm once: normalization (and, compiled, lowering) happens here
			// and amortizes across every later execution of the cached plan.
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWAN reruns the Figure 9 comparison on the WAN link model
// (20 ms latency, 50 Mb/s), the setting where the paper notes "queries over
// remote XML documents [would] profit even more from reduced data size":
// the fragment/projection gap over data-shipping widens dramatically.
func BenchmarkAblationWAN(b *testing.B) {
	for _, model := range []struct {
		name string
		m    netsim.Model
	}{
		{"gigabit-lan", netsim.GigabitLAN()},
		{"wan", netsim.WAN()},
	} {
		for _, strat := range bench.Strategies {
			b.Run(model.name+"/"+strat.String(), func(b *testing.B) {
				// Larger documents: the WAN effect is about bandwidth-bound
				// transfers, not per-message latency.
				f := bench.NewFixture(benchDocBytes * 4)
				f.Net.Model = model.m
				var total int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := f.Run(strat)
					if err != nil {
						b.Fatal(err)
					}
					total = rep.TotalNS()
				}
				b.ReportMetric(float64(total)/1e6, "simulated-ms/query")
			})
		}
	}
}

// BenchmarkScatterGather measures the sharded-people scatter query over 4
// peers, concurrent wave vs. the sequential one-peer-at-a-time baseline; the
// reported metric is the simulated network speedup of overlapped dispatch.
func BenchmarkScatterGather(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{{"concurrent", false}, {"sequential", true}} {
		b.Run(mode.name, func(b *testing.B) {
			f := bench.NewScatterFixture(benchDocBytes, 4)
			var netNS, serialNS int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := f.Run(core.ByFragment, mode.sequential)
				if err != nil {
					b.Fatal(err)
				}
				netNS, serialNS = rep.NetworkNS, rep.SerialNetworkNS
			}
			b.ReportMetric(float64(netNS)/1e6, "net-ms/query")
			if !mode.sequential && netNS > 0 {
				b.ReportMetric(float64(serialNS)/float64(netNS), "net-speedup")
			}
		})
	}
}
