package distxq_test

import (
	"strings"
	"testing"

	"distxq"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	net := distxq.NewNetwork()
	remote := net.AddPeer("example.org")
	if err := remote.LoadXML("depts.xml",
		`<depts><dept name="hr"/><dept name="it"/></depts>`); err != nil {
		t.Fatal(err)
	}
	local := net.AddPeer("local")
	for _, strat := range []distxq.Strategy{
		distxq.DataShipping, distxq.ByValue, distxq.ByFragment, distxq.ByProjection,
	} {
		sess := net.NewSession(local, strat)
		res, rep, err := sess.Query(`doc("xrpc://example.org/depts.xml")//dept/@name`)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if got := distxq.Serialize(res); got != `name="hr" name="it"` {
			t.Errorf("%v: result = %s", strat, got)
		}
		if rep.TotalBytes() == 0 {
			t.Errorf("%v: nothing transferred?", strat)
		}
	}
}

func TestFacadeExplain(t *testing.T) {
	out, err := distxq.ExplainDecomposition(
		`doc("xrpc://a/d.xml")//x`, distxq.ByFragment)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `execute at {"a"}`) {
		t.Errorf("explain output lacks execute at: %s", out)
	}
	if _, err := distxq.ExplainDecomposition(`((`, distxq.ByFragment); err == nil {
		t.Error("syntax errors must surface")
	}
}

func TestFacadeParseQuery(t *testing.T) {
	if err := distxq.ParseQuery(`1 + 1`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := distxq.ParseQuery(`for $x return`); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestFacadeLocalEngine(t *testing.T) {
	eng := distxq.LocalEngine(map[string]string{"d.xml": `<r><v>42</v></r>`})
	res, err := eng.QueryString(`doc("d.xml")//v/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if distxq.Serialize(res) != "42" {
		t.Errorf("local engine = %s", distxq.Serialize(res))
	}
}

func TestFacadeXMarkHelpers(t *testing.T) {
	cfg := distxq.XMarkDefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.Items = 5, 5, 2
	people := distxq.XMarkPeople(cfg, "p")
	auctions := distxq.XMarkAuctions(cfg, "a")
	if people.DocElem() == nil || auctions.DocElem() == nil {
		t.Fatal("generated documents must have document elements")
	}
	q := distxq.BenchmarkQuery("x", "y")
	if err := distxq.ParseQuery(q); err != nil {
		t.Errorf("benchmark query must parse: %v", err)
	}
}

// TestREADMEExample keeps the README snippet honest.
func TestREADMEExample(t *testing.T) {
	net := distxq.NewNetwork()
	remote := net.AddPeer("example.org")
	_ = remote.LoadXML("depts.xml", `<depts><dept name="hr"/><dept name="it"/></depts>`)
	local := net.AddPeer("local")

	sess := net.NewSession(local, distxq.ByProjection)
	res, report, err := sess.Query(`doc("xrpc://example.org/depts.xml")//dept/@name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || report == nil {
		t.Errorf("res=%v report=%v", res, report)
	}
}

func TestFacadeScatterGather(t *testing.T) {
	net := distxq.NewNetwork()
	cfg := distxq.XMarkDefaultConfig()
	cfg.Persons, cfg.FillerBytes = 24, 16
	peers := []string{"p1", "p2", "p3"}
	for i, name := range peers {
		p := net.AddPeer(name)
		p.AddDoc("xmk.xml", distxq.XMarkPeopleShard(cfg, i, len(peers), "xrpc://"+name+"/xmk.xml"))
	}
	local := net.AddPeer("local")
	sess := net.NewSession(local, distxq.ByFragment)
	res, rep, err := sess.Query(distxq.ScatterQuery(peers))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("scatter query returned nothing")
	}
	if rep.Requests != int64(len(peers)) || rep.Parallelism != len(peers) {
		t.Errorf("requests=%d parallelism=%d, want one concurrent Bulk RPC per peer (%d)",
			rep.Requests, rep.Parallelism, len(peers))
	}
}
