package xdm

import (
	"errors"
	"testing"
)

func TestSeqRoundTrip(t *testing.T) {
	in := Sequence{NewInteger(1), NewString("two"), NewBoolean(true)}
	out, err := FromItems(in).Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if !DeepEqualSeq(in, out) {
		t.Fatalf("round trip mismatch: %v vs %v", in, out)
	}
	empty, err := EmptySeq().Materialize()
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty seq: %v items, err %v", empty, err)
	}
	one, err := SingletonSeq(NewInteger(7)).Materialize()
	if err != nil || len(one) != 1 || one[0].(Atomic).I != 7 {
		t.Fatalf("singleton seq: %v, err %v", one, err)
	}
}

func TestSeqError(t *testing.T) {
	boom := errors.New("boom")
	out, err := ErrSeq(boom).Materialize()
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if out != nil {
		t.Fatalf("want nil items on error, got %v", out)
	}
	// An error mid-production discards the prefix on Materialize.
	partial := Seq(func(yield func(Item) bool) error {
		yield(NewInteger(1))
		return boom
	})
	out, err = partial.Materialize()
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("mid-production error: items %v err %v", out, err)
	}
}

func TestConcatSeqLazy(t *testing.T) {
	ran := 0
	part := func(vals ...int64) Seq {
		return func(yield func(Item) bool) error {
			ran++
			for _, v := range vals {
				if !yield(NewInteger(v)) {
					return nil
				}
			}
			return nil
		}
	}
	q := ConcatSeq(part(1, 2), part(3), part(4, 5))
	out, err := q.Materialize()
	if err != nil || len(out) != 5 {
		t.Fatalf("concat: %v err %v", out, err)
	}
	if ran != 3 {
		t.Fatalf("want 3 parts run, got %d", ran)
	}

	// Early stop: the consumer takes two items; the later parts never run.
	ran = 0
	q = ConcatSeq(part(1, 2), part(3), part(4, 5))
	var got Sequence
	err = q(func(it Item) bool {
		got = append(got, it)
		return len(got) < 2
	})
	if err != nil {
		t.Fatalf("early stop err: %v", err)
	}
	if len(got) != 2 || ran != 1 {
		t.Fatalf("early stop: %d items, %d parts run", len(got), ran)
	}

	// Error in an early part stops the chain.
	boom := errors.New("boom")
	q = ConcatSeq(ErrSeq(boom), part(9))
	if _, err := q.Materialize(); !errors.Is(err, boom) {
		t.Fatalf("concat error: %v", err)
	}
}

func TestOrderedDisjointNodes(t *testing.T) {
	doc := mustParse(t, `<r><a><b/></a><c/><d><e/><f/></d></r>`)
	r := doc.DocElem()
	a, c, d := r.Children[0], r.Children[1], r.Children[2]
	b := a.Children[0]
	e := d.Children[0]

	if !OrderedDisjointNodes([]*Node{a, c, d}) {
		t.Fatal("siblings should be ordered+disjoint")
	}
	if !OrderedDisjointNodes([]*Node{b, e}) {
		t.Fatal("cousins should be ordered+disjoint")
	}
	if !OrderedDisjointNodes(nil) || !OrderedDisjointNodes([]*Node{c}) {
		t.Fatal("empty and singleton inputs are trivially ordered+disjoint")
	}
	if OrderedDisjointNodes([]*Node{c, a}) {
		t.Fatal("out of order input accepted")
	}
	if OrderedDisjointNodes([]*Node{a, b}) {
		t.Fatal("nested input accepted (b inside a)")
	}
	if OrderedDisjointNodes([]*Node{a, a}) {
		t.Fatal("duplicate input accepted")
	}
	if OrderedDisjointNodes([]*Node{NewElement("x")}) {
		t.Fatal("detached (unfrozen) node accepted")
	}

	doc2 := mustParse(t, `<s><t/></s>`)
	if !OrderedDisjointNodes([]*Node{r, doc2.DocElem()}) {
		t.Fatal("cross-document ordered input should be accepted")
	}
	if OrderedDisjointNodes([]*Node{doc2.DocElem(), r}) {
		t.Fatal("cross-document out-of-order input accepted")
	}
}

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	doc, err := ParseString(src, "test.xml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}
