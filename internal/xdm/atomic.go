package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Item is one member of an XQuery sequence: a node or an atomic value.
type Item interface {
	isItem()
	// ItemString returns the string value of the item (fn:string semantics).
	ItemString() string
}

func (*Node) isItem() {}

// ItemString implements Item for nodes.
func (n *Node) ItemString() string { return n.StringValue() }

// AtomType enumerates the atomic types this engine supports.
type AtomType uint8

const (
	// TString is xs:string.
	TString AtomType = iota
	// TBoolean is xs:boolean.
	TBoolean
	// TInteger is xs:integer.
	TInteger
	// TDouble is xs:double (also used for xs:decimal results).
	TDouble
	// TUntyped is xs:untypedAtomic (atomized node content).
	TUntyped
)

func (t AtomType) String() string {
	switch t {
	case TString:
		return "xs:string"
	case TBoolean:
		return "xs:boolean"
	case TInteger:
		return "xs:integer"
	case TDouble:
		return "xs:double"
	case TUntyped:
		return "xs:untypedAtomic"
	}
	return fmt.Sprintf("AtomType(%d)", uint8(t))
}

// ParseAtomType maps a lexical xs: type name to an AtomType.
func ParseAtomType(name string) (AtomType, bool) {
	switch name {
	case "xs:string", "string":
		return TString, true
	case "xs:boolean", "boolean":
		return TBoolean, true
	case "xs:integer", "integer", "xs:int", "xs:long":
		return TInteger, true
	case "xs:double", "double", "xs:decimal", "xs:float":
		return TDouble, true
	case "xs:untypedAtomic", "untypedAtomic", "xs:anyAtomicType":
		return TUntyped, true
	}
	return TString, false
}

// Atomic is an atomic value item.
type Atomic struct {
	T AtomType
	S string  // TString, TUntyped
	B bool    // TBoolean
	I int64   // TInteger
	F float64 // TDouble
}

func (Atomic) isItem() {}

// NewString returns an xs:string atomic.
func NewString(s string) Atomic { return Atomic{T: TString, S: s} }

// NewUntyped returns an xs:untypedAtomic atomic.
func NewUntyped(s string) Atomic { return Atomic{T: TUntyped, S: s} }

// NewBoolean returns an xs:boolean atomic.
func NewBoolean(b bool) Atomic { return Atomic{T: TBoolean, B: b} }

// NewInteger returns an xs:integer atomic.
func NewInteger(i int64) Atomic { return Atomic{T: TInteger, I: i} }

// NewDouble returns an xs:double atomic.
func NewDouble(f float64) Atomic { return Atomic{T: TDouble, F: f} }

// ItemString renders the atomic per XPath casting-to-string rules.
func (a Atomic) ItemString() string {
	switch a.T {
	case TString, TUntyped:
		return a.S
	case TBoolean:
		if a.B {
			return "true"
		}
		return "false"
	case TInteger:
		return strconv.FormatInt(a.I, 10)
	case TDouble:
		return FormatDouble(a.F)
	}
	return ""
}

// FormatDouble renders an xs:double using XPath conventions (integral values
// without a decimal point, NaN/INF spellings).
func FormatDouble(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// Number returns the numeric value of the atomic (NaN for non-numeric
// strings), implementing fn:number coercion.
func (a Atomic) Number() float64 {
	switch a.T {
	case TInteger:
		return float64(a.I)
	case TDouble:
		return a.F
	case TBoolean:
		if a.B {
			return 1
		}
		return 0
	default:
		f, err := strconv.ParseFloat(strings.TrimSpace(a.S), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// IsNumeric reports whether the atomic carries a numeric type.
func (a Atomic) IsNumeric() bool { return a.T == TInteger || a.T == TDouble }

// Sequence is an ordered XQuery sequence of items. A nil Sequence is the
// empty sequence.
type Sequence []Item

// EmptySequence is the canonical empty sequence.
var EmptySequence = Sequence{}

// Singleton wraps one item in a sequence.
func Singleton(it Item) Sequence { return Sequence{it} }

// Concat concatenates sequences (the XQuery "," operator flattens).
func Concat(seqs ...Sequence) Sequence {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	out := make(Sequence, 0, n)
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// Nodes extracts the nodes of a sequence, erroring via ok=false if any item
// is atomic.
func (s Sequence) Nodes() ([]*Node, bool) {
	out := make([]*Node, 0, len(s))
	for _, it := range s {
		n, isNode := it.(*Node)
		if !isNode {
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// NodeSeq wraps a node slice as a sequence.
func NodeSeq(nodes []*Node) Sequence {
	out := make(Sequence, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out
}

// Atomize converts every item to an atomic value: nodes become untypedAtomic
// of their string value.
func (s Sequence) Atomize() []Atomic {
	out := make([]Atomic, 0, len(s))
	for _, it := range s {
		switch v := it.(type) {
		case *Node:
			out = append(out, NewUntyped(v.StringValue()))
		case Atomic:
			out = append(out, v)
		}
	}
	return out
}

// EffectiveBoolean computes the effective boolean value; ok=false signals the
// FORG0006 type error (e.g. a multi-atomic sequence).
func (s Sequence) EffectiveBoolean() (val, ok bool) {
	if len(s) == 0 {
		return false, true
	}
	if _, isNode := s[0].(*Node); isNode {
		return true, true
	}
	if len(s) > 1 {
		return false, false
	}
	a := s[0].(Atomic)
	switch a.T {
	case TBoolean:
		return a.B, true
	case TString, TUntyped:
		return a.S != "", true
	case TInteger:
		return a.I != 0, true
	case TDouble:
		return a.F != 0 && !math.IsNaN(a.F), true
	}
	return false, false
}

// String renders a sequence for debugging and test golden files.
func (s Sequence) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, it := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch v := it.(type) {
		case *Node:
			fmt.Fprintf(&sb, "%s(%s)", v.Kind, v.Name)
		case Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// CompareAtomics compares two atomics under XPath value-comparison rules
// with numeric promotion; untyped values compare as strings against strings
// and as numbers against numbers. ok=false signals an incomparable pair.
func CompareAtomics(a, b Atomic) (cmp int, ok bool) {
	if a.T == TBoolean || b.T == TBoolean {
		if a.T != TBoolean || b.T != TBoolean {
			return 0, false
		}
		x, y := 0, 0
		if a.B {
			x = 1
		}
		if b.B {
			y = 1
		}
		return x - y, true
	}
	numeric := a.IsNumeric() || b.IsNumeric()
	if numeric {
		x, y := a.Number(), b.Number()
		if math.IsNaN(x) || math.IsNaN(y) {
			return 0, false
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		default:
			return 0, true
		}
	}
	return strings.Compare(a.ItemString(), b.ItemString()), true
}

// DeepEqualSeq implements fn:deep-equal over two sequences.
func DeepEqualSeq(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		an, aIsNode := a[i].(*Node)
		bn, bIsNode := b[i].(*Node)
		if aIsNode != bIsNode {
			return false
		}
		if aIsNode {
			if !DeepEqualNode(an, bn) {
				return false
			}
			continue
		}
		c, ok := CompareAtomics(a[i].(Atomic), b[i].(Atomic))
		if !ok || c != 0 {
			return false
		}
	}
	return true
}

// DeepEqualNode implements fn:deep-equal over two nodes: same kind and name,
// equal attribute sets, and pairwise deep-equal element/text children
// (comments are ignored, as the spec prescribes).
func DeepEqualNode(a, b *Node) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TextNode, CommentNode:
		return a.Text == b.Text
	case AttributeNode:
		return a.Name == b.Name && a.Text == b.Text
	}
	if a.Kind == ElementNode && a.Name != b.Name {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for _, aa := range a.Attrs {
		ba := b.Attr(aa.Name)
		if ba == nil || ba.Text != aa.Text {
			return false
		}
	}
	ac := significantChildren(a)
	bc := significantChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !DeepEqualNode(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

func significantChildren(n *Node) []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind == CommentNode {
			continue
		}
		out = append(out, c)
	}
	return out
}
