package xdm

import (
	"strings"
	"testing"
)

// sameTree compares two trees structurally (kind, name, text, attributes),
// ignoring node identity.
func sameTree(t *testing.T, path string, a, b *Node) {
	t.Helper()
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text {
		t.Fatalf("%s: node differs: %s %q %q vs %s %q %q",
			path, a.Kind, a.Name, a.Text, b.Kind, b.Name, b.Text)
	}
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("%s: %d attrs vs %d", path, len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || a.Attrs[i].Text != b.Attrs[i].Text {
			t.Fatalf("%s: attr %d differs: %s=%q vs %s=%q", path, i,
				a.Attrs[i].Name, a.Attrs[i].Text, b.Attrs[i].Name, b.Attrs[i].Text)
		}
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %d children vs %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameTree(t, path+"/"+a.Children[i].Name, a.Children[i], b.Children[i])
	}
}

// TestParseBytesMatchesParse feeds the same documents through the fast
// scanner and the encoding/xml-based parser and requires identical trees.
func TestParseBytesMatchesParse(t *testing.T) {
	cases := map[string]string{
		"simple":       `<a><b x="1">t</b></a>`,
		"prefixed":     `<env:Envelope><env:Body a:b="c"/></env:Envelope>`,
		"entities":     `<a q="&quot;&apos;&amp;">x &lt;y&gt; &amp; z &#65;&#x42;</a>`,
		"comments":     `<a>pre<!--inside-->post<!----></a>`,
		"mixed":        `<r> <a/> text <b><c>deep</c></b> tail </r>`,
		"selfclose":    `<a x="1" y="2"/>`,
		"pi-directive": `<?xml version="1.0"?><!DOCTYPE a><a>x<?pi data?>y</a>`,
		"cdata":        `<a><![CDATA[x > y & <z>]]></a>`,
		"cdata-merge":  `<a>pre<![CDATA[ raw ]]>post</a>`,
		"whitespace":   "  \n <a>\n keep \n</a> \n ",
		"unicode":      `<a über="ölwechsel">日本語テキスト</a>`,
		"nested-deep":  `<a><b><c><d><e f="g">h</e></d></c></b></a>`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := Parse(strings.NewReader(src), "want.xml")
			if err != nil {
				t.Fatalf("reference parser rejected %q: %v", src, err)
			}
			got, err := ParseBytes([]byte(src), "got.xml")
			if err != nil {
				t.Fatalf("ParseBytes rejected %q: %v", src, err)
			}
			sameTree(t, "", got.Root, want.Root)
			if !got.Frozen() {
				t.Error("ParseBytes must return a frozen document")
			}
			if got.NodeCount() != want.NodeCount() {
				t.Errorf("NodeCount = %d, want %d", got.NodeCount(), want.NodeCount())
			}
		})
	}
}

// TestParseBytesRoundTripsSerializer: whatever our serializer emits, the fast
// scanner reads back identically — the property the XRPC message layer needs.
func TestParseBytesRoundTripsSerializer(t *testing.T) {
	src := `<site id="s"><people><person id="p1"><name>A &amp; B</name>` +
		`<desc>x&lt;tag&gt; "quoted" 'single'</desc><!--note--></person></people></site>`
	d1, err := ParseString(src, "orig.xml")
	if err != nil {
		t.Fatal(err)
	}
	out := SerializeString(d1.DocElem())
	d2, err := ParseBytes([]byte(out), "roundtrip.xml")
	if err != nil {
		t.Fatalf("ParseBytes rejected serializer output %q: %v", out, err)
	}
	sameTree(t, "", d2.Root, d1.Root)
}

// TestParseBytesKeepsPrefixesLiteral documents the one intended divergence
// from Parse: a prefix with an in-scope xmlns declaration stays literal in
// node names (Parse's qname drops it once encoding/xml resolves it to a URI).
// The XRPC layer matches on local names, so both forms are equivalent there.
func TestParseBytesKeepsPrefixesLiteral(t *testing.T) {
	d, err := ParseBytes([]byte(`<env:Envelope xmlns:env="urn:e"><env:Body/></env:Envelope>`), "p.xml")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DocElem().Name; got != "env:Envelope" {
		t.Errorf("name = %q, want literal env:Envelope", got)
	}
	if d.DocElem().Attr("xmlns:env") != nil {
		t.Error("xmlns declarations must be dropped, as in Parse")
	}
}

func TestParseBytesRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"lone brackets":       `<<<`,
		"unbalanced end":      `</a>`,
		"mismatched end":      `<a><b></a></b>`,
		"eof in element":      `<a><b>`,
		"eof in tag":          `<a x="1"`,
		"unquoted attr":       `<a x=1/>`,
		"attr without value":  `<a x/>`,
		"unterminated value":  `<a x="1/>`,
		"unterminated entity": `<a>&amp</a>`,
		"unknown entity":      `<a>&bogus;</a>`,
		"bad char ref":        `<a>&#xZZ;</a>`,
		"control char ref":    `<a>&#1;</a>`,
		"surrogate char ref":  `<a>&#xD800;</a>`,
		"unterminated commnt": `<a><!-- no end</a>`,
		"unterminated cdata":  `<a><![CDATA[ no end</a>`,
	}
	for name, src := range cases {
		if _, err := ParseBytes([]byte(src), "bad.xml"); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}
