package xdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAtomicItemString(t *testing.T) {
	cases := []struct {
		a    Atomic
		want string
	}{
		{NewString("hi"), "hi"},
		{NewUntyped("u"), "u"},
		{NewBoolean(true), "true"},
		{NewBoolean(false), "false"},
		{NewInteger(-42), "-42"},
		{NewDouble(3.5), "3.5"},
		{NewDouble(4), "4"},
		{NewDouble(math.NaN()), "NaN"},
		{NewDouble(math.Inf(1)), "INF"},
		{NewDouble(math.Inf(-1)), "-INF"},
	}
	for _, c := range cases {
		if got := c.a.ItemString(); got != c.want {
			t.Errorf("ItemString(%v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestAtomicNumber(t *testing.T) {
	if NewString(" 12.5 ").Number() != 12.5 {
		t.Error("string → number should trim and parse")
	}
	if !math.IsNaN(NewString("abc").Number()) {
		t.Error("non-numeric string is NaN")
	}
	if NewBoolean(true).Number() != 1 || NewBoolean(false).Number() != 0 {
		t.Error("boolean numbers")
	}
	if NewInteger(7).Number() != 7 {
		t.Error("integer number")
	}
}

func TestParseAtomType(t *testing.T) {
	for name, want := range map[string]AtomType{
		"xs:string": TString, "xs:boolean": TBoolean, "xs:integer": TInteger,
		"xs:double": TDouble, "xs:untypedAtomic": TUntyped, "integer": TInteger,
	} {
		got, ok := ParseAtomType(name)
		if !ok || got != want {
			t.Errorf("ParseAtomType(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := ParseAtomType("xs:qname"); ok {
		t.Error("unknown type should not parse")
	}
}

func TestEffectiveBoolean(t *testing.T) {
	n := MustParseString("<a/>", "ebv").DocElem()
	cases := []struct {
		s       Sequence
		val, ok bool
	}{
		{Sequence{}, false, true},
		{Sequence{n}, true, true},
		{Sequence{n, n}, true, true},
		{Sequence{NewBoolean(true)}, true, true},
		{Sequence{NewBoolean(false)}, false, true},
		{Sequence{NewString("")}, false, true},
		{Sequence{NewString("x")}, true, true},
		{Sequence{NewInteger(0)}, false, true},
		{Sequence{NewInteger(3)}, true, true},
		{Sequence{NewDouble(math.NaN())}, false, true},
		{Sequence{NewInteger(1), NewInteger(2)}, false, false},
	}
	for i, c := range cases {
		val, ok := c.s.EffectiveBoolean()
		if val != c.val || ok != c.ok {
			t.Errorf("case %d: EBV = %v,%v want %v,%v", i, val, ok, c.val, c.ok)
		}
	}
}

func TestCompareAtomics(t *testing.T) {
	lt := func(a, b Atomic) {
		t.Helper()
		c, ok := CompareAtomics(a, b)
		if !ok || c >= 0 {
			t.Errorf("want %v < %v, got cmp=%d ok=%v", a, b, c, ok)
		}
	}
	eq := func(a, b Atomic) {
		t.Helper()
		c, ok := CompareAtomics(a, b)
		if !ok || c != 0 {
			t.Errorf("want %v = %v, got cmp=%d ok=%v", a, b, c, ok)
		}
	}
	lt(NewInteger(1), NewInteger(2))
	lt(NewDouble(1.5), NewInteger(2))
	lt(NewUntyped("10"), NewInteger(20)) // untyped vs numeric → numeric
	lt(NewString("a"), NewString("b"))
	lt(NewUntyped("abc"), NewUntyped("abd")) // untyped vs untyped → string
	eq(NewInteger(2), NewDouble(2))
	eq(NewBoolean(true), NewBoolean(true))
	lt(NewBoolean(false), NewBoolean(true))
	if _, ok := CompareAtomics(NewBoolean(true), NewInteger(1)); ok {
		t.Error("boolean vs integer must be incomparable")
	}
	if _, ok := CompareAtomics(NewDouble(math.NaN()), NewDouble(1)); ok {
		t.Error("NaN comparisons are never ok")
	}
}

func TestCompareAtomicsAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := CompareAtomics(NewInteger(a), NewInteger(b))
		c2, ok2 := CompareAtomics(NewInteger(b), NewInteger(a))
		return ok1 && ok2 && sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestConcatAndSingleton(t *testing.T) {
	s := Concat(Singleton(NewInteger(1)), EmptySequence, Singleton(NewInteger(2)))
	if len(s) != 2 || s[0].(Atomic).I != 1 || s[1].(Atomic).I != 2 {
		t.Errorf("Concat = %v", s)
	}
}

func TestNodesExtraction(t *testing.T) {
	n := MustParseString("<a/>", "nx").DocElem()
	if ns, ok := (Sequence{n, n}).Nodes(); !ok || len(ns) != 2 {
		t.Error("node extraction should succeed")
	}
	if _, ok := (Sequence{n, NewInteger(1)}).Nodes(); ok {
		t.Error("mixed sequence must fail node extraction")
	}
	got := NodeSeq([]*Node{n})
	if len(got) != 1 || got[0] != Item(n) {
		t.Error("NodeSeq round trip")
	}
}

func TestAtomize(t *testing.T) {
	n := MustParseString("<a>7</a>", "at").DocElem()
	out := Sequence{n, NewInteger(3)}.Atomize()
	if len(out) != 2 || out[0].T != TUntyped || out[0].S != "7" || out[1].I != 3 {
		t.Errorf("Atomize = %v", out)
	}
}

func TestSequenceString(t *testing.T) {
	n := MustParseString("<a/>", "ss").DocElem()
	got := Sequence{n, NewInteger(5)}.String()
	if got != "(element(a), 5)" {
		t.Errorf("String = %q", got)
	}
}
