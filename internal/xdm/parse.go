package xdm

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns a frozen Document with the
// given URI. Namespace prefixes are preserved literally in node names; no
// namespace resolution is performed (the XRPC message layer matches on
// prefixed names).
func Parse(r io.Reader, uri string) (*Document, error) {
	dec := xml.NewDecoder(r)
	// Keep entities and raw text simple: the decoder handles the predefined
	// XML entities; we do not load external DTDs.
	dec.Strict = true
	doc := NewDocument(uri)
	cur := doc.Root
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xdm: parse %s: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(qname(t.Name))
			for _, a := range t.Attr {
				n := qname(a.Name)
				if n == "xmlns" || strings.HasPrefix(n, "xmlns:") {
					continue
				}
				el.SetAttr(n, a.Value)
			}
			cur.AppendChild(el)
			cur = el
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xdm: parse %s: unbalanced end element", uri)
			}
			cur = cur.Parent
		case xml.CharData:
			s := string(t)
			if cur == doc.Root && strings.TrimSpace(s) == "" {
				continue // ignore whitespace outside the document element
			}
			if len(cur.Children) > 0 && cur.Children[len(cur.Children)-1].Kind == TextNode {
				cur.Children[len(cur.Children)-1].Text += s
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			cur.AppendChild(NewComment(string(t)))
		case xml.ProcInst, xml.Directive:
			// ignored: not part of our data model subset
		}
	}
	if cur != doc.Root {
		return nil, fmt.Errorf("xdm: parse %s: unexpected EOF inside element %s", uri, cur.Name)
	}
	doc.Freeze()
	return doc, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s, uri string) (*Document, error) {
	return Parse(strings.NewReader(s), uri)
}

// MustParseString parses or panics; for tests and examples.
func MustParseString(s, uri string) *Document {
	d, err := ParseString(s, uri)
	if err != nil {
		panic(err)
	}
	return d
}

func qname(n xml.Name) string {
	// encoding/xml resolves prefixes into Space; we re-derive a readable
	// prefixed name. For unprefixed names Space is the default namespace URI
	// which we drop, keeping the local name.
	if n.Space == "" || strings.Contains(n.Space, "/") || strings.Contains(n.Space, ":") {
		return n.Local
	}
	return n.Space + ":" + n.Local
}
