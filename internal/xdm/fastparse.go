package xdm

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses an XML document with an allocation-light scanner
// specialized for machine-generated XML such as XRPC messages: element and
// attribute names and text content are sliced out of one backing string
// instead of being tokenized through encoding/xml, and nodes are handed out
// of slab arenas. It accepts the same document subset Parse produces
// (elements, attributes, text, comments; prefixed names kept literally, xmlns
// attributes dropped, PIs/directives skipped) and reports an error on
// anything malformed.
//
// The returned document's strings alias one copy of data, so the whole
// message buffer stays reachable while any of its nodes do — the right trade
// for decoded fragments, whose nodes are referenced by query results anyway.
func ParseBytes(data []byte, uri string) (*Document, error) {
	return parseFast(string(data), uri)
}

// nodeArena hands out nodes from slabs so a parsed message performs O(n/slab)
// node allocations instead of O(n).
type nodeArena struct{ slab []Node }

func (ar *nodeArena) take(k Kind, name, text string) *Node {
	if len(ar.slab) == 0 {
		ar.slab = make([]Node, 256)
	}
	n := &ar.slab[0]
	ar.slab = ar.slab[1:]
	n.Kind, n.Name, n.Text = k, name, text
	return n
}

func parseFast(s, uri string) (*Document, error) {
	doc := NewDocument(uri)
	cur := doc.Root
	var arena nodeArena
	pos := 0
	for pos < len(s) {
		if s[pos] != '<' {
			start := pos
			for pos < len(s) && s[pos] != '<' {
				pos++
			}
			txt, err := decodeCharData(s[start:pos])
			if err != nil {
				return nil, fmt.Errorf("xdm: parse %s: %w", uri, err)
			}
			if cur == doc.Root && strings.TrimSpace(txt) == "" {
				continue // whitespace outside the document element
			}
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
				cur.Children[k-1].Text += txt // PI/directive split a text run
				continue
			}
			cur.AppendChild(arena.take(TextNode, "", txt))
			continue
		}
		if pos+1 >= len(s) {
			return nil, fmt.Errorf("xdm: parse %s: unexpected EOF after '<'", uri)
		}
		switch s[pos+1] {
		case '/':
			name, p, err := scanXMLName(s, pos+2)
			if err != nil {
				return nil, fmt.Errorf("xdm: parse %s: %w", uri, err)
			}
			p = skipXMLSpace(s, p)
			if p >= len(s) || s[p] != '>' {
				return nil, fmt.Errorf("xdm: parse %s: malformed end tag </%s", uri, name)
			}
			pos = p + 1
			if cur == doc.Root {
				return nil, fmt.Errorf("xdm: parse %s: unbalanced end element", uri)
			}
			if cur.Name != name {
				return nil, fmt.Errorf("xdm: parse %s: </%s> closes <%s>", uri, name, cur.Name)
			}
			cur = cur.Parent
		case '!':
			if strings.HasPrefix(s[pos:], "<!--") {
				end := strings.Index(s[pos+4:], "-->")
				if end < 0 {
					return nil, fmt.Errorf("xdm: parse %s: unterminated comment", uri)
				}
				cur.AppendChild(arena.take(CommentNode, "", s[pos+4:pos+4+end]))
				pos += 4 + end + 3
			} else if strings.HasPrefix(s[pos:], "<![CDATA[") {
				end := strings.Index(s[pos+9:], "]]>")
				if end < 0 {
					return nil, fmt.Errorf("xdm: parse %s: unterminated CDATA section", uri)
				}
				txt := s[pos+9 : pos+9+end]
				pos += 9 + end + 3
				if cur == doc.Root && strings.TrimSpace(txt) == "" {
					continue
				}
				if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
					cur.Children[k-1].Text += txt
					continue
				}
				cur.AppendChild(arena.take(TextNode, "", txt))
			} else {
				// Directive (<!DOCTYPE ...>): skipped, like Parse does.
				end := strings.IndexByte(s[pos:], '>')
				if end < 0 {
					return nil, fmt.Errorf("xdm: parse %s: unterminated directive", uri)
				}
				pos += end + 1
			}
		case '?':
			end := strings.Index(s[pos+2:], "?>")
			if end < 0 {
				return nil, fmt.Errorf("xdm: parse %s: unterminated processing instruction", uri)
			}
			pos += 2 + end + 2
		default:
			name, p, err := scanXMLName(s, pos+1)
			if err != nil {
				return nil, fmt.Errorf("xdm: parse %s: %w", uri, err)
			}
			pos = p
			el := arena.take(ElementNode, name, "")
			closed := false
			for !closed {
				pos = skipXMLSpace(s, pos)
				if pos >= len(s) {
					return nil, fmt.Errorf("xdm: parse %s: unexpected EOF in <%s>", uri, name)
				}
				switch s[pos] {
				case '>':
					pos++
					cur.AppendChild(el)
					cur = el
					closed = true
				case '/':
					if pos+1 >= len(s) || s[pos+1] != '>' {
						return nil, fmt.Errorf("xdm: parse %s: malformed empty-element tag <%s", uri, name)
					}
					pos += 2
					cur.AppendChild(el)
					closed = true
				default:
					aname, p, err := scanXMLName(s, pos)
					if err != nil {
						return nil, fmt.Errorf("xdm: parse %s: in <%s>: %w", uri, name, err)
					}
					pos = skipXMLSpace(s, p)
					if pos >= len(s) || s[pos] != '=' {
						return nil, fmt.Errorf("xdm: parse %s: attribute %s without value", uri, aname)
					}
					pos = skipXMLSpace(s, pos+1)
					if pos >= len(s) || (s[pos] != '"' && s[pos] != '\'') {
						return nil, fmt.Errorf("xdm: parse %s: unquoted value for attribute %s", uri, aname)
					}
					quote := s[pos]
					pos++
					vend := strings.IndexByte(s[pos:], quote)
					if vend < 0 {
						return nil, fmt.Errorf("xdm: parse %s: unterminated value for attribute %s", uri, aname)
					}
					val, err := decodeCharData(s[pos : pos+vend])
					if err != nil {
						return nil, fmt.Errorf("xdm: parse %s: attribute %s: %w", uri, aname, err)
					}
					pos += vend + 1
					if aname == "xmlns" || strings.HasPrefix(aname, "xmlns:") {
						continue
					}
					replaced := false
					for _, a := range el.Attrs {
						if a.Name == aname {
							a.Text = val
							replaced = true
							break
						}
					}
					if !replaced {
						a := arena.take(AttributeNode, aname, val)
						a.Parent = el
						a.sibIdx = int32(len(el.Attrs))
						el.Attrs = append(el.Attrs, a)
					}
				}
			}
		}
	}
	if cur != doc.Root {
		return nil, fmt.Errorf("xdm: parse %s: unexpected EOF inside element %s", uri, cur.Name)
	}
	doc.Freeze()
	return doc, nil
}

// scanXMLName scans a (possibly prefixed) XML name starting at pos and
// returns it with the position after it.
func scanXMLName(s string, pos int) (string, int, error) {
	start := pos
	for pos < len(s) {
		switch s[pos] {
		case ' ', '\t', '\n', '\r', '=', '/', '>', '<', '"', '\'', '&', ';':
			goto done
		}
		pos++
	}
done:
	if pos == start {
		return "", pos, fmt.Errorf("expected name at offset %d", start)
	}
	return s[start:pos], pos, nil
}

func skipXMLSpace(s string, pos int) int {
	for pos < len(s) {
		switch s[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

// decodeCharData resolves the predefined entities and character references
// and normalizes line endings. Input without either is returned as-is
// (a zero-copy slice of the message buffer).
func decodeCharData(s string) (string, error) {
	if strings.IndexByte(s, '&') < 0 && strings.IndexByte(s, '\r') < 0 {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		switch c := s[i]; c {
		case '\r': // XML end-of-line handling: \r\n and bare \r become \n
			sb.WriteByte('\n')
			i++
			if i < len(s) && s[i] == '\n' {
				i++
			}
		case '&':
			semi := strings.IndexByte(s[i:], ';')
			if semi < 0 {
				return "", fmt.Errorf("unterminated entity reference")
			}
			ent := s[i+1 : i+semi]
			switch ent {
			case "amp":
				sb.WriteByte('&')
			case "lt":
				sb.WriteByte('<')
			case "gt":
				sb.WriteByte('>')
			case "quot":
				sb.WriteByte('"')
			case "apos":
				sb.WriteByte('\'')
			default:
				if !strings.HasPrefix(ent, "#") {
					return "", fmt.Errorf("unknown entity &%s;", ent)
				}
				num, base := ent[1:], 10
				if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
					num, base = num[1:], 16
				}
				v, err := strconv.ParseUint(num, base, 32)
				if err != nil || !isXMLChar(rune(v)) {
					return "", fmt.Errorf("invalid character reference &%s;", ent)
				}
				sb.WriteRune(rune(v))
			}
			i += semi + 1
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return sb.String(), nil
}

// isXMLChar reports whether r is in the XML 1.0 Char production — what a
// character reference may legally denote (encoding/xml rejects the rest too).
func isXMLChar(r rune) bool {
	return r == 0x9 || r == 0xA || r == 0xD ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}
