package xdm

// Seq is a pull-based lazy sequence of items. A Seq is a function that
// produces its items by calling yield for each one in order; it stops early
// when yield returns false. The returned error is the production error, if
// any: a Seq that was cut short by its consumer returns nil.
//
// This is the `iter.Seq[Item]` shape written as a plain func type (the module
// targets go 1.22, which predates the iter package), extended with an error
// return so evaluation failures — type errors, deadline aborts — surface at
// the pull site rather than panicking through the consumer.
//
// Contract for producers:
//   - items are yielded in sequence order, exactly once each;
//   - after yield returns false, no further yields; return nil;
//   - an evaluation error ends the sequence: the items yielded before it are
//     a valid prefix of the result, matching the streamed-protocol rule that
//     frames delivered before a fault are kept.
type Seq func(yield func(Item) bool) error

// EmptySeq is the lazy empty sequence.
func EmptySeq() Seq {
	return func(func(Item) bool) error { return nil }
}

// SingletonSeq returns a lazy sequence of exactly one item.
func SingletonSeq(it Item) Seq {
	return func(yield func(Item) bool) error {
		yield(it)
		return nil
	}
}

// ErrSeq returns a sequence that yields nothing and fails with err.
func ErrSeq(err error) Seq {
	return func(func(Item) bool) error { return err }
}

// FromItems adapts an eagerly materialized sequence to the pull interface.
func FromItems(s Sequence) Seq {
	return func(yield func(Item) bool) error {
		for _, it := range s {
			if !yield(it) {
				return nil
			}
		}
		return nil
	}
}

// Materialize drains the sequence into a slice. On error the items produced
// before the failure are discarded and only the error is returned, matching
// the eager evaluator's all-or-nothing result contract.
func (q Seq) Materialize() (Sequence, error) {
	var out Sequence
	err := q(func(it Item) bool {
		out = append(out, it)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ConcatSeq concatenates sequences lazily: part i+1 is not invoked until
// part i is exhausted, and none of the remaining parts run if the consumer
// stops early.
func ConcatSeq(parts ...Seq) Seq {
	if len(parts) == 1 {
		return parts[0]
	}
	return func(yield func(Item) bool) error {
		stopped := false
		for _, p := range parts {
			err := p(func(it Item) bool {
				if !yield(it) {
					stopped = true
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if stopped {
				return nil
			}
		}
		return nil
	}
}

// OrderedDisjointNodes reports whether nodes are in strictly increasing
// global document order with non-overlapping subtrees, all from frozen
// documents. This is the precondition under which a forward downward axis
// step (child, attribute, self, descendant, descendant-or-self) over the
// nodes emits its result already in distinct document order, so the step can
// stream without a SortDocOrder barrier: disjoint subtrees cannot produce
// the same node twice, and ordered disjoint subtrees enumerate their
// descendants in global order when visited left to right.
//
// It returns false for unfrozen or detached nodes (SubtreeSize 0, or nodes
// that Compare cannot order), which callers treat as "materialize instead".
func OrderedDisjointNodes(nodes []*Node) bool {
	for i, n := range nodes {
		if n.size <= 0 || n.Doc == nil {
			return false
		}
		if i == 0 {
			continue
		}
		prev := nodes[i-1]
		if prev.Doc == n.Doc {
			if n.pre < prev.pre+prev.size {
				return false
			}
		} else if Compare(prev, n) >= 0 {
			return false
		}
	}
	return true
}
