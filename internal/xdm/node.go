// Package xdm implements the XQuery Data Model subset needed for distributed
// XQuery processing: XML documents and nodes with stable identity and global
// document order, atomic values, and sequences.
//
// Nodes are identified by pointer: two *Node values are the same XML node
// exactly when the pointers are equal. Document order is total across all
// documents in a process: nodes within one document are ordered by preorder
// rank, and documents are ordered by creation sequence, matching the
// implementation-defined but stable inter-document ordering that XQuery
// requires.
package xdm

import (
	"fmt"
	"slices"
	"strings"
	"sync/atomic"
)

// Kind enumerates the node kinds of the data model.
type Kind uint8

const (
	// DocumentNode is the invisible root above the document element.
	DocumentNode Kind = iota
	// ElementNode is an XML element.
	ElementNode
	// AttributeNode is an attribute; it lives in its owner's Attrs list.
	AttributeNode
	// TextNode is character data.
	TextNode
	// CommentNode is an XML comment.
	CommentNode
)

func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case AttributeNode:
		return "attribute"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// docSeq hands out the global inter-document ordering.
var docSeq atomic.Uint64

// Document owns a tree of nodes. All nodes of a document share its identity
// for order comparisons; a document is immutable once frozen.
type Document struct {
	// URI is the document URI (what fn:document-uri reports). For trees
	// created by element constructors it is an artificial constructor URI.
	URI string
	// Root is the DocumentNode at the top of the tree.
	Root *Node

	seq    uint64
	frozen bool
	nnodes int
}

// NewDocument creates an empty document with the given URI. The caller
// attaches children to doc.Root and must call Freeze before using document
// order.
func NewDocument(uri string) *Document {
	d := &Document{URI: uri, seq: docSeq.Add(1)}
	d.Root = &Node{Kind: DocumentNode, Doc: d}
	return d
}

// Seq returns the global creation sequence number used to order nodes from
// different documents.
func (d *Document) Seq() uint64 { return d.seq }

// Frozen reports whether Freeze has been called.
func (d *Document) Frozen() bool { return d.frozen }

// NodeCount returns the number of nodes in the frozen document (including the
// document node and attributes).
func (d *Document) NodeCount() int { return d.nnodes }

// DocElem returns the document element (first element child of the document
// node), or nil for an empty document.
func (d *Document) DocElem() *Node {
	for _, c := range d.Root.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// Freeze assigns preorder ranks to every node and marks the tree immutable.
// It must be called after construction and before any document-order
// comparison. Freeze is idempotent.
//
// Beyond the preorder rank, Freeze assigns each node its sibling index and
// subtree size (pre/size XPath-accelerator numbering): a node's subtree
// occupies exactly the rank interval [pre, pre+size), attributes included.
// This makes ancestor tests, sibling navigation and Following O(1).
func (d *Document) Freeze() {
	if d.frozen {
		return
	}
	pre := int32(0)
	var walk func(n *Node)
	walk = func(n *Node) {
		start := pre
		n.pre = pre
		pre++
		n.Doc = d
		for i, a := range n.Attrs {
			a.pre = pre
			pre++
			a.Doc = d
			a.Parent = n
			a.sibIdx = int32(i)
			a.size = 1
		}
		for i, c := range n.Children {
			c.Parent = n
			c.sibIdx = int32(i)
			walk(c)
		}
		n.size = pre - start
	}
	walk(d.Root)
	d.nnodes = int(pre)
	d.frozen = true
}

// Node is a single XML node. The zero value is not usable; create nodes with
// the NewX constructors or via Parse.
type Node struct {
	Kind Kind
	// Name is the qualified name for elements and attributes ("a", "ns:a").
	Name string
	// Text holds character data for text and comment nodes, and the value
	// for attribute nodes.
	Text string

	Parent   *Node
	Children []*Node
	Attrs    []*Node
	Doc      *Document

	// BaseURI optionally overrides the document URI for fn:base-uri; XRPC
	// sets it on shipped parameter nodes (Problem 5, class 2).
	BaseURI string

	pre    int32
	sibIdx int32 // index within Parent.Children (or Parent.Attrs)
	size   int32 // ranks covered by the subtree incl. attributes; 0 until frozen
}

// NewElement returns a detached element node.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a detached text node.
func NewText(s string) *Node { return &Node{Kind: TextNode, Text: s} }

// NewComment returns a detached comment node.
func NewComment(s string) *Node { return &Node{Kind: CommentNode, Text: s} }

// NewAttr returns a detached attribute node.
func NewAttr(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Text: value}
}

// AppendChild attaches c as the last child of n. The tree must not be frozen.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	c.sibIdx = int32(len(n.Children))
	n.Children = append(n.Children, c)
	return n
}

// SetAttr attaches an attribute node, replacing an existing attribute with
// the same name.
func (n *Node) SetAttr(name, value string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			a.Text = value
			return n
		}
	}
	a := NewAttr(name, value)
	a.Parent = n
	a.sibIdx = int32(len(n.Attrs))
	n.Attrs = append(n.Attrs, a)
	return n
}

// Attr returns the attribute node with the given name, or nil.
func (n *Node) Attr(name string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pre returns the preorder rank of n within its frozen document.
func (n *Node) Pre() int32 { return n.pre }

// SiblingIndex returns n's index within its parent's Children (or Attrs for
// attribute nodes). It is maintained by AppendChild/SetAttr and reassigned by
// Freeze, so it is reliable for frozen trees.
func (n *Node) SiblingIndex() int32 { return n.sibIdx }

// SubtreeSize returns the number of preorder ranks covered by n's subtree
// (n itself, its attributes, and all descendants with their attributes), or 0
// when the document has not been frozen. Within one frozen document,
// m is in n's subtree exactly when n.Pre() <= m.Pre() < n.Pre()+n.SubtreeSize().
func (n *Node) SubtreeSize() int32 { return n.size }

// RootNode returns the topmost node reachable via Parent (the document node
// for attached trees). This is what fn:root returns.
func (n *Node) RootNode() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// StringValue returns the typed-value string of the node: concatenated
// descendant text for documents and elements, the literal text for others.
func (n *Node) StringValue() string {
	switch n.Kind {
	case TextNode, CommentNode, AttributeNode:
		return n.Text
	default:
		var sb strings.Builder
		n.appendText(&sb)
		return sb.String()
	}
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Text)
		case ElementNode:
			c.appendText(sb)
		}
	}
}

// IsAncestorOf reports whether n is a proper ancestor of m. For nodes of one
// frozen document the answer comes from the pre/size interval in O(1); the
// parent walk remains as the fallback for detached or unfrozen trees.
func (n *Node) IsAncestorOf(m *Node) bool {
	if n.size > 0 && n.Doc != nil && n.Doc == m.Doc {
		return n.pre < m.pre && m.pre < n.pre+n.size
	}
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// IsDescendantOrSelf reports whether n is m or a descendant of m.
func (n *Node) IsDescendantOrSelf(m *Node) bool {
	return n == m || m.IsAncestorOf(n)
}

// Compare orders two nodes in global document order: negative when n comes
// before m, zero only when n == m. Both documents must be frozen.
func Compare(n, m *Node) int {
	if n == m {
		return 0
	}
	if n.Doc == m.Doc {
		switch {
		case n.pre < m.pre:
			return -1
		case n.pre > m.pre:
			return 1
		default:
			return 0
		}
	}
	var a, b uint64
	if n.Doc != nil {
		a = n.Doc.seq
	}
	if m.Doc != nil {
		b = m.Doc.seq
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Following returns the next node after n in document order that is not a
// descendant of n, or nil at the end of the document. Attribute nodes are
// skipped (they are not part of the descendant axis).
func (n *Node) Following() *Node {
	cur := n
	if cur.Kind == AttributeNode {
		cur = cur.Parent
		if len(cur.Children) > 0 {
			return cur.Children[0]
		}
	}
	for cur != nil {
		p := cur.Parent
		if p == nil {
			return nil
		}
		// sibIdx gives the position in O(1); fall back to a scan for trees
		// assembled without AppendChild.
		idx := int(cur.sibIdx)
		if idx >= len(p.Children) || p.Children[idx] != cur {
			idx = -1
			for i, c := range p.Children {
				if c == cur {
					idx = i
					break
				}
			}
		}
		if idx >= 0 && idx+1 < len(p.Children) {
			return p.Children[idx+1]
		}
		cur = p
	}
	return nil
}

// NextInDocument returns the next node in document order (first child if any,
// else next following), excluding attributes.
func (n *Node) NextInDocument() *Node {
	if n.Kind != AttributeNode && len(n.Children) > 0 {
		return n.Children[0]
	}
	return n.Following()
}

// WalkDescendants visits n and all its descendants (excluding attributes) in
// document order, stopping early if f returns false.
func (n *Node) WalkDescendants(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.WalkDescendants(f) {
			return false
		}
	}
	return true
}

// DescendantOrSelfIndex returns the 1-based position of target within the
// document-order sequence descendant-or-self::node() of n (attributes
// excluded), or 0 when target is not in that sequence. Note this counts
// every node: the XRPC fragment codec builds its own numbering tables
// (which additionally merge adjacent text siblings); this helper remains as
// a per-node oracle for those tables.
func (n *Node) DescendantOrSelfIndex(target *Node) int {
	idx := 0
	found := 0
	n.WalkDescendants(func(m *Node) bool {
		idx++
		if m == target {
			found = idx
			return false
		}
		return true
	})
	return found
}

// NthDescendantOrSelf returns the idx-th (1-based) node of
// descendant-or-self::node() of n in document order, or nil.
func (n *Node) NthDescendantOrSelf(idx int) *Node {
	if idx <= 0 {
		return nil
	}
	i := 0
	var res *Node
	n.WalkDescendants(func(m *Node) bool {
		i++
		if i == idx {
			res = m
			return false
		}
		return true
	})
	return res
}

// LCA returns the lowest common ancestor of the given nodes (all from one
// tree). It returns nil for an empty input.
func LCA(nodes []*Node) *Node {
	if len(nodes) == 0 {
		return nil
	}
	anc := func(n *Node) []*Node {
		var path []*Node
		for p := n; p != nil; p = p.Parent {
			path = append(path, p)
		}
		// reverse: root first
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		return path
	}
	common := anc(nodes[0])
	for _, n := range nodes[1:] {
		p := anc(n)
		k := 0
		for k < len(common) && k < len(p) && common[k] == p[k] {
			k++
		}
		common = common[:k]
		if len(common) == 0 {
			return nil
		}
	}
	return common[len(common)-1]
}

// Copy returns a deep copy of the subtree rooted at n as a detached node
// (Parent nil, Doc nil). Attribute nodes copy as standalone attributes.
func (n *Node) Copy() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text, BaseURI: n.BaseURI}
	for i, a := range n.Attrs {
		ca := &Node{Kind: AttributeNode, Name: a.Name, Text: a.Text, Parent: c, sibIdx: int32(i)}
		c.Attrs = append(c.Attrs, ca)
	}
	for i, ch := range n.Children {
		cc := ch.Copy()
		cc.Parent = c
		cc.sibIdx = int32(i)
		c.Children = append(c.Children, cc)
	}
	return c
}

// CopyToDocument deep-copies n into a fresh frozen document with the given
// URI and returns the copy of n within it. This implements the node copying
// of XQuery element constructors and of pass-by-value shipping.
func CopyToDocument(n *Node, uri string) *Node {
	d := NewDocument(uri)
	c := n.Copy()
	d.Root.AppendChild(c)
	d.Freeze()
	return c
}

// SortDocOrder sorts nodes in place by global document order and removes
// duplicates (by identity), implementing the distinct-doc-order postcondition
// of XPath steps. Already-ordered input (the common case: forward axes over
// ordered context sequences emit in document order) is detected in O(n) and
// returned untouched without allocating.
func SortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	sorted := true
	for i := 1; i < len(nodes); i++ {
		// Strictly increasing input is both ordered and duplicate-free.
		if Compare(nodes[i-1], nodes[i]) >= 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return nodes
	}
	// Stable so that nodes Compare cannot order (detached trees, where every
	// rank is zero) keep their input order, as the previous merge sort did.
	slices.SortStableFunc(nodes, Compare)
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}
