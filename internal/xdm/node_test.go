package xdm

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<a id="1"><b><c/>text</b><d x="y">more</d><!--note--></a>`

func mustDoc(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s, "test.xml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestParseRoundTrip(t *testing.T) {
	d := mustDoc(t, sampleXML)
	got := SerializeString(d.Root)
	if got != sampleXML {
		t.Errorf("round trip:\n got %s\nwant %s", got, sampleXML)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"<a>", "<a></b>", "</a>", "<a><b></a></b>"} {
		if _, err := ParseString(bad, "bad.xml"); err == nil {
			t.Errorf("ParseString(%q): expected error", bad)
		}
	}
}

func TestDocElemAndStringValue(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	if a == nil || a.Name != "a" {
		t.Fatalf("DocElem = %v", a)
	}
	if sv := a.StringValue(); sv != "textmore" {
		t.Errorf("StringValue = %q, want %q", sv, "textmore")
	}
	if av := a.Attr("id").StringValue(); av != "1" {
		t.Errorf("attr string value = %q", av)
	}
}

func TestDocumentOrder(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	b := a.Children[0]
	c := b.Children[0]
	dd := a.Children[1]
	// a < a/@id < b < c < d in document order
	pairs := [][2]*Node{{a, b}, {b, c}, {c, dd}, {a, a.Attr("id")}, {a.Attr("id"), b}}
	for _, p := range pairs {
		if Compare(p[0], p[1]) >= 0 {
			t.Errorf("Compare(%s,%s) = %d, want <0", p[0].Name, p[1].Name, Compare(p[0], p[1]))
		}
		if Compare(p[1], p[0]) <= 0 {
			t.Errorf("reverse Compare(%s,%s) not >0", p[1].Name, p[0].Name)
		}
	}
	if Compare(a, a) != 0 {
		t.Error("self compare != 0")
	}
}

func TestInterDocumentOrderIsStable(t *testing.T) {
	d1 := mustDoc(t, "<x/>")
	d2 := mustDoc(t, "<y/>")
	if Compare(d1.DocElem(), d2.DocElem()) >= 0 {
		t.Error("earlier-created document should order first")
	}
	if Compare(d2.DocElem(), d1.DocElem()) <= 0 {
		t.Error("later-created document should order last")
	}
}

func TestAncestry(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	c := a.Children[0].Children[0]
	if !a.IsAncestorOf(c) {
		t.Error("a should be ancestor of c")
	}
	if c.IsAncestorOf(a) {
		t.Error("c must not be ancestor of a")
	}
	if !c.IsDescendantOrSelf(c) {
		t.Error("self is descendant-or-self")
	}
	if c.RootNode() != d.Root {
		t.Error("RootNode should reach document node")
	}
}

func TestFollowingTraversal(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	b := a.Children[0]
	dd := a.Children[1]
	if f := b.Following(); f != dd {
		t.Errorf("Following(b) = %v, want d", f)
	}
	if f := dd.Children[0].Following(); f == nil || f.Kind != CommentNode {
		t.Errorf("Following(text in d) should be the comment, got %v", f)
	}
	// Following from the last node is nil.
	last := a.Children[2]
	if f := last.Following(); f != nil {
		t.Errorf("Following(last) = %v, want nil", f)
	}
}

func TestNextInDocumentCoversAllNodes(t *testing.T) {
	d := mustDoc(t, sampleXML)
	seen := 0
	for n := d.Root; n != nil; n = n.NextInDocument() {
		seen++
	}
	// nodes excluding attributes: doc, a, b, c, text, d, text, comment = 8
	if seen != 8 {
		t.Errorf("visited %d nodes, want 8", seen)
	}
}

func TestDescendantOrSelfIndexInverse(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	i := 0
	a.WalkDescendants(func(n *Node) bool {
		i++
		idx := a.DescendantOrSelfIndex(n)
		if idx != i {
			t.Errorf("index of node %d = %d", i, idx)
		}
		if got := a.NthDescendantOrSelf(idx); got != n {
			t.Errorf("NthDescendantOrSelf(%d) mismatch", idx)
		}
		return true
	})
	if a.DescendantOrSelfIndex(d.Root) != 0 {
		t.Error("document node is not a descendant of a")
	}
	if a.NthDescendantOrSelf(0) != nil || a.NthDescendantOrSelf(999) != nil {
		t.Error("out-of-range NthDescendantOrSelf should be nil")
	}
}

func TestLCA(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	c := a.Children[0].Children[0]
	textInD := a.Children[1].Children[0]
	if got := LCA([]*Node{c, textInD}); got != a {
		t.Errorf("LCA = %v, want a", got)
	}
	if got := LCA([]*Node{c}); got != c {
		t.Errorf("LCA singleton = %v, want self", got)
	}
	if got := LCA(nil); got != nil {
		t.Error("LCA(empty) should be nil")
	}
	other := mustDoc(t, "<z/>").DocElem()
	if got := LCA([]*Node{c, other}); got != nil {
		t.Error("LCA across documents should be nil")
	}
}

func TestCopyDetachesAndPreservesStructure(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	cp := a.Copy()
	if cp == a || cp.Parent != nil || cp.Doc != nil {
		t.Fatal("copy must be a fresh detached node")
	}
	if !DeepEqualNode(a, cp) {
		t.Error("copy should be deep-equal to original")
	}
	if SerializeString(cp) != SerializeString(a) {
		t.Error("copy serialization mismatch")
	}
}

func TestCopyToDocumentFreezesAndOrders(t *testing.T) {
	d := mustDoc(t, sampleXML)
	b := d.DocElem().Children[0]
	cp := CopyToDocument(b, "copy://1")
	if cp.Doc == nil || !cp.Doc.Frozen() {
		t.Fatal("CopyToDocument must freeze")
	}
	if cp.Doc.URI != "copy://1" {
		t.Errorf("URI = %q", cp.Doc.URI)
	}
	if Compare(cp, cp.Children[0]) >= 0 {
		t.Error("copied children must order after parent")
	}
}

func TestSortDocOrderDedups(t *testing.T) {
	d := mustDoc(t, sampleXML)
	a := d.DocElem()
	b := a.Children[0]
	c := b.Children[0]
	in := []*Node{c, a, b, c, a}
	out := SortDocOrder(in)
	want := []*Node{a, b, c}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] wrong", i)
		}
	}
}

func TestSortDocOrderProperty(t *testing.T) {
	d := mustDoc(t, "<r><a/><b><c/><d/></b><e>t</e></r>")
	var all []*Node
	d.Root.WalkDescendants(func(n *Node) bool { all = append(all, n); return true })
	f := func(idx []uint8) bool {
		var in []*Node
		for _, i := range idx {
			in = append(in, all[int(i)%len(all)])
		}
		out := SortDocOrder(in)
		for i := 1; i < len(out); i++ {
			if Compare(out[i-1], out[i]) >= 0 {
				return false
			}
		}
		// every input node appears in output
		for _, n := range in {
			found := false
			for _, m := range out {
				if m == n {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEscaping(t *testing.T) {
	d := NewDocument("esc")
	e := NewElement("e")
	e.SetAttr("a", `<&">`)
	e.AppendChild(NewText("a<b&c>d"))
	d.Root.AppendChild(e)
	d.Freeze()
	got := SerializeString(d.Root)
	want := `<e a="&lt;&amp;&quot;&gt;">a&lt;b&amp;c&gt;d</e>`
	if got != want {
		t.Errorf("escaped = %s, want %s", got, want)
	}
	back, err := ParseString(got, "esc2")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.DocElem().StringValue() != "a<b&c>d" {
		t.Errorf("reparsed text = %q", back.DocElem().StringValue())
	}
	if back.DocElem().Attr("a").Text != `<&">` {
		t.Errorf("reparsed attr = %q", back.DocElem().Attr("a").Text)
	}
}

func TestSerializedSizeMatchesString(t *testing.T) {
	d := mustDoc(t, sampleXML)
	if SerializedSize(d.Root) != int64(len(SerializeString(d.Root))) {
		t.Error("SerializedSize must equal len of serialization")
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	// Property: serialize∘parse∘serialize = serialize for generated trees.
	f := func(names []uint8, texts []string) bool {
		d := NewDocument("prop")
		cur := d.Root
		tags := []string{"a", "b", "c", "d"}
		for i, nb := range names {
			el := NewElement(tags[int(nb)%len(tags)])
			if i < len(texts) && texts[i] != "" {
				el.AppendChild(NewText(sanitize(texts[i])))
			}
			cur.AppendChild(el)
			if nb%3 == 0 {
				cur = el
			}
		}
		if d.DocElem() == nil {
			return true
		}
		d.Freeze()
		s1 := SerializeString(d.Root)
		d2, err := ParseString(s1, "prop2")
		if err != nil {
			return false
		}
		return SerializeString(d2.Root) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps only characters matching the XML 1.0 Char production (the
// tree builder is fed parser output in production, which guarantees this).
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r == 0x09 || r == 0x0A || r == 0x0D:
			sb.WriteRune(r)
		case r >= 0x20 && r <= 0xD7FF && r != 0xFFFD:
			sb.WriteRune(r)
		case r >= 0xE000 && r <= 0xFFFD && r != 0xFFFD:
			sb.WriteRune(r)
		case r >= 0x10000 && r <= 0x10FFFF:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func TestDeepEqual(t *testing.T) {
	a := mustDoc(t, `<a x="1" y="2"><b/>t</a>`).DocElem()
	b := mustDoc(t, `<a y="2" x="1"><b/>t</a>`).DocElem() // attr order irrelevant
	c := mustDoc(t, `<a x="1" y="3"><b/>t</a>`).DocElem()
	e := mustDoc(t, `<a x="1" y="2"><b/>u</a>`).DocElem()
	withComment := mustDoc(t, `<a x="1" y="2"><!--hi--><b/>t</a>`).DocElem()
	if !DeepEqualNode(a, b) {
		t.Error("attribute order must not matter")
	}
	if DeepEqualNode(a, c) {
		t.Error("different attr values must differ")
	}
	if DeepEqualNode(a, e) {
		t.Error("different text must differ")
	}
	if !DeepEqualNode(a, withComment) {
		t.Error("comments are ignored by deep-equal")
	}
}

func TestDeepEqualSeq(t *testing.T) {
	n := mustDoc(t, "<a/>").DocElem()
	m := mustDoc(t, "<a/>").DocElem()
	if !DeepEqualSeq(Sequence{n, NewInteger(1)}, Sequence{m, NewDouble(1)}) {
		t.Error("deep-equal with numeric promotion failed")
	}
	if DeepEqualSeq(Sequence{n}, Sequence{n, n}) {
		t.Error("length mismatch must be unequal")
	}
	if DeepEqualSeq(Sequence{NewString("x")}, Sequence{n}) {
		t.Error("node vs atomic must be unequal")
	}
}
