package xdm

import (
	"math/rand"
	"testing"
)

// buildOrderTestDoc constructs a moderately nested frozen document with
// attributes, text and comments, exercising every structural shape the
// pre/size numbering has to cover.
func buildOrderTestDoc(t *testing.T) *Document {
	t.Helper()
	d, err := ParseString(`<site id="s">
	  <people>
	    <person id="p1"><name>Ann</name><age>47</age><!--note--></person>
	    <person id="p2"><name>Bob</name><profile><age>31</age><edu e="x">BSc</edu></profile></person>
	    <person id="p3"/>
	  </people>
	  <regions r="2"><eu><item i="1"><desc>long<em>bold</em>tail</desc></item></eu><na/></regions>
	</site>`, "order-test.xml")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// allNodes collects every node of the document including attributes.
func allNodes(d *Document) []*Node {
	var out []*Node
	d.Root.WalkDescendants(func(n *Node) bool {
		out = append(out, n)
		out = append(out, n.Attrs...)
		return true
	})
	return out
}

// referenceSortDocOrder is the seed's allocating merge sort + dedup, kept as
// the semantic oracle for the in-place SortDocOrder.
func referenceSortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	var mergeSort func(nodes []*Node) []*Node
	mergeSort = func(nodes []*Node) []*Node {
		if len(nodes) < 2 {
			return nodes
		}
		mid := len(nodes) / 2
		left := mergeSort(append([]*Node(nil), nodes[:mid]...))
		right := mergeSort(append([]*Node(nil), nodes[mid:]...))
		out := make([]*Node, 0, len(nodes))
		i, j := 0, 0
		for i < len(left) && j < len(right) {
			if Compare(left[i], right[j]) <= 0 {
				out = append(out, left[i])
				i++
			} else {
				out = append(out, right[j])
				j++
			}
		}
		out = append(out, left[i:]...)
		out = append(out, right[j:]...)
		return out
	}
	sorted := mergeSort(nodes)
	out := sorted[:1]
	for _, n := range sorted[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

func TestSortDocOrderMatchesReference(t *testing.T) {
	d1 := buildOrderTestDoc(t)
	d2, err := ParseString(`<other><a x="1"/><b>t</b></other>`, "other.xml")
	if err != nil {
		t.Fatal(err)
	}
	pool := append(allNodes(d1), allNodes(d2)...)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2 * len(pool))
		in := make([]*Node, n)
		for i := range in {
			in[i] = pool[rng.Intn(len(pool))] // duplicates on purpose
		}
		want := referenceSortDocOrder(append([]*Node(nil), in...))
		got := SortDocOrder(append([]*Node(nil), in...))
		if len(got) != len(want) {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: node %d differs: pre %d vs %d",
					trial, i, got[i].Pre(), want[i].Pre())
			}
		}
	}
}

func TestSortDocOrderFastPathLeavesSortedInputAlone(t *testing.T) {
	d := buildOrderTestDoc(t)
	var sorted []*Node
	d.Root.WalkDescendants(func(n *Node) bool {
		sorted = append(sorted, n)
		return true
	})
	got := SortDocOrder(sorted)
	if len(got) != len(sorted) || &got[0] != &sorted[0] {
		t.Fatal("sorted input must be returned as-is")
	}
	allocs := testing.AllocsPerRun(20, func() { SortDocOrder(sorted) })
	if allocs != 0 {
		t.Errorf("SortDocOrder on sorted input allocates %.0f times, want 0", allocs)
	}
}

func TestFreezeAssignsSiblingIndexAndSubtreeSize(t *testing.T) {
	d := buildOrderTestDoc(t)
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		count += len(n.Attrs)
		for i, a := range n.Attrs {
			if int(a.SiblingIndex()) != i {
				t.Errorf("attr %s: sibIdx = %d, want %d", a.Name, a.SiblingIndex(), i)
			}
			if a.SubtreeSize() != 1 {
				t.Errorf("attr %s: size = %d, want 1", a.Name, a.SubtreeSize())
			}
		}
		ranks := int32(1) + int32(len(n.Attrs))
		for i, c := range n.Children {
			if int(c.SiblingIndex()) != i {
				t.Errorf("node %s/%s: sibIdx = %d, want %d", n.Name, c.Name, c.SiblingIndex(), i)
			}
			walk(c)
			ranks += c.SubtreeSize()
		}
		if n.SubtreeSize() != ranks {
			t.Errorf("node %s: size = %d, want %d (sum of self+attrs+children)",
				n.Name, n.SubtreeSize(), ranks)
		}
	}
	walk(d.Root)
	if count != d.NodeCount() {
		t.Errorf("NodeCount = %d, counted %d", d.NodeCount(), count)
	}
	if d.Root.SubtreeSize() != int32(d.NodeCount()) {
		t.Errorf("root size = %d, want NodeCount %d", d.Root.SubtreeSize(), d.NodeCount())
	}
}

func TestIsAncestorOfMatchesParentWalk(t *testing.T) {
	d := buildOrderTestDoc(t)
	nodes := allNodes(d)
	walkAncestor := func(n, m *Node) bool {
		for p := m.Parent; p != nil; p = p.Parent {
			if p == n {
				return true
			}
		}
		return false
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if got, want := n.IsAncestorOf(m), walkAncestor(n, m); got != want {
				t.Fatalf("IsAncestorOf(%s pre=%d, %s pre=%d) = %v, want %v",
					n.Name, n.Pre(), m.Name, m.Pre(), got, want)
			}
		}
	}
	// Detached (unfrozen) trees must still answer via the parent walk.
	det := NewElement("a")
	ch := NewElement("b")
	det.AppendChild(ch)
	if !det.IsAncestorOf(ch) || ch.IsAncestorOf(det) {
		t.Error("detached-tree ancestor test broken")
	}
}

func TestFollowingMatchesNaiveScan(t *testing.T) {
	d := buildOrderTestDoc(t)
	naiveFollowing := func(n *Node) *Node {
		cur := n
		if cur.Kind == AttributeNode {
			cur = cur.Parent
			if len(cur.Children) > 0 {
				return cur.Children[0]
			}
		}
		for cur != nil {
			p := cur.Parent
			if p == nil {
				return nil
			}
			idx := -1
			for i, c := range p.Children {
				if c == cur {
					idx = i
					break
				}
			}
			if idx >= 0 && idx+1 < len(p.Children) {
				return p.Children[idx+1]
			}
			cur = p
		}
		return nil
	}
	for _, n := range allNodes(d) {
		if got, want := n.Following(), naiveFollowing(n); got != want {
			t.Errorf("Following(%s pre=%d) differs from naive scan", n.Name, n.Pre())
		}
	}
	// Document-order traversal via NextInDocument visits exactly the
	// non-attribute nodes, in pre order.
	var seq []*Node
	for n := d.Root; n != nil; n = n.NextInDocument() {
		seq = append(seq, n)
	}
	for i := 1; i < len(seq); i++ {
		if Compare(seq[i-1], seq[i]) >= 0 {
			t.Fatalf("NextInDocument order violated at %d", i)
		}
	}
	want := 0
	d.Root.WalkDescendants(func(*Node) bool { want++; return true })
	if len(seq) != want {
		t.Errorf("NextInDocument visited %d nodes, want %d", len(seq), want)
	}
}
