package xdm

import (
	"io"
	"strings"
)

// Serialize writes the subtree rooted at n as XML text. Document nodes emit
// their children; attribute nodes emit name="value" (useful in messages).
func Serialize(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	serializeNode(sw, n)
	return sw.err
}

// SerializeString renders a node subtree to a string.
func SerializeString(n *Node) string {
	var sb strings.Builder
	_ = Serialize(&sb, n)
	return sb.String()
}

// SerializedSize returns the number of bytes the subtree serializes to; the
// benchmark harness uses it to account bandwidth without buffering.
func SerializedSize(n *Node) int64 {
	cw := &countWriter{}
	_ = Serialize(cw, n)
	return cw.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) str(ss string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, ss)
}

func serializeNode(w *stickyWriter, n *Node) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			serializeNode(w, c)
		}
	case ElementNode:
		w.str("<")
		w.str(n.Name)
		for _, a := range n.Attrs {
			w.str(" ")
			w.str(a.Name)
			w.str(`="`)
			w.str(escapeAttr(a.Text))
			w.str(`"`)
		}
		if len(n.Children) == 0 {
			w.str("/>")
			return
		}
		w.str(">")
		for _, c := range n.Children {
			serializeNode(w, c)
		}
		w.str("</")
		w.str(n.Name)
		w.str(">")
	case TextNode:
		w.str(escapeText(n.Text))
	case CommentNode:
		w.str("<!--")
		w.str(n.Text)
		w.str("-->")
	case AttributeNode:
		w.str(n.Name)
		w.str(`="`)
		w.str(escapeAttr(n.Text))
		w.str(`"`)
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
