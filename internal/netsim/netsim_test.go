package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeComponents(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	if got := m.TransferTime(0); got != time.Millisecond {
		t.Errorf("zero bytes = %v, want pure latency", got)
	}
	// 1000 bytes at 1000 B/s = 1 s + 1 ms latency.
	if got := m.TransferTime(1000); got != time.Second+time.Millisecond {
		t.Errorf("1000B = %v", got)
	}
}

func TestZeroBandwidthMeansLatencyOnly(t *testing.T) {
	m := Model{Latency: 5 * time.Millisecond}
	if got := m.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Errorf("bandwidth-free model = %v", got)
	}
}

func TestRoundTripIsSumOfTransfers(t *testing.T) {
	m := GigabitLAN()
	if m.RoundTrip(100, 200) != m.TransferTime(100)+m.TransferTime(200) {
		t.Error("RoundTrip must be the sum of both directions")
	}
}

func TestPresetsOrdering(t *testing.T) {
	lan, wan := GigabitLAN(), WAN()
	if lan.TransferTime(1<<20) >= wan.TransferTime(1<<20) {
		t.Error("a WAN transfer must be slower than LAN")
	}
	if lan.Latency >= wan.Latency {
		t.Error("WAN latency exceeds LAN latency")
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	m := GigabitLAN()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.TransferTime(x) <= m.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWaveTimeIsPerWaveMax(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	lanes := []Exchange{{ReqBytes: 100, RespBytes: 100}, {ReqBytes: 1000, RespBytes: 500}, {ReqBytes: 10, RespBytes: 10}}
	want := m.RoundTrip(1000, 500) // the slowest lane dominates
	if got := m.WaveTime(lanes); got != want {
		t.Errorf("WaveTime = %v, want slowest lane %v", got, want)
	}
	// A single-lane wave costs exactly its round trip (serial equivalence).
	if got := m.WaveTime(lanes[:1]); got != m.RoundTrip(100, 100) {
		t.Errorf("single-lane wave = %v", got)
	}
	if got := m.WaveTime(nil); got != 0 {
		t.Errorf("empty wave = %v, want 0", got)
	}
}

func TestWaveTimeNeverExceedsSerialSum(t *testing.T) {
	m := GigabitLAN()
	lanes := []Exchange{{1000, 2000}, {500, 500}, {9000, 100}}
	var serial time.Duration
	for _, l := range lanes {
		serial += m.RoundTrip(l.ReqBytes, l.RespBytes)
	}
	if w := m.WaveTime(lanes); w > serial {
		t.Errorf("overlapped %v exceeds serial %v", w, serial)
	}
}

// ------------------------------------------------------------ streaming --

// handModel makes the arithmetic easy: 1 ms latency, 1000 B/s.
func handModel() Model { return Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000} }

func TestStreamTimesHandComputed(t *testing.T) {
	m := handModel()
	e := StreamedExchange{
		ReqBytes: 1000, // request arrives at 1s + 1ms
		Chunks: []Chunk{
			{Bytes: 500, ExecNS: int64(time.Second), DeserNS: int64(100 * time.Millisecond)},
			{Bytes: 500, ExecNS: 0, DeserNS: int64(100 * time.Millisecond)},
		},
	}
	req := time.Second + time.Millisecond
	// chunk 0: available req+1s, +latency, +0.5s transfer, +0.1s decode.
	first := req + time.Second + time.Millisecond + 500*time.Millisecond + 100*time.Millisecond
	// chunk 1: follows chunk 0's bytes immediately (compute done), transfers
	// 0.5s while chunk 0 decodes (0.1s, hidden), then decodes 0.1s.
	last := req + time.Second + time.Millisecond + time.Second + 100*time.Millisecond
	gotFirst, gotLast := m.StreamTimes(e)
	if gotFirst != first || gotLast != last {
		t.Errorf("StreamTimes = (%v, %v), want (%v, %v)", gotFirst, gotLast, first, last)
	}
	// Gather-whole: everything computed, transferred, decoded in sequence.
	gFirst, gLast := m.GatherTimes(e)
	want := req + time.Second + (time.Millisecond + time.Second) + 200*time.Millisecond
	if gFirst != want || gLast != want {
		t.Errorf("GatherTimes = (%v, %v), want %v", gFirst, gLast, want)
	}
	if gotLast >= gLast {
		t.Errorf("streamed completion %v must beat gather-whole %v", gotLast, gLast)
	}
}

func TestStreamTimesNeverExceedGather(t *testing.T) {
	m := GigabitLAN()
	f := func(req uint16, b1, b2, b3 uint16, e1, e2, e3 uint16, d1, d2, d3 uint16) bool {
		e := StreamedExchange{ReqBytes: int64(req), Chunks: []Chunk{
			{Bytes: int64(b1), ExecNS: int64(e1) * 1000, DeserNS: int64(d1) * 1000},
			{Bytes: int64(b2), ExecNS: int64(e2) * 1000, DeserNS: int64(d2) * 1000},
			{Bytes: int64(b3), ExecNS: int64(e3) * 1000, DeserNS: int64(d3) * 1000},
		}}
		sFirst, sLast := m.StreamTimes(e)
		_, gLast := m.GatherTimes(e)
		return sFirst <= sLast && sLast <= gLast
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamedWaveTime(t *testing.T) {
	m := handModel()
	fast := StreamedExchange{ReqBytes: 10, Chunks: []Chunk{{Bytes: 10}}}
	slow := StreamedExchange{ReqBytes: 10, Chunks: []Chunk{{Bytes: 10, ExecNS: int64(time.Second)}, {Bytes: 2000}}}
	wf, wl := m.StreamedWaveTime([]StreamedExchange{slow, fast})
	ff, _ := m.StreamTimes(fast)
	_, sl := m.StreamTimes(slow)
	if wf != ff {
		t.Errorf("wave first = %v, want fastest lane's first chunk %v", wf, ff)
	}
	if wl != sl {
		t.Errorf("wave last = %v, want slowest lane %v", wl, sl)
	}
	gf, gl := m.GatherWaveTime([]StreamedExchange{slow, fast})
	if gf != gl {
		t.Errorf("gather-whole first %v must equal last %v (nothing usable earlier)", gf, gl)
	}
	if wf >= gf {
		t.Errorf("streamed first %v must precede gather completion %v", wf, gf)
	}
}

func TestPipelinedVsWaveBarrier(t *testing.T) {
	m := handModel()
	// Four identical lanes over two slots: pipelined = 2 back-to-back lanes
	// per slot; the barrier schedule is the same here (identical lanes), so
	// use one slow lane to create the difference.
	mk := func(exec time.Duration) StreamedExchange {
		return StreamedExchange{ReqBytes: 10, Chunks: []Chunk{{Bytes: 10, ExecNS: int64(exec)}}}
	}
	lanes := []StreamedExchange{mk(time.Second), mk(0), mk(0), mk(0)}
	pipe := m.PipelinedTime(lanes, 2)
	barrier := m.WaveBarrierTime(lanes, 2)
	if pipe >= barrier {
		t.Errorf("pipelined %v must beat the wave barrier %v with a straggler in wave one", pipe, barrier)
	}
	// Width 1 degenerates to the serial sum for both.
	var serial time.Duration
	for _, l := range lanes {
		_, d := m.GatherTimes(l)
		serial += d
	}
	if b := m.WaveBarrierTime(lanes, 1); b != serial {
		t.Errorf("width-1 barrier = %v, want serial sum %v", b, serial)
	}
}

// TestHedgedLaneTimeHand checks the hedging model against hand-computed
// cases: 1 ms latency, 1000 B/s, so a 100 B request + 200 B response round
// trip costs 1ms+0.1s + 1ms+0.2s = 302 ms.
func TestHedgedLaneTimeHand(t *testing.T) {
	m := handModel()
	e := Exchange{ReqBytes: 100, RespBytes: 200}
	rt := 302 * time.Millisecond
	if got := m.LaneTime(e, 10*time.Millisecond); got != rt+10*time.Millisecond {
		t.Fatalf("LaneTime = %v, want %v", got, rt+10*time.Millisecond)
	}

	// Primary answers before the deadline: no hedge, no waste.
	done, hedged, wasted := m.HedgedLaneTime(e, 0, 0, 400*time.Millisecond)
	if done != rt || hedged || wasted != 0 {
		t.Errorf("fast primary: done=%v hedged=%v wasted=%v, want %v/false/0", done, hedged, wasted, rt)
	}

	// Straggling primary (rt + 10s), healthy replica, hedge at 400 ms: the
	// replica wins at 400ms + rt, and the primary burned the whole window.
	done, hedged, wasted = m.HedgedLaneTime(e, 10*time.Second, 0, 400*time.Millisecond)
	want := 400*time.Millisecond + rt
	if done != want || !hedged || wasted != want {
		t.Errorf("straggler: done=%v hedged=%v wasted=%v, want %v/true/%v", done, hedged, wasted, want, want)
	}

	// Both slow, primary still wins: the hedge ran from its launch to the
	// primary's finish.
	done, hedged, wasted = m.HedgedLaneTime(e, 200*time.Millisecond, 10*time.Second, 400*time.Millisecond)
	if done != rt+200*time.Millisecond || !hedged || wasted != done-400*time.Millisecond {
		t.Errorf("primary wins race: done=%v hedged=%v wasted=%v", done, hedged, wasted)
	}

	// Hedging must never make a lane slower than the unhedged dispatch.
	for _, pd := range []time.Duration{0, 100 * time.Millisecond, time.Second} {
		for _, rd := range []time.Duration{0, 500 * time.Millisecond, 2 * time.Second} {
			for _, after := range []time.Duration{0, 300 * time.Millisecond, 600 * time.Millisecond} {
				d, _, _ := m.HedgedLaneTime(e, pd, rd, after)
				if base := m.LaneTime(e, pd); d > base {
					t.Errorf("hedged %v slower than unhedged %v (pd=%v rd=%v after=%v)", d, base, pd, rd, after)
				}
			}
		}
	}
}

// TestPercentile checks the nearest-rank definition and input preservation.
func TestPercentile(t *testing.T) {
	times := []time.Duration{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want time.Duration
	}{{0, 1}, {20, 1}, {50, 3}, {99, 5}, {100, 5}}
	for _, c := range cases {
		if got := Percentile(times, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if times[0] != 5 || times[4] != 3 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
