package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeComponents(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	if got := m.TransferTime(0); got != time.Millisecond {
		t.Errorf("zero bytes = %v, want pure latency", got)
	}
	// 1000 bytes at 1000 B/s = 1 s + 1 ms latency.
	if got := m.TransferTime(1000); got != time.Second+time.Millisecond {
		t.Errorf("1000B = %v", got)
	}
}

func TestZeroBandwidthMeansLatencyOnly(t *testing.T) {
	m := Model{Latency: 5 * time.Millisecond}
	if got := m.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Errorf("bandwidth-free model = %v", got)
	}
}

func TestRoundTripIsSumOfTransfers(t *testing.T) {
	m := GigabitLAN()
	if m.RoundTrip(100, 200) != m.TransferTime(100)+m.TransferTime(200) {
		t.Error("RoundTrip must be the sum of both directions")
	}
}

func TestPresetsOrdering(t *testing.T) {
	lan, wan := GigabitLAN(), WAN()
	if lan.TransferTime(1<<20) >= wan.TransferTime(1<<20) {
		t.Error("a WAN transfer must be slower than LAN")
	}
	if lan.Latency >= wan.Latency {
		t.Error("WAN latency exceeds LAN latency")
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	m := GigabitLAN()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.TransferTime(x) <= m.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWaveTimeIsPerWaveMax(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	lanes := []Exchange{{ReqBytes: 100, RespBytes: 100}, {ReqBytes: 1000, RespBytes: 500}, {ReqBytes: 10, RespBytes: 10}}
	want := m.RoundTrip(1000, 500) // the slowest lane dominates
	if got := m.WaveTime(lanes); got != want {
		t.Errorf("WaveTime = %v, want slowest lane %v", got, want)
	}
	// A single-lane wave costs exactly its round trip (serial equivalence).
	if got := m.WaveTime(lanes[:1]); got != m.RoundTrip(100, 100) {
		t.Errorf("single-lane wave = %v", got)
	}
	if got := m.WaveTime(nil); got != 0 {
		t.Errorf("empty wave = %v, want 0", got)
	}
}

func TestWaveTimeNeverExceedsSerialSum(t *testing.T) {
	m := GigabitLAN()
	lanes := []Exchange{{1000, 2000}, {500, 500}, {9000, 100}}
	var serial time.Duration
	for _, l := range lanes {
		serial += m.RoundTrip(l.ReqBytes, l.RespBytes)
	}
	if w := m.WaveTime(lanes); w > serial {
		t.Errorf("overlapped %v exceeds serial %v", w, serial)
	}
}
