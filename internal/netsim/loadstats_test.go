package netsim

import (
	"testing"
	"time"
)

// TestSummarize checks that latency quantiles are computed over dispatched
// lanes only — rejected (never-dispatched) lanes move the shed rate and
// RejectP99 but must not drag P50/P99 toward their near-zero latencies.
func TestSummarize(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	cases := []struct {
		name     string
		outcomes []LaneOutcome
		want     LoadStats
		shed     float64
	}{
		{
			name: "empty",
			want: LoadStats{},
			shed: 0,
		},
		{
			name: "all dispatched",
			outcomes: []LaneOutcome{
				{Latency: ms(10)}, {Latency: ms(20)}, {Latency: ms(30)}, {Latency: ms(40)},
			},
			want: LoadStats{Dispatched: 4, P50: ms(20), P90: ms(40), P99: ms(40)},
			shed: 0,
		},
		{
			name: "rejects excluded from latency quantiles",
			outcomes: []LaneOutcome{
				{Latency: ms(10)}, {Latency: ms(20)}, {Latency: ms(30)}, {Latency: ms(40)},
				// Four fast rejections: naive pooling would report P50 well
				// under 20ms; the correct P50 over dispatched lanes is 20ms.
				{Latency: us(5), Rejected: true}, {Latency: us(8), Rejected: true},
				{Latency: us(3), Rejected: true}, {Latency: us(9), Rejected: true},
			},
			want: LoadStats{
				Dispatched: 4, Rejected: 4,
				P50: ms(20), P90: ms(40), P99: ms(40),
				RejectP99: us(9),
			},
			shed: 0.5,
		},
		{
			name: "all rejected",
			outcomes: []LaneOutcome{
				{Latency: us(4), Rejected: true}, {Latency: us(7), Rejected: true},
			},
			want: LoadStats{Rejected: 2, RejectP99: us(7)},
			shed: 1,
		},
		{
			name: "single dispatched lane",
			outcomes: []LaneOutcome{
				{Latency: ms(15)}, {Latency: us(2), Rejected: true},
			},
			want: LoadStats{
				Dispatched: 1, Rejected: 1,
				P50: ms(15), P90: ms(15), P99: ms(15),
				RejectP99: us(2),
			},
			shed: 0.5,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Summarize(c.outcomes)
			if got != c.want {
				t.Errorf("Summarize = %+v, want %+v", got, c.want)
			}
			if got.ShedRate() != c.shed {
				t.Errorf("ShedRate = %v, want %v", got.ShedRate(), c.shed)
			}
		})
	}
}

// TestSummarizeSlowShedIsNotHidden is the inverse hazard: if rejection is
// slow (a bug — sheds must fail fast), RejectP99 exposes it instead of it
// hiding inside the dispatched-lane tail.
func TestSummarizeSlowShedIsNotHidden(t *testing.T) {
	st := Summarize([]LaneOutcome{
		{Latency: 10 * time.Millisecond},
		{Latency: 500 * time.Millisecond, Rejected: true},
	})
	if st.P99 != 10*time.Millisecond {
		t.Errorf("P99 = %v, want 10ms (rejected lane must not enter)", st.P99)
	}
	if st.RejectP99 != 500*time.Millisecond {
		t.Errorf("RejectP99 = %v, want 500ms", st.RejectP99)
	}
}
