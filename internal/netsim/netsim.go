// Package netsim provides a deterministic network cost model. The paper's
// evaluation ran on three machines with 1 Gb/s Ethernet; this repository runs
// peers in one process, so transports account simulated transfer time from a
// configurable latency + bandwidth model instead of wall-clock socket time.
// The model makes the Figure 8/9 "network" component reproducible on any
// machine.
package netsim

import "time"

// Model is a latency + bandwidth link model.
type Model struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// BandwidthBytesPerSec is the link throughput. Zero disables the
	// bandwidth term.
	BandwidthBytesPerSec float64
}

// GigabitLAN approximates the paper's testbed: 1 Gb/s Ethernet, 0.2 ms
// one-way latency.
func GigabitLAN() Model {
	return Model{Latency: 200 * time.Microsecond, BandwidthBytesPerSec: 125e6}
}

// WAN approximates a wide-area link (20 ms, 50 Mb/s), the setting the paper
// argues benefits even more from reduced message sizes.
func WAN() Model {
	return Model{Latency: 20 * time.Millisecond, BandwidthBytesPerSec: 6.25e6}
}

// TransferTime returns the simulated time to move n bytes one way.
func (m Model) TransferTime(n int64) time.Duration {
	d := m.Latency
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(n) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	return d
}

// RoundTrip returns the simulated time for a request/response exchange.
func (m Model) RoundTrip(reqBytes, respBytes int64) time.Duration {
	return m.TransferTime(reqBytes) + m.TransferTime(respBytes)
}

// Exchange is one request/response pair, the unit of wave accounting.
type Exchange struct {
	ReqBytes  int64
	RespBytes int64
}

// WaveTime returns the simulated duration of a set of exchanges dispatched
// concurrently (one scatter-gather wave): overlapped transfers cost the
// slowest lane — the per-wave maximum — instead of the serial sum, modeling
// peers that sit behind independent switch ports as in the paper's testbed.
// A single-lane wave therefore costs exactly RoundTrip.
func (m Model) WaveTime(lanes []Exchange) time.Duration {
	var w time.Duration
	for _, l := range lanes {
		if d := m.RoundTrip(l.ReqBytes, l.RespBytes); d > w {
			w = d
		}
	}
	return w
}
