// Package netsim provides a deterministic network cost model. The paper's
// evaluation ran on three machines with 1 Gb/s Ethernet; this repository runs
// peers in one process, so transports account simulated transfer time from a
// configurable latency + bandwidth model instead of wall-clock socket time.
// The model makes the Figure 8/9 "network" component reproducible on any
// machine.
//
// The layer's contract: every function is a pure pricing of measured or
// injected inputs (bytes, compute nanoseconds, delays) under a latency +
// bandwidth link — same inputs, same answer, on any machine. The model
// grows with the dispatch layer it prices: single exchanges (RoundTrip),
// concurrent scatter waves charged the per-wave maximum (WaveTime),
// streamed lanes as compute/transfer/decode pipelines (StreamTimes,
// PipelinedTime), and hedged lanes racing a replica after a deadline
// (HedgedLaneTime, with Percentile for tail statistics). netsim imports
// nothing from the rest of the system.
package netsim

import (
	"math"
	"sort"
	"time"
)

// Model is a latency + bandwidth link model.
type Model struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// BandwidthBytesPerSec is the link throughput. Zero disables the
	// bandwidth term.
	BandwidthBytesPerSec float64
}

// GigabitLAN approximates the paper's testbed: 1 Gb/s Ethernet, 0.2 ms
// one-way latency.
func GigabitLAN() Model {
	return Model{Latency: 200 * time.Microsecond, BandwidthBytesPerSec: 125e6}
}

// WAN approximates a wide-area link (20 ms, 50 Mb/s), the setting the paper
// argues benefits even more from reduced message sizes.
func WAN() Model {
	return Model{Latency: 20 * time.Millisecond, BandwidthBytesPerSec: 6.25e6}
}

// TransferTime returns the simulated time to move n bytes one way.
func (m Model) TransferTime(n int64) time.Duration {
	d := m.Latency
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(n) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	return d
}

// RoundTrip returns the simulated time for a request/response exchange.
func (m Model) RoundTrip(reqBytes, respBytes int64) time.Duration {
	return m.TransferTime(reqBytes) + m.TransferTime(respBytes)
}

// Exchange is one request/response pair, the unit of wave accounting.
type Exchange struct {
	ReqBytes  int64
	RespBytes int64
}

// Timeline is one exchange broken into phase-completion instants, relative
// to the exchange's start: request delivered to the peer, remote execution
// finished, response delivered back. The trace figure builds its simulated
// waterfalls from these instants.
type Timeline struct {
	ReqDoneNS  int64
	ExecDoneNS int64
	RespDoneNS int64
}

// Timeline prices an exchange whose remote evaluation takes execNS.
func (m Model) Timeline(e Exchange, execNS int64) Timeline {
	req := m.TransferTime(e.ReqBytes).Nanoseconds()
	exec := req + execNS
	return Timeline{
		ReqDoneNS:  req,
		ExecDoneNS: exec,
		RespDoneNS: exec + m.TransferTime(e.RespBytes).Nanoseconds(),
	}
}

// WaveTime returns the simulated duration of a set of exchanges dispatched
// concurrently (one scatter-gather wave): overlapped transfers cost the
// slowest lane — the per-wave maximum — instead of the serial sum, modeling
// peers that sit behind independent switch ports as in the paper's testbed.
// A single-lane wave therefore costs exactly RoundTrip.
func (m Model) WaveTime(lanes []Exchange) time.Duration {
	var w time.Duration
	for _, l := range lanes {
		if d := m.RoundTrip(l.ReqBytes, l.RespBytes); d > w {
			w = d
		}
	}
	return w
}

// ------------------------------------------------------------ streaming --

// Chunk is one response frame of a streamed exchange: its wire size, the
// server compute that had to finish before the frame could leave (the
// call's evaluation time, carried by the call's first chunk), and the
// originator-side decode cost.
type Chunk struct {
	Bytes   int64
	ExecNS  int64
	DeserNS int64
}

// StreamedExchange is one streamed request/response lane: the request
// travels whole, the response comes back as ordered chunks.
type StreamedExchange struct {
	ReqBytes int64
	Chunks   []Chunk
}

// serialize returns the pure bandwidth term for n bytes (no latency).
func (m Model) serialize(n int64) time.Duration {
	if m.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.BandwidthBytesPerSec * float64(time.Second))
}

// StreamTimes models one streamed lane as a three-stage pipeline — server
// compute, transfer, client decode. Chunk i becomes available once the
// request has arrived and the compute of chunks 0..i has finished; its
// bytes follow the previous chunk's on the open connection (the one-way
// latency delays each chunk's first byte, but chunks in flight overlap);
// the client decodes chunk i while chunk i+1 is still transferring. first
// is when the first chunk has been decoded — the originator's first usable
// result — and last when the final one has.
func (m Model) StreamTimes(e StreamedExchange) (first, last time.Duration) {
	reqArrived := m.TransferTime(e.ReqBytes)
	if len(e.Chunks) == 0 {
		return reqArrived, reqArrived
	}
	var computed, arrived, decoded time.Duration
	for i, c := range e.Chunks {
		computed += time.Duration(c.ExecNS)
		avail := reqArrived + computed + m.Latency
		if arrived > avail {
			avail = arrived
		}
		arrived = avail + m.serialize(c.Bytes)
		start := arrived
		if decoded > start {
			start = decoded
		}
		decoded = start + time.Duration(c.DeserNS)
		if i == 0 {
			first = decoded
		}
	}
	return first, decoded
}

// GatherTimes models the same lane without streaming: the peer computes
// every chunk, the whole response transfers, and the client decodes it
// whole — nothing is usable before everything arrived, so first equals
// last.
func (m Model) GatherTimes(e StreamedExchange) (first, last time.Duration) {
	var respBytes, execNS, deserNS int64
	for _, c := range e.Chunks {
		respBytes += c.Bytes
		execNS += c.ExecNS
		deserNS += c.DeserNS
	}
	total := m.TransferTime(e.ReqBytes) + time.Duration(execNS) +
		m.TransferTime(respBytes) + time.Duration(deserNS)
	return total, total
}

// StreamedWaveTime returns the first-result and completion time of a wave
// of streamed lanes in flight together (independent ports, like WaveTime):
// the originator's first usable result is the fastest lane's first chunk,
// completion is the slowest lane's last.
func (m Model) StreamedWaveTime(lanes []StreamedExchange) (first, last time.Duration) {
	for i, l := range lanes {
		f, d := m.StreamTimes(l)
		if i == 0 || f < first {
			first = f
		}
		if d > last {
			last = d
		}
	}
	return first, last
}

// GatherWaveTime is the gather-whole counterpart of StreamedWaveTime: no
// result is usable before the slowest lane finished, so first equals last.
func (m Model) GatherWaveTime(lanes []StreamedExchange) (first, last time.Duration) {
	for _, l := range lanes {
		if _, d := m.GatherTimes(l); d > last {
			last = d
		}
	}
	return last, last
}

// PipelinedTime returns the makespan of dispatching lanes over width
// concurrent slots without wave barriers: each slot starts its next lane
// the moment its current one completes, so a finished lane's slot overlaps
// the next lane's chunks with its siblings' — chunk pipelining across
// waves. Lanes are assigned greedily in order to the earliest-free slot.
func (m Model) PipelinedTime(lanes []StreamedExchange, width int) time.Duration {
	if width < 1 {
		width = 1
	}
	slots := make([]time.Duration, min(width, max(len(lanes), 1)))
	for _, l := range lanes {
		best := 0
		for i := range slots {
			if slots[i] < slots[best] {
				best = i
			}
		}
		_, d := m.StreamTimes(l)
		slots[best] += d
	}
	var makespan time.Duration
	for _, s := range slots {
		if s > makespan {
			makespan = s
		}
	}
	return makespan
}

// WaveBarrierTime is the wave-scheduled counterpart of PipelinedTime:
// lanes dispatch in consecutive waves of width, each wave waiting for the
// slowest lane of the previous one — how gather-whole scatter behaves when
// there are more peers than pool workers.
func (m Model) WaveBarrierTime(lanes []StreamedExchange, width int) time.Duration {
	if width < 1 {
		width = 1
	}
	var total time.Duration
	for start := 0; start < len(lanes); start += width {
		_, last := m.GatherWaveTime(lanes[start:min(start+width, len(lanes))])
		total += last
	}
	return total
}

// -------------------------------------------------------------- hedging --
//
// A scatter wave completes when its slowest lane does, so one straggling
// peer sets the whole query's latency: at N lanes, the wave samples the
// per-lane tail N times per query. Hedging bounds that tail — if a lane has
// not answered within a deadline, the identical exchange is issued to a
// replica and the earlier response wins. The model below prices one hedged
// lane deterministically; callers sweep it over an injected delay
// distribution (bench.FigHedge) to reproduce the P99 effect.

// LaneTime is the completion time of one unhedged request/response lane
// whose server spends delay between receiving the request and answering —
// evaluation time, queueing, or an injected straggle.
func (m Model) LaneTime(e Exchange, delay time.Duration) time.Duration {
	return m.RoundTrip(e.ReqBytes, e.RespBytes) + delay
}

// HedgedLaneTime prices the same lane dispatched under a hedging policy: if
// the primary (server delay primaryDelay) has not answered by hedgeAfter,
// the exchange is duplicated to a replica (server delay replicaDelay) and
// the earlier response wins, the loser being cancelled at that moment.
// done is the lane's completion; hedged reports whether the hedge fired;
// wasted is the time the losing attempt spent in flight before its
// cancellation — zero when the primary answered within the deadline and no
// hedge was launched.
func (m Model) HedgedLaneTime(e Exchange, primaryDelay, replicaDelay, hedgeAfter time.Duration) (done time.Duration, hedged bool, wasted time.Duration) {
	primary := m.LaneTime(e, primaryDelay)
	if hedgeAfter < 0 || primary <= hedgeAfter {
		return primary, false, 0
	}
	hedge := hedgeAfter + m.LaneTime(e, replicaDelay)
	if hedge < primary {
		// The replica won; the primary burned the whole window from dispatch
		// to the winner's finish.
		return hedge, true, hedge
	}
	// The primary won after all; the hedge ran from its launch to the finish.
	return primary, true, primary - hedgeAfter
}

// Percentile returns the pth percentile (nearest-rank, p in [0, 100]) of
// the given durations. The input is not modified.
func Percentile(times []time.Duration, p float64) time.Duration {
	if len(times) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
