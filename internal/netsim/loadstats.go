package netsim

import "time"

// This file prices load-test outcomes: latency quantiles over a run that
// mixes dispatched lanes (hedged or not) with rejected ones. The pitfall it
// exists to fix: a lane shed by admission control fails in microseconds,
// and feeding that near-zero "latency" into a percentile makes an
// overloaded run look *faster* at P99 than a healthy one. Rejected lanes
// therefore never enter the latency distribution — they only move the shed
// rate — while still failing fast enough to be worth measuring separately.

// LaneOutcome is one query's (or lane's) fate in a load run.
type LaneOutcome struct {
	// Latency is the wall time from submission to outcome.
	Latency time.Duration
	// Rejected marks a lane that was never dispatched — shed by admission
	// control before any work started. Its Latency is the time to the
	// rejection, which belongs in RejectP99, never in P50/P90/P99.
	Rejected bool
}

// LoadStats summarizes a load run: counts on the full population, latency
// quantiles on dispatched lanes only.
type LoadStats struct {
	// Dispatched and Rejected partition the outcomes.
	Dispatched int
	Rejected   int
	// P50/P90/P99 are nearest-rank latency quantiles over dispatched lanes.
	P50, P90, P99 time.Duration
	// RejectP99 is the nearest-rank P99 of time-to-rejection over the
	// rejected lanes — how fast shedding fails, which overload tests bound
	// against the deadline.
	RejectP99 time.Duration
}

// ShedRate is the rejected fraction of all outcomes.
func (s LoadStats) ShedRate() float64 {
	total := s.Dispatched + s.Rejected
	if total == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(total)
}

// Summarize computes LoadStats over a run's outcomes. The input is not
// modified.
func Summarize(outcomes []LaneOutcome) LoadStats {
	var st LoadStats
	var dispatched, rejected []time.Duration
	for _, o := range outcomes {
		if o.Rejected {
			rejected = append(rejected, o.Latency)
			continue
		}
		dispatched = append(dispatched, o.Latency)
	}
	st.Dispatched = len(dispatched)
	st.Rejected = len(rejected)
	st.P50 = Percentile(dispatched, 50)
	st.P90 = Percentile(dispatched, 90)
	st.P99 = Percentile(dispatched, 99)
	st.RejectP99 = Percentile(rejected, 99)
	return st
}
