package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// eps absorbs the float64-seconds round-trip of the fluid simulation; every
// hand-computed value below is exact far beyond this.
const eps = time.Microsecond

func within(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestSharedFinishTimesHandComputed pins the processor-sharing simulation to
// hand-derived timelines on a 1000 B/s link (1000 bytes = 1 s dedicated).
func TestSharedFinishTimesHandComputed(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	cases := []struct {
		name  string
		lanes []ContendedLane
		want  []time.Duration
	}{
		{
			// Two equal transfers from t=0 each get half the link: both
			// finish at 2 s — twice the dedicated time, same makespan as
			// running them back to back (work conservation).
			name: "two equal lanes halve the link",
			lanes: []ContendedLane{
				{Ready: 0, Bytes: 1000},
				{Ready: 0, Bytes: 1000},
			},
			want: []time.Duration{2 * time.Second, 2 * time.Second},
		},
		{
			// A drains alone for 0.5 s (500 bytes left), then B (500 bytes)
			// arrives; sharing, each needs 1 s more: both finish at 1.5 s.
			name: "late arrival shares the remainder",
			lanes: []ContendedLane{
				{Ready: 0, Bytes: 1000},
				{Ready: 500 * time.Millisecond, Bytes: 500},
			},
			want: []time.Duration{1500 * time.Millisecond, 1500 * time.Millisecond},
		},
		{
			// The short transfer drains first (shared until then), returning
			// the link to the long one: 200 shared bytes each in 0.4 s, then
			// the long lane's remaining 800 bytes at full rate.
			name: "short lane exits and frees the link",
			lanes: []ContendedLane{
				{Ready: 0, Bytes: 1000},
				{Ready: 0, Bytes: 200},
			},
			want: []time.Duration{1200 * time.Millisecond, 400 * time.Millisecond},
		},
		{
			// Disjoint in time: no sharing, each costs its dedicated time.
			name: "disjoint lanes never contend",
			lanes: []ContendedLane{
				{Ready: 0, Bytes: 100},
				{Ready: time.Second, Bytes: 100},
			},
			want: []time.Duration{100 * time.Millisecond, 1100 * time.Millisecond},
		},
		{
			// A zero-byte response completes the instant it is ready, and a
			// bandwidth-occupying sibling does not delay it.
			name: "zero-byte lane is free",
			lanes: []ContendedLane{
				{Ready: 0, Bytes: 1000},
				{Ready: 300 * time.Millisecond, Bytes: 0},
			},
			want: []time.Duration{time.Second, 300 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		got := m.SharedFinishTimes(tc.lanes)
		for i := range tc.want {
			if !within(got[i], tc.want[i], eps) {
				t.Errorf("%s: lane %d finished at %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestSharedSingleLaneEqualsIndependent: with one lane there is nothing to
// share — the contended wave prices exactly the independent-port LaneTime,
// so the model strictly generalizes the existing one.
func TestSharedSingleLaneEqualsIndependent(t *testing.T) {
	for _, m := range []Model{GigabitLAN(), WAN(), {Latency: time.Millisecond}} {
		e := Exchange{ReqBytes: 2 << 10, RespBytes: 256 << 10}
		delay := 300 * time.Microsecond
		_, makespan := m.SharedGatherWave([]Exchange{e}, []time.Duration{delay})
		if want := m.LaneTime(e, delay); !within(makespan, want, eps) {
			t.Errorf("model %+v: single shared lane %v, independent %v", m, makespan, want)
		}
	}
}

// TestSharedWaveProperties quickchecks the fluid model over random waves:
//
//  1. sharing never beats independent ports — every lane finishes no earlier
//     than it would with the link to itself;
//  2. adding a lane never speeds up the existing ones (monotone in lane
//     count), and never lowers the makespan;
//  3. the link is work-conserving — the makespan never exceeds the last
//     arrival plus the total dedicated transfer time.
func TestSharedWaveProperties(t *testing.T) {
	m := GigabitLAN()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		lanes := make([]ContendedLane, n)
		for i := range lanes {
			lanes[i] = ContendedLane{
				Ready: time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
				Bytes: rng.Int63n(64 << 10),
			}
		}
		done := m.SharedFinishTimes(lanes)
		var makespan, lastReady time.Duration
		var totalSerialize time.Duration
		for i, l := range lanes {
			indep := l.Ready + m.serialize(l.Bytes)
			if done[i]+eps < indep {
				t.Fatalf("trial %d: lane %d finished at %v, before its independent-port time %v",
					trial, i, done[i], indep)
			}
			if done[i] > makespan {
				makespan = done[i]
			}
			if l.Ready > lastReady {
				lastReady = l.Ready
			}
			totalSerialize += m.serialize(l.Bytes)
		}
		if n > 1 {
			prev := m.SharedFinishTimes(lanes[:n-1])
			var prevMakespan time.Duration
			for i := range prev {
				if prev[i] > done[i]+eps {
					t.Fatalf("trial %d: adding lane %d sped lane %d up (%v -> %v)",
						trial, n-1, i, prev[i], done[i])
				}
				if prev[i] > prevMakespan {
					prevMakespan = prev[i]
				}
			}
			if prevMakespan > makespan+eps {
				t.Fatalf("trial %d: adding a lane lowered the makespan (%v -> %v)",
					trial, prevMakespan, makespan)
			}
		}
		if bound := lastReady + totalSerialize; makespan > bound+eps {
			t.Fatalf("trial %d: makespan %v exceeds the work-conservation bound %v",
				trial, makespan, bound)
		}
	}
}

// TestContendedResponseTimeSignal pins the router's cost signal: alone it is
// the plain transfer, and each extra in-flight response stretches it by one
// more dedicated serialize term.
func TestContendedResponseTimeSignal(t *testing.T) {
	m := Model{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	if got := m.ContendedResponseTime(500, 0); got != time.Millisecond+500*time.Millisecond {
		t.Errorf("uncontended = %v", got)
	}
	if got := m.ContendedResponseTime(500, 3); got != time.Millisecond+2*time.Second {
		t.Errorf("3 in flight = %v", got)
	}
	prev := time.Duration(-1)
	for k := 0; k < 8; k++ {
		cur := m.ContendedResponseTime(1000, k)
		if cur <= prev {
			t.Fatalf("cost signal not strictly monotone in inflight at k=%d: %v <= %v", k, cur, prev)
		}
		prev = cur
	}
}
