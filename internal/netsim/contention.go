package netsim

// This file extends the link model with gather-side bandwidth contention.
// WaveTime prices peers behind independent switch ports — N responses
// overlap for free. Real originators sit behind ONE access link: when many
// gather lanes answer at once, their response bytes share that link's
// bandwidth. The model here is processor sharing (the fluid limit of fair
// queueing): at every instant the link's bandwidth divides equally among the
// responses in flight, so k concurrent transfers each drain at 1/k of the
// link rate. Requests are small and travel the opposite direction, so only
// the response (gather) direction contends.
//
// Two consequences the router can score against:
//
//  1. every duplicate response — a hedge that loses, a blind retry that
//     races its original — costs not just its own transfer but a slowdown
//     of every sibling lane sharing the link;
//  2. on a work-conserving shared link the wave's makespan is invariant
//     under staggering, so the only routing wins are avoiding wasted bytes
//     (duplicates) and avoiding dead-peer detection stalls. That is exactly
//     what dispatch-time health routing (xrpc.RetryPolicy.RouteLive) buys.

import (
	"math"
	"time"
)

// ContendedLane is one response transfer on the shared originator link:
// Ready is the instant its first byte reaches the link (request transfer +
// server time + one-way return latency), Bytes its wire size.
type ContendedLane struct {
	Ready time.Duration
	Bytes int64
}

// SharedFinishTimes returns each lane's completion instant when all lanes
// share one link under processor sharing. A lane with zero bytes (or a model
// without a bandwidth term) completes at its Ready instant. The simulation
// is event-driven and exact for the fluid model: between events (a lane
// becoming ready, a lane draining) every active lane progresses at 1/k of
// the link rate.
func (m Model) SharedFinishTimes(lanes []ContendedLane) []time.Duration {
	n := len(lanes)
	done := make([]time.Duration, n)
	fin := make([]bool, n)
	rem := make([]float64, n) // seconds of transfer left at the FULL link rate
	ready := make([]float64, n)
	left := 0
	for i, l := range lanes {
		ready[i] = l.Ready.Seconds()
		rem[i] = m.serialize(l.Bytes).Seconds()
		if rem[i] <= 0 {
			done[i], fin[i] = l.Ready, true
			continue
		}
		left++
	}
	now := math.Inf(1)
	for i := range lanes {
		if !fin[i] && ready[i] < now {
			now = ready[i]
		}
	}
	for left > 0 {
		active := 0
		next := math.Inf(1)
		for i := range lanes {
			if fin[i] {
				continue
			}
			if ready[i] <= now {
				active++
			} else if ready[i] < next {
				next = ready[i]
			}
		}
		if active == 0 {
			now = next
			continue
		}
		// Each active lane drains at 1/active of the link; advance to the
		// earlier of the first drain and the next arrival.
		share := 1 / float64(active)
		dt := next - now
		for i := range lanes {
			if !fin[i] && ready[i] <= now {
				if d := rem[i] / share; d < dt {
					dt = d
				}
			}
		}
		for i := range lanes {
			if !fin[i] && ready[i] <= now {
				rem[i] -= dt * share
				if rem[i] <= 1e-12 {
					fin[i] = true
					left--
					done[i] = time.Duration((now + dt) * float64(time.Second))
				}
			}
		}
		now += dt
	}
	return done
}

// SharedGatherWave prices one scatter-gather wave whose responses contend on
// the originator's shared link: lane i's response reaches the link after its
// request transfer, the peer's delays[i] of server time, and the one-way
// return latency; the bytes then drain under processor sharing. It returns
// the per-lane completion instants and the wave makespan. A single-lane wave
// costs exactly LaneTime — the contention model strictly generalizes the
// independent-port one.
func (m Model) SharedGatherWave(lanes []Exchange, delays []time.Duration) ([]time.Duration, time.Duration) {
	cl := make([]ContendedLane, len(lanes))
	for i, e := range lanes {
		var d time.Duration
		if i < len(delays) {
			d = delays[i]
		}
		cl[i] = ContendedLane{
			Ready: m.TransferTime(e.ReqBytes) + d + m.Latency,
			Bytes: e.RespBytes,
		}
	}
	done := m.SharedFinishTimes(cl)
	var makespan time.Duration
	for _, d := range done {
		if d > makespan {
			makespan = d
		}
	}
	return done, makespan
}

// ContendedResponseTime is the contention cost signal for routing decisions:
// the time for one n-byte response to cross the shared link while inflight
// other responses occupy it for the whole transfer (the pessimistic steady
// state of processor sharing). It prices what one more copy of a response —
// a hedge, a blind retry racing its original — costs the gather side, which
// is how a contention-aware router decides a well-placed first attempt beats
// a speculative second one.
func (m Model) ContendedResponseTime(n int64, inflight int) time.Duration {
	if inflight < 0 {
		inflight = 0
	}
	return m.Latency + time.Duration(float64(inflight+1)*float64(m.serialize(n)))
}
