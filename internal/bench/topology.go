package bench

// This file holds the elastic-topology experiment: FigTopology prices the
// same churning scatter workload under two routing disciplines on netsim's
// shared-originator-link contention model. "Blind" is dispatch that learns
// about the topology the hard way — primary-first, a detection timeout on a
// dead peer, a hedge duplicate on a slow one — so churn turns into retry
// stalls and duplicate response bytes fighting every healthy lane for the
// shared gather link. "Aware" consults health at dispatch time
// (xrpc.RetryPolicy.RouteLive) and scores candidate copies with the
// contention cost signal, so each lane sends exactly one request to the
// live, fastest copy and the link carries one response per lane. On a
// work-conserving shared link staggering cannot beat the makespan — the
// whole win is avoided stalls and avoided duplicate bytes, which is the
// quantitative argument for routing on health instead of reacting on fault.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"distxq/internal/netsim"
)

// TopologyConfig parameterizes the churn scenario. The zero value is
// completed by DefaultTopologyConfig.
type TopologyConfig struct {
	Lanes  int // scatter width (gather lanes per query)
	Trials int // queries sampled per churn level
	// Exchange sizes of one lane (record-heavy responses, as in the hedge
	// figure).
	ReqBytes, RespBytes int64
	// Healthy server delay is uniform in [BaseDelay, 2×BaseDelay]; a slow
	// peer multiplies its draw by Slowdown.
	BaseDelay time.Duration
	Slowdown  int
	// DetectTimeout is how long the blind router waits before concluding a
	// dead primary will not answer; HedgeAfter is its straggler hedge
	// deadline (the duplicate-response source).
	DetectTimeout time.Duration
	HedgeAfter    time.Duration
	Seed          int64
}

// DefaultTopologyConfig returns the churn scenario the figure ships with.
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		Lanes:         8,
		Trials:        300,
		ReqBytes:      2 << 10,
		RespBytes:     256 << 10,
		BaseDelay:     300 * time.Microsecond,
		Slowdown:      20,
		DetectTimeout: 5 * time.Millisecond,
		HedgeAfter:    3 * time.Millisecond,
		Seed:          1,
	}
}

// TopologyChurn is one churn intensity: the per-lane probability (percent)
// that the primary is dead, respectively alive but persistently slow, at
// dispatch time.
type TopologyChurn struct {
	Name    string
	DeadPct float64
	SlowPct float64
}

// DefaultTopologyChurn sweeps from a static healthy federation to heavy
// churn.
var DefaultTopologyChurn = []TopologyChurn{
	{Name: "calm", DeadPct: 0, SlowPct: 0},
	{Name: "drift", DeadPct: 5, SlowPct: 10},
	{Name: "churn", DeadPct: 15, SlowPct: 15},
	{Name: "storm", DeadPct: 30, SlowPct: 25},
}

// TopologyRow is one churn level priced under both routing disciplines.
type TopologyRow struct {
	Churn              TopologyChurn
	BlindP50NS         int64
	BlindP99NS         int64
	AwareP50NS         int64
	AwareP99NS         int64
	// DupBytes is the duplicate response traffic the blind router's hedges
	// put on the shared link; Timeouts counts its dead-peer detection
	// stalls. The aware router pays neither.
	DupBytes int64
	Timeouts int
}

// laneDraw is one lane's sampled world: the primary's state and the server
// delays of both copies. Both routers price the identical draw.
type laneDraw struct {
	dead, slow   bool
	primaryDelay time.Duration
	replicaDelay time.Duration
}

// FigTopology prices the churn sweep. Fully deterministic for a given
// config (seeded PRNG, simulated time only).
func FigTopology(cfg TopologyConfig, levels []TopologyChurn) []TopologyRow {
	def := DefaultTopologyConfig()
	if cfg.Lanes <= 0 {
		cfg.Lanes = def.Lanes
	}
	if cfg.Trials <= 0 {
		cfg.Trials = def.Trials
	}
	if cfg.ReqBytes <= 0 {
		cfg.ReqBytes = def.ReqBytes
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = def.RespBytes
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = def.BaseDelay
	}
	if cfg.Slowdown <= 0 {
		cfg.Slowdown = def.Slowdown
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = def.DetectTimeout
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = def.HedgeAfter
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	m := netsim.GigabitLAN()
	reqT := m.TransferTime(cfg.ReqBytes)
	var rows []TopologyRow
	for _, lvl := range levels {
		rng := rand.New(rand.NewSource(cfg.Seed))
		healthyDelay := func() time.Duration {
			return cfg.BaseDelay + time.Duration(rng.Int63n(int64(cfg.BaseDelay)+1))
		}
		row := TopologyRow{Churn: lvl}
		blind := make([]time.Duration, cfg.Trials)
		aware := make([]time.Duration, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			draws := make([]laneDraw, cfg.Lanes)
			for l := range draws {
				d := laneDraw{primaryDelay: healthyDelay(), replicaDelay: healthyDelay()}
				switch r := rng.Float64() * 100; {
				case r < lvl.DeadPct:
					d.dead = true
				case r < lvl.DeadPct+lvl.SlowPct:
					d.slow = true
					d.primaryDelay *= time.Duration(cfg.Slowdown)
				}
				draws[l] = d
			}
			blind[t] = priceBlind(m, cfg, reqT, draws, &row)
			aware[t] = priceAware(m, cfg, reqT, draws)
		}
		row.BlindP50NS = netsim.Percentile(blind, 50).Nanoseconds()
		row.BlindP99NS = netsim.Percentile(blind, 99).Nanoseconds()
		row.AwareP50NS = netsim.Percentile(aware, 50).Nanoseconds()
		row.AwareP99NS = netsim.Percentile(aware, 99).Nanoseconds()
		rows = append(rows, row)
	}
	return rows
}

// priceBlind prices one trial under primary-first dispatch: a dead primary
// costs the full detection timeout before the replica is tried, a slow one
// gets a hedge duplicate whose response bytes contend with every sibling
// (the cancel reaches the loser only after the winner has fully gathered,
// long after the bytes are on the wire).
func priceBlind(m netsim.Model, cfg TopologyConfig, reqT time.Duration, draws []laneDraw, row *TopologyRow) time.Duration {
	var lanes []netsim.ContendedLane
	// owner[i] is the index of the lane entry i belongs to; a hedged lane
	// owns two entries and completes at the earlier.
	var owner []int
	for l, d := range draws {
		switch {
		case d.dead:
			row.Timeouts++
			lanes = append(lanes, netsim.ContendedLane{
				Ready: cfg.DetectTimeout + reqT + d.replicaDelay + m.Latency,
				Bytes: cfg.RespBytes,
			})
			owner = append(owner, l)
		case d.slow:
			row.DupBytes += cfg.RespBytes
			lanes = append(lanes,
				netsim.ContendedLane{Ready: reqT + d.primaryDelay + m.Latency, Bytes: cfg.RespBytes},
				netsim.ContendedLane{Ready: cfg.HedgeAfter + reqT + d.replicaDelay + m.Latency, Bytes: cfg.RespBytes})
			owner = append(owner, l, l)
		default:
			lanes = append(lanes, netsim.ContendedLane{
				Ready: reqT + d.primaryDelay + m.Latency,
				Bytes: cfg.RespBytes,
			})
			owner = append(owner, l)
		}
	}
	finish := m.SharedFinishTimes(lanes)
	laneDone := make([]time.Duration, len(draws))
	for i, f := range finish {
		l := owner[i]
		if laneDone[l] == 0 || f < laneDone[l] {
			laneDone[l] = f
		}
	}
	var makespan time.Duration
	for _, d := range laneDone {
		if d > makespan {
			makespan = d
		}
	}
	return makespan
}

// priceAware prices the same trial under dispatch-time health routing: each
// lane scores its candidate copies with the known delay estimate plus the
// contention cost signal and sends one request to the cheapest live copy —
// no detection stalls, no duplicates.
func priceAware(m netsim.Model, cfg TopologyConfig, reqT time.Duration, draws []laneDraw) time.Duration {
	inflight := len(draws) - 1 // every sibling's response may share the link
	lanes := make([]netsim.ContendedLane, len(draws))
	for l, d := range draws {
		// Candidate copies with health-informed delay estimates: a dead
		// primary is not live (skipped), a slow one carries its EWMA-scale
		// delay. The contention term prices each copy's response on the
		// shared link.
		delay := d.primaryDelay
		if d.dead {
			delay = d.replicaDelay
		} else {
			primaryCost := d.primaryDelay + m.ContendedResponseTime(cfg.RespBytes, inflight)
			replicaCost := d.replicaDelay + m.ContendedResponseTime(cfg.RespBytes, inflight)
			if replicaCost < primaryCost {
				delay = d.replicaDelay
			}
		}
		lanes[l] = netsim.ContendedLane{Ready: reqT + delay + m.Latency, Bytes: cfg.RespBytes}
	}
	finish := m.SharedFinishTimes(lanes)
	var makespan time.Duration
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// PrintFigTopology renders the churn-routing table.
func PrintFigTopology(w io.Writer, cfg TopologyConfig, rows []TopologyRow) {
	fmt.Fprintf(w, "Topology churn — %d-lane gather waves on a shared originator link, %d trials per level (netsim model)\n",
		cfg.Lanes, cfg.Trials)
	fmt.Fprintf(w, "%8s %6s %6s %11s %11s %11s %11s %10s %9s\n",
		"churn", "dead%", "slow%", "p50/blind", "p99/blind", "p50/aware", "p99/aware", "dup-bytes", "timeouts")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %6.0f %6.0f %11s %11s %11s %11s %10s %9d\n",
			r.Churn.Name, r.Churn.DeadPct, r.Churn.SlowPct,
			fmtNS(r.BlindP50NS), fmtNS(r.BlindP99NS),
			fmtNS(r.AwareP50NS), fmtNS(r.AwareP99NS),
			fmtBytes(r.DupBytes), r.Timeouts)
	}
}
