// Package bench regenerates the evaluation of §VII: Figure 7 (bandwidth
// usage), Figure 8 (query time breakdown), Figure 9 (execution time
// scaling), and Figures 10/11 (runtime vs. compile-time projection precision
// and time). Each experiment returns structured rows that cmd/figures prints
// and bench_test.go drives under testing.B.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"distxq/internal/core"
	"distxq/internal/peer"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xq"
)

// Strategies lists the four §VII strategies in presentation order.
var Strategies = []core.Strategy{
	core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection,
}

// Compile makes every fixture built by this package default to compiled
// execution (cmd/figures -compile). Individual fixtures can still flip with
// UseCompile.
var Compile bool

// Fixture is a ready-to-query federation for one document scale.
type Fixture struct {
	Net        *peer.Network
	Local      *Peer
	TotalBytes int64
	Query      string
	// Compile runs every engine of the federation (peers and originator)
	// through the compiled closure-chain executor; see UseCompile.
	Compile bool
}

// Peer aliases peer.Peer for the harness API.
type Peer = peer.Peer

// NewFixture builds the three-peer XMark federation at roughly the given
// combined document size (the x-axis of Figures 7 and 9).
func NewFixture(totalBytes int64) *Fixture {
	cfg := xmark.ForSize(totalBytes)
	n := peer.NewNetwork()
	p1 := n.AddPeer("peer1")
	p2 := n.AddPeer("peer2")
	local := n.AddPeer("local")
	p1.AddDoc("xmk.xml", xmark.PeopleDocument(cfg, "xrpc://peer1/xmk.xml"))
	p2.AddDoc("xmk.auctions.xml", xmark.AuctionsDocument(cfg, "xrpc://peer2/xmk.auctions.xml"))
	f := &Fixture{
		Net:        n,
		Local:      local,
		TotalBytes: p1.DocSize("xmk.xml") + p2.DocSize("xmk.auctions.xml"),
		Query:      xmark.BenchmarkQuery("peer1", "peer2"),
	}
	return f.UseCompile(Compile)
}

// UseCompile switches the whole fixture — remote peer engines and the
// originating session alike — between tree-walking and compiled execution.
func (f *Fixture) UseCompile(on bool) *Fixture {
	f.Compile = on
	f.Net.SetCompile(on)
	return f
}

// Run executes the benchmark query once under the strategy.
func (f *Fixture) Run(strat core.Strategy) (*peer.Report, error) {
	sess := f.Net.NewSession(f.Local, strat).UseCompile(f.Compile)
	_, rep, err := sess.Query(f.Query)
	return rep, err
}

// Row is one measurement of the Figure 7/8/9 experiments.
type Row struct {
	Strategy   core.Strategy
	DocsBytes  int64 // total size of source documents (x-axis)
	TotalBytes int64 // documents + messages transferred (Fig 7 y-axis)
	Report     *peer.Report
}

// DefaultSizes is the document-size sweep (combined bytes of both docs). The
// paper sweeps 20–320 MB on a cluster; the default here is laptop-scale with
// the same 2× progression; pass larger values to cmd/figures to scale up.
var DefaultSizes = []int64{1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21}

// Fig7Bandwidth measures total transferred data per strategy and size.
func Fig7Bandwidth(sizes []int64) ([][]Row, error) {
	var out [][]Row
	for _, size := range sizes {
		f := NewFixture(size)
		var rows []Row
		for _, s := range Strategies {
			rep, err := f.Run(s)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s@%d: %w", s, size, err)
			}
			rows = append(rows, Row{Strategy: s, DocsBytes: f.TotalBytes,
				TotalBytes: rep.TotalBytes(), Report: rep})
		}
		out = append(out, rows)
	}
	return out, nil
}

// Fig8Breakdown measures the per-phase time breakdown at the largest size.
func Fig8Breakdown(size int64) ([]Row, error) {
	f := NewFixture(size)
	var rows []Row
	for _, s := range Strategies {
		rep, err := f.Run(s)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", s, err)
		}
		rows = append(rows, Row{Strategy: s, DocsBytes: f.TotalBytes,
			TotalBytes: rep.TotalBytes(), Report: rep})
	}
	return rows, nil
}

// Fig9ExecTime reuses the Figure 7 sweep, reporting simulated total time.
func Fig9ExecTime(sizes []int64) ([][]Row, error) { return Fig7Bandwidth(sizes) }

// ProjRow is one measurement of the Figure 10/11 experiment.
type ProjRow struct {
	DocBytes        int64
	CompileTimeSize int64 // projected document size, compile-time technique
	RuntimeSize     int64 // projected document size, runtime technique
	CompileTimeNS   int64
	RuntimeNS       int64
}

// Fig10and11Projection compares compile-time against runtime projection on
// the people document: the query selects persons with age > 45, a predicate
// only the runtime technique can exploit (§VII "runtime projection
// precision").
func Fig10and11Projection(sizes []int64) ([]ProjRow, error) {
	var out []ProjRow
	for _, size := range sizes {
		cfg := xmark.ForSize(size * 2) // people doc is half the fixture
		doc := xmark.PeopleDocument(cfg, "xmk.xml")

		// Compile-time: absolute paths from the analysis — all persons and
		// their ages, descriptions included (no predicates expressible).
		personPath, err := projection.ParsePath(
			`child::site/child::people/child::person/descendant-or-self::node()`)
		if err != nil {
			return nil, err
		}
		agePath, err := projection.ParsePath(
			`child::site/child::people/child::person/descendant::age/descendant-or-self::node()`)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ct, err := projection.CompileTimeProject(
			projection.PathSet{agePath}, projection.PathSet{personPath}, doc,
			projection.Options{KeepAllAttributes: true})
		if err != nil {
			return nil, err
		}
		ctNS := time.Since(t0).Nanoseconds()

		// Runtime: the materialized context sequence is the already-filtered
		// person set (age > 45); only those ship.
		t1 := time.Now()
		var selected []*xdm.Node
		doc.Root.WalkDescendants(func(n *xdm.Node) bool {
			if n.Kind == xdm.ElementNode && n.Name == "person" {
				for _, age := range ageOf(n) {
					if age > 45 {
						selected = append(selected, n)
					}
				}
				return true
			}
			return true
		})
		self := projection.PathSet{}.Add(projection.Path{Steps: []projection.PStep{{
			Axis: xq.AxisDescendantOrSelf, Test: xq.NodeTest{Kind: xq.TestAnyNode}}}})
		rt, err := projection.RuntimeProject(selected, nil, self, doc,
			projection.Options{KeepAllAttributes: true})
		if err != nil {
			return nil, err
		}
		rtNS := time.Since(t1).Nanoseconds()

		out = append(out, ProjRow{
			DocBytes:        xdm.SerializedSize(doc.Root),
			CompileTimeSize: xdm.SerializedSize(ct.Root),
			RuntimeSize:     xdm.SerializedSize(rt.Root),
			CompileTimeNS:   ctNS,
			RuntimeNS:       rtNS,
		})
	}
	return out, nil
}

func ageOf(person *xdm.Node) []int {
	var out []int
	person.WalkDescendants(func(m *xdm.Node) bool {
		if m.Kind == xdm.ElementNode && m.Name == "age" {
			var a int
			if _, err := fmt.Sscanf(m.StringValue(), "%d", &a); err == nil {
				out = append(out, a)
			}
		}
		return true
	})
	return out
}

// PrintFig7 renders the Figure 7 table.
func PrintFig7(w io.Writer, sweep [][]Row) {
	fmt.Fprintf(w, "Figure 7 — Bandwidth usage (documents + messages)\n")
	fmt.Fprintf(w, "%12s %16s %16s %16s %16s\n", "docs", "data-shipping", "by-value", "by-fragment", "by-projection")
	for _, rows := range sweep {
		fmt.Fprintf(w, "%12s", fmtBytes(rows[0].DocsBytes))
		for _, r := range rows {
			fmt.Fprintf(w, " %16s", fmtBytes(r.TotalBytes))
		}
		fmt.Fprintln(w)
	}
}

// PrintFig8 renders the Figure 8 breakdown table.
func PrintFig8(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "Figure 8 — Query time breakdown at %s total data (simulated 1Gb/s LAN)\n",
		fmtBytes(rows[0].DocsBytes))
	fmt.Fprintf(w, "%16s %12s %12s %12s %12s %12s %12s\n",
		"strategy", "shred", "local exec", "(de)serialize", "remote exec", "network", "TOTAL")
	for _, r := range rows {
		rep := r.Report
		fmt.Fprintf(w, "%16s %12s %12s %12s %12s %12s %12s\n",
			r.Strategy,
			fmtNS(rep.ShredNS), fmtNS(rep.LocalExecNS), fmtNS(rep.SerdeNS),
			fmtNS(rep.RemoteExecNS), fmtNS(rep.NetworkNS), fmtNS(rep.TotalNS()))
	}
}

// PrintFig9 renders the Figure 9 table.
func PrintFig9(w io.Writer, sweep [][]Row) {
	fmt.Fprintf(w, "Figure 9 — Total execution time per query (simulated network)\n")
	fmt.Fprintf(w, "%12s %16s %16s %16s %16s\n", "docs", "data-shipping", "by-value", "by-fragment", "by-projection")
	for _, rows := range sweep {
		fmt.Fprintf(w, "%12s", fmtBytes(rows[0].DocsBytes))
		for _, r := range rows {
			fmt.Fprintf(w, " %16s", fmtNS(r.Report.TotalNS()))
		}
		fmt.Fprintln(w)
	}
}

// PrintFig10and11 renders the projection precision and time tables.
func PrintFig10and11(w io.Writer, rows []ProjRow) {
	fmt.Fprintf(w, "Figure 10 — Projected document size (compile-time vs runtime)\n")
	fmt.Fprintf(w, "%12s %16s %16s %10s\n", "doc", "compile-time", "runtime", "ratio")
	for _, r := range rows {
		ratio := float64(r.CompileTimeSize) / float64(max64(1, r.RuntimeSize))
		fmt.Fprintf(w, "%12s %16s %16s %9.1fx\n",
			fmtBytes(r.DocBytes), fmtBytes(r.CompileTimeSize), fmtBytes(r.RuntimeSize), ratio)
	}
	fmt.Fprintf(w, "Figure 11 — Projection execution time\n")
	fmt.Fprintf(w, "%12s %16s %16s\n", "doc", "compile-time", "runtime")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %16s %16s\n", fmtBytes(r.DocBytes), fmtNS(r.CompileTimeNS), fmtNS(r.RuntimeNS))
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ------------------------------------------------------- scatter-gather ----

// ScatterFixture is a federation with the people document partitioned
// horizontally across N peers, for the concurrent scatter-gather experiment:
// a variable-target loop queries every shard in place and gathers per-peer
// results in one concurrent wave.
type ScatterFixture struct {
	Net        *peer.Network
	Local      *Peer
	Peers      []string
	Query      string
	TotalBytes int64
	// ShardMap registers the federation as one logical document for the
	// shard-aware planner experiment (RunLogical).
	ShardMap core.ShardMap
	// Compile runs every engine of the federation through the compiled
	// closure-chain executor; see UseCompile.
	Compile bool
}

// NewScatterFixture shards roughly totalBytes of people data across the
// given number of peers.
func NewScatterFixture(totalBytes int64, peers int) *ScatterFixture {
	cfg := xmark.ForSize(totalBytes * 2) // people doc is half of a fixture
	n := peer.NewNetwork()
	f := &ScatterFixture{Net: n}
	for i := 0; i < peers; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		p := n.AddPeer(name)
		p.AddDoc("xmk.xml", xmark.PeopleShardDocument(cfg, i, peers, "xrpc://"+name+"/xmk.xml"))
		f.Peers = append(f.Peers, name)
		f.TotalBytes += p.DocSize("xmk.xml")
	}
	f.Local = n.AddPeer("local")
	f.Query = xmark.ScatterQuery(f.Peers)
	f.ShardMap = xmark.PeopleShardMap(f.Peers)
	return f.UseCompile(Compile)
}

// UseCompile switches the whole fixture — remote peer engines and the
// originating session alike — between tree-walking and compiled execution.
func (f *ScatterFixture) UseCompile(on bool) *ScatterFixture {
	f.Compile = on
	f.Net.SetCompile(on)
	return f
}

// Run executes the scatter query once; sequential forces the serial
// one-peer-at-a-time baseline instead of concurrent dispatch.
func (f *ScatterFixture) Run(strat core.Strategy, sequential bool) (xdm.Sequence, *peer.Report, error) {
	sess := f.Net.NewSession(f.Local, strat).UseCompile(f.Compile)
	sess.SequentialScatter = sequential
	return sess.Query(f.Query)
}

// RunLogical executes the same workload written against the logical document
// (no hand-written `execute at`); the shard-aware planner must synthesize the
// scatter plan.
func (f *ScatterFixture) RunLogical(strat core.Strategy) (xdm.Sequence, *peer.Report, error) {
	sess := f.Net.NewSession(f.Local, strat).UseShards(f.ShardMap).UseCompile(f.Compile)
	return sess.Query(xmark.LogicalScatterQuery())
}

// RunStreamed executes the scatter query with streamed dispatch: per-peer
// results arrive as chunk frames consumed in loop order instead of whole
// gathered responses.
func (f *ScatterFixture) RunStreamed(strat core.Strategy) (xdm.Sequence, *peer.Report, error) {
	sess := f.Net.NewSession(f.Local, strat).UseCompile(f.Compile)
	sess.Streamed = true
	return sess.Query(f.Query)
}

// ScatterRow is one measurement of the scatter-gather experiment.
type ScatterRow struct {
	Peers        int
	Requests     int64
	Parallelism  int
	SerialNetNS  int64 // serial-sum network model (the baseline)
	OverlapNetNS int64 // per-wave-max network model (concurrent dispatch)
	MaxPeerNS    int64 // slowest peer's network + remote exec (critical path)
	Speedup      float64
}

// FigScatter sweeps peer counts at a fixed total data size and reports the
// overlapped vs. serial network cost of the scatter wave.
func FigScatter(totalBytes int64, peerCounts []int) ([]ScatterRow, error) {
	var out []ScatterRow
	for _, pc := range peerCounts {
		f := NewScatterFixture(totalBytes, pc)
		_, rep, err := f.Run(core.ByFragment, false)
		if err != nil {
			return nil, fmt.Errorf("scatter %d peers: %w", pc, err)
		}
		row := ScatterRow{
			Peers:        pc,
			Requests:     rep.Requests,
			Parallelism:  rep.Parallelism,
			SerialNetNS:  rep.SerialNetworkNS,
			OverlapNetNS: rep.NetworkNS,
			MaxPeerNS:    rep.MaxPeerNS,
		}
		if row.OverlapNetNS > 0 {
			row.Speedup = float64(row.SerialNetNS) / float64(row.OverlapNetNS)
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintFigScatter renders the scatter-gather table.
func PrintFigScatter(w io.Writer, totalBytes int64, rows []ScatterRow) {
	fmt.Fprintf(w, "Scatter-gather — sharded people document (%s total), one Bulk RPC per peer\n",
		fmtBytes(totalBytes))
	fmt.Fprintf(w, "%6s %9s %12s %14s %14s %14s %9s\n",
		"peers", "requests", "parallelism", "serial net", "overlap net", "max peer", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %9d %12d %14s %14s %14s %8.2fx\n",
			r.Peers, r.Requests, r.Parallelism,
			fmtNS(r.SerialNetNS), fmtNS(r.OverlapNetNS), fmtNS(r.MaxPeerNS), r.Speedup)
	}
}

// StreamRow is one measurement of the streaming XRPC experiment: the same
// sharded scatter workload dispatched gather-whole and streamed, under the
// netsim pipeline model (server compute, transfer and originator decode
// overlapping chunk by chunk).
type StreamRow struct {
	Peers  int
	Chunks int64 // response chunk frames received by the streamed run
	// Gather-whole baseline: no result usable before the slowest lane's
	// whole response arrived and was decoded. GatherFirstNS comes from the
	// gather-whole run; GatherTotalNS is the same-trace counterfactual —
	// the gather-whole model applied to the streamed run's measured lanes —
	// so the total-time comparison contrasts the two models on identical
	// measured compute/transfer/decode costs instead of on two noisy runs.
	GatherFirstNS int64
	GatherTotalNS int64
	// Streamed: first chunk of the fastest lane / last chunk of the slowest.
	StreamFirstNS int64
	StreamTotalNS int64
	FirstSpeedup  float64
	TotalSpeedup  float64
	// ResultsEqual: the streamed run's serialized result is byte-identical
	// to the gather-whole run's.
	ResultsEqual bool
}

// StreamReps is how often FigStream repeats each configuration, keeping the
// fastest run per mode: the netsim pipeline model consumes single-shot wall
// measurements (per-call evaluation, per-chunk decode), so the minimum is
// the standard de-noising for the comparison.
var StreamReps = 5

// FigStream sweeps peer counts at a fixed total data size, comparing
// gather-whole against streamed scatter on the sharded people document.
func FigStream(totalBytes int64, peerCounts []int) ([]StreamRow, error) {
	var out []StreamRow
	for _, pc := range peerCounts {
		f := NewScatterFixture(totalBytes, pc)
		row := StreamRow{Peers: pc, ResultsEqual: true}
		var gSer, sSer string
		for rep := 0; rep < StreamReps; rep++ {
			gRes, gRep, err := f.Run(core.ByFragment, false)
			if err != nil {
				return nil, fmt.Errorf("stream %d peers (gather): %w", pc, err)
			}
			sRes, sRep, err := f.RunStreamed(core.ByFragment)
			if err != nil {
				return nil, fmt.Errorf("stream %d peers (streamed): %w", pc, err)
			}
			if rep == 0 {
				gSer, sSer = serializeSeq(gRes), serializeSeq(sRes)
				row.ResultsEqual = gSer == sSer
				row.Chunks = sRep.StreamedChunks
			}
			if rep == 0 || gRep.FirstResultNS < row.GatherFirstNS {
				row.GatherFirstNS = gRep.FirstResultNS
			}
			// Per-rep GatherNS ≥ PipelineNS (same lanes, no overlap), so
			// taking each minimum independently preserves the inequality.
			if rep == 0 || sRep.GatherNS < row.GatherTotalNS {
				row.GatherTotalNS = sRep.GatherNS
			}
			if rep == 0 || sRep.FirstResultNS < row.StreamFirstNS {
				row.StreamFirstNS = sRep.FirstResultNS
			}
			if rep == 0 || sRep.PipelineNS < row.StreamTotalNS {
				row.StreamTotalNS = sRep.PipelineNS
			}
		}
		if row.StreamFirstNS > 0 {
			row.FirstSpeedup = float64(row.GatherFirstNS) / float64(row.StreamFirstNS)
		}
		if row.StreamTotalNS > 0 {
			row.TotalSpeedup = float64(row.GatherTotalNS) / float64(row.StreamTotalNS)
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintFigStream renders the streaming experiment table.
func PrintFigStream(w io.Writer, totalBytes int64, rows []StreamRow) {
	fmt.Fprintf(w, "Streaming XRPC — sharded people document (%s total), streamed vs gather-whole scatter\n",
		fmtBytes(totalBytes))
	fmt.Fprintf(w, "%6s %7s %13s %13s %8s %13s %13s %8s %6s\n",
		"peers", "chunks", "first/gather", "first/stream", "speedup",
		"total/gather", "total/stream", "speedup", "equal")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %7d %13s %13s %7.2fx %13s %13s %7.2fx %6v\n",
			r.Peers, r.Chunks,
			fmtNS(r.GatherFirstNS), fmtNS(r.StreamFirstNS), r.FirstSpeedup,
			fmtNS(r.GatherTotalNS), fmtNS(r.StreamTotalNS), r.TotalSpeedup,
			r.ResultsEqual)
	}
}

// ShardRow is one measurement of the shard-aware planner experiment: the
// hand-written scatter query against the planner-produced plan for the same
// workload stated over the logical document.
type ShardRow struct {
	Peers        int
	HandRequests int64
	PlanRequests int64
	HandWaves    int64
	PlanWaves    int64
	Parallelism  int
	Scattered    bool
	ResultsEqual bool
}

// FigShard sweeps peer counts and checks the planner-produced scatter plan
// dispatches exactly like the hand-written one (same requests, same wave
// structure, identical results).
func FigShard(totalBytes int64, peerCounts []int) ([]ShardRow, error) {
	var out []ShardRow
	for _, pc := range peerCounts {
		f := NewScatterFixture(totalBytes, pc)
		handRes, handRep, err := f.Run(core.ByFragment, false)
		if err != nil {
			return nil, fmt.Errorf("shard %d peers (hand-written): %w", pc, err)
		}
		planRes, planRep, err := f.RunLogical(core.ByFragment)
		if err != nil {
			return nil, fmt.Errorf("shard %d peers (planner): %w", pc, err)
		}
		scattered := len(planRep.Shards) > 0 && planRep.Shards[0].Scattered
		out = append(out, ShardRow{
			Peers:        pc,
			HandRequests: handRep.Requests,
			PlanRequests: planRep.Requests,
			HandWaves:    handRep.Waves,
			PlanWaves:    planRep.Waves,
			Parallelism:  planRep.Parallelism,
			Scattered:    scattered,
			ResultsEqual: serializeSeq(handRes) == serializeSeq(planRes),
		})
	}
	return out, nil
}

func serializeSeq(s xdm.Sequence) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch v := it.(type) {
		case *xdm.Node:
			sb.WriteString(xdm.SerializeString(v))
		case xdm.Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	return sb.String()
}

// PrintFigShard renders the shard-aware planner table.
func PrintFigShard(w io.Writer, totalBytes int64, rows []ShardRow) {
	fmt.Fprintf(w, "Shard-aware planner — logical people document (%s total), planner vs hand-written scatter\n",
		fmtBytes(totalBytes))
	fmt.Fprintf(w, "%6s %15s %12s %12s %10s %8s\n",
		"peers", "requests(h/p)", "waves(h/p)", "parallelism", "decision", "equal")
	for _, r := range rows {
		decision := "fallback"
		if r.Scattered {
			decision = "scatter"
		}
		fmt.Fprintf(w, "%6d %15s %12s %12d %10s %8v\n",
			r.Peers,
			fmt.Sprintf("%d/%d", r.HandRequests, r.PlanRequests),
			fmt.Sprintf("%d/%d", r.HandWaves, r.PlanWaves),
			r.Parallelism, decision, r.ResultsEqual)
	}
}
