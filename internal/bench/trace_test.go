package bench

import (
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/service"
	"distxq/internal/trace"
	"distxq/internal/xrpc"
)

// settle waits for every span of the trace to end: losing attempts over the
// synchronous in-memory transport close their spans after the query returns.
func settle(t *testing.T, tr *trace.Trace) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tr.OpenSpans() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans never ended", n)
	}
	if n := tr.DoubleEnds(); n != 0 {
		t.Fatalf("%d spans ended twice", n)
	}
}

// spanIndex maps a snapshot by ID for parentage walks.
func spanIndex(rec *trace.Recorded) map[trace.SpanID]*trace.Span {
	byID := make(map[trace.SpanID]*trace.Span, len(rec.Spans))
	for i := range rec.Spans {
		byID[rec.Spans[i].ID] = &rec.Spans[i]
	}
	return byID
}

// TestTracedShardEquivalence reruns the shard-equivalence check with a live
// trace attached: the traced scatter query must return byte-identical results
// to the untraced run, every span must end exactly once, and the assembled
// tree must carry the attempt → lane → scatter → execute → query chain.
func TestTracedShardEquivalence(t *testing.T) {
	f := NewScatterFixture(1<<17, 3)
	base, _, err := f.Run(core.ByFragment, false)
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.New(0, "local")
	root := tr.Start(0, "query")
	sess := f.Net.NewSession(f.Local, core.ByFragment).UseCompile(f.Compile).UseTrace(root)
	traced, _, err := sess.Query(f.Query)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	settle(t, tr)

	if serializeSeq(traced) != serializeSeq(base) {
		t.Error("traced run diverged from the untraced baseline")
	}

	rec := tr.Snapshot()
	byID := spanIndex(rec)
	wantParent := map[string]string{
		"attempt": "lane",
		"lane":    "scatter",
		"scatter": "execute",
		"execute": "query",
	}
	counts := map[string]int{}
	for i := range rec.Spans {
		s := &rec.Spans[i]
		counts[s.Name]++
		want, ok := wantParent[s.Name]
		if !ok {
			continue
		}
		p := byID[s.Parent]
		if p == nil {
			t.Errorf("%s span %d has no parent in the tree", s.Name, s.ID)
		} else if p.Name != want {
			t.Errorf("%s span %d hangs under %q, want %q", s.Name, s.ID, p.Name, want)
		}
	}
	for _, name := range []string{"execute", "scatter"} {
		if counts[name] != 1 {
			t.Errorf("%d %s spans, want 1", counts[name], name)
		}
	}
	if counts["lane"] != 3 || counts["attempt"] != 3 {
		t.Errorf("%d lanes / %d attempts, want 3 each on a healthy 3-peer scatter",
			counts["lane"], counts["attempt"])
	}
}

// TestTracedFailoverParentage traces a killed-primary hedged scatter and
// checks the retry/hedge attempts keep their parentage: every attempt hangs
// under a lane, every lane closes with exactly one winner, kinds are tagged,
// and the failed-over lane records more than one attempt.
func TestTracedFailoverParentage(t *testing.T) {
	f := NewReplicatedScatterFixture(1<<17, 3)
	killed := f.Peers[len(f.Peers)-1]
	f.Net.KillPeer(killed)
	defer f.Net.RevivePeer(killed)

	svc := service.New(f.Net, f.Local, core.ByFragment, service.Config{Trace: true}).
		UseRetry(&xrpc.RetryPolicy{HedgeAfter: 200 * time.Microsecond})
	svc.Replicas = f.ShardMap.ReplicaSets()
	if _, _, err := svc.Query(f.Query, core.Budget{}); err != nil {
		t.Fatalf("traced query with %s killed: %v", killed, err)
	}

	tr := svc.Traces.Last()
	if tr == nil {
		t.Fatal("trace ring is empty")
	}
	settle(t, tr)

	rec := tr.Snapshot()
	byID := spanIndex(rec)
	winners := map[trace.SpanID]int{}  // lane ID -> winner attempts
	attempts := map[trace.SpanID]int{} // lane ID -> attempts
	lanes := 0
	for i := range rec.Spans {
		s := &rec.Spans[i]
		switch s.Name {
		case "lane":
			lanes++
		case "attempt":
			p := byID[s.Parent]
			if p == nil || p.Name != "lane" {
				t.Fatalf("attempt span %d is not parented to a lane", s.ID)
			}
			attempts[s.Parent]++
			if k, ok := s.Attr("kind"); !ok {
				t.Errorf("attempt span %d has no kind attr", s.ID)
			} else if k.Str != "primary" && k.Str != "retry" && k.Str != "hedge" {
				t.Errorf("attempt span %d kind = %q", s.ID, k.Str)
			}
			if w, ok := s.Attr("winner"); ok && w.Int == 1 {
				winners[s.Parent]++
			}
		}
	}
	if lanes != 3 {
		t.Fatalf("%d lanes, want 3", lanes)
	}
	total, extra := 0, 0
	for lane, n := range attempts {
		total += n
		if n > 1 {
			extra++
		}
		if winners[lane] != 1 {
			t.Errorf("lane %d has %d winner attempts, want exactly 1", lane, winners[lane])
		}
	}
	if total <= lanes {
		t.Errorf("%d attempts across %d lanes — the killed primary forced no failover", total, lanes)
	}
	if extra == 0 {
		t.Error("no lane recorded more than one attempt despite a killed primary")
	}
}
