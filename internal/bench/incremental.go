package bench

import (
	"fmt"
	"io"

	"distxq/internal/core"
	"distxq/internal/peer"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xrpc"
)

// IncRow is one measurement of the incremental-evaluation experiment: a
// single streamed call whose result is one peer's whole filtered person set
// (the single-huge-call workload), with the server either materializing the
// call before cutting frames (eager, the pre-incremental behavior) or
// pulling frames out of the live evaluation (incremental).
type IncRow struct {
	DocBytes int64
	Items    int64 // result items of the single call
	Chunks   int64 // chunk frames of the incremental run
	// First usable result at the originator under the netsim pipeline
	// model. Eager servers charge the whole call's evaluation to the first
	// frame; incremental servers only the production of its items.
	EagerFirstNS int64
	IncFirstNS   int64
	FirstSpeedup float64
	// Server-side peak buffered result items: whole call vs one frame.
	EagerPeakItems int64
	IncPeakItems   int64
	// ResultsEqual: both modes serialize byte-identically at the originator.
	ResultsEqual bool
}

// FigIncremental measures the incremental-evaluation experiment across
// document sizes.
func FigIncremental(sizes []int64) ([]IncRow, error) {
	var out []IncRow
	for _, size := range sizes {
		row, err := incrementalRow(size)
		if err != nil {
			return nil, fmt.Errorf("incremental @%d: %w", size, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func incrementalRow(size int64) (IncRow, error) {
	cfg := xmark.ForSize(size * 2) // people doc is half a fixture
	query := xmark.ScatterQuery([]string{"peer1"})

	run := func(eager bool) (xdm.Sequence, *peer.Report, int64, int64, error) {
		n := peer.NewNetwork()
		p := n.AddPeer("peer1")
		p.AddDoc("xmk.xml", xmark.PeopleDocument(cfg, "xrpc://peer1/xmk.xml"))
		p.Server.EagerStream = eager
		p.Server.Metrics = &xrpc.Metrics{}
		local := n.AddPeer("local")
		sess := n.NewSession(local, core.ByFragment)
		sess.Streamed = true
		res, rep, err := sess.Query(query)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		peak := p.Server.Metrics.Snapshot().PeakBufferedItems
		return res, rep, peak, p.DocSize("xmk.xml"), err
	}

	var row IncRow
	var eagerSer, incSer string
	for rep := 0; rep < StreamReps; rep++ {
		eRes, eRep, ePeak, docBytes, err := run(true)
		if err != nil {
			return row, fmt.Errorf("eager: %w", err)
		}
		iRes, iRep, iPeak, _, err := run(false)
		if err != nil {
			return row, fmt.Errorf("incremental: %w", err)
		}
		if rep == 0 {
			eagerSer, incSer = serializeSeq(eRes), serializeSeq(iRes)
			row = IncRow{
				DocBytes:       docBytes,
				Items:          int64(len(iRes)),
				Chunks:         iRep.StreamedChunks,
				EagerPeakItems: ePeak,
				IncPeakItems:   iPeak,
				ResultsEqual:   eagerSer == incSer,
			}
		}
		// Minimum per mode: the netsim model consumes single-shot wall
		// measurements, same de-noising as FigStream.
		if rep == 0 || eRep.FirstResultNS < row.EagerFirstNS {
			row.EagerFirstNS = eRep.FirstResultNS
		}
		if rep == 0 || iRep.FirstResultNS < row.IncFirstNS {
			row.IncFirstNS = iRep.FirstResultNS
		}
	}
	if row.IncFirstNS > 0 {
		row.FirstSpeedup = float64(row.EagerFirstNS) / float64(row.IncFirstNS)
	}
	return row, nil
}

// PrintFigIncremental renders the incremental-evaluation table.
func PrintFigIncremental(w io.Writer, rows []IncRow) {
	fmt.Fprintf(w, "Incremental evaluation — one peer, one huge streamed call: eager (materialize-then-frame) vs incremental (pull-based)\n")
	fmt.Fprintf(w, "%10s %7s %7s %13s %13s %8s %11s %11s %6s\n",
		"doc", "items", "chunks", "first/eager", "first/incr", "speedup",
		"peak/eager", "peak/incr", "equal")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s %7d %7d %13s %13s %7.2fx %11d %11d %6v\n",
			fmtBytes(r.DocBytes), r.Items, r.Chunks,
			fmtNS(r.EagerFirstNS), fmtNS(r.IncFirstNS), r.FirstSpeedup,
			r.EagerPeakItems, r.IncPeakItems, r.ResultsEqual)
	}
}
