package bench

// Micro-benchmarks for the evaluation hot paths: axis steps, document-order
// sort, and the XRPC fragment codec. Run with
//
//	go test ./internal/bench -run=NONE -bench=Micro -benchmem
//
// DESIGN.md records the before/after numbers of the pre/size numbering and
// one-pass codec-table overhaul.

import (
	"math/rand"
	"testing"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xrpc"
)

func microPeopleDoc() *xdm.Document {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Items, cfg.Auctions = 200, 0, 0
	return xmark.PeopleDocument(cfg, "micro-people.xml")
}

func microEngine(doc *xdm.Document) *eval.Engine {
	return eval.NewEngine(eval.ResolverFunc(func(string) (*xdm.Document, error) {
		return doc, nil
	}))
}

// BenchmarkMicroAxisSteps measures whole path expressions through evalPath:
// a descendant scan with a predicate, a multi-step forward path, and a
// reverse-axis path.
func BenchmarkMicroAxisSteps(b *testing.B) {
	doc := microPeopleDoc()
	for _, tc := range []struct{ name, query string }{
		{"descendant-predicate", `count(doc("p")//person[descendant::age > 30])`},
		{"multi-step-forward", `count(doc("p")//person/name/text())`},
		{"reverse-ancestor", `count(doc("p")//age/ancestor::person)`},
		{"following-sibling", `count(doc("p")//person/following-sibling::person)`},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := microEngine(doc)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryString(tc.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicroSortDocOrder measures SortDocOrder on shuffled input (full
// sort + dedup) and on already-ordered input (the O(n) fast path every
// forward axis step hits).
func BenchmarkMicroSortDocOrder(b *testing.B) {
	doc := microPeopleDoc()
	var sorted []*xdm.Node
	doc.Root.WalkDescendants(func(n *xdm.Node) bool {
		sorted = append(sorted, n)
		return true
	})
	shuffled := append([]*xdm.Node(nil), sorted...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	scratch := make([]*xdm.Node, len(shuffled))
	b.Run("shuffled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, shuffled)
			xdm.SortDocOrder(scratch)
		}
	})
	b.Run("presorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, sorted)
			xdm.SortDocOrder(scratch)
		}
	})
}

// BenchmarkMicroFragmentCodec measures an XRPC round trip (marshal request +
// parse request) shipping one big fragment with many node references into it
// — the workload the one-pass numbering tables turn from O(n²) into O(n).
func BenchmarkMicroFragmentCodec(b *testing.B) {
	doc := microPeopleDoc()
	seq := xdm.Sequence{doc.DocElem()}
	doc.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Kind == xdm.ElementNode && (n.Name == "name" || n.Name == "age") {
			seq = append(seq, n)
		}
		return true
	})
	b.Logf("fragment refs per message: %d", len(seq))
	req := &xrpc.Request{
		Method:    "f1",
		Arity:     1,
		Semantics: xrpc.ByFragment,
		Module:    `declare function f1($x as node()*) as node()* { $x };`,
		Static:    eval.DefaultStatic(),
		Calls:     [][]xdm.Sequence{{seq}},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := xrpc.MarshalRequest(req, nil, nil, projection.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xrpc.ParseRequest(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroServerHandle measures one full server-side exchange: shred
// the request, evaluate the shipped function, and serialize the response.
// The response used to be marshalled twice just to patch the serde-ns
// timing attribute; it is now marshalled once and the attribute is patched
// in the serialized bytes.
func BenchmarkMicroServerHandle(b *testing.B) {
	doc := microPeopleDoc()
	srv := &xrpc.Server{Engine: microEngine(doc)}
	var seq xdm.Sequence
	doc.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Kind == xdm.ElementNode && n.Name == "person" {
			seq = append(seq, n)
		}
		return true
	})
	req := &xrpc.Request{
		Method:    "f1",
		Arity:     1,
		Semantics: xrpc.ByFragment,
		Module:    `declare function f1($x as node()*) as node()* { $x/child::name };`,
		Static:    eval.DefaultStatic(),
		Calls:     [][]xdm.Sequence{{seq}},
	}
	data, err := xrpc.MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Handle(data); err != nil {
			b.Fatal(err)
		}
	}
}
