package bench

// This file holds the fault-tolerance experiments: the hedged-scatter
// tail-latency sweep (FigHedge, a deterministic netsim-model computation
// over an injected straggler distribution) and the live failover run
// (FigFailover, which kills a replicated shard's primary and checks the
// query still answers byte-identically through the replica).

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"distxq/internal/core"
	"distxq/internal/netsim"
	"distxq/internal/peer"
	"distxq/internal/xmark"
	"distxq/internal/xrpc"
)

// NewReplicatedScatterFixture is NewScatterFixture with every shard stored
// twice: primary peer<i> plus a dedicated replica peer rep<i> holding a
// byte-identical copy of the shard document under the same peer-local path.
// The fixture's shard map lists the replicas, so sessions with a RetryPolicy
// (or just the map installed) survive the loss of any single peer.
func NewReplicatedScatterFixture(totalBytes int64, peers int) *ScatterFixture {
	cfg := xmark.ForSize(totalBytes * 2) // people doc is half of a fixture
	n := peer.NewNetwork()
	f := &ScatterFixture{Net: n}
	var replicas [][]string
	for i := 0; i < peers; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		rname := fmt.Sprintf("rep%d", i+1)
		shard := xmark.PeopleShardDocument(cfg, i, peers, "xrpc://"+name+"/"+xmark.PeopleShardPath)
		p := n.AddPeer(name)
		p.AddDoc(xmark.PeopleShardPath, shard)
		// The replica serves the identical tree under the same path; node
		// identities differ across peers, but serialized results do not.
		r := n.AddPeer(rname)
		r.AddDoc(xmark.PeopleShardPath,
			xmark.PeopleShardDocument(cfg, i, peers, "xrpc://"+rname+"/"+xmark.PeopleShardPath))
		f.Peers = append(f.Peers, name)
		replicas = append(replicas, []string{rname})
		f.TotalBytes += p.DocSize(xmark.PeopleShardPath)
	}
	f.Local = n.AddPeer("local")
	f.Query = xmark.ScatterQuery(f.Peers)
	f.ShardMap = xmark.PeopleShardMap(f.Peers)
	f.ShardMap.Replicas = replicas
	return f
}

// HedgeRow is one measurement of the tail-tolerance sweep: the same
// injected lane-delay distribution priced without and with hedging at one
// hedge deadline.
type HedgeRow struct {
	HedgeAfterNS int64
	BaseP50NS    int64
	BaseP99NS    int64
	HedgedP50NS  int64
	HedgedP99NS  int64
	// Hedges counts hedge launches across all trials and lanes; WastedNS is
	// the total in-flight time of losing attempts — the spend that bought
	// the P99 reduction.
	Hedges   int
	WastedNS int64
}

// HedgeConfig parameterizes the straggler scenario of FigHedge. The zero
// value is completed by DefaultHedgeConfig.
type HedgeConfig struct {
	Lanes  int // scatter width (lanes per query)
	Trials int // queries sampled
	// Exchange sizes of one lane (representative of the 2 MiB / 8-peer
	// scatter figure: small shipped function, record-heavy response).
	ReqBytes, RespBytes int64
	// Server delay distribution: uniform in [BaseDelay, 2×BaseDelay], with
	// StragglerPct percent of lanes straggling at Slowdown× that delay —
	// the GC pause / overloaded-peer / flaky-link tail every fan-out system
	// fights.
	BaseDelay    time.Duration
	StragglerPct float64
	Slowdown     int
	Seed         int64
}

// DefaultHedgeConfig returns the straggler scenario the figure ships with.
func DefaultHedgeConfig() HedgeConfig {
	return HedgeConfig{
		Lanes:     8,
		Trials:    400,
		ReqBytes:  2 << 10,
		RespBytes: 256 << 10,
		BaseDelay: 300 * time.Microsecond,
		// 5% stragglers at 20×: roughly every third 8-lane query hits one.
		StragglerPct: 5,
		Slowdown:     20,
		Seed:         1,
	}
}

// FigHedge prices the straggler scenario under the netsim lane model: every
// trial draws per-lane primary and replica delays from the injected
// distribution, a query completes when its slowest lane does, and the same
// draws are re-priced for each hedge deadline — so the no-hedge baseline
// and every hedged row compare identical workloads. The computation is
// fully deterministic for a given config (seeded PRNG, simulated time
// only); it is the quantitative argument for the dispatch layer's
// RetryPolicy.HedgeAfter.
func FigHedge(cfg HedgeConfig, hedgeAfters []time.Duration) []HedgeRow {
	def := DefaultHedgeConfig()
	if cfg.Lanes <= 0 {
		cfg.Lanes = def.Lanes
	}
	if cfg.Trials <= 0 {
		cfg.Trials = def.Trials
	}
	if cfg.ReqBytes <= 0 {
		cfg.ReqBytes = def.ReqBytes
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = def.RespBytes
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = def.BaseDelay
	}
	if cfg.StragglerPct <= 0 {
		cfg.StragglerPct = def.StragglerPct
	}
	if cfg.Slowdown <= 0 {
		cfg.Slowdown = def.Slowdown
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	draw := func() time.Duration {
		d := cfg.BaseDelay + time.Duration(rng.Int63n(int64(cfg.BaseDelay)+1))
		if rng.Float64()*100 < cfg.StragglerPct {
			d *= time.Duration(cfg.Slowdown)
		}
		return d
	}
	// One shared set of draws: every row re-prices the same workload.
	primary := make([][]time.Duration, cfg.Trials)
	replica := make([][]time.Duration, cfg.Trials)
	for t := range primary {
		primary[t] = make([]time.Duration, cfg.Lanes)
		replica[t] = make([]time.Duration, cfg.Lanes)
		for l := 0; l < cfg.Lanes; l++ {
			primary[t][l] = draw()
			replica[t][l] = draw()
		}
	}
	m := netsim.GigabitLAN()
	e := netsim.Exchange{ReqBytes: cfg.ReqBytes, RespBytes: cfg.RespBytes}
	base := make([]time.Duration, cfg.Trials)
	for t := range base {
		for l := 0; l < cfg.Lanes; l++ {
			if d := m.LaneTime(e, primary[t][l]); d > base[t] {
				base[t] = d
			}
		}
	}
	var rows []HedgeRow
	for _, after := range hedgeAfters {
		row := HedgeRow{
			HedgeAfterNS: after.Nanoseconds(),
			BaseP50NS:    netsim.Percentile(base, 50).Nanoseconds(),
			BaseP99NS:    netsim.Percentile(base, 99).Nanoseconds(),
		}
		hedged := make([]time.Duration, cfg.Trials)
		for t := range hedged {
			for l := 0; l < cfg.Lanes; l++ {
				done, fired, wasted := m.HedgedLaneTime(e, primary[t][l], replica[t][l], after)
				if done > hedged[t] {
					hedged[t] = done
				}
				if fired {
					row.Hedges++
				}
				row.WastedNS += wasted.Nanoseconds()
			}
		}
		row.HedgedP50NS = netsim.Percentile(hedged, 50).Nanoseconds()
		row.HedgedP99NS = netsim.Percentile(hedged, 99).Nanoseconds()
		rows = append(rows, row)
	}
	return rows
}

// DefaultHedgeAfters is the hedge-deadline sweep of the shipped figure,
// bracketing the straggler scenario's unhedged lane-time distribution
// (healthy lanes finish around 2.8–3.1 ms, stragglers at 8–15 ms): the
// first deadline hedges even healthy lanes (maximum waste), the middle ones
// isolate stragglers, the last shows a too-patient deadline giving tail
// latency back.
var DefaultHedgeAfters = []time.Duration{
	2800 * time.Microsecond, 3200 * time.Microsecond, 4 * time.Millisecond, 8 * time.Millisecond,
}

// PrintFigHedge renders the tail-tolerance table.
func PrintFigHedge(w io.Writer, cfg HedgeConfig, rows []HedgeRow) {
	fmt.Fprintf(w, "Hedged scatter — %d-lane waves, %d trials, %.0f%% stragglers at %dx (netsim model)\n",
		cfg.Lanes, cfg.Trials, cfg.StragglerPct, cfg.Slowdown)
	fmt.Fprintf(w, "%12s %10s %10s %12s %12s %8s %12s\n",
		"hedge-after", "p50/base", "p99/base", "p50/hedged", "p99/hedged", "hedges", "wasted")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %10s %10s %12s %12s %8d %12s\n",
			fmtNS(r.HedgeAfterNS),
			fmtNS(r.BaseP50NS), fmtNS(r.BaseP99NS),
			fmtNS(r.HedgedP50NS), fmtNS(r.HedgedP99NS),
			r.Hedges, fmtNS(r.WastedNS))
	}
}

// FailoverRow is the live replica-failover measurement: the replicated
// scatter federation queried healthy, then with one primary killed.
type FailoverRow struct {
	Peers        int
	Killed       string
	Retries      int64
	Hedges       int64
	Winner       string // replica that answered the killed primary's lane
	ResultsEqual bool   // killed-primary run byte-identical to the healthy run
}

// FigFailover runs the live half of the fault-tolerance figure: each shard
// of the scatter federation is replicated ×2, one primary is killed, and
// the same query must answer byte-identically through the replica, the
// lane's provenance recording the failover.
func FigFailover(totalBytes int64, peers int) (*FailoverRow, error) {
	f := NewReplicatedScatterFixture(totalBytes, peers)
	healthy, _, err := f.Run(core.ByFragment, false)
	if err != nil {
		return nil, fmt.Errorf("failover healthy run: %w", err)
	}
	killed := f.Peers[len(f.Peers)-1]
	f.Net.KillPeer(killed)
	defer f.Net.RevivePeer(killed)
	sess := f.Net.NewSession(f.Local, core.ByFragment).UseRetry(&xrpc.RetryPolicy{})
	sess.Replicas = f.ShardMap.ReplicaSets()
	res, rep, err := sess.Query(f.Query)
	if err != nil {
		return nil, fmt.Errorf("failover with %s killed: %w", killed, err)
	}
	row := &FailoverRow{
		Peers:        peers,
		Killed:       killed,
		Retries:      rep.Retries,
		Hedges:       rep.Hedges,
		Winner:       rep.WinnerReplica[killed],
		ResultsEqual: serializeSeq(res) == serializeSeq(healthy),
	}
	return row, nil
}

// PrintFigFailover renders the live failover line.
func PrintFigFailover(w io.Writer, totalBytes int64, row *FailoverRow) {
	result := "DIVERGED"
	if row.ResultsEqual {
		result = "identical"
	}
	fmt.Fprintf(w, "Failover — sharded people (%s total) x2 replication, primary %s killed\n",
		fmtBytes(totalBytes), row.Killed)
	fmt.Fprintf(w, "%6s %8s %8s %10s %10s\n", "peers", "retries", "hedges", "winner", "results")
	fmt.Fprintf(w, "%6d %8d %8d %10s %10s\n",
		row.Peers, row.Retries, row.Hedges, row.Winner, result)
}
