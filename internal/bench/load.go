package bench

// This file holds the sustained-load experiment (FigLoad): the federation
// service driven open-loop at multiples of its configured capacity, showing
// graceful degradation — goodput holds near capacity past the knee while
// the excess is shed fast, instead of every query's latency collapsing.
// Unlike the netsim figures this is a live run: the shape (shed rate rises
// past 1x, admitted P99 stays bounded) is reproducible, exact timings are
// not.

import (
	"fmt"
	"io"
	"strings"
	"time"

	"distxq/internal/core"
	"distxq/internal/load"
	"distxq/internal/peer"
	"distxq/internal/service"
)

// LoadConfig parameterizes the sustained-load figure. The zero value is
// completed by DefaultLoadConfig.
type LoadConfig struct {
	Peers         int           // scatter width (each shard x2-replicated)
	MaxConcurrent int           // service capacity tokens
	ServiceDelay  time.Duration // injected per-exchange straggler delay
	Budget        time.Duration // per-query wall budget
	Window        time.Duration // submission window per measured point
	Multipliers   []float64     // offered load as multiples of capacity
}

// DefaultLoadConfig returns the scenario the figure ships with: capacity
// 2 tokens x 10ms service time = ~200 QPS, swept from half to 4x that.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Peers:         2,
		MaxConcurrent: 2,
		ServiceDelay:  10 * time.Millisecond,
		Budget:        800 * time.Millisecond,
		Window:        300 * time.Millisecond,
		Multipliers:   []float64{0.5, 1, 2, 4},
	}
}

// LoadRow is one measured point of the goodput-vs-offered-load sweep.
type LoadRow struct {
	Multiplier  float64 // offered load as a multiple of capacity
	OfferedQPS  float64
	GoodputQPS  float64
	ShedRate    float64
	P50NS       int64 // admitted-query latency quantiles (sheds excluded)
	P99NS       int64
	RejectP99NS int64 // time-to-rejection P99 of the shed queries
	Hedges      int64
	Failed      int
}

// FigLoad drives the sustained-load sweep: one open-loop run per offered
// multiplier against a fresh service over a straggler-injected federation.
func FigLoad(cfg LoadConfig) ([]LoadRow, error) {
	def := DefaultLoadConfig()
	if cfg.Peers <= 0 {
		cfg.Peers = def.Peers
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = def.MaxConcurrent
	}
	if cfg.ServiceDelay <= 0 {
		cfg.ServiceDelay = def.ServiceDelay
	}
	if cfg.Budget <= 0 {
		cfg.Budget = def.Budget
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if len(cfg.Multipliers) == 0 {
		cfg.Multipliers = def.Multipliers
	}

	capacityQPS := float64(cfg.MaxConcurrent) / cfg.ServiceDelay.Seconds()
	var rows []LoadRow
	for _, mult := range cfg.Multipliers {
		n := peer.NewNetwork()
		var primaries []string
		for i := 1; i <= cfg.Peers; i++ {
			name := fmt.Sprintf("peer%d", i)
			doc := fmt.Sprintf(`<people><person><age>%d</age><name>a%d</name></person></people>`, 20+i, i)
			if err := n.AddPeer(name).LoadXML("d.xml", doc); err != nil {
				return nil, err
			}
			primaries = append(primaries, name)
		}
		origin := n.AddPeer("local")
		for _, name := range primaries {
			load.SlowPeer(n, name, cfg.ServiceDelay)
		}
		quoted := make([]string, len(primaries))
		for i, p := range primaries {
			quoted[i] = `"` + p + `"`
		}
		query := fmt.Sprintf(`
declare function young() as item()* {
  for $x in doc("d.xml")/child::people/child::person
  return if ($x/child::age < 40) then $x/child::name else ()
};
for $p in (%s) return execute at {$p} { young() }`, strings.Join(quoted, ", "))

		svc := service.New(n, origin, core.ByFragment, service.Config{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxConcurrent,
			MaxQueueWait:  cfg.ServiceDelay / 2,
			DefaultBudget: core.Budget{Wall: cfg.Budget},
		})
		arrival := time.Duration(float64(time.Second) / (capacityQPS * mult))
		res := load.Run(load.ServiceTarget(svc, query), load.Options{
			Duration: cfg.Window,
			Arrival:  arrival,
		})
		rows = append(rows, LoadRow{
			Multiplier:  mult,
			OfferedQPS:  res.OfferedQPS,
			GoodputQPS:  res.GoodputQPS,
			ShedRate:    res.ShedRate,
			P50NS:       res.Stats.P50.Nanoseconds(),
			P99NS:       res.Stats.P99.Nanoseconds(),
			RejectP99NS: res.Stats.RejectP99.Nanoseconds(),
			Hedges:      res.Hedges,
			Failed:      res.Failed,
		})
	}
	return rows, nil
}

// PrintFigLoad renders the goodput-vs-offered-load table.
func PrintFigLoad(w io.Writer, cfg LoadConfig, rows []LoadRow) {
	fmt.Fprintf(w, "Sustained load — %d-peer scatter, %d tokens x %v service time, budget %v (live run)\n",
		cfg.Peers, cfg.MaxConcurrent, cfg.ServiceDelay, cfg.Budget)
	fmt.Fprintf(w, "%9s %9s %9s %7s %10s %10s %10s\n",
		"offered/x", "offered", "goodput", "shed", "p50", "p99", "rej-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.1f %7.0f/s %7.0f/s %6.0f%% %10s %10s %10s\n",
			r.Multiplier, r.OfferedQPS, r.GoodputQPS, 100*r.ShedRate,
			fmtNS(r.P50NS), fmtNS(r.P99NS), fmtNS(r.RejectP99NS))
	}
}
