package bench

import (
	"strings"
	"testing"

	"distxq/internal/core"
)

func TestFig7ShapeMatchesPaper(t *testing.T) {
	sizes := []int64{1 << 16, 1 << 17}
	sweep, err := Fig7Bandwidth(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("rows = %d", len(sweep))
	}
	for _, rows := range sweep {
		ds, bv, bf, bp := rows[0].TotalBytes, rows[1].TotalBytes, rows[2].TotalBytes, rows[3].TotalBytes
		// Paper's Figure 7 shape: ds > bv > bf > bp.
		if !(ds > bv && bv > bf && bf > bp) {
			t.Errorf("bandwidth shape violated at %d docs: %d %d %d %d",
				rows[0].DocsBytes, ds, bv, bf, bp)
		}
		// Fragment/projection transfer well under half of data shipping
		// ("reduce the amount of data exchanged to less than 10% of the
		// original document sizes" at the paper's scale; the ratio improves
		// with document size since message overhead is constant).
		if bf*2 > ds {
			t.Errorf("by-fragment should transfer far less than data shipping: %d vs %d", bf, ds)
		}
	}
	// Scaling: bandwidth grows with document size for every strategy.
	for col := 0; col < 4; col++ {
		if sweep[1][col].TotalBytes <= sweep[0][col].TotalBytes {
			t.Errorf("strategy %s: bandwidth should grow with size", sweep[1][col].Strategy)
		}
	}
}

func TestFig8BreakdownShape(t *testing.T) {
	rows, err := Fig8Breakdown(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[string]*Row{}
	for i := range rows {
		byStrat[rows[i].Strategy.String()] = &rows[i]
	}
	ds := byStrat["data-shipping"].Report
	bf := byStrat["pass-by-fragment"].Report
	bp := byStrat["pass-by-projection"].Report
	// Data shipping: shred dominates (the paper reports >99%; we accept a
	// clear majority since Go parse speed differs from MonetDB shredding).
	if ds.ShredNS*2 < ds.LocalExecNS {
		t.Errorf("data-shipping shred (%d) should dominate local exec (%d)", ds.ShredNS, ds.LocalExecNS)
	}
	if ds.RemoteExecNS != 0 || ds.SerdeNS != 0 {
		t.Error("data shipping has no remote phases")
	}
	// Fragment/projection: no shredding of whole documents at all.
	if bf.ShredNS != 0 || bp.ShredNS != 0 {
		t.Errorf("fragment/projection shred must be zero: %d / %d", bf.ShredNS, bp.ShredNS)
	}
	// They do pay (de)serialization and remote execution.
	if bf.SerdeNS == 0 || bf.RemoteExecNS == 0 {
		t.Error("fragment strategy must report serde and remote exec time")
	}
}

func TestFig9TotalsImprove(t *testing.T) {
	// Wall-clock phases are noisy on a single cold run; take the best of
	// three runs per strategy before comparing.
	best := map[string]int64{}
	for run := 0; run < 3; run++ {
		sweep, err := Fig9ExecTime([]int64{1 << 19})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sweep[0] {
			k := r.Strategy.String()
			if cur, ok := best[k]; !ok || r.Report.TotalNS() < cur {
				best[k] = r.Report.TotalNS()
			}
		}
	}
	ds := best["data-shipping"]
	bf := best["pass-by-fragment"]
	bp := best["pass-by-projection"]
	// The enhanced strategies beat data shipping overall (the 84–94%
	// improvement claim; we just require a clear win).
	if bf >= ds {
		t.Errorf("by-fragment total (%d) should beat data shipping (%d)", bf, ds)
	}
	if bp >= ds {
		t.Errorf("by-projection total (%d) should beat data shipping (%d)", bp, ds)
	}
}

func TestFig10RuntimeMorePrecise(t *testing.T) {
	rows, err := Fig10and11Projection([]int64{1 << 16, 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RuntimeSize >= r.CompileTimeSize {
			t.Errorf("runtime projection (%d B) must be smaller than compile-time (%d B)",
				r.RuntimeSize, r.CompileTimeSize)
		}
		ratio := float64(r.CompileTimeSize) / float64(r.RuntimeSize)
		// Paper reports ≈5×; accept anything clearly above 2× (the exact
		// factor depends on the age distribution and filler sizes).
		if ratio < 2 {
			t.Errorf("precision ratio %.1f too small (compile %d, runtime %d)",
				ratio, r.CompileTimeSize, r.RuntimeSize)
		}
	}
}

func TestPrinters(t *testing.T) {
	sweep, err := Fig7Bandwidth([]int64{1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintFig7(&sb, sweep)
	PrintFig8(&sb, sweep[0])
	PrintFig9(&sb, sweep)
	proj, err := Fig10and11Projection([]int64{1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	PrintFig10and11(&sb, proj)
	out := sb.String()
	for _, want := range []string{"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"data-shipping", "by-projection", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestFigScatterShape(t *testing.T) {
	rows, err := FigScatter(1<<17, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		want := []int{1, 2, 4}[i]
		if int(r.Requests) != want || r.Parallelism != want {
			t.Errorf("%d peers: requests=%d parallelism=%d", want, r.Requests, r.Parallelism)
		}
		if r.OverlapNetNS > r.SerialNetNS {
			t.Errorf("%d peers: overlapped %d exceeds serial %d", want, r.OverlapNetNS, r.SerialNetNS)
		}
	}
	// More peers shard the same data further: the overlapped network time
	// must not grow, while the serial sum does (per-request latency).
	if rows[2].SerialNetNS <= rows[0].SerialNetNS {
		t.Error("serial network time should grow with peer count")
	}
	if rows[2].OverlapNetNS >= rows[0].OverlapNetNS {
		t.Error("overlapped network time should shrink as shards split the transfer")
	}
	// The result is independent of the shard count.
	a := NewScatterFixture(1<<17, 2)
	b := NewScatterFixture(1<<17, 4)
	ra, _, err := a.Run(core.ByFragment, false)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.Run(core.ByFragment, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) == 0 || len(ra) != len(rb) {
		t.Errorf("sharding changed the result: %d vs %d items", len(ra), len(rb))
	}
}
