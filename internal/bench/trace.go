package bench

// This file holds the trace figure: the live end-to-end tracing run
// (FigTrace — a traced query through the service over a replicated scatter
// federation with one primary killed and a tight hedge trigger, validating
// the assembled cross-peer span tree) and the deterministic waterfall the
// figure prints (SimTraceFig — the same query shape priced on the netsim
// model, so the rendering is byte-stable for the golden test).

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"distxq/internal/core"
	"distxq/internal/netsim"
	"distxq/internal/service"
	"distxq/internal/trace"
	"distxq/internal/xrpc"
)

// TraceRow summarizes one live traced run for the figure and the acceptance
// test: the structural facts of the assembled span tree.
type TraceRow struct {
	Peers  int
	Killed string
	// Spans counts every span of the assembled tree; Attempts the per-lane
	// attempt spans; Winners the attempts tagged winner; RemotePeers the
	// distinct non-originator peers whose server-side spans were grafted in.
	Spans       int
	Attempts    int
	Winners     int
	Hedges      int
	Retries     int
	RemotePeers int
	// Connected is true when exactly one root exists and every other span's
	// parent is present — one tree, no orphans.
	Connected bool
	// OpenSpans and DoubleEnds are the invariant counters at snapshot time;
	// both must be zero.
	OpenSpans  int
	DoubleEnds int
	// ResultsEqual is true when the traced killed-primary run returned
	// byte-identical results to the untraced healthy run.
	ResultsEqual bool
	// Rec is the assembled tree; ChromeJSON its trace-event export.
	Rec        *trace.Recorded
	ChromeJSON []byte
}

// FigTrace runs the live tracing figure: a replicated scatter federation,
// the last primary killed, a deliberately tight hedge trigger, one traced
// query through the service (admission, plan, execute), and the assembled
// span tree pulled from the trace ring once every span has ended.
func FigTrace(totalBytes int64, peers int) (*TraceRow, error) {
	f := NewReplicatedScatterFixture(totalBytes, peers)
	healthy, _, err := f.Run(core.ByFragment, false)
	if err != nil {
		return nil, fmt.Errorf("trace healthy run: %w", err)
	}
	killed := f.Peers[len(f.Peers)-1]
	f.Net.KillPeer(killed)
	defer f.Net.RevivePeer(killed)
	svc := service.New(f.Net, f.Local, core.ByFragment, service.Config{Trace: true}).
		UseRetry(&xrpc.RetryPolicy{HedgeAfter: 200 * time.Microsecond})
	svc.Replicas = f.ShardMap.ReplicaSets()
	res, rep, err := svc.Query(f.Query, core.Budget{})
	if err != nil {
		return nil, fmt.Errorf("traced query with %s killed: %w", killed, err)
	}
	tr := svc.Traces.Last()
	if tr == nil {
		return nil, fmt.Errorf("trace ring is empty after a traced query")
	}
	// Losing attempts over the synchronous in-memory transport outlive the
	// query: they end their spans when their discarded exchange completes.
	// Wait for the tree to settle before snapshotting.
	deadline := time.Now().Add(10 * time.Second)
	for tr.OpenSpans() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rec := tr.Snapshot()
	row := &TraceRow{
		Peers:        peers,
		Killed:       killed,
		Spans:        len(rec.Spans),
		OpenSpans:    rec.OpenSpans,
		DoubleEnds:   tr.DoubleEnds(),
		Retries:      int(rep.Retries),
		Hedges:       int(rep.Hedges),
		ResultsEqual: serializeSeq(res) == serializeSeq(healthy),
	}
	ids := map[trace.SpanID]bool{}
	for _, s := range rec.Spans {
		ids[s.ID] = true
	}
	roots := 0
	remotes := map[string]bool{}
	for _, s := range rec.Spans {
		if s.Parent == 0 {
			roots++
		} else if !ids[s.Parent] {
			roots = -len(rec.Spans) // orphan: force Connected false
		}
		switch s.Name {
		case "attempt":
			row.Attempts++
			if a, ok := s.Attr("winner"); ok && a.Int == 1 {
				row.Winners++
			}
		case "serve", "serve-stream":
			if s.Peer != "" && s.Peer != rec.Peer {
				remotes[s.Peer] = true
			}
		}
	}
	row.Connected = roots == 1
	row.RemotePeers = len(remotes)
	row.Rec = rec
	row.ChromeJSON, err = trace.ChromeTraceJSON(rec)
	if err != nil {
		return nil, fmt.Errorf("chrome export: %w", err)
	}
	return row, nil
}

// simSpans builds a Recorded span by span with explicit IDs and times.
type simSpans struct {
	rec  *trace.Recorded
	next trace.SpanID
}

func (b *simSpans) span(parent trace.SpanID, name, peer string, startNS, endNS int64, attrs ...trace.Attr) trace.SpanID {
	b.next++
	b.rec.Spans = append(b.rec.Spans, trace.Span{
		ID: b.next, Parent: parent, Name: name, Peer: peer,
		StartNS: startNS, EndNS: endNS, Attrs: attrs,
	})
	if endNS > b.rec.DurationNS {
		b.rec.DurationNS = endNS
	}
	return b.next
}

func (b *simSpans) fail(id trace.SpanID, msg string) {
	b.rec.Spans[int(id)-1].Error = msg
}

// SimTraceFig builds the deterministic waterfall the figure prints: the
// killed-primary hedged 4-peer scatter query priced on the netsim LAN model.
// Lane 3's primary straggles and loses to a hedge; lane 4's primary is dead
// and fails over to its replica. Server-side spans sit inside their winning
// attempt the way IngestRemote places them on a live run.
func SimTraceFig() *trace.Recorded {
	m := netsim.GigabitLAN()
	e := netsim.Exchange{ReqBytes: 2 << 10, RespBytes: 256 << 10}
	b := &simSpans{rec: &trace.Recorded{ID: 1, Peer: "local"}}

	us := func(n int64) int64 { return n * int64(time.Microsecond) }
	execNS := us(300)
	tl := m.Timeline(e, execNS)

	// serve adds one remote serve span (with shred and call children) inside
	// an attempt window, centered the way IngestRemote centers a one-exchange
	// estimate: the network time splits symmetrically around the server work.
	serve := func(attempt trace.SpanID, peer string, attStart, attEnd int64) {
		extent := tl.ExecDoneNS - tl.ReqDoneNS + us(40) // serve span: shred+exec+marshal
		off := attStart + (attEnd-attStart-extent)/2
		sv := b.span(attempt, "serve", peer, off, off+extent, trace.Str("method", "executeIterate"), trace.Int("calls", 1))
		b.span(sv, "shred", peer, off, off+us(20))
		b.span(sv, "call", peer, off+us(20), off+us(20)+execNS)
	}

	root := b.span(0, "query", "", 0, 0, trace.Str("strategy", "pass-by-fragment"))
	b.span(root, "admission", "", 0, us(20))
	plan := b.span(root, "plan", "", us(20), us(140), trace.Str("cache", "miss"))
	b.span(plan, "compile", "", us(30), us(130))
	exec := b.span(root, "execute", "", us(140), 0, trace.Str("strategy", "pass-by-fragment"), trace.Bool("streamed", false))
	scatter := b.span(exec, "scatter", "", us(150), 0, trace.Int("lanes", 4))

	lane := func(target string) trace.SpanID {
		return b.span(scatter, "lane", "", us(160), 0, trace.Str("target", target))
	}
	endLane := func(id trace.SpanID, endNS int64, winner string, replica, retries, hedges, wastedNS int64) {
		s := &b.rec.Spans[int(id)-1]
		s.EndNS = endNS
		s.Attrs = append(s.Attrs,
			trace.Str("winner-peer", winner), trace.Int("replica", replica),
			trace.Int("retries", retries), trace.Int("hedges", hedges),
			trace.Int("wasted_ns", wastedNS))
		if endNS > b.rec.DurationNS {
			b.rec.DurationNS = endNS
		}
	}

	// Lanes 1 and 2: the primary answers; their serve spans come back on the
	// response.
	for i, target := range []string{"peer1", "peer2"} {
		l := lane(target)
		end := us(160+int64(i)*15) + tl.RespDoneNS
		a := b.span(l, "attempt", "", us(160), end,
			trace.Str("peer", target), trace.Int("replica", 0), trace.Str("kind", "primary"),
			trace.Bool("winner", true))
		serve(a, target, us(160), end)
		endLane(l, end, target, 0, 0, 0, 0)
	}

	// Lane 3: the primary straggles (a 6 ms pause); the hedge fires at the
	// trigger, its replica answers first, and the straggler's late response
	// is discarded — its wall time is the lane's wasted spend.
	{
		l := lane("peer3")
		straggleEnd := us(160) + m.Timeline(e, us(6000)).RespDoneNS
		hedgeAt := us(160 + 1500)
		hedgeEnd := hedgeAt + tl.RespDoneNS
		p := b.span(l, "attempt", "", us(160), straggleEnd,
			trace.Str("peer", "peer3"), trace.Int("replica", 0), trace.Str("kind", "primary"))
		b.fail(p, "context canceled")
		h := b.span(l, "attempt", "", hedgeAt, hedgeEnd,
			trace.Str("peer", "rep3"), trace.Int("replica", 1), trace.Str("kind", "hedge"),
			trace.Bool("winner", true))
		serve(h, "rep3", hedgeAt, hedgeEnd)
		endLane(l, hedgeEnd, "rep3", 1, 0, 1, straggleEnd-us(160))
	}

	// Lane 4: the primary is dead — the transport refuses the exchange fast
	// — and the retry to the replica wins. No server span from the dead peer:
	// a host that never answered cannot piggyback one.
	{
		l := lane("peer4")
		failAt := us(160 + 50)
		p := b.span(l, "attempt", "", us(160), failAt,
			trace.Str("peer", "peer4"), trace.Int("replica", 0), trace.Str("kind", "primary"))
		b.fail(p, "xrpc: unknown peer \"peer4\"")
		retryAt := us(160 + 60)
		retryEnd := retryAt + tl.RespDoneNS
		r := b.span(l, "attempt", "", retryAt, retryEnd,
			trace.Str("peer", "rep4"), trace.Int("replica", 1), trace.Str("kind", "retry"),
			trace.Bool("winner", true))
		serve(r, "rep4", retryAt, retryEnd)
		endLane(l, retryEnd, "rep4", 1, 1, 0, failAt-us(160))
	}

	// Close the enclosing spans at the slowest lane plus a little local work.
	var slowest int64
	for _, s := range b.rec.Spans {
		if s.Name == "lane" && s.EndNS > slowest {
			slowest = s.EndNS
		}
	}
	b.rec.Spans[int(scatter)-1].EndNS = slowest
	b.rec.Spans[int(exec)-1].EndNS = slowest + us(120)
	b.rec.Spans[int(root)-1].EndNS = slowest + us(130)
	// The losing straggler outlives the query — the trace extent is the max
	// span end, exactly as Trace.Snapshot defines it.
	b.rec.DurationNS = 0
	for _, s := range b.rec.Spans {
		if s.EndNS > b.rec.DurationNS {
			b.rec.DurationNS = s.EndNS
		}
	}
	return b.rec
}

// PrintFigTrace renders a span tree as a text waterfall: one row per span in
// depth-first start order, the bar positioned on the trace's timeline.
func PrintFigTrace(w io.Writer, rec *trace.Recorded) {
	fmt.Fprintf(w, "Trace waterfall — trace %d, %d spans, %s total\n",
		rec.ID, len(rec.Spans), fmtNS(rec.DurationNS))
	children := map[trace.SpanID][]trace.Span{}
	var roots []trace.Span
	byID := map[trace.SpanID]bool{}
	for _, s := range rec.Spans {
		byID[s.ID] = true
	}
	for _, s := range rec.Spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(spans []trace.Span) {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].StartNS != spans[j].StartNS {
				return spans[i].StartNS < spans[j].StartNS
			}
			return spans[i].ID < spans[j].ID
		})
	}
	order(roots)
	const cols = 40
	total := rec.DurationNS
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "%-34s %-6s %9s %9s  %s\n", "span", "peer", "start", "dur", "timeline")
	var walk func(s trace.Span, depth int)
	walk = func(s trace.Span, depth int) {
		label := strings.Repeat("  ", depth) + s.Name
		if a, ok := s.Attr("peer"); ok {
			label += " " + a.Str
		} else if a, ok := s.Attr("target"); ok {
			label += " " + a.Str
		}
		if a, ok := s.Attr("kind"); ok {
			label += " (" + a.Str + ")"
		}
		if a, ok := s.Attr("winner"); ok && a.Int == 1 {
			label += " *"
		}
		if s.Error != "" {
			label += " !"
		}
		if len(label) > 34 {
			label = label[:33] + "…"
		}
		peer := s.Peer
		if peer == "" {
			peer = rec.Peer
		}
		from := int(s.StartNS * cols / total)
		to := int(s.EndNS * cols / total)
		if to <= from {
			to = from + 1
		}
		if to > cols {
			to = cols
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("=", to-from) + strings.Repeat(" ", cols-to)
		fmt.Fprintf(w, "%-34s %-6s %9s %9s  |%s|\n",
			label, peer, fmtNS(s.StartNS), fmtNS(s.DurationNS()), bar)
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// PrintFigTraceRow renders the live run's structural summary.
func PrintFigTraceRow(w io.Writer, totalBytes int64, row *TraceRow) {
	result := "DIVERGED"
	if row.ResultsEqual {
		result = "identical"
	}
	tree := "DISCONNECTED"
	if row.Connected {
		tree = "connected"
	}
	fmt.Fprintf(w, "Traced failover — sharded people (%s total) x2 replication, primary %s killed (live run)\n",
		fmtBytes(totalBytes), row.Killed)
	fmt.Fprintf(w, "%6s %6s %9s %8s %7s %6s %13s %10s\n",
		"peers", "spans", "attempts", "winners", "remote", "open", "tree", "results")
	fmt.Fprintf(w, "%6d %6d %9d %8d %7d %6d %13s %10s\n",
		row.Peers, row.Spans, row.Attempts, row.Winners, row.RemotePeers, row.OpenSpans, tree, result)
}
