package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/peer"
	"distxq/internal/service"
	"distxq/internal/xdm"
	"distxq/internal/xrpc"
)

// federation is a small scatter federation with every shard stored twice:
// primary peer<i> plus replica rep<i> holding a byte-identical document.
type federation struct {
	net       *peer.Network
	origin    *peer.Peer
	primaries []string
	replicas  map[string][]string
	all       []string // primaries then replicas
	query     string
}

func newFederation(t testing.TB, peers int) *federation {
	t.Helper()
	f := &federation{net: peer.NewNetwork(), replicas: map[string][]string{}}
	for i := 1; i <= peers; i++ {
		name := fmt.Sprintf("peer%d", i)
		rname := fmt.Sprintf("rep%d", i)
		doc := fmt.Sprintf(`<people><person><age>%d</age><name>a%d</name></person>`+
			`<person><age>%d</age><name>b%d</name></person></people>`, 20+i, i, 60+i, i)
		for _, n := range []string{name, rname} {
			if err := f.net.AddPeer(n).LoadXML("d.xml", doc); err != nil {
				t.Fatal(err)
			}
		}
		f.primaries = append(f.primaries, name)
		f.replicas[name] = []string{rname}
		f.all = append(f.all, name, rname)
	}
	f.origin = f.net.AddPeer("local")
	quoted := make([]string, len(f.primaries))
	for i, p := range f.primaries {
		quoted[i] = `"` + p + `"`
	}
	f.query = fmt.Sprintf(`
declare function young() as item()* {
  for $x in doc("d.xml")/child::people/child::person
  return if ($x/child::age < 40) then $x/child::name else ()
};
for $p in (%s) return execute at {$p} { young() }`, strings.Join(quoted, ", "))
	return f
}

func serialize(s xdm.Sequence) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch v := it.(type) {
		case *xdm.Node:
			sb.WriteString(xdm.SerializeString(v))
		case xdm.Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	return sb.String()
}

func checkPartition(t *testing.T, res Result) {
	t.Helper()
	if got := res.Completed + res.Failed + res.Shed; got != res.Offered {
		t.Errorf("outcomes %d != offered %d (%+v)", got, res.Offered, res)
	}
	if res.Stats.Dispatched+res.Stats.Rejected != res.Offered {
		t.Errorf("stats cover %d outcomes, offered %d",
			res.Stats.Dispatched+res.Stats.Rejected, res.Offered)
	}
}

// TestSustainedLoad is the CI smoke: a closed-loop run over a healthy
// federation must complete queries continuously with nothing shed or
// failed, and the plan cache must collapse planning to one miss.
func TestSustainedLoad(t *testing.T) {
	f := newFederation(t, 3)
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
		MaxConcurrent: 8,
		DefaultBudget: core.Budget{Wall: 5 * time.Second},
	})
	svc.UseRetry(&xrpc.RetryPolicy{SpreadReplicas: true, HedgeAfter: 50 * time.Millisecond})
	svc.Replicas = f.replicas

	res := Run(ServiceTarget(svc, f.query), Options{Duration: 150 * time.Millisecond, Workers: 4})
	checkPartition(t, res)
	if res.Completed == 0 {
		t.Fatalf("no queries completed: %+v", res)
	}
	if res.Failed != 0 || res.Shed != 0 {
		t.Errorf("healthy run failed=%d shed=%d: %+v", res.Failed, res.Shed, res)
	}
	if res.Stats.P50 <= 0 || res.Stats.P99 < res.Stats.P50 {
		t.Errorf("implausible latency quantiles: %+v", res.Stats)
	}
	if res.GoodputQPS <= 0 {
		t.Errorf("goodput %v", res.GoodputQPS)
	}
	st := svc.Stats()
	if st.PlanMisses != 1 || st.PlanHits != st.Admitted-1 {
		t.Errorf("plan cache: misses=%d hits=%d admitted=%d, want 1 miss, rest hits",
			st.PlanMisses, st.PlanHits, st.Admitted)
	}
}

// TestSustainedLoadUnderChaos keeps killing primaries (one at a time, each
// shard ×2-replicated) during a closed-loop run: goodput must continue and
// no query may fail — every lane to a dead primary fails over.
func TestSustainedLoadUnderChaos(t *testing.T) {
	f := newFederation(t, 3)
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
		MaxConcurrent: 8,
		DefaultBudget: core.Budget{Wall: 5 * time.Second},
	})
	svc.UseRetry(&xrpc.RetryPolicy{SpreadReplicas: true, HedgeAfter: 20 * time.Millisecond})
	svc.Replicas = f.replicas

	chaos := &Chaos{
		Net:      f.net,
		Victims:  f.primaries,
		Interval: 15 * time.Millisecond,
		Downtime: 10 * time.Millisecond,
		Seed:     7,
	}
	stop := chaos.Start()
	res := Run(ServiceTarget(svc, f.query), Options{Duration: 200 * time.Millisecond, Workers: 4})
	stop()

	checkPartition(t, res)
	if res.Completed == 0 {
		t.Fatalf("no queries completed under chaos: %+v", res)
	}
	if res.Failed != 0 {
		t.Errorf("%d queries failed despite replication: %+v", res.Failed, res)
	}
}

// TestSustainedLoadOpenLoop checks the open-loop arrival process: offered
// load is set by the arrival interval, not by completions.
func TestSustainedLoadOpenLoop(t *testing.T) {
	f := newFederation(t, 2)
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
		MaxConcurrent: 8,
		DefaultBudget: core.Budget{Wall: 5 * time.Second},
	})
	res := Run(ServiceTarget(svc, f.query), Options{
		Duration: 100 * time.Millisecond,
		Arrival:  2 * time.Millisecond,
	})
	checkPartition(t, res)
	if res.Completed == 0 {
		t.Fatalf("no queries completed: %+v", res)
	}
	if res.Offered < 10 {
		t.Errorf("open loop offered only %d queries in 100ms at 2ms arrivals", res.Offered)
	}
}

// TestRunMaxQueries bounds a run by count instead of duration.
func TestRunMaxQueries(t *testing.T) {
	f := newFederation(t, 2)
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{MaxConcurrent: 4})
	res := Run(ServiceTarget(svc, f.query), Options{
		Duration:   5 * time.Second,
		Workers:    2,
		MaxQueries: 9,
	})
	checkPartition(t, res)
	if res.Offered != 9 || res.Completed != 9 {
		t.Errorf("offered=%d completed=%d, want 9/9", res.Offered, res.Completed)
	}
}

// overloadDrive floods the target open-loop at roughly 2× the service's
// capacity (2 tokens × 10ms service time = 200 QPS; arrivals every 2.5ms =
// 400 QPS): offered load is fixed by the arrival process, so the service
// must shed the excess instead of queueing it into latency collapse.
func overloadDrive(target Target) Result {
	return Run(target, Options{
		Duration: 150 * time.Millisecond,
		Arrival:  2500 * time.Microsecond,
	})
}

// overloadChecks asserts the graceful-degradation criteria: under 2×
// capacity offered load the service sheds, admitted queries keep a tail
// within 3× the uncontended P99 (the admission queue is short by design),
// and shed queries fail in a small fraction of the budget.
func overloadChecks(t *testing.T, uncontended, overloaded Result, budget time.Duration) {
	t.Helper()
	checkPartition(t, overloaded)
	if overloaded.Shed == 0 {
		t.Fatalf("overload shed nothing: %+v", overloaded)
	}
	if overloaded.Completed == 0 {
		t.Fatalf("overload starved admitted queries: %+v", overloaded)
	}
	if base := uncontended.Stats.P99; overloaded.Stats.P99 > 3*base {
		t.Errorf("admitted P99 %v exceeds 3x uncontended P99 %v",
			overloaded.Stats.P99, base)
	}
	if lim := budget / 10; overloaded.Stats.RejectP99 >= lim {
		t.Errorf("shed queries took P99 %v, want < %v (budget/10)",
			overloaded.Stats.RejectP99, lim)
	}
	if overloaded.DeadlineExceeded != 0 {
		t.Errorf("%d admitted queries blew the budget: %+v",
			overloaded.DeadlineExceeded, overloaded)
	}
}

// TestOverloadFastRejectInMemory drives the in-memory federation at well
// over capacity with straggler-injected (10ms) peers.
func TestOverloadFastRejectInMemory(t *testing.T) {
	f := newFederation(t, 2)
	for _, name := range f.primaries {
		restore := SlowPeer(f.net, name, 10*time.Millisecond)
		defer restore()
	}
	budget := 800 * time.Millisecond
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		MaxQueueWait:  4 * time.Millisecond,
		DefaultBudget: core.Budget{Wall: budget},
	})
	target := ServiceTarget(svc, f.query)

	uncontended := Run(target, Options{Duration: 120 * time.Millisecond, Workers: 1})
	if uncontended.Shed != 0 || uncontended.Failed != 0 || uncontended.Completed == 0 {
		t.Fatalf("uncontended baseline unhealthy: %+v", uncontended)
	}
	overloadChecks(t, uncontended, overloadDrive(target), budget)
}

// TestOverloadFastRejectHTTP repeats the overload scenario with the scatter
// peers behind real HTTP servers, each slowed by 10ms of service time.
func TestOverloadFastRejectHTTP(t *testing.T) {
	backend := newFederation(t, 2)
	slow := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(10 * time.Millisecond)
			h.ServeHTTP(w, r)
		})
	}
	urls := map[string]string{}
	for _, name := range backend.primaries {
		p, _ := backend.net.Peer(name)
		mux := http.NewServeMux()
		mux.Handle("/xrpc", slow(xrpc.NewHTTPHandler(p.Server)))
		mux.Handle("/xrpc/stream", slow(xrpc.NewStreamHTTPHandler(p.Server)))
		ts := httptest.NewServer(mux)
		defer ts.Close()
		urls[name] = ts.URL
	}
	front := peer.NewNetwork()
	tr := &xrpc.HTTPTransport{URLFor: func(p string) string { return urls[p] + "/xrpc" }}
	for name := range urls {
		front.RouteExternal(name, tr)
	}
	origin := front.AddPeer("local")

	budget := 800 * time.Millisecond
	svc := service.New(front, origin, core.ByFragment, service.Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		MaxQueueWait:  4 * time.Millisecond,
		DefaultBudget: core.Budget{Wall: budget},
	})
	target := ServiceTarget(svc, backend.query)

	uncontended := Run(target, Options{Duration: 120 * time.Millisecond, Workers: 1})
	if uncontended.Shed != 0 || uncontended.Failed != 0 || uncontended.Completed == 0 {
		t.Fatalf("uncontended baseline unhealthy: %+v", uncontended)
	}
	overloadChecks(t, uncontended, overloadDrive(target), budget)
}

// TestKillAnyPeerEquivalenceWithAdaptiveHedging is the robustness
// invariant under the new dispatch features: with adaptive hedging and
// replica spreading enabled, killing any single primary must leave the
// query's serialized result byte-identical to the healthy run.
func TestKillAnyPeerEquivalenceWithAdaptiveHedging(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		f := newFederation(t, 3)
		f.net.SetCompile(compiled)
		svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
			MaxConcurrent: 4,
			DefaultBudget: core.Budget{Wall: 5 * time.Second},
			Compile:       compiled,
		})
		svc.UseRetry(&xrpc.RetryPolicy{SpreadReplicas: true, HedgeAfter: 10 * time.Millisecond})
		svc.Replicas = f.replicas

		healthy, _, err := svc.Query(f.query, core.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		want := serialize(healthy)
		// Warm the health tracker so hedging runs adaptively, then kill each
		// primary in turn.
		for i := 0; i < 10; i++ {
			if _, _, err := svc.Query(f.query, core.Budget{}); err != nil {
				t.Fatal(err)
			}
		}
		for _, victim := range f.primaries {
			f.net.KillPeer(victim)
			got, _, err := svc.Query(f.query, core.Budget{})
			f.net.RevivePeer(victim)
			if err != nil {
				t.Fatalf("compiled=%v kill %s: %v", compiled, victim, err)
			}
			if g := serialize(got); g != want {
				t.Errorf("compiled=%v kill %s: result diverged\n got %q\nwant %q", compiled, victim, g, want)
			}
		}
	}
}

// TestSlowPeerEquivalenceWithAdaptiveHedging: a straggling primary must
// change latency, never results — the hedge (or spread) answers through
// the replica with identical bytes.
func TestSlowPeerEquivalenceWithAdaptiveHedging(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		f := newFederation(t, 3)
		f.net.SetCompile(compiled)
		svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
			MaxConcurrent: 4,
			DefaultBudget: core.Budget{Wall: 5 * time.Second},
			Compile:       compiled,
		})
		svc.UseRetry(&xrpc.RetryPolicy{SpreadReplicas: true, HedgeAfter: 5 * time.Millisecond})
		svc.Replicas = f.replicas

		healthy, _, err := svc.Query(f.query, core.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		want := serialize(healthy)
		restore := SlowPeer(f.net, f.primaries[0], 50*time.Millisecond)
		for i := 0; i < 5; i++ {
			got, _, err := svc.Query(f.query, core.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			if g := serialize(got); g != want {
				t.Fatalf("compiled=%v slow peer run %d diverged\n got %q\nwant %q", compiled, i, g, want)
			}
		}
		restore()
	}
}
