package load

import (
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/service"
	"distxq/internal/xrpc"
)

// TestSustainedLoadTraced is the tracing-on counterpart of the sustained
// CI smoke: with every query recording a span tree into a small ring, the
// run must stay clean (nothing shed, nothing failed) and the ring's traces
// must settle with no leaked or double-ended spans — tracing under real
// concurrency, replica spread, and hedging does not corrupt bookkeeping.
func TestSustainedLoadTraced(t *testing.T) {
	f := newFederation(t, 3)
	svc := service.New(f.net, f.origin, core.ByFragment, service.Config{
		MaxConcurrent: 8,
		DefaultBudget: core.Budget{Wall: 5 * time.Second},
		Trace:         true,
		TraceRing:     16,
	})
	svc.UseRetry(&xrpc.RetryPolicy{SpreadReplicas: true, HedgeAfter: 50 * time.Millisecond})
	svc.Replicas = f.replicas

	res := Run(ServiceTarget(svc, f.query), Options{Duration: 150 * time.Millisecond, Workers: 4})
	checkPartition(t, res)
	if res.Completed == 0 {
		t.Fatalf("no queries completed: %+v", res)
	}
	if res.Failed != 0 || res.Shed != 0 {
		t.Errorf("traced run failed=%d shed=%d: %+v", res.Failed, res.Shed, res)
	}

	d := svc.Traces.Dump()
	if len(d.Recent) == 0 {
		t.Fatal("trace ring is empty after a sustained traced run")
	}
	// Give in-flight losers a moment to close, then re-dump and audit every
	// held trace for leaks.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if tr := svc.Traces.Last(); tr == nil || tr.OpenSpans() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, rec := range svc.Traces.Dump().Recent {
		if rec.OpenSpans != 0 {
			t.Errorf("trace %d holds %d open spans after settling", rec.ID, rec.OpenSpans)
		}
		if len(rec.Spans) == 0 {
			t.Errorf("trace %d recorded no spans", rec.ID)
		}
	}
}
