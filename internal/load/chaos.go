package load

// Fault and straggler injection for load runs. Kills go through the same
// Network.KillPeer/RevivePeer path the failover tests use — a killed peer's
// endpoint deregisters, so its lanes fail like a dead host and the dispatch
// layer must fail over. Stragglers wrap a peer's in-memory endpoint with a
// fixed service delay, the overload tests' way of making a federation
// slower than its offered load.

import (
	"math/rand"
	"sync"
	"time"

	"distxq/internal/peer"
	"distxq/internal/xrpc"
)

// Chaos kills random peers for bounded downtimes while a load run is in
// flight. The victim sequence and kill timing derive from Seed alone, so a
// run's injected fault schedule is reproducible (completion timing is not —
// this is a live harness, not a simulation).
type Chaos struct {
	// Net is the federation under test; Victims the peers eligible to die.
	Net     *peer.Network
	Victims []string
	// Interval is the mean time between kills (jittered ±50%); Downtime how
	// long each victim stays dead. At most one victim is down at a time, so
	// a ×2-replicated federation always has a live copy of every shard.
	Interval time.Duration
	Downtime time.Duration
	// Seed feeds the private PRNG; zero means 1.
	Seed int64
}

// Start launches the kill loop and returns its stop function, which revives
// any currently-dead victim and blocks until the loop exits.
func (c *Chaos) Start() (stop func()) {
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	done := make(chan struct{})
	var wg sync.WaitGroup
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-done:
			return false
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			jitter := time.Duration(rng.Int63n(int64(c.Interval) + 1))
			if !sleep(c.Interval/2 + jitter) {
				return
			}
			victim := c.Victims[rng.Intn(len(c.Victims))]
			c.Net.KillPeer(victim)
			ok := sleep(c.Downtime)
			c.Net.RevivePeer(victim)
			if !ok {
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// slowHandler delays a peer's in-memory endpoint by a fixed service time,
// for both gathered and streamed exchanges.
type slowHandler struct {
	inner xrpc.Handler
	delay time.Duration
}

func (s *slowHandler) Handle(request []byte) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.Handle(request)
}

func (s *slowHandler) HandleStream(request []byte, emit func([]byte) error) error {
	time.Sleep(s.delay)
	if sh, ok := s.inner.(xrpc.StreamHandler); ok {
		return sh.HandleStream(request, emit)
	}
	resp, err := s.inner.Handle(request)
	if err != nil {
		return err
	}
	return emit(resp)
}

// SlowPeer injects a straggler: the named in-process peer's endpoint gains
// a fixed service delay on every exchange. The returned restore removes it.
func SlowPeer(net *peer.Network, name string, delay time.Duration) (restore func()) {
	p, ok := net.Peer(name)
	if !ok {
		return func() {}
	}
	net.Transport.Register(name, &slowHandler{inner: p.Server, delay: delay})
	return func() { net.Transport.Register(name, p.Server) }
}
