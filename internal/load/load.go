// Package load is the sustained-load harness for the federation service:
// an open- or closed-loop arrival generator driven against a front end
// (service.Service or anything wrapped in a Target), with seeded fault and
// straggler injection against the underlying peer network. A run reports
// sustained goodput, admitted-latency quantiles, shed rate and hedge spend;
// latency statistics come from netsim.Summarize, so shed (never-dispatched)
// queries count toward the shed rate but never enter the latency
// distribution.
package load

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"distxq/internal/core"
	"distxq/internal/netsim"
	"distxq/internal/peer"
	"distxq/internal/service"
	"distxq/internal/xrpc"
)

// Default knobs of the zero Options.
const (
	DefaultDuration = 200 * time.Millisecond
	DefaultWorkers  = 4
)

// Options parameterizes one load run.
type Options struct {
	// Duration bounds the submission window; in-flight queries at its end
	// are drained, not cut off. Zero means DefaultDuration.
	Duration time.Duration
	// Workers is the closed-loop concurrency: each worker submits queries
	// back-to-back, so offered load tracks service capacity. Zero means
	// DefaultWorkers. Ignored when Arrival is set.
	Workers int
	// Arrival switches to open-loop generation: one query launches every
	// Arrival regardless of completions — offered load is fixed, and a
	// service slower than the arrival rate must queue or shed.
	Arrival time.Duration
	// MaxQueries caps submissions across the run (0 = no cap).
	MaxQueries int
	// Budget is the per-query wall-time budget handed to the target.
	Budget core.Budget
}

func (o Options) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return DefaultDuration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultWorkers
}

// Target executes one query of the run under a budget. seq is the global
// submission index (for round-robining a query mix); the report may be nil
// when the front end does not expose dispatch provenance (an HTTP gateway).
type Target func(seq int, budget core.Budget) (*peer.Report, error)

// ServiceTarget adapts a service to a Target, round-robining the query mix.
func ServiceTarget(svc *service.Service, queries ...string) Target {
	return func(seq int, budget core.Budget) (*peer.Report, error) {
		_, rep, err := svc.Query(queries[seq%len(queries)], budget)
		return rep, err
	}
}

// Result is the report of one load run.
type Result struct {
	// Offered counts submissions; Completed/Failed/Shed partition their
	// outcomes (Shed ⊂ neither: a shed query never ran). DeadlineExceeded
	// is the Failed subset that blew its budget.
	Offered          int
	Completed        int
	Failed           int
	Shed             int
	DeadlineExceeded int
	// Elapsed is submission window plus drain.
	Elapsed time.Duration
	// OfferedQPS and GoodputQPS are submissions and completions per second
	// of Elapsed — sustained goodput is what overload must not collapse.
	OfferedQPS float64
	GoodputQPS float64
	// Stats holds the latency quantiles: P50/P90/P99 over admitted queries
	// only, RejectP99 over the shed ones (how fast shedding fails).
	Stats netsim.LoadStats
	// ShedRate is Shed/Offered.
	ShedRate float64
	// Hedges and Retries sum the dispatch provenance of admitted queries
	// whose target reported one; HedgeRate is hedges per such query — the
	// speculative spend that bought the tail down.
	Hedges    int64
	Retries   int64
	HedgeRate float64
}

// Run drives the target under the given arrival process and prices the
// outcomes. It returns once every launched query has drained.
func Run(target Target, opts Options) Result {
	var (
		mu       sync.Mutex
		outcomes []netsim.LaneOutcome
		res      Result
		reported int
		seq      atomic.Int64
	)
	one := func(i int) {
		start := time.Now()
		rep, err := target(i, opts.Budget)
		lat := time.Since(start)
		shed := err != nil && errors.Is(err, xrpc.ErrOverloaded)
		mu.Lock()
		defer mu.Unlock()
		outcomes = append(outcomes, netsim.LaneOutcome{Latency: lat, Rejected: shed})
		switch {
		case shed:
			res.Shed++
		case err != nil:
			res.Failed++
			if errors.Is(err, xrpc.ErrDeadlineExceeded) {
				res.DeadlineExceeded++
			}
		default:
			res.Completed++
		}
		if !shed && rep != nil {
			res.Hedges += rep.Hedges
			res.Retries += rep.Retries
			reported++
		}
	}
	// next claims a submission slot, enforcing MaxQueries and the window.
	deadline := time.Now().Add(opts.duration())
	next := func() (int, bool) {
		if time.Now().After(deadline) {
			return 0, false
		}
		i := int(seq.Add(1)) - 1
		if opts.MaxQueries > 0 && i >= opts.MaxQueries {
			return 0, false
		}
		return i, true
	}

	begin := time.Now()
	var wg sync.WaitGroup
	if opts.Arrival > 0 {
		tick := time.NewTicker(opts.Arrival)
		defer tick.Stop()
		for {
			i, ok := next()
			if !ok {
				break
			}
			wg.Add(1)
			go func() { defer wg.Done(); one(i) }()
			<-tick.C
		}
	} else {
		for w := 0; w < opts.workers(); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i, ok := next()
					if !ok {
						return
					}
					one(i)
				}
			}()
		}
	}
	wg.Wait()

	res.Elapsed = time.Since(begin)
	res.Offered = len(outcomes)
	res.Stats = netsim.Summarize(outcomes)
	res.ShedRate = res.Stats.ShedRate()
	if s := res.Elapsed.Seconds(); s > 0 {
		res.OfferedQPS = float64(res.Offered) / s
		res.GoodputQPS = float64(res.Completed) / s
	}
	if reported > 0 {
		res.HedgeRate = float64(res.Hedges) / float64(reported)
	}
	return res
}
