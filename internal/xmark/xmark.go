// Package xmark generates XMark-schema-compatible XML documents for the
// evaluation (§VII). The paper used the XMark xmlgen tool at scale factors
// 0.1–1.6 (10–160 MB); this deterministic generator produces the same
// element shapes the benchmark query touches — site/people/person with @id,
// name and a nested age, and site/open_auctions/open_auction with
// seller/@person and annotation/author — plus description filler to reach a
// requested byte size.
package xmark

import (
	"fmt"
	"strings"

	"distxq/internal/core"
	"distxq/internal/xdm"
)

// rng is a small deterministic linear congruential generator so documents
// are reproducible across runs and platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var firstNames = []string{
	"Ying", "Nan", "Peter", "Maarten", "Torsten", "Jens", "Stefan", "Jan",
	"Anna", "Kim", "Lena", "Milo", "Sven", "Femke", "Ada", "Noor",
}

var lastNames = []string{
	"Zhang", "Tang", "Boncz", "Kersten", "Grust", "Teubner", "Manegold",
	"Rittinger", "deVries", "Mullender", "Nes", "Schmidt",
}

var words = []string{
	"auction", "vintage", "rare", "collector", "mint", "boxed", "signed",
	"limited", "edition", "classic", "antique", "restored", "original",
	"certified", "pristine", "exceptional", "curious", "remarkable",
}

// Config controls document generation.
type Config struct {
	// Seed makes output deterministic per value.
	Seed uint64
	// Persons / Auctions / Items set entity counts directly. Items populate
	// the site/regions section of the people document — content the
	// benchmark query never touches, which function shipping therefore
	// avoids transferring (in real XMark, people are a fraction of a site).
	Persons  int
	Auctions int
	Items    int
	// FillerBytes approximates extra description text per entity, used to
	// scale documents to a target size.
	FillerBytes int
	// MinAge/MaxAge bound the uniform age distribution. The Figure 10
	// experiment selects age > 45; with ages in [18, 50) roughly 13% of
	// persons match, giving the ~5× runtime-projection advantage the paper
	// reports.
	MinAge, MaxAge int
}

// DefaultConfig returns the configuration used by the benchmark harness.
func DefaultConfig() Config {
	return Config{Seed: 42, Persons: 200, Auctions: 400, Items: 300, FillerBytes: 256, MinAge: 18, MaxAge: 50}
}

// ForSize returns a config scaled so the combined people+auctions documents
// serialize to roughly totalBytes (split evenly).
func ForSize(totalBytes int64) Config {
	c := DefaultConfig()
	// One person entry is ~220 bytes + filler; one auction ~420 + filler.
	perPerson := int64(220 + c.FillerBytes)
	perAuction := int64(420 + c.FillerBytes)
	perItem := int64(160 + c.FillerBytes)
	half := totalBytes / 2
	// The people document splits ~30% people, ~70% regions/items (real
	// XMark sites are dominated by regions and closed auctions).
	c.Persons = int(half * 3 / 10 / perPerson)
	if c.Persons < 4 {
		c.Persons = 4
	}
	c.Items = int(half * 7 / 10 / perItem)
	if c.Items < 4 {
		c.Items = 4
	}
	c.Auctions = int(half / perAuction)
	if c.Auctions < 4 {
		c.Auctions = 4
	}
	return c
}

func (r *rng) filler(n int) string {
	if n <= 0 {
		return ""
	}
	var sb strings.Builder
	for sb.Len() < n {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[r.intn(len(words))])
	}
	return sb.String()
}

// appendPerson builds one site/people/person entry with the given id.
func appendPerson(people *xdm.Node, r *rng, c Config, id int) {
	p := xdm.NewElement("person")
	p.SetAttr("id", fmt.Sprintf("person%d", id))
	name := xdm.NewElement("name")
	name.AppendChild(xdm.NewText(
		firstNames[r.intn(len(firstNames))] + " " + lastNames[r.intn(len(lastNames))]))
	p.AppendChild(name)
	email := xdm.NewElement("emailaddress")
	email.AppendChild(xdm.NewText(fmt.Sprintf("mailto:p%d@example.org", id)))
	p.AppendChild(email)
	profile := xdm.NewElement("profile")
	profile.SetAttr("income", fmt.Sprintf("%d", 20000+r.intn(80000)))
	age := xdm.NewElement("age")
	span := c.MaxAge - c.MinAge
	if span <= 0 {
		span = 1
	}
	age.AppendChild(xdm.NewText(fmt.Sprintf("%d", c.MinAge+r.intn(span))))
	profile.AppendChild(age)
	edu := xdm.NewElement("education")
	edu.AppendChild(xdm.NewText([]string{"High School", "College", "Graduate School"}[r.intn(3)]))
	profile.AppendChild(edu)
	if c.FillerBytes > 0 {
		desc := xdm.NewElement("description")
		desc.AppendChild(xdm.NewText(r.filler(c.FillerBytes)))
		profile.AppendChild(desc)
	}
	p.AppendChild(profile)
	addr := xdm.NewElement("address")
	city := xdm.NewElement("city")
	city.AppendChild(xdm.NewText([]string{"Amsterdam", "Utrecht", "Delft", "Leiden"}[r.intn(4)]))
	addr.AppendChild(city)
	p.AppendChild(addr)
	people.AppendChild(p)
}

// PeopleDocument generates the site/people document (xmk.xml).
func PeopleDocument(c Config, uri string) *xdm.Document {
	r := newRNG(c.Seed)
	d := xdm.NewDocument(uri)
	site := xdm.NewElement("site")
	people := xdm.NewElement("people")
	site.AppendChild(people)
	for i := 0; i < c.Persons; i++ {
		appendPerson(people, r, c, i)
	}
	// site/regions/*/item: the bulk of an XMark site the query ignores.
	regions := xdm.NewElement("regions")
	regionNames := []string{"europe", "namerica", "asia"}
	regionEls := map[string]*xdm.Node{}
	for _, rn := range regionNames {
		el := xdm.NewElement(rn)
		regionEls[rn] = el
		regions.AppendChild(el)
	}
	for i := 0; i < c.Items; i++ {
		item := xdm.NewElement("item")
		item.SetAttr("id", fmt.Sprintf("item%d", i))
		name := xdm.NewElement("name")
		name.AppendChild(xdm.NewText(words[r.intn(len(words))] + " " + words[r.intn(len(words))]))
		item.AppendChild(name)
		payment := xdm.NewElement("payment")
		payment.AppendChild(xdm.NewText([]string{"Cash", "Creditcard", "Money order"}[r.intn(3)]))
		item.AppendChild(payment)
		if c.FillerBytes > 0 {
			desc := xdm.NewElement("description")
			desc.AppendChild(xdm.NewText(r.filler(c.FillerBytes)))
			item.AppendChild(desc)
		}
		qty := xdm.NewElement("quantity")
		qty.AppendChild(xdm.NewText(fmt.Sprintf("%d", 1+r.intn(5))))
		item.AppendChild(qty)
		regionEls[regionNames[r.intn(len(regionNames))]].AppendChild(item)
	}
	site.AppendChild(regions)
	d.Root.AppendChild(site)
	d.Freeze()
	return d
}

// AuctionsDocument generates the site/open_auctions document
// (xmk.auctions.xml); seller/@person references the people document ids.
func AuctionsDocument(c Config, uri string) *xdm.Document {
	r := newRNG(c.Seed + 1)
	d := xdm.NewDocument(uri)
	site := xdm.NewElement("site")
	auctions := xdm.NewElement("open_auctions")
	site.AppendChild(auctions)
	persons := c.Persons
	if persons < 1 {
		persons = 1
	}
	for i := 0; i < c.Auctions; i++ {
		a := xdm.NewElement("open_auction")
		a.SetAttr("id", fmt.Sprintf("open_auction%d", i))
		seller := xdm.NewElement("seller")
		seller.SetAttr("person", fmt.Sprintf("person%d", r.intn(persons)))
		a.AppendChild(seller)
		initial := xdm.NewElement("initial")
		initial.AppendChild(xdm.NewText(fmt.Sprintf("%d.%02d", 1+r.intn(200), r.intn(100))))
		a.AppendChild(initial)
		// bidder history and the auction description carry the bulk of an
		// open_auction entry; the annotation the query returns stays small
		// (author plus a short happiness note), as in real XMark data.
		for b := 0; b < 2; b++ {
			bidder := xdm.NewElement("bidder")
			date := xdm.NewElement("date")
			date.AppendChild(xdm.NewText(fmt.Sprintf("%02d/%02d/2008", 1+r.intn(12), 1+r.intn(28))))
			bidder.AppendChild(date)
			personref := xdm.NewElement("personref")
			personref.SetAttr("person", fmt.Sprintf("person%d", r.intn(persons)))
			bidder.AppendChild(personref)
			incr := xdm.NewElement("increase")
			incr.AppendChild(xdm.NewText(fmt.Sprintf("%d.00", 1+r.intn(50))))
			bidder.AppendChild(incr)
			a.AppendChild(bidder)
		}
		if c.FillerBytes > 0 {
			desc := xdm.NewElement("description")
			desc.AppendChild(xdm.NewText(r.filler(c.FillerBytes)))
			a.AppendChild(desc)
		}
		ann := xdm.NewElement("annotation")
		author := xdm.NewElement("author")
		author.SetAttr("person", fmt.Sprintf("person%d", r.intn(persons)))
		ann.AppendChild(author)
		happy := xdm.NewElement("happiness")
		happy.AppendChild(xdm.NewText(fmt.Sprintf("%d", 1+r.intn(10))))
		ann.AppendChild(happy)
		a.AppendChild(ann)
		qty := xdm.NewElement("quantity")
		qty.AppendChild(xdm.NewText(fmt.Sprintf("%d", 1+r.intn(10))))
		a.AppendChild(qty)
		auctions.AppendChild(a)
	}
	d.Root.AppendChild(site)
	d.Freeze()
	return d
}

// BenchmarkQuery is the §VII evaluation query over two peers: select the
// persons younger than 40 at peer1, join with open auctions at peer2 on
// seller/@person, and return the annotation authors. (The paper's text has
// `$c/child::seller` — an obvious typo for `$e/...`, since $c is the whole
// auctions document; we follow the intended Q2 template.)
func BenchmarkQuery(peer1, peer2 string) string {
	return fmt.Sprintf(`
(let $t := (let $s := doc("xrpc://%s/xmk.xml")/child::site/child::people/child::person
            return for $x in $s return
                   if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://%s/xmk.auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author`, peer1, peer2)
}

// ProjectionQuery is the §VII runtime-projection precision query: persons
// with age above 45 (a runtime selection the compile-time projection cannot
// express).
func ProjectionQuery(peerName string) string {
	return fmt.Sprintf(`
let $s := doc("xrpc://%s/xmk.xml")/child::site/child::people/child::person
return for $x in $s return
       if ($x/descendant::age > 45) then $x else ()`, peerName)
}

// PeopleShardDocument generates the shard'th of `shards` horizontal
// partitions of a people document: person ids are distributed round-robin
// (person i lives on shard i%shards), so shard sizes stay balanced and ids
// remain globally unique across the federation. The union of all shards
// carries exactly the persons of cfg — the sharded-XMark scatter-gather
// scenario queries every shard in place and gathers per-peer results.
func PeopleShardDocument(c Config, shard, shards int, uri string) *xdm.Document {
	if shards < 1 {
		shards = 1
	}
	d := xdm.NewDocument(uri)
	site := xdm.NewElement("site")
	people := xdm.NewElement("people")
	site.AppendChild(people)
	for i := shard % shards; i < c.Persons; i += shards {
		// Seed per person id, not per shard: person i carries identical
		// content under every shard layout, so query results do not depend
		// on how the federation is partitioned.
		appendPerson(people, newRNG(c.Seed+uint64(i)*2654435761), c, i)
	}
	d.Root.AppendChild(site)
	d.Freeze()
	return d
}

// LogicalPeopleURI is the URI under which a sharded people federation
// registers as one logical document. Queries name it in fn:doc() and the
// shard-aware planner rewrites them into the scatter form (or the engine
// materializes the union of shards when the rewrite must fall back). The
// scheme is deliberately not xrpc://: a logical document has no single
// owning host for the ordinary decomposition to target.
const LogicalPeopleURI = "shard://xmark/people"

// PeopleShardPath is the peer-local document path every shard of the people
// federation is stored under.
const PeopleShardPath = "xmk.xml"

// PeopleRecordPath is the rooted path to the partitioned record sequence of
// the people document.
const PeopleRecordPath = "child::site/child::people/child::person"

// PeopleShardMap returns the shard map registering the sharded people
// federation (one PeopleShardDocument per peer, all stored as xmk.xml) as
// the logical document LogicalPeopleURI.
func PeopleShardMap(peers []string) core.ShardMap {
	return core.ShardMap{
		Logical:    LogicalPeopleURI,
		Peers:      append([]string(nil), peers...),
		ShardPath:  PeopleShardPath,
		RecordPath: PeopleRecordPath,
	}
}

// LogicalScatterQuery states the ScatterQuery workload against the logical
// document instead of hand-written `execute at` loops: the shard-aware
// planner must synthesize the same one-Bulk-RPC-per-peer scatter plan from
// it.
func LogicalScatterQuery() string {
	return fmt.Sprintf(`for $x in doc(%q)/child::site/child::people/child::person
return if ($x/descendant::age < 40) then $x/child::name else ()`, LogicalPeopleURI)
}

// ScatterQuery returns the multi-peer scatter-gather query of the sharded
// scenario: every peer evaluates the person filter over its local shard
// (`doc("xmk.xml")` resolves peer-locally), and the originator's
// variable-target loop gathers the per-peer results in peer order — the
// `for $p in $peers return execute at $p {...}` shape that dispatches one
// concurrent Bulk RPC per peer.
func ScatterQuery(peers []string) string {
	quoted := make([]string, len(peers))
	for i, p := range peers {
		// Escape for a double-quoted xq string literal: quotes double, and a
		// bare ampersand would be read as an entity reference.
		p = strings.ReplaceAll(p, "&", "&amp;")
		quoted[i] = `"` + strings.ReplaceAll(p, `"`, `""`) + `"`
	}
	return fmt.Sprintf(`
declare function young() as item()* {
  for $x in doc("xmk.xml")/child::site/child::people/child::person
  return if ($x/descendant::age < 40) then $x/child::name else ()
};
for $p in (%s) return execute at {$p} { young() }`, strings.Join(quoted, ", "))
}
