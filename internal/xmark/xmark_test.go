package xmark

import (
	"strings"
	"testing"

	"distxq/internal/xdm"
)

func TestForSizeHitsTarget(t *testing.T) {
	for _, target := range []int64{1 << 16, 1 << 18, 1 << 20} {
		cfg := ForSize(target)
		people := PeopleDocument(cfg, "p")
		auctions := AuctionsDocument(cfg, "a")
		got := xdm.SerializedSize(people.Root) + xdm.SerializedSize(auctions.Root)
		ratio := float64(got) / float64(target)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("ForSize(%d) produced %d bytes (ratio %.2f)", target, got, ratio)
		}
	}
}

func TestPeopleDocumentStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Persons, cfg.Items = 10, 5
	d := PeopleDocument(cfg, "p")
	site := d.DocElem()
	if site.Name != "site" {
		t.Fatalf("root = %s", site.Name)
	}
	var persons, ages, items int
	site.WalkDescendants(func(n *xdm.Node) bool {
		switch n.Name {
		case "person":
			persons++
			if n.Attr("id") == nil {
				t.Error("person without @id")
			}
		case "age":
			ages++
		case "item":
			items++
		}
		return true
	})
	if persons != 10 || ages != 10 || items != 5 {
		t.Errorf("persons=%d ages=%d items=%d", persons, ages, items)
	}
}

func TestAgesWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Persons, cfg.Items = 50, 0
	cfg.MinAge, cfg.MaxAge = 20, 30
	d := PeopleDocument(cfg, "p")
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Name == "age" {
			v := n.StringValue()
			if v < "20" || v >= "30" {
				t.Errorf("age %s out of [20,30)", v)
			}
		}
		return true
	})
}

func TestSellerRefsResolve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.Items = 8, 20, 0
	people := PeopleDocument(cfg, "p")
	auctions := AuctionsDocument(cfg, "a")
	ids := map[string]bool{}
	people.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Name == "person" {
			ids[n.Attr("id").Text] = true
		}
		return true
	})
	auctions.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Name == "seller" {
			if !ids[n.Attr("person").Text] {
				t.Errorf("seller ref %q does not resolve", n.Attr("person").Text)
			}
		}
		return true
	})
}

func TestDocumentsReparse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.Items = 5, 5, 5
	for name, d := range map[string]*xdm.Document{
		"people":   PeopleDocument(cfg, "p"),
		"auctions": AuctionsDocument(cfg, "a"),
	} {
		s := xdm.SerializeString(d.Root)
		if _, err := xdm.ParseString(s, name); err != nil {
			t.Errorf("%s does not reparse: %v", name, err)
		}
	}
}

func TestBenchmarkQueryMentionsPeers(t *testing.T) {
	q := BenchmarkQuery("h1", "h2")
	if !strings.Contains(q, "xrpc://h1/xmk.xml") ||
		!strings.Contains(q, "xrpc://h2/xmk.auctions.xml") {
		t.Errorf("query lacks peer URIs:\n%s", q)
	}
	q2 := ProjectionQuery("h3")
	if !strings.Contains(q2, "xrpc://h3/xmk.xml") {
		t.Errorf("projection query lacks URI:\n%s", q2)
	}
}

func TestFillerApproximatesSize(t *testing.T) {
	r := newRNG(1)
	for _, n := range []int{10, 100, 1000} {
		f := r.filler(n)
		if len(f) < n || len(f) > n+20 {
			t.Errorf("filler(%d) = %d bytes", n, len(f))
		}
	}
	if r.filler(0) != "" {
		t.Error("filler(0) should be empty")
	}
}
