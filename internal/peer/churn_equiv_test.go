package peer

// churn_equiv_test.go is the randomized churn-equivalence harness for the
// elastic topology: seeded schedules of kill/revive/reshard/replica-delta
// operations interleave with generated queries on a live-topology session,
// and every query must serialize byte-identically to static local execution
// over the unsharded reference document — across every epoch transition, for
// 2/4/8-shard layouts, gather-whole and streamed dispatch, tree-walking and
// compiled execution. Correctness of the scatter rewrite under a frozen map
// is proven by the core equivalence harness; this one proves the topology
// can move underneath the session without the answers moving with it.

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xrpc"
)

// buildUnionReference constructs the unsharded logical document: one
// site/people skeleton with every shard's person records copied in
// shard-major order — the oracle every churned execution must match.
func buildUnionReference(t *testing.T, shards []*xdm.Document) *xdm.Document {
	t.Helper()
	d := xdm.NewDocument(xmark.LogicalPeopleURI)
	site := xdm.NewElement("site")
	people := xdm.NewElement("people")
	site.AppendChild(people)
	for _, sd := range shards {
		srcSite := sd.Root.Children[0]
		var srcPeople *xdm.Node
		for _, ch := range srcSite.Children {
			if ch.Kind == xdm.ElementNode && ch.Name == "people" {
				srcPeople = ch
			}
		}
		if srcPeople == nil {
			t.Fatal("shard lacks site/people")
		}
		for _, rec := range srcPeople.Children {
			if rec.Kind == xdm.ElementNode && rec.Name == "person" {
				people.AppendChild(rec.Copy())
			}
		}
	}
	d.Root.AppendChild(site)
	d.Freeze()
	return d
}

// churnWorld is one federation layout under churn: every shard i is held by
// three interchangeable hosts (s<i>a, s<i>b, s<i>c — byte-identical copies),
// of which the live shard map names a primary and any subset as replicas.
// The schedule machinery keeps one invariant: every shard always retains at
// least one live mapped copy, so every query has a correct answer to find.
type churnWorld struct {
	t      *testing.T
	n      *Network
	local  *Peer
	shards int
	hosts  [][]string
	refEng *eval.Engine
	dead   map[string]bool
	moves  int // epoch transitions applied in the current schedule
}

func newChurnWorld(t *testing.T, shards int) *churnWorld {
	t.Helper()
	cfg := xmark.Config{Seed: 23, Persons: 18, FillerBytes: 0, MinAge: 18, MaxAge: 50}
	w := &churnWorld{t: t, n: NewNetwork(), shards: shards, dead: map[string]bool{}}
	refShards := make([]*xdm.Document, shards)
	for i := 0; i < shards; i++ {
		var hs []string
		for _, suffix := range []string{"a", "b", "c"} {
			name := fmt.Sprintf("s%d%s", i, suffix)
			d := xmark.PeopleShardDocument(cfg, i, shards, "xrpc://"+name+"/"+xmark.PeopleShardPath)
			w.n.AddPeer(name).AddDoc(xmark.PeopleShardPath, d)
			if suffix == "a" {
				refShards[i] = d
			}
			hs = append(hs, name)
		}
		w.hosts = append(w.hosts, hs)
	}
	w.local = w.n.AddPeer("local")
	ref := buildUnionReference(t, refShards)
	w.refEng = eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
		if uri != xmark.LogicalPeopleURI {
			return nil, fmt.Errorf("reference engine: unexpected doc(%q)", uri)
		}
		return ref, nil
	}))
	return w
}

// reset revives every host and installs the canonical starting layout
// (primary s<i>a, replica s<i>b, standby s<i>c) as a fresh epoch.
func (w *churnWorld) reset() {
	w.t.Helper()
	for name := range w.dead {
		w.n.RevivePeer(name)
		delete(w.dead, name)
	}
	var primaries []string
	var replicas [][]string
	for i := 0; i < w.shards; i++ {
		primaries = append(primaries, w.hosts[i][0])
		replicas = append(replicas, []string{w.hosts[i][1]})
	}
	m := xmark.PeopleShardMap(primaries)
	m.Replicas = replicas
	if _, err := w.n.UpdateShards(m); err != nil {
		w.t.Fatal(err)
	}
	w.moves = 0
}

func (w *churnWorld) topo() core.ShardMap {
	w.t.Helper()
	maps, _ := w.n.ShardTopology()
	if len(maps) != 1 {
		w.t.Fatalf("topology holds %d maps, want 1", len(maps))
	}
	return maps[0]
}

func replicasOf(m core.ShardMap, i int) []string {
	if i < len(m.Replicas) {
		return m.Replicas[i]
	}
	return nil
}

// liveCopies counts shard i's mapped copies that are alive, pretending
// `excluding` were dead — the invariant check before a kill/drop/leave.
func (w *churnWorld) liveCopies(m core.ShardMap, i int, excluding string) int {
	count := 0
	for _, c := range append([]string{m.Peers[i]}, replicasOf(m, i)...) {
		if c != excluding && !w.dead[c] {
			count++
		}
	}
	return count
}

// standby returns a host of shard i the current map does not name, "" when
// all three are mapped.
func (w *churnWorld) standby(m core.ShardMap, i int) string {
	for _, h := range w.hosts[i] {
		if h != m.Peers[i] && !slices.Contains(replicasOf(m, i), h) {
			return h
		}
	}
	return ""
}

func (w *churnWorld) reshard(d core.ShardDelta) {
	w.t.Helper()
	if _, err := w.n.Reshard(xmark.LogicalPeopleURI, d); err != nil {
		w.t.Fatalf("reshard %+v: %v", d, err)
	}
	w.moves++
}

// randomOp applies one random topology operation whose preconditions hold,
// skipping draws that would strand a shard without a live copy.
func (w *churnWorld) randomOp(rng *rand.Rand) {
	for attempt := 0; attempt < 12; attempt++ {
		m := w.topo()
		i := rng.Intn(w.shards)
		switch rng.Intn(7) {
		case 0: // kill a host (its shard keeps a live mapped copy)
			h := w.hosts[i][rng.Intn(3)]
			if w.dead[h] || w.liveCopies(m, i, h) == 0 {
				continue
			}
			w.n.KillPeer(h)
			w.dead[h] = true
		case 1: // revive a dead host
			var downs []string
			for _, row := range w.hosts {
				for _, h := range row {
					if w.dead[h] {
						downs = append(downs, h)
					}
				}
			}
			if len(downs) == 0 {
				continue
			}
			h := downs[rng.Intn(len(downs))]
			w.n.RevivePeer(h)
			delete(w.dead, h)
		case 2: // move the shard onto one of its replicas
			rs := replicasOf(m, i)
			if len(rs) == 0 {
				continue
			}
			w.reshard(core.ShardDelta{Move: map[int]string{i: rs[rng.Intn(len(rs))]}})
		case 3: // join the standby and move the shard onto it
			s := w.standby(m, i)
			if s == "" {
				continue
			}
			w.reshard(core.ShardDelta{Join: []string{s}, Move: map[int]string{i: s}})
		case 4: // add the standby as a replica
			s := w.standby(m, i)
			if s == "" {
				continue
			}
			w.reshard(core.ShardDelta{AddReplicas: map[int][]string{i: {s}}})
		case 5: // drop a replica (shard keeps a live copy without it)
			rs := replicasOf(m, i)
			if len(rs) == 0 {
				continue
			}
			r := rs[rng.Intn(len(rs))]
			if w.liveCopies(m, i, r) == 0 {
				continue
			}
			w.reshard(core.ShardDelta{DropReplicas: map[int][]string{i: {r}}})
		default: // a mapped host leaves the layout entirely
			rs := replicasOf(m, i)
			if len(rs) == 0 {
				continue
			}
			h := m.Peers[i]
			if rng.Intn(2) == 0 {
				h = rs[rng.Intn(len(rs))]
			}
			if w.liveCopies(m, i, h) == 0 {
				continue
			}
			w.reshard(core.ShardDelta{Leave: []string{h}})
		}
		return
	}
}

// forceReshard guarantees the schedule's epoch transition when the random
// draws produced none.
func (w *churnWorld) forceReshard() {
	m := w.topo()
	for i := 0; i < w.shards; i++ {
		if rs := replicasOf(m, i); len(rs) > 0 {
			w.reshard(core.ShardDelta{Move: map[int]string{i: rs[0]}})
			return
		}
	}
	s := w.standby(m, 0)
	w.reshard(core.ShardDelta{Join: []string{s}, Move: map[int]string{0: s}})
}

// churnQuery generates one query over the logical people document: mostly
// scatter-safe shapes the planner rewrites into per-shard lanes, plus a
// positional one that exercises the materialized-union fallback — both paths
// must survive churn.
const churnQueryPrefix = `doc("` + xmark.LogicalPeopleURI + `")/child::site/child::people/child::person`

func churnQuery(rng *rand.Rand) string {
	const prefix = churnQueryPrefix
	age := 18 + rng.Intn(35)
	switch rng.Intn(6) {
	case 0:
		return prefix + `/child::name`
	case 1:
		return fmt.Sprintf(`%s[descendant::age < %d]/child::name`, prefix, age)
	case 2:
		return fmt.Sprintf(
			`for $x in %s return if ($x/descendant::age < %d) then $x/child::name else ()`, prefix, age)
	case 3:
		return fmt.Sprintf(`count(%s[child::profile/child::age > %d])`, prefix, age)
	case 4:
		return fmt.Sprintf(
			`for $x in %s return element rec { $x/child::name, $x/descendant::age }`, prefix)
	default:
		return fmt.Sprintf(`%s[%d]/child::name`, prefix, 1+rng.Intn(6))
	}
}

// runSchedule drives one seeded schedule: a live-topology session issues
// generated queries while topology operations land between them, at least
// one of them an epoch transition; every result must match the static local
// reference byte for byte.
func (w *churnWorld) runSchedule(rng *rand.Rand, schedule int, compiled bool) {
	w.t.Helper()
	w.reset()
	startEpoch := w.n.TopologyEpoch()
	streamed := schedule%2 == 1
	pol := &xrpc.RetryPolicy{RouteLive: rng.Intn(2) == 0}
	sess := w.n.NewSession(w.local, core.ByFragment).
		UseLiveShards().UseRetry(pol).UseCompile(compiled)
	if pol.RouteLive {
		sess.UseHealth(xrpc.NewHealthTracker())
	}
	sess.Streamed = streamed
	const queries = 3
	for qi := 0; qi < queries; qi++ {
		if qi > 0 {
			for o, ops := 0, 1+rng.Intn(2); o < ops; o++ {
				w.randomOp(rng)
			}
			if qi == queries-1 && w.moves == 0 {
				w.forceReshard()
			}
		}
		src := churnQuery(rng)
		localRes, err := w.refEng.QueryString(src)
		if err != nil {
			w.t.Fatalf("schedule %d query %d local eval: %v\n%s", schedule, qi, err, src)
		}
		res, _, err := sess.Query(src)
		if err != nil {
			w.t.Fatalf("schedule %d (shards=%d compiled=%v streamed=%v routeLive=%v) query %d: %v\n%s\ntopo: %+v\ndead: %v",
				schedule, w.shards, compiled, streamed, pol.RouteLive, qi, err, src, w.topo(), w.dead)
		}
		if got, want := serializeSeq(w.t, res), serializeSeq(w.t, localRes); got != want {
			w.t.Fatalf("schedule %d (shards=%d compiled=%v streamed=%v routeLive=%v) query %d diverged\nquery: %s\nlocal: %q\nchurn: %q\ntopo: %+v\ndead: %v",
				schedule, w.shards, compiled, streamed, pol.RouteLive, qi, src, want, got, w.topo(), w.dead)
		}
	}
	if w.moves == 0 || w.n.TopologyEpoch() <= startEpoch {
		w.t.Fatalf("schedule %d applied no epoch transition", schedule)
	}
}

// TestChurnEquivalence is the headline harness: 35 seeded schedules per
// layout and execution mode (210 total) on 2/4/8-shard federations, each
// schedule with at least one epoch transition mid-session, alternating
// gather-whole/streamed dispatch per schedule and covering tree-walking and
// compiled execution as separate worlds (the compile switch is per-engine
// state, fixed before any traffic), every query byte-identical to static
// local evaluation.
func TestChurnEquivalence(t *testing.T) {
	const schedules = 35
	for _, shards := range []int{2, 4, 8} {
		for _, compiled := range []bool{false, true} {
			shards, compiled := shards, compiled
			t.Run(fmt.Sprintf("%dshards/compiled=%v", shards, compiled), func(t *testing.T) {
				w := newChurnWorld(t, shards)
				w.n.SetCompile(compiled)
				base := int64(1000 * shards)
				if compiled {
					base += 500
				}
				for s := 0; s < schedules; s++ {
					w.runSchedule(rand.New(rand.NewSource(base+int64(s))), s, compiled)
				}
			})
		}
	}
}
