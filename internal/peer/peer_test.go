package peer

import (
	"strings"
	"testing"

	"distxq/internal/core"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

// setupXMark builds a three-peer federation: peer1 and peer2 host the XMark
// documents, local originates queries (the paper's testbed shape).
func setupXMark(t testing.TB, cfg xmark.Config) (*Network, *Peer) {
	t.Helper()
	n := NewNetwork()
	p1 := n.AddPeer("peer1")
	p2 := n.AddPeer("peer2")
	local := n.AddPeer("local")
	p1.AddDoc("xmk.xml", xmark.PeopleDocument(cfg, "xrpc://peer1/xmk.xml"))
	p2.AddDoc("xmk.auctions.xml", xmark.AuctionsDocument(cfg, "xrpc://peer2/xmk.auctions.xml"))
	return n, local
}

func serialize(s xdm.Sequence) string {
	var parts []string
	for _, it := range s {
		switch v := it.(type) {
		case *xdm.Node:
			parts = append(parts, xdm.SerializeString(v))
		case xdm.Atomic:
			parts = append(parts, v.ItemString())
		}
	}
	return strings.Join(parts, " ")
}

func TestAllStrategiesAgreeOnBenchmarkQuery(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.FillerBytes = 40, 80, 64
	n, local := setupXMark(t, cfg)
	src := xmark.BenchmarkQuery("peer1", "peer2")

	var baseline xdm.Sequence
	results := map[core.Strategy]*Report{}
	for _, strat := range []core.Strategy{core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection} {
		sess := n.NewSession(local, strat)
		res, rep, err := sess.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if baseline == nil {
			baseline = res
			if len(res) == 0 {
				t.Fatal("benchmark query returned empty result; data too small?")
			}
		} else if !xdm.DeepEqualSeq(baseline, res) {
			t.Errorf("%s: result differs from data-shipping baseline\n got: %.300s\nwant: %.300s",
				strat, serialize(res), serialize(baseline))
		}
		results[strat] = rep
	}

	// Figure 7 shape: data-shipping > by-value > by-fragment > by-projection.
	ds, bv := results[core.DataShipping].TotalBytes(), results[core.ByValue].TotalBytes()
	bf, bp := results[core.ByFragment].TotalBytes(), results[core.ByProjection].TotalBytes()
	if !(ds > bv && bv > bf && bf > bp) {
		t.Errorf("bandwidth ordering violated: ds=%d bv=%d bf=%d bp=%d", ds, bv, bf, bp)
	}
	// Data shipping moves both documents and no messages.
	if results[core.DataShipping].MsgBytes != 0 || results[core.DataShipping].Requests != 0 {
		t.Error("data shipping must not send XRPC messages")
	}
	// By-value still ships the second document whole (only peer1 pushes).
	p2, _ := n.Peer("peer2")
	if results[core.ByValue].DocBytes < p2.DocSize("xmk.auctions.xml") {
		t.Errorf("by-value should data-ship the auctions doc: %d < %d",
			results[core.ByValue].DocBytes, p2.DocSize("xmk.auctions.xml"))
	}
	// Fragment/projection ship no whole documents at all (semijoin).
	if results[core.ByFragment].DocBytes != 0 || results[core.ByProjection].DocBytes != 0 {
		t.Errorf("fragment/projection must not data-ship documents: %d / %d",
			results[core.ByFragment].DocBytes, results[core.ByProjection].DocBytes)
	}
}

func TestStrategiesAgreeOnQ2(t *testing.T) {
	n := NewNetwork()
	a := n.AddPeer("A")
	b := n.AddPeer("B")
	local := n.AddPeer("local")
	if err := a.LoadXML("students.xml", `<people>`+
		`<person><name>tutor1</name><tutor>none</tutor><id>s1</id></person>`+
		`<person><name>stu2</name><tutor>tutor1</tutor><id>s2</id></person>`+
		`<person><name>stu3</name><tutor>tutor1</tutor><id>s3</id></person>`+
		`</people>`); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadXML("course42.xml", `<enroll>`+
		`<exam id="s1"><grade>A</grade></exam>`+
		`<exam id="s2"><grade>B</grade></exam>`+
		`<exam id="s3"><grade>C</grade></exam>`+
		`</enroll>`); err != nil {
		t.Fatal(err)
	}
	src := `
	(let $t := (let $s := doc("xrpc://A/students.xml")/child::people/child::person
	            return for $x in $s return
	                   if ($x/child::tutor = $s/child::name) then $x else ())
	 return for $e in (let $c := doc("xrpc://B/course42.xml")
	                   return $c/child::enroll/child::exam)
	        return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`
	// course42.xml root is enroll, so the path needs adjusting: $c/child::enroll
	// expects a child of the document node named enroll — which is the root.
	want := "<grade>B</grade> <grade>C</grade>"
	for _, strat := range []core.Strategy{core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection} {
		sess := n.NewSession(local, strat)
		res, _, err := sess.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if got := serialize(res); got != want {
			t.Errorf("%s: result = %s, want %s", strat, got, want)
		}
	}
}

func TestProjectionShipsLessThanFragment(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.FillerBytes = 60, 120, 512
	n, local := setupXMark(t, cfg)
	src := xmark.BenchmarkQuery("peer1", "peer2")
	repOf := func(strat core.Strategy) *Report {
		sess := n.NewSession(local, strat)
		_, rep, err := sess.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		return rep
	}
	bf := repOf(core.ByFragment)
	bp := repOf(core.ByProjection)
	if bp.MsgBytes >= bf.MsgBytes {
		t.Errorf("projection messages (%d B) should be smaller than fragment (%d B)",
			bp.MsgBytes, bf.MsgBytes)
	}
	// The reduction should be substantial: the filler never ships.
	if float64(bp.MsgBytes) > 0.6*float64(bf.MsgBytes) {
		t.Errorf("projection reduction too weak: %d vs %d bytes", bp.MsgBytes, bf.MsgBytes)
	}
}

func TestQueryAcrossThreePeers(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"x", "y", "z"} {
		p := n.AddPeer(name)
		if err := p.LoadXML("d.xml", `<vals><v>`+name+`</v></vals>`); err != nil {
			t.Fatal(err)
		}
	}
	local := n.AddPeer("local")
	src := `(doc("xrpc://x/d.xml")/child::vals/child::v/child::text(),
	         doc("xrpc://y/d.xml")/child::vals/child::v/child::text(),
	         doc("xrpc://z/d.xml")/child::vals/child::v/child::text())`
	sess := n.NewSession(local, core.ByFragment)
	res, rep, err := sess.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "x y z" {
		t.Errorf("result = %s", serialize(res))
	}
	if rep.Requests != 3 {
		t.Errorf("expected 3 message exchanges, got %d", rep.Requests)
	}
}

func TestSessionErrors(t *testing.T) {
	n := NewNetwork()
	local := n.AddPeer("local")
	sess := n.NewSession(local, core.ByFragment)
	if _, _, err := sess.Query(`doc("xrpc://ghost/d.xml")/child::a`); err == nil {
		t.Error("unknown peer should error")
	}
	if _, _, err := sess.Query(`this is not ( valid`); err == nil {
		t.Error("syntax error should surface")
	}
	if _, _, err := sess.Query(`doc("nope.xml")`); err == nil {
		t.Error("missing local doc should error")
	}
}

func TestReportTotals(t *testing.T) {
	r := &Report{DocBytes: 100, MsgBytes: 50, ShredNS: 1, LocalExecNS: 2,
		SerdeNS: 3, RemoteExecNS: 4, NetworkNS: 5}
	if r.TotalBytes() != 150 {
		t.Errorf("TotalBytes = %d", r.TotalBytes())
	}
	if r.TotalNS() != 15 {
		t.Errorf("TotalNS = %d", r.TotalNS())
	}
}

func TestXMarkDeterminism(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Auctions = 10, 10
	d1 := xmark.PeopleDocument(cfg, "a")
	d2 := xmark.PeopleDocument(cfg, "b")
	if xdm.SerializeString(d1.Root) != xdm.SerializeString(d2.Root) {
		t.Error("generator must be deterministic per config")
	}
	other := cfg
	other.Seed = 7
	d3 := xmark.PeopleDocument(other, "c")
	if xdm.SerializeString(d1.Root) == xdm.SerializeString(d3.Root) {
		t.Error("different seeds should differ")
	}
}

func TestXMarkShape(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Auctions = 25, 30
	people := xmark.PeopleDocument(cfg, "p")
	auctions := xmark.AuctionsDocument(cfg, "a")
	n := NewNetwork()
	p := n.AddPeer("p")
	p.AddDoc("people", people)
	p.AddDoc("auctions", auctions)
	sess := n.NewSession(p, core.DataShipping)
	check := func(q, want string) {
		t.Helper()
		res, _, err := sess.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got := serialize(res); got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
	check(`count(doc("people")/child::site/child::people/child::person)`, "25")
	check(`count(doc("auctions")/child::site/child::open_auctions/child::open_auction)`, "30")
	check(`count(doc("people")//person[not(descendant::age)])`, "0")
	check(`count(doc("auctions")//open_auction[not(child::seller/attribute::person)])`, "0")
	check(`count(doc("auctions")//annotation/author)`, "30")
}
