package peer

import (
	"strings"
	"testing"

	"distxq/internal/core"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

func serializeSeq(t *testing.T, s xdm.Sequence) string {
	t.Helper()
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch v := it.(type) {
		case *xdm.Node:
			sb.WriteString(xdm.SerializeString(v))
		case xdm.Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	return sb.String()
}

// TestStreamedScatterByteIdentical is the streaming acceptance harness:
// over the sharded XMark federation, the streamed dispatch must produce
// byte-identical serialized results to gather-whole — for the hand-written
// scatter query and for the planner-synthesized plan over the logical
// document, across peer counts and strategies.
func TestStreamedScatterByteIdentical(t *testing.T) {
	cfg := xmark.Config{Seed: 23, Persons: 120, FillerBytes: 40, MinAge: 18, MaxAge: 60}
	for _, n := range []int{2, 4, 8} {
		for _, strat := range []core.Strategy{core.ByValue, core.ByFragment, core.ByProjection} {
			net, local, names := newShardedPeople(t, cfg, n)
			query := xmark.ScatterQuery(names)

			gather := net.NewSession(local, strat)
			gRes, gRep, err := gather.Query(query)
			if err != nil {
				t.Fatalf("%d peers %v gather: %v", n, strat, err)
			}
			streamed := net.NewSession(local, strat)
			streamed.Streamed = true
			sRes, sRep, err := streamed.Query(query)
			if err != nil {
				t.Fatalf("%d peers %v streamed: %v", n, strat, err)
			}
			if g, s := serializeSeq(t, gRes), serializeSeq(t, sRes); g != s {
				t.Fatalf("%d peers %v: streamed result differs\n gather  %q\n streamed %q", n, strat, g, s)
			}
			if sRep.StreamedChunks == 0 {
				t.Fatalf("%d peers %v: streamed run received no chunk frames", n, strat)
			}
			if gRep.StreamedChunks != 0 {
				t.Fatalf("%d peers %v: gather run reports %d chunks", n, strat, gRep.StreamedChunks)
			}
			if sRep.Requests != gRep.Requests || sRep.Waves != gRep.Waves {
				t.Fatalf("%d peers %v: dispatch shape differs: streamed %d req/%d waves, gather %d/%d",
					n, strat, sRep.Requests, sRep.Waves, gRep.Requests, gRep.Waves)
			}
			// Model invariants on the streamed run: a first result is
			// available before the pipeline completes, and the pipeline
			// never exceeds the gather-whole counterfactual of the same
			// measured lanes.
			if sRep.FirstResultNS <= 0 || sRep.FirstResultNS > sRep.PipelineNS {
				t.Fatalf("%d peers %v: FirstResultNS %d outside (0, PipelineNS %d]",
					n, strat, sRep.FirstResultNS, sRep.PipelineNS)
			}
			if sRep.PipelineNS >= sRep.GatherNS {
				t.Fatalf("%d peers %v: pipeline %dns not below gather-whole %dns",
					n, strat, sRep.PipelineNS, sRep.GatherNS)
			}
			if sRep.OverlapSavedNS != sRep.GatherNS-sRep.PipelineNS {
				t.Fatalf("%d peers %v: OverlapSavedNS inconsistent", n, strat)
			}
		}
	}
}

// TestStreamedLogicalPlannerByteIdentical: the shard-aware planner's
// synthesized scatter plan streams too, byte-identical to its gather-whole
// execution.
func TestStreamedLogicalPlannerByteIdentical(t *testing.T) {
	cfg := xmark.Config{Seed: 29, Persons: 80, FillerBytes: 20, MinAge: 18, MaxAge: 60}
	for _, n := range []int{2, 4} {
		net, local, names := newShardedPeople(t, cfg, n)
		shardMap := xmark.PeopleShardMap(names)

		gather := net.NewSession(local, core.ByFragment).UseShards(shardMap)
		gRes, _, err := gather.Query(xmark.LogicalScatterQuery())
		if err != nil {
			t.Fatalf("%d peers gather: %v", n, err)
		}
		streamed := net.NewSession(local, core.ByFragment).UseShards(shardMap)
		streamed.Streamed = true
		sRes, sRep, err := streamed.Query(xmark.LogicalScatterQuery())
		if err != nil {
			t.Fatalf("%d peers streamed: %v", n, err)
		}
		if len(sRep.Shards) == 0 || !sRep.Shards[0].Scattered {
			t.Fatalf("%d peers: planner did not scatter: %+v", n, sRep.Shards)
		}
		if sRep.StreamedChunks == 0 {
			t.Fatalf("%d peers: planner-synthesized scatter did not stream", n)
		}
		if g, s := serializeSeq(t, gRes), serializeSeq(t, sRes); g != s {
			t.Fatalf("%d peers: streamed planner result differs\n gather  %q\n streamed %q", n, g, s)
		}
	}
}

// TestStreamedSequentialScatterPrecedence: SequentialScatter wins over
// Streamed — the serial baseline must stay serial.
func TestStreamedSequentialScatterPrecedence(t *testing.T) {
	cfg := xmark.Config{Seed: 31, Persons: 24, FillerBytes: 0, MinAge: 18, MaxAge: 60}
	net, local, names := newShardedPeople(t, cfg, 4)
	sess := net.NewSession(local, core.ByFragment)
	sess.SequentialScatter = true
	sess.Streamed = true
	_, rep, err := sess.Query(xmark.ScatterQuery(names))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism != 1 || rep.Waves != 4 {
		t.Fatalf("parallelism %d waves %d, want serial one-lane waves", rep.Parallelism, rep.Waves)
	}
	if rep.StreamedChunks != 0 {
		t.Fatalf("sequential baseline streamed %d chunks", rep.StreamedChunks)
	}
}
