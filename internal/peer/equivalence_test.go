package peer

import (
	"fmt"
	"testing"

	"distxq/internal/core"
	"distxq/internal/xdm"
)

// TestDecompositionEquivalence is the paper's central correctness claim,
// checked wholesale: for any query Q, the decomposed Q′ under every strategy
// satisfies Q(D) = Q′(D) by XQuery deep-equal semantics. Data shipping (no
// decomposition, local execution) is the reference.
func TestDecompositionEquivalence(t *testing.T) {
	n := NewNetwork()
	a := n.AddPeer("A")
	b := n.AddPeer("B")
	local := n.AddPeer("local")
	if err := a.LoadXML("store.xml", `<store>
		<book id="b1" cat="db"><title>XML Processing</title><price>30</price>
			<authors><author>Zhang</author><author>Tang</author></authors></book>
		<book id="b2" cat="db"><title>Query Shipping</title><price>45</price>
			<authors><author>Boncz</author></authors></book>
		<book id="b3" cat="os"><title>Kernels</title><price>25</price>
			<authors><author>Tanenbaum</author></authors></book>
	</store>`); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadXML("sales.xml", `<sales>
		<sale book="b1" qty="3"/><sale book="b1" qty="1"/>
		<sale book="b2" qty="7"/><sale book="b4" qty="2"/>
	</sales>`); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadXML("tree.xml",
		`<root><l1><l2 k="x"><l3/></l2><l2 k="y"/></l1><l1><l2 k="z"><l3/><l3/></l2></l1></root>`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		// plain downward navigation
		`doc("xrpc://A/store.xml")//book/title`,
		`doc("xrpc://A/store.xml")/store/book/@id`,
		`count(doc("xrpc://A/store.xml")//author)`,
		// predicates, numeric comparisons, positions
		`doc("xrpc://A/store.xml")//book[price > 28]/title/text()`,
		`doc("xrpc://A/store.xml")//book[@cat = "db"][2]/@id`,
		`(doc("xrpc://A/store.xml")//book)[2]/title`,
		// reverse/horizontal axes
		`doc("xrpc://A/store.xml")//author/parent::authors/parent::book/@id`,
		`doc("xrpc://A/tree.xml")//l3/ancestor::l1`,
		`doc("xrpc://A/tree.xml")//l2[@k = "y"]/preceding-sibling::l2/@k`,
		`doc("xrpc://A/tree.xml")//l2[@k = "x"]/following::l2/@k`,
		// FLWOR, order by, quantifiers, typeswitch
		`for $bk in doc("xrpc://A/store.xml")//book
		 order by number($bk/price) descending return $bk/title/text()`,
		`for $bk in doc("xrpc://A/store.xml")//book
		 where some $au in $bk//author satisfies $au = "Tang"
		 return $bk/@id`,
		`typeswitch (doc("xrpc://A/store.xml")//book[1])
		 case $nn as node() return name($nn) default return "none"`,
		// set operators and node comparisons on one host
		`count(doc("xrpc://A/store.xml")//book union doc("xrpc://A/store.xml")//book[price > 28])`,
		`doc("xrpc://A/store.xml")//book[1] << doc("xrpc://A/store.xml")//book[2]`,
		// aggregates and string functions
		`sum(for $sl in doc("xrpc://B/sales.xml")//sale return number($sl/@qty))`,
		`string-join(doc("xrpc://A/store.xml")//author/text(), ";")`,
		// cross-peer join (the Q2/semijoin family)
		`for $bk in doc("xrpc://A/store.xml")//book
		 where $bk/@id = doc("xrpc://B/sales.xml")//sale/@book
		 return $bk/title/text()`,
		`for $sl in doc("xrpc://B/sales.xml")//sale
		 where $sl/@book = doc("xrpc://A/store.xml")//book[@cat = "db"]/@id
		 return $sl/@qty`,
		// constructors over remote data (attribute value templates are out of
		// scope; computed constructors cover the same ground)
		`element report { attribute n {count(doc("xrpc://A/store.xml")//book)},
		    doc("xrpc://A/store.xml")//book[price < 28]/title }`,
		// deep-equal and distinct-values over shipped values
		`distinct-values(doc("xrpc://B/sales.xml")//sale/@book)`,
		`deep-equal(doc("xrpc://A/store.xml")//book[1]/authors,
		            doc("xrpc://A/store.xml")//book[2]/authors)`,
		// arithmetic over joined data
		`sum(for $bk in doc("xrpc://A/store.xml")//book
		     for $sl in doc("xrpc://B/sales.xml")//sale
		     where $sl/@book = $bk/@id
		     return number($bk/price) * number($sl/@qty))`,
		// root()/base-uri over remote nodes
		`name(root(doc("xrpc://A/tree.xml")//l3[1])/root)`,
		// empty results
		`doc("xrpc://A/store.xml")//book[price > 999]/title`,
	}

	for i, q := range queries {
		baselineSess := n.NewSession(local, core.DataShipping)
		want, _, err := baselineSess.Query(q)
		if err != nil {
			t.Fatalf("query %d baseline: %v\n%s", i, err, q)
		}
		for _, strat := range []core.Strategy{core.ByValue, core.ByFragment, core.ByProjection} {
			sess := n.NewSession(local, strat)
			got, _, err := sess.Query(q)
			if err != nil {
				t.Errorf("query %d under %s: %v\n%s", i, strat, err, q)
				continue
			}
			if !xdm.DeepEqualSeq(want, got) {
				t.Errorf("query %d under %s differs\n got: %s\nwant: %s\nquery: %s",
					i, strat, serialize(got), serialize(want), q)
			}
		}
	}
}

// TestConcurrentSessions exercises the engine/transport thread safety: many
// goroutines querying the same federation under different strategies.
func TestConcurrentSessions(t *testing.T) {
	n := NewNetwork()
	a := n.AddPeer("A")
	if err := a.LoadXML("d.xml", `<r><v>1</v><v>2</v><v>3</v></r>`); err != nil {
		t.Fatal(err)
	}
	local := n.AddPeer("local")
	done := make(chan error, 24)
	for i := 0; i < 24; i++ {
		strat := []core.Strategy{core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection}[i%4]
		go func(s core.Strategy) {
			sess := n.NewSession(local, s)
			res, _, err := sess.Query(`sum(doc("xrpc://A/d.xml")//v)`)
			if err != nil {
				done <- err
				return
			}
			if serialize(res) != "6" {
				done <- fmt.Errorf("%s: got %s", s, serialize(res))
				return
			}
			done <- nil
		}(strat)
	}
	for i := 0; i < 24; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
