package peer

import (
	"fmt"
	"sync"
	"testing"

	"distxq/internal/core"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

// setupSharded builds a federation with the people document partitioned
// horizontally across n peers plus an originator, returning the peer names.
func setupSharded(t testing.TB, cfg xmark.Config, n int) (*Network, *Peer, []string) {
	t.Helper()
	net := NewNetwork()
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		p := net.AddPeer(name)
		p.AddDoc("xmk.xml", xmark.PeopleShardDocument(cfg, i, n, "xrpc://"+name+"/xmk.xml"))
		names = append(names, name)
	}
	local := net.AddPeer("local")
	return net, local, names
}

// TestConcurrentSessionsMatchSequential runs many parallel Session.Query
// calls against one shared Network — shared peer engines, document stores
// and servers — and checks every result equals the sequential baseline.
// Run under -race this is the shared-engine audit of the concurrency layer.
func TestConcurrentSessionsMatchSequential(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.Auctions, cfg.FillerBytes = 30, 60, 32
	n, local := setupXMark(t, cfg)
	src := xmark.BenchmarkQuery("peer1", "peer2")
	strategies := []core.Strategy{core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection}

	baselines := map[core.Strategy]xdm.Sequence{}
	for _, strat := range strategies {
		res, _, err := n.NewSession(local, strat).Query(src)
		if err != nil {
			t.Fatalf("baseline %s: %v", strat, err)
		}
		baselines[strat] = res
	}

	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers*len(strategies))
	for w := 0; w < workers; w++ {
		for _, strat := range strategies {
			wg.Add(1)
			go func(w int, strat core.Strategy) {
				defer wg.Done()
				res, _, err := n.NewSession(local, strat).Query(src)
				if err != nil {
					errCh <- fmt.Errorf("worker %d %s: %w", w, strat, err)
					return
				}
				if !xdm.DeepEqualSeq(res, baselines[strat]) {
					errCh <- fmt.Errorf("worker %d %s: result differs from sequential baseline", w, strat)
				}
			}(w, strat)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestScatterGatherAcceptance is the acceptance criterion of the scatter
// subsystem: a multi-peer scatter query over N peers issues exactly N
// concurrent Bulk RPCs in one wave and returns results node-for-node equal
// to the sequential baseline.
func TestScatterGatherAcceptance(t *testing.T) {
	const peers = 4
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.FillerBytes = 48, 32
	net, local, names := setupSharded(t, cfg, peers)
	src := xmark.ScatterQuery(names)

	for _, strat := range []core.Strategy{core.ByValue, core.ByFragment, core.ByProjection} {
		seq := net.NewSession(local, strat)
		seq.SequentialScatter = true
		baseRes, baseRep, err := seq.Query(src)
		if err != nil {
			t.Fatalf("%s sequential: %v", strat, err)
		}
		if len(baseRes) == 0 {
			t.Fatalf("%s: scatter query returned nothing; data too small?", strat)
		}

		conc := net.NewSession(local, strat)
		res, rep, err := conc.Query(src)
		if err != nil {
			t.Fatalf("%s concurrent: %v", strat, err)
		}
		if !xdm.DeepEqualSeq(res, baseRes) {
			t.Errorf("%s: concurrent result differs from sequential baseline", strat)
		}
		if rep.Requests != peers {
			t.Errorf("%s: requests = %d, want exactly %d (one Bulk RPC per peer)", strat, rep.Requests, peers)
		}
		if rep.Waves != 1 || rep.Parallelism != peers {
			t.Errorf("%s: waves=%d parallelism=%d, want 1 wave of %d lanes", strat, rep.Waves, rep.Parallelism, peers)
		}
		if baseRep.Parallelism != 1 || baseRep.Waves != peers {
			t.Errorf("%s: sequential baseline waves=%d parallelism=%d, want %d/1",
				strat, baseRep.Waves, baseRep.Parallelism, peers)
		}
		// Same payload moves either way (the embedded exec-ns/serde-ns
		// timing digits may drift by a few bytes between runs); the
		// overlapped model must charge the concurrent wave less than the
		// serial sum, which for a sequential run coincides with NetworkNS.
		if diff := rep.MsgBytes - baseRep.MsgBytes; diff < -64 || diff > 64 {
			t.Errorf("%s: message bytes differ: %d vs %d", strat, rep.MsgBytes, baseRep.MsgBytes)
		}
		if rep.NetworkNS >= rep.SerialNetworkNS {
			t.Errorf("%s: overlapped network %d must undercut serial %d", strat, rep.NetworkNS, rep.SerialNetworkNS)
		}
		if baseRep.NetworkNS != baseRep.SerialNetworkNS {
			t.Errorf("%s: sequential run must have identical serial and overlapped network time: %d vs %d",
				strat, baseRep.SerialNetworkNS, baseRep.NetworkNS)
		}
		if rep.MaxPeerNS <= 0 {
			t.Errorf("%s: MaxPeerNS not populated", strat)
		}
	}
}

// TestScatterSessionsRunConcurrently: scatter queries from several parallel
// sessions against the same sharded federation stay correct (the shared
// peer servers see overlapping waves).
func TestScatterSessionsRunConcurrently(t *testing.T) {
	cfg := xmark.DefaultConfig()
	cfg.Persons, cfg.FillerBytes = 32, 16
	net, local, names := setupSharded(t, cfg, 3)
	src := xmark.ScatterQuery(names)
	base, _, err := net.NewSession(local, core.ByFragment).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, rep, err := net.NewSession(local, core.ByFragment).Query(src)
			if err != nil {
				errCh <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			if !xdm.DeepEqualSeq(res, base) {
				errCh <- fmt.Errorf("worker %d: result diverged", w)
			}
			if rep.Requests != 3 {
				errCh <- fmt.Errorf("worker %d: requests = %d", w, rep.Requests)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
