package peer

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"distxq/internal/core"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

// newShardedPeople builds a federation with the people document partitioned
// across n peers plus a document-less originator.
func newShardedPeople(t *testing.T, cfg xmark.Config, n int) (*Network, *Peer, []string) {
	t.Helper()
	net := NewNetwork()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		p := net.AddPeer(name)
		p.AddDoc(xmark.PeopleShardPath,
			xmark.PeopleShardDocument(cfg, i, n, "xrpc://"+name+"/"+xmark.PeopleShardPath))
		names[i] = name
	}
	local := net.AddPeer("local")
	return net, local, names
}

// TestShardPlannerMatchesHandWrittenScatter is the acceptance fixture: the
// planner-produced scatter plan for the logical-document query must execute
// exactly like the hand-written `for $p in $peers return execute at $p {...}`
// of xmark.ScatterQuery — same results, same wave count, same dispatch shape.
func TestShardPlannerMatchesHandWrittenScatter(t *testing.T) {
	cfg := xmark.Config{Seed: 11, Persons: 40, FillerBytes: 0, MinAge: 18, MaxAge: 50}
	for _, n := range []int{2, 4} {
		net, local, names := newShardedPeople(t, cfg, n)

		hand := net.NewSession(local, core.ByFragment)
		handRes, handRep, err := hand.Query(xmark.ScatterQuery(names))
		if err != nil {
			t.Fatalf("%d peers: hand-written scatter: %v", n, err)
		}

		planned := net.NewSession(local, core.ByFragment).UseShards(xmark.PeopleShardMap(names))
		planRes, planRep, err := planned.Query(xmark.LogicalScatterQuery())
		if err != nil {
			t.Fatalf("%d peers: planner scatter: %v", n, err)
		}

		if got, want := serialize(planRes), serialize(handRes); got != want {
			t.Fatalf("%d peers: planner result differs from hand-written scatter:\n got %q\nwant %q", n, got, want)
		}
		if len(planRep.Shards) != 1 || !planRep.Shards[0].Scattered {
			t.Fatalf("%d peers: expected one scattered decision, got %+v", n, planRep.Shards)
		}
		if planRep.Waves != handRep.Waves {
			t.Fatalf("%d peers: wave count %d differs from hand-written %d", n, planRep.Waves, handRep.Waves)
		}
		if planRep.Requests != handRep.Requests {
			t.Fatalf("%d peers: requests %d differ from hand-written %d", n, planRep.Requests, handRep.Requests)
		}
		if planRep.Parallelism != handRep.Parallelism {
			t.Fatalf("%d peers: parallelism %d differs from hand-written %d", n, planRep.Parallelism, handRep.Parallelism)
		}
		if planRep.DocBytes != 0 {
			t.Fatalf("%d peers: planner scatter shipped %d document bytes (union materialized?)", n, planRep.DocBytes)
		}
	}
}

// TestShardFallbackMaterializesUnion runs a query the planner must refuse to
// scatter (a positional record predicate); the logical document materializes
// as the union of shards and the result matches evaluating the same shards
// locally.
func TestShardFallbackMaterializesUnion(t *testing.T) {
	cfg := xmark.Config{Seed: 3, Persons: 12, FillerBytes: 0, MinAge: 18, MaxAge: 50}
	net, local, names := newShardedPeople(t, cfg, 3)
	sess := net.NewSession(local, core.ByFragment).UseShards(xmark.PeopleShardMap(names))
	res, rep, err := sess.Query(fmt.Sprintf(
		`doc(%q)/child::site/child::people/child::person[2]/child::name`, xmark.LogicalPeopleURI))
	if err != nil {
		t.Fatal(err)
	}
	var fallback *core.ShardDecision
	for i := range rep.Shards {
		if !rep.Shards[i].Scattered {
			fallback = &rep.Shards[i]
		}
	}
	if fallback == nil {
		t.Fatalf("expected a fallback decision, got %+v", rep.Shards)
	}
	if rep.DocBytes == 0 {
		t.Fatal("fallback did not ship shard documents for materialization")
	}
	// Shard-major union: the second person overall is the second person of
	// shard 0, i.e. global person id 3 (round-robin over 3 shards).
	want := "<name>"
	if got := serialize(res); !strings.HasPrefix(got, want) {
		t.Fatalf("fallback result %q does not look like a name element", got)
	}
	// Cross-check against direct local evaluation over the materialized union.
	m := xmark.PeopleShardMap(names)
	union, err := m.Materialize(m.Logical, func(peer string) (*xdm.Document, error) {
		p, _ := net.Peer(peer)
		d, ok := p.Doc(m.ShardPath)
		if !ok {
			return nil, fmt.Errorf("no shard at %s", peer)
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	second := union.Root.Children[0].Children[0].Children[1]
	var sb strings.Builder
	_ = xdm.Serialize(&sb, second.Children[0])
	if got := serialize(res); got != sb.String() {
		t.Fatalf("fallback result %q != union evaluation %q", got, sb.String())
	}
}

// TestShardUnknownPeerError locks in the bugfix: naming a peer outside the
// engine's peer set is a distinct, detectable error, not a silent no-op plan.
func TestShardUnknownPeerError(t *testing.T) {
	cfg := xmark.Config{Seed: 3, Persons: 8, FillerBytes: 0, MinAge: 18, MaxAge: 50}
	net, local, names := newShardedPeople(t, cfg, 2)
	bad := append(append([]string(nil), names...), "ghost")
	sess := net.NewSession(local, core.ByFragment).UseShards(xmark.PeopleShardMap(bad))
	_, _, err := sess.Query(xmark.LogicalScatterQuery())
	if !errors.Is(err, core.ErrUnknownShardPeer) {
		t.Fatalf("want ErrUnknownShardPeer, got %v", err)
	}
	if !strings.Contains(fmt.Sprint(err), "ghost") {
		t.Fatalf("error should name the unknown peer: %v", err)
	}
}
