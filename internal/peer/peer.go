// Package peer assembles the full distributed XQuery system: peers hosting
// XML documents behind XRPC endpoints, a federation (Network) connecting
// them, and query sessions that decompose and execute queries under any of
// the paper's four strategies (data-shipping, pass-by-value,
// pass-by-fragment, pass-by-projection), collecting the bandwidth and time
// metrics the evaluation section reports.
//
// The layer's contract: a Session is the one-stop query API — it plans
// (core.Decompose), wires the dispatch stack (xrpc client over the
// federation's transports, streamed or gather-whole, with the session's
// RetryPolicy and replica sets), executes, and returns the result plus a
// Report pricing the run under the netsim cost model: bytes moved, phase
// times, overlap-aware network time, streaming pipeline times, shard
// decisions, and fault-tolerance provenance (retries, hedges, wasted time,
// replica winners). Networks mix in-process peers with external HTTP
// daemons (RouteExternal); KillPeer/RevivePeer inject the failures the
// fault-tolerant dispatch is built to survive.
package peer

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/netsim"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
	"distxq/internal/xrpc"
)

// Peer is one XQuery engine owning a set of documents and serving XRPC.
type Peer struct {
	Name string

	mu    sync.RWMutex
	store map[string]*xdm.Document

	Engine *eval.Engine
	Server *xrpc.Server
	net    *Network
}

// Network is a federation of peers connected by an in-memory transport and
// a simulated link model; external peers reached over their own transports
// (e.g. HTTP daemons) can be routed in beside the in-process ones.
type Network struct {
	Transport *xrpc.InMemoryTransport
	Model     netsim.Model

	mu       sync.RWMutex
	peers    map[string]*Peer
	dead     map[string]*Peer
	external map[string]bool
	router   *xrpc.RouteTransport
	// chunkItems is applied to every peer server's ChunkItems (see
	// SetChunkItems); zero leaves the xrpc default.
	chunkItems int
	// compile is applied to every peer engine's Options.Compile (see
	// SetCompile).
	compile bool

	// topoMu guards the live shard topology separately from peer liveness:
	// dispatch-time re-route lookups happen on scatter fault paths and must
	// never contend with peer registration.
	topoMu sync.RWMutex
	// topo holds the current epoch of each logical document's layout, keyed
	// by logical URI. Installed maps are deep copies — superseded epochs stay
	// immutable, so plans executing against an old snapshot read it safely
	// while UpdateShards/Reshard install the next one.
	topo map[string]core.ShardMap
	// epoch is the federation-wide topology generation: it bumps on every
	// UpdateShards/Reshard and feeds the service plan-cache key, so plans
	// decomposed against superseded layouts stop matching.
	epoch int64
}

// NewNetwork creates an empty federation with the paper's 1 Gb/s LAN model.
func NewNetwork() *Network {
	return &Network{
		Transport: xrpc.NewInMemoryTransport(),
		Model:     netsim.GigabitLAN(),
		peers:     map[string]*Peer{},
		dead:      map[string]*Peer{},
		external:  map[string]bool{},
	}
}

// KillPeer takes a peer down: its XRPC endpoint deregisters from the
// in-memory transport (exchanges naming it fail like a dead host refusing
// connections) and its documents become unreachable for data shipping and
// shard materialization. The peer object survives so RevivePeer can bring
// it back; it still counts as a configured federation member for shard-map
// validation. External (HTTP) peers are not managed here — kill those by
// stopping their daemon.
func (n *Network) KillPeer(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.peers[name]
	if !ok {
		return
	}
	n.Transport.Deregister(name)
	delete(n.peers, name)
	n.dead[name] = p
}

// RevivePeer restores a peer previously taken down by KillPeer.
func (n *Network) RevivePeer(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.dead[name]
	if !ok {
		return
	}
	n.Transport.Register(name, p.Server)
	delete(n.dead, name)
	n.peers[name] = p
}

// RouteExternal maps a peer name to an external transport (for instance an
// xrpc.HTTPTransport reaching a remote xqpeer daemon): sessions dispatch
// execute-at calls naming that peer over it, while in-process peers keep
// using the in-memory transport.
func (n *Network) RouteExternal(name string, t xrpc.Transport) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.router == nil {
		n.router = xrpc.NewRouteTransport(n.Transport)
	}
	n.router.Route(name, t)
	n.external[name] = true
}

// transport returns the transport sessions dispatch over: the in-memory one,
// overlaid with external routes when any are registered.
func (n *Network) transport() xrpc.Transport {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.router != nil {
		return n.router
	}
	return n.Transport
}

// AddPeer creates a peer, registers its XRPC endpoint, and returns it.
func (n *Network) AddPeer(name string) *Peer {
	p := &Peer{Name: name, store: map[string]*xdm.Document{}, net: n}
	p.Engine = eval.NewEngine(&peerResolver{peer: p})
	p.Server = &xrpc.Server{Engine: p.Engine, Name: name}
	n.mu.Lock()
	p.Server.ChunkItems = n.chunkItems
	p.Engine.Options.Compile = n.compile
	n.peers[name] = p
	n.mu.Unlock()
	n.Transport.Register(name, p.Server)
	return p
}

// SetChunkItems sets the per-frame result-item budget of every in-process
// peer's streamed responses, current and future (zero restores the xrpc
// default). Smaller frames surface first results sooner and bound server
// buffering tighter, at more framing overhead. Externally routed peers are
// not affected — configure those daemons directly (xqpeer -chunk-items).
func (n *Network) SetChunkItems(items int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chunkItems = items
	for _, p := range n.peers {
		p.Server.ChunkItems = items
	}
	for _, p := range n.dead {
		p.Server.ChunkItems = items
	}
}

// SetCompile switches every in-process peer engine, current and future, to
// compiled (closure-chain) execution of shipped functions; the originator
// side of a session is controlled by Session.Compile instead. Results are
// byte-identical either way — only execution cost changes.
func (n *Network) SetCompile(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.compile = on
	for _, p := range n.peers {
		p.Engine.Options.Compile = on
	}
	for _, p := range n.dead {
		p.Engine.Options.Compile = on
	}
}

// UpdateShards installs (or replaces, by logical URI) live shard maps and
// bumps the federation topology epoch. Sessions created with UseLiveShards
// and services in live mode plan every new query against the latest epoch,
// while queries already executing finish on the epoch they planned under —
// the installed maps are deep copies, so superseded epochs stay readable.
// Every shard peer must be a federation member, and every in-process primary
// and replica must actually host the shard document (a layout routing lanes
// at a peer without the data would break the scatter-equivalence guarantee).
func (n *Network) UpdateShards(maps ...core.ShardMap) (int64, error) {
	known := n.PeerNames()
	for _, m := range maps {
		if err := n.checkShardHosts(m, known); err != nil {
			return 0, err
		}
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if n.topo == nil {
		n.topo = map[string]core.ShardMap{}
	}
	for _, m := range maps {
		n.topo[m.Logical] = m.Clone()
	}
	n.epoch++
	return n.epoch, nil
}

// Reshard applies one topology delta to the named logical document's live
// layout, installing the resulting validated epoch and bumping the
// federation topology epoch. In-flight queries keep executing (and failing
// over) on their plan's epoch; epoch-aware dispatch re-routes their lanes to
// the new layout when a plan-time primary has since departed.
func (n *Network) Reshard(logical string, d core.ShardDelta) (core.ShardMap, error) {
	n.topoMu.RLock()
	cur, ok := n.topo[logical]
	n.topoMu.RUnlock()
	if !ok {
		return core.ShardMap{}, fmt.Errorf("peer: no live shard map for %s (UpdateShards first)", logical)
	}
	next, err := cur.ApplyDelta(d)
	if err != nil {
		return core.ShardMap{}, err
	}
	if err := n.checkShardHosts(next, n.PeerNames()); err != nil {
		return core.ShardMap{}, err
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if n.topo[logical].Epoch != cur.Epoch {
		return core.ShardMap{}, fmt.Errorf("peer: concurrent reshard of %s (epoch moved %d → %d)",
			logical, cur.Epoch, n.topo[logical].Epoch)
	}
	n.topo[logical] = next
	n.epoch++
	return next.Clone(), nil
}

// ShardTopology snapshots the live shard layout: the current epoch of every
// logical document's map (sorted by logical URI) plus the federation
// topology epoch. The returned maps are deep copies.
func (n *Network) ShardTopology() ([]core.ShardMap, int64) {
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	if len(n.topo) == 0 {
		return nil, n.epoch
	}
	maps := make([]core.ShardMap, 0, len(n.topo))
	for _, m := range n.topo {
		maps = append(maps, m.Clone())
	}
	slices.SortFunc(maps, func(a, b core.ShardMap) int {
		return strings.Compare(a.Logical, b.Logical)
	})
	return maps, n.epoch
}

// TopologyEpoch returns the federation topology generation (see epoch).
func (n *Network) TopologyEpoch() int64 {
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	return n.epoch
}

// checkShardHosts validates a layout against the federation: every named
// peer is a member, and every in-process member (alive or down) hosts the
// shard document it is routed for. Externally routed peers are trusted —
// their stores are not inspectable from here.
func (n *Network) checkShardHosts(m core.ShardMap, known map[string]bool) error {
	hosts := func(name string, shard int) error {
		if !known[name] {
			return fmt.Errorf("peer: shard map %s epoch %d names unknown peer %s", m.Logical, m.Epoch, name)
		}
		n.mu.RLock()
		p, ok := n.peers[name]
		if !ok {
			p, ok = n.dead[name]
		}
		n.mu.RUnlock()
		if !ok {
			return nil // externally routed
		}
		if _, found := p.Doc(m.ShardPath); !found {
			return fmt.Errorf("peer: %s holds no copy of shard %d of %s (%s)",
				name, shard, m.Logical, m.ShardPath)
		}
		return nil
	}
	for i, p := range m.Peers {
		if err := hosts(p, i); err != nil {
			return err
		}
		if i < len(m.Replicas) {
			for _, r := range m.Replicas[i] {
				if err := hosts(r, i); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// rerouteFor returns the epoch-aware re-dispatch hook for a plan executed
// against planShards: given a lane's plan-time target, it locates the shard
// that target owned at plan time and, when the live layout has moved to a
// newer epoch, returns the shard's current rotation — live primary first,
// then its replicas. Nil results mean "nothing newer": the lane keeps
// failing over within its plan-time rotation.
func (n *Network) rerouteFor(planShards []core.ShardMap) func(string) []string {
	if len(planShards) == 0 {
		return nil
	}
	return func(target string) []string {
		n.topoMu.RLock()
		defer n.topoMu.RUnlock()
		for _, pm := range planShards {
			i := pm.ShardOwner(target)
			if i < 0 {
				continue
			}
			cur, ok := n.topo[pm.Logical]
			if !ok || cur.Epoch == pm.Epoch || i >= len(cur.Peers) {
				return nil
			}
			rot := []string{cur.Peers[i]}
			if i < len(cur.Replicas) {
				rot = append(rot, cur.Replicas[i]...)
			}
			// Filter to copies that are up right now: the rotation is consulted
			// after a genuine fault, and its value doubles as a change signal —
			// a revival (or a further kill) alters it, telling the lane runner
			// that re-attempting known peers is worthwhile. When every mapped
			// copy is down (transiently possible mid-churn), return the full
			// rotation rather than nothing.
			live := rot[:0:0]
			n.mu.RLock()
			for _, p := range rot {
				if _, dead := n.dead[p]; !dead {
					live = append(live, p)
				}
			}
			n.mu.RUnlock()
			if len(live) > 0 {
				return live
			}
			return rot
		}
		return nil
	}
}

// Peer returns a registered peer by name.
func (n *Network) Peer(name string) (*Peer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.peers[name]
	return p, ok
}

// PeerNames returns the set of registered peer names, externally routed
// peers included — the engine peer set the decomposer validates shard maps
// against. Killed peers remain members: a shard map naming a down primary
// must still plan, so its lanes can fail over to replicas.
func (n *Network) PeerNames() map[string]bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[string]bool, len(n.peers)+len(n.external)+len(n.dead))
	for name := range n.peers {
		out[name] = true
	}
	for name := range n.external {
		out[name] = true
	}
	for name := range n.dead {
		out[name] = true
	}
	return out
}

// LoadXML parses and stores a document under the given path.
func (p *Peer) LoadXML(path, xmlText string) error {
	d, err := xdm.ParseString(xmlText, "xrpc://"+p.Name+"/"+path)
	if err != nil {
		return err
	}
	p.AddDoc(path, d)
	return nil
}

// AddDoc stores a pre-built document under the given path.
func (p *Peer) AddDoc(path string, d *xdm.Document) {
	p.mu.Lock()
	p.store[path] = d
	p.mu.Unlock()
}

// Doc fetches a stored document.
func (p *Peer) Doc(path string) (*xdm.Document, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	d, ok := p.store[path]
	return d, ok
}

// DocSize returns the serialized size of a stored document in bytes.
func (p *Peer) DocSize(path string) int64 {
	d, ok := p.Doc(path)
	if !ok {
		return 0
	}
	return xdm.SerializedSize(d.Root)
}

// peerResolver resolves doc() URIs on a peer: xrpc:// URIs naming this peer
// hit the local store; other xrpc:// URIs fall back to data shipping (fetch
// the serialized remote document and shred it); plain paths are local.
type peerResolver struct {
	peer *Peer
	// shipStats, when non-nil, accounts data-shipping costs (set on the
	// session-local resolver).
	shipStats *shipStats
}

type shipStats struct {
	bytes   atomic.Int64
	shredNS atomic.Int64
}

func (r *peerResolver) ResolveDoc(uri string) (*xdm.Document, error) {
	if host, ok := core.XRPCHost(uri); ok {
		path := strings.TrimPrefix(uri, "xrpc://"+host+"/")
		if host == r.peer.Name {
			d, found := r.peer.Doc(path)
			if !found {
				return nil, fmt.Errorf("peer %s: no document %q", r.peer.Name, path)
			}
			return d, nil
		}
		// Data shipping: transfer the whole remote document (the W3C
		// fn:doc execution model) and shred it locally.
		remote, found := r.peer.net.Peer(host)
		if !found {
			return nil, fmt.Errorf("peer %s: unknown peer %q in %q", r.peer.Name, host, uri)
		}
		rd, found := remote.Doc(path)
		if !found {
			return nil, fmt.Errorf("peer %s: no document %q", host, path)
		}
		xmlText := xdm.SerializeString(rd.Root)
		t0 := time.Now()
		d, err := xdm.ParseString(xmlText, uri)
		if err != nil {
			return nil, err
		}
		if r.shipStats != nil {
			r.shipStats.bytes.Add(int64(len(xmlText)))
			r.shipStats.shredNS.Add(time.Since(t0).Nanoseconds())
		}
		return d, nil
	}
	d, found := r.peer.Doc(uri)
	if !found {
		return nil, fmt.Errorf("peer %s: no document %q", r.peer.Name, uri)
	}
	return d, nil
}

// Report is the per-query measurement record used to regenerate the
// evaluation figures.
type Report struct {
	Strategy core.Strategy
	// DocBytes counts whole documents transferred by data shipping.
	DocBytes int64
	// MsgBytes counts XRPC request+response message bytes.
	MsgBytes int64
	// Requests counts message exchanges (Bulk RPC counts once; a scatter
	// wave over N peers counts N).
	Requests int64
	// Waves counts dispatch waves: a sequential exchange is a wave of one,
	// a concurrent scatter over N peers one wave of N lanes.
	Waves int64
	// Parallelism is the widest wave observed (max exchanges in flight
	// together); zero when the query sent no requests.
	Parallelism int
	// MaxPeerNS is the slowest single exchange's network + remote-exec
	// time — the critical path through the slowest peer of a scatter wave.
	MaxPeerNS int64
	// SerialNetworkNS is the network time under the serial model (every
	// transfer paid in sequence); NetworkNS charges overlapped waves the
	// per-wave maximum instead. They coincide for fully sequential queries.
	SerialNetworkNS int64
	// Phase times (Figure 8 breakdown).
	ShredNS      int64 // receiving+shredding shipped documents
	LocalExecNS  int64 // local evaluation (excludes the other phases)
	SerdeNS      int64 // client+server message (de)serialization
	RemoteExecNS int64 // remote function evaluation (overlapped: per-wave max)
	NetworkNS    int64 // simulated transfer time (overlapped: per-wave max)
	// Streaming metrics, from the netsim pipeline model (server compute,
	// transfer and client decode overlap chunk by chunk). GatherNS is the
	// same exchanges under the gather-whole model; for a non-streamed query
	// PipelineNS equals GatherNS, and FirstResultNS is the completion of the
	// first request wave (nothing is usable earlier).
	FirstResultNS  int64 // first usable result increment at the originator
	PipelineNS     int64 // completion of all request waves, streamed model
	GatherNS       int64 // completion of all request waves, gather-whole model
	OverlapSavedNS int64 // GatherNS - PipelineNS
	StreamedChunks int64 // response chunk frames received by streamed lanes
	// Shards reports the planner's shard-rewrite decisions: which
	// logical-document expressions became scatter loops and which fell back
	// to materialized-union evaluation, with the violated condition.
	Shards []core.ShardDecision
	// Fault tolerance, from replica-aware dispatch under a RetryPolicy.
	// Retries counts fault-triggered lane re-issues, Hedges the speculative
	// attempts the hedge timer launched, and WastedNS the wall time burned
	// in attempts that did not win — the price paid for the tail latency
	// and availability the winners bought.
	Retries  int64
	Hedges   int64
	WastedNS int64
	// WinnerReplica maps each scatter target whose lane was NOT answered by
	// its primary to the replica peer that produced the winning response.
	// Nil when every lane was won by its primary.
	WinnerReplica map[string]string
}

// TotalBytes is the Figure 7 metric: documents plus messages.
func (r *Report) TotalBytes() int64 { return r.DocBytes + r.MsgBytes }

// TotalNS is the Figure 9 metric: the full simulated query time.
func (r *Report) TotalNS() int64 {
	return r.ShredNS + r.LocalExecNS + r.SerdeNS + r.RemoteExecNS + r.NetworkNS
}

// Session executes queries from an originator peer under one strategy.
type Session struct {
	Strategy core.Strategy
	Origin   *Peer
	// SequentialScatter disables concurrent per-peer dispatch for
	// variable-target loops, forcing one Bulk RPC at a time — the serial
	// baseline the scatter-gather benchmarks compare against.
	SequentialScatter bool
	// Streamed dispatches variable-target loops through the streaming XRPC
	// client: per-peer results arrive as chunk frames consumed in loop
	// order, overlapping slow peers with local processing of finished
	// lanes, instead of gathering whole responses.
	Streamed bool
	// Shards installs shard maps: the planner may rewrite queries over each
	// logical document into the concurrent scatter form, and the logical URI
	// also resolves at the originator by materializing the union of shards
	// (the fallback path).
	Shards []core.ShardMap
	// LiveShards, instead of a frozen Shards list, plans each query against
	// the network's live topology (Network.UpdateShards/Reshard): the session
	// snapshots the current epoch at plan time, the query executes — and
	// fails over — entirely on that snapshot, and the next query picks up
	// whatever epoch is then current. Epoch-aware dispatch additionally
	// re-routes a lane to the newest layout when its plan-time primary has
	// departed mid-query.
	LiveShards bool
	// Retry, when non-nil, makes scatter dispatch fault-tolerant: failed
	// lanes re-issue to replicas and straggling ones are hedged (see
	// xrpc.RetryPolicy). Replica sets come from the installed shard maps
	// and from Replicas; a session with replicas but no policy still fails
	// over on faults.
	Retry *xrpc.RetryPolicy
	// Replicas maps scatter target peers to ordered failover replicas for
	// hand-written variable-target loops; shard maps with Replicas
	// contribute their ReplicaSets automatically.
	Replicas map[string][]string
	// Budget, when non-zero, bounds each query's end-to-end wall time: local
	// evaluation aborts at the deadline, dispatch contexts carry it so lanes
	// tear down, and the remaining allowance travels to remote peers, which
	// abort server-side evaluation when it runs out. A blown budget surfaces
	// as an error matching eval.ErrDeadlineExceeded — never a bare
	// context.Canceled.
	Budget core.Budget
	// Health, when non-nil, drives adaptive hedging and replica spreading:
	// observed lane latencies feed it, and dispatch derives its hedge trigger
	// and initial replica choice from it (see xrpc.HealthTracker).
	Health *xrpc.HealthTracker
	// Compile runs the originator's local evaluation through the compiled
	// closure-chain executor (eval.Options.Compile). The compiled artifact
	// caches on the plan's query object, so repeated executions of a cached
	// plan compile once. Peer-side execution is Network.SetCompile's job.
	Compile bool
	// TraceSpan, when active, parents an "execute" span around each query's
	// evaluation: the engine and the dispatch stack record compile, scatter,
	// lane, attempt and remote server spans under it, and remote peers'
	// piggy-backed spans graft in, so one connected cross-peer tree describes
	// the whole query. A zero SpanRef disables recording at near-zero cost.
	TraceSpan trace.SpanRef
	// AggMetrics, when non-nil, accumulates every query's transport metrics
	// (a daemon points all its sessions here so /metrics sums across queries).
	AggMetrics *xrpc.Metrics
	// AggEval, when non-nil, accumulates every query's evaluation counters.
	AggEval *eval.StatsSink
	net     *Network
}

// UseRetry installs a retry/hedging policy on the session and returns the
// session for chaining.
func (s *Session) UseRetry(pol *xrpc.RetryPolicy) *Session {
	s.Retry = pol
	return s
}

// UseShards installs shard maps on the session (see Shards) and returns the
// session for chaining.
func (s *Session) UseShards(maps ...core.ShardMap) *Session {
	s.Shards = append(s.Shards, maps...)
	return s
}

// UseLiveShards makes the session plan every query against the network's
// live shard topology (see LiveShards) and returns the session for chaining.
func (s *Session) UseLiveShards() *Session {
	s.LiveShards = true
	return s
}

// UseBudget bounds every query of the session by a wall-time budget (see
// Budget) and returns the session for chaining.
func (s *Session) UseBudget(b core.Budget) *Session {
	s.Budget = b
	return s
}

// UseHealth installs a latency tracker for adaptive hedging and replica
// spreading (see Health) and returns the session for chaining.
func (s *Session) UseHealth(h *xrpc.HealthTracker) *Session {
	s.Health = h
	return s
}

// UseCompile switches the session's local evaluation to the compiled
// executor (see Compile) and returns the session for chaining.
func (s *Session) UseCompile(on bool) *Session {
	s.Compile = on
	return s
}

// UseTrace parents the session's query execution under a trace span (see
// TraceSpan) and returns the session for chaining.
func (s *Session) UseTrace(sp trace.SpanRef) *Session {
	s.TraceSpan = sp
	return s
}

// NewSession creates a query session originating at the given peer (the
// peer may own no documents; it is the "local peer" of the paper).
func (n *Network) NewSession(origin *Peer, strat core.Strategy) *Session {
	return &Session{Strategy: strat, Origin: origin, net: n}
}

func semanticsOf(s core.Strategy) xrpc.Semantics {
	switch s {
	case core.ByFragment:
		return xrpc.ByFragment
	case core.ByProjection:
		return xrpc.ByProjection
	default:
		return xrpc.ByValue
	}
}

// Query decomposes and executes query source text, returning the result and
// the measurement report.
func (s *Session) Query(src string) (xdm.Sequence, *Report, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	return s.QueryParsed(q)
}

// QueryParsed decomposes and executes a parsed query.
func (s *Session) QueryParsed(q *xq.Query) (xdm.Sequence, *Report, error) {
	shards := s.shardSnapshot()
	opts := core.DefaultOptions()
	opts.Shards = shards
	if len(shards) > 0 {
		opts.KnownPeers = s.net.PeerNames()
	}
	plan, err := core.Decompose(q, s.Strategy, opts)
	if err != nil {
		return nil, nil, err
	}
	return s.execPlan(plan, shards)
}

// shardSnapshot resolves the shard maps one query plans and executes
// against: the live topology's current epoch under LiveShards (pinned for
// the query's whole execution, however the network reshards meanwhile), the
// session's frozen list otherwise.
func (s *Session) shardSnapshot() []core.ShardMap {
	if s.LiveShards {
		maps, _ := s.net.ShardTopology()
		return maps
	}
	return s.Shards
}

// ExecutePlan runs an already-decomposed plan (used by the ablation
// benchmarks that tweak decomposition options, and by the service, which
// plans through its epoch-keyed cache and installs the matching snapshot on
// Shards).
func (s *Session) ExecutePlan(plan *core.Plan) (xdm.Sequence, *Report, error) {
	return s.execPlan(plan, s.Shards)
}

func (s *Session) execPlan(plan *core.Plan, shards []core.ShardMap) (xdm.Sequence, *Report, error) {
	ship := &shipStats{}
	resolver := &peerResolver{peer: s.Origin, shipStats: ship}
	engine := eval.NewEngine(resolver)
	engine.Options.Compile = s.Compile
	engine.TraceSpan = s.TraceSpan.Child("execute",
		trace.Str("strategy", plan.Strategy.String()),
		trace.Bool("streamed", s.Streamed))
	// Logical documents resolve at the originator by materializing the
	// union of shards; each shard transfer is accounted as data shipping.
	for _, m := range shards {
		m := m
		engine.RegisterLogical(m.Logical, func() (*xdm.Document, error) {
			return m.Materialize(m.Logical, func(peerName string) (*xdm.Document, error) {
				return resolver.ResolveDoc("xrpc://" + peerName + "/" + m.ShardPath)
			})
		})
	}
	// Replica sets flow to the dispatcher through the engine on two levels.
	// Each planner-synthesized scatter call gets its own route table from its
	// shard map, so two maps may assign the same primary different failover
	// orders — per-(target, logical-document) routing — and every loop still
	// fails over strictly within its own document's copies. The target-keyed
	// map remains the fallback for hand-written loops; a target whose sets
	// conflict across maps is withheld from it (the loop names a bare peer,
	// so neither document's failover order is provably the right one) rather
	// than rejected outright — session-level Replicas entries override.
	byLogical := map[string]core.ShardMap{}
	for _, m := range shards {
		byLogical[m.Logical] = m
	}
	routes := map[*xq.XRPCExpr]map[string][]string{}
	for _, d := range plan.Shards {
		if !d.Scattered || d.X == nil {
			continue
		}
		if m, ok := byLogical[d.Logical]; ok {
			routes[d.X] = m.ReplicaSets()
		}
	}
	replicas := map[string][]string{}
	conflicted := map[string]bool{}
	for _, m := range shards {
		for p, rs := range m.ReplicaSets() {
			if prev, ok := replicas[p]; ok && !slices.Equal(prev, rs) {
				conflicted[p] = true
			}
			replicas[p] = rs
		}
	}
	for p := range conflicted {
		delete(replicas, p)
	}
	for p, rs := range s.Replicas {
		replicas[p] = append([]string(nil), rs...)
	}
	if len(replicas) > 0 {
		engine.Replicas = replicas
	}
	if len(routes) > 0 {
		engine.ReplicaRoutes = routes
	}
	metrics := &xrpc.Metrics{}
	// A budget pins the query's absolute deadline here, once: the engine
	// aborts local evaluation at it, and the dispatch context carries it so
	// lanes stamp the remaining allowance onto outgoing requests and tear
	// down in-flight exchanges when it passes.
	var queryCtx context.Context
	if deadline, ok := s.Budget.DeadlineFrom(time.Now()); ok {
		engine.Deadline = deadline
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		queryCtx = ctx
	}
	if s.Strategy != core.DataShipping {
		client := &xrpc.Client{
			Transport: s.net.transport(),
			Semantics: semanticsOf(s.Strategy),
			Static:    engine.Static,
			Relatives: plan.Relatives,
			Metrics:   metrics,
			Context:   queryCtx,
			Retry:     s.Retry,
			Health:    s.Health,
			Reroute:   s.net.rerouteFor(shards),
			Trace:     engine.TraceSpan,
		}
		switch {
		case s.SequentialScatter:
			// Hide the ScatterCaller extension so the evaluator dispatches
			// variable-target batches one peer at a time.
			engine.Remote = bulkOnlyCaller{client}
		case s.Streamed:
			engine.Remote = &xrpc.StreamedClient{Client: client}
		default:
			engine.Remote = client
		}
	}
	t0 := time.Now()
	res, err := engine.Query(plan.Query)
	wallNS := time.Since(t0).Nanoseconds()
	// Retire this query's counters into the session's aggregate sinks before
	// any return: failed queries still moved bytes and burned evaluations.
	s.AggMetrics.Add(metrics)
	s.AggEval.Add(engine.StatsSnapshot())
	engine.TraceSpan.EndErr(err)
	if err != nil {
		return nil, nil, err
	}
	m := metrics.Snapshot()
	rep := &Report{
		Strategy: plan.Strategy,
		DocBytes: ship.bytes.Load(),
		MsgBytes: m.BytesSent + m.BytesReceived,
		Requests: m.Requests,
		Waves:    int64(len(m.Waves)),
		ShredNS:  ship.shredNS.Load(),
		SerdeNS:  m.SerializeNS + m.DeserializeNS + m.ServerSerdeNS,
		Shards:   plan.Shards,
	}
	// Simulated network and remote execution, wave by wave: exchanges that
	// were in flight together cost their per-wave maximum (the slowest peer
	// dominates a scatter wave); sequential exchanges — single-lane waves —
	// sum exactly as in the serial model.
	netNS, serialNS, remoteNS := int64(0), int64(0), int64(0)
	if rep.DocBytes > 0 {
		t := s.net.Model.TransferTime(rep.DocBytes).Nanoseconds()
		netNS += t
		serialNS += t
	}
	waveStreamed := make([]bool, len(m.Waves))
	waveLanes := make([][]netsim.StreamedExchange, len(m.Waves))
	for wi, wave := range m.Waves {
		if len(wave) > rep.Parallelism {
			rep.Parallelism = len(wave)
		}
		lanes := make([]netsim.Exchange, len(wave))
		slanes := make([]netsim.StreamedExchange, len(wave))
		var waveExecNS int64
		for i, lane := range wave {
			lanes[i] = netsim.Exchange{ReqBytes: lane.BytesSent, RespBytes: lane.BytesReceived}
			slanes[i] = streamedExchange(lane)
			rep.StreamedChunks += int64(len(lane.Chunks))
			rep.Retries += int64(lane.Retries)
			rep.Hedges += int64(lane.Hedges)
			rep.WastedNS += lane.WastedNS
			if lane.Replica > 0 && lane.Target != "" {
				if rep.WinnerReplica == nil {
					rep.WinnerReplica = map[string]string{}
				}
				rep.WinnerReplica[lane.Target] = lane.Peer
			}
			if len(lane.Chunks) > 0 {
				waveStreamed[wi] = true
			}
			laneNetNS := s.net.Model.RoundTrip(lane.BytesSent, lane.BytesReceived).Nanoseconds()
			serialNS += laneNetNS
			if lane.RemoteExecNS > waveExecNS {
				waveExecNS = lane.RemoteExecNS
			}
			if peerNS := laneNetNS + lane.RemoteExecNS; peerNS > rep.MaxPeerNS {
				rep.MaxPeerNS = peerNS
			}
		}
		waveLanes[wi] = slanes
		netNS += s.net.Model.WaveTime(lanes).Nanoseconds()
		remoteNS += waveExecNS
	}
	// Streamed-pipeline accounting: compute/transfer/decode overlap chunk by
	// chunk, against the gather-whole model of the same lanes. A run of
	// consecutive streamed waves pipelines across its wave boundaries too
	// (the dispatcher admits the next lane as soon as a slot frees, no
	// barrier) — clamped by the barrier schedule, which any scheduler can
	// fall back to. Gather-only waves contribute their wave completion to
	// both models, so PipelineNS equals GatherNS for non-streamed queries.
	for wi := 0; wi < len(waveLanes); {
		if !waveStreamed[wi] {
			gFirst, gLast := s.net.Model.GatherWaveTime(waveLanes[wi])
			if wi == 0 {
				// Nothing is usable before the gather wave completed.
				rep.FirstResultNS = gFirst.Nanoseconds()
			}
			rep.PipelineNS += gLast.Nanoseconds()
			rep.GatherNS += gLast.Nanoseconds()
			wi++
			continue
		}
		width := len(waveLanes[wi])
		var run []netsim.StreamedExchange
		first := wi
		for wi < len(waveLanes) && waveStreamed[wi] {
			run = append(run, waveLanes[wi]...)
			wi++
		}
		if first == 0 {
			sFirst, _ := s.net.Model.StreamedWaveTime(waveLanes[0])
			rep.FirstResultNS = sFirst.Nanoseconds()
		}
		pipe := s.net.Model.PipelinedTime(run, width)
		barrier := s.net.Model.WaveBarrierTime(run, width)
		if pipe > barrier {
			pipe = barrier
		}
		rep.PipelineNS += pipe.Nanoseconds()
		rep.GatherNS += barrier.Nanoseconds()
	}
	rep.NetworkNS = netNS
	rep.SerialNetworkNS = serialNS
	rep.RemoteExecNS = remoteNS
	rep.OverlapSavedNS = rep.GatherNS - rep.PipelineNS
	// Local execution is what remains of wall time after the accounted
	// phases (message serde and remote exec happen within the wall).
	local := wallNS - rep.ShredNS - rep.SerdeNS - rep.RemoteExecNS
	if local < 0 {
		local = 0
	}
	rep.LocalExecNS = local
	return res, rep, nil
}

// streamedExchange converts a metrics lane into the netsim streamed-lane
// description: streamed lanes carry their per-chunk stats (plus a trailing
// pseudo-chunk for the terminal frame's bytes), gather-whole lanes collapse
// to a single chunk covering the entire response.
func streamedExchange(lane xrpc.Lane) netsim.StreamedExchange {
	se := netsim.StreamedExchange{ReqBytes: lane.BytesSent}
	if len(lane.Chunks) == 0 {
		se.Chunks = []netsim.Chunk{{
			Bytes: lane.BytesReceived, ExecNS: lane.RemoteExecNS, DeserNS: lane.DeserNS,
		}}
		return se
	}
	rest := lane.BytesReceived
	for _, c := range lane.Chunks {
		se.Chunks = append(se.Chunks, netsim.Chunk{Bytes: c.Bytes, ExecNS: c.ExecNS, DeserNS: c.DeserNS})
		rest -= c.Bytes
	}
	if rest > 0 {
		se.Chunks = append(se.Chunks, netsim.Chunk{Bytes: rest})
	}
	return se
}

// bulkOnlyCaller forwards the plain RemoteCaller methods of a Client while
// hiding its ScatterCaller extension, so variable-target loops degrade to
// sequential per-peer dispatch (the measurement baseline).
type bulkOnlyCaller struct{ c *xrpc.Client }

func (b bulkOnlyCaller) CallRemote(target string, x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error) {
	return b.c.CallRemote(target, x, params)
}

func (b bulkOnlyCaller) CallRemoteBulk(target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence) ([]xdm.Sequence, error) {
	return b.c.CallRemoteBulk(target, x, iterations)
}
