package peer

// reshard_race_test.go hammers the live topology concurrently: worker
// goroutines keep querying live-shard sessions (gather-whole and streamed)
// while the test goroutine churns the layout through kills, revivals and
// Reshard deltas. Every query must still answer byte-identically to the
// static reference — in-flight plans finish on their snapshot epoch, faulted
// lanes re-route into the live one — and the run must be clean under -race.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/xrpc"
)

func TestLiveReshardRaceHammer(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		compiled := compiled
		t.Run(fmt.Sprintf("compiled=%v", compiled), func(t *testing.T) {
			// The compile switch is per-engine state: it must be set before any
			// traffic and never toggled while attempts may still be in flight
			// (a cancelled loser over the in-memory transport runs to
			// completion past the end of its query). Each subtest gets its own
			// world, configured once.
			w := newChurnWorld(t, 4)
			w.reset()
			w.n.SetCompile(compiled)

			queries := []string{
				churnQueryPrefix + `/child::name`,
				`for $x in ` + churnQueryPrefix + ` return if ($x/descendant::age < 33) then $x/child::name else ()`,
			}
			want := map[string]string{}
			for _, q := range queries {
				res, err := w.refEng.QueryString(q)
				if err != nil {
					t.Fatal(err)
				}
				want[q] = serializeSeq(t, res)
			}

			stop := make(chan struct{})
			errs := make(chan error, 16)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					pol := &xrpc.RetryPolicy{RouteLive: g%2 == 0}
					sess := w.n.NewSession(w.local, core.ByFragment).
						UseLiveShards().UseRetry(pol).UseCompile(compiled)
					if pol.RouteLive {
						sess.UseHealth(xrpc.NewHealthTracker())
					}
					sess.Streamed = g >= 2
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := queries[i%len(queries)]
						res, _, err := sess.Query(q)
						if err != nil {
							errs <- fmt.Errorf("worker %d (streamed=%v routeLive=%v) query %d: %w",
								g, sess.Streamed, pol.RouteLive, i, err)
							return
						}
						if got := serializeSeq(t, res); got != want[q] {
							errs <- fmt.Errorf("worker %d query %d diverged under churn:\nwant %q\ngot  %q",
								g, i, want[q], got)
							return
						}
					}
				}()
			}

			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 150; i++ {
				w.randomOp(rng)
				time.Sleep(200 * time.Microsecond)
			}
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if w.moves == 0 {
				t.Fatal("hammer applied no epoch transitions")
			}
		})
	}
}
