package peer

import "testing"

// TestSetChunkItems: the network-level frame budget reaches every
// in-process peer server — added before or after the call, dead or alive.
func TestSetChunkItems(t *testing.T) {
	n := NewNetwork()
	before := n.AddPeer("before")
	down := n.AddPeer("down")
	n.KillPeer("down")
	n.SetChunkItems(7)
	after := n.AddPeer("after")
	for _, p := range []*Peer{before, down, after} {
		if p.Server.ChunkItems != 7 {
			t.Errorf("peer %s: ChunkItems = %d, want 7", p.Name, p.Server.ChunkItems)
		}
	}
	n.RevivePeer("down")
	n.SetChunkItems(0)
	if before.Server.ChunkItems != 0 || down.Server.ChunkItems != 0 {
		t.Error("reset to default did not propagate")
	}
}
