package peer

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xrpc"
)

// replicatedFederation builds a sharded people federation with every shard
// stored on its primary peer<i> and on a dedicated replica rep<i>, plus a
// local originator. The returned shard map lists the replicas.
func replicatedFederation(t *testing.T, peers int) (*Network, *Peer, []string, core.ShardMap) {
	t.Helper()
	cfg := xmark.ForSize(1 << 17)
	n := NewNetwork()
	var names []string
	var replicas [][]string
	for i := 0; i < peers; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		rname := fmt.Sprintf("rep%d", i+1)
		n.AddPeer(name).AddDoc(xmark.PeopleShardPath,
			xmark.PeopleShardDocument(cfg, i, peers, "xrpc://"+name+"/"+xmark.PeopleShardPath))
		n.AddPeer(rname).AddDoc(xmark.PeopleShardPath,
			xmark.PeopleShardDocument(cfg, i, peers, "xrpc://"+rname+"/"+xmark.PeopleShardPath))
		names = append(names, name)
		replicas = append(replicas, []string{rname})
	}
	local := n.AddPeer("local")
	m := xmark.PeopleShardMap(names)
	m.Replicas = replicas
	return n, local, names, m
}

// TestKillAnyPeerInMemory is the acceptance test for replica failover over
// the in-memory transport: with every shard replicated x2, killing any
// single primary yields byte-identical results to the healthy run — for the
// hand-written scatter query and the planner-generated logical plan, in
// gather-whole and streamed dispatch, tree-walking and compiled.
func TestKillAnyPeerInMemory(t *testing.T) {
	for _, peers := range []int{2, 4} {
		for _, compiled := range []bool{false, true} {
			n, local, names, m := replicatedFederation(t, peers)
			n.SetCompile(compiled)
			handQuery := xmark.ScatterQuery(names)

			type mode struct {
				name string
				run  func() (xdm.Sequence, *Report, error)
			}
			modes := []mode{
				{"hand-gather", func() (xdm.Sequence, *Report, error) {
					sess := n.NewSession(local, core.ByFragment).UseRetry(&xrpc.RetryPolicy{}).UseCompile(compiled)
					sess.Replicas = m.ReplicaSets()
					return sess.Query(handQuery)
				}},
				{"hand-streamed", func() (xdm.Sequence, *Report, error) {
					sess := n.NewSession(local, core.ByFragment).UseRetry(&xrpc.RetryPolicy{}).UseCompile(compiled)
					sess.Replicas = m.ReplicaSets()
					sess.Streamed = true
					return sess.Query(handQuery)
				}},
				{"planner-gather", func() (xdm.Sequence, *Report, error) {
					sess := n.NewSession(local, core.ByFragment).UseShards(m).UseRetry(&xrpc.RetryPolicy{}).UseCompile(compiled)
					return sess.Query(xmark.LogicalScatterQuery())
				}},
			}
			for _, md := range modes {
				res, _, err := md.run()
				if err != nil {
					t.Fatalf("%d peers %s healthy: %v", peers, md.name, err)
				}
				want := serializeSeq(t, res)
				for _, victim := range names {
					n.KillPeer(victim)
					res, rep, err := md.run()
					if err != nil {
						t.Fatalf("%d peers %s, %s killed: %v", peers, md.name, victim, err)
					}
					if got := serializeSeq(t, res); got != want {
						t.Fatalf("%d peers %s, %s killed: result diverged from healthy run", peers, md.name, victim)
					}
					if rep.Retries < 1 {
						t.Errorf("%d peers %s, %s killed: report records no retry (%+v)", peers, md.name, victim, rep)
					}
					if w := rep.WinnerReplica[victim]; !strings.HasPrefix(w, "rep") {
						t.Errorf("%d peers %s, %s killed: WinnerReplica[%s] = %q, want a replica", peers, md.name, victim, victim, w)
					}
					n.RevivePeer(victim)
				}
			}
		}
	}
}

// TestKillPeerMaterializeFallback: a logical-document query answered from
// the materialized union (data shipping performs no decomposition, so the
// shard rewrite never runs) must also survive a killed primary, by fetching
// that shard from its replica during materialization.
func TestKillPeerMaterializeFallback(t *testing.T) {
	n, local, names, m := replicatedFederation(t, 2)
	src := fmt.Sprintf(`for $x in doc(%q)/child::site/child::people/child::person
	return if ($x/descendant::age < 40) then $x/child::name else ()`, xmark.LogicalPeopleURI)

	run := func() string {
		sess := n.NewSession(local, core.DataShipping).UseShards(m)
		res, _, err := sess.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeq(t, res)
	}
	want := run()
	n.KillPeer(names[0])
	defer n.RevivePeer(names[0])
	if got := run(); got != want {
		t.Fatal("materialized-union fallback diverged with a killed primary")
	}
}

// slowPeerTransport delays exchanges to selected peers, honoring
// cancellation — the straggling-peer injection for session-level hedging.
type slowPeerTransport struct {
	inner xrpc.Transport
	delay map[string]time.Duration
}

func (s *slowPeerTransport) wait(ctx context.Context, peer string) error {
	if d := s.delay[peer]; d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *slowPeerTransport) RoundTrip(peer string, req []byte) ([]byte, error) {
	return s.RoundTripContext(context.Background(), peer, req)
}

func (s *slowPeerTransport) RoundTripContext(ctx context.Context, peer string, req []byte) ([]byte, error) {
	if err := s.wait(ctx, peer); err != nil {
		return nil, err
	}
	return s.inner.RoundTrip(peer, req)
}

func (s *slowPeerTransport) RoundTripStream(ctx context.Context, peer string, req []byte, sink func([]byte) error) error {
	if err := s.wait(ctx, peer); err != nil {
		return err
	}
	return s.inner.(xrpc.StreamTransport).RoundTripStream(ctx, peer, req, sink)
}

// TestSlowPeerHedged: a straggling primary is hedged to its replica and the
// query answers byte-identically, fast, with the hedge on the report — in
// tree-walking and compiled execution alike.
func TestSlowPeerHedged(t *testing.T) {
	n, local, names, m := replicatedFederation(t, 2)
	handQuery := xmark.ScatterQuery(names)
	healthy := n.NewSession(local, core.ByFragment)
	res, _, err := healthy.Query(handQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := serializeSeq(t, res)

	// Route the straggler through a delaying transport; everything else
	// keeps using the in-memory transport underneath.
	n.RouteExternal(names[0], &slowPeerTransport{
		inner: n.Transport, delay: map[string]time.Duration{names[0]: 5 * time.Second}})

	for _, compiled := range []bool{false, true} {
		n.SetCompile(compiled)
		for _, streamed := range []bool{false, true} {
			sess := n.NewSession(local, core.ByFragment).UseRetry(
				&xrpc.RetryPolicy{MaxAttempts: 2, HedgeAfter: 10 * time.Millisecond}).UseCompile(compiled)
			sess.Replicas = m.ReplicaSets()
			sess.Streamed = streamed
			t0 := time.Now()
			res, rep, err := sess.Query(handQuery)
			if err != nil {
				t.Fatalf("streamed=%v: %v", streamed, err)
			}
			if wall := time.Since(t0); wall > 2*time.Second {
				t.Fatalf("streamed=%v: query took %v — the straggler was waited out", streamed, wall)
			}
			if got := serializeSeq(t, res); got != want {
				t.Fatalf("streamed=%v: hedged result diverged from healthy run", streamed)
			}
			if rep.Hedges < 1 {
				t.Errorf("streamed=%v: report records no hedge: %+v", streamed, rep)
			}
			if w := rep.WinnerReplica[names[0]]; w != "rep1" {
				t.Errorf("streamed=%v: WinnerReplica[%s] = %q, want rep1", streamed, names[0], w)
			}
			if rep.WastedNS <= 0 {
				t.Errorf("streamed=%v: no wasted time accounted for the losing attempt", streamed)
			}
		}
	}
}

// TestExhaustedReplicasSessionFault: killing a primary and its replica must
// fail the query with the primary's original fault, not a cancellation echo
// of the retry machinery.
func TestExhaustedReplicasSessionFault(t *testing.T) {
	n, local, names, m := replicatedFederation(t, 2)
	n.KillPeer(names[1])
	n.KillPeer("rep2")
	sess := n.NewSession(local, core.ByFragment).UseRetry(&xrpc.RetryPolicy{})
	sess.Replicas = m.ReplicaSets()
	_, _, err := sess.Query(xmark.ScatterQuery(names))
	if err == nil {
		t.Fatal("query succeeded with a shard's every copy dead")
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error = %v, a cancellation echo instead of the original fault", err)
	}
	if !strings.Contains(err.Error(), `unknown peer "peer2"`) {
		t.Fatalf("error = %v, want the original unknown-peer fault", err)
	}
}

// TestPerDocumentReplicaRouting: two shard maps sharing primaries but
// disagreeing on failover sets used to be rejected wholesale ("conflicting
// replica sets"). Routing is now keyed per (target, logical document), so the
// session accepts both maps and a killed primary fails over to the replica
// that holds *that document's* shard — provable here because each replica
// stores only its own document, so routing one document's lane through the
// other's replica would fail loudly with a missing-document fault.
func TestPerDocumentReplicaRouting(t *testing.T) {
	n := NewNetwork()
	load := func(p *Peer, path, val string) {
		t.Helper()
		if err := p.LoadXML(path, fmt.Sprintf(`<r><v>%s</v></r>`, val)); err != nil {
			t.Fatal(err)
		}
	}
	p1, p2 := n.AddPeer("peer1"), n.AddPeer("peer2")
	load(p1, "a.xml", "a1")
	load(p1, "b.xml", "b1")
	load(p2, "a.xml", "a2")
	load(p2, "b.xml", "b2")
	load(n.AddPeer("repA"), "a.xml", "a1") // holds only document A's shard 0
	load(n.AddPeer("repB"), "b.xml", "b1") // holds only document B's shard 0
	local := n.AddPeer("local")

	sm := func(logical, path string, replicas [][]string) core.ShardMap {
		return core.ShardMap{
			Logical:    logical,
			Peers:      []string{"peer1", "peer2"},
			ShardPath:  path,
			RecordPath: "child::r/child::v",
			Replicas:   replicas,
		}
	}
	mA := sm("shard://test/a", "a.xml", [][]string{{"repA"}, nil})
	mB := sm("shard://test/b", "b.xml", [][]string{{"repB"}, nil})
	query := `(for $x in doc("shard://test/a")/child::r/child::v return $x,
for $y in doc("shard://test/b")/child::r/child::v return $y)`

	healthy := n.NewSession(local, core.ByFragment).UseShards(mA, mB)
	res, rep, err := healthy.Query(query)
	if err != nil {
		t.Fatalf("healthy run: %v", err)
	}
	if got := len(rep.Shards); got != 2 {
		t.Fatalf("healthy run produced %d shard decisions, want 2", got)
	}
	for _, d := range rep.Shards {
		if !d.Scattered {
			t.Fatalf("decision for %s not scattered: %q", d.Logical, d.Reason)
		}
	}
	want := serializeSeq(t, res)

	n.KillPeer("peer1")
	for _, compiled := range []bool{false, true} {
		n.SetCompile(compiled)
		for _, streamed := range []bool{false, true} {
			sess := n.NewSession(local, core.ByFragment).
				UseShards(mA, mB).UseRetry(&xrpc.RetryPolicy{}).UseCompile(compiled)
			sess.Streamed = streamed
			res, rep, err := sess.Query(query)
			if err != nil {
				t.Fatalf("compiled=%v streamed=%v, peer1 killed: %v", compiled, streamed, err)
			}
			if got := serializeSeq(t, res); got != want {
				t.Fatalf("compiled=%v streamed=%v: result diverged from healthy run", compiled, streamed)
			}
			if rep.Retries < 2 {
				t.Errorf("compiled=%v streamed=%v: %d retries recorded, want one per document", compiled, streamed, rep.Retries)
			}
		}
	}

	// The merged target-keyed fallback withholds the conflicted primary: a
	// hand-written loop naming the bare peer has no provably-right failover
	// order, so it must fail rather than guess a replica.
	sess := n.NewSession(local, core.ByFragment).UseShards(mA, mB).UseRetry(&xrpc.RetryPolicy{})
	_, _, err = sess.Query(`for $p in ("peer1", "peer2") return execute at {$p} { doc("a.xml")/child::r/child::v }`)
	if err == nil {
		t.Fatal("hand-written loop over the conflicted primary succeeded — which document's replica did it guess?")
	}
}

// httpShardFederation serves every shard (primaries and replicas) from real
// HTTP daemons — the cmd/xqpeer wiring — and routes them into a federation
// whose originator is the only in-process peer. It returns the network, the
// originator, the primary names, the shard map, and a kill function that
// tears down one daemon's listener (a real dead host, not a simulated one).
func httpShardFederation(t *testing.T, peers int, compiled bool) (*Network, *Peer, []string, core.ShardMap, func(name string)) {
	t.Helper()
	cfg := xmark.ForSize(1 << 17)
	n := NewNetwork()
	local := n.AddPeer("local")
	servers := map[string]*httptest.Server{}
	var names []string
	var replicas [][]string
	serve := func(name string, shard, shards int) {
		doc := xmark.PeopleShardDocument(cfg, shard, shards, name+"/"+xmark.PeopleShardPath)
		engine := eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
			if uri == xmark.PeopleShardPath {
				return doc, nil
			}
			return nil, fmt.Errorf("no such document %q", uri)
		}))
		engine.Options.Compile = compiled
		srv := &xrpc.Server{Engine: engine, ChunkItems: 8}
		mux := http.NewServeMux()
		mux.Handle("/xrpc", xrpc.NewHTTPHandler(srv))
		mux.Handle("/xrpc/stream", xrpc.NewStreamHTTPHandler(srv))
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		servers[name] = ts
		url := ts.URL + "/xrpc"
		n.RouteExternal(name, &xrpc.HTTPTransport{URLFor: func(string) string { return url }})
	}
	for i := 0; i < peers; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		rname := fmt.Sprintf("rep%d", i+1)
		serve(name, i, peers)
		serve(rname, i, peers)
		names = append(names, name)
		replicas = append(replicas, []string{rname})
	}
	m := xmark.PeopleShardMap(names)
	m.Replicas = replicas
	kill := func(name string) { servers[name].CloseClientConnections(); servers[name].Close() }
	return n, local, names, m, kill
}

// TestKillPeerOverHTTP: the acceptance property over real HTTP transports —
// a killed daemon (closed listener) fails over to its replica daemon with
// byte-identical results, gather-whole and streamed, with the daemons
// tree-walking and compiled.
func TestKillPeerOverHTTP(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		for _, streamed := range []bool{false, true} {
			n, local, names, m, kill := httpShardFederation(t, 2, compiled)
			run := func() (xdm.Sequence, *Report, error) {
				sess := n.NewSession(local, core.ByFragment).UseRetry(&xrpc.RetryPolicy{}).UseCompile(compiled)
				sess.Replicas = m.ReplicaSets()
				sess.Streamed = streamed
				return sess.Query(xmark.ScatterQuery(names))
			}
			res, _, err := run()
			if err != nil {
				t.Fatalf("compiled=%v streamed=%v healthy: %v", compiled, streamed, err)
			}
			want := serializeSeq(t, res)
			kill(names[1])
			res, rep, err := run()
			if err != nil {
				t.Fatalf("compiled=%v streamed=%v, %s killed: %v", compiled, streamed, names[1], err)
			}
			if got := serializeSeq(t, res); got != want {
				t.Fatalf("compiled=%v streamed=%v: result diverged after killing %s", compiled, streamed, names[1])
			}
			if rep.Retries < 1 {
				t.Errorf("compiled=%v streamed=%v: report records no retry: %+v", compiled, streamed, rep)
			}
			if w := rep.WinnerReplica[names[1]]; w != "rep2" {
				t.Errorf("compiled=%v streamed=%v: WinnerReplica[%s] = %q, want rep2", compiled, streamed, names[1], w)
			}
		}
	}
}
