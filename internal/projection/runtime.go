package projection

import (
	"fmt"

	"distxq/internal/eval"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Projected is the outcome of projecting a document: a fresh frozen document
// D′ holding the pruned copy, the post-processed root (the LCA of the
// projection nodes), and the original→copy node mapping needed to translate
// fragment references.
type Projected struct {
	Doc  *xdm.Document
	Root *xdm.Node
	Map  map[*xdm.Node]*xdm.Node
}

// Options tune the projection (schema-aware variant of §VI-B).
type Options struct {
	// KeepAllAttributes retains every attribute of kept elements, not just
	// the attributes in the projection node sets. XRPC's schema-respecting
	// mode uses this to avoid dropping mandatory attributes.
	KeepAllAttributes bool
	// SchemaKeep, when non-nil, reports elements that must not be pruned
	// even when outside the projection sets (the minOccurs>0 rule).
	SchemaKeep func(*xdm.Node) bool
}

// Project implements Algorithm 1 (RUNTIMEXMLPROJECTION): given the used node
// set U and returned node set R (both within doc), it computes the projected
// document D′ containing all used and returned nodes, the descendants of
// returned nodes, their ancestors, and nothing else; post-processing trims
// ancestors above the lowest common ancestor of the projection nodes.
func Project(used, returned []*xdm.Node, doc *xdm.Document, opt Options) (*Projected, error) {
	for _, n := range append(append([]*xdm.Node(nil), used...), returned...) {
		if n.Doc != doc {
			return nil, fmt.Errorf("projection: node %s not in document %s", n.Name, doc.URI)
		}
	}
	isReturned := map[*xdm.Node]bool{}
	for _, n := range returned {
		isReturned[n] = true
	}
	// Attribute projection nodes are not visited by the tree cursor (the
	// descendant walk excludes attributes); record them separately and use
	// their owner elements as used surrogates in P.
	keepAttr := map[*xdm.Node]bool{}
	inP := map[*xdm.Node]bool{}
	var P []*xdm.Node
	addP := func(n *xdm.Node) {
		if n.Kind == xdm.AttributeNode {
			keepAttr[n] = true
			n = n.Parent
		}
		if !inP[n] {
			inP[n] = true
			P = append(P, n)
		}
	}
	for _, n := range used {
		addP(n)
	}
	for _, n := range returned {
		if n.Kind == xdm.AttributeNode {
			keepAttr[n] = true
			if !inP[n.Parent] {
				inP[n.Parent] = true
				P = append(P, n.Parent)
			}
			continue
		}
		addP(n)
	}
	P = xdm.SortDocOrder(P)

	// The cursor phase of Algorithm 1: walk cur through the document in
	// document order; selected accumulates D′ membership. subtree marks the
	// returned nodes whose entire subtree joins D′.
	selected := map[*xdm.Node]bool{}
	subtree := map[*xdm.Node]bool{}
	pi := 0
	cur := doc.Root
	for pi < len(P) && cur != nil {
		proj := P[pi]
		switch {
		case cur.IsAncestorOf(proj): // proj is a descendant of cur
			selected[cur] = true
			cur = cur.NextInDocument()
		case proj == cur:
			selected[cur] = true
			if isReturned[cur] {
				subtree[cur] = true // cur and all descendants join D′
				ret := cur
				cur = cur.Following()
				// prune projection nodes inside the subtree just added
				for pi+1 < len(P) && ret.IsAncestorOf(P[pi+1]) {
					pi++
				}
			} else {
				cur = cur.NextInDocument()
			}
			pi++
		default:
			// proj is not inside cur's subtree: skip the subtree.
			cur = cur.Following()
		}
	}
	if pi < len(P) {
		return nil, fmt.Errorf("projection: cursor missed %d projection nodes (input not in document order?)", len(P)-pi)
	}

	// Build the copy of the selected forest.
	out := &Projected{Map: map[*xdm.Node]*xdm.Node{}}
	d := xdm.NewDocument(doc.URI + "#projected")
	out.Doc = d
	var build func(orig *xdm.Node, parent *xdm.Node, inSubtree bool)
	build = func(orig, parent *xdm.Node, inSubtree bool) {
		keep := inSubtree || selected[orig] || (opt.SchemaKeep != nil && opt.SchemaKeep(orig) && selected[orig.Parent])
		if !keep {
			return
		}
		var cp *xdm.Node
		if orig.Kind == xdm.DocumentNode {
			cp = parent // the fresh document node stands in for the original
		} else {
			cp = &xdm.Node{Kind: orig.Kind, Name: orig.Name, Text: orig.Text, BaseURI: orig.BaseURI}
			parent.AppendChild(cp)
		}
		out.Map[orig] = cp
		for _, a := range orig.Attrs {
			if inSubtree || subtree[orig] || keepAttr[a] || opt.KeepAllAttributes {
				ca := xdm.NewAttr(a.Name, a.Text)
				ca.Parent = cp
				cp.Attrs = append(cp.Attrs, ca)
				out.Map[a] = ca
			}
		}
		for _, c := range orig.Children {
			build(c, cp, inSubtree || subtree[orig])
		}
	}
	build(doc.Root, d.Root, false)

	// Post-processing (lines 24–27): descend from the root while the chain
	// has a single child and the current node is not itself a projection
	// node, leaving the lowest common ancestor as the projected root.
	isProj := func(orig *xdm.Node) bool {
		return inP[orig] || keepAttr[orig]
	}
	curO := doc.Root
	for {
		cp := out.Map[curO]
		if cp == nil {
			break
		}
		if isProj(curO) || len(cp.Children) != 1 {
			break
		}
		// move to the unique kept child
		var nextO *xdm.Node
		for _, c := range curO.Children {
			if out.Map[c] != nil {
				nextO = c
				break
			}
		}
		if nextO == nil {
			break
		}
		curO = nextO
	}
	root := out.Map[curO]
	if root == nil {
		root = d.Root
	}
	if root != d.Root {
		// Reparent the trimmed root directly under the document node.
		d.Root.Children = []*xdm.Node{root}
		root.Parent = d.Root
	}
	d.Freeze()
	out.Root = root
	return out, nil
}

// EvalPaths evaluates relative projection paths over a context node
// sequence, returning the union of their results in document order. root()
// jumps to tree roots; id()/idref() conservatively select every element
// carrying an ID (resp. IDREF) attribute in the tree, per §VI-B.
func EvalPaths(ctx []*xdm.Node, paths PathSet) []*xdm.Node {
	var out []*xdm.Node
	for _, p := range paths {
		cur := append([]*xdm.Node(nil), ctx...)
		for _, st := range p.Steps {
			var next []*xdm.Node
			ordered := false
			switch st.Fn {
			case FnRoot:
				for _, n := range cur {
					next = append(next, n.RootNode())
				}
			case FnID:
				next = append(next, idBearingElements(cur, []string{"id", "xml:id"})...)
			case FnIDRef:
				next = append(next, idBearingElements(cur, []string{"idref", "idrefs"})...)
			default:
				// The evaluator's streaming precondition applies here too:
				// when the context is ordered and subtree-disjoint and the
				// axis only descends, per-node segments concatenate already
				// strictly increasing, so the sort pass can be skipped.
				// Streamed responses project every chunk independently, which
				// puts this loop on the per-frame hot path.
				ordered = downwardAxis(st.Axis) && xdm.OrderedDisjointNodes(cur)
				for _, n := range cur {
					next = append(next, eval.AxisNodes(n, st.Axis, st.Test)...)
				}
			}
			if ordered {
				cur = next
				continue
			}
			cur = xdm.SortDocOrder(next)
		}
		out = append(out, cur...)
	}
	return xdm.SortDocOrder(out)
}

// downwardAxis reports whether the axis selects only nodes within the
// context node's subtree (attributes included): the per-context-node result
// segments of such a step inherit document order from an ordered-disjoint
// context.
func downwardAxis(a xq.Axis) bool {
	switch a {
	case xq.AxisChild, xq.AxisAttribute, xq.AxisSelf, xq.AxisDescendant, xq.AxisDescendantOrSelf:
		return true
	}
	return false
}

func idBearingElements(ctx []*xdm.Node, attrNames []string) []*xdm.Node {
	var out []*xdm.Node
	seenRoot := map[*xdm.Node]bool{}
	for _, n := range ctx {
		root := n.RootNode()
		if seenRoot[root] {
			continue
		}
		seenRoot[root] = true
		root.WalkDescendants(func(m *xdm.Node) bool {
			for _, an := range attrNames {
				if m.Attr(an) != nil {
					out = append(out, m)
					return true
				}
			}
			return true
		})
	}
	return out
}

// SplitSubtreePaths partitions a path set into "returned-like" paths (whose
// last step keeps the whole subtree: descendant-or-self::node() widenings
// added for atomization/copying) and plain used paths. The message layer
// ships them as returned-path vs used-path elements.
func SplitSubtreePaths(ps PathSet) (withSubtree, plain PathSet) {
	for _, p := range ps {
		if n := len(p.Steps); n > 0 {
			last := p.Steps[n-1]
			if last.Fn == FnNone && last.Axis == xq.AxisDescendantOrSelf &&
				last.Test.Kind == xq.TestAnyNode {
				withSubtree = withSubtree.Add(Path{Doc: p.Doc, Steps: p.Steps[:n-1]})
				continue
			}
		}
		plain = plain.Add(p)
	}
	return withSubtree, plain
}
