// Package projection implements the extended XML projection machinery of
// §VI: the ProjectionPath grammar of Table V (with reverse/horizontal axes
// and the root()/id()/idref() pseudo-steps), compile-time path analysis with
// the DOC1/DOC2/ROOT/ID rules, relative-suffix extraction (allSuffixes), the
// runtime projection algorithm (Algorithm 1), and a compile-time projection
// baseline in the style of Marian & Siméon used by the Figure 10/11
// experiments.
//
// The runtime technique composes with incremental (chunked) response
// streaming: every stream frame is self-contained, so RuntimeProject runs
// per chunk over just that chunk's items, and its projected fragment ships
// inside the frame. Peak projection state is therefore bounded by a frame's
// item budget, not by a call's full result; EvalPaths keeps the per-frame
// cost down by skipping the document-order sort whenever a step's context is
// ordered and subtree-disjoint (the evaluator's streaming precondition).
package projection

import (
	"fmt"
	"strings"

	"distxq/internal/xq"
)

// FnKind marks the built-in-function pseudo-steps of Table V.
type FnKind uint8

// Pseudo-step kinds.
const (
	FnNone FnKind = iota
	FnRoot
	FnID
	FnIDRef
)

func (k FnKind) String() string {
	switch k {
	case FnRoot:
		return "root()"
	case FnID:
		return "id()"
	case FnIDRef:
		return "idref()"
	}
	return ""
}

// PStep is one step of a projection path: either an axis step or a built-in
// function pseudo-step (root()/id()/idref()).
type PStep struct {
	Axis xq.Axis
	Test xq.NodeTest
	Fn   FnKind
}

// String renders the step in Table V syntax.
func (s PStep) String() string {
	if s.Fn != FnNone {
		return s.Fn.String()
	}
	return fmt.Sprintf("%s::%s", s.Axis, s.Test)
}

// Path is a projection path. Absolute paths carry a Doc prefix
// doc(uri::vertex); relative paths (suffixes applied to a runtime context
// sequence) have Doc == nil.
type Path struct {
	Doc   *DocID
	Steps []PStep
}

// DocID identifies one fn:doc() application: the URI (or "*" for computed
// URIs) tagged with the d-graph vertex where the document is opened, exactly
// the uri::vertex notation of §IV.
type DocID struct {
	URI    string
	Vertex int
}

// String renders doc("uri"::"v").
func (d DocID) String() string { return fmt.Sprintf("doc(%q::%q)", d.URI, fmt.Sprint(d.Vertex)) }

// Wildcard reports whether the document URI is computed (doc(*)).
func (d DocID) Wildcard() bool { return d.URI == "*" }

// String renders the path in the grammar of Table V.
func (p Path) String() string {
	var sb strings.Builder
	if p.Doc != nil {
		sb.WriteString(p.Doc.String())
	}
	for i, s := range p.Steps {
		if i > 0 || p.Doc != nil {
			sb.WriteString("/")
		}
		sb.WriteString(s.String())
	}
	if p.Doc == nil && len(p.Steps) == 0 {
		sb.WriteString("self::node()")
	}
	return sb.String()
}

// Equal reports structural equality.
func (p Path) Equal(q Path) bool {
	if (p.Doc == nil) != (q.Doc == nil) {
		return false
	}
	if p.Doc != nil && *p.Doc != *q.Doc {
		return false
	}
	if len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i] != q.Steps[i] {
			return false
		}
	}
	return true
}

// Append returns p extended with a step.
func (p Path) Append(s PStep) Path {
	steps := make([]PStep, 0, len(p.Steps)+1)
	steps = append(steps, p.Steps...)
	steps = append(steps, s)
	return Path{Doc: p.Doc, Steps: steps}
}

// HasPrefix reports whether q is a step-prefix of p (same Doc).
func (p Path) HasPrefix(q Path) bool {
	if (p.Doc == nil) != (q.Doc == nil) {
		return false
	}
	if p.Doc != nil && *p.Doc != *q.Doc {
		return false
	}
	if len(q.Steps) > len(p.Steps) {
		return false
	}
	for i := range q.Steps {
		if p.Steps[i] != q.Steps[i] {
			return false
		}
	}
	return true
}

// Suffix returns the relative path of p after the prefix q.
func (p Path) Suffix(q Path) Path {
	return Path{Steps: append([]PStep(nil), p.Steps[len(q.Steps):]...)}
}

// PathSet is a set of projection paths.
type PathSet []Path

// Add inserts a path if not already present.
func (ps PathSet) Add(p Path) PathSet {
	for _, q := range ps {
		if q.Equal(p) {
			return ps
		}
	}
	return append(ps, p)
}

// Union merges path sets.
func (ps PathSet) Union(qs PathSet) PathSet {
	out := ps
	for _, q := range qs {
		out = out.Add(q)
	}
	return out
}

// Docs returns the distinct document identities mentioned by the set.
func (ps PathSet) Docs() []DocID {
	var out []DocID
	seen := map[DocID]bool{}
	for _, p := range ps {
		if p.Doc != nil && !seen[*p.Doc] {
			seen[*p.Doc] = true
			out = append(out, *p.Doc)
		}
	}
	return out
}

// String renders the set for golden tests.
func (ps PathSet) String() string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// AllSuffixes implements allSuffixes(Pathsi, Pathsj) of §VI-B: the relative
// suffixes of paths in pj with respect to prefixes in pi.
func AllSuffixes(pi, pj PathSet) PathSet {
	var out PathSet
	for _, p := range pj {
		for _, q := range pi {
			if p.HasPrefix(q) {
				out = out.Add(p.Suffix(q))
			}
		}
	}
	return out
}

// ParsePath parses the Table V grammar, e.g.
// `doc("u"::"3")/child::a/parent::b/root()` or a relative
// `child::seller/attribute::person`.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	var p Path
	if strings.HasPrefix(s, "doc(") {
		end := strings.Index(s, ")")
		if end < 0 {
			return Path{}, fmt.Errorf("projection: unterminated doc( in %q", s)
		}
		inner := s[4:end]
		sep := strings.Index(inner, "::")
		if sep < 0 {
			return Path{}, fmt.Errorf("projection: doc id needs uri::vertex in %q", s)
		}
		uri := strings.Trim(inner[:sep], `"`)
		var vertex int
		if _, err := fmt.Sscanf(strings.Trim(inner[sep+2:], `"`), "%d", &vertex); err != nil {
			return Path{}, fmt.Errorf("projection: bad vertex id in %q", s)
		}
		p.Doc = &DocID{URI: uri, Vertex: vertex}
		s = strings.TrimPrefix(s[end+1:], "/")
	}
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		switch part {
		case "root()":
			p.Steps = append(p.Steps, PStep{Fn: FnRoot})
			continue
		case "id()":
			p.Steps = append(p.Steps, PStep{Fn: FnID})
			continue
		case "idref()":
			p.Steps = append(p.Steps, PStep{Fn: FnIDRef})
			continue
		case "":
			return Path{}, fmt.Errorf("projection: empty step in %q", s)
		}
		sep := strings.Index(part, "::")
		if sep < 0 {
			return Path{}, fmt.Errorf("projection: step %q lacks axis", part)
		}
		axis, ok := xq.ParseAxis(part[:sep])
		if !ok {
			return Path{}, fmt.Errorf("projection: unknown axis in %q", part)
		}
		testStr := part[sep+2:]
		var test xq.NodeTest
		switch testStr {
		case "*":
			test = xq.NodeTest{Kind: xq.TestWildcard}
		case "node()":
			test = xq.NodeTest{Kind: xq.TestAnyNode}
		case "text()":
			test = xq.NodeTest{Kind: xq.TestText}
		case "comment()":
			test = xq.NodeTest{Kind: xq.TestComment}
		default:
			test = xq.NodeTest{Kind: xq.TestName, Name: testStr}
		}
		p.Steps = append(p.Steps, PStep{Axis: axis, Test: test})
	}
	return p, nil
}
