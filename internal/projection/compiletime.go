package projection

import (
	"distxq/internal/xdm"
)

// CompileTimeProject is the Marian & Siméon-style baseline used by the
// Figure 10/11 experiments: absolute projection paths (no predicates, no
// runtime context) are evaluated from the document root to over-estimate the
// used and returned node sets, which then feed the same projection builder.
// Because compile-time paths cannot express selections, the node sets — and
// therefore the projected documents — are much larger than what the runtime
// technique produces.
func CompileTimeProject(usedPaths, returnedPaths PathSet, doc *xdm.Document, opt Options) (*Projected, error) {
	ctx := []*xdm.Node{doc.Root}
	u := EvalPaths(ctx, stripDocs(usedPaths))
	r := EvalPaths(ctx, stripDocs(returnedPaths))
	return Project(u, r, doc, opt)
}

// RuntimeProject evaluates relative paths against a materialized runtime
// context sequence (e.g. the values about to be serialized into a message)
// and projects the document: the §VI-B runtime technique. The context nodes
// themselves are always part of the returned set — they are the values being
// shipped.
func RuntimeProject(ctx []*xdm.Node, usedPaths, returnedPaths PathSet, doc *xdm.Document, opt Options) (*Projected, error) {
	u := EvalPaths(ctx, usedPaths)
	r := EvalPaths(ctx, returnedPaths)
	r = xdm.SortDocOrder(append(r, ctx...))
	return Project(u, r, doc, opt)
}

// stripDocs drops the doc(...) prefixes so the steps apply from a document
// root context.
func stripDocs(ps PathSet) PathSet {
	var out PathSet
	for _, p := range ps {
		out = out.Add(Path{Steps: p.Steps})
	}
	return out
}
