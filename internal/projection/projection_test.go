package projection

import (
	"strings"
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// fig6Doc builds the tree of Figure 6(a):
// a(b(c(d(e,f)), g(h), i, j, k(l,m)), n(o)) — j is a leaf sibling of k (the
// paper's trace never adds j to D′).
const fig6XML = `<a><b><c><d><e/><f/></d></c><g><h/></g><i/><j/><k><l/><m/></k></b><n><o/></n></a>`

func findElem(d *xdm.Document, name string) *xdm.Node {
	var res *xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Kind == xdm.ElementNode && n.Name == name {
			res = n
			return false
		}
		return true
	})
	return res
}

func TestAlgorithm1Figure6(t *testing.T) {
	d := xdm.MustParseString(fig6XML, "fig6.xml")
	U := []*xdm.Node{findElem(d, "i")}
	R := []*xdm.Node{findElem(d, "d"), findElem(d, "k")}
	p, err := Project(U, R, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected D′ (Figure 6(b)): b(c(d(e,f)), i, k(l,m)) — a removed by
	// post-processing, g/h, j, n/o pruned.
	got := xdm.SerializeString(p.Root)
	want := `<b><c><d><e/><f/></d></c><i/><k><l/><m/></k></b>`
	if got != want {
		t.Errorf("Figure 6 projection:\n got  %s\n want %s", got, want)
	}
	if p.Root.Name != "b" {
		t.Errorf("post-processed root = %s, want b", p.Root.Name)
	}
	// Mapping translates the originals to kept copies.
	if p.Map[findElem(d, "d")] == nil || p.Map[findElem(d, "i")] == nil {
		t.Error("projection map missing entries for projection nodes")
	}
	if p.Map[findElem(d, "o")] != nil {
		t.Error("pruned node o must not be mapped")
	}
	if !p.Doc.Frozen() {
		t.Error("projected document must be frozen")
	}
}

func TestProjectUsedKeepsNodeOnly(t *testing.T) {
	d := xdm.MustParseString(`<r><x><deep><tree/></deep></x><y/></r>`, "u.xml")
	U := []*xdm.Node{findElem(d, "x")}
	p, err := Project(U, nil, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := xdm.SerializeString(p.Root)
	if got != `<x/>` {
		t.Errorf("used-only projection = %s, want <x/>", got)
	}
}

func TestProjectReturnedKeepsSubtree(t *testing.T) {
	d := xdm.MustParseString(`<r><x><deep><tree/></deep></x><y/></r>`, "r.xml")
	R := []*xdm.Node{findElem(d, "x")}
	p, err := Project(nil, R, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeString(p.Root); got != `<x><deep><tree/></deep></x>` {
		t.Errorf("returned projection = %s", got)
	}
}

func TestProjectAttributes(t *testing.T) {
	d := xdm.MustParseString(`<r><p id="1" other="x"><sub/></p><p id="2" other="y"/></r>`, "a.xml")
	var ids []*xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		if a := n.Attr("id"); a != nil {
			ids = append(ids, a)
		}
		return true
	})
	if len(ids) != 2 {
		t.Fatal("setup: want 2 id attrs")
	}
	p, err := Project(nil, ids, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := xdm.SerializeString(p.Root)
	want := `<r><p id="1"/><p id="2"/></r>`
	if got != want {
		t.Errorf("attribute projection = %s, want %s", got, want)
	}
	if p.Map[ids[0]] == nil || p.Map[ids[0]].Kind != xdm.AttributeNode {
		t.Error("attribute mapping missing")
	}
}

func TestProjectKeepAllAttributesOption(t *testing.T) {
	d := xdm.MustParseString(`<r><p id="1" must="keep"/></r>`, "ka.xml")
	p1 := findElem(d, "p")
	got, err := Project([]*xdm.Node{p1}, nil, d, Options{KeepAllAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := xdm.SerializeString(got.Root); s != `<p id="1" must="keep"/>` {
		t.Errorf("KeepAllAttributes = %s", s)
	}
	got2, err := Project([]*xdm.Node{p1}, nil, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := xdm.SerializeString(got2.Root); s != `<p/>` {
		t.Errorf("default attr pruning = %s", s)
	}
}

func TestProjectSchemaKeep(t *testing.T) {
	d := xdm.MustParseString(`<r><p><mandatory/><optional/></p></r>`, "sk.xml")
	keep := func(n *xdm.Node) bool { return n.Name == "mandatory" }
	p, err := Project([]*xdm.Node{findElem(d, "p")}, nil, d, Options{SchemaKeep: keep})
	if err != nil {
		t.Fatal(err)
	}
	if s := xdm.SerializeString(p.Root); s != `<p><mandatory/></p>` {
		t.Errorf("schema-aware projection = %s", s)
	}
}

func TestProjectWholeDocReturned(t *testing.T) {
	d := xdm.MustParseString(`<a><b/><c/></a>`, "w.xml")
	p, err := Project(nil, []*xdm.Node{d.DocElem()}, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := xdm.SerializeString(p.Root); s != `<a><b/><c/></a>` {
		t.Errorf("whole doc = %s", s)
	}
}

func TestProjectErrorWrongDoc(t *testing.T) {
	d1 := xdm.MustParseString(`<a/>`, "1.xml")
	d2 := xdm.MustParseString(`<b/>`, "2.xml")
	if _, err := Project([]*xdm.Node{d2.DocElem()}, nil, d1, Options{}); err == nil {
		t.Error("cross-document projection nodes must error")
	}
}

func TestPathParsePrint(t *testing.T) {
	for _, s := range []string{
		`doc("u.xml"::"3")/child::a/child::b`,
		`doc("*"::"7")/descendant::open_auction`,
		`child::seller/attribute::person`,
		`parent::a`,
		`ancestor-or-self::node()`,
		`child::x/root()`,
		`descendant-or-self::node()/id()`,
		`child::*/child::text()`,
	} {
		p, err := ParsePath(s)
		if err != nil {
			t.Errorf("ParsePath(%q): %v", s, err)
			continue
		}
		if p.String() != s {
			t.Errorf("round trip: %q → %q", s, p.String())
		}
	}
}

func TestPathParseErrors(t *testing.T) {
	for _, s := range []string{`doc("u.xml")/a`, `doc(`, `child-a`, `bogus::x`, `a//b`} {
		if _, err := ParsePath(s); err == nil {
			t.Errorf("ParsePath(%q): expected error", s)
		}
	}
}

func TestAllSuffixes(t *testing.T) {
	docA := &DocID{URI: "a.xml", Vertex: 1}
	base, _ := ParsePath(`child::person`)
	base.Doc = docA
	longer := base.Append(PStep{Axis: xq.AxisAttribute, Test: xq.NodeTest{Kind: xq.TestName, Name: "id"}})
	other, _ := ParsePath(`child::unrelated`)
	out := AllSuffixes(PathSet{base}, PathSet{longer, other})
	if len(out) != 1 || out[0].String() != "attribute::id" {
		t.Errorf("AllSuffixes = %s", out)
	}
	// Exact match yields the empty relative path (self).
	out2 := AllSuffixes(PathSet{base}, PathSet{base})
	if len(out2) != 1 || len(out2[0].Steps) != 0 {
		t.Errorf("exact suffix = %s", out2)
	}
}

func TestAnalyzeDocRules(t *testing.T) {
	q := xq.MustParseQuery(`doc("d.xml")/child::a/child::b`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Returned[q.Body]
	if len(r) != 1 {
		t.Fatalf("returned = %s", r)
	}
	if r[0].Doc == nil || r[0].Doc.URI != "d.xml" {
		t.Errorf("doc id = %+v", r[0].Doc)
	}
	if got := pathStepsString(r[0]); got != "child::a/child::b" {
		t.Errorf("steps = %s", got)
	}
	// The traversed prefixes are used.
	u := a.Used[q.Body]
	if len(u) < 2 {
		t.Errorf("used = %s", u)
	}
}

func TestAnalyzeComputedDocIsWildcard(t *testing.T) {
	q := xq.MustParseQuery(`doc(concat("d",".xml"))/child::a`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Returned[q.Body]
	if len(r) != 1 || r[0].Doc == nil || !r[0].Doc.Wildcard() {
		t.Errorf("computed doc should be wildcard: %s", r)
	}
}

func TestAnalyzeRootAndID(t *testing.T) {
	q := xq.MustParseQuery(`root(doc("d.xml")/child::a/child::b)`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Returned[q.Body]
	if len(r) != 1 || !strings.HasSuffix(r[0].String(), "root()") {
		t.Errorf("ROOT rule: %s", r)
	}

	q2 := xq.MustParseQuery(`id("i1", doc("d.xml"))`)
	if err := xq.Normalize(q2); err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(q2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := a2.Returned[q2.Body]
	if len(r2) != 1 || !strings.HasSuffix(r2[0].String(), "id()") {
		t.Errorf("ID rule: %s", r2)
	}
}

func TestAnalyzeFLWORPredicatePaths(t *testing.T) {
	// The benchmark-query shape: selection via if inside for.
	q := xq.MustParseQuery(`
		let $s := doc("x.xml")/child::site/child::people/child::person
		return for $x in $s return
		  if ($x/descendant::age < 40) then $x else ()`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Returned[q.Body]
	if len(r) != 1 || pathStepsString(r[0]) != "child::site/child::people/child::person" {
		t.Errorf("returned = %s", r)
	}
	// age must appear in used paths with subtree widening (atomized).
	var foundAge bool
	for _, p := range a.Used[q.Body] {
		if strings.Contains(p.String(), "descendant::age/descendant-or-self::node()") {
			foundAge = true
		}
	}
	if !foundAge {
		t.Errorf("used = %s", a.Used[q.Body])
	}
}

func TestAnalyzeXRPCRelativePaths(t *testing.T) {
	// fcn2 style: remote body uses $param/child::id; results /child::grade.
	q := xq.MustParseQuery(`
	declare function fcn2($p as node()*) as node()*
	{ for $e in doc("xrpc://B/c.xml")/child::enroll/child::exam return
	  if ($e/attribute::id = $p/child::id) then $e else () };
	declare function fcn1() as node()*
	{ doc("xrpc://A/s.xml")/child::people/child::person };
	let $t := execute at {"A"} {fcn1()} return
	(execute at {"B"} {fcn2($t)})/child::grade`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second XRPCExpr (target "B").
	var xB *xq.XRPCExpr
	xq.Walk(q.Body, func(e xq.Expr) bool {
		if x, ok := e.(*xq.XRPCExpr); ok {
			if lit, isLit := x.Target.(*xq.Literal); isLit && lit.Val.S == "B" {
				xB = x
			}
		}
		return true
	})
	if xB == nil {
		t.Fatal("no XRPC expr targeting B")
	}
	rel := a.Relative(xB, q.Body)
	if len(rel.ParamUsed) != 1 {
		t.Fatalf("param count = %d", len(rel.ParamUsed))
	}
	// The parameter is used via child::id (atomized → subtree widened).
	if !strings.Contains(rel.ParamUsed[0].String(), "child::id") {
		t.Errorf("param used = %s", rel.ParamUsed[0])
	}
	// The result is navigated with child::grade by the caller.
	if !strings.Contains(rel.ResultUsed.String()+rel.ResultReturn.String(), "child::grade") {
		t.Errorf("result paths: used=%s returned=%s", rel.ResultUsed, rel.ResultReturn)
	}
}

func TestRuntimeVsCompileTimePrecision(t *testing.T) {
	// Compile-time projection keeps all persons; runtime keeps only those
	// matching the (runtime-evaluated) selection — the §VII claim.
	xml := `<site><people>` +
		`<person id="p1"><age>30</age><desc>aaaa</desc></person>` +
		`<person id="p2"><age>50</age><desc>bbbb</desc></person>` +
		`<person id="p3"><age>20</age><desc>cccc</desc></person>` +
		`</people></site>`
	d := xdm.MustParseString(xml, "xmk.xml")
	personPath, _ := ParsePath(`child::site/child::people/child::person/descendant-or-self::node()`)
	agePath, _ := ParsePath(`child::site/child::people/child::person/child::age/descendant-or-self::node()`)
	ct, err := CompileTimeProject(PathSet{agePath}, PathSet{personPath}, d, Options{KeepAllAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	// Runtime: the selection already happened; only person p2 ships.
	var selected []*xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Name == "person" && n.Attr("id").Text == "p2" {
			selected = append(selected, n)
		}
		return true
	})
	rt, err := RuntimeProject(selected, nil, nil, d, Options{KeepAllAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	ctSize := xdm.SerializedSize(ct.Root)
	rtSize := xdm.SerializedSize(rt.Root)
	if rtSize >= ctSize {
		t.Errorf("runtime projection (%d bytes) should be smaller than compile-time (%d bytes)", rtSize, ctSize)
	}
	if !strings.Contains(xdm.SerializeString(rt.Root), `id="p2"`) {
		t.Errorf("runtime projection lost the selected person: %s", xdm.SerializeString(rt.Root))
	}
}

func TestSplitSubtreePaths(t *testing.T) {
	p1, _ := ParsePath(`child::a/descendant-or-self::node()`)
	p2, _ := ParsePath(`child::b`)
	withSub, plain := SplitSubtreePaths(PathSet{p1, p2})
	if len(withSub) != 1 || withSub[0].String() != "child::a" {
		t.Errorf("withSubtree = %s", withSub)
	}
	if len(plain) != 1 || plain[0].String() != "child::b" {
		t.Errorf("plain = %s", plain)
	}
}

func TestEvalPathsRootAndID(t *testing.T) {
	d := xdm.MustParseString(`<db><item id="i1"/><ref idref="i1"/></db>`, "ei.xml")
	item := findElem(d, "item")
	rootP, _ := ParsePath(`root()`)
	got := EvalPaths([]*xdm.Node{item}, PathSet{rootP})
	if len(got) != 1 || got[0] != d.Root {
		t.Errorf("root() eval = %v", got)
	}
	idP, _ := ParsePath(`id()`)
	ids := EvalPaths([]*xdm.Node{item}, PathSet{idP})
	if len(ids) != 1 || ids[0].Name != "item" {
		t.Errorf("id() eval = %v", ids)
	}
	idrefP, _ := ParsePath(`idref()`)
	refs := EvalPaths([]*xdm.Node{item}, PathSet{idrefP})
	if len(refs) != 1 || refs[0].Name != "ref" {
		t.Errorf("idref() eval = %v", refs)
	}
}

func pathStepsString(p Path) string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// TestEvalPathsOrderedFastPath: the downward-axis fast path (sort skipped
// when the step context is ordered and subtree-disjoint) must produce the
// same node sets as contexts that force the general sorting path — nested,
// duplicated, and reversed contexts included.
func TestEvalPathsOrderedFastPath(t *testing.T) {
	d := xdm.MustParseString(
		`<lib><book id="b0"><title>t0</title><pages>100</pages></book>`+
			`<book id="b1"><title>t1</title><pages>200</pages></book>`+
			`<book id="b2"><title>t2</title></book></lib>`, "fp.xml")
	var books []*xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		if n.Kind == xdm.ElementNode && n.Name == "book" {
			books = append(books, n)
		}
		return true
	})
	paths := []string{
		`child::title`,
		`descendant-or-self::node()`,
		`attribute::id`,
		`child::title/parent::node()`, // reverse step disables the fast path mid-path
	}
	serialize := func(nodes []*xdm.Node) string {
		var parts []string
		for _, n := range nodes {
			parts = append(parts, xdm.SerializeString(n))
		}
		return strings.Join(parts, "|")
	}
	for _, ps := range paths {
		p, err := ParsePath(ps)
		if err != nil {
			t.Fatal(err)
		}
		// Ordered-disjoint context: fast path applies on the first step.
		want := serialize(EvalPaths([]*xdm.Node{books[0], books[1], books[2]}, PathSet{p}))
		// Reversed and duplicated contexts force the general path.
		for _, ctx := range [][]*xdm.Node{
			{books[2], books[1], books[0]},
			{books[0], books[0], books[1], books[2], books[2]},
		} {
			if got := serialize(EvalPaths(ctx, PathSet{p})); got != want {
				t.Errorf("path %s ctx %v: fast path and general path disagree:\n got %q\nwant %q", ps, ctx, got, want)
			}
		}
	}
}
