package projection

import (
	"fmt"

	"distxq/internal/xq"
)

// Analysis holds per-expression path annotations:
// Env(vi) ⊢ Expr ⇒ Returned using Used (§VI-A).
type Analysis struct {
	// Returned maps an expression vertex to its returned paths (nodes the
	// expression may return; loading preserves their descendants).
	Returned map[xq.Expr]PathSet
	// Used maps an expression vertex to its used paths (nodes needed but not
	// returned; loading preserves the node itself only).
	Used map[xq.Expr]PathSet
	// Vertex assigns stable pre-order ids, used to tag fn:doc applications
	// (the uri::vertex notation) and element constructors (doc(vi::vi)).
	Vertex map[xq.Expr]int
	// ParamReturned records, for every XRPCParam of every XRPCExpr, the
	// returned paths of the referenced outer variable — R(vparam) in §VI-B.
	ParamReturned map[*xq.XRPCParam]PathSet

	funcs   map[string]*xq.FuncDecl
	nextVid int
}

// env carries variable bindings (name → returned paths of the binding) and
// the context-item paths used inside predicates.
type env struct {
	vars map[string]PathSet
	ctx  PathSet
}

func (e env) bind(name string, ps PathSet) env {
	nv := make(map[string]PathSet, len(e.vars)+1)
	for k, v := range e.vars {
		nv[k] = v
	}
	nv[name] = ps
	return env{vars: nv, ctx: e.ctx}
}

func (e env) withCtx(ps PathSet) env { return env{vars: e.vars, ctx: ps} }

// Analyze runs path analysis over a whole query. Declared functions are
// analyzed at their call sites with the actual argument paths (the analysis
// is monovariant per call, which is precise and terminates because shipped
// functions are non-recursive).
func Analyze(q *xq.Query) (*Analysis, error) {
	a := &Analysis{
		Returned:      map[xq.Expr]PathSet{},
		Used:          map[xq.Expr]PathSet{},
		Vertex:        map[xq.Expr]int{},
		ParamReturned: map[*xq.XRPCParam]PathSet{},
		funcs:         map[string]*xq.FuncDecl{},
	}
	for _, f := range q.Funcs {
		a.funcs[fmt.Sprintf("%s/%d", f.Name, len(f.Params))] = f
	}
	_, _, err := a.analyze(q.Body, env{vars: map[string]PathSet{}}, map[string]bool{})
	return a, err
}

// AnalyzeExpr analyzes a standalone expression with given parameter paths
// (used by the XRPC server to derive response projections for a shipped
// function body).
func AnalyzeExpr(body xq.Expr, params map[string]PathSet) (*Analysis, error) {
	a := &Analysis{
		Returned:      map[xq.Expr]PathSet{},
		Used:          map[xq.Expr]PathSet{},
		Vertex:        map[xq.Expr]int{},
		ParamReturned: map[*xq.XRPCParam]PathSet{},
		funcs:         map[string]*xq.FuncDecl{},
	}
	vars := map[string]PathSet{}
	for k, v := range params {
		vars[k] = v
	}
	_, _, err := a.analyze(body, env{vars: vars}, map[string]bool{})
	return a, err
}

func (a *Analysis) vid(e xq.Expr) int {
	if v, ok := a.Vertex[e]; ok {
		return v
	}
	a.nextVid++
	a.Vertex[e] = a.nextVid
	return a.nextVid
}

// subtreeOf widens every path to keep the full subtree below it; used when
// node content is atomized or copied.
func subtreeOf(ps PathSet) PathSet {
	var out PathSet
	for _, p := range ps {
		out = out.Add(p.Append(PStep{Axis: xq.AxisDescendantOrSelf, Test: xq.NodeTest{Kind: xq.TestAnyNode}}))
	}
	return out
}

// analyze returns (returned, used) for e and records them.
func (a *Analysis) analyze(e xq.Expr, en env, inProgress map[string]bool) (PathSet, PathSet, error) {
	r, u, err := a.analyze1(e, en, inProgress)
	if err != nil {
		return nil, nil, err
	}
	if e != nil {
		a.Returned[e] = a.Returned[e].Union(r)
		a.Used[e] = a.Used[e].Union(u)
	}
	return r, u, nil
}

func (a *Analysis) analyze1(e xq.Expr, en env, inProgress map[string]bool) (PathSet, PathSet, error) {
	switch v := e.(type) {
	case nil, *xq.Literal:
		return nil, nil, nil
	case *xq.VarRef:
		return en.vars[v.Name], nil, nil
	case *xq.ContextItem:
		return en.ctx, nil, nil
	case *xq.RootExpr:
		var r PathSet
		for _, p := range en.ctx {
			r = r.Add(p.Append(PStep{Fn: FnRoot}))
		}
		return r, nil, nil
	case *xq.SeqExpr:
		var r, u PathSet
		for _, it := range v.Items {
			ri, ui, err := a.analyze(it, en, inProgress)
			if err != nil {
				return nil, nil, err
			}
			r, u = r.Union(ri), u.Union(ui)
		}
		return r, u, nil
	case *xq.ForExpr:
		rin, uin, err := a.analyze(v.In, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		en2 := en.bind(v.Var, rin)
		u := uin.Union(rin) // iterated nodes are at least used
		for _, spec := range v.OrderBy {
			rk, uk, err := a.analyze(spec.Key, en2, inProgress)
			if err != nil {
				return nil, nil, err
			}
			u = u.Union(subtreeOf(rk)).Union(uk) // keys are atomized
		}
		rret, uret, err := a.analyze(v.Return, en2, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return rret, u.Union(uret), nil
	case *xq.LetExpr:
		rb, ub, err := a.analyze(v.Bind, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		rret, uret, err := a.analyze(v.Return, en.bind(v.Var, rb), inProgress)
		if err != nil {
			return nil, nil, err
		}
		return rret, ub.Union(uret), nil
	case *xq.IfExpr:
		rc, uc, err := a.analyze(v.Cond, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		rt, ut, err := a.analyze(v.Then, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		re, ue, err := a.analyze(v.Else, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		u := subtreeOf(rc).Union(uc).Union(ut).Union(ue)
		return rt.Union(re), u, nil
	case *xq.QuantifiedExpr:
		rin, uin, err := a.analyze(v.In, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		rs, us, err := a.analyze(v.Satisfies, en.bind(v.Var, rin), inProgress)
		if err != nil {
			return nil, nil, err
		}
		return nil, uin.Union(rin).Union(subtreeOf(rs)).Union(us), nil
	case *xq.TypeswitchExpr:
		rop, uop, err := a.analyze(v.Operand, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		r := PathSet(nil)
		u := uop.Union(rop)
		for _, c := range v.Cases {
			en2 := en
			if c.Var != "" {
				en2 = en.bind(c.Var, rop)
			}
			rc, ucs, err := a.analyze(c.Return, en2, inProgress)
			if err != nil {
				return nil, nil, err
			}
			r, u = r.Union(rc), u.Union(ucs)
		}
		en2 := en
		if v.DefaultVar != "" {
			en2 = en.bind(v.DefaultVar, rop)
		}
		rd, ud, err := a.analyze(v.Default, en2, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return r.Union(rd), u.Union(ud), nil
	case *xq.CompareExpr, *xq.ArithExpr, *xq.LogicExpr:
		var r, u PathSet
		for _, c := range xq.Children(e) {
			rc, uc, err := a.analyze(c, en, inProgress)
			if err != nil {
				return nil, nil, err
			}
			r, u = r.Union(subtreeOf(rc)), u.Union(uc)
		}
		return nil, r.Union(u), nil
	case *xq.UnaryExpr:
		rc, uc, err := a.analyze(v.Operand, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return nil, subtreeOf(rc).Union(uc), nil
	case *xq.NodeSetExpr:
		rl, ul, err := a.analyze(v.Left, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		rr, ur, err := a.analyze(v.Right, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return rl.Union(rr), ul.Union(ur), nil
	case *xq.PathExpr:
		return a.analyzePath(v, en, inProgress)
	case *xq.ElemConstructor, *xq.AttrConstructor, *xq.TextConstructor, *xq.DocConstructor:
		vid := a.vid(e)
		var u PathSet
		for _, c := range xq.Children(e) {
			rc, uc, err := a.analyze(c, en, inProgress)
			if err != nil {
				return nil, nil, err
			}
			// Copied content needs its whole subtree preserved.
			u = u.Union(subtreeOf(rc)).Union(uc)
		}
		r := PathSet{}.Add(Path{Doc: &DocID{URI: fmt.Sprintf("v%d", vid), Vertex: vid}})
		return r, u, nil
	case *xq.FunCall:
		return a.analyzeCall(v, en, inProgress)
	case *xq.ExecuteAt:
		return nil, nil, fmt.Errorf("projection: unnormalized execute-at in analysis")
	case *xq.XRPCExpr:
		rt, ut, err := a.analyze(v.Target, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		en2 := env{vars: map[string]PathSet{}, ctx: nil}
		for _, p := range v.Params {
			pr := en.vars[p.Ref]
			a.ParamReturned[p] = a.ParamReturned[p].Union(pr)
			en2.vars[p.Name] = pr
		}
		rb, ub, err := a.analyze(v.Body, en2, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return rb, subtreeOf(rt).Union(ut).Union(ub), nil
	}
	return nil, nil, fmt.Errorf("projection: unsupported expression %T", e)
}

func (a *Analysis) analyzePath(pe *xq.PathExpr, en env, inProgress map[string]bool) (PathSet, PathSet, error) {
	var cur, u PathSet
	if pe.Input != nil {
		r0, u0, err := a.analyze(pe.Input, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		cur, u = r0, u0
	} else {
		cur = en.ctx
	}
	for _, st := range pe.Steps {
		if !st.Filter {
			u = u.Union(cur) // traversed context nodes are used
			var next PathSet
			for _, p := range cur {
				next = next.Add(p.Append(PStep{Axis: st.Axis, Test: st.Test}))
			}
			cur = next
		}
		for _, pred := range st.Preds {
			rp, up, err := a.analyze(pred, en.withCtx(cur), inProgress)
			if err != nil {
				return nil, nil, err
			}
			u = u.Union(subtreeOf(rp)).Union(up)
		}
	}
	return cur, u, nil
}

func (a *Analysis) analyzeCall(fc *xq.FunCall, en env, inProgress map[string]bool) (PathSet, PathSet, error) {
	argR := make([]PathSet, len(fc.Args))
	argU := make([]PathSet, len(fc.Args))
	for i, arg := range fc.Args {
		r, u, err := a.analyze(arg, en, inProgress)
		if err != nil {
			return nil, nil, err
		}
		argR[i], argU[i] = r, u
	}
	key := fmt.Sprintf("%s/%d", fc.Name, len(fc.Args))
	if fd, declared := a.funcs[key]; declared {
		if inProgress[key] {
			// Recursive user function: conservatively keep whole documents.
			var u PathSet
			for i := range fc.Args {
				u = u.Union(subtreeOf(argR[i])).Union(argU[i])
			}
			return nil, u, nil
		}
		inProgress[key] = true
		defer delete(inProgress, key)
		en2 := env{vars: map[string]PathSet{}}
		var u PathSet
		for i, p := range fd.Params {
			en2.vars[p.Name] = argR[i]
			u = u.Union(argU[i])
		}
		rb, ub, err := a.analyze(fd.Body, en2, inProgress)
		if err != nil {
			return nil, nil, err
		}
		return rb, u.Union(ub), nil
	}
	name := trimFn(fc.Name)
	switch name {
	case "doc", "collection":
		vid := a.vid(fc)
		uri := "*"
		if name == "doc" && len(fc.Args) == 1 {
			if lit, isLit := fc.Args[0].(*xq.Literal); isLit {
				uri = lit.Val.ItemString()
			}
		}
		// DOC1 for literal URIs, DOC2 (wildcard + args used) otherwise.
		var u PathSet
		if uri == "*" {
			for i := range fc.Args {
				u = u.Union(argR[i]).Union(argU[i])
			}
		}
		r := PathSet{}.Add(Path{Doc: &DocID{URI: uri, Vertex: vid}})
		return r, u, nil
	case "root":
		var r, u PathSet
		for i := range fc.Args {
			u = u.Union(argU[i])
			for _, p := range argR[i] {
				r = r.Add(p.Append(PStep{Fn: FnRoot}))
			}
		}
		return r, u, nil
	case "id", "idref":
		fn := FnID
		if name == "idref" {
			fn = FnIDRef
		}
		var r, u PathSet
		// First parameter contributes only string values (rule ID): used.
		u = u.Union(subtreeOf(argR[0])).Union(argU[0])
		src := 0
		if len(fc.Args) == 2 {
			src = 1
			u = u.Union(argU[1])
		}
		for _, p := range argR[src] {
			r = r.Add(p.Append(PStep{Fn: fn}))
		}
		return r, u, nil
	}
	// Generic builtin: result is atomic; all arguments are consumed.
	var u PathSet
	for i := range fc.Args {
		u = u.Union(subtreeOf(argR[i])).Union(argU[i])
	}
	return nil, u, nil
}

func trimFn(name string) string {
	if len(name) > 3 && name[:3] == "fn:" {
		return name[3:]
	}
	return name
}

// RelativePaths computes the §VI-B relative projections for an XRPCExpr x
// found in an analyzed query with root body `root`:
//
//	Urel(param) = allSuffixes(R(param), U(x))
//	Rrel(param) = allSuffixes(R(param), R(x.Body)) — how the body returns
//	              parts of the parameter
//	Urel(x)     = allSuffixes(R(x), U(root))
//	Rrel(x)     = allSuffixes(R(x), R(root))
type RelativePaths struct {
	ParamUsed     []PathSet // per parameter
	ParamReturned []PathSet
	ResultUsed    PathSet
	ResultReturn  PathSet
}

// Relative extracts the relative projection paths for x from the analysis
// of the query whose body is root.
func (a *Analysis) Relative(x *xq.XRPCExpr, root xq.Expr) RelativePaths {
	var rp RelativePaths
	bodyU := a.Used[x.Body]
	bodyR := a.Returned[x.Body]
	for _, p := range x.Params {
		pr := a.ParamReturned[p]
		rp.ParamUsed = append(rp.ParamUsed, AllSuffixes(pr, bodyU))
		rp.ParamReturned = append(rp.ParamReturned, AllSuffixes(pr, bodyR))
	}
	xr := a.Returned[x]
	rp.ResultUsed = AllSuffixes(xr, a.Used[root])
	rp.ResultReturn = AllSuffixes(xr, a.Returned[root])
	return rp
}
