package xq

import (
	"strings"
	"testing"
)

// roundTrip parses src, prints it, reparses, reprints and checks fixpoint.
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p1 := Print(e)
	e2, err := ParseExpr(p1)
	if err != nil {
		t.Fatalf("reparse %q (printed from %q): %v", p1, src, err)
	}
	p2 := Print(e2)
	if p1 != p2 {
		t.Fatalf("print not a fixpoint:\n 1: %s\n 2: %s", p1, p2)
	}
	return p1
}

func TestParseLiterals(t *testing.T) {
	for src, want := range map[string]string{
		`"hello"`:       `"hello"`,
		`'it''s'`:       `"it's"`,
		`"a""b"`:        `"a""b"`,
		`42`:            `42`,
		`3.25`:          `3.25`,
		`1e3`:           `1000`,
		`"&lt;tag&gt;"`: `"<tag>"`,
	} {
		got := roundTrip(t, src)
		if got != want {
			t.Errorf("Print(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestParsePaths(t *testing.T) {
	cases := map[string]string{
		"doc(\"d.xml\")/a/b":      `doc("d.xml")/child::a/child::b`,
		"$x//c":                   "$x/descendant-or-self::node()/child::c",
		"$x/@id":                  "$x/attribute::id",
		"$x/..":                   "$x/parent::node()",
		"$x/parent::a":            "$x/parent::a",
		"$x/ancestor-or-self::*":  "$x/ancestor-or-self::*",
		"$x/preceding-sibling::b": "$x/preceding-sibling::b",
		"$x/following::node()":    "$x/following::node()",
		"$x/text()":               "$x/child::text()",
		"$x/child::comment()":     "$x/child::comment()",
		"a/b":                     "./child::a/child::b",
		"@id":                     "./attribute::id",
		"$x/a[2]":                 "$x/child::a[2]",
		"$x/a[@id = 3]":           "$x/child::a[(./attribute::id) = 3]",
		"($x, $y)/a":              "($x, $y)/child::a",
		"/site/people":            "/child::site/child::people",
		"//person":                "/descendant-or-self::node()/child::person",
		".":                       ".",
		"./a":                     "./child::a",
	}
	for src, want := range cases {
		got := roundTrip(t, src)
		if got != want {
			t.Errorf("Print(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":                "1 + (2 * 3)",
		"1 * 2 + 3":                "(1 * 2) + 3",
		"1 - 2 - 3":                "(1 - 2) - 3",
		"8 div 4 mod 3":            "(8 div 4) mod 3",
		"$a = $b and $c < $d":      "($a = $b) and ($c < $d)",
		"$a and $b or $c":          "($a and $b) or $c",
		"$a is $b":                 "$a is $b",
		"$a << $b":                 "$a << $b",
		"$a >> $b":                 "$a >> $b",
		"$a union $b intersect $c": "$a union ($b intersect $c)",
		"$a | $b":                  "$a union $b",
		"$a except $b":             "$a except $b",
		"-$x + 1":                  "-$x + 1",
		"$a eq $b":                 "$a = $b",
		"count($x) * 2":            "count($x) * 2",
	}
	for src, want := range cases {
		got := roundTrip(t, src)
		if got != want {
			t.Errorf("Print(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestParseFLWORDesugar(t *testing.T) {
	e, err := ParseExpr(`for $x in $s where $x/age < 40 return $x`)
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := e.(*ForExpr)
	if !ok {
		t.Fatalf("want ForExpr, got %T", e)
	}
	ife, ok := fe.Return.(*IfExpr)
	if !ok {
		t.Fatalf("where should desugar to if, got %T", fe.Return)
	}
	if _, ok := ife.Else.(*SeqExpr); !ok {
		t.Fatal("else branch should be empty sequence")
	}
}

func TestParseFLWORMultiClause(t *testing.T) {
	e, err := ParseExpr(`for $x in $a, $y in $b let $z := $x return ($x, $y, $z)`)
	if err != nil {
		t.Fatal(err)
	}
	f1 := e.(*ForExpr)
	f2, ok := f1.Return.(*ForExpr)
	if !ok {
		t.Fatalf("nested for expected, got %T", f1.Return)
	}
	if _, ok := f2.Return.(*LetExpr); !ok {
		t.Fatalf("let expected under second for, got %T", f2.Return)
	}
}

func TestParseOrderBy(t *testing.T) {
	e, err := ParseExpr(`for $x in $s order by $x/name descending return $x`)
	if err != nil {
		t.Fatal(err)
	}
	fe := e.(*ForExpr)
	if len(fe.OrderBy) != 1 || !fe.OrderBy[0].Descending {
		t.Fatalf("order by not captured: %+v", fe.OrderBy)
	}
	roundTrip(t, `for $x in $s order by $x/name descending return $x`)
}

func TestParseIfTypeswitchQuantified(t *testing.T) {
	roundTrip(t, `if ($x) then 1 else 2`)
	roundTrip(t, `some $x in $s satisfies $x = 1`)
	roundTrip(t, `every $x in $s satisfies $x = 1`)
	e, err := ParseExpr(`typeswitch ($x) case $n as node() return $n case xs:string return 2 default $d return $d`)
	if err != nil {
		t.Fatal(err)
	}
	ts := e.(*TypeswitchExpr)
	if len(ts.Cases) != 2 || ts.Cases[0].Var != "n" || ts.Cases[1].Var != "" {
		t.Fatalf("typeswitch cases: %+v", ts.Cases)
	}
	if ts.DefaultVar != "d" {
		t.Fatalf("default var = %q", ts.DefaultVar)
	}
}

func TestParseConstructors(t *testing.T) {
	roundTrip(t, `element a {attribute id {"1"}, text {"hi"}}`)
	roundTrip(t, `element {concat("a","b")} {()}`)
	roundTrip(t, `document {element a {()}}`)

	e, err := ParseExpr(`<a x="1"><b/>hello<c>{$v}</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	el := e.(*ElemConstructor)
	if el.Name != "a" {
		t.Fatalf("name = %q", el.Name)
	}
	// content: attr x, element b, text hello... wait text is direct child of a
	if len(el.Content) != 4 {
		t.Fatalf("content len = %d: %#v", len(el.Content), el.Content)
	}
	if _, ok := el.Content[0].(*AttrConstructor); !ok {
		t.Error("first content should be attribute")
	}
	c := el.Content[3].(*ElemConstructor)
	if len(c.Content) != 1 {
		t.Fatalf("c content = %d", len(c.Content))
	}
	if _, ok := c.Content[0].(*VarRef); !ok {
		t.Error("enclosed expr should be VarRef")
	}
}

func TestParseDirectConstructorNested(t *testing.T) {
	e, err := ParseExpr(`<a><b><c/></b></a>/b`)
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(*PathExpr)
	if !ok {
		t.Fatalf("want path over constructor, got %T", e)
	}
	if _, ok := pe.Input.(*ElemConstructor); !ok {
		t.Fatalf("path input should be constructor, got %T", pe.Input)
	}
}

func TestParseDirectConstructorEntitiesAndEscapes(t *testing.T) {
	e, err := ParseExpr(`<a>x &amp; y {{z}}</a>`)
	if err != nil {
		t.Fatal(err)
	}
	el := e.(*ElemConstructor)
	txt := el.Content[0].(*TextConstructor).Content.(*Literal).Val.S
	if txt != "x & y {z}" {
		t.Errorf("text = %q", txt)
	}
}

func TestParseExecuteAt(t *testing.T) {
	q, err := ParseQuery(`
		declare function fcn($n as xs:string) as xs:boolean { $n = "x" };
		for $e in doc("e.xml")//emp
		return execute at { "example.org" } { fcn($e/@dept) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Funcs) != 1 || q.Funcs[0].Name != "fcn" {
		t.Fatalf("funcs = %+v", q.Funcs)
	}
	fe := q.Body.(*ForExpr)
	ea, ok := fe.Return.(*ExecuteAt)
	if !ok {
		t.Fatalf("want ExecuteAt, got %T", fe.Return)
	}
	if ea.Call.Name != "fcn" || len(ea.Call.Args) != 1 {
		t.Fatalf("call = %+v", ea.Call)
	}
}

func TestParseFuncDecl(t *testing.T) {
	q, err := ParseQuery(`
		declare function overlap($l as node(), $r as node()) as boolean()
		{ not(empty($l//* intersect $r//*)) };
		overlap($a, $b)`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.Funcs[0]
	if len(f.Params) != 2 || f.Params[0].Type.Item != "node()" {
		t.Fatalf("params = %+v", f.Params)
	}
}

func TestParseComments(t *testing.T) {
	e, err := ParseExpr(`1 (: a (: nested :) comment :) + 2`)
	if err != nil {
		t.Fatal(err)
	}
	if Print(e) != "1 + 2" {
		t.Errorf("got %s", Print(e))
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	cases := []string{
		`for $x return $x`,           // missing in
		`if ($x) then 1`,             // missing else
		`$x + `,                      // missing operand
		`doc("a.xml"`,                // missing paren
		`<a><b></a></b>`,             // mismatched tags
		`declare function f() { 1 }`, // missing semicolon
		`"unterminated`,
		`(: unterminated`,
		`$`,
		`execute at {1} {2}`, // not a function application
	}
	for _, src := range cases {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q): expected error", src)
		} else if !strings.Contains(err.Error(), "line") && !strings.Contains(err.Error(), "xq:") {
			t.Errorf("error should carry position info: %v", err)
		}
	}
}

func TestQ1FromPaperParses(t *testing.T) {
	// Table I of the paper (ASCII operators).
	src := `
	declare function makenodes() as node() { <a><b><c/></b></a>/b };
	declare function overlap($l as node(), $r as node()) as boolean()
	{ not(empty($l//* intersect $r//*)) };
	declare function earlier($l as node(), $r as node()) as node()
	{ if ($l << $r) then $l else $r };
	let $bc := makenodes(),
	    $abc := $bc/parent::a
	return (for $node in ($bc, $abc)
	        let $first := earlier($bc, $abc)
	        where overlap($first, $node)
	        return $node)//c`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("Q1 parse: %v", err)
	}
	if len(q.Funcs) != 3 {
		t.Fatalf("want 3 functions, got %d", len(q.Funcs))
	}
	// must print and reparse
	p := PrintQuery(q)
	if _, err := ParseQuery(p); err != nil {
		t.Fatalf("Q1 print/reparse: %v\nprinted:\n%s", err, p)
	}
}

func TestQ2FromPaperParses(t *testing.T) {
	src := `
	(let $s := doc("xrpc://A/students.xml")/people/person,
	     $c := doc("xrpc://B/course42.xml"),
	     $t := $s[tutor = $s/name]
	 for $e in $c/enroll/exam
	 where $e/@id = $t/id
	 return $e)/grade`
	// The paper's Q2 mixes let and for in one FLWOR; our dialect needs
	// `return` between them, so use the XCore variant Qc2.
	if _, err := ParseQuery(src); err == nil {
		t.Log("surface Q2 parsed directly")
	}
	xcore := `
	(let $s := doc("xrpc://A/students.xml")/child::people/child::person return
	 let $c := doc("xrpc://B/course42.xml") return
	 let $t := for $x in $s return
	           if ($x/child::tutor = $s/child::name) then $x else ()
	 return for $e in $c/child::enroll/child::exam return
	        if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`
	q, err := ParseQuery(xcore)
	if err != nil {
		t.Fatalf("Qc2 parse: %v", err)
	}
	roundTrip(t, PrintQuery(q))
}

func TestSeqTypeString(t *testing.T) {
	cases := map[string]SeqType{
		"node()*":   {Item: "node()", Occur: OccurStar},
		"xs:string": {Item: "xs:string"},
		"item()?":   {Item: "item()", Occur: OccurOptional},
		"node()+":   {Item: "node()", Occur: OccurPlus},
	}
	for want, st := range cases {
		if st.String() != want {
			t.Errorf("SeqType = %s, want %s", st.String(), want)
		}
	}
}

func TestWalkAndChildren(t *testing.T) {
	e, err := ParseExpr(`for $x in $s return if ($x/a = 1) then $x else count($s)`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	Walk(e, func(x Expr) bool {
		switch x.(type) {
		case *ForExpr:
			kinds = append(kinds, "for")
		case *IfExpr:
			kinds = append(kinds, "if")
		case *FunCall:
			kinds = append(kinds, "call")
		case *CompareExpr:
			kinds = append(kinds, "cmp")
		}
		return true
	})
	want := "for if cmp call"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("walk order = %q, want %q", got, want)
	}
}
