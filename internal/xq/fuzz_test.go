package xq

import (
	"strings"
	"testing"
)

// fuzzSeeds is the XMark/scatter corpus plus grammar-corner seeds: every
// construct of the dialect appears at least once so mutation reaches deep
// parser states quickly.
var fuzzSeeds = []string{
	// XMark benchmark queries (§VII shapes).
	`(let $t := (let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
	            return for $x in $s return
	                   if ($x/descendant::age < 40) then $x else ())
	 return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
	                   return $c/descendant::open_auction)
	        return if ($e/child::seller/attribute::person = $t/attribute::id)
	               then $e/child::annotation else ())/child::author`,
	`let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
	 return for $x in $s return
	       if ($x/descendant::age > 45) then $x else ()`,
	// Scatter corpus: hand-written variable-target loop and logical form.
	`declare function young() as item()* {
	  for $x in doc("xmk.xml")/child::site/child::people/child::person
	  return if ($x/descendant::age < 40) then $x/child::name else ()
	};
	for $p in ("peer1", "peer2") return execute at {$p} { young() }`,
	`for $x in doc("shard://xmark/people")/child::site/child::people/child::person
	 return if ($x/descendant::age < 40) then $x/child::name else ()`,
	// Grammar corners: axes, predicates, filters, constructors, typeswitch,
	// quantifiers, set ops, comparisons, arithmetic, order by.
	`doc("a.xml")//book[price > 28][2]/title/text()`,
	`(doc("a.xml")//book)[last()]/@id`,
	`//l2[@k = "y"]/preceding-sibling::l2/ancestor-or-self::node()`,
	`for $b in //book order by number($b/price) descending, $b/title return $b`,
	`some $a in //author satisfies $a = "Tang"`,
	`every $a in //author satisfies string-length($a) > 2`,
	`typeswitch (//book[1]) case $n as element() return name($n)
	 case $t as text() return "txt" default $d return count($d)`,
	`element report { attribute n {count(//book)}, text {"x"}, //book/title }`,
	`<a b="1" c="{2}"><b/>text</a>`,
	`document { element x { 1 + 2 * 3 idiv 4 mod 5 - -6 } }`,
	`(1, 2.5, "three", true(), $v) union //a intersect //b except //c`,
	`$x is $y or $x << $y and $x >> $y`,
	`if (1 = 2 or 3 != 4 and 5 <= 6) then 7 else 8`,
	`let $f := 1 return (: comment (: nested :) here :) $f`,
	`"unterminated`,
	`'single''quoted'`,
	`execute at {"p"} { f(1, (), ("a", "b")) }`,
	``,
	`$`,
	`/`,
	`//`,
	`..`,
	`.`,
	`()`,
}

// FuzzParseQuery asserts the parser is total: any byte string either parses
// or returns an error — it must never panic. Inputs that parse must also
// print and reparse (the printed form is what XRPC ships in messages).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		// Round-trip: the canonical printed form must parse again. (Printed
		// output is not guaranteed byte-identical to the input, but it must
		// be valid — decomposed bodies ship as printed text.)
		printed := PrintQuery(q)
		if _, err := ParseQuery(printed); err != nil {
			// Skip inputs whose literals the printer cannot round-trip
			// losslessly (e.g. control characters inside strings) — but a
			// plain-ASCII query must always round-trip.
			if isPrintableASCII(src) {
				t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
			}
		}
	})
}

func isPrintableASCII(s string) bool {
	for _, r := range s {
		if r < 0x20 && !strings.ContainsRune("\t\n\r", r) || r > 0x7e {
			return false
		}
	}
	return true
}
