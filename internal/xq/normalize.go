package xq

import (
	"fmt"
)

// Normalize rewrites a parsed query into XCore form:
//
//   - surface `execute at {u} {f(args)}` calls are converted into the XCore
//     XRPCExpr form (rule 27) by inlining the declared function f, with each
//     non-variable argument hoisted into a fresh let binding so all XRPCParams
//     are plain variable references (rule 28);
//   - remaining user-defined function calls are checked to exist with the
//     right arity (they are evaluated by the engine via the prolog).
//
// where→if and path-step fusion already happen at parse time. The paper's
// let-sinking normalization (§IV) lives in internal/core since it is part of
// the decomposition pipeline.
func Normalize(q *Query) error {
	// Normalization is idempotent, so a query that has already been through
	// it is returned untouched. This is what makes cached plans shareable:
	// concurrent executions of one plan all call Normalize (Engine.Query
	// does), and only the first — before the plan is published — may write
	// the AST.
	if q.normalized {
		return nil
	}
	funcs := map[string]*FuncDecl{}
	for _, f := range q.Funcs {
		key := fmt.Sprintf("%s/%d", f.Name, len(f.Params))
		if _, dup := funcs[key]; dup {
			return fmt.Errorf("xq: duplicate function %s#%d", f.Name, len(f.Params))
		}
		funcs[key] = f
	}
	n := &normalizer{funcs: funcs}
	for _, f := range q.Funcs {
		b, err := n.rewrite(f.Body)
		if err != nil {
			return err
		}
		f.Body = b
	}
	b, err := n.rewrite(q.Body)
	if err != nil {
		return err
	}
	q.Body = b
	q.normalized = true
	return nil
}

type normalizer struct {
	funcs map[string]*FuncDecl
	fresh int
}

func (n *normalizer) freshVar(prefix string) string {
	n.fresh++
	return fmt.Sprintf("%s_%d", prefix, n.fresh)
}

// rewrite returns e with every ExecuteAt converted to XRPCExpr, recursively.
func (n *normalizer) rewrite(e Expr) (Expr, error) {
	var err error
	rw := func(sub Expr) Expr {
		if err != nil {
			return sub
		}
		var out Expr
		out, err = n.rewrite(sub)
		return out
	}
	switch v := e.(type) {
	case *ExecuteAt:
		return n.rewriteExecuteAt(v)
	case *ForExpr:
		v.In = rw(v.In)
		for i := range v.OrderBy {
			v.OrderBy[i].Key = rw(v.OrderBy[i].Key)
		}
		v.Return = rw(v.Return)
	case *LetExpr:
		v.Bind = rw(v.Bind)
		v.Return = rw(v.Return)
	case *IfExpr:
		v.Cond, v.Then, v.Else = rw(v.Cond), rw(v.Then), rw(v.Else)
	case *QuantifiedExpr:
		v.In, v.Satisfies = rw(v.In), rw(v.Satisfies)
	case *TypeswitchExpr:
		v.Operand = rw(v.Operand)
		for _, c := range v.Cases {
			c.Return = rw(c.Return)
		}
		v.Default = rw(v.Default)
	case *CompareExpr:
		v.Left, v.Right = rw(v.Left), rw(v.Right)
	case *ArithExpr:
		v.Left, v.Right = rw(v.Left), rw(v.Right)
	case *UnaryExpr:
		v.Operand = rw(v.Operand)
	case *LogicExpr:
		v.Left, v.Right = rw(v.Left), rw(v.Right)
	case *SeqExpr:
		for i := range v.Items {
			v.Items[i] = rw(v.Items[i])
		}
	case *NodeSetExpr:
		v.Left, v.Right = rw(v.Left), rw(v.Right)
	case *PathExpr:
		if v.Input != nil {
			v.Input = rw(v.Input)
		}
		for _, st := range v.Steps {
			for i := range st.Preds {
				st.Preds[i] = rw(st.Preds[i])
			}
		}
	case *ElemConstructor:
		if v.NameExpr != nil {
			v.NameExpr = rw(v.NameExpr)
		}
		for i := range v.Content {
			v.Content[i] = rw(v.Content[i])
		}
	case *AttrConstructor:
		if v.NameExpr != nil {
			v.NameExpr = rw(v.NameExpr)
		}
		for i := range v.Value {
			v.Value[i] = rw(v.Value[i])
		}
	case *TextConstructor:
		v.Content = rw(v.Content)
	case *DocConstructor:
		v.Content = rw(v.Content)
	case *FunCall:
		for i := range v.Args {
			v.Args[i] = rw(v.Args[i])
		}
	case *XRPCExpr:
		v.Target = rw(v.Target)
		v.Body = rw(v.Body)
	}
	return e, err
}

// rewriteExecuteAt converts the surface form into XCore rule 27, inlining the
// named function body with formals substituted by fresh parameter variables.
func (n *normalizer) rewriteExecuteAt(x *ExecuteAt) (Expr, error) {
	target, err := n.rewrite(x.Target)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d", x.Call.Name, len(x.Call.Args))
	fd, ok := n.funcs[key]
	if !ok {
		return nil, fmt.Errorf("xq: execute at calls undeclared function %s#%d",
			x.Call.Name, len(x.Call.Args))
	}
	if callsItself(fd, n.funcs, map[string]bool{}) {
		return nil, fmt.Errorf("xq: execute at target %s is (mutually) recursive; "+
			"XCore rule 27 cannot express recursive remote functions", fd.Name)
	}
	out := &XRPCExpr{Target: target, FuncName: fd.Name}
	// Inline the body of fd under fresh parameter names to avoid capture.
	subst := map[string]string{}
	var lets []*LetExpr
	for i, par := range fd.Params {
		arg, err := n.rewrite(x.Call.Args[i])
		if err != nil {
			return nil, err
		}
		pv := n.freshVar("p")
		subst[par.Name] = pv
		ref, isVar := arg.(*VarRef)
		if isVar {
			out.Params = append(out.Params, &XRPCParam{Name: pv, Ref: ref.Name})
		} else {
			// Hoist non-variable argument into a let so rule 28 holds.
			av := n.freshVar("arg")
			lets = append(lets, &LetExpr{Var: av, Bind: arg})
			out.Params = append(out.Params, &XRPCParam{Name: pv, Ref: av})
		}
		out.Types = append(out.Types, par.Type)
	}
	// Inline any nested calls to declared functions inside the shipped body
	// (the remote peer receives a self-contained function).
	body, err := n.inlineCalls(cloneExpr(fd.Body), map[string]bool{fd.Name: true})
	if err != nil {
		return nil, err
	}
	out.Body = renameVars(body, subst)
	var res Expr = out
	for i := len(lets) - 1; i >= 0; i-- {
		lets[i].Return = res
		res = lets[i]
	}
	return res, nil
}

// inlineCalls replaces calls to declared functions inside a shipped body by
// let-bound inlined copies of their bodies.
func (n *normalizer) inlineCalls(e Expr, inProgress map[string]bool) (Expr, error) {
	var err error
	var walkFn func(Expr) Expr
	walkFn = func(sub Expr) Expr {
		if err != nil || sub == nil {
			return sub
		}
		if fc, ok := sub.(*FunCall); ok {
			key := fmt.Sprintf("%s/%d", fc.Name, len(fc.Args))
			if fd, declared := n.funcs[key]; declared {
				if inProgress[fd.Name] {
					err = fmt.Errorf("xq: recursive function %s cannot be shipped remotely", fd.Name)
					return sub
				}
				inProgress[fd.Name] = true
				body, ierr := n.inlineCalls(cloneExpr(fd.Body), inProgress)
				delete(inProgress, fd.Name)
				if ierr != nil {
					err = ierr
					return sub
				}
				subst := map[string]string{}
				var lets []*LetExpr
				for i, par := range fd.Params {
					av := n.freshVar("inl")
					subst[par.Name] = av
					lets = append(lets, &LetExpr{Var: av, Bind: walkFn(fc.Args[i])})
				}
				var out Expr = renameVars(body, subst)
				for i := len(lets) - 1; i >= 0; i-- {
					lets[i].Return = out
					out = lets[i]
				}
				return out
			}
		}
		return mapChildren(sub, walkFn)
	}
	out := walkFn(e)
	return out, err
}

func callsItself(fd *FuncDecl, funcs map[string]*FuncDecl, seen map[string]bool) bool {
	if seen[fd.Name] {
		return true
	}
	seen[fd.Name] = true
	defer delete(seen, fd.Name)
	found := false
	Walk(fd.Body, func(e Expr) bool {
		if fc, ok := e.(*FunCall); ok {
			key := fmt.Sprintf("%s/%d", fc.Name, len(fc.Args))
			if callee, declared := funcs[key]; declared {
				if callee.Name == fd.Name || callsItself(callee, funcs, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// mapChildren applies f to every direct child expression of e, in place, and
// returns e. It is the generic rewriting helper shared by normalization and
// decomposition passes.
func mapChildren(e Expr, f func(Expr) Expr) Expr {
	switch v := e.(type) {
	case *ForExpr:
		v.In = f(v.In)
		for i := range v.OrderBy {
			v.OrderBy[i].Key = f(v.OrderBy[i].Key)
		}
		v.Return = f(v.Return)
	case *LetExpr:
		v.Bind, v.Return = f(v.Bind), f(v.Return)
	case *IfExpr:
		v.Cond, v.Then, v.Else = f(v.Cond), f(v.Then), f(v.Else)
	case *QuantifiedExpr:
		v.In, v.Satisfies = f(v.In), f(v.Satisfies)
	case *TypeswitchExpr:
		v.Operand = f(v.Operand)
		for _, c := range v.Cases {
			c.Return = f(c.Return)
		}
		v.Default = f(v.Default)
	case *CompareExpr:
		v.Left, v.Right = f(v.Left), f(v.Right)
	case *ArithExpr:
		v.Left, v.Right = f(v.Left), f(v.Right)
	case *UnaryExpr:
		v.Operand = f(v.Operand)
	case *LogicExpr:
		v.Left, v.Right = f(v.Left), f(v.Right)
	case *SeqExpr:
		for i := range v.Items {
			v.Items[i] = f(v.Items[i])
		}
	case *NodeSetExpr:
		v.Left, v.Right = f(v.Left), f(v.Right)
	case *PathExpr:
		if v.Input != nil {
			v.Input = f(v.Input)
		}
		for _, st := range v.Steps {
			for i := range st.Preds {
				st.Preds[i] = f(st.Preds[i])
			}
		}
	case *ElemConstructor:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		for i := range v.Content {
			v.Content[i] = f(v.Content[i])
		}
	case *AttrConstructor:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		for i := range v.Value {
			v.Value[i] = f(v.Value[i])
		}
	case *TextConstructor:
		v.Content = f(v.Content)
	case *DocConstructor:
		v.Content = f(v.Content)
	case *FunCall:
		for i := range v.Args {
			v.Args[i] = f(v.Args[i])
		}
	case *ExecuteAt:
		v.Target = f(v.Target)
		for i := range v.Call.Args {
			v.Call.Args[i] = f(v.Call.Args[i])
		}
	case *XRPCExpr:
		v.Target, v.Body = f(v.Target), f(v.Body)
	}
	return e
}

// renameVars substitutes free variable names in e according to subst,
// respecting shadowing by binders.
func renameVars(e Expr, subst map[string]string) Expr {
	if len(subst) == 0 {
		return e
	}
	var rn func(Expr, map[string]string) Expr
	rn = func(x Expr, s map[string]string) Expr {
		switch v := x.(type) {
		case *VarRef:
			if nn, ok := s[v.Name]; ok {
				return &VarRef{Name: nn}
			}
			return v
		case *ForExpr:
			v.In = rn(v.In, s)
			inner := without(s, v.Var)
			for i := range v.OrderBy {
				v.OrderBy[i].Key = rn(v.OrderBy[i].Key, inner)
			}
			v.Return = rn(v.Return, inner)
			return v
		case *LetExpr:
			v.Bind = rn(v.Bind, s)
			v.Return = rn(v.Return, without(s, v.Var))
			return v
		case *QuantifiedExpr:
			v.In = rn(v.In, s)
			v.Satisfies = rn(v.Satisfies, without(s, v.Var))
			return v
		case *TypeswitchExpr:
			v.Operand = rn(v.Operand, s)
			for _, c := range v.Cases {
				c.Return = rn(c.Return, without(s, c.Var))
			}
			v.Default = rn(v.Default, without(s, v.DefaultVar))
			return v
		case *XRPCExpr:
			v.Target = rn(v.Target, s)
			// Params reference outer scope; the body's scope is its params.
			for _, par := range v.Params {
				if nn, ok := s[par.Ref]; ok {
					par.Ref = nn
				}
			}
			inner := s
			for _, par := range v.Params {
				inner = without(inner, par.Name)
			}
			v.Body = rn(v.Body, inner)
			return v
		default:
			return mapChildren(x, func(c Expr) Expr { return rn(c, s) })
		}
	}
	return rn(e, subst)
}

func without(s map[string]string, name string) map[string]string {
	if name == "" {
		return s
	}
	if _, ok := s[name]; !ok {
		return s
	}
	out := make(map[string]string, len(s))
	for k, v := range s {
		if k != name {
			out[k] = v
		}
	}
	return out
}

// cloneExpr deep-copies an expression tree.
func cloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *v
		return &c
	case *VarRef:
		c := *v
		return &c
	case *ContextItem:
		return &ContextItem{}
	case *RootExpr:
		return &RootExpr{}
	case *ForExpr:
		c := &ForExpr{Var: v.Var, In: cloneExpr(v.In), Return: cloneExpr(v.Return)}
		for _, s := range v.OrderBy {
			c.OrderBy = append(c.OrderBy, OrderSpec{Key: cloneExpr(s.Key), Descending: s.Descending})
		}
		return c
	case *LetExpr:
		return &LetExpr{Var: v.Var, Bind: cloneExpr(v.Bind), Return: cloneExpr(v.Return)}
	case *IfExpr:
		return &IfExpr{Cond: cloneExpr(v.Cond), Then: cloneExpr(v.Then), Else: cloneExpr(v.Else)}
	case *QuantifiedExpr:
		return &QuantifiedExpr{Every: v.Every, Var: v.Var, In: cloneExpr(v.In), Satisfies: cloneExpr(v.Satisfies)}
	case *TypeswitchExpr:
		c := &TypeswitchExpr{Operand: cloneExpr(v.Operand), DefaultVar: v.DefaultVar, Default: cloneExpr(v.Default)}
		for _, cs := range v.Cases {
			c.Cases = append(c.Cases, &TSCase{Var: cs.Var, Type: cs.Type, Return: cloneExpr(cs.Return)})
		}
		return c
	case *CompareExpr:
		return &CompareExpr{Op: v.Op, Left: cloneExpr(v.Left), Right: cloneExpr(v.Right)}
	case *ArithExpr:
		return &ArithExpr{Op: v.Op, Left: cloneExpr(v.Left), Right: cloneExpr(v.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Neg: v.Neg, Operand: cloneExpr(v.Operand)}
	case *LogicExpr:
		return &LogicExpr{And: v.And, Left: cloneExpr(v.Left), Right: cloneExpr(v.Right)}
	case *SeqExpr:
		c := &SeqExpr{}
		for _, it := range v.Items {
			c.Items = append(c.Items, cloneExpr(it))
		}
		return c
	case *NodeSetExpr:
		return &NodeSetExpr{Op: v.Op, Left: cloneExpr(v.Left), Right: cloneExpr(v.Right)}
	case *PathExpr:
		c := &PathExpr{}
		if v.Input != nil {
			c.Input = cloneExpr(v.Input)
		}
		for _, st := range v.Steps {
			ns := &Step{Axis: st.Axis, Test: st.Test, Filter: st.Filter}
			for _, pr := range st.Preds {
				ns.Preds = append(ns.Preds, cloneExpr(pr))
			}
			c.Steps = append(c.Steps, ns)
		}
		return c
	case *ElemConstructor:
		c := &ElemConstructor{Name: v.Name}
		if v.NameExpr != nil {
			c.NameExpr = cloneExpr(v.NameExpr)
		}
		for _, ct := range v.Content {
			c.Content = append(c.Content, cloneExpr(ct))
		}
		return c
	case *AttrConstructor:
		c := &AttrConstructor{Name: v.Name}
		if v.NameExpr != nil {
			c.NameExpr = cloneExpr(v.NameExpr)
		}
		for _, ct := range v.Value {
			c.Value = append(c.Value, cloneExpr(ct))
		}
		return c
	case *TextConstructor:
		return &TextConstructor{Content: cloneExpr(v.Content)}
	case *DocConstructor:
		return &DocConstructor{Content: cloneExpr(v.Content)}
	case *FunCall:
		c := &FunCall{Name: v.Name}
		for _, a := range v.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	case *ExecuteAt:
		return &ExecuteAt{Target: cloneExpr(v.Target), Call: cloneExpr(v.Call).(*FunCall)}
	case *XRPCExpr:
		c := &XRPCExpr{Target: cloneExpr(v.Target), Body: cloneExpr(v.Body), FuncName: v.FuncName}
		for _, par := range v.Params {
			cp := *par
			c.Params = append(c.Params, &cp)
		}
		c.Types = append(c.Types, v.Types...)
		return c
	}
	return e
}

// CloneExpr is the exported deep copy used by the decomposer.
func CloneExpr(e Expr) Expr { return cloneExpr(e) }

// RenameFreeVars is the exported capture-aware variable renaming used by the
// decomposer (code motion introduces fresh parameter variables).
func RenameFreeVars(e Expr, subst map[string]string) Expr { return renameVars(e, subst) }

// FreeVars returns the names of variables that occur free in e.
func FreeVars(e Expr) map[string]bool {
	out := map[string]bool{}
	var walkFree func(Expr, map[string]bool)
	walkFree = func(x Expr, bound map[string]bool) {
		switch v := x.(type) {
		case nil:
			return
		case *VarRef:
			if !bound[v.Name] {
				out[v.Name] = true
			}
		case *ForExpr:
			walkFree(v.In, bound)
			inner := withBound(bound, v.Var)
			for _, s := range v.OrderBy {
				walkFree(s.Key, inner)
			}
			walkFree(v.Return, inner)
		case *LetExpr:
			walkFree(v.Bind, bound)
			walkFree(v.Return, withBound(bound, v.Var))
		case *QuantifiedExpr:
			walkFree(v.In, bound)
			walkFree(v.Satisfies, withBound(bound, v.Var))
		case *TypeswitchExpr:
			walkFree(v.Operand, bound)
			for _, c := range v.Cases {
				walkFree(c.Return, withBound(bound, c.Var))
			}
			walkFree(v.Default, withBound(bound, v.DefaultVar))
		case *XRPCExpr:
			walkFree(v.Target, bound)
			for _, par := range v.Params {
				if !bound[par.Ref] {
					out[par.Ref] = true
				}
			}
			inner := bound
			for _, par := range v.Params {
				inner = withBound(inner, par.Name)
			}
			walkFree(v.Body, inner)
		default:
			for _, c := range Children(x) {
				walkFree(c, bound)
			}
		}
	}
	walkFree(e, map[string]bool{})
	return out
}

func withBound(bound map[string]bool, name string) map[string]bool {
	if name == "" || bound[name] {
		return bound
	}
	nb := make(map[string]bool, len(bound)+1)
	for k := range bound {
		nb[k] = true
	}
	nb[name] = true
	return nb
}
