package xq

import "distxq/internal/xdm"

// This file holds AST construction helpers for passes that synthesize
// expressions (rather than parse them) — notably the shard-aware planner,
// which builds `for $p in (peers...) return execute at {$p} {...}` loops.

// NewStringLiteral returns a string literal expression.
func NewStringLiteral(s string) *Literal { return &Literal{Val: xdm.NewString(s)} }

// NewStringSeq returns the sequence expression ("a", "b", ...). A single
// value still yields a SeqExpr so callers get a loop-iterable shape
// regardless of arity.
func NewStringSeq(vals []string) *SeqExpr {
	items := make([]Expr, len(vals))
	for i, v := range vals {
		items[i] = NewStringLiteral(v)
	}
	return &SeqExpr{Items: items}
}

// NewDocCall returns the function application doc("uri").
func NewDocCall(uri string) *FunCall {
	return &FunCall{Name: "doc", Args: []Expr{NewStringLiteral(uri)}}
}

// NewScatterLoop builds the canonical concurrent scatter form the evaluator
// dispatches as one Bulk RPC per distinct peer:
//
//	for $loopVar in (targets...) return execute at {$loopVar} { body }
//
// The XRPCExpr's target is the loop variable, so the destination varies per
// iteration and the engine partitions iterations by peer (evalScatter).
// Callers fill x.Params/x.Types before or after; the loop variable itself is
// never visible to the shipped body.
func NewScatterLoop(loopVar string, targets []string, x *XRPCExpr) *ForExpr {
	x.Target = &VarRef{Name: loopVar}
	return &ForExpr{Var: loopVar, In: NewStringSeq(targets), Return: x}
}

// RootedDoc decomposes an expression that navigates from a literal fn:doc()
// application: it returns the URI and the flattened step list when e is
// doc("uri"), doc("uri")/steps..., or a nesting of path expressions whose
// innermost input is such a call (e.g. (doc("uri")/a)[p]/b). The step slice
// is shared with e — callers must not mutate it.
func RootedDoc(e Expr) (uri string, steps []*Step, ok bool) {
	switch v := e.(type) {
	case *FunCall:
		if v.Name != "doc" && v.Name != "fn:doc" || len(v.Args) != 1 {
			return "", nil, false
		}
		lit, isLit := v.Args[0].(*Literal)
		if !isLit {
			return "", nil, false
		}
		return lit.Val.ItemString(), nil, true
	case *PathExpr:
		if v.Input == nil {
			return "", nil, false
		}
		uri, inner, ok := RootedDoc(v.Input)
		if !ok {
			return "", nil, false
		}
		return uri, append(append([]*Step(nil), inner...), v.Steps...), true
	}
	return "", nil, false
}
