package xq

import (
	"fmt"
	"strconv"
	"strings"

	"distxq/internal/xdm"
)

// Parser parses the XQuery-Core dialect. It is a hand-written recursive
// descent parser with one token of primary lookahead plus speculative
// re-lexing for the few places XQuery grammar needs more.
type Parser struct {
	lex *lexer
	tok Token
}

// ParseQuery parses a full query: prolog function declarations then the body.
func ParseQuery(src string) (*Query, error) {
	p := &Parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	for p.isName("declare") {
		fd, err := p.parseFuncDecl()
		if err != nil {
			return nil, err
		}
		q.Funcs = append(q.Funcs, fd)
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TEOF {
		return nil, p.errf("unexpected %s after query body", p.tok)
	}
	q.Body = body
	return q, nil
}

// ParseExpr parses a standalone expression (no prolog).
func ParseExpr(src string) (Expr, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if len(q.Funcs) != 0 {
		return nil, fmt.Errorf("xq: unexpected function declarations in expression")
	}
	return q.Body, nil
}

// MustParseQuery parses or panics; for tests and examples.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return p.lex.errorAt(p.tok.Pos, format, args...)
}

func (p *Parser) isSym(s string) bool  { return p.tok.Kind == TSym && p.tok.Text == s }
func (p *Parser) isName(s string) bool { return p.tok.Kind == TName && p.tok.Text == s }

func (p *Parser) expectSym(s string) error {
	if !p.isSym(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectName(s string) error {
	if !p.isName(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectVar() (string, error) {
	if p.tok.Kind != TVar {
		return "", p.errf("expected variable, found %s", p.tok)
	}
	name := p.tok.Text
	return name, p.advance()
}

// peek returns the token after the current one without consuming input.
func (p *Parser) peek() Token {
	saved := *p.lex
	t, err := p.lex.next()
	*p.lex = saved
	if err != nil {
		return Token{Kind: TEOF}
	}
	return t
}

// ---------------------------------------------------------------- prolog --

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	if err := p.expectName("declare"); err != nil {
		return nil, err
	}
	if err := p.expectName("function"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TName {
		return nil, p.errf("expected function name, found %s", p.tok)
	}
	fd := &FuncDecl{Name: p.tok.Text, Return: AnyItems}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for !p.isSym(")") {
		v, err := p.expectVar()
		if err != nil {
			return nil, err
		}
		par := Param{Name: v, Type: AnyItems}
		if p.isName("as") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			st, err := p.parseSeqType()
			if err != nil {
				return nil, err
			}
			par.Type = st
		}
		fd.Params = append(fd.Params, par)
		if p.isSym(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if p.isName("as") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		st, err := p.parseSeqType()
		if err != nil {
			return nil, err
		}
		fd.Return = st
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return fd, nil
}

func (p *Parser) parseSeqType() (SeqType, error) {
	if p.tok.Kind != TName {
		return SeqType{}, p.errf("expected sequence type, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return SeqType{}, err
	}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return SeqType{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return SeqType{}, err
		}
		name += "()"
	}
	st := SeqType{Item: name}
	if p.tok.Kind == TSym {
		switch p.tok.Text {
		case "*", "+", "?":
			st.Occur = p.tok.Text[0]
			if err := p.advance(); err != nil {
				return SeqType{}, err
			}
		}
	}
	return st, nil
}

// ----------------------------------------------------------- expressions --

// parseExpr parses Expr: ExprSingle ("," ExprSingle)*.
func (p *Parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.isSym(",") {
		return first, nil
	}
	items := []Expr{first}
	for p.isSym(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SeqExpr{Items: items}, nil
}

func (p *Parser) parseExprSingle() (Expr, error) {
	if p.tok.Kind == TName {
		switch p.tok.Text {
		case "for", "let":
			return p.parseFLWOR()
		case "if":
			if p.peek().Text == "(" {
				return p.parseIf()
			}
		case "typeswitch":
			if p.peek().Text == "(" {
				return p.parseTypeswitch()
			}
		case "some", "every":
			if p.peek().Kind == TVar {
				return p.parseQuantified()
			}
		case "execute":
			if p.peek().Text == "at" {
				return p.parseExecuteAt()
			}
		}
	}
	return p.parseOr()
}

// parseFLWOR parses a chain of for/let clauses, optional where and order by,
// and the return expression, desugaring into nested For/Let/If.
func (p *Parser) parseFLWOR() (Expr, error) {
	type clause struct {
		isFor bool
		v     string
		e     Expr
	}
	var clauses []clause
	for p.isName("for") || p.isName("let") {
		isFor := p.isName("for")
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			v, err := p.expectVar()
			if err != nil {
				return nil, err
			}
			if isFor {
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
			} else if err := p.expectSym(":="); err != nil {
				return nil, err
			}
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, clause{isFor: isFor, v: v, e: e})
			if p.isSym(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	var where Expr
	if p.isName("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		where = w
	}
	var order []OrderSpec
	if p.isName("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: key}
			if p.isName("ascending") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isName("descending") {
				spec.Descending = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			order = append(order, spec)
			if p.isSym(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if where != nil {
		ret = &IfExpr{Cond: where, Then: ret, Else: &SeqExpr{}}
	}
	// Build nested expression inner-to-outer; order by attaches to the
	// innermost for clause.
	attachedOrder := false
	out := ret
	for i := len(clauses) - 1; i >= 0; i-- {
		c := clauses[i]
		if c.isFor {
			fe := &ForExpr{Var: c.v, In: c.e, Return: out}
			if len(order) > 0 && !attachedOrder {
				fe.OrderBy = order
				attachedOrder = true
			}
			out = fe
		} else {
			out = &LetExpr{Var: c.v, Bind: c.e, Return: out}
		}
	}
	if len(order) > 0 && !attachedOrder {
		return nil, p.errf("order by requires a for clause")
	}
	return out, nil
}

func (p *Parser) parseIf() (Expr, error) {
	if err := p.advance(); err != nil { // "if"
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	thenE, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	elseE, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: thenE, Else: elseE}, nil
}

func (p *Parser) parseQuantified() (Expr, error) {
	every := p.isName("every")
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.expectVar()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("in"); err != nil {
		return nil, err
	}
	in, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &QuantifiedExpr{Every: every, Var: v, In: in, Satisfies: sat}, nil
}

func (p *Parser) parseTypeswitch() (Expr, error) {
	if err := p.advance(); err != nil { // "typeswitch"
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	op, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	ts := &TypeswitchExpr{Operand: op}
	for p.isName("case") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c := &TSCase{}
		if p.tok.Kind == TVar {
			c.Var = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectName("as"); err != nil {
				return nil, err
			}
		}
		st, err := p.parseSeqType()
		if err != nil {
			return nil, err
		}
		c.Type = st
		if err := p.expectName("return"); err != nil {
			return nil, err
		}
		r, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		c.Return = r
		ts.Cases = append(ts.Cases, c)
	}
	if len(ts.Cases) == 0 {
		return nil, p.errf("typeswitch requires at least one case")
	}
	if err := p.expectName("default"); err != nil {
		return nil, err
	}
	if p.tok.Kind == TVar {
		ts.DefaultVar = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	d, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	ts.Default = d
	return ts, nil
}

// parseExecuteAt parses `execute at {Expr} {FunApp(args)}`.
func (p *Parser) parseExecuteAt() (Expr, error) {
	if err := p.advance(); err != nil { // "execute"
		return nil, err
	}
	if err := p.expectName("at"); err != nil {
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	target, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TName {
		return nil, p.errf("expected function application in execute at, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	call := &FunCall{Name: name}
	for !p.isSym(")") {
		a, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if p.isSym(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return &ExecuteAt{Target: target, Call: call}, nil
}

// ------------------------------------------------------- operator ladder --

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isName("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &LogicExpr{And: false, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isName("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &LogicExpr{And: true, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) comparisonOp() (CompOp, bool) {
	if p.tok.Kind == TSym {
		switch p.tok.Text {
		case "=":
			return OpEq, true
		case "!=":
			return OpNe, true
		case "<":
			return OpLt, true
		case "<=":
			return OpLe, true
		case ">":
			return OpGt, true
		case ">=":
			return OpGe, true
		case "<<":
			return OpBefore, true
		case ">>":
			return OpAfter, true
		}
	}
	if p.isName("is") {
		return OpIs, true
	}
	if p.isName("eq") {
		return OpEq, true
	}
	if p.isName("ne") {
		return OpNe, true
	}
	if p.isName("lt") {
		return OpLt, true
	}
	if p.isName("le") {
		return OpLe, true
	}
	if p.isName("gt") {
		return OpGt, true
	}
	if p.isName("ge") {
		return OpGe, true
	}
	return 0, false
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := p.comparisonOp(); ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &CompareExpr{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isSym("+") || p.isSym("-") {
		op := OpAdd
		if p.isSym("-") {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ArithExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnionExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch {
		case p.isSym("*"):
			op = OpMul
		case p.isName("div"):
			op = OpDiv
		case p.isName("idiv"):
			op = OpIDiv
		case p.isName("mod"):
			op = OpMod
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnionExpr()
		if err != nil {
			return nil, err
		}
		left = &ArithExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnionExpr() (Expr, error) {
	left, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	for p.isSym("|") || p.isName("union") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		left = &NodeSetExpr{Op: OpUnion, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseIntersectExcept() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isName("intersect") || p.isName("except") {
		op := OpIntersect
		if p.isName("except") {
			op = OpExcept
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &NodeSetExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isSym("-") || p.isSym("+") {
		neg := p.isSym("-")
		if err := p.advance(); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if !neg {
			return operand, nil
		}
		return &UnaryExpr{Neg: true, Operand: operand}, nil
	}
	return p.parsePath()
}

// ------------------------------------------------------------------ path --

// parsePath parses [("/"|"//")] RelativePath.
func (p *Parser) parsePath() (Expr, error) {
	if p.isSym("/") || p.isSym("//") {
		dsl := p.isSym("//")
		if err := p.advance(); err != nil {
			return nil, err
		}
		pe := &PathExpr{Input: &RootExpr{}}
		if dsl {
			pe.Steps = append(pe.Steps, &Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestAnyNode}})
		} else if !p.startsStep() {
			return &RootExpr{}, nil // lone "/"
		}
		if err := p.parseRelative(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	if p.startsStep() {
		pe := &PathExpr{}
		if err := p.parseRelative(pe); err != nil {
			return nil, err
		}
		return simplifyPath(pe), nil
	}
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Postfix predicates and path continuation.
	if p.isSym("[") {
		step := &Step{Axis: AxisSelf, Test: NodeTest{Kind: TestAnyNode}, Filter: true}
		if err := p.parsePreds(step); err != nil {
			return nil, err
		}
		pe := &PathExpr{Input: prim, Steps: []*Step{step}}
		if p.isSym("/") || p.isSym("//") {
			if err := p.parseSlashSteps(pe); err != nil {
				return nil, err
			}
		}
		return pe, nil
	}
	if p.isSym("/") || p.isSym("//") {
		pe := &PathExpr{Input: prim}
		if err := p.parseSlashSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	return prim, nil
}

// simplifyPath unwraps a PathExpr that has no input and no steps left.
func simplifyPath(pe *PathExpr) Expr {
	if pe.Input != nil || len(pe.Steps) > 0 {
		return pe
	}
	return &ContextItem{}
}

// startsStep reports whether the current token begins an axis step.
func (p *Parser) startsStep() bool {
	switch {
	case p.isSym("@"), p.isSym(".."), p.isSym("*"):
		return true
	case p.tok.Kind == TName:
		nxt := p.peek()
		if nxt.Kind == TSym && nxt.Text == "::" {
			_, ok := ParseAxis(p.tok.Text)
			return ok
		}
		switch p.tok.Text {
		case "node", "text", "comment":
			return nxt.Kind == TSym && nxt.Text == "("
		}
		// A plain name is a child step unless it is a function call or a
		// reserved construct keyword.
		if nxt.Kind == TSym && nxt.Text == "(" {
			return false
		}
		switch p.tok.Text {
		case "element", "attribute", "document", "if", "for", "let", "return",
			"typeswitch", "some", "every", "execute", "then", "else",
			"and", "or", "div", "idiv", "mod", "union", "intersect", "except",
			"is", "eq", "ne", "lt", "le", "gt", "ge", "to", "in", "satisfies",
			"case", "default", "where", "order", "ascending", "descending", "at", "by":
			// Constructor keywords followed by '{' or a name+'{' are
			// constructors; bare occurrences elsewhere are operators or
			// clause keywords, never steps. (To query elements with these
			// names, use an explicit child:: axis.)
			return false
		}
		return true
	}
	return false
}

// parseRelative parses Step (("/"|"//") Step)* appending into pe.
func (p *Parser) parseRelative(pe *PathExpr) error {
	st, err := p.parseStep()
	if err != nil {
		return err
	}
	pe.Steps = append(pe.Steps, st)
	return p.parseSlashSteps(pe)
}

func (p *Parser) parseSlashSteps(pe *PathExpr) error {
	for p.isSym("/") || p.isSym("//") {
		if p.isSym("//") {
			pe.Steps = append(pe.Steps, &Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestAnyNode}})
		}
		if err := p.advance(); err != nil {
			return err
		}
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.Steps = append(pe.Steps, st)
	}
	return nil
}

func (p *Parser) parseStep() (*Step, error) {
	st := &Step{Axis: AxisChild}
	switch {
	case p.isSym("@"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		st.Axis = AxisAttribute
	case p.isSym(".."):
		if err := p.advance(); err != nil {
			return nil, err
		}
		st.Axis = AxisParent
		st.Test = NodeTest{Kind: TestAnyNode}
		return st, p.parsePreds(st)
	case p.tok.Kind == TName:
		if nxt := p.peek(); nxt.Kind == TSym && nxt.Text == "::" {
			ax, ok := ParseAxis(p.tok.Text)
			if !ok {
				return nil, p.errf("unknown axis %q", p.tok.Text)
			}
			st.Axis = ax
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil { // "::"
				return nil, err
			}
		}
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	st.Test = test
	return st, p.parsePreds(st)
}

func (p *Parser) parseNodeTest() (NodeTest, error) {
	if p.isSym("*") {
		if err := p.advance(); err != nil {
			return NodeTest{}, err
		}
		return NodeTest{Kind: TestWildcard}, nil
	}
	if p.tok.Kind != TName {
		return NodeTest{}, p.errf("expected node test, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return NodeTest{}, err
	}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return NodeTest{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return NodeTest{}, err
		}
		switch name {
		case "node":
			return NodeTest{Kind: TestAnyNode}, nil
		case "text":
			return NodeTest{Kind: TestText}, nil
		case "comment":
			return NodeTest{Kind: TestComment}, nil
		default:
			return NodeTest{}, p.errf("unknown kind test %s()", name)
		}
	}
	return NodeTest{Kind: TestName, Name: name}, nil
}

func (p *Parser) parsePreds(st *Step) error {
	for p.isSym("[") {
		if err := p.advance(); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		st.Preds = append(st.Preds, e)
		if err := p.expectSym("]"); err != nil {
			return err
		}
	}
	return nil
}

// --------------------------------------------------------------- primary --

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TString:
		v := xdm.NewString(p.tok.Text)
		return &Literal{Val: v}, p.advance()
	case TInteger:
		i, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %s", p.tok.Text)
		}
		return &Literal{Val: xdm.NewInteger(i)}, p.advance()
	case TDecimal:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad numeric literal %s", p.tok.Text)
		}
		return &Literal{Val: xdm.NewDouble(f)}, p.advance()
	case TVar:
		name := p.tok.Text
		return &VarRef{Name: name}, p.advance()
	}
	switch {
	case p.isSym("("):
		return p.parseParenthesized()
	case p.isSym("."):
		return &ContextItem{}, p.advance()
	case p.isSym("<"):
		return p.parseDirectConstructor()
	}
	if p.tok.Kind == TName {
		name := p.tok.Text
		nxt := p.peek()
		switch name {
		case "element", "attribute":
			if nxt.Text == "{" || (nxt.Kind == TName && p.peekAfterName()) {
				return p.parseComputedElemAttr(name == "attribute")
			}
		case "text", "document":
			if nxt.Text == "{" {
				return p.parseComputedTextDoc(name == "document")
			}
		}
		if nxt.Kind == TSym && nxt.Text == "(" {
			return p.parseFunCall()
		}
	}
	return nil, p.errf("unexpected %s", p.tok)
}

// peekAfterName checks `element NAME {` with two-token lookahead.
func (p *Parser) peekAfterName() bool {
	saved := *p.lex
	defer func() { *p.lex = saved }()
	t1, err := p.lex.next()
	if err != nil || t1.Kind != TName {
		return false
	}
	t2, err := p.lex.next()
	if err != nil {
		return false
	}
	return t2.Kind == TSym && t2.Text == "{"
}

func (p *Parser) parseParenthesized() (Expr, error) {
	if err := p.advance(); err != nil { // "("
		return nil, err
	}
	if p.isSym(")") {
		return &SeqExpr{}, p.advance()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if _, isSeq := e.(*SeqExpr); !isSeq {
		// Parenthesized single expressions keep their identity; only the
		// comma operator builds sequences.
		return e, nil
	}
	return e, nil
}

func (p *Parser) parseFunCall() (Expr, error) {
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	call := &FunCall{Name: name}
	for !p.isSym(")") {
		a, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if p.isSym(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parseComputedElemAttr(isAttr bool) (Expr, error) {
	if err := p.advance(); err != nil { // element | attribute
		return nil, err
	}
	var name string
	var nameExpr Expr
	if p.tok.Kind == TName {
		name = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		if err := p.expectSym("{"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		nameExpr = e
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	var content []Expr
	if !p.isSym("}") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = []Expr{e}
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if isAttr {
		return &AttrConstructor{Name: name, NameExpr: nameExpr, Value: content}, nil
	}
	return &ElemConstructor{Name: name, NameExpr: nameExpr, Content: content}, nil
}

func (p *Parser) parseComputedTextDoc(isDoc bool) (Expr, error) {
	if err := p.advance(); err != nil { // text | document
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	var content Expr = &SeqExpr{}
	if !p.isSym("}") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = e
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if isDoc {
		return &DocConstructor{Content: content}, nil
	}
	return &TextConstructor{Content: content}, nil
}

// ----------------------------------------------- direct XML constructors --

// parseDirectConstructor parses `<name attr="v">content</name>` by raw
// scanning the source from the position of the current "<" token.
func (p *Parser) parseDirectConstructor() (Expr, error) {
	pos := p.tok.Pos
	e, end, err := p.scanDirect(pos)
	if err != nil {
		return nil, err
	}
	p.lex.pos = end
	return e, p.advance()
}

// scanDirect scans one direct element constructor starting at src[pos]=='<'.
// It returns the constructor and the position just past the closing tag.
func (p *Parser) scanDirect(pos int) (*ElemConstructor, int, error) {
	src := p.lex.src
	if pos >= len(src) || src[pos] != '<' {
		return nil, 0, p.lex.errorAt(pos, "expected direct constructor")
	}
	i := pos + 1
	name, i, err := p.scanXMLName(i)
	if err != nil {
		return nil, 0, err
	}
	el := &ElemConstructor{Name: name}
	// attributes
	for {
		i = skipXMLSpace(src, i)
		if i >= len(src) {
			return nil, 0, p.lex.errorAt(pos, "unterminated start tag <%s", name)
		}
		if src[i] == '/' || src[i] == '>' {
			break
		}
		aname, j, err := p.scanXMLName(i)
		if err != nil {
			return nil, 0, err
		}
		j = skipXMLSpace(src, j)
		if j >= len(src) || src[j] != '=' {
			return nil, 0, p.lex.errorAt(j, "expected '=' in attribute")
		}
		j = skipXMLSpace(src, j+1)
		if j >= len(src) || (src[j] != '"' && src[j] != '\'') {
			return nil, 0, p.lex.errorAt(j, "expected quoted attribute value")
		}
		q := src[j]
		j++
		var val strings.Builder
		for j < len(src) && src[j] != q {
			if src[j] == '&' {
				rep, n, ok := scanEntity(src[j:])
				if !ok {
					return nil, 0, p.lex.errorAt(j, "bad entity in attribute value")
				}
				val.WriteString(rep)
				j += n
				continue
			}
			val.WriteByte(src[j])
			j++
		}
		if j >= len(src) {
			return nil, 0, p.lex.errorAt(pos, "unterminated attribute value")
		}
		j++ // closing quote
		el.Content = append(el.Content, &AttrConstructor{
			Name:  aname,
			Value: []Expr{&Literal{Val: xdm.NewString(val.String())}},
		})
		i = j
	}
	if src[i] == '/' {
		if i+1 >= len(src) || src[i+1] != '>' {
			return nil, 0, p.lex.errorAt(i, "expected '/>'")
		}
		return el, i + 2, nil
	}
	i++ // '>'
	// content
	var text strings.Builder
	flushText := func() {
		s := text.String()
		text.Reset()
		if strings.TrimSpace(s) == "" {
			return // boundary-space strip (XQuery default)
		}
		el.Content = append(el.Content, &TextConstructor{
			Content: &Literal{Val: xdm.NewString(s)},
		})
	}
	for {
		if i >= len(src) {
			return nil, 0, p.lex.errorAt(pos, "unterminated element <%s>", name)
		}
		switch src[i] {
		case '<':
			if i+1 < len(src) && src[i+1] == '/' {
				flushText()
				j := i + 2
				ename, j, err := p.scanXMLName(j)
				if err != nil {
					return nil, 0, err
				}
				if ename != name {
					return nil, 0, p.lex.errorAt(i, "mismatched end tag </%s>, expected </%s>", ename, name)
				}
				j = skipXMLSpace(src, j)
				if j >= len(src) || src[j] != '>' {
					return nil, 0, p.lex.errorAt(j, "expected '>' in end tag")
				}
				return el, j + 1, nil
			}
			if strings.HasPrefix(src[i:], "<!--") {
				end := strings.Index(src[i+4:], "-->")
				if end < 0 {
					return nil, 0, p.lex.errorAt(i, "unterminated comment in constructor")
				}
				i += 4 + end + 3
				continue
			}
			flushText()
			child, next, err := p.scanDirect(i)
			if err != nil {
				return nil, 0, err
			}
			el.Content = append(el.Content, child)
			i = next
		case '{':
			if i+1 < len(src) && src[i+1] == '{' {
				text.WriteByte('{')
				i += 2
				continue
			}
			flushText()
			// Hand control to the token parser for the enclosed expression.
			p.lex.pos = i + 1
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, 0, err
			}
			if !p.isSym("}") {
				return nil, 0, p.errf("expected '}' in constructor content, found %s", p.tok)
			}
			el.Content = append(el.Content, inner)
			i = p.tok.End
		case '}':
			if i+1 < len(src) && src[i+1] == '}' {
				text.WriteByte('}')
				i += 2
				continue
			}
			return nil, 0, p.lex.errorAt(i, "unescaped '}' in constructor content")
		case '&':
			rep, n, ok := scanEntity(src[i:])
			if !ok {
				return nil, 0, p.lex.errorAt(i, "bad entity in constructor content")
			}
			text.WriteString(rep)
			i += n
		default:
			text.WriteByte(src[i])
			i++
		}
	}
}

func (p *Parser) scanXMLName(i int) (string, int, error) {
	src := p.lex.src
	if i >= len(src) || !isNameStart(src[i]) {
		return "", 0, p.lex.errorAt(i, "expected XML name")
	}
	start := i
	for i < len(src) && (isNameChar(src[i]) || src[i] == ':') {
		i++
	}
	return src[start:i], i, nil
}

func skipXMLSpace(src string, i int) int {
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	return i
}
