package xq

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeExecuteAtInlines(t *testing.T) {
	q := MustParseQuery(`
	declare function f($a as xs:integer) as xs:integer { $a + 1 };
	execute at {"p"} { f(41) }`)
	if err := Normalize(q); err != nil {
		t.Fatal(err)
	}
	// Non-variable argument hoisted into a let; body inlined under a fresh
	// parameter name.
	let, ok := q.Body.(*LetExpr)
	if !ok {
		t.Fatalf("want hoisting let, got %T: %s", q.Body, Print(q.Body))
	}
	x, ok := let.Return.(*XRPCExpr)
	if !ok {
		t.Fatalf("want XRPCExpr, got %T", let.Return)
	}
	if len(x.Params) != 1 || x.Params[0].Ref != let.Var {
		t.Errorf("param should reference the hoisted let: %+v", x.Params[0])
	}
	if !strings.Contains(Print(x.Body), "+ 1") {
		t.Errorf("body not inlined: %s", Print(x.Body))
	}
	if x.FuncName != "f" {
		t.Errorf("FuncName = %q", x.FuncName)
	}
}

func TestNormalizeVarArgStaysDirect(t *testing.T) {
	q := MustParseQuery(`
	declare function f($a as item()*) as item()* { $a };
	let $v := 7 return execute at {"p"} { f($v) }`)
	if err := Normalize(q); err != nil {
		t.Fatal(err)
	}
	var x *XRPCExpr
	Walk(q.Body, func(e Expr) bool {
		if xx, ok := e.(*XRPCExpr); ok {
			x = xx
		}
		return true
	})
	if x == nil {
		t.Fatal("no XRPCExpr")
	}
	if len(x.Params) != 1 || x.Params[0].Ref != "v" {
		t.Errorf("variable argument should pass through: %+v", x.Params)
	}
	// Declared type is carried along for the shipped signature.
	if len(x.Types) != 1 || x.Types[0].Item != "item()" {
		t.Errorf("types = %+v", x.Types)
	}
}

func TestNormalizeNestedFunctionInlining(t *testing.T) {
	q := MustParseQuery(`
	declare function inner($x as item()*) as item()* { count($x) };
	declare function outer($y as item()*) as item()* { inner($y) + inner($y) };
	let $v := (1,2,3) return execute at {"p"} { outer($v) }`)
	if err := Normalize(q); err != nil {
		t.Fatal(err)
	}
	var x *XRPCExpr
	Walk(q.Body, func(e Expr) bool {
		if xx, ok := e.(*XRPCExpr); ok {
			x = xx
		}
		return true
	})
	body := Print(x.Body)
	if strings.Contains(body, "inner(") || strings.Contains(body, "outer(") {
		t.Errorf("nested declared calls must be inlined for shipping: %s", body)
	}
	if !strings.Contains(body, "count(") {
		t.Errorf("inlined body lost count(): %s", body)
	}
}

func TestNormalizeRejectsRecursiveRemote(t *testing.T) {
	q := MustParseQuery(`
	declare function rec($n as xs:integer) as xs:integer
	{ if ($n = 0) then 0 else rec($n - 1) };
	execute at {"p"} { rec(3) }`)
	if err := Normalize(q); err == nil {
		t.Fatal("recursive remote function must be rejected (rule 27)")
	}
	// Mutual recursion too.
	q2 := MustParseQuery(`
	declare function a($n as xs:integer) as xs:integer { b($n) };
	declare function b($n as xs:integer) as xs:integer { a($n) };
	execute at {"p"} { a(1) }`)
	if err := Normalize(q2); err == nil {
		t.Fatal("mutually recursive remote function must be rejected")
	}
}

func TestNormalizeUndeclaredExecuteAtFails(t *testing.T) {
	q := MustParseQuery(`execute at {"p"} { ghost(1) }`)
	if err := Normalize(q); err == nil {
		t.Fatal("undeclared remote function must error")
	}
}

func TestNormalizeDuplicateFunction(t *testing.T) {
	q := MustParseQuery(`
	declare function f($a as item()*) as item()* { 1 };
	declare function f($b as item()*) as item()* { 2 };
	f(0)`)
	if err := Normalize(q); err == nil {
		t.Fatal("duplicate function declarations must be rejected")
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	e, err := ParseExpr(`for $x in $outer return ($x, $free, let $y := 1 return $y)`)
	if err != nil {
		t.Fatal(err)
	}
	fv := FreeVars(e)
	if !fv["outer"] || !fv["free"] {
		t.Errorf("free vars = %v", fv)
	}
	if fv["x"] || fv["y"] {
		t.Errorf("bound vars leaked: %v", fv)
	}
}

func TestFreeVarsXRPCParams(t *testing.T) {
	x := &XRPCExpr{
		Target: &Literal{},
		Params: []*XRPCParam{{Name: "p", Ref: "outer"}},
		Body:   &VarRef{Name: "p"},
	}
	fv := FreeVars(x)
	if !fv["outer"] {
		t.Error("param ref is a free use of the outer variable")
	}
	if fv["p"] {
		t.Error("the parameter name is bound inside the body")
	}
}

func TestRenameFreeVarsRespectsShadowing(t *testing.T) {
	e, err := ParseExpr(`($a, for $a in (1) return $a)`)
	if err != nil {
		t.Fatal(err)
	}
	out := RenameFreeVars(e, map[string]string{"a": "z"})
	p := Print(out)
	if !strings.Contains(p, "$z") {
		t.Errorf("free $a not renamed: %s", p)
	}
	if !strings.Contains(p, "for $a in 1 return $a") {
		t.Errorf("bound $a must stay: %s", p)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	src := `for $x in doc("d.xml")//a[b = 2] return <w at="1">{$x, count($x)}</w>`
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	clone := CloneExpr(e)
	if Print(clone) != Print(e) {
		t.Fatalf("clone prints differently:\n%s\n%s", Print(clone), Print(e))
	}
	// Mutating the clone must not affect the original.
	clone.(*ForExpr).Var = "renamed"
	if e.(*ForExpr).Var == "renamed" {
		t.Error("clone shares state with original")
	}
}

func TestClonePreservesAllNodeKinds(t *testing.T) {
	srcs := []string{
		`typeswitch (1) case $n as node() return $n default $d return $d`,
		`some $v in (1,2) satisfies $v = 2`,
		`$a union $b intersect $c except $d`,
		`element {concat("a","b")} {attribute x {"y"}, text {"z"}, document {()}}`,
		`1 + 2 * -3 div 4 mod 5 idiv 6`,
		`. << /child::a`,
		`(1,2)[2]`,
	}
	for _, src := range srcs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if Print(CloneExpr(e)) != Print(e) {
			t.Errorf("clone of %s differs", src)
		}
	}
}

// TestPrintParseFixpointProperty: printing any parseable expression and
// reparsing yields the same printout (generated from a small expression
// grammar).
func TestPrintParseFixpointProperty(t *testing.T) {
	atoms := []string{"1", `"s"`, "$v", "()", "doc(\"d.xml\")"}
	ops := []string{"+", "-", "*", "=", "<", "and", "or", "union", ",", "is"}
	build := func(picks []uint8) string {
		if len(picks) == 0 {
			return "1"
		}
		expr := atoms[int(picks[0])%len(atoms)]
		for i := 1; i+1 < len(picks); i += 2 {
			op := ops[int(picks[i])%len(ops)]
			rhs := atoms[int(picks[i+1])%len(atoms)]
			expr = "(" + expr + " " + op + " " + rhs + ")"
		}
		return expr
	}
	f := func(picks []uint8) bool {
		src := build(picks)
		e, err := ParseExpr(src)
		if err != nil {
			return true // grammar-invalid combos (e.g. "1 is 2") still parse; others skip
		}
		p1 := Print(e)
		e2, err := ParseExpr(p1)
		if err != nil {
			t.Logf("reparse failed for %q → %q: %v", src, p1, err)
			return false
		}
		return Print(e2) == p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
