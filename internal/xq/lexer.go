package xq

import (
	"fmt"
	"strings"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TName
	TVar
	TString
	TInteger
	TDecimal
	TSym
)

// Token is one lexical token. Pos and End are byte offsets into the source.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
	End  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of input"
	case TVar:
		return "$" + t.Text
	case TString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// SyntaxError is a lexing or parsing error with source position.
type SyntaxError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xq: syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// lexer scans XQuery source text. The parser may reposition it explicitly
// when switching between token scanning and the raw scanning used inside
// direct element constructors.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errorAt(pos int, format string, args ...any) *SyntaxError {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &SyntaxError{Pos: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipTrivia skips whitespace and (: nested comments :).
func (l *lexer) skipTrivia() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isSpace(c) {
			l.pos++
			continue
		}
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 1
			i := l.pos + 2
			for i < len(l.src) && depth > 0 {
				if l.src[i] == '(' && i+1 < len(l.src) && l.src[i+1] == ':' {
					depth++
					i += 2
				} else if l.src[i] == ':' && i+1 < len(l.src) && l.src[i+1] == ')' {
					depth--
					i += 2
				} else {
					i++
				}
			}
			if depth > 0 {
				return l.errorAt(l.pos, "unterminated comment")
			}
			l.pos = i
			continue
		}
		return nil
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TEOF, Pos: start, End: start}, nil
	}
	c := l.src[l.pos]
	sym := func(s string) (Token, error) {
		l.pos += len(s)
		return Token{Kind: TSym, Text: s, Pos: start, End: l.pos}, nil
	}
	two := func(second byte) bool {
		return l.pos+1 < len(l.src) && l.src[l.pos+1] == second
	}
	switch {
	case c == '"' || c == '\'':
		return l.scanString(c)
	case isDigit(c):
		return l.scanNumber()
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isNameStart(l.src[l.pos]) {
			return Token{}, l.errorAt(start, "expected variable name after $")
		}
		name := l.scanQName()
		return Token{Kind: TVar, Text: name, Pos: start, End: l.pos}, nil
	case isNameStart(c):
		name := l.scanQName()
		return Token{Kind: TName, Text: name, Pos: start, End: l.pos}, nil
	}
	switch c {
	case '(', ')', '{', '}', '[', ']', ',', ';', '@', '|', '*', '+', '-', '=', '?':
		return sym(string(c))
	case ':':
		if two('=') {
			return sym(":=")
		}
		if two(':') {
			return sym("::")
		}
		return Token{}, l.errorAt(start, "unexpected ':'")
	case '.':
		if two('.') {
			return sym("..")
		}
		return sym(".")
	case '/':
		if two('/') {
			return sym("//")
		}
		return sym("/")
	case '<':
		if two('<') {
			return sym("<<")
		}
		if two('=') {
			return sym("<=")
		}
		return sym("<")
	case '>':
		if two('>') {
			return sym(">>")
		}
		if two('=') {
			return sym(">=")
		}
		return sym(">")
	case '!':
		if two('=') {
			return sym("!=")
		}
		return Token{}, l.errorAt(start, "unexpected '!'")
	}
	return Token{}, l.errorAt(start, "unexpected character %q", string(c))
}

func (l *lexer) scanString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote) // doubled quote escape
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TString, Text: sb.String(), Pos: start, End: l.pos}, nil
		}
		if c == '&' {
			ent, n, ok := scanEntity(l.src[l.pos:])
			if !ok {
				return Token{}, l.errorAt(l.pos, "bad entity reference in string literal")
			}
			sb.WriteString(ent)
			l.pos += n
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, l.errorAt(start, "unterminated string literal")
}

// scanEntity decodes a predefined XML entity at the start of s, returning the
// replacement text and consumed length.
func scanEntity(s string) (string, int, bool) {
	for ent, rep := range map[string]string{
		"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": `"`, "&apos;": "'",
	} {
		if strings.HasPrefix(s, ent) {
			return rep, len(ent), true
		}
	}
	return "", 0, false
}

func (l *lexer) scanNumber() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	kind := TInteger
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		kind = TDecimal
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			kind = TDecimal
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
}

// scanQName scans an NCName optionally followed by ":NCName" (but never
// consuming the "::" of an axis).
func (l *lexer) scanQName() string {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == ':' &&
		l.src[l.pos+1] != ':' && isNameStart(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
	}
	return l.src[start:l.pos]
}
