// Package xq implements the XQuery-Core dialect of the paper (Table II plus
// the XRPC extension rules 27–28): lexer, recursive-descent parser, AST,
// source printer, and normalization. The dialect covers XPath 1.0 axes,
// FLWOR expressions, typeswitch, node-set operators, element/attribute/text/
// document constructors (direct and computed), quantified expressions,
// arithmetic, and user-defined functions.
package xq

import (
	"sync/atomic"

	"distxq/internal/xdm"
)

// Query is a parsed query: prolog function declarations plus a body.
type Query struct {
	Funcs []*FuncDecl
	Body  Expr
	// normalized marks the query as already rewritten into XCore form, so
	// Normalize is a no-op read on it — required for plans shared between
	// concurrent executions (see Normalize).
	normalized bool
	// compiled caches an engine-layer compiled artifact for the query. It is
	// deliberately untyped because xq cannot import the evaluator; the
	// evaluator stores its compiled program here so every engine executing
	// the same (normalized, read-only) query — most importantly the service's
	// cached plans, which spawn a fresh engine per query — reuses one
	// compilation instead of lowering the tree again.
	compiled atomic.Value
}

// CompiledArtifact returns the engine-layer compiled artifact attached to the
// query, or nil when it has not been compiled.
func (q *Query) CompiledArtifact() any { return q.compiled.Load() }

// SetCompiledArtifact attaches an engine-layer compiled artifact. Callers
// must always store values of one concrete type.
func (q *Query) SetCompiledArtifact(a any) { q.compiled.Store(a) }

// FuncDecl is `declare function name($p as T, ...) as T { body };`.
type FuncDecl struct {
	Name   string
	Params []Param
	Return SeqType
	Body   Expr
}

// Param is a formal function parameter.
type Param struct {
	Name string
	Type SeqType
}

// Occurrence indicators for sequence types.
const (
	OccurOne      = byte(0)
	OccurOptional = byte('?')
	OccurStar     = byte('*')
	OccurPlus     = byte('+')
)

// SeqType is a sequence type such as node()*, xs:string, item()?.
type SeqType struct {
	// Item is the item-type name: "node()", "element()", "text()",
	// "item()", "empty-sequence()", or an atomic type name like "xs:string".
	Item  string
	Occur byte
}

// String renders the sequence type in XQuery syntax.
func (t SeqType) String() string {
	if t.Occur == OccurOne {
		return t.Item
	}
	return t.Item + string(t.Occur)
}

// AnyItems is the most permissive sequence type, item()*.
var AnyItems = SeqType{Item: "item()", Occur: OccurStar}

// Expr is any expression node.
type Expr interface{ exprNode() }

// Literal is a string, integer, decimal or boolean literal.
type Literal struct{ Val xdm.Atomic }

// VarRef is a variable reference $name.
type VarRef struct{ Name string }

// ContextItem is the "." expression.
type ContextItem struct{}

// ForExpr is `for $v in In [order by ...] return Return`. A non-empty
// OrderBy makes this vertex count as both a ForExpr and an OrderExpr rule in
// the dependency graph.
type ForExpr struct {
	Var     string
	In      Expr
	OrderBy []OrderSpec
	Return  Expr
}

// OrderSpec is one `order by` key.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// LetExpr is `let $v := Bind return Return`.
type LetExpr struct {
	Var    string
	Bind   Expr
	Return Expr
}

// IfExpr is `if (Cond) then Then else Else`.
type IfExpr struct{ Cond, Then, Else Expr }

// QuantifiedExpr is `some|every $v in In satisfies Satisfies`.
type QuantifiedExpr struct {
	Every     bool
	Var       string
	In        Expr
	Satisfies Expr
}

// TypeswitchExpr is `typeswitch (Operand) case ... default ...`.
type TypeswitchExpr struct {
	Operand    Expr
	Cases      []*TSCase
	DefaultVar string // may be empty
	Default    Expr
}

// TSCase is `case $v as T return E`.
type TSCase struct {
	Var    string // may be empty
	Type   SeqType
	Return Expr
}

// CompOp enumerates comparison operators.
type CompOp uint8

// Comparison operators: value/general and node comparisons.
const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIs     // node identity
	OpBefore // <<
	OpAfter  // >>
)

func (o CompOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIs:
		return "is"
	case OpBefore:
		return "<<"
	case OpAfter:
		return ">>"
	}
	return "?"
}

// IsNodeComp reports whether the operator is a node comparison (rule 14).
func (o CompOp) IsNodeComp() bool { return o == OpIs || o == OpBefore || o == OpAfter }

// CompareExpr is a general/value comparison (rule 12) or node comparison
// (rule 14). General comparisons have existential semantics over sequences.
type CompareExpr struct {
	Op          CompOp
	Left, Right Expr
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpIDiv:
		return "idiv"
	case OpMod:
		return "mod"
	}
	return "?"
}

// ArithExpr is Left op Right.
type ArithExpr struct {
	Op          ArithOp
	Left, Right Expr
}

// UnaryExpr is -Operand or +Operand.
type UnaryExpr struct {
	Neg     bool
	Operand Expr
}

// LogicExpr is `and`/`or`.
type LogicExpr struct {
	And         bool
	Left, Right Expr
}

// SeqExpr is sequence construction: "()" (empty Items) or (e1, e2, ...).
type SeqExpr struct{ Items []Expr }

// SetOp enumerates node-set operators (rule 18).
type SetOp uint8

// Node-set operators.
const (
	OpUnion SetOp = iota
	OpIntersect
	OpExcept
)

func (o SetOp) String() string {
	switch o {
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpExcept:
		return "except"
	}
	return "?"
}

// NodeSetExpr is union/intersect/except.
type NodeSetExpr struct {
	Op          SetOp
	Left, Right Expr
}

// Axis enumerates XPath axes (rules 22–24).
type Axis uint8

// XPath axes.
const (
	AxisChild Axis = iota
	AxisAttribute
	AxisSelf
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisPreceding
	AxisPrecedingSibling
	AxisFollowing
	AxisFollowingSibling
)

func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisAttribute:
		return "attribute"
	case AxisSelf:
		return "self"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisAncestorOrSelf:
		return "ancestor-or-self"
	case AxisPreceding:
		return "preceding"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisFollowing:
		return "following"
	case AxisFollowingSibling:
		return "following-sibling"
	}
	return "?"
}

// ParseAxis resolves an axis name.
func ParseAxis(name string) (Axis, bool) {
	for a := AxisChild; a <= AxisFollowingSibling; a++ {
		if a.String() == name {
			return a, true
		}
	}
	return AxisChild, false
}

// IsReverse reports whether the axis is a reverse axis (rule 22).
func (a Axis) IsReverse() bool {
	return a == AxisParent || a == AxisAncestor || a == AxisAncestorOrSelf
}

// IsHorizontal reports whether the axis is a horizontal axis (rule 24).
func (a Axis) IsHorizontal() bool {
	switch a {
	case AxisPreceding, AxisPrecedingSibling, AxisFollowing, AxisFollowingSibling:
		return true
	}
	return false
}

// NonOverlapping reports whether a step over this axis from an ordered,
// non-overlapping input yields an ordered, non-overlapping result (the axis
// whitelist in insertion condition iii: parent, preceding-sibling,
// following-sibling, self, child, attribute).
func (a Axis) NonOverlapping() bool {
	switch a {
	case AxisParent, AxisPrecedingSibling, AxisFollowingSibling, AxisSelf,
		AxisChild, AxisAttribute:
		return true
	}
	return false
}

// TestKind enumerates node tests (rule 25).
type TestKind uint8

// Node tests.
const (
	TestName TestKind = iota // QName
	TestWildcard
	TestAnyNode // node()
	TestText    // text()
	TestComment // comment()
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName
}

// String renders the node test.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestWildcard:
		return "*"
	case TestAnyNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	}
	return "?"
}

// Step is one axis step with optional predicates. A Filter step is not an
// axis navigation but a postfix filter expression E[p]: its predicates apply
// positionally over the whole input sequence (which may contain atomics),
// per the XQuery distinction between steps and filter expressions.
type Step struct {
	Axis   Axis
	Test   NodeTest
	Preds  []Expr
	Filter bool
}

// PathExpr is a (possibly multi-step) path. Input nil means the path starts
// at the context item; otherwise Input supplies the context sequence. Keeping
// consecutive steps together mirrors the paper's XCore path representation.
type PathExpr struct {
	Input Expr
	Steps []*Step
}

// RootExpr is the leading "/" of an absolute path: the root of the tree
// containing the context item.
type RootExpr struct{}

// ElemConstructor is `element name {content}`, `element {nameExpr} {content}`
// or a direct constructor `<name attr="v">...</name>`. Direct constructors
// are desugared at parse time: attributes become AttrConstructors at the
// front of Content.
type ElemConstructor struct {
	Name     string // static name; empty if NameExpr is set
	NameExpr Expr
	Content  []Expr
}

// AttrConstructor is `attribute name {value}` or a direct attribute.
type AttrConstructor struct {
	Name     string
	NameExpr Expr
	Value    []Expr
}

// TextConstructor is `text {expr}` or literal text in a direct constructor.
type TextConstructor struct{ Content Expr }

// DocConstructor is `document {expr}`.
type DocConstructor struct{ Content Expr }

// FunCall is a builtin or user-defined function application (rule 26).
type FunCall struct {
	Name string
	Args []Expr
}

// ExecuteAt is the surface XRPC statement:
// `execute at {Target} {FunApp(ParamList)}` (the actual XRPC syntax).
type ExecuteAt struct {
	Target Expr
	Call   *FunCall
}

// XRPCExpr is the XCore form (rule 27): an anonymous function Body to be
// executed at Target with XRPCParam bindings (rule 28). The decomposer
// produces these; Normalize converts surface ExecuteAt into this form by
// inlining the named function.
type XRPCExpr struct {
	Target Expr
	Params []*XRPCParam
	Body   Expr
	// FuncName is a stable generated name for the shipped function (fcn0,
	// fcn1, ...) used in messages and printed decompositions.
	FuncName string
	// Types carries declared parameter types when the expression came from
	// inlining a declared function; nil means item()*.
	Types []SeqType
}

// XRPCParam is `$Name := $Ref` (rule 28): the remote body sees $Name bound
// to the value of the caller's variable $Ref.
type XRPCParam struct {
	Name string
	Ref  string
}

func (*Literal) exprNode()         {}
func (*VarRef) exprNode()          {}
func (*ContextItem) exprNode()     {}
func (*ForExpr) exprNode()         {}
func (*LetExpr) exprNode()         {}
func (*IfExpr) exprNode()          {}
func (*QuantifiedExpr) exprNode()  {}
func (*TypeswitchExpr) exprNode()  {}
func (*CompareExpr) exprNode()     {}
func (*ArithExpr) exprNode()       {}
func (*UnaryExpr) exprNode()       {}
func (*LogicExpr) exprNode()       {}
func (*SeqExpr) exprNode()         {}
func (*NodeSetExpr) exprNode()     {}
func (*PathExpr) exprNode()        {}
func (*RootExpr) exprNode()        {}
func (*ElemConstructor) exprNode() {}
func (*AttrConstructor) exprNode() {}
func (*TextConstructor) exprNode() {}
func (*DocConstructor) exprNode()  {}
func (*FunCall) exprNode()         {}
func (*ExecuteAt) exprNode()       {}
func (*XRPCExpr) exprNode()        {}

// Children returns the direct subexpressions of e in evaluation order. This
// is the parse-edge relation of the dependency graph.
func Children(e Expr) []Expr {
	switch v := e.(type) {
	case *Literal, *VarRef, *ContextItem, *RootExpr, nil:
		return nil
	case *ForExpr:
		out := []Expr{v.In}
		for _, s := range v.OrderBy {
			out = append(out, s.Key)
		}
		return append(out, v.Return)
	case *LetExpr:
		return []Expr{v.Bind, v.Return}
	case *IfExpr:
		return []Expr{v.Cond, v.Then, v.Else}
	case *QuantifiedExpr:
		return []Expr{v.In, v.Satisfies}
	case *TypeswitchExpr:
		out := []Expr{v.Operand}
		for _, c := range v.Cases {
			out = append(out, c.Return)
		}
		return append(out, v.Default)
	case *CompareExpr:
		return []Expr{v.Left, v.Right}
	case *ArithExpr:
		return []Expr{v.Left, v.Right}
	case *UnaryExpr:
		return []Expr{v.Operand}
	case *LogicExpr:
		return []Expr{v.Left, v.Right}
	case *SeqExpr:
		return append([]Expr(nil), v.Items...)
	case *NodeSetExpr:
		return []Expr{v.Left, v.Right}
	case *PathExpr:
		var out []Expr
		if v.Input != nil {
			out = append(out, v.Input)
		}
		for _, s := range v.Steps {
			out = append(out, s.Preds...)
		}
		return out
	case *ElemConstructor:
		var out []Expr
		if v.NameExpr != nil {
			out = append(out, v.NameExpr)
		}
		return append(out, v.Content...)
	case *AttrConstructor:
		var out []Expr
		if v.NameExpr != nil {
			out = append(out, v.NameExpr)
		}
		return append(out, v.Value...)
	case *TextConstructor:
		return []Expr{v.Content}
	case *DocConstructor:
		return []Expr{v.Content}
	case *FunCall:
		return append([]Expr(nil), v.Args...)
	case *ExecuteAt:
		return []Expr{v.Target, v.Call}
	case *XRPCExpr:
		return []Expr{v.Target, v.Body}
	}
	return nil
}

// Walk visits e and all its descendants pre-order, stopping a branch when f
// returns false.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, f)
	}
}
