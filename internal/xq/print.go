package xq

import (
	"fmt"
	"strings"

	"distxq/internal/xdm"
)

// Print renders an expression to canonical XQuery-Core source text that the
// parser accepts again (modulo whitespace). This is how decomposed function
// bodies are shipped inside XRPC messages.
func Print(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e, false)
	return sb.String()
}

// PrintQuery renders a full query with its prolog.
func PrintQuery(q *Query) string {
	var sb strings.Builder
	for _, f := range q.Funcs {
		sb.WriteString(PrintFuncDecl(f))
		sb.WriteString("\n")
	}
	printExpr(&sb, q.Body, false)
	return sb.String()
}

// PrintFuncDecl renders one function declaration.
func PrintFuncDecl(f *FuncDecl) string {
	var sb strings.Builder
	sb.WriteString("declare function ")
	sb.WriteString(f.Name)
	sb.WriteString("(")
	for i, par := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("$")
		sb.WriteString(par.Name)
		sb.WriteString(" as ")
		sb.WriteString(par.Type.String())
	}
	sb.WriteString(") as ")
	sb.WriteString(f.Return.String())
	sb.WriteString(" { ")
	printExpr(&sb, f.Body, false)
	sb.WriteString(" };")
	return sb.String()
}

// printExpr writes e; paren requests parenthesization when e is a binary or
// flow expression appearing in an operand position.
func printExpr(sb *strings.Builder, e Expr, paren bool) {
	switch v := e.(type) {
	case nil:
		sb.WriteString("()")
	case *Literal:
		printLiteral(sb, v.Val)
	case *VarRef:
		sb.WriteString("$")
		sb.WriteString(v.Name)
	case *ContextItem:
		sb.WriteString(".")
	case *RootExpr:
		sb.WriteString("/")
	case *ForExpr:
		open(sb, paren)
		fmt.Fprintf(sb, "for $%s in ", v.Var)
		printExpr(sb, v.In, true)
		if len(v.OrderBy) > 0 {
			sb.WriteString(" order by ")
			for i, s := range v.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, s.Key, true)
				if s.Descending {
					sb.WriteString(" descending")
				}
			}
		}
		sb.WriteString(" return ")
		printExpr(sb, v.Return, true)
		clos(sb, paren)
	case *LetExpr:
		open(sb, paren)
		fmt.Fprintf(sb, "let $%s := ", v.Var)
		printExpr(sb, v.Bind, true)
		sb.WriteString(" return ")
		printExpr(sb, v.Return, true)
		clos(sb, paren)
	case *IfExpr:
		open(sb, paren)
		sb.WriteString("if (")
		printExpr(sb, v.Cond, false)
		sb.WriteString(") then ")
		printExpr(sb, v.Then, true)
		sb.WriteString(" else ")
		printExpr(sb, v.Else, true)
		clos(sb, paren)
	case *QuantifiedExpr:
		open(sb, paren)
		if v.Every {
			sb.WriteString("every")
		} else {
			sb.WriteString("some")
		}
		fmt.Fprintf(sb, " $%s in ", v.Var)
		printExpr(sb, v.In, true)
		sb.WriteString(" satisfies ")
		printExpr(sb, v.Satisfies, true)
		clos(sb, paren)
	case *TypeswitchExpr:
		open(sb, paren)
		sb.WriteString("typeswitch (")
		printExpr(sb, v.Operand, false)
		sb.WriteString(")")
		for _, c := range v.Cases {
			sb.WriteString(" case ")
			if c.Var != "" {
				fmt.Fprintf(sb, "$%s as ", c.Var)
			}
			sb.WriteString(c.Type.String())
			sb.WriteString(" return ")
			printExpr(sb, c.Return, true)
		}
		sb.WriteString(" default ")
		if v.DefaultVar != "" {
			fmt.Fprintf(sb, "$%s ", v.DefaultVar)
		}
		sb.WriteString("return ")
		printExpr(sb, v.Default, true)
		clos(sb, paren)
	case *CompareExpr:
		open(sb, paren)
		printExpr(sb, v.Left, true)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.Right, true)
		clos(sb, paren)
	case *ArithExpr:
		open(sb, paren)
		printExpr(sb, v.Left, true)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.Right, true)
		clos(sb, paren)
	case *UnaryExpr:
		sb.WriteString("-")
		printExpr(sb, v.Operand, true)
	case *LogicExpr:
		open(sb, paren)
		printExpr(sb, v.Left, true)
		if v.And {
			sb.WriteString(" and ")
		} else {
			sb.WriteString(" or ")
		}
		printExpr(sb, v.Right, true)
		clos(sb, paren)
	case *SeqExpr:
		sb.WriteString("(")
		for i, it := range v.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, it, false)
		}
		sb.WriteString(")")
	case *NodeSetExpr:
		open(sb, paren)
		printExpr(sb, v.Left, true)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.Right, true)
		clos(sb, paren)
	case *PathExpr:
		printPath(sb, v, paren)
	case *ElemConstructor:
		sb.WriteString("element ")
		if v.NameExpr != nil {
			sb.WriteString("{")
			printExpr(sb, v.NameExpr, false)
			sb.WriteString("}")
		} else {
			sb.WriteString(v.Name)
		}
		sb.WriteString(" {")
		for i, c := range v.Content {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, c, false)
		}
		sb.WriteString("}")
	case *AttrConstructor:
		sb.WriteString("attribute ")
		if v.NameExpr != nil {
			sb.WriteString("{")
			printExpr(sb, v.NameExpr, false)
			sb.WriteString("}")
		} else {
			sb.WriteString(v.Name)
		}
		sb.WriteString(" {")
		for i, c := range v.Value {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, c, false)
		}
		sb.WriteString("}")
	case *TextConstructor:
		sb.WriteString("text {")
		printExpr(sb, v.Content, false)
		sb.WriteString("}")
	case *DocConstructor:
		sb.WriteString("document {")
		printExpr(sb, v.Content, false)
		sb.WriteString("}")
	case *FunCall:
		sb.WriteString(v.Name)
		sb.WriteString("(")
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a, false)
		}
		sb.WriteString(")")
	case *ExecuteAt:
		open(sb, paren)
		sb.WriteString("execute at {")
		printExpr(sb, v.Target, false)
		sb.WriteString("} {")
		printExpr(sb, v.Call, false)
		sb.WriteString("}")
		clos(sb, paren)
	case *XRPCExpr:
		// The XCore presentation form of rule 27. The parser does not read
		// this back (it is produced by normalization/decomposition); shipped
		// messages use ShipFunction instead.
		open(sb, paren)
		sb.WriteString("execute at {")
		printExpr(sb, v.Target, false)
		sb.WriteString("} function (")
		for i, par := range v.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "$%s := $%s", par.Name, par.Ref)
		}
		sb.WriteString(") {")
		printExpr(sb, v.Body, false)
		sb.WriteString("}")
		clos(sb, paren)
	default:
		fmt.Fprintf(sb, "(:unknown %T:)", e)
	}
}

func open(sb *strings.Builder, paren bool) {
	if paren {
		sb.WriteString("(")
	}
}

func clos(sb *strings.Builder, paren bool) {
	if paren {
		sb.WriteString(")")
	}
}

func printLiteral(sb *strings.Builder, a xdm.Atomic) {
	switch a.T {
	case xdm.TString, xdm.TUntyped:
		sb.WriteString(`"`)
		sb.WriteString(strings.ReplaceAll(a.S, `"`, `""`))
		sb.WriteString(`"`)
	case xdm.TBoolean:
		if a.B {
			sb.WriteString("fn:true()")
		} else {
			sb.WriteString("fn:false()")
		}
	default:
		sb.WriteString(a.ItemString())
	}
}

func printPath(sb *strings.Builder, pe *PathExpr, paren bool) {
	open(sb, paren)
	first := true
	if pe.Input != nil {
		if _, isRoot := pe.Input.(*RootExpr); isRoot {
			// leading "/" printed by the first separator below
		} else {
			printExpr(sb, pe.Input, true)
			first = false
		}
	} else {
		sb.WriteString(".")
		first = false
	}
	for _, st := range pe.Steps {
		if !st.Filter {
			if !first || pe.Input != nil {
				sb.WriteString("/")
			}
			first = false
			fmt.Fprintf(sb, "%s::%s", st.Axis, st.Test)
		}
		for _, pr := range st.Preds {
			sb.WriteString("[")
			printExpr(sb, pr, false)
			sb.WriteString("]")
		}
	}
	clos(sb, paren)
}

// ShipFunction renders an XRPCExpr body as a named function declaration for
// inclusion in an XRPC request message. Parameter order follows x.Params.
func ShipFunction(x *XRPCExpr) string {
	f := &FuncDecl{Name: x.FuncName, Return: AnyItems, Body: x.Body}
	for i, par := range x.Params {
		typ := AnyItems
		if i < len(x.Types) {
			typ = x.Types[i]
		}
		f.Params = append(f.Params, Param{Name: par.Name, Type: typ})
	}
	if f.Name == "" {
		f.Name = "xrpcgen:fcn"
	}
	return PrintFuncDecl(f)
}
