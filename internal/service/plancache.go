package service

import (
	"sync"

	"distxq/internal/core"
)

// planCache is a bounded insert-order cache of decomposed plans. Keys embed
// the shard-map epoch, so a shard-map change invalidates by never matching
// again; stale entries age out through insertion-order eviction.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*core.Plan
	order   []string
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &planCache{max: max, entries: map[string]*core.Plan{}}
}

func (c *planCache) get(key string) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	return p, ok
}

func (c *planCache) put(key string, p *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = p
		return
	}
	for len(c.entries) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = p
	c.order = append(c.order, key)
}

// Len reports the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
