package service

import (
	"sync"

	"distxq/internal/core"
	"distxq/internal/eval"
)

// cachedPlan is one plan-cache entry: the decomposed plan plus, under
// compiled execution, its compiled artifact. Both are immutable after
// publication; the key's shard-map epoch guarantees a Program can never be
// executed against shard maps it was not planned under.
type cachedPlan struct {
	plan *core.Plan
	// prog is the closure-chain lowering of plan.Query, compiled eagerly at
	// plan time when the service runs compiled; nil otherwise.
	prog *eval.Program
	// epoch is the shard-map epoch the plan was decomposed under (also
	// embedded in the key). Inserting an entry of a newer epoch evicts every
	// entry below it: superseded-epoch plans can never match again, so they
	// would only displace live entries while aging out.
	epoch int64
}

// planCache is a bounded insert-order cache of decomposed plans (and their
// compiled artifacts). Keys embed the shard-map epoch, so a shard-map change
// invalidates by never matching again; stale entries age out through
// insertion-order eviction.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]cachedPlan
	order   []string
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &planCache{max: max, entries: map[string]cachedPlan{}}
}

func (c *planCache) get(key string) (cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	return p, ok
}

func (c *planCache) put(key string, p cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Evict superseded epochs first: a topology change strands every entry
	// planned under an older epoch (the key embeds the epoch, so they can
	// never be hit again) — drop them now instead of letting dead plans
	// crowd live ones out of the bounded cache.
	for i := 0; i < len(c.order); {
		k := c.order[i]
		if c.entries[k].epoch < p.epoch {
			delete(c.entries, k)
			c.order = append(c.order[:i], c.order[i+1:]...)
			continue
		}
		i++
	}
	if _, ok := c.entries[key]; ok {
		c.entries[key] = p
		return
	}
	for len(c.entries) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = p
	c.order = append(c.order, key)
}

// Len reports the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
