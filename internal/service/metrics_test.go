package service

import (
	"strings"
	"sync"
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/trace"
)

// TestMetricsTextSurface: the unified /metrics page carries all four feeds —
// service counters, evaluation counters, transport metrics, per-peer health —
// in exposition format with HELP/TYPE headers.
func TestMetricsTextSurface(t *testing.T) {
	svc, _, query := newTestService(t, Config{})
	for i := 0; i < 2; i++ {
		if _, _, err := svc.Query(query, core.Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	text := svc.MetricsText()
	for _, want := range []string{
		"# HELP distxq_service_admitted_total",
		"# TYPE distxq_service_admitted_total counter",
		"distxq_service_admitted_total 2",
		"distxq_service_completed_total 2",
		"distxq_service_plan_cache_hits_total 1",
		"distxq_service_plan_cache_misses_total 1",
		"distxq_eval_bulk_calls_total",
		"distxq_xrpc_requests_total 4",
		"distxq_xrpc_bytes_sent_total",
		`distxq_peer_seen_total{peer="peer1"}`,
		`distxq_peer_ewma_ns{peer="peer2"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page is missing %q\n%s", want, text)
		}
	}
}

// TestMetricsSnapshotRace hammers every snapshot surface — the metrics page,
// the service counters, per-peer health, the aggregated eval and transport
// stats — while scatter queries run concurrently. Run under -race, this is
// the torn-read audit of the aggregate paths: the pollers read the very
// accumulators the live queries are feeding.
func TestMetricsSnapshotRace(t *testing.T) {
	svc, _, query := newTestService(t, Config{MaxConcurrent: 4, MaxQueue: 100, Trace: true})
	done := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = svc.MetricsText()
				_ = svc.Stats()
				_ = svc.PeerHealth()
				_ = svc.EvalStats()
				_ = svc.XRPCMetrics()
				if svc.Traces != nil {
					_ = svc.Traces.Dump()
				}
			}
		}()
	}
	var queries sync.WaitGroup
	for w := 0; w < 4; w++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := svc.Query(query, core.Budget{}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	queries.Wait()
	close(done)
	pollers.Wait()
	if st := svc.Stats(); st.Completed != 40 {
		t.Errorf("completed = %d, want 40", st.Completed)
	}
	if m := svc.XRPCMetrics(); m.Requests == 0 {
		t.Error("aggregate transport metrics saw no requests")
	}
	if ev := svc.EvalStats(); ev.BulkCalls == 0 {
		t.Error("aggregate eval stats saw no bulk calls")
	}
}

// TestTracedQueryRing: with tracing on, each query publishes one span tree
// to the ring — the full lifecycle under the root, the plan span tagged with
// the cache outcome, and no leaked or double-ended spans once losers settle.
func TestTracedQueryRing(t *testing.T) {
	svc, _, query := newTestService(t, Config{Trace: true})
	for i := 0; i < 2; i++ {
		if _, _, err := svc.Query(query, core.Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	tr := svc.Traces.Last()
	if tr == nil {
		t.Fatal("ring empty after traced queries")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.OpenSpans() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans never ended", n)
	}
	if n := tr.DoubleEnds(); n != 0 {
		t.Errorf("%d spans ended twice", n)
	}
	rec := tr.Snapshot()
	found := map[string]*trace.Span{}
	for i := range rec.Spans {
		if _, ok := found[rec.Spans[i].Name]; !ok {
			found[rec.Spans[i].Name] = &rec.Spans[i]
		}
	}
	for _, want := range []string{"query", "admission", "plan", "execute", "scatter", "lane", "attempt", "serve"} {
		if found[want] == nil {
			t.Errorf("trace is missing a %q span", want)
		}
	}
	// The second query of the same source must have hit the plan cache.
	if plan := found["plan"]; plan != nil {
		if a, ok := plan.Attr("cache"); !ok || a.Str != "hit" {
			t.Errorf("second query's plan span cache attr = %+v, want hit", a)
		}
	}
	if d := svc.Traces.Dump(); len(d.Recent) != 2 {
		t.Errorf("ring holds %d recent traces, want 2", len(d.Recent))
	}
}
