// Package service implements the long-lived federation service behind
// cmd/xqd: a query front end that holds warm transports, caches decomposed
// plans across queries (keyed by normalized source and shard-map epoch),
// and guards the engine with admission control — a capacity semaphore plus
// a bounded wait queue with a queue-time budget — so offered load beyond
// capacity is shed fast with a typed overload fault instead of collapsing
// every query's latency. Admitted queries run under per-query wall-time
// budgets (core.Budget) with adaptive hedging fed by a shared
// xrpc.HealthTracker.
package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/peer"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
	"distxq/internal/xrpc"
)

// Defaults of Config's knobs.
const (
	DefaultMaxConcurrent = 8
	DefaultMaxQueueWait  = 100 * time.Millisecond
	DefaultPlanCacheSize = 128
)

// Config tunes the service's admission control and execution.
type Config struct {
	// MaxConcurrent bounds queries executing at once (the capacity tokens);
	// zero means DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a token beyond capacity; a query
	// arriving to a full queue is shed immediately. Zero means
	// 2*MaxConcurrent; negative disables queueing (shed at capacity).
	MaxQueue int
	// MaxQueueWait caps how long an admitted-to-queue query may wait for a
	// token; a budgeted query waits at most min(MaxQueueWait, budget/10).
	// Zero means DefaultMaxQueueWait.
	MaxQueueWait time.Duration
	// DefaultBudget applies to queries submitted without one; the zero
	// budget leaves them unbounded.
	DefaultBudget core.Budget
	// Streamed executes scatter dispatch through the streaming client.
	Streamed bool
	// Compile lowers cached plans to the compiled closure-chain executor:
	// each plan compiles once, at plan time, and every execution of the
	// cached plan (across concurrent queries) runs the compiled artifact.
	// The cache key's shard-map epoch invalidates compiled plans together
	// with the plans themselves.
	Compile bool
	// PlanCacheSize bounds the decomposed-plan cache; zero means
	// DefaultPlanCacheSize.
	PlanCacheSize int
	// Trace records a span tree per query — admission, planning (cache
	// hit/miss), compilation, execution, every dispatch lane and attempt, and
	// the server-side spans remote peers piggy-back on their responses — and
	// retains recent and slowest trees in Traces. Off by default; the
	// disabled path costs a few nil checks per span site.
	Trace bool
	// TraceRing bounds the recent-traces ring; zero means
	// trace.DefaultRingSize.
	TraceRing int
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return DefaultMaxConcurrent
}

func (c Config) maxQueue() int {
	switch {
	case c.MaxQueue > 0:
		return c.MaxQueue
	case c.MaxQueue < 0:
		return 0
	}
	return 2 * c.maxConcurrent()
}

func (c Config) maxQueueWait() time.Duration {
	if c.MaxQueueWait > 0 {
		return c.MaxQueueWait
	}
	return DefaultMaxQueueWait
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Admitted counts queries that got a capacity token (immediately or
	// after queueing); Shed counts queries rejected by admission control —
	// full queue or spent queue-time budget.
	Admitted int64
	Shed     int64
	// Completed/Failed partition the admitted queries by outcome;
	// DeadlineExceeded counts the Failed subset that blew its budget.
	Completed        int64
	Failed           int64
	DeadlineExceeded int64
	// PlanHits/PlanMisses count plan-cache lookups.
	PlanHits   int64
	PlanMisses int64
}

// Service executes queries for one originator peer over a federation, with
// admission control, plan caching, budgets, and adaptive hedging. Safe for
// concurrent use.
type Service struct {
	cfg      Config
	net      *peer.Network
	origin   *peer.Peer
	strategy core.Strategy
	// Health is the shared latency tracker driving adaptive hedging; one
	// tracker accumulates observations across every query of the service.
	Health *xrpc.HealthTracker
	// Replicas maps scatter targets to ordered failover replicas for
	// hand-written variable-target loops (see peer.Session.Replicas). Set
	// before serving queries.
	Replicas map[string][]string
	// Traces retains recent and slowest query span trees when Config.Trace
	// is on (nil otherwise) — the store behind xqd's /debug/traces.
	Traces *trace.Ring

	retry *xrpc.RetryPolicy
	sem   chan struct{}

	// xmetrics and evalStats aggregate every query's transport metrics and
	// evaluation counters across the service's lifetime — the /metrics feed.
	xmetrics  *xrpc.Metrics
	evalStats *eval.StatsSink

	mu     sync.Mutex
	shards []core.ShardMap
	epoch  int64
	// live plans every query against the network's live shard topology
	// instead of the frozen shards list (see UseLiveShards).
	live bool

	queued atomic.Int64
	plans  *planCache

	admitted, shed, completed, failed, deadline atomic.Int64
	planHits, planMisses                        atomic.Int64
}

// New creates a service originating queries at origin under one strategy.
func New(net *peer.Network, origin *peer.Peer, strat core.Strategy, cfg Config) *Service {
	s := &Service{
		cfg:       cfg,
		net:       net,
		origin:    origin,
		strategy:  strat,
		Health:    xrpc.NewHealthTracker(),
		sem:       make(chan struct{}, cfg.maxConcurrent()),
		plans:     newPlanCache(cfg.PlanCacheSize),
		xmetrics:  &xrpc.Metrics{},
		evalStats: &eval.StatsSink{},
	}
	if cfg.Trace {
		s.Traces = trace.NewRing(cfg.TraceRing)
	}
	return s
}

// UseRetry installs the retry/hedging policy applied to every query.
func (s *Service) UseRetry(pol *xrpc.RetryPolicy) *Service {
	s.retry = pol
	return s
}

// UseShards installs shard maps and bumps the shard-map epoch: cached plans
// decomposed under the old maps stop matching and are re-planned on demand.
func (s *Service) UseShards(maps ...core.ShardMap) *Service {
	s.mu.Lock()
	s.shards = append(s.shards, maps...)
	s.epoch++
	s.mu.Unlock()
	return s
}

// UseLiveShards makes the service plan every query against the network's
// live shard topology (Network.UpdateShards/Reshard) instead of a frozen
// UseShards list: each query snapshots the current epoch at plan time and
// executes entirely on that snapshot, the plan-cache key takes the
// federation topology epoch (so a reshard re-plans on the next query and
// evicts superseded-epoch entries), and lanes re-route to the newest layout
// when their plan-time primary departs mid-query.
func (s *Service) UseLiveShards() *Service {
	s.mu.Lock()
	s.live = true
	s.mu.Unlock()
	return s
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Admitted:         s.admitted.Load(),
		Shed:             s.shed.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		DeadlineExceeded: s.deadline.Load(),
		PlanHits:         s.planHits.Load(),
		PlanMisses:       s.planMisses.Load(),
	}
}

// admit acquires a capacity token, queueing up to the queue-time budget.
// The returned release must be called when the query finishes. A nil
// release means the query was shed; the error matches xrpc.ErrOverloaded.
func (s *Service) admit(budget core.Budget) (release func(), err error) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if max := int64(s.cfg.maxQueue()); s.queued.Add(1) > max {
		s.queued.Add(-1)
		return nil, fmt.Errorf("service: admission queue full: %w", xrpc.ErrOverloaded)
	}
	defer s.queued.Add(-1)
	wait := s.cfg.maxQueueWait()
	if qa := budget.QueueAllowance(); qa > 0 && qa < wait {
		wait = qa
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-t.C:
		return nil, fmt.Errorf("service: queue-time budget (%v) spent: %w", wait, xrpc.ErrOverloaded)
	}
}

// plan returns the decomposed plan of query source, from the cache when the
// same normalized source was planned under the current shard-map epoch. A
// cached plan's AST is normalized exactly once, before publication, so
// concurrent executions share it read-only.
func (s *Service) plan(src string, sp trace.SpanRef) (*core.Plan, []core.ShardMap, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	shards := s.shards
	epoch := s.epoch
	live := s.live
	s.mu.Unlock()
	if live {
		// Live mode: the federation topology epoch keys the cache, and the
		// query pins this snapshot for its whole execution however the
		// network reshards meanwhile.
		shards, epoch = s.net.ShardTopology()
	}
	key := fmt.Sprintf("%d|%d|%s", epoch, s.strategy, xq.PrintQuery(q))
	if p, ok := s.plans.get(key); ok {
		s.planHits.Add(1)
		sp.Set(trace.Str("cache", "hit"))
		return p.plan, shards, nil
	}
	s.planMisses.Add(1)
	sp.Set(trace.Str("cache", "miss"))
	opts := core.DefaultOptions()
	opts.Shards = shards
	if len(shards) > 0 {
		opts.KnownPeers = s.net.PeerNames()
	}
	plan, err := core.Decompose(q, s.strategy, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := xq.Normalize(plan.Query); err != nil {
		return nil, nil, err
	}
	entry := cachedPlan{plan: plan, epoch: epoch}
	if s.cfg.Compile {
		// Compile before publication: the artifact pins to the plan's query
		// object, so every execution of this cache entry — including
		// concurrent ones — shares one lowering, and a new epoch's plan gets
		// a fresh compilation against the new shard maps.
		csp := sp.Child("compile")
		prog, err := eval.CompileQuery(plan.Query)
		csp.EndErr(err)
		if err != nil {
			return nil, nil, err
		}
		entry.prog = prog
	}
	s.plans.put(key, entry)
	return plan, shards, nil
}

// Query admits, plans and executes one query under a wall-time budget (the
// zero budget takes Config.DefaultBudget). Shed queries fail fast with an
// error matching xrpc.ErrOverloaded; queries that blow their budget fail
// with one matching xrpc.ErrDeadlineExceeded.
func (s *Service) Query(src string, budget core.Budget) (xdm.Sequence, *peer.Report, error) {
	if budget.Zero() {
		budget = s.cfg.DefaultBudget
	}
	// The root span covers the whole query; finish ends it and publishes the
	// tree to the ring whatever the outcome — shed and failed queries are the
	// ones worth inspecting.
	var root trace.SpanRef
	if s.Traces != nil {
		tr := trace.New(0, s.origin.Name)
		root = tr.Start(0, "query", trace.Str("strategy", s.strategy.String()))
	}
	finish := func(err error) {
		if !root.Active() {
			return
		}
		root.EndErr(err)
		s.Traces.Add(root.Trace())
	}
	asp := root.Child("admission")
	release, err := s.admit(budget)
	asp.EndErr(err)
	if err != nil {
		s.shed.Add(1)
		finish(err)
		return nil, nil, err
	}
	defer release()
	s.admitted.Add(1)
	psp := root.Child("plan")
	plan, shards, err := s.plan(src, psp)
	psp.EndErr(err)
	if err != nil {
		s.failed.Add(1)
		finish(err)
		return nil, nil, err
	}
	sess := s.net.NewSession(s.origin, s.strategy).
		UseBudget(budget).
		UseRetry(s.retry).
		UseHealth(s.Health).
		UseCompile(s.cfg.Compile).
		UseTrace(root)
	sess.Streamed = s.cfg.Streamed
	sess.Shards = shards
	sess.Replicas = s.Replicas
	sess.AggMetrics = s.xmetrics
	sess.AggEval = s.evalStats
	res, rep, err := sess.ExecutePlan(plan)
	if err != nil {
		s.failed.Add(1)
		if errors.Is(err, xrpc.ErrDeadlineExceeded) {
			s.deadline.Add(1)
		}
		finish(err)
		return nil, rep, err
	}
	s.completed.Add(1)
	finish(nil)
	return res, rep, nil
}

// EvalStats returns the aggregated evaluation counters across every query
// the service has executed.
func (s *Service) EvalStats() eval.Stats { return s.evalStats.Snapshot() }

// XRPCMetrics returns the aggregated transport metrics across every query.
func (s *Service) XRPCMetrics() xrpc.Metrics { return s.xmetrics.Snapshot() }

// PeerHealth returns the shared health tracker's per-peer state.
func (s *Service) PeerHealth() map[string]xrpc.PeerHealthState { return s.Health.SnapshotAll() }
