package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"distxq/internal/core"
	"distxq/internal/peer"
	"distxq/internal/xdm"
	"distxq/internal/xrpc"
)

// newTestService builds a two-peer scatter federation behind a service.
func newTestService(t *testing.T, cfg Config) (*Service, *peer.Network, string) {
	t.Helper()
	n := peer.NewNetwork()
	for i := 1; i <= 2; i++ {
		doc := fmt.Sprintf(`<r><v>x%d</v></r>`, i)
		if err := n.AddPeer(fmt.Sprintf("peer%d", i)).LoadXML("d.xml", doc); err != nil {
			t.Fatal(err)
		}
	}
	origin := n.AddPeer("local")
	query := `
declare function f() as item()* { doc("d.xml")/child::r/child::v };
for $p in ("peer1", "peer2") return execute at {$p} { f() }`
	return New(n, origin, core.ByFragment, cfg), n, query
}

// TestAdmissionQueueFullSheds: with the capacity token and the single queue
// slot both taken, a third arrival is shed instantly with the typed
// overload error.
func TestAdmissionQueueFullSheds(t *testing.T) {
	s := New(nil, nil, core.ByFragment, Config{
		MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: 200 * time.Millisecond,
	})
	release, err := s.admit(core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		rel, err := s.admit(core.Budget{})
		if rel != nil {
			defer rel()
		}
		queued <- err
	}()
	// Wait until the queued admit occupies the slot, then the next arrival
	// must bounce immediately.
	for deadline := time.Now().Add(time.Second); s.queued.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	rel3, err := s.admit(core.Budget{})
	if rel3 != nil || !errors.Is(err, xrpc.ErrOverloaded) {
		t.Fatalf("queue-full admit: release=%v err=%v, want typed overload", rel3 != nil, err)
	}
	if e := time.Since(start); e > 50*time.Millisecond {
		t.Errorf("queue-full shed took %v, want immediate", e)
	}
	// Releasing the token admits the queued waiter.
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued admit failed after release: %v", err)
	}
}

// TestAdmissionQueueTimeBudget: a queued query waits at most
// min(MaxQueueWait, budget/10), then sheds with the typed overload error.
func TestAdmissionQueueTimeBudget(t *testing.T) {
	s := New(nil, nil, core.ByFragment, Config{
		MaxConcurrent: 1, MaxQueue: 4, MaxQueueWait: 10 * time.Second,
	})
	release, err := s.admit(core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Budget 100ms -> queue allowance 10ms, far under MaxQueueWait.
	start := time.Now()
	rel, err := s.admit(core.Budget{Wall: 100 * time.Millisecond})
	elapsed := time.Since(start)
	if rel != nil || !errors.Is(err, xrpc.ErrOverloaded) {
		t.Fatalf("queued admit: release=%v err=%v, want typed overload", rel != nil, err)
	}
	if elapsed < 5*time.Millisecond || elapsed > time.Second {
		t.Errorf("queue wait %v, want ~10ms (budget/10), not MaxQueueWait", elapsed)
	}
}

// TestPlanCacheHitsAndEpochInvalidation: repeated queries plan once;
// installing shard maps bumps the epoch and forces a re-plan.
func TestPlanCacheHitsAndEpochInvalidation(t *testing.T) {
	s, _, query := newTestService(t, Config{})
	for i := 0; i < 3; i++ {
		if _, _, err := s.Query(query, core.Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 2 {
		t.Fatalf("plan cache misses=%d hits=%d, want 1/2", st.PlanMisses, st.PlanHits)
	}
	// Epoch bump: same source, fresh plan. The shard map is irrelevant to
	// this query; only the key's epoch matters.
	s.UseShards(core.ShardMap{
		Logical:    "shard://test/d",
		Peers:      []string{"peer1", "peer2"},
		ShardPath:  "d.xml",
		RecordPath: "child::r/child::v",
	})
	if _, _, err := s.Query(query, core.Budget{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PlanMisses != 2 {
		t.Fatalf("post-epoch misses=%d, want 2", st.PlanMisses)
	}
}

// TestServiceDeadlineCounted: a spent budget fails the query with the typed
// deadline error and lands in the DeadlineExceeded counter.
func TestServiceDeadlineCounted(t *testing.T) {
	s, _, query := newTestService(t, Config{})
	_, _, err := s.Query(query, core.Budget{Wall: time.Nanosecond})
	if err == nil || !errors.Is(err, xrpc.ErrDeadlineExceeded) {
		t.Fatalf("err=%v, want deadline-exceeded", err)
	}
	st := s.Stats()
	if st.Failed != 1 || st.DeadlineExceeded != 1 {
		t.Fatalf("failed=%d deadline=%d, want 1/1", st.Failed, st.DeadlineExceeded)
	}
}

// TestServiceDefaultBudgetApplied: the zero budget takes Config's default —
// observable because an impossibly small default kills the query.
func TestServiceDefaultBudgetApplied(t *testing.T) {
	s, _, query := newTestService(t, Config{DefaultBudget: core.Budget{Wall: time.Nanosecond}})
	if _, _, err := s.Query(query, core.Budget{}); !errors.Is(err, xrpc.ErrDeadlineExceeded) {
		t.Fatalf("err=%v, want deadline-exceeded from default budget", err)
	}
}

// TestPlanCacheEviction: the bounded cache evicts in insertion order.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", cachedPlan{plan: &core.Plan{}})
	c.put("b", cachedPlan{plan: &core.Plan{}})
	c.put("c", cachedPlan{plan: &core.Plan{}})
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry a survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %s missing", k)
		}
	}
	// Re-putting an existing key replaces without evicting.
	c.put("b", cachedPlan{plan: &core.Plan{}})
	if c.Len() != 2 {
		t.Errorf("len=%d after re-put, want 2", c.Len())
	}
}

// TestCompiledPlanNotStaleAcrossShardEpochs is the stale-plan proof for
// compiled execution: UseShards between two identical queries bumps the
// epoch, so the second execution misses the cache, re-plans and re-compiles
// against the new shard map — and the old compiled plan can never route to a
// peer absent from it. The old shard peers are killed before the second
// query; it still succeeds, answered entirely by the new map's peers.
func TestCompiledPlanNotStaleAcrossShardEpochs(t *testing.T) {
	n := peer.NewNetwork()
	for i := 1; i <= 4; i++ {
		doc := fmt.Sprintf(`<r><v>a%d</v></r>`, i)
		if err := n.AddPeer(fmt.Sprintf("peer%d", i)).LoadXML("d.xml", doc); err != nil {
			t.Fatal(err)
		}
	}
	origin := n.AddPeer("local")
	s := New(n, origin, core.ByFragment, Config{Compile: true})
	shardMap := func(peers ...string) core.ShardMap {
		return core.ShardMap{
			Logical:    "shard://test/d",
			Peers:      peers,
			ShardPath:  "d.xml",
			RecordPath: "child::r/child::v",
		}
	}
	query := `for $x in doc("shard://test/d")/child::r/child::v return $x`
	values := func(res xdm.Sequence) string {
		out := ""
		for i, it := range res {
			if i > 0 {
				out += " "
			}
			out += it.ItemString()
		}
		return out
	}

	s.UseShards(shardMap("peer1", "peer2"))
	res, rep, err := s.Query(query, core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := values(res); got != "a1 a2" {
		t.Fatalf("epoch 1 result %q, want \"a1 a2\"", got)
	}
	if len(rep.Shards) == 0 || !rep.Shards[0].Scattered {
		t.Fatalf("epoch 1 plan did not scatter: %+v", rep.Shards)
	}
	if st := s.Stats(); st.PlanMisses != 1 {
		t.Fatalf("epoch 1 misses=%d, want 1", st.PlanMisses)
	}

	// Re-home the logical document and take the old peers down: any routing
	// decision left over from the stale compiled plan now fails loudly.
	s.UseShards(shardMap("peer3", "peer4"))
	n.KillPeer("peer1")
	n.KillPeer("peer2")

	res, rep, err = s.Query(query, core.Budget{})
	if err != nil {
		t.Fatalf("epoch 2 query failed (stale compiled plan routed to a dead peer?): %v", err)
	}
	if got := values(res); got != "a3 a4" {
		t.Fatalf("epoch 2 result %q, want \"a3 a4\"", got)
	}
	if len(rep.Shards) == 0 || !rep.Shards[0].Scattered {
		t.Fatalf("epoch 2 plan did not scatter: %+v", rep.Shards)
	}
	st := s.Stats()
	if st.PlanMisses != 2 || st.PlanHits != 0 {
		t.Fatalf("epoch 2 misses=%d hits=%d, want 2/0 (epoch key must miss)", st.PlanMisses, st.PlanHits)
	}

	// The new epoch's entry carries its own compiled artifact, and caching it
	// evicted the superseded epoch's entry: a stale-epoch plan can never be
	// hit again (the key embeds the epoch), so it must not squat in the
	// bounded cache.
	s.plans.mu.Lock()
	for _, e := range s.plans.entries {
		if e.prog == nil {
			t.Error("cached plan without compiled artifact under Config.Compile")
		}
		if e.epoch != 2 {
			t.Errorf("cached entry of epoch %d survived epoch 2", e.epoch)
		}
	}
	count := len(s.plans.entries)
	s.plans.mu.Unlock()
	if count != 1 {
		t.Fatalf("cache holds %d entries, want 1 (superseded epoch evicted)", count)
	}
}

// TestLiveEpochRePlanAndReroute extends the stale-plan proof to the live
// topology: under UseLiveShards the service keys its plan cache on
// Network.TopologyEpoch, so a Reshard applied directly to the network — no
// UseShards call, no service involvement at all — forces a re-plan, and the
// next query follows the shards to their new homes even though every old
// host is dead.
func TestLiveEpochRePlanAndReroute(t *testing.T) {
	n := peer.NewNetwork()
	for i := 1; i <= 4; i++ {
		doc := fmt.Sprintf(`<r><v>a%d</v></r>`, i)
		if err := n.AddPeer(fmt.Sprintf("peer%d", i)).LoadXML("d.xml", doc); err != nil {
			t.Fatal(err)
		}
	}
	origin := n.AddPeer("local")
	if _, err := n.UpdateShards(core.ShardMap{
		Logical:    "shard://test/d",
		Peers:      []string{"peer1", "peer2"},
		ShardPath:  "d.xml",
		RecordPath: "child::r/child::v",
	}); err != nil {
		t.Fatal(err)
	}
	s := New(n, origin, core.ByFragment, Config{Compile: true}).UseLiveShards()
	query := `for $x in doc("shard://test/d")/child::r/child::v return $x`
	values := func(res xdm.Sequence) string {
		out := ""
		for i, it := range res {
			if i > 0 {
				out += " "
			}
			out += it.ItemString()
		}
		return out
	}

	res, _, err := s.Query(query, core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := values(res); got != "a1 a2" {
		t.Fatalf("initial result %q, want \"a1 a2\"", got)
	}

	// Re-home both shards via a delta on the network: peer3/peer4 join and
	// take over, peer1/peer2 leave and die.
	if _, err := n.Reshard("shard://test/d", core.ShardDelta{
		Join:  []string{"peer3", "peer4"},
		Move:  map[int]string{0: "peer3", 1: "peer4"},
		Leave: []string{"peer1", "peer2"},
	}); err != nil {
		t.Fatal(err)
	}
	n.KillPeer("peer1")
	n.KillPeer("peer2")

	res, rep, err := s.Query(query, core.Budget{})
	if err != nil {
		t.Fatalf("post-reshard query failed (stale plan routed to a dead peer?): %v", err)
	}
	if got := values(res); got != "a3 a4" {
		t.Fatalf("post-reshard result %q, want \"a3 a4\"", got)
	}
	if len(rep.Shards) == 0 || !rep.Shards[0].Scattered {
		t.Fatalf("post-reshard plan did not scatter: %+v", rep.Shards)
	}
	if st := s.Stats(); st.PlanMisses != 2 || st.PlanHits != 0 {
		t.Fatalf("misses=%d hits=%d, want 2/0 (live epoch must miss)", st.PlanMisses, st.PlanHits)
	}
}
