package service

// This file renders the service's unified /metrics surface: one
// Prometheus-style text page joining the four observability feeds that
// otherwise live in separate packages — the service's own admission and
// plan-cache counters, the aggregated evaluation counters of every
// query-local engine, the aggregated transport metrics of every dispatch
// stack, and the shared HealthTracker's per-peer latency and fault state.
// Plain text exposition format (counters and gauges only), so any Prometheus
// scraper or curl can read it without a client library.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// metricRow is one sample: name, optional peer label, kind, help and value.
type metricRow struct {
	name  string
	peer  string
	kind  string // "counter" or "gauge"
	help  string
	value int64
}

// WriteMetrics writes the unified metrics page. Values are a consistent
// snapshot per feed (each source is snapshotted under its own lock), not
// across feeds — a scrape racing a query may see its transport bytes before
// its completion tick, which exposition-format consumers tolerate.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	ev := s.evalStats.Snapshot()
	xm := s.xmetrics.Snapshot()
	rows := []metricRow{
		{name: "distxq_service_admitted_total", kind: "counter",
			help: "Queries that got a capacity token.", value: st.Admitted},
		{name: "distxq_service_shed_total", kind: "counter",
			help: "Queries rejected by admission control.", value: st.Shed},
		{name: "distxq_service_completed_total", kind: "counter",
			help: "Admitted queries that finished successfully.", value: st.Completed},
		{name: "distxq_service_failed_total", kind: "counter",
			help: "Admitted queries that failed.", value: st.Failed},
		{name: "distxq_service_deadline_exceeded_total", kind: "counter",
			help: "Failed queries that blew their wall-time budget.", value: st.DeadlineExceeded},
		{name: "distxq_service_plan_cache_hits_total", kind: "counter",
			help: "Plan-cache lookups answered from cache.", value: st.PlanHits},
		{name: "distxq_service_plan_cache_misses_total", kind: "counter",
			help: "Plan-cache lookups that decomposed afresh.", value: st.PlanMisses},
		{name: "distxq_service_queued", kind: "gauge",
			help: "Queries currently waiting for a capacity token.", value: s.queued.Load()},

		{name: "distxq_eval_docs_resolved_total", kind: "counter",
			help: "Documents resolved by originator engines.", value: int64(ev.DocsResolved)},
		{name: "distxq_eval_remote_calls_total", kind: "counter",
			help: "Single remote execute-at calls.", value: int64(ev.RemoteCalls)},
		{name: "distxq_eval_bulk_calls_total", kind: "counter",
			help: "Bulk (loop-lifted) remote calls.", value: int64(ev.BulkCalls)},
		{name: "distxq_eval_scatter_waves_total", kind: "counter",
			help: "Variable-target loops dispatched as concurrent waves.", value: int64(ev.ScatterWaves)},
		{name: "distxq_eval_streamed_waves_total", kind: "counter",
			help: "Scatter waves consumed incrementally.", value: int64(ev.StreamedWaves)},
		{name: "distxq_eval_deadline_aborts_total", kind: "counter",
			help: "Evaluations cut short by a spent deadline.", value: int64(ev.DeadlineAborts)},
		{name: "distxq_eval_compilations_total", kind: "counter",
			help: "Queries lowered to closure chains.", value: int64(ev.Compilations)},

		{name: "distxq_xrpc_requests_total", kind: "counter",
			help: "XRPC message exchanges sent.", value: xm.Requests},
		{name: "distxq_xrpc_bytes_sent_total", kind: "counter",
			help: "Request bytes put on the wire.", value: xm.BytesSent},
		{name: "distxq_xrpc_bytes_received_total", kind: "counter",
			help: "Response bytes taken off the wire.", value: xm.BytesReceived},
		{name: "distxq_xrpc_serialize_ns_total", kind: "counter",
			help: "Client-side marshal time.", value: xm.SerializeNS},
		{name: "distxq_xrpc_deserialize_ns_total", kind: "counter",
			help: "Client-side shred time.", value: xm.DeserializeNS},
		{name: "distxq_xrpc_remote_exec_ns_total", kind: "counter",
			help: "Server-reported remote evaluation time.", value: xm.RemoteExecNS},
		{name: "distxq_xrpc_server_serde_ns_total", kind: "counter",
			help: "Server-reported (de)serialization time.", value: xm.ServerSerdeNS},
		{name: "distxq_xrpc_roundtrip_wall_ns_total", kind: "counter",
			help: "Wall time spent inside Transport.RoundTrip.", value: xm.RoundTripWall},
		{name: "distxq_xrpc_peak_buffered_items", kind: "gauge",
			help: "High-water mark of server-buffered result items.", value: xm.PeakBufferedItems},
		{name: "distxq_xrpc_waves_total", kind: "counter",
			help: "Dispatch waves recorded.", value: int64(len(xm.Waves))},
	}
	// Per-peer health gauges, one labelled sample per tracked peer, in
	// stable name order so successive scrapes diff cleanly.
	health := s.Health.SnapshotAll()
	peers := make([]string, 0, len(health))
	for name := range health {
		peers = append(peers, name)
	}
	sort.Strings(peers)
	for _, name := range peers {
		h := health[name]
		rows = append(rows,
			metricRow{name: "distxq_peer_ewma_ns", peer: name, kind: "gauge",
				help: "Smoothed exchange latency per peer.", value: h.EWMANS},
			metricRow{name: "distxq_peer_fresh_p90_ns", peer: name, kind: "gauge",
				help: "P90 over fresh samples (adaptive hedge trigger); zero below the sample floor.", value: h.FreshP90NS},
			metricRow{name: "distxq_peer_fresh_samples", peer: name, kind: "gauge",
				help: "Non-stale latency samples in the window.", value: int64(h.FreshSamples)},
			metricRow{name: "distxq_peer_seen_total", peer: name, kind: "counter",
				help: "Successful exchanges observed.", value: int64(h.Seen)},
			metricRow{name: "distxq_peer_faults", peer: name, kind: "gauge",
				help: "Current consecutive-failure streak.", value: int64(h.Faults)},
		)
	}
	return writeRows(w, rows)
}

// writeRows renders rows in exposition format, emitting each metric name's
// HELP/TYPE header once, before its first sample.
func writeRows(w io.Writer, rows []metricRow) error {
	headered := map[string]bool{}
	for _, r := range rows {
		if !headered[r.name] {
			headered[r.name] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", r.name, r.help, r.name, r.kind); err != nil {
				return err
			}
		}
		label := ""
		if r.peer != "" {
			label = fmt.Sprintf(`{peer=%q}`, r.peer)
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", r.name, label, r.value); err != nil {
			return err
		}
	}
	return nil
}

// MetricsText renders the unified metrics page to a string.
func (s *Service) MetricsText() string {
	var sb strings.Builder
	_ = s.WriteMetrics(&sb)
	return sb.String()
}
