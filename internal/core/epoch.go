package core

import (
	"fmt"
	"slices"
	"sort"
)

// This file makes shard layouts live: a ShardMap is no longer frozen for the
// federation's lifetime but evolves through validated deltas, each producing
// the next epoch of the same logical document. The epoch number is the
// synchronization point between planning and dispatch — a plan decomposed
// against epoch N keeps executing against N's routing even while the network
// installs N+1, and the service plan cache evicts entries of superseded
// epochs the moment a newer one is observed.

// ShardDelta describes one atomic topology change against a shard map. The
// fields apply in a fixed order — Join, Move, AddReplicas, DropReplicas,
// Leave — so a single delta can, say, join a peer and immediately move a
// shard onto it. Every target of a Move must provably hold a byte-identical
// copy of the shard (it is a current replica, or the caller vouches for a
// joining peer that was provisioned out of band); the equivalence guarantee
// of scatter rewriting depends on it.
type ShardDelta struct {
	// Join names peers entering the layout. Joining alone changes nothing;
	// it licenses the same delta's Move/AddReplicas to target peers the map
	// has never seen, asserting they hold the shard copies they are given.
	Join []string
	// Leave names peers departing the layout: a leaving primary's shard
	// promotes its first non-leaving replica (an error when none remains —
	// the shard would lose its last copy), and leaving peers are dropped
	// from every replica set.
	Leave []string
	// Move reassigns shard primaries: shard index → new primary. The old
	// primary is demoted to the head of the shard's replica set (it still
	// holds the data and was serving it a moment ago).
	Move map[int]string
	// AddReplicas appends ordered failover replicas per shard index.
	AddReplicas map[int][]string
	// DropReplicas removes replicas per shard index.
	DropReplicas map[int][]string
}

// Clone returns a deep copy of the shard map: mutating the copy's slices
// never aliases the original, so superseded epochs stay immutable while
// in-flight plans still read them.
func (m ShardMap) Clone() ShardMap {
	out := m
	out.Peers = slices.Clone(m.Peers)
	out.Replicas = make([][]string, len(m.Replicas))
	for i, rs := range m.Replicas {
		out.Replicas[i] = slices.Clone(rs)
	}
	return out
}

// sortedIndexes returns a delta map's shard indexes in ascending order, so
// application and error reporting are deterministic.
func sortedIndexes[V any](m map[int]V) []int {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// ApplyDelta applies one topology change and returns the next epoch of the
// map: a deep copy with Epoch incremented and the delta applied, validated
// so an installed epoch can never route a lane at a peer that holds no copy
// of its shard. The receiver is not modified; an error returns the zero map
// and leaves the current epoch in force.
func (m ShardMap) ApplyDelta(d ShardDelta) (ShardMap, error) {
	next := m.Clone()
	next.Epoch = m.Epoch + 1
	// Uniform per-shard replica slots for the duration of the edit.
	for len(next.Replicas) < len(next.Peers) {
		next.Replicas = append(next.Replicas, nil)
	}
	joined := map[string]bool{}
	for _, p := range d.Join {
		if p == "" {
			return ShardMap{}, fmt.Errorf("core: %s epoch %d: empty join peer", m.Logical, next.Epoch)
		}
		joined[p] = true
	}
	fail := func(format string, args ...any) (ShardMap, error) {
		return ShardMap{}, fmt.Errorf("core: %s epoch %d: %s", m.Logical, next.Epoch, fmt.Sprintf(format, args...))
	}
	for _, i := range sortedIndexes(d.Move) {
		p := d.Move[i]
		if i < 0 || i >= len(next.Peers) {
			return fail("move names shard %d of %d", i, len(next.Peers))
		}
		old := next.Peers[i]
		if p == old {
			return fail("shard %d already lives on %s", i, p)
		}
		if !slices.Contains(next.Replicas[i], p) && !joined[p] {
			return fail("move target %s holds no copy of shard %d (not a replica, not joining)", p, i)
		}
		next.Peers[i] = p
		rest := slices.DeleteFunc(next.Replicas[i], func(r string) bool { return r == p })
		next.Replicas[i] = append([]string{old}, rest...)
	}
	for _, i := range sortedIndexes(d.AddReplicas) {
		if i < 0 || i >= len(next.Peers) {
			return fail("replica add names shard %d of %d", i, len(next.Peers))
		}
		for _, r := range d.AddReplicas[i] {
			if r == next.Peers[i] {
				return fail("replica %s of shard %d is its primary", r, i)
			}
			if slices.Contains(next.Replicas[i], r) {
				return fail("duplicate replica %s of shard %d", r, i)
			}
			next.Replicas[i] = append(next.Replicas[i], r)
		}
	}
	for _, i := range sortedIndexes(d.DropReplicas) {
		if i < 0 || i >= len(next.Peers) {
			return fail("replica drop names shard %d of %d", i, len(next.Peers))
		}
		for _, r := range d.DropReplicas[i] {
			if !slices.Contains(next.Replicas[i], r) {
				return fail("dropping %s, not a replica of shard %d", r, i)
			}
			next.Replicas[i] = slices.DeleteFunc(next.Replicas[i], func(x string) bool { return x == r })
		}
	}
	if len(d.Leave) > 0 {
		leaving := map[string]bool{}
		for _, p := range d.Leave {
			leaving[p] = true
		}
		for i, p := range next.Peers {
			if leaving[p] {
				pi := slices.IndexFunc(next.Replicas[i], func(r string) bool { return !leaving[r] })
				if pi < 0 {
					return fail("shard %d loses its last copy when %s leaves", i, p)
				}
				next.Peers[i] = next.Replicas[i][pi]
			}
			next.Replicas[i] = slices.DeleteFunc(next.Replicas[i], func(r string) bool {
				return leaving[r] || r == next.Peers[i]
			})
		}
	}
	seen := map[string]int{}
	for i, p := range next.Peers {
		if j, dup := seen[p]; dup {
			return fail("shards %d and %d share primary %s", j, i, p)
		}
		seen[p] = i
	}
	// Trim trailing empty replica slots back to the compact form.
	for len(next.Replicas) > 0 && len(next.Replicas[len(next.Replicas)-1]) == 0 {
		next.Replicas = next.Replicas[:len(next.Replicas)-1]
	}
	return next, nil
}

// ShardOwner locates the shard whose primary was peer in this map: the shard
// index, or -1 when peer owns no shard. Epoch-aware re-dispatch uses it to
// follow a lane's shard from the plan's epoch into the live one.
func (m ShardMap) ShardOwner(peer string) int {
	return slices.Index(m.Peers, peer)
}
