// Package core_test holds the shard-rewrite equivalence harness: a seeded
// random query generator over the XMark people schema whose queries run both
// locally on the unsharded logical document and through the shard-aware
// planner on simulated 2/4/8-peer federations, requiring byte-identical
// serialized results — for scattered plans and fallback plans alike. It lives
// in the external test package so it can drive the full peer stack.
package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/peer"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

// harnessConfig is the shared document shape: a person count not divisible
// by any tested peer count, so shards are uneven.
func harnessConfig() xmark.Config {
	return xmark.Config{Seed: 19, Persons: 18, FillerBytes: 0, MinAge: 18, MaxAge: 50}
}

var layouts = []int{2, 4, 8}

// shardedWorld is one federation layout plus the matching unsharded
// reference: the logical document whose record sequence concatenates the
// shards in shard-major order.
type shardedWorld struct {
	peers    int
	net      *peer.Network
	local    *peer.Peer
	names    []string
	refDoc   *xdm.Document
	refEng   *eval.Engine
	shardMap core.ShardMap
}

func newShardedWorld(t *testing.T, cfg xmark.Config, n int) *shardedWorld {
	t.Helper()
	w := &shardedWorld{peers: n, net: peer.NewNetwork()}
	shards := make([]*xdm.Document, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer%d", i+1)
		p := w.net.AddPeer(name)
		d := xmark.PeopleShardDocument(cfg, i, n, "xrpc://"+name+"/"+xmark.PeopleShardPath)
		p.AddDoc(xmark.PeopleShardPath, d)
		shards[i] = d
		w.names = append(w.names, name)
	}
	w.local = w.net.AddPeer("local")
	w.shardMap = xmark.PeopleShardMap(w.names)
	w.refDoc = buildReference(t, shards)
	w.refEng = eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
		if uri != xmark.LogicalPeopleURI {
			return nil, fmt.Errorf("reference engine: unexpected doc(%q)", uri)
		}
		return w.refDoc, nil
	}))
	return w
}

// buildReference constructs the unsharded logical document independently of
// core.ShardMap.Materialize: one site/people skeleton with every shard's
// person records copied in shard-major order.
func buildReference(t *testing.T, shards []*xdm.Document) *xdm.Document {
	t.Helper()
	d := xdm.NewDocument(xmark.LogicalPeopleURI)
	site := xdm.NewElement("site")
	people := xdm.NewElement("people")
	site.AppendChild(people)
	for _, sd := range shards {
		srcSite := sd.Root.Children[0]
		var srcPeople *xdm.Node
		for _, ch := range srcSite.Children {
			if ch.Kind == xdm.ElementNode && ch.Name == "people" {
				srcPeople = ch
			}
		}
		if srcPeople == nil {
			t.Fatal("shard lacks site/people")
		}
		for _, rec := range srcPeople.Children {
			if rec.Kind == xdm.ElementNode && rec.Name == "person" {
				people.AppendChild(rec.Copy())
			}
		}
	}
	d.Root.AppendChild(site)
	d.Freeze()
	return d
}

func serializeSeq(s xdm.Sequence) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch v := it.(type) {
		case *xdm.Node:
			_ = xdm.Serialize(&sb, v)
		case xdm.Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	return sb.String()
}

// genQuery is one generated query plus the expected planner decision for its
// topmost shard candidate.
type genQuery struct {
	src string
	// topScatter is whether the first (topmost) shard decision must be a
	// scatter; false marks the deliberate fallback cases.
	topScatter bool
}

const doc = `doc("` + xmark.LogicalPeopleURI + `")`
const prefix = doc + `/child::site/child::people/child::person`

// cities must match the generator vocabulary in xmark.appendPerson.
var cities = []string{"Amsterdam", "Utrecht", "Delft", "Leiden"}

// safePred returns a record-level predicate the planner can prove
// non-positional.
func safePred(r *rand.Rand) string {
	switch r.Intn(5) {
	case 0:
		return fmt.Sprintf(`[child::profile/child::age > %d]`, 18+r.Intn(35))
	case 1:
		return fmt.Sprintf(`[descendant::age < %d]`, 18+r.Intn(35))
	case 2:
		return fmt.Sprintf(`[child::address/child::city = %q]`, cities[r.Intn(len(cities))])
	case 3:
		return fmt.Sprintf(`[child::profile/attribute::income > %d]`, 20000+r.Intn(80000))
	default:
		return ""
	}
}

// positionalPred returns a record-level predicate that must force fallback.
func positionalPred(r *rand.Rand) string {
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf(`[%d]`, 1+r.Intn(6))
	case 1:
		return fmt.Sprintf(`[position() = %d]`, 1+r.Intn(6))
	default:
		return `[last()]`
	}
}

// safeTail returns a downward continuation below the record step.
func safeTail(r *rand.Rand) string {
	return []string{
		``,
		`/child::name`,
		`/child::name/text()`,
		`/descendant::age`,
		`/child::profile/child::age`,
		`/child::emailaddress`,
		`/attribute::id`,
		`/child::address/child::city/text()`,
	}[r.Intn(8)]
}

// generate produces one random query. Roughly three quarters should scatter;
// the rest exercise every fallback condition.
func generate(r *rand.Rand) genQuery {
	switch r.Intn(14) {
	case 0: // plain path
		return genQuery{src: prefix + safePred(r) + safeTail(r), topScatter: true}
	case 1: // aggregate consumer over a scattered path
		agg := []string{"count", "exists"}[r.Intn(2)]
		return genQuery{src: fmt.Sprintf(`%s(%s%s)`, agg, prefix, safePred(r)), topScatter: true}
	case 2: // FLWOR with filtering body
		return genQuery{src: fmt.Sprintf(
			`for $x in %s%s return if ($x/descendant::age < %d) then $x/child::name else ()`,
			prefix, safePred(r), 18+r.Intn(35)), topScatter: true}
	case 3: // FLWOR with constructor body
		return genQuery{src: fmt.Sprintf(
			`for $x in %s%s return element rec { $x/child::name, $x/descendant::age }`,
			prefix, safePred(r)), topScatter: true}
	case 4: // FLWOR with let and sequence body
		return genQuery{src: fmt.Sprintf(
			`for $x in %s return let $a := $x/descendant::age return if ($a > %d) then ($x/child::emailaddress, $x/child::address/child::city) else ()`,
			prefix, 18+r.Intn(35)), topScatter: true}
	case 5: // let-bound path, loop over the binding
		return genQuery{src: fmt.Sprintf(
			`let $s := %s%s return for $x in $s return $x/child::name`,
			prefix, safePred(r)), topScatter: true}
	case 6: // outer variable shipped as scatter parameter
		return genQuery{src: fmt.Sprintf(
			`let $k := %d return for $x in %s[descendant::age > $k] return if ($x/descendant::age < $k + %d) then $x/child::name else ()`,
			18+r.Intn(20), prefix, 5+r.Intn(10)), topScatter: true}
	case 7: // positional record predicate: fallback
		return genQuery{src: prefix + positionalPred(r) + safeTail(r), topScatter: false}
	case 8: // reverse axis escaping the record subtree: fallback
		return genQuery{src: fmt.Sprintf(
			`for $x in %s%s return $x/parent::people/child::person[descendant::age < %d]/child::name`,
			prefix, safePred(r), 18+r.Intn(35)), topScatter: false}
	case 9: // second document access (cross-shard join shape): fallback
		return genQuery{src: fmt.Sprintf(
			`for $x in %s[descendant::age > %d] return if ($x/child::address/child::city = %s[descendant::age < %d]/child::address/child::city) then $x/child::name else ()`,
			prefix, 18+r.Intn(20), prefix, 18+r.Intn(20)), topScatter: false}
	case 10: // path stops above the record sequence: fallback
		return genQuery{src: []string{
			doc,
			doc + `/child::site`,
			doc + `/child::site/child::people`,
			`count(` + doc + `)`,
		}[r.Intn(4)], topScatter: false}
	case 11: // node-set operator over two applications of the logical doc: fallback
		return genQuery{src: fmt.Sprintf(`count(%s union %s%s)`, prefix, prefix, safePred(r)), topScatter: false}
	case 12: // call to a user-declared function: fallback (body is not shipped)
		return genQuery{src: fmt.Sprintf(
			`declare function pick($y as item()*) as item()* { if ($y/descendant::age < %d) then $y/child::name else () };
			 for $x in %s%s return pick($x)`,
			18+r.Intn(35), prefix, safePred(r)), topScatter: false}
	default: // user function navigating upward from the records: the whole
		// query must stay local (shipped copies lack the skeleton context)
		return genQuery{src: fmt.Sprintf(
			`declare function up($y as item()*) as item()* { $y/parent::people/child::person/child::name };
			 for $x in %s return if ($x/descendant::age > %d) then up($x) else ()`,
			prefix, 18+r.Intn(35)), topScatter: false}
	}
}

// TestShardRewriteEquivalence is the headline harness: ≥200 generated
// queries per seed, each evaluated locally on the unsharded reference and
// through the shard-aware planner on 2/4/8-peer federations, requiring
// byte-identical serialized results and the expected rewrite decision.
func TestShardRewriteEquivalence(t *testing.T) {
	cfg := harnessConfig()
	worlds := make([]*shardedWorld, 0, len(layouts))
	for _, n := range layouts {
		worlds = append(worlds, newShardedWorld(t, cfg, n))
	}
	const perSeed = 208
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			scattered, fellBack := 0, 0
			for qi := 0; qi < perSeed; qi++ {
				q := generate(r)
				if q.topScatter {
					scattered++
				} else {
					fellBack++
				}
				for _, w := range worlds {
					localRes, err := w.refEng.QueryString(q.src)
					if err != nil {
						t.Fatalf("query %d (%d peers) local eval: %v\n%s", qi, w.peers, err, q.src)
					}
					// Tree-walking and compiled execution must both match the
					// unsharded reference (which always tree-walks, keeping
					// the oracle independent of the compiler).
					for _, compiled := range []bool{false, true} {
						w.net.SetCompile(compiled)
						sess := w.net.NewSession(w.local, core.ByFragment).
							UseShards(w.shardMap).UseCompile(compiled)
						shardRes, rep, err := sess.Query(q.src)
						if err != nil {
							t.Fatalf("query %d (%d peers, compiled=%v) sharded eval: %v\n%s", qi, w.peers, compiled, err, q.src)
						}
						if got, want := serializeSeq(shardRes), serializeSeq(localRes); got != want {
							t.Fatalf("query %d (%d peers, compiled=%v) diverged:\n query: %s\n local: %q\n shard: %q\n decisions: %+v",
								qi, w.peers, compiled, q.src, want, got, rep.Shards)
						}
						if len(rep.Shards) == 0 {
							t.Fatalf("query %d (%d peers): no shard decision recorded\n%s", qi, w.peers, q.src)
						}
						if rep.Shards[0].Scattered != q.topScatter {
							t.Fatalf("query %d (%d peers): top decision scattered=%v (reason %q), want %v\n%s",
								qi, w.peers, rep.Shards[0].Scattered, rep.Shards[0].Reason, q.topScatter, q.src)
						}
					}
					w.net.SetCompile(false)
				}
			}
			if scattered < 100 || fellBack < 50 {
				t.Fatalf("generator mix too thin: %d scattered, %d fallback", scattered, fellBack)
			}
		})
	}
}

// TestShardRewriteEquivalenceAcrossStrategies runs the canonical logical
// scatter workload under every function-shipping strategy and the
// data-shipping baseline; all must agree with the local reference.
func TestShardRewriteEquivalenceAcrossStrategies(t *testing.T) {
	cfg := harnessConfig()
	w := newShardedWorld(t, cfg, 4)
	localRes, err := w.refEng.QueryString(xmark.LogicalScatterQuery())
	if err != nil {
		t.Fatal(err)
	}
	want := serializeSeq(localRes)
	for _, strat := range []core.Strategy{core.DataShipping, core.ByValue, core.ByFragment, core.ByProjection} {
		for _, compiled := range []bool{false, true} {
			w.net.SetCompile(compiled)
			sess := w.net.NewSession(w.local, strat).UseShards(w.shardMap).UseCompile(compiled)
			res, rep, err := sess.Query(xmark.LogicalScatterQuery())
			if err != nil {
				t.Fatalf("%s (compiled=%v): %v", strat, compiled, err)
			}
			if got := serializeSeq(res); got != want {
				t.Fatalf("%s (compiled=%v) diverged:\n local: %q\n shard: %q", strat, compiled, want, got)
			}
			if strat != core.DataShipping {
				if len(rep.Shards) == 0 || !rep.Shards[0].Scattered {
					t.Fatalf("%s: expected a scattered plan, got %+v", strat, rep.Shards)
				}
			}
		}
		w.net.SetCompile(false)
	}
}
