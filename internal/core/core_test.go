package core

import (
	"strings"
	"testing"

	"distxq/internal/xq"
)

// qn2 is the paper's Qn2 (Table III) with the xrpc:// documents of Q2.
const qn2 = `
(let $t := (let $s := doc("xrpc://A/students.xml")/child::people/child::person
            return for $x in $s return
                   if ($x/child::tutor = $s/child::name) then $x else ())
 return for $e in (let $c := doc("xrpc://B/course42.xml")
                   return $c/child::enroll/child::exam)
        return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`

// qc2 is the un-normalized XCore variant (Table III): lets at the top.
const qc2 = `
(let $s := doc("xrpc://A/students.xml")/child::people/child::person return
 let $c := doc("xrpc://B/course42.xml") return
 let $t := for $x in $s return
           if ($x/child::tutor = $s/child::name) then $x else ()
 return for $e in $c/child::enroll/child::exam return
        if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`

func mustQuery(t *testing.T, src string) *xq.Query {
	t.Helper()
	q, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := xq.Normalize(q); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return q
}

func TestXRPCHostParsing(t *testing.T) {
	cases := map[string]string{
		"xrpc://A/students.xml":        "A",
		"xrpc://example.org/depts.xml": "example.org",
		"xrpc://h":                     "h",
		"plain.xml":                    "",
		"http://x/y.xml":               "",
		"xrpc://":                      "",
	}
	for uri, want := range cases {
		got, ok := XRPCHost(uri)
		if (want == "") == ok || got != want {
			t.Errorf("XRPCHost(%q) = %q,%v want %q", uri, got, ok, want)
		}
	}
}

func TestDGraphVarrefEdges(t *testing.T) {
	q := mustQuery(t, `let $s := doc("a.xml") return for $x in $s/child::p return ($x, $s)`)
	g := Build(q.Body)
	// Every VarRef must resolve to its binder's expression.
	resolved := 0
	for ref, target := range g.RefTarget {
		if target == nil {
			t.Errorf("unresolved ref $%s", ref.Name)
		}
		resolved++
	}
	if resolved != 3 { // $s (in for-in), $x, $s
		t.Errorf("resolved %d refs, want 3", resolved)
	}
}

func TestDependsOnTransitivity(t *testing.T) {
	q := mustQuery(t, `let $s := doc("a.xml")/child::p return let $t := $s/child::q return count($t)`)
	g := Build(q.Body)
	// Find the doc path (bind of $s).
	outer := q.Body.(*xq.LetExpr)
	docPath := outer.Bind
	dep := g.DependsOn(docPath)
	// count($t) must depend on the doc path through two varref hops.
	inner := outer.Return.(*xq.LetExpr)
	if !dep[inner.Return] {
		t.Error("count($t) should depend on the doc path transitively")
	}
	if !dep[q.Body] {
		t.Error("the root depends on everything inside")
	}
	if dep[inner.Bind.(*xq.PathExpr).Input] == false {
		t.Error("$s reference depends on the doc path")
	}
}

func TestParamUsers(t *testing.T) {
	q := mustQuery(t, `let $out := 1 return let $s := doc("a.xml")/child::p[child::q = $out] return $s`)
	g := Build(q.Body)
	inner := q.Body.(*xq.LetExpr).Return.(*xq.LetExpr)
	rs := inner.Bind
	users := g.ParamUsers(rs)
	found := false
	for n := range users {
		if ref, ok := n.(*xq.VarRef); ok && ref.Name == "out" {
			found = true
		}
	}
	if !found {
		t.Error("ParamUsers must include the $out reference")
	}
	if !users[rs] {
		t.Error("the candidate root itself transitively uses the parameter")
	}
}

func TestSinkLetsTableIII(t *testing.T) {
	// Qc2 must normalize into the Qn2 shape: $c sinks into the for-in
	// clause, $s sinks into $t's binding.
	q := mustQuery(t, qc2)
	AlphaRename(q)
	SinkLets(q)
	got := xq.Print(q.Body)
	// $c's let must now live inside the for-in expression.
	if !strings.Contains(got, `for $e in (let $c := doc("xrpc://B/course42.xml") return`) {
		t.Errorf("let $c not sunk into for-in:\n%s", got)
	}
	// $s's let must live inside $t's binding.
	if !strings.Contains(got, `let $t := (let $s := (doc("xrpc://A/students.xml")/child::people/child::person) return`) {
		t.Errorf("let $s not sunk into $t's binding:\n%s", got)
	}
	// Result must still parse.
	if _, err := xq.ParseExpr(got); err != nil {
		t.Fatalf("normalized query does not reparse: %v\n%s", err, got)
	}
}

func TestSinkLetsDropsUnused(t *testing.T) {
	q := mustQuery(t, `let $dead := doc("a.xml") return 42`)
	AlphaRename(q)
	SinkLets(q)
	if xq.Print(q.Body) != "42" {
		t.Errorf("unused let should drop: %s", xq.Print(q.Body))
	}
}

func TestSinkLetsStopsAtForReturn(t *testing.T) {
	// A let used only in a for-return must NOT sink into the loop body
	// (it would be re-evaluated per iteration).
	q := mustQuery(t, `let $v := doc("a.xml")/child::p return for $x in (1,2) return ($x, $v)`)
	AlphaRename(q)
	SinkLets(q)
	if _, ok := q.Body.(*xq.LetExpr); !ok {
		t.Errorf("let sank into a for body: %s", xq.Print(q.Body))
	}
}

func TestSinkLetsAlphaCapture(t *testing.T) {
	// Two binders named $x: renaming must keep them apart while sinking.
	q := mustQuery(t, `let $x := 1 return for $x in (2,3) return $x`)
	AlphaRename(q)
	SinkLets(q)
	// Outer $x unused after resolution → dropped; loop unchanged.
	fe, ok := q.Body.(*xq.ForExpr)
	if !ok {
		t.Fatalf("want for at top, got %s", xq.Print(q.Body))
	}
	if xq.Print(fe.Return) != "$"+fe.Var {
		t.Errorf("loop body should reference the loop var: %s", xq.Print(q.Body))
	}
}

func decompose(t *testing.T, src string, strat Strategy, opts Options) *Plan {
	t.Helper()
	q, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Decompose(q, strat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDecomposeQ2ByValueTableIV(t *testing.T) {
	// Qv2: under pass-by-value only the A-side doc path ships (fcn1); the
	// B-side stays local because /child::grade sits on top of a for-loop.
	plan := decompose(t, qn2, ByValue, DefaultOptions())
	if len(plan.Remotes) != 1 {
		t.Fatalf("by-value should push exactly 1 subquery, got %d:\n%s",
			len(plan.Remotes), xq.PrintQuery(plan.Query))
	}
	r := plan.Remotes[0]
	if r.Host != "A" {
		t.Errorf("pushed to %q, want A", r.Host)
	}
	body := xq.Print(r.X.Body)
	want := `doc("xrpc://A/students.xml")/child::people/child::person`
	if body != want {
		t.Errorf("fcn1 body = %s\nwant %s", body, want)
	}
	if len(r.X.Params) != 0 {
		t.Errorf("fcn1 takes no parameters, got %v", r.X.Params)
	}
}

func TestDecomposeQ2ByFragmentTableIV(t *testing.T) {
	// Qf2: both sides ship; fcn2 receives $t as parameter (semijoin).
	plan := decompose(t, qn2, ByFragment, DefaultOptions())
	if len(plan.Remotes) != 2 {
		t.Fatalf("by-fragment should push 2 subqueries, got %d:\n%s",
			len(plan.Remotes), xq.PrintQuery(plan.Query))
	}
	hosts := map[string]*RemoteSite{}
	for i := range plan.Remotes {
		hosts[plan.Remotes[i].Host] = &plan.Remotes[i]
	}
	a, okA := hosts["A"]
	b, okB := hosts["B"]
	if !okA || !okB {
		t.Fatalf("want pushes to A and B, got %v", hosts)
	}
	// fcn1 (A): the whole student-selection including the for-loop.
	if !strings.Contains(xq.Print(a.X.Body), "for $x") {
		t.Errorf("A-side body should include the selection loop: %s", xq.Print(a.X.Body))
	}
	if len(a.X.Params) != 0 {
		t.Errorf("A-side takes no params, got %v", a.X.Params)
	}
	// fcn2 (B): the exam loop, parameterized by $t.
	if len(b.X.Params) != 1 {
		t.Fatalf("B-side should take one param ($t), got %v", b.X.Params)
	}
	if b.X.Params[0].Ref != "t" {
		t.Errorf("B-side param ref = %q, want t", b.X.Params[0].Ref)
	}
	if !strings.Contains(xq.Print(b.X.Body), `doc("xrpc://B/course42.xml")`) {
		t.Errorf("B-side body lost its doc: %s", xq.Print(b.X.Body))
	}
	// The final /child::grade stays local.
	if !strings.Contains(xq.Print(plan.Query.Body), "/child::grade") {
		t.Errorf("grade step must remain local:\n%s", xq.Print(plan.Query.Body))
	}
}

func TestDecomposeQ2ByProjectionRelatives(t *testing.T) {
	plan := decompose(t, qn2, ByProjection, DefaultOptions())
	if len(plan.Remotes) != 2 {
		t.Fatalf("by-projection should push 2 subqueries, got %d", len(plan.Remotes))
	}
	for _, r := range plan.Remotes {
		rel, ok := plan.Relatives[r.X]
		if !ok {
			t.Fatalf("no relative paths for %s", r.Host)
		}
		if r.Host == "B" {
			// Parameter projection: $t/attribute::id is what fcn2 touches.
			joined := ""
			for _, ps := range rel.ParamUsed {
				joined += ps.String()
			}
			for _, ps := range rel.ParamReturned {
				joined += ps.String()
			}
			if !strings.Contains(joined, "child::id") {
				t.Errorf("B param projection should mention child::id: %s", joined)
			}
			// Result projection: /child::grade.
			if !strings.Contains(rel.ResultUsed.String()+rel.ResultReturn.String(), "child::grade") {
				t.Errorf("B result projection should mention child::grade: used=%s ret=%s",
					rel.ResultUsed, rel.ResultReturn)
			}
		}
	}
}

func TestDecomposeCodeMotionTableIV(t *testing.T) {
	// With code motion, fcn2's $para1/child::id moves to the caller: the
	// remote body compares against a new parameter, and the caller binds
	// let $cmN := $t/child::id.
	plan := decompose(t, qn2, ByFragment, Options{SinkLets: true, CodeMotion: true})
	var b *RemoteSite
	for i := range plan.Remotes {
		if plan.Remotes[i].Host == "B" {
			b = &plan.Remotes[i]
		}
	}
	if b == nil {
		t.Fatal("no B-side push")
	}
	body := xq.Print(b.X.Body)
	if strings.Contains(body, "/child::id") {
		t.Errorf("code motion should remove the id path from the remote body: %s", body)
	}
	if len(b.X.Params) != 1 {
		t.Fatalf("after motion the original node param is dropped, one string param remains: %v", b.X.Params)
	}
	if !strings.HasPrefix(b.X.Params[0].Name, "para") {
		t.Errorf("moved param name = %s", b.X.Params[0].Name)
	}
	// Caller side must bind the moved path over $t.
	printed := xq.PrintQuery(plan.Query)
	if !strings.Contains(printed, "$t/child::id") {
		t.Errorf("caller must evaluate $t/child::id:\n%s", printed)
	}
}

func TestDecomposeDataShippingNoRewrite(t *testing.T) {
	plan := decompose(t, qn2, DataShipping, DefaultOptions())
	if len(plan.Remotes) != 0 {
		t.Errorf("data shipping must not decompose")
	}
}

func TestConditionIBlocksReverseAxisConsumer(t *testing.T) {
	// A reverse step *inside* the candidate is fine: everything executes at
	// the remote peer, no copies are navigated.
	src := `doc("xrpc://A/d.xml")/child::a/child::b/parent::node()`
	plan := decompose(t, src, ByValue, DefaultOptions())
	if len(plan.Remotes) != 1 {
		t.Fatalf("internal reverse step should not block: %d", len(plan.Remotes))
	}
	// With a second host in play the query cannot ship whole; the A-side
	// result is then navigated with parent:: locally, which by-value and
	// by-fragment must refuse (Problem 1) while by-projection ships the
	// ancestors and allows it.
	// count($b) pins the let above the sequence so the parent:: step really
	// consumes a remote result across the boundary.
	src2 := `let $b := doc("xrpc://A/d.xml")/child::a/child::b
	         return (doc("xrpc://B/e.xml")/child::x, count($b), $b/parent::node())`
	for _, tc := range []struct {
		strat Strategy
		want  int // number of pushes that include host A
	}{
		{ByValue, 0}, {ByFragment, 0}, {ByProjection, 1},
	} {
		plan := decompose(t, src2, tc.strat, DefaultOptions())
		gotA := 0
		for _, r := range plan.Remotes {
			if r.Host == "A" {
				gotA++
			}
		}
		if gotA != tc.want {
			t.Errorf("%s: pushed %d A-side subqueries, want %d\n%s",
				tc.strat, gotA, tc.want, xq.PrintQuery(plan.Query))
		}
	}
}

func TestConditionIIBlocksNodeComparison(t *testing.T) {
	// An identity comparison over nodes from two different calls to the
	// same document must never be split across messages — hasMatchingDoc
	// keeps condition ii active even under fragment/projection.
	src := `let $b := doc("xrpc://A/d.xml")/child::a/child::b
	        let $c := doc("xrpc://A/d.xml")/child::a/child::c
	        return (doc("xrpc://B/e.xml")/child::x, count($b), count($c), $b is $c)`
	for _, strat := range []Strategy{ByValue, ByFragment, ByProjection} {
		plan := decompose(t, src, strat, DefaultOptions())
		for _, r := range plan.Remotes {
			if r.Host == "A" {
				t.Errorf("%s: A-side operand of a cross-call identity comparison shipped:\n%s",
					strat, xq.Print(r.X.Body))
			}
		}
	}
	// With a single host, pushing the comparison whole (both calls execute
	// at A) is legal and preferable.
	whole := `let $b := doc("xrpc://A/d.xml")/child::a/child::b
	          let $c := doc("xrpc://A/d.xml")/child::a/child::c
	          return $b is $c`
	plan := decompose(t, whole, ByFragment, DefaultOptions())
	if len(plan.Remotes) != 1 {
		t.Errorf("single-host identity comparison should push whole, got %d", len(plan.Remotes))
	}
}

func TestConditionIVBlocksRootFunction(t *testing.T) {
	src := `let $b := doc("xrpc://A/d.xml")/child::a/child::b
	        return (doc("xrpc://B/e.xml")/child::x, count($b), count(root($b)))`
	for _, tc := range []struct {
		strat Strategy
		want  int // A-side pushes
	}{
		{ByValue, 0}, {ByFragment, 0}, {ByProjection, 1},
	} {
		plan := decompose(t, src, tc.strat, DefaultOptions())
		gotA := 0
		for _, r := range plan.Remotes {
			if r.Host == "A" {
				gotA++
			}
		}
		if gotA != tc.want {
			t.Errorf("%s: pushed %d A-side, want %d", tc.strat, gotA, tc.want)
		}
	}
}

func TestHasMatchingDoc(t *testing.T) {
	v1, v2 := &xq.VarRef{Name: "v1"}, &xq.VarRef{Name: "v2"}
	mk := func(ids ...DocID) map[DocID]bool {
		out := map[DocID]bool{}
		for _, d := range ids {
			out[d] = true
		}
		return out
	}
	if HasMatchingDoc(mk(DocID{"a.xml", v1})) {
		t.Error("single doc never matches")
	}
	if !HasMatchingDoc(mk(DocID{"a.xml", v1}, DocID{"a.xml", v2})) {
		t.Error("same URI at two vertices matches")
	}
	if HasMatchingDoc(mk(DocID{"a.xml", v1}, DocID{"b.xml", v2})) {
		t.Error("different URIs do not match")
	}
	if !HasMatchingDoc(mk(DocID{"*", v1}, DocID{"b.xml", v2})) {
		t.Error("wildcard matches anything")
	}
}

func TestDecomposedQueryStillPrintsAndParses(t *testing.T) {
	for _, strat := range []Strategy{ByValue, ByFragment, ByProjection} {
		plan := decompose(t, qn2, strat, DefaultOptions())
		printed := xq.PrintQuery(plan.Query)
		if printed == "" {
			t.Errorf("%s: empty print", strat)
		}
		// Shipped bodies must be reparseable (they travel as source text).
		for _, r := range plan.Remotes {
			if _, err := xq.ParseExpr(xq.Print(r.X.Body)); err != nil {
				t.Errorf("%s: shipped body does not reparse: %v\n%s",
					strat, err, xq.Print(r.X.Body))
			}
		}
	}
}

func TestSingleXRPCDocNoStepNotInteresting(t *testing.T) {
	// Example 4.2: the $c subtree lacks an XPath step → no i-point.
	plan := decompose(t, `doc("xrpc://B/course42.xml")`, ByFragment, DefaultOptions())
	if len(plan.Remotes) != 0 {
		t.Errorf("doc-only fetch must not decompose (data shipping is as good)")
	}
}

func TestMultiHostSubtreeNotPushable(t *testing.T) {
	src := `(doc("xrpc://A/a.xml")/child::x, doc("xrpc://B/b.xml")/child::y)`
	plan := decompose(t, src, ByFragment, DefaultOptions())
	if len(plan.Remotes) != 2 {
		t.Fatalf("each side pushes separately: got %d", len(plan.Remotes))
	}
	hosts := map[string]bool{}
	for _, r := range plan.Remotes {
		hosts[r.Host] = true
	}
	if !hosts["A"] || !hosts["B"] {
		t.Errorf("hosts = %v", hosts)
	}
}
