package core

import (
	"fmt"

	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Options tune the decomposition pipeline.
type Options struct {
	// SinkLets enables the §IV let-normalization (on by default via
	// DefaultOptions).
	SinkLets bool
	// CodeMotion enables distributed code motion (§IV): expressions that
	// solely depend on a function parameter move to the caller side as
	// additional parameters.
	CodeMotion bool
	// Shards lists shard maps describing logical documents partitioned
	// across peers; the decomposer then runs the shard-aware rewrite pass
	// (shardRewrite) before choosing ordinary decomposition points.
	Shards []ShardMap
	// KnownPeers, when non-nil, is the engine's peer set; Decompose fails
	// with ErrUnknownShardPeer when a shard map names a peer outside it.
	KnownPeers map[string]bool
}

// DefaultOptions is the configuration the evaluation section uses.
func DefaultOptions() Options { return Options{SinkLets: true} }

// RemoteSite pairs an inserted XRPCExpr with its target host.
type RemoteSite struct {
	X    *xq.XRPCExpr
	Host string
}

// Plan is a decomposed query ready for execution: the rewritten query, the
// inserted remote calls, and (for pass-by-projection) the relative
// projection paths per call.
type Plan struct {
	Query     *xq.Query
	Strategy  Strategy
	Remotes   []RemoteSite
	Relatives map[*xq.XRPCExpr]projection.RelativePaths
	// Shards records the outcome of every shard-rewrite candidate: which
	// logical-document expressions became scatter loops and which fell back
	// to local evaluation over the materialized union, and why.
	Shards []ShardDecision
}

// Decompose rewrites q in place into an equivalent distributed query under
// the given strategy and returns the plan. The pipeline is: normalize
// (surface execute-at → XCore rule 27), alpha-rename, sink let-bindings,
// identify interesting decomposition points, insert XRPCExprs (§III-B),
// optionally apply code motion, and derive projection paths.
func Decompose(q *xq.Query, strat Strategy, opts Options) (*Plan, error) {
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	if err := validateShards(opts); err != nil {
		return nil, err
	}
	plan := &Plan{Query: q, Strategy: strat, Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}}
	if strat == DataShipping {
		// No decomposition at all: logical documents materialize their union
		// at the originator (the resolver's data-shipping model).
		return plan, nil
	}
	AlphaRename(q)
	if len(opts.Shards) > 0 {
		dec, err := shardRewrite(q, strat, opts.Shards)
		if err != nil {
			return nil, err
		}
		plan.Shards = dec
	}
	if opts.SinkLets {
		SinkLets(q)
	}
	g := Build(q.Body)
	chosen := choosePoints(g, strat)
	fcnSeq := 0
	for _, rs := range chosen {
		fcnSeq++
		x := insertXRPC(g, q, rs.expr, rs.host, fmt.Sprintf("fcn%d", fcnSeq))
		plan.Remotes = append(plan.Remotes, RemoteSite{X: x, Host: rs.host})
	}
	if opts.CodeMotion {
		applyCodeMotion(q, plan)
	}
	if strat == ByProjection {
		// Derive relative projection paths for every remote call in the
		// final query — decomposer-inserted sites and user-written
		// execute-at expressions alike.
		var all []*xq.XRPCExpr
		xq.Walk(q.Body, func(e xq.Expr) bool {
			if x, ok := e.(*xq.XRPCExpr); ok {
				all = append(all, x)
			}
			return true
		})
		if len(all) > 0 {
			a, err := projection.Analyze(q)
			if err != nil {
				return nil, err
			}
			for _, x := range all {
				plan.Relatives[x] = a.Relative(x, q.Body)
			}
		}
	}
	return plan, nil
}

type point struct {
	expr xq.Expr
	host string
}

// choosePoints scans the d-graph in pre-order for interesting decomposition
// points, greedily taking the topmost and skipping their descendants.
func choosePoints(g *Graph, strat Strategy) []point {
	var out []point
	taken := map[xq.Expr]bool{}
	// User-written execute-at expressions are already remote: never insert
	// a second XRPCExpr inside their bodies (rule 27 functions are flat).
	for _, v := range g.Pre {
		if _, isRemote := v.(*xq.XRPCExpr); isRemote {
			taken[v] = true
		}
	}
	insideTaken := func(e xq.Expr) bool {
		for p := e; p != nil; p = g.Parent[p] {
			if taken[p] {
				return true
			}
		}
		return false
	}
	for _, v := range g.Pre {
		if insideTaken(v) {
			continue
		}
		if host, ok := g.Interesting(v, strat); ok {
			taken[v] = true
			out = append(out, point{expr: v, host: host})
		}
	}
	return out
}

// insertXRPC performs the §III-B rewrite: the subgraph rooted at rs becomes
// the body of a new remote function; every outgoing varref edge turns into
// an XRPCParam ($dotN := $outer); the XRPCExpr replaces rs in the tree.
func insertXRPC(g *Graph, q *xq.Query, rs xq.Expr, host, fname string) *xq.XRPCExpr {
	free := xq.FreeVars(rs)
	x := &xq.XRPCExpr{
		Target:   &xq.Literal{Val: xdm.NewString(host)},
		FuncName: fname,
	}
	subst := map[string]string{}
	i := 0
	// Deterministic parameter order: first use order in the body.
	var order []string
	seen := map[string]bool{}
	xq.Walk(rs, func(e xq.Expr) bool {
		if ref, ok := e.(*xq.VarRef); ok && free[ref.Name] && !seen[ref.Name] {
			seen[ref.Name] = true
			order = append(order, ref.Name)
		}
		return true
	})
	for _, name := range order {
		i++
		pn := fmt.Sprintf("dot%d", i)
		subst[name] = pn
		x.Params = append(x.Params, &xq.XRPCParam{Name: pn, Ref: name})
		x.Types = append(x.Types, xq.AnyItems)
	}
	x.Body = xq.RenameFreeVars(rs, subst)
	if !replaceExpr(q, rs, x) {
		panic("core: insertion point not found in query")
	}
	return x
}

// replaceExpr swaps old for new anywhere in the query (body or declared
// function bodies), returning whether a replacement happened.
func replaceExpr(q *xq.Query, old, nw xq.Expr) bool {
	if q.Body == old {
		q.Body = nw
		return true
	}
	found := false
	var visit func(e xq.Expr)
	visit = func(e xq.Expr) {
		if found || e == nil {
			return
		}
		for _, s := range childSlots(e) {
			if s.get() == old {
				s.set(nw)
				found = true
				return
			}
		}
		for _, s := range childSlots(e) {
			visit(s.get())
		}
	}
	visit(q.Body)
	for _, f := range q.Funcs {
		if found {
			break
		}
		if f.Body == old {
			f.Body = nw
			found = true
			break
		}
		visit(f.Body)
	}
	return found
}

// applyCodeMotion implements distributed code motion (§IV): inside each
// shipped body, a downward path applied to a parameter and consumed by a
// value comparison is replaced by a fresh parameter computed at the caller,
// so only the (small) extracted values ship instead of full nodes.
func applyCodeMotion(q *xq.Query, plan *Plan) {
	seq := 0
	for _, site := range plan.Remotes {
		x := site.X
		for _, param := range append([]*xq.XRPCParam(nil), x.Params...) {
			moved := movableParamPaths(x.Body, param.Name)
			if len(moved) == 0 {
				continue
			}
			for _, pe := range moved {
				seq++
				newParam := fmt.Sprintf("para%d", seq)
				letVar := fmt.Sprintf("cm%d", seq)
				// Caller-side expression: the moved path applied to the
				// caller's value of the parameter, atomized so the message
				// carries string values instead of nodes ("extract the
				// string value of id at peer A and only ship the strings",
				// Table IV's $para2 as xs:string*).
				movedPath := xq.CloneExpr(pe).(*xq.PathExpr)
				movedPath.Input = &xq.VarRef{Name: param.Ref}
				callerExpr := &xq.FunCall{Name: "data", Args: []xq.Expr{movedPath}}
				// Body side: the path becomes a parameter reference.
				if !replaceExpr(q, xq.Expr(pe), &xq.VarRef{Name: newParam}) {
					continue
				}
				x.Params = append(x.Params, &xq.XRPCParam{Name: newParam, Ref: letVar})
				x.Types = append(x.Types, xq.AnyItems)
				// Wrap the XRPCExpr with the caller-side let.
				wrap := &xq.LetExpr{Var: letVar, Bind: callerExpr, Return: x}
				if !replaceExpr(q, xq.Expr(x), xq.Expr(wrap)) {
					// x may already be wrapped (several moved paths): splice
					// above the innermost wrapper instead.
					spliceAbove(q, x, wrap)
				}
			}
			// Drop the original parameter if the body no longer uses it.
			if countFreeUses(x.Body, param.Name) == 0 {
				var keepP []*xq.XRPCParam
				var keepT []xq.SeqType
				for i, p := range x.Params {
					if p != param {
						keepP = append(keepP, p)
						if i < len(x.Types) {
							keepT = append(keepT, x.Types[i])
						}
					}
				}
				x.Params, x.Types = keepP, keepT
			}
		}
	}
}

// spliceAbove inserts wrap directly above x when x is already nested below
// earlier code-motion lets.
func spliceAbove(q *xq.Query, x *xq.XRPCExpr, wrap *xq.LetExpr) {
	var visit func(e xq.Expr) bool
	visit = func(e xq.Expr) bool {
		if e == nil {
			return false
		}
		for _, s := range childSlots(e) {
			if s.get() == xq.Expr(x) {
				s.set(wrap)
				return true
			}
			if visit(s.get()) {
				return true
			}
		}
		return false
	}
	if q.Body == xq.Expr(x) {
		q.Body = wrap
		return
	}
	visit(q.Body)
}

// movableParamPaths finds maximal PathExprs in body of the form
// $param/downward-steps (no predicates) whose value is consumed by a value
// comparison — the §IV safety condition approximated: moving only
// atomization-bound downward paths of a parameter is semantically safe.
func movableParamPaths(body xq.Expr, param string) []*xq.PathExpr {
	var out []*xq.PathExpr
	var visit func(e xq.Expr, inValueCmp bool)
	visit = func(e xq.Expr, inValueCmp bool) {
		switch v := e.(type) {
		case nil:
			return
		case *xq.CompareExpr:
			if !v.Op.IsNodeComp() {
				visit(v.Left, true)
				visit(v.Right, true)
				return
			}
			visit(v.Left, false)
			visit(v.Right, false)
		case *xq.PathExpr:
			if inValueCmp && isParamDownwardPath(v, param) {
				out = append(out, v)
				return
			}
			for _, c := range xq.Children(v) {
				visit(c, false)
			}
		default:
			for _, c := range xq.Children(e) {
				visit(c, false)
			}
		}
	}
	visit(body, false)
	return out
}

func isParamDownwardPath(pe *xq.PathExpr, param string) bool {
	ref, ok := pe.Input.(*xq.VarRef)
	if !ok || ref.Name != param || len(pe.Steps) == 0 {
		return false
	}
	for _, st := range pe.Steps {
		if st.Filter || len(st.Preds) > 0 {
			return false
		}
		switch st.Axis {
		case xq.AxisChild, xq.AxisAttribute, xq.AxisDescendant, xq.AxisDescendantOrSelf, xq.AxisSelf:
		default:
			return false
		}
	}
	return true
}
