// Package core implements the paper's primary contribution: the XQuery-Core
// dependency-graph decomposition framework (§III), the conservative
// pass-by-value insertion conditions i–iv (§IV), interesting decomposition
// points, let-sinking normalization, distributed code motion, and the relaxed
// by-fragment (§V) and by-projection (§VI) condition sets. Decompose rewrites
// a query over xrpc:// documents into an equivalent query whose remote-
// executable subgraphs became XRPCExprs.
//
// The layer's contract: Decompose(q, strategy, opts) returns a Plan whose
// Query evaluates — through any eval.RemoteCaller honoring the XRPC
// semantics — to exactly the sequence the undecomposed query produces
// locally; every rewrite here is proven result-preserving, and anything
// unprovable is left local. The same guarantee covers the shard-aware pass
// (shard.go): a ShardMap registers one logical document partitioned across
// peers — optionally with per-shard replica sets for fault tolerance — and
// queries over it either become concurrent scatter loops or fall back to
// evaluation over the materialized shard union, never a third thing.
// core depends only on the xq AST and xdm data model; it never dispatches.
package core

import (
	"strings"

	"distxq/internal/xq"
)

// Graph is the dependency graph (d-graph) of a query body: the parse tree
// plus varref edges from variable references to the expressions their
// binders evaluate (§III-A). Vertices are AST nodes.
type Graph struct {
	Root xq.Expr
	// Parent is the parse-edge parent.
	Parent map[xq.Expr]xq.Expr
	// RefTarget maps a VarRef to the expression its binder binds ($x of
	// `for $x in E` maps to E; a let maps to its bind expression). Nil for
	// free variables (e.g. function parameters).
	RefTarget map[*xq.VarRef]xq.Expr
	// Pre lists vertices in pre-order.
	Pre []xq.Expr
	// XRPCParamTarget resolves rule-28 parameter references.
	XRPCParamTarget map[*xq.XRPCParam]xq.Expr
}

// Build constructs the d-graph of a body expression. Variable scoping
// follows the binder structure; shadowing is respected.
func Build(root xq.Expr) *Graph {
	g := &Graph{
		Root:            root,
		Parent:          map[xq.Expr]xq.Expr{},
		RefTarget:       map[*xq.VarRef]xq.Expr{},
		XRPCParamTarget: map[*xq.XRPCParam]xq.Expr{},
	}
	g.walk(root, nil, map[string]xq.Expr{})
	return g
}

func (g *Graph) walk(e xq.Expr, parent xq.Expr, scope map[string]xq.Expr) {
	if e == nil {
		return
	}
	g.Parent[e] = parent
	g.Pre = append(g.Pre, e)
	bind := func(name string, target xq.Expr, inner map[string]xq.Expr) map[string]xq.Expr {
		ns := make(map[string]xq.Expr, len(inner)+1)
		for k, v := range inner {
			ns[k] = v
		}
		ns[name] = target
		return ns
	}
	switch v := e.(type) {
	case *xq.VarRef:
		if t, ok := scope[v.Name]; ok {
			g.RefTarget[v] = t
		}
	case *xq.ForExpr:
		g.walk(v.In, e, scope)
		inner := bind(v.Var, v.In, scope)
		for _, s := range v.OrderBy {
			g.walk(s.Key, e, inner)
		}
		g.walk(v.Return, e, inner)
	case *xq.LetExpr:
		g.walk(v.Bind, e, scope)
		g.walk(v.Return, e, bind(v.Var, v.Bind, scope))
	case *xq.QuantifiedExpr:
		g.walk(v.In, e, scope)
		g.walk(v.Satisfies, e, bind(v.Var, v.In, scope))
	case *xq.TypeswitchExpr:
		g.walk(v.Operand, e, scope)
		for _, c := range v.Cases {
			s2 := scope
			if c.Var != "" {
				s2 = bind(c.Var, v.Operand, scope)
			}
			g.walk(c.Return, e, s2)
		}
		s2 := scope
		if v.DefaultVar != "" {
			s2 = bind(v.DefaultVar, v.Operand, scope)
		}
		g.walk(v.Default, e, s2)
	case *xq.XRPCExpr:
		g.walk(v.Target, e, scope)
		inner := map[string]xq.Expr{}
		for _, p := range v.Params {
			if t, ok := scope[p.Ref]; ok {
				g.XRPCParamTarget[p] = t
			}
			inner[p.Name] = nil // remote body sees only its parameters
		}
		g.walk(v.Body, e, inner)
	default:
		for _, c := range xq.Children(e) {
			g.walk(c, e, scope)
		}
	}
}

// Subtree returns the parse-edge subtree of rs (the vertex-induced subgraph
// rooted at rs, §III-A), as a membership set.
func (g *Graph) Subtree(rs xq.Expr) map[xq.Expr]bool {
	out := map[xq.Expr]bool{}
	xq.Walk(rs, func(e xq.Expr) bool {
		out[e] = true
		return true
	})
	return out
}

// DependsOn computes Dep(rs) = {n | n ⇒ rs}: every vertex whose value
// depends on rs, via parse edges (ancestors) and varref edges (readers of
// variables whose bindings contain rs), to a fixpoint.
func (g *Graph) DependsOn(rs xq.Expr) map[xq.Expr]bool {
	marked := map[xq.Expr]bool{rs: true}
	for changed := true; changed; {
		changed = false
		// Ancestor propagation: a parent parse-depends on marked children.
		for i := len(g.Pre) - 1; i >= 0; i-- {
			n := g.Pre[i]
			if marked[n] {
				if p := g.Parent[n]; p != nil && !marked[p] {
					marked[p] = true
					changed = true
				}
			}
		}
		// Varref jumps: a reference depends on its binder's expression.
		for ref, target := range g.RefTarget {
			if !marked[ref] && target != nil && marked[target] {
				marked[ref] = true
				changed = true
			}
		}
	}
	return marked
}

// ParamUsers computes P(rs) = {n ∈ V(Gs) | rs ⇒p n ∧ n ⇒ v, v ∉ V(Gs)}:
// vertices inside the candidate subgraph that (transitively) use values
// bound outside — the expressions touching shipped parameters.
func (g *Graph) ParamUsers(rs xq.Expr) map[xq.Expr]bool {
	inside := g.Subtree(rs)
	marked := map[xq.Expr]bool{}
	// Seed: references whose target lies outside (or is unknown/free).
	for ref, target := range g.RefTarget {
		if !inside[ref] {
			continue
		}
		if target == nil || !inside[target] {
			marked[ref] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(g.Pre) - 1; i >= 0; i-- {
			n := g.Pre[i]
			if !marked[n] || n == rs {
				continue
			}
			if p := g.Parent[n]; p != nil && inside[p] && !marked[p] {
				marked[p] = true
				changed = true
			}
		}
		for ref, target := range g.RefTarget {
			if inside[ref] && !marked[ref] && target != nil && inside[target] && marked[target] {
				marked[ref] = true
				changed = true
			}
		}
	}
	return marked
}

// Reach computes the dual closure {m | rs ⇒ m}: everything rs depends on —
// its parse subtree plus, transitively, the bindings of variables referenced
// inside.
func (g *Graph) Reach(rs xq.Expr) map[xq.Expr]bool {
	out := map[xq.Expr]bool{}
	var add func(e xq.Expr)
	add = func(e xq.Expr) {
		if e == nil || out[e] {
			return
		}
		xq.Walk(e, func(sub xq.Expr) bool {
			if out[sub] {
				return false
			}
			out[sub] = true
			if ref, ok := sub.(*xq.VarRef); ok {
				if t := g.RefTarget[ref]; t != nil {
					add(t)
				}
			}
			return true
		})
	}
	add(rs)
	return out
}

// DocID identifies one fn:doc() application: the URI tagged with the vertex
// where the document is opened (uri::vy, §IV). A computed URI is "*";
// element constructors get an artificial per-vertex URI.
type DocID struct {
	URI    string
	Vertex xq.Expr
}

// DocSet computes D(v): the URI dependency set over parse edges only (§IV).
func (g *Graph) DocSet(v xq.Expr) map[DocID]bool {
	out := map[DocID]bool{}
	xq.Walk(v, func(e xq.Expr) bool {
		switch fc := e.(type) {
		case *xq.FunCall:
			name := strings.TrimPrefix(fc.Name, "fn:")
			if name == "doc" || name == "collection" {
				uri := "*"
				if name == "doc" && len(fc.Args) == 1 {
					if lit, ok := fc.Args[0].(*xq.Literal); ok {
						uri = lit.Val.ItemString()
					}
				}
				out[DocID{URI: uri, Vertex: e}] = true
			}
		case *xq.ElemConstructor, *xq.DocConstructor:
			out[DocID{URI: "(constructed)", Vertex: e}] = true
		case *xq.XRPCExpr:
			// An already-inserted remote call is opaque.
			return false
		}
		return true
	})
	return out
}

// SameDocSet reports set equality of two doc sets.
func SameDocSet(a, b map[DocID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// HasMatchingDoc implements the §V predicate (as the prose defines it): the
// expression depends on two *different* applications of fn:doc() with the
// same URI (computed URIs match anything), the situation that can mix nodes
// of one document obtained through separate calls.
func HasMatchingDoc(docs map[DocID]bool) bool {
	ids := make([]DocID, 0, len(docs))
	for d := range docs {
		ids = append(ids, d)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[i].Vertex == ids[j].Vertex {
				continue
			}
			if ids[i].URI == ids[j].URI || ids[i].URI == "*" || ids[j].URI == "*" {
				return true
			}
		}
	}
	return false
}

// XRPCHosts extracts the distinct xrpc:// hosts of a doc set.
func XRPCHosts(docs map[DocID]bool) []string {
	seen := map[string]bool{}
	var out []string
	for d := range docs {
		if host, ok := XRPCHost(d.URI); ok && !seen[host] {
			seen[host] = true
			out = append(out, host)
		}
	}
	return out
}

// XRPCHost parses the host of an xrpc://host/path URI.
func XRPCHost(uri string) (string, bool) {
	const scheme = "xrpc://"
	if !strings.HasPrefix(uri, scheme) {
		return "", false
	}
	rest := uri[len(scheme):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}
