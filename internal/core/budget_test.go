package core

import (
	"testing"
	"time"
)

func TestBudget(t *testing.T) {
	start := time.Unix(1000, 0)
	cases := []struct {
		name      string
		b         Budget
		zero      bool
		deadline  time.Time
		bounded   bool
		allowance time.Duration
	}{
		{
			name: "zero budget is unbounded",
			b:    Budget{},
			zero: true,
		},
		{
			name: "negative wall is unbounded",
			b:    Budget{Wall: -time.Second},
			zero: true,
		},
		{
			name:      "positive wall bounds from start",
			b:         Budget{Wall: 2 * time.Second},
			deadline:  start.Add(2 * time.Second),
			bounded:   true,
			allowance: 200 * time.Millisecond,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.b.Zero(); got != c.zero {
				t.Errorf("Zero = %v, want %v", got, c.zero)
			}
			dl, ok := c.b.DeadlineFrom(start)
			if ok != c.bounded {
				t.Fatalf("DeadlineFrom ok = %v, want %v", ok, c.bounded)
			}
			if ok && !dl.Equal(c.deadline) {
				t.Errorf("deadline %v, want %v", dl, c.deadline)
			}
			if got := c.b.QueueAllowance(); got != c.allowance {
				t.Errorf("QueueAllowance = %v, want %v", got, c.allowance)
			}
		})
	}
}
