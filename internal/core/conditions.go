package core

import (
	"strings"

	"distxq/internal/xq"
)

// Strategy selects the decomposition condition set.
type Strategy uint8

// The evaluation strategies of §VII. DataShipping performs no decomposition
// at all (fn:doc over xrpc:// fetches whole documents).
const (
	DataShipping Strategy = iota
	ByValue
	ByFragment
	ByProjection
)

func (s Strategy) String() string {
	switch s {
	case DataShipping:
		return "data-shipping"
	case ByValue:
		return "pass-by-value"
	case ByFragment:
		return "pass-by-fragment"
	case ByProjection:
		return "pass-by-projection"
	}
	return "unknown"
}

// exprHasRevHorStep reports a vertex carrying a RevAxis or HorAxis rule.
func exprHasRevHorStep(e xq.Expr) bool {
	pe, ok := e.(*xq.PathExpr)
	if !ok {
		return false
	}
	for _, st := range pe.Steps {
		if st.Filter {
			continue
		}
		if st.Axis.IsReverse() || st.Axis.IsHorizontal() {
			return true
		}
	}
	return false
}

// exprIsNodeCmpOrSetOp reports a NodeCmp or NodeSetExpr rule (condition ii).
func exprIsNodeCmpOrSetOp(e xq.Expr) bool {
	if c, ok := e.(*xq.CompareExpr); ok {
		return c.Op.IsNodeComp()
	}
	_, isSet := e.(*xq.NodeSetExpr)
	return isSet
}

// exprHasAxisStep reports a vertex with an AxisStep rule (condition iii's n).
func exprHasAxisStep(e xq.Expr) bool {
	pe, ok := e.(*xq.PathExpr)
	if !ok {
		return false
	}
	for _, st := range pe.Steps {
		if !st.Filter {
			return true
		}
	}
	return false
}

// exprIsMixing reports a vertex whose rule belongs to condition iii's set of
// "mixed-call / unordered / overlapping" constructs. Under pass-by-fragment
// and pass-by-projection (§V), the ForExpr and OrderExpr restrictions drop
// (Bulk RPC plus fragment encoding preserve order), and so does the
// overlapping-axis restriction, leaving sequence construction and node-set
// operators.
func exprIsMixing(e xq.Expr, strat Strategy) bool {
	switch v := e.(type) {
	case *xq.SeqExpr:
		return len(v.Items) > 1
	case *xq.NodeSetExpr:
		return true
	case *xq.ForExpr:
		if strat == ByValue {
			return true // also covers OrderExpr (order by attaches to for)
		}
		return false
	case *xq.PathExpr:
		if strat != ByValue {
			return false
		}
		for _, st := range v.Steps {
			if !st.Filter && !st.Axis.NonOverlapping() {
				return true
			}
		}
	}
	return false
}

// exprIsProblemFun reports fn:root/fn:id/fn:idref applications (condition iv).
func exprIsProblemFun(e xq.Expr) bool {
	fc, ok := e.(*xq.FunCall)
	if !ok {
		return false
	}
	switch fc.Name {
	case "root", "id", "idref", "fn:root", "fn:id", "fn:idref":
		return true
	}
	return false
}

// ReachDocs collects the fn:doc applications an expression (transitively)
// depends on — the doc identities its value may contain. This is the input
// to the hasMatchingDoc gate of §V, which the paper attaches to "an
// expression [that] may not depend on two different applications in the
// query of fn:doc() with the same URI".
func (g *Graph) ReachDocs(n xq.Expr) map[DocID]bool {
	out := map[DocID]bool{}
	for m := range g.Reach(n) {
		switch fc := m.(type) {
		case *xq.FunCall:
			name := strings.TrimPrefix(fc.Name, "fn:")
			if name == "doc" || name == "collection" {
				uri := "*"
				if name == "doc" && len(fc.Args) == 1 {
					if lit, ok := fc.Args[0].(*xq.Literal); ok {
						uri = lit.Val.ItemString()
					}
				}
				out[DocID{URI: uri, Vertex: m}] = true
			}
		case *xq.ElemConstructor, *xq.DocConstructor:
			out[DocID{URI: "(constructed)", Vertex: m}] = true
		}
	}
	return out
}

// Valid reports whether rs satisfies the insertion conditions of the given
// strategy: the conservative by-value conditions i–iv (§IV), the relaxed
// by-fragment conditions (§V: ii and iii only for consumers that may mix
// nodes of one document obtained through different calls — hasMatchingDoc —
// and iii without the for/order/overlap restrictions), or the by-projection
// conditions (§VI: only the gated ii and iii).
func (g *Graph) Valid(rs xq.Expr, strat Strategy) bool {
	if strat == DataShipping {
		return false
	}
	inside := g.Subtree(rs)
	dep := g.DependsOn(rs)
	// Consumers: vertices using the result of rs from outside its subtree —
	// the useResult(n, rs) side. Expressions entirely inside rs execute
	// remotely and never see shipped copies (Example 4.1 keeps v1).
	consumer := func(n xq.Expr) bool { return dep[n] && !inside[n] }
	paramUser := g.ParamUsers(rs)

	gateCache := map[xq.Expr]bool{}
	gateFor := func(n xq.Expr) bool {
		if strat == ByValue {
			return true
		}
		if v, ok := gateCache[n]; ok {
			return v
		}
		v := HasMatchingDoc(g.ReachDocs(n))
		gateCache[n] = v
		return v
	}

	var reachRS map[xq.Expr]bool

	for _, n := range g.Pre {
		affected := consumer(n) || paramUser[n]
		if !affected {
			continue
		}
		// Condition i: reverse/horizontal steps on shipped nodes (lifted by
		// pass-by-projection, which ships the required ancestors).
		if strat != ByProjection && exprHasRevHorStep(n) {
			return false
		}
		// Condition iv: root()/id()/idref() on shipped nodes (likewise
		// lifted by projection).
		if strat != ByProjection && exprIsProblemFun(n) {
			return false
		}
		// Condition ii: node identity/order comparisons and node-set
		// operators; under fragment/projection only when the consumer may
		// hold same-document nodes from different calls.
		if exprIsNodeCmpOrSetOp(n) && gateFor(n) {
			return false
		}
		// Condition iii: an XPath step over shipped nodes whose sequence
		// flowed through a mixing construct.
		if !exprHasAxisStep(n) {
			continue
		}
		if consumer(n) && gateFor(n) {
			// Case A1: the remote result itself is produced through a
			// mixing construct inside rs.
			if reachRS == nil {
				reachRS = g.Reach(rs)
			}
			for m := range reachRS {
				if exprIsMixing(m, strat) {
					return false
				}
			}
		}
		if paramUser[n] && inside[n] {
			// Case B: a step inside the shipped body navigates a parameter
			// whose binding flowed through a mixing construct (the printed
			// condition's ∃v ∉ Gs : rs ⇒p n ⇒ v ⇒ m clause).
			for ref, target := range g.RefTarget {
				if !inside[ref] || target == nil || inside[target] {
					continue
				}
				if strat != ByValue && !gateFor(target) {
					continue
				}
				for m := range g.Reach(target) {
					if exprIsMixing(m, strat) {
						return false
					}
				}
			}
		}
	}
	// Case A2: rs's remote result flows upward through a mixing construct
	// into an XPath step applied by parse edges — the "part of a ForExpr
	// with the /grade step on top" situation that keeps Qn2's second half
	// local under pass-by-value. Value flow stops at let bindings (a bind
	// reaches consumers only through varref edges, which case A1 and the
	// per-consumer checks above handle).
	if g.outputFlowMixed(rs, strat, gateFor) {
		return false
	}
	return true
}

// outputFlowMixed walks the output-flow ancestors of rs; once the flow has
// passed a mixing construct, reaching a PathExpr input means a step applies
// to a mixed sequence containing shipped nodes.
func (g *Graph) outputFlowMixed(rs xq.Expr, strat Strategy, gateFor func(xq.Expr) bool) bool {
	sawMixing := false
	child := rs
	for m := g.Parent[rs]; m != nil; child, m = m, g.Parent[m] {
		if !flowsToResult(m, child) {
			return false
		}
		if exprIsMixing(m, strat) {
			sawMixing = true
		}
		if pe, ok := m.(*xq.PathExpr); ok && sawMixing && pe.Input == child &&
			exprHasAxisStep(m) && gateFor(m) {
			return true
		}
	}
	return false
}

// flowsToResult reports whether the value of the child expression can appear
// in (or structurally constitute part of) the parent's result.
func flowsToResult(parent, child xq.Expr) bool {
	switch v := parent.(type) {
	case *xq.LetExpr:
		return child == v.Return
	case *xq.ForExpr:
		return child == v.In || child == v.Return
	case *xq.IfExpr:
		return child == v.Then || child == v.Else
	case *xq.TypeswitchExpr:
		if child == v.Operand {
			return false
		}
		return true // case returns and default flow
	case *xq.QuantifiedExpr, *xq.CompareExpr, *xq.ArithExpr, *xq.LogicExpr,
		*xq.UnaryExpr:
		return false // atomized results: no node flow
	case *xq.SeqExpr, *xq.NodeSetExpr:
		return true
	case *xq.PathExpr:
		return child == v.Input // predicates do not flow
	case *xq.ElemConstructor, *xq.AttrConstructor, *xq.TextConstructor, *xq.DocConstructor:
		// Constructor content is copied into fresh nodes: downstream steps
		// see new local nodes, not shipped ones.
		return false
	case *xq.FunCall:
		return true // conservative: many builtins pass nodes through
	case *xq.XRPCExpr, *xq.ExecuteAt:
		return false
	}
	return false
}

// Interesting reports whether a valid decomposition point is an interesting
// one (I′(G), §IV): it is the root of its URI-dependency equivalence class,
// contains at least one fn:doc with an xrpc:// URI, and executes at least
// one XPath step on document data. The additional practical requirement for
// an executable plan — all xrpc docs on one host — is checked here too.
func (g *Graph) Interesting(rs xq.Expr, strat Strategy) (host string, ok bool) {
	docs := g.DocSet(rs)
	if len(docs) == 0 {
		return "", false
	}
	hosts := XRPCHosts(docs)
	if len(hosts) != 1 {
		return "", false
	}
	// Every document the subquery touches must live at that host (a doc
	// without xrpc scheme or a constructed doc is fine only if local to the
	// remote body — conservatively require xrpc URIs or constructed nodes).
	for d := range docs {
		if d.URI == "(constructed)" {
			continue
		}
		h, isXRPC := XRPCHost(d.URI)
		if !isXRPC || h != hosts[0] {
			return "", false
		}
	}
	// (a) The paper's "root of its equivalence class" restriction is
	// realized by the caller's greedy topmost-first scan: the highest VALID
	// vertex of each class wins and its descendants are skipped. (Table IV
	// shows the by-value strategy pushing the doc path below an invalid
	// class root — Qv2's fcn1 — so the class root itself must not gate.)
	// (c) at least one XPath step over the document.
	hasStep := false
	xq.Walk(rs, func(e xq.Expr) bool {
		if exprHasAxisStep(e) {
			hasStep = true
			return false
		}
		return true
	})
	if !hasStep {
		return "", false
	}
	if !g.Valid(rs, strat) {
		return "", false
	}
	return hosts[0], true
}
