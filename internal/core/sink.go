package core

import (
	"fmt"

	"distxq/internal/xq"
)

// slot is one mutable child position of an expression. sinkable marks
// positions a let-binding may legally move into without changing how often
// the binding is evaluated per iteration (for-return, quantifier bodies,
// predicates and order-by keys are excluded).
type slot struct {
	get      func() xq.Expr
	set      func(xq.Expr)
	sinkable bool
}

func childSlots(e xq.Expr) []slot {
	mk := func(get func() xq.Expr, set func(xq.Expr), sinkable bool) slot {
		return slot{get: get, set: set, sinkable: sinkable}
	}
	switch v := e.(type) {
	case *xq.ForExpr:
		out := []slot{mk(func() xq.Expr { return v.In }, func(x xq.Expr) { v.In = x }, true)}
		for i := range v.OrderBy {
			i := i
			out = append(out, mk(func() xq.Expr { return v.OrderBy[i].Key },
				func(x xq.Expr) { v.OrderBy[i].Key = x }, false))
		}
		out = append(out, mk(func() xq.Expr { return v.Return }, func(x xq.Expr) { v.Return = x }, false))
		return out
	case *xq.LetExpr:
		return []slot{
			mk(func() xq.Expr { return v.Bind }, func(x xq.Expr) { v.Bind = x }, true),
			mk(func() xq.Expr { return v.Return }, func(x xq.Expr) { v.Return = x }, true),
		}
	case *xq.IfExpr:
		return []slot{
			mk(func() xq.Expr { return v.Cond }, func(x xq.Expr) { v.Cond = x }, true),
			mk(func() xq.Expr { return v.Then }, func(x xq.Expr) { v.Then = x }, true),
			mk(func() xq.Expr { return v.Else }, func(x xq.Expr) { v.Else = x }, true),
		}
	case *xq.QuantifiedExpr:
		return []slot{
			mk(func() xq.Expr { return v.In }, func(x xq.Expr) { v.In = x }, true),
			mk(func() xq.Expr { return v.Satisfies }, func(x xq.Expr) { v.Satisfies = x }, false),
		}
	case *xq.TypeswitchExpr:
		out := []slot{mk(func() xq.Expr { return v.Operand }, func(x xq.Expr) { v.Operand = x }, true)}
		for _, c := range v.Cases {
			c := c
			out = append(out, mk(func() xq.Expr { return c.Return }, func(x xq.Expr) { c.Return = x }, true))
		}
		out = append(out, mk(func() xq.Expr { return v.Default }, func(x xq.Expr) { v.Default = x }, true))
		return out
	case *xq.CompareExpr:
		return []slot{
			mk(func() xq.Expr { return v.Left }, func(x xq.Expr) { v.Left = x }, true),
			mk(func() xq.Expr { return v.Right }, func(x xq.Expr) { v.Right = x }, true),
		}
	case *xq.ArithExpr:
		return []slot{
			mk(func() xq.Expr { return v.Left }, func(x xq.Expr) { v.Left = x }, true),
			mk(func() xq.Expr { return v.Right }, func(x xq.Expr) { v.Right = x }, true),
		}
	case *xq.UnaryExpr:
		return []slot{mk(func() xq.Expr { return v.Operand }, func(x xq.Expr) { v.Operand = x }, true)}
	case *xq.LogicExpr:
		return []slot{
			mk(func() xq.Expr { return v.Left }, func(x xq.Expr) { v.Left = x }, true),
			// The right operand may not be evaluated at all.
			mk(func() xq.Expr { return v.Right }, func(x xq.Expr) { v.Right = x }, true),
		}
	case *xq.SeqExpr:
		out := make([]slot, len(v.Items))
		for i := range v.Items {
			i := i
			out[i] = mk(func() xq.Expr { return v.Items[i] }, func(x xq.Expr) { v.Items[i] = x }, true)
		}
		return out
	case *xq.NodeSetExpr:
		return []slot{
			mk(func() xq.Expr { return v.Left }, func(x xq.Expr) { v.Left = x }, true),
			mk(func() xq.Expr { return v.Right }, func(x xq.Expr) { v.Right = x }, true),
		}
	case *xq.PathExpr:
		var out []slot
		if v.Input != nil {
			// A let stops just above a path expression rather than inside
			// its input: the paper's Qn2 keeps `let $c := doc(..) return
			// $c/enroll/exam`, relating the doc to its steps via parse
			// edges while staying readable.
			out = append(out, mk(func() xq.Expr { return v.Input }, func(x xq.Expr) { v.Input = x }, false))
		}
		for _, st := range v.Steps {
			st := st
			for i := range st.Preds {
				i := i
				out = append(out, mk(func() xq.Expr { return st.Preds[i] },
					func(x xq.Expr) { st.Preds[i] = x }, false))
			}
		}
		return out
	case *xq.ElemConstructor:
		var out []slot
		if v.NameExpr != nil {
			out = append(out, mk(func() xq.Expr { return v.NameExpr }, func(x xq.Expr) { v.NameExpr = x }, true))
		}
		for i := range v.Content {
			i := i
			out = append(out, mk(func() xq.Expr { return v.Content[i] }, func(x xq.Expr) { v.Content[i] = x }, true))
		}
		return out
	case *xq.AttrConstructor:
		var out []slot
		if v.NameExpr != nil {
			out = append(out, mk(func() xq.Expr { return v.NameExpr }, func(x xq.Expr) { v.NameExpr = x }, true))
		}
		for i := range v.Value {
			i := i
			out = append(out, mk(func() xq.Expr { return v.Value[i] }, func(x xq.Expr) { v.Value[i] = x }, true))
		}
		return out
	case *xq.TextConstructor:
		return []slot{mk(func() xq.Expr { return v.Content }, func(x xq.Expr) { v.Content = x }, true)}
	case *xq.DocConstructor:
		return []slot{mk(func() xq.Expr { return v.Content }, func(x xq.Expr) { v.Content = x }, true)}
	case *xq.FunCall:
		out := make([]slot, len(v.Args))
		for i := range v.Args {
			i := i
			out[i] = mk(func() xq.Expr { return v.Args[i] }, func(x xq.Expr) { v.Args[i] = x }, true)
		}
		return out
	case *xq.ExecuteAt:
		return []slot{
			mk(func() xq.Expr { return v.Target }, func(x xq.Expr) { v.Target = x }, true),
			mk(func() xq.Expr { return v.Call },
				func(x xq.Expr) { v.Call = x.(*xq.FunCall) }, false),
		}
	case *xq.XRPCExpr:
		return []slot{
			mk(func() xq.Expr { return v.Target }, func(x xq.Expr) { v.Target = x }, true),
			mk(func() xq.Expr { return v.Body }, func(x xq.Expr) { v.Body = x }, false),
		}
	}
	return nil
}

// countFreeUses counts free occurrences of $name in e.
func countFreeUses(e xq.Expr, name string) int {
	n := 0
	// FreeVars loses multiplicity; count explicitly with shadowing care.
	var walkCount func(x xq.Expr, shadowed bool)
	walkCount = func(x xq.Expr, shadowed bool) {
		switch v := x.(type) {
		case nil:
			return
		case *xq.VarRef:
			if !shadowed && v.Name == name {
				n++
			}
		case *xq.ForExpr:
			walkCount(v.In, shadowed)
			sh := shadowed || v.Var == name
			for _, s := range v.OrderBy {
				walkCount(s.Key, sh)
			}
			walkCount(v.Return, sh)
		case *xq.LetExpr:
			walkCount(v.Bind, shadowed)
			walkCount(v.Return, shadowed || v.Var == name)
		case *xq.QuantifiedExpr:
			walkCount(v.In, shadowed)
			walkCount(v.Satisfies, shadowed || v.Var == name)
		case *xq.TypeswitchExpr:
			walkCount(v.Operand, shadowed)
			for _, c := range v.Cases {
				walkCount(c.Return, shadowed || c.Var == name)
			}
			walkCount(v.Default, shadowed || v.DefaultVar == name)
		case *xq.XRPCExpr:
			walkCount(v.Target, shadowed)
			for _, p := range v.Params {
				if !shadowed && p.Ref == name {
					n++
				}
			}
			inner := shadowed
			for _, p := range v.Params {
				if p.Name == name {
					inner = true
				}
			}
			walkCount(v.Body, inner)
		default:
			for _, c := range xq.Children(x) {
				walkCount(c, shadowed)
			}
		}
	}
	walkCount(e, false)
	return n
}

// AlphaRename makes every binder name unique across the query so sinking and
// insertion never capture variables. Existing names are kept when unique.
func AlphaRename(q *xq.Query) {
	used := map[string]bool{}
	for _, f := range q.Funcs {
		for _, p := range f.Params {
			used[p.Name] = true
		}
	}
	fresh := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for i := 1; ; i++ {
			cand := fmt.Sprintf("%s_%d", base, i)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}
	var rn func(e xq.Expr, subst map[string]string) xq.Expr
	rn = func(e xq.Expr, subst map[string]string) xq.Expr {
		switch v := e.(type) {
		case nil:
			return nil
		case *xq.VarRef:
			if nn, ok := subst[v.Name]; ok {
				v.Name = nn
			}
			return v
		case *xq.ForExpr:
			v.In = rn(v.In, subst)
			nn := fresh(v.Var)
			inner := withSubst(subst, v.Var, nn)
			v.Var = nn
			for i := range v.OrderBy {
				v.OrderBy[i].Key = rn(v.OrderBy[i].Key, inner)
			}
			v.Return = rn(v.Return, inner)
			return v
		case *xq.LetExpr:
			v.Bind = rn(v.Bind, subst)
			nn := fresh(v.Var)
			inner := withSubst(subst, v.Var, nn)
			v.Var = nn
			v.Return = rn(v.Return, inner)
			return v
		case *xq.QuantifiedExpr:
			v.In = rn(v.In, subst)
			nn := fresh(v.Var)
			inner := withSubst(subst, v.Var, nn)
			v.Var = nn
			v.Satisfies = rn(v.Satisfies, inner)
			return v
		case *xq.TypeswitchExpr:
			v.Operand = rn(v.Operand, subst)
			for _, c := range v.Cases {
				if c.Var != "" {
					nn := fresh(c.Var)
					inner := withSubst(subst, c.Var, nn)
					c.Var = nn
					c.Return = rn(c.Return, inner)
				} else {
					c.Return = rn(c.Return, subst)
				}
			}
			if v.DefaultVar != "" {
				nn := fresh(v.DefaultVar)
				inner := withSubst(subst, v.DefaultVar, nn)
				v.DefaultVar = nn
				v.Default = rn(v.Default, inner)
			} else {
				v.Default = rn(v.Default, subst)
			}
			return v
		case *xq.XRPCExpr:
			v.Target = rn(v.Target, subst)
			for _, p := range v.Params {
				if nn, ok := subst[p.Ref]; ok {
					p.Ref = nn
				}
			}
			inner := map[string]string{}
			v.Body = rn(v.Body, inner)
			return v
		default:
			for _, s := range childSlots(e) {
				s.set(rn(s.get(), subst))
			}
			return e
		}
	}
	q.Body = rn(q.Body, map[string]string{})
}

func withSubst(s map[string]string, from, to string) map[string]string {
	ns := make(map[string]string, len(s)+1)
	for k, v := range s {
		ns[k] = v
	}
	ns[from] = to
	return ns
}

// SinkLets implements the §IV normalization: every let-binding moves to just
// above the lowest common ancestor of the vertices referencing its variable,
// relating document accesses to their uses through parse edges instead of
// varref edges. Bindings with no uses are dropped. AlphaRename must run
// first (Decompose does).
func SinkLets(q *xq.Query) {
	for changed := true; changed; {
		changed = false
		q.Body = sinkIn(q.Body, &changed)
	}
}

func sinkIn(e xq.Expr, changed *bool) xq.Expr {
	if e == nil {
		return nil
	}
	for _, s := range childSlots(e) {
		s.set(sinkIn(s.get(), changed))
	}
	let, ok := e.(*xq.LetExpr)
	if !ok {
		return e
	}
	uses := countFreeUses(let.Return, let.Var)
	if uses == 0 {
		*changed = true
		return let.Return
	}
	// Compute the full descent in one pass: walk down while exactly one
	// sinkable child slot contains every use. The move is performed only if
	// the path crosses at least one slot that is not another let's return —
	// plain let reordering makes no progress and would oscillate forever.
	cur := let.Return
	var final *slot
	nonLetSlots := 0
	depth := 0
	for {
		if bindsOwnVar(cur, let.Var) {
			break // capture guard (unreachable after AlphaRename)
		}
		slots := childSlots(cur)
		var next *slot
		spread := false
		for i := range slots {
			c := slots[i].get()
			if c == nil {
				continue
			}
			n := countFreeUses(c, let.Var)
			switch {
			case n == uses && next == nil:
				next = &slots[i]
			case n > 0:
				spread = true
			}
		}
		if spread || next == nil || !next.sinkable {
			break
		}
		curLet, isLet := cur.(*xq.LetExpr)
		if !(isLet && next.get() == curLet.Return) {
			nonLetSlots++
		}
		final = next
		cur = next.get()
		depth++
		if depth > 10000 {
			break // defensive bound; query trees are finite
		}
	}
	if final == nil || nonLetSlots == 0 {
		return e
	}
	final.set(&xq.LetExpr{Var: let.Var, Bind: let.Bind, Return: cur})
	*changed = true
	return let.Return
}

// bindsOwnVar reports whether expression e rebinding $name would capture the
// sunk let (cannot happen after AlphaRename, kept as a safety net).
func bindsOwnVar(e xq.Expr, name string) bool {
	switch v := e.(type) {
	case *xq.ForExpr:
		return v.Var == name
	case *xq.LetExpr:
		return v.Var == name
	case *xq.QuantifiedExpr:
		return v.Var == name
	case *xq.TypeswitchExpr:
		if v.DefaultVar == name {
			return true
		}
		for _, c := range v.Cases {
			if c.Var == name {
				return true
			}
		}
	}
	return false
}
