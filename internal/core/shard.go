package core

import (
	"errors"
	"fmt"
	"strings"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// ShardMap describes how one logical document is horizontally partitioned
// across peers: queries name Logical in fn:doc(), each peer in Peers hosts
// one shard at the peer-local path ShardPath, and RecordPath is the rooted
// path to the partitioned record sequence (the only part of the document that
// differs between shards — everything above it is a skeleton every shard
// repeats). The logical document order is shard-major: all records of
// Peers[0] in their local order, then Peers[1], and so on.
type ShardMap struct {
	// Logical is the URI queries use for the whole partitioned document. It
	// must not use the xrpc:// scheme (a logical document has no single
	// owning host for the ordinary decomposition to target).
	Logical string
	// Peers lists the shard-hosting peers in shard (and logical) order.
	Peers []string
	// ShardPath is the peer-local document path of every shard, so a shipped
	// body's fn:doc(ShardPath) resolves to the local shard on each peer.
	ShardPath string
	// RecordPath is the rooted child-axis path to the record sequence, e.g.
	// "child::site/child::people/child::person".
	RecordPath string
	// Replicas lists, per shard (parallel to Peers), the ordered failover
	// replicas of that shard: peers holding a byte-identical copy of the
	// shard document under the same ShardPath. A fault-tolerant dispatcher
	// re-routes a failed or hedged scatter lane to them in order, and the
	// materialized-union fallback fetches a shard from its first reachable
	// replica when the primary is down. Nil, or shorter than Peers, means
	// the remaining shards are unreplicated.
	Replicas [][]string
	// Epoch numbers this layout's generation. ApplyDelta increments it on
	// every validated topology change; the service plan cache keys on it, and
	// epoch-aware dispatch compares a plan's epoch against the live layout to
	// re-route lanes whose peer has since departed. The zero epoch is a valid
	// first generation.
	Epoch int64
}

// ReplicaSets returns the peer → ordered-failover-replicas map of the shard
// layout, the form the evaluator's scatter dispatch consumes
// (eval.Engine.Replicas).
func (m ShardMap) ReplicaSets() map[string][]string {
	out := map[string][]string{}
	for i, p := range m.Peers {
		if i < len(m.Replicas) && len(m.Replicas[i]) > 0 {
			out[p] = append([]string(nil), m.Replicas[i]...)
		}
	}
	return out
}

// ErrUnknownShardPeer reports a shard map naming a peer the engine does not
// know; Decompose fails with it instead of planning a scatter that cannot
// dispatch.
var ErrUnknownShardPeer = errors.New("core: shard map names a peer absent from the engine's peer set")

// ShardDecision records one shard-rewrite outcome: a candidate expression
// rooted at a logical document either became a concurrent scatter loop or
// fell back to local evaluation over the materialized union, with the
// condition that forced the fallback.
type ShardDecision struct {
	Logical   string
	Scattered bool
	// Reason names the violated condition when not scattered.
	Reason string
	// X is the synthesized remote call of a scattered candidate.
	X *xq.XRPCExpr
}

// recordSteps parses and checks the record path: a rooted path of plain
// child-axis name (or wildcard) steps without predicates.
func (m ShardMap) recordSteps() ([]*xq.Step, error) {
	q, err := xq.ParseQuery(m.RecordPath)
	if err != nil {
		return nil, fmt.Errorf("core: shard map %s: record path: %w", m.Logical, err)
	}
	pe, ok := q.Body.(*xq.PathExpr)
	if !ok || pe.Input != nil {
		return nil, fmt.Errorf("core: shard map %s: record path %q must be a relative step path", m.Logical, m.RecordPath)
	}
	for _, st := range pe.Steps {
		if st.Filter || len(st.Preds) > 0 || st.Axis != xq.AxisChild {
			return nil, fmt.Errorf("core: shard map %s: record path %q must use predicate-free child:: steps", m.Logical, m.RecordPath)
		}
		if st.Test.Kind != xq.TestName && st.Test.Kind != xq.TestWildcard {
			return nil, fmt.Errorf("core: shard map %s: record path %q must test element names", m.Logical, m.RecordPath)
		}
	}
	if len(pe.Steps) == 0 {
		return nil, fmt.Errorf("core: shard map %s: empty record path", m.Logical)
	}
	return pe.Steps, nil
}

// validateShards checks every shard map for structural problems and, when
// the caller supplied the engine's peer set, for peers that do not exist.
func validateShards(opts Options) error {
	for _, m := range opts.Shards {
		if m.Logical == "" {
			return fmt.Errorf("core: shard map without a logical URI")
		}
		if _, isXRPC := XRPCHost(m.Logical); isXRPC {
			return fmt.Errorf("core: shard map %s: logical URI must not use the xrpc:// scheme", m.Logical)
		}
		if len(m.Peers) == 0 {
			return fmt.Errorf("core: shard map %s: no peers", m.Logical)
		}
		if m.ShardPath == "" {
			return fmt.Errorf("core: shard map %s: no shard path", m.Logical)
		}
		if _, err := m.recordSteps(); err != nil {
			return err
		}
		if len(m.Replicas) > len(m.Peers) {
			return fmt.Errorf("core: shard map %s: %d replica sets for %d shards",
				m.Logical, len(m.Replicas), len(m.Peers))
		}
		if opts.KnownPeers != nil {
			for _, p := range m.Peers {
				if !opts.KnownPeers[p] {
					return fmt.Errorf("%w: %s (logical %s)", ErrUnknownShardPeer, p, m.Logical)
				}
			}
			for _, rs := range m.Replicas {
				for _, p := range rs {
					if !opts.KnownPeers[p] {
						return fmt.Errorf("%w: replica %s (logical %s)", ErrUnknownShardPeer, p, m.Logical)
					}
				}
			}
		}
	}
	return nil
}

// Materialize builds the logical document from its shards: a copy of the
// first shard's tree with every later shard's records appended, in shard
// order, to the record parent. This is the fallback execution path — when a
// query cannot be rewritten into the scatter form, fn:doc(Logical) resolves
// to this union and evaluates with plain local semantics. A shard whose
// primary cannot be fetched falls over to its replicas in order; only a
// shard with no reachable copy fails the materialization, reporting the
// primary's fault.
func (m ShardMap) Materialize(uri string, fetch func(peer string) (*xdm.Document, error)) (*xdm.Document, error) {
	steps, err := m.recordSteps()
	if err != nil {
		return nil, err
	}
	docs := make([]*xdm.Document, len(m.Peers))
	for i, p := range m.Peers {
		d, err := fetch(p)
		if err != nil && i < len(m.Replicas) {
			for _, r := range m.Replicas[i] {
				if rd, rerr := fetch(r); rerr == nil {
					d, err = rd, nil
					break
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: materialize %s: shard %d at %s: %w", m.Logical, i, p, err)
		}
		docs[i] = d
	}
	out := xdm.NewDocument(uri)
	for _, ch := range docs[0].Root.Children {
		out.Root.AppendChild(ch.Copy())
	}
	parent, err := walkRecordParent(out.Root, m, steps)
	if err != nil {
		return nil, err
	}
	last := steps[len(steps)-1]
	for _, d := range docs[1:] {
		srcParent, err := walkRecordParent(d.Root, m, steps)
		if err != nil {
			return nil, err
		}
		for _, ch := range srcParent.Children {
			if stepMatchesElem(last, ch) {
				parent.AppendChild(ch.Copy())
			}
		}
	}
	out.Freeze()
	return out, nil
}

// walkRecordParent descends the skeleton prefix of the record path (all
// steps but the last) from a document root, taking the first matching child
// element at each level.
func walkRecordParent(root *xdm.Node, m ShardMap, steps []*xq.Step) (*xdm.Node, error) {
	cur := root
	for _, st := range steps[:len(steps)-1] {
		var next *xdm.Node
		for _, ch := range cur.Children {
			if stepMatchesElem(st, ch) {
				next = ch
				break
			}
		}
		if next == nil {
			return nil, fmt.Errorf("core: materialize %s: shard lacks skeleton element %s", m.Logical, st.Test)
		}
		cur = next
	}
	return cur, nil
}

func stepMatchesElem(st *xq.Step, n *xdm.Node) bool {
	if n.Kind != xdm.ElementNode {
		return false
	}
	return st.Test.Kind == xq.TestWildcard || st.Test.Kind == xq.TestAnyNode || n.Name == st.Test.Name
}

// ---------------------------------------------------------- rewrite pass --

// shardRewrite is the shard-aware planner pass: expressions rooted at a
// logical document (path expressions and FLWOR loops over them) are rewritten
// into the concurrent scatter form
//
//	for $p in (peers...) return execute at {$p} { <body over the local shard> }
//
// whenever the per-shard evaluation concatenated in shard order provably
// equals local evaluation over the union document. Candidates violating a
// condition are left in place — fn:doc(Logical) then materializes the union —
// and the violated condition is recorded in the decision list. AlphaRename
// must have run (Decompose guarantees it).
func shardRewrite(q *xq.Query, strat Strategy, maps []ShardMap) ([]ShardDecision, error) {
	byURI := map[string]*ShardMap{}
	recSteps := map[string][]*xq.Step{}
	for i := range maps {
		m := &maps[i]
		rs, err := m.recordSteps()
		if err != nil {
			return nil, err
		}
		byURI[m.Logical] = m
		recSteps[m.Logical] = rs
	}
	used := usedNames(q)
	declared := map[string]bool{}
	for _, f := range q.Funcs {
		declared[fmt.Sprintf("%s/%d", f.Name, len(f.Params))] = true
	}
	var decisions []ShardDecision
	attempted := map[xq.Expr]bool{}
	seq := 0
	for {
		g := Build(q.Body)
		var cand xq.Expr
		var candMap *ShardMap
		for _, v := range g.Pre {
			if attempted[v] || insideRemote(g, v) {
				continue
			}
			switch e := v.(type) {
			case *xq.ForExpr:
				if uri, _, ok := xq.RootedDoc(e.In); ok && byURI[uri] != nil {
					cand, candMap = v, byURI[uri]
				}
			case *xq.PathExpr, *xq.FunCall:
				if uri, _, ok := xq.RootedDoc(v); ok && byURI[uri] != nil {
					cand, candMap = v, byURI[uri]
				}
			}
			if cand != nil {
				break
			}
		}
		if cand == nil {
			return decisions, nil
		}
		attempted[cand] = true
		reason := scatterReason(g, cand, recSteps[candMap.Logical], strat, declared)
		if reason != "" {
			decisions = append(decisions, ShardDecision{Logical: candMap.Logical, Reason: reason})
			continue // descend into the candidate on the next scan
		}
		seq++
		x := synthScatter(q, cand, candMap, seq, used)
		decisions = append(decisions, ShardDecision{Logical: candMap.Logical, Scattered: true, X: x})
	}
}

// insideRemote reports whether v sits inside a shipped XRPCExpr body — such
// expressions execute remotely and are never rewritten.
func insideRemote(g *Graph, v xq.Expr) bool {
	for p := g.Parent[v]; p != nil; p = g.Parent[p] {
		if _, ok := p.(*xq.XRPCExpr); ok {
			return true
		}
	}
	return false
}

// scatterReason decides whether a candidate is scatter-safe, returning the
// violated condition ("" when safe). The conditions guarantee that per-shard
// results concatenated in shard order serialize identically to local
// evaluation over the union document:
//
//  1. the rooted path must enter the record sequence: its leading steps match
//     the record path exactly, with no predicates above the record step
//     (everything above records is skeleton each shard duplicates);
//  2. record-level predicates and postfix filters must be statically
//     non-positional (a position selects across shard boundaries);
//  3. every axis anywhere in the candidate is downward (child, attribute,
//     self, descendant, descendant-or-self) — reverse and horizontal axes can
//     escape a record's subtree into skeleton whose surroundings differ
//     between one shard and the union;
//  4. no positional/identity context functions (fn:position, fn:last,
//     fn:root, fn:id, fn:idref, base/document-uri), no further document
//     access (cross-shard joins stay local), no nested remote call, no
//     absolute path, and no order by over the record loop;
//  5. node comparisons and node-set operators must not mix shard records
//     with shipped parameter copies;
//  6. the generic function-shipping safety conditions of §IV–§VI hold for
//     the candidate under the session strategy (Graph.Valid).
func scatterReason(g *Graph, cand xq.Expr, rec []*xq.Step, strat Strategy, declared map[string]bool) string {
	rooted := cand
	if f, ok := cand.(*xq.ForExpr); ok {
		if len(f.OrderBy) > 0 {
			return "order by over the record loop requires a global sort"
		}
		rooted = f.In
	}
	_, steps, _ := xq.RootedDoc(rooted)
	if r := recordPrefixReason(steps, rec); r != "" {
		return r
	}
	if r := subtreeReason(cand, rootDocCall(rooted), xq.FreeVars(cand), declared); r != "" {
		return r
	}
	if !g.Valid(cand, strat) {
		return "function-shipping safety conditions (§IV–§VI) reject the subquery"
	}
	// The d-graph does not model declared-function bodies, so a consumer
	// passing the candidate's result into one could navigate the shipped
	// copies arbitrarily (e.g. upward into skeleton the fragment lacks).
	if len(declared) > 0 {
		dep := g.DependsOn(cand)
		inside := g.Subtree(cand)
		for _, n := range g.Pre {
			if fc, ok := n.(*xq.FunCall); ok && dep[n] && !inside[n] &&
				declared[fmt.Sprintf("%s/%d", fc.Name, len(fc.Args))] {
				return "result flows into a user-declared function"
			}
		}
	}
	return ""
}

// recordPrefixReason checks condition 1 and the record-level part of 2.
func recordPrefixReason(steps []*xq.Step, rec []*xq.Step) string {
	if len(steps) < len(rec) {
		return "path stops above the record sequence (the skeleton repeats on every shard)"
	}
	for i, rs := range rec {
		st := steps[i]
		if st.Filter || st.Axis != rs.Axis || !sameTest(st.Test, rs.Test) {
			return "path does not follow the record path"
		}
		if i < len(rec)-1 && len(st.Preds) > 0 {
			return "predicate above the record step"
		}
	}
	for _, p := range steps[len(rec)-1].Preds {
		if r := recordPredReason(p); r != "" {
			return r
		}
	}
	for _, st := range steps[len(rec):] {
		if !st.Filter {
			continue
		}
		// A postfix filter applies over the accumulated cross-record
		// sequence, so it is record-level too.
		for _, p := range st.Preds {
			if r := recordPredReason(p); r != "" {
				return r
			}
		}
	}
	return ""
}

func sameTest(a, b xq.NodeTest) bool {
	return a.Kind == b.Kind && (a.Kind != xq.TestName || a.Name == b.Name)
}

// recordPredReason requires a record-level predicate to be statically
// boolean-valued: positional selection (a numeric predicate, or anything that
// could evaluate to a number) would count across shard boundaries.
func recordPredReason(p xq.Expr) string {
	switch v := p.(type) {
	case *xq.CompareExpr, *xq.LogicExpr, *xq.QuantifiedExpr, *xq.PathExpr:
		return "" // boolean-valued (a path predicate tests node existence)
	case *xq.FunCall:
		switch strings.TrimPrefix(v.Name, "fn:") {
		case "exists", "empty", "not", "boolean", "contains", "starts-with",
			"true", "false", "deep-equal":
			return ""
		}
	}
	return "record-level predicate may select by position across shard boundaries"
}

// downwardAxis lists the axes that cannot leave a record's subtree.
func downwardAxis(a xq.Axis) bool {
	switch a {
	case xq.AxisChild, xq.AxisAttribute, xq.AxisSelf, xq.AxisDescendant, xq.AxisDescendantOrSelf:
		return true
	}
	return false
}

// rootDocCall returns the innermost fn:doc application of a rooted chain.
func rootDocCall(e xq.Expr) xq.Expr {
	switch v := e.(type) {
	case *xq.FunCall:
		return v
	case *xq.PathExpr:
		return rootDocCall(v.Input)
	}
	return nil
}

// subtreeReason enforces conditions 3–5 uniformly over the whole candidate.
// allowedDoc is the candidate's own root fn:doc application; outerFree names
// the variables whose values arrive as shipped parameter copies; declared
// lists the query's user-declared functions by name/arity.
func subtreeReason(cand xq.Expr, allowedDoc xq.Expr, outerFree map[string]bool, declared map[string]bool) string {
	reason := ""
	xq.Walk(cand, func(sub xq.Expr) bool {
		if reason != "" {
			return false
		}
		switch v := sub.(type) {
		case *xq.XRPCExpr, *xq.ExecuteAt:
			reason = "nested remote call"
		case *xq.RootExpr:
			reason = "absolute path escapes the record subtree"
		case *xq.FunCall:
			if sub == allowedDoc {
				return true
			}
			if declared[fmt.Sprintf("%s/%d", v.Name, len(v.Args))] {
				// The shipped body would carry neither the declaration nor
				// its (unchecked) body; the union fallback evaluates it.
				reason = "calls a user-declared function"
				return false
			}
			switch strings.TrimPrefix(v.Name, "fn:") {
			case "doc", "collection":
				reason = "additional document access (cross-shard joins stay local)"
			case "root", "id", "idref":
				reason = "document-level function escapes the record subtree"
			case "position", "last":
				reason = "positional context function cannot cross shard boundaries"
			case "base-uri", "document-uri", "static-base-uri":
				reason = "function observes shard document identity"
			}
		case *xq.PathExpr:
			for _, st := range v.Steps {
				if !st.Filter && !downwardAxis(st.Axis) {
					reason = fmt.Sprintf("%s axis can escape the record subtree", st.Axis)
					return false
				}
			}
		case *xq.CompareExpr:
			if v.Op.IsNodeComp() && touchesFree(v, outerFree) {
				reason = "node comparison against shipped parameter copies"
			}
		case *xq.NodeSetExpr:
			if touchesFree(v, outerFree) {
				reason = "node-set operator mixes shard records with shipped parameter copies"
			}
		}
		return reason == ""
	})
	return reason
}

func touchesFree(e xq.Expr, outerFree map[string]bool) bool {
	for name := range xq.FreeVars(e) {
		if outerFree[name] {
			return true
		}
	}
	return false
}

// synthScatter replaces a scatter-safe candidate with the loop
// `for $p in (peers...) return execute at {$p} { body }`: the body is the
// candidate with its root fn:doc retargeted at the peer-local shard path, and
// every free variable becomes an XRPC parameter shipped per iteration.
func synthScatter(q *xq.Query, cand xq.Expr, m *ShardMap, seq int, used map[string]bool) *xq.XRPCExpr {
	body := xq.CloneExpr(cand)
	retargetRootDoc(body, m.ShardPath)
	x := &xq.XRPCExpr{FuncName: fmt.Sprintf("shard%d", seq)}
	free := xq.FreeVars(cand)
	var order []string
	seen := map[string]bool{}
	xq.Walk(cand, func(e xq.Expr) bool {
		if ref, ok := e.(*xq.VarRef); ok && free[ref.Name] && !seen[ref.Name] {
			seen[ref.Name] = true
			order = append(order, ref.Name)
		}
		return true
	})
	subst := map[string]string{}
	for i, name := range order {
		pn := freshName(used, fmt.Sprintf("sp%d", i+1))
		subst[name] = pn
		x.Params = append(x.Params, &xq.XRPCParam{Name: pn, Ref: name})
		x.Types = append(x.Types, xq.AnyItems)
	}
	x.Body = xq.RenameFreeVars(body, subst)
	loop := xq.NewScatterLoop(freshName(used, "shardp"), m.Peers, x)
	if !replaceExpr(q, cand, loop) {
		panic("core: shard candidate not found in query")
	}
	return x
}

// retargetRootDoc swaps the URI argument of the rooted chain's innermost
// fn:doc application for the peer-local shard path.
func retargetRootDoc(e xq.Expr, path string) bool {
	switch v := e.(type) {
	case *xq.FunCall:
		v.Args[0] = xq.NewStringLiteral(path)
		return true
	case *xq.PathExpr:
		return retargetRootDoc(v.Input, path)
	case *xq.ForExpr:
		return retargetRootDoc(v.In, path)
	}
	return false
}

// usedNames collects every variable name occurring in the query (binders,
// references, XRPC parameters, function formals) so synthesized names cannot
// collide or capture.
func usedNames(q *xq.Query) map[string]bool {
	used := map[string]bool{}
	collect := func(e xq.Expr) {
		xq.Walk(e, func(sub xq.Expr) bool {
			switch v := sub.(type) {
			case *xq.VarRef:
				used[v.Name] = true
			case *xq.ForExpr:
				used[v.Var] = true
			case *xq.LetExpr:
				used[v.Var] = true
			case *xq.QuantifiedExpr:
				used[v.Var] = true
			case *xq.TypeswitchExpr:
				used[v.DefaultVar] = true
				for _, c := range v.Cases {
					used[c.Var] = true
				}
			case *xq.XRPCExpr:
				for _, p := range v.Params {
					used[p.Name] = true
					used[p.Ref] = true
				}
			}
			return true
		})
	}
	collect(q.Body)
	for _, f := range q.Funcs {
		for _, p := range f.Params {
			used[p.Name] = true
		}
		collect(f.Body)
	}
	return used
}

func freshName(used map[string]bool, base string) string {
	if !used[base] {
		used[base] = true
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", base, i)
		if !used[cand] {
			used[cand] = true
			return cand
		}
	}
}
