package core

import "time"

// Budget bounds one query's end-to-end cost. It is a relative wall-time
// allowance, not an absolute deadline: the absolute deadline is derived
// where the query starts (DeadlineFrom) and the remaining allowance is what
// travels to remote peers, so propagation never depends on synchronized
// clocks. The zero Budget means unbounded — exactly the pre-budget behavior.
type Budget struct {
	// Wall is the total wall-time allowance of the query: planning, local
	// evaluation, every scatter wave, and result gathering all spend it.
	Wall time.Duration
}

// Zero reports whether the budget is absent (unbounded).
func (b Budget) Zero() bool { return b.Wall <= 0 }

// DeadlineFrom derives the absolute deadline of a query starting at start;
// ok is false for the zero budget.
func (b Budget) DeadlineFrom(start time.Time) (deadline time.Time, ok bool) {
	if b.Zero() {
		return time.Time{}, false
	}
	return start.Add(b.Wall), true
}

// QueueAllowance is the share of the budget a query may spend waiting in an
// admission queue before it is shed: a tenth of the allowance. A query that
// cannot start within it would almost certainly blow its deadline mid-
// flight anyway; shedding it early costs the originator deadline/10 instead
// of the full deadline, which is what keeps rejection fast under overload.
func (b Budget) QueueAllowance() time.Duration {
	if b.Zero() {
		return 0
	}
	return b.Wall / 10
}
