package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

func peopleShardMap(peers ...string) ShardMap {
	return ShardMap{
		Logical:    "shard://t/people",
		Peers:      peers,
		ShardPath:  "p.xml",
		RecordPath: "child::site/child::people/child::person",
	}
}

func TestValidateShards(t *testing.T) {
	known := map[string]bool{"a": true, "b": true}
	cases := []struct {
		name    string
		m       ShardMap
		known   map[string]bool
		wantErr string
	}{
		{name: "valid", m: peopleShardMap("a", "b"), known: known},
		{name: "valid without peer set", m: peopleShardMap("ghost")},
		{name: "no logical", m: ShardMap{Peers: []string{"a"}, ShardPath: "p", RecordPath: "child::r"},
			wantErr: "without a logical URI"},
		{name: "xrpc logical", m: ShardMap{Logical: "xrpc://a/p.xml", Peers: []string{"a"}, ShardPath: "p", RecordPath: "child::r"},
			wantErr: "must not use the xrpc:// scheme"},
		{name: "no peers", m: ShardMap{Logical: "shard://t/x", ShardPath: "p", RecordPath: "child::r"},
			wantErr: "no peers"},
		{name: "no shard path", m: ShardMap{Logical: "shard://t/x", Peers: []string{"a"}, RecordPath: "child::r"},
			wantErr: "no shard path"},
		{name: "empty record path", m: ShardMap{Logical: "shard://t/x", Peers: []string{"a"}, ShardPath: "p", RecordPath: "()"},
			wantErr: "record path"},
		{name: "record path with predicate", m: ShardMap{Logical: "shard://t/x", Peers: []string{"a"}, ShardPath: "p", RecordPath: "child::r[1]"},
			wantErr: "predicate-free child:: steps"},
		{name: "record path descendant axis", m: ShardMap{Logical: "shard://t/x", Peers: []string{"a"}, ShardPath: "p", RecordPath: "descendant::r"},
			wantErr: "predicate-free child:: steps"},
		{name: "record path text test", m: ShardMap{Logical: "shard://t/x", Peers: []string{"a"}, ShardPath: "p", RecordPath: "child::text()"},
			wantErr: "element names"},
		{name: "unknown peer", m: peopleShardMap("a", "ghost"), known: known,
			wantErr: "ghost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateShards(Options{Shards: []ShardMap{tc.m}, KnownPeers: tc.known})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
			if tc.name == "unknown peer" && !errors.Is(err, ErrUnknownShardPeer) {
				t.Fatalf("unknown peer error is not ErrUnknownShardPeer: %v", err)
			}
		})
	}
}

// TestDecomposeUnknownShardPeer locks the ride-along bugfix at the Decompose
// boundary: a bad shard map fails the plan outright for every strategy,
// including data shipping.
func TestDecomposeUnknownShardPeer(t *testing.T) {
	for _, strat := range []Strategy{DataShipping, ByValue, ByFragment, ByProjection} {
		q, err := xq.ParseQuery(`doc("shard://t/people")/child::site`)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Shards = []ShardMap{peopleShardMap("nobody")}
		opts.KnownPeers = map[string]bool{"a": true}
		if _, err := Decompose(q, strat, opts); !errors.Is(err, ErrUnknownShardPeer) {
			t.Fatalf("%s: want ErrUnknownShardPeer, got %v", strat, err)
		}
	}
}

func shardDoc(t *testing.T, xml string) *xdm.Document {
	t.Helper()
	d, err := xdm.ParseString(xml, "test://shard")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMaterialize(t *testing.T) {
	m := peopleShardMap("a", "b")
	docs := map[string]*xdm.Document{
		"a": shardDoc(t, `<site><people><person id="p0"/><person id="p2"/></people></site>`),
		"b": shardDoc(t, `<site><people><person id="p1"/><person id="p3"/></people></site>`),
	}
	fetch := func(p string) (*xdm.Document, error) {
		d, ok := docs[p]
		if !ok {
			return nil, fmt.Errorf("no shard at %s", p)
		}
		return d, nil
	}
	union, err := m.Materialize(m.Logical, fetch)
	if err != nil {
		t.Fatal(err)
	}
	got := xdm.SerializeString(union.Root)
	want := `<site><people><person id="p0"/><person id="p2"/><person id="p1"/><person id="p3"/></people></site>`
	if got != want {
		t.Fatalf("union = %s, want %s", got, want)
	}
	if !union.Frozen() {
		t.Fatal("materialized union is not frozen")
	}

	// Fetch failure propagates with shard context.
	bad := peopleShardMap("a", "ghost")
	if _, err := bad.Materialize(bad.Logical, fetch); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("want fetch error naming ghost, got %v", err)
	}

	// A shard missing the skeleton is an error, not silent truncation.
	docs["b"] = shardDoc(t, `<site><items/></site>`)
	if _, err := m.Materialize(m.Logical, fetch); err == nil || !strings.Contains(err.Error(), "skeleton") {
		t.Fatalf("want skeleton error, got %v", err)
	}
}

// TestScatterReasons pins each fallback condition to its reason string via
// the full rewrite entry point.
func TestScatterReasons(t *testing.T) {
	const pre = `doc("shard://t/people")/child::site/child::people/child::person`
	cases := []struct {
		name string
		src  string
		want string // substring of the top decision's reason; "" = scattered
	}{
		{"plain path scatters", pre + `/child::name`, ""},
		{"filtered path scatters", pre + `[child::age > 30]`, ""},
		{"flwor scatters", `for $x in ` + pre + ` return $x/child::name`, ""},
		{"bare doc", `doc("shard://t/people")`, "stops above the record sequence"},
		{"skeleton path", `doc("shard://t/people")/child::site`, "stops above the record sequence"},
		{"wrong prefix", `doc("shard://t/people")/child::site/child::regions/child::item`, "does not follow the record path"},
		{"predicate above record", `doc("shard://t/people")/child::site/child::people[child::x]/child::person`, "predicate above the record step"},
		{"numeric predicate", pre + `[3]`, "select by position"},
		{"position predicate", pre + `[position() = 1]`, "positional context function"},
		{"postfix filter", `(` + pre + `)[2]`, "select by position"},
		{"order by", `for $x in ` + pre + ` order by $x/child::age return $x`, "order by over the record loop"},
		{"reverse axis", pre + `/parent::people`, "axis can escape the record subtree"},
		{"following axis in body", `for $x in ` + pre + ` return $x/following-sibling::person`, "axis can escape the record subtree"},
		{"absolute path in body", `for $x in ` + pre + ` return /child::site`, "absolute path escapes"},
		{"second doc", `for $x in ` + pre + ` return count(doc("other.xml"))`, "additional document access"},
		{"fn root", `for $x in ` + pre + ` return root($x)`, "escapes the record subtree"},
		{"fn last in body", `for $x in ` + pre + ` return last()`, "positional context function"},
		{"document-uri", `for $x in ` + pre + ` return document-uri($x)`, "observes shard document identity"},
		{"user function call", `declare function nm($y as item()*) as item()* { $y/child::name };
			for $x in ` + pre + ` return nm($x)`, "user-declared function"},
		{"node comp with param", `let $o := element e {} return for $x in ` + pre + ` return $x is $o`, "node comparison against shipped parameter"},
		{"set op with param", `let $o := element e {} return for $x in ` + pre + ` return $x union $o`, "node-set operator mixes"},
	}
	maps := []ShardMap{peopleShardMap("a", "b")}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := xq.ParseQuery(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := xq.Normalize(q); err != nil {
				t.Fatal(err)
			}
			AlphaRename(q)
			dec, err := shardRewrite(q, ByFragment, maps)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) == 0 {
				t.Fatalf("no decision recorded for %s", tc.src)
			}
			if tc.want == "" {
				if !dec[0].Scattered {
					t.Fatalf("expected scatter, got fallback %q", dec[0].Reason)
				}
				if dec[0].X == nil || dec[0].X.FuncName == "" {
					t.Fatalf("scattered decision lacks the synthesized call: %+v", dec[0])
				}
				return
			}
			if dec[0].Scattered {
				t.Fatalf("expected fallback mentioning %q, got scatter", tc.want)
			}
			if !strings.Contains(dec[0].Reason, tc.want) {
				t.Fatalf("reason %q does not mention %q", dec[0].Reason, tc.want)
			}
		})
	}
}

// TestSynthScatterShape checks the synthesized loop literally: peers in
// order, the loop variable as target, shard-path retargeting, and free
// variables shipped as parameters.
func TestSynthScatterShape(t *testing.T) {
	q, err := xq.ParseQuery(`let $k := 30 return
		for $x in doc("shard://t/people")/child::site/child::people/child::person
		return if ($x/child::age > $k) then $x/child::name else ()`)
	if err != nil {
		t.Fatal(err)
	}
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	AlphaRename(q)
	dec, err := shardRewrite(q, ByFragment, []ShardMap{peopleShardMap("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || !dec[0].Scattered {
		t.Fatalf("want one scattered decision, got %+v", dec)
	}
	x := dec[0].X
	printed := xq.PrintQuery(q)
	if !strings.Contains(printed, `("a", "b")`) {
		t.Fatalf("loop does not iterate the peer list:\n%s", printed)
	}
	if len(x.Params) != 1 || x.Params[0].Ref != "k" {
		t.Fatalf("free variable $k not shipped as parameter: %+v", x.Params)
	}
	if _, ok := x.Target.(*xq.VarRef); !ok {
		t.Fatalf("scatter target is %T, want the loop variable", x.Target)
	}
	body := xq.Print(x.Body)
	if !strings.Contains(body, `doc("p.xml")`) || strings.Contains(body, "shard://") {
		t.Fatalf("body not retargeted at the shard path:\n%s", body)
	}
}
