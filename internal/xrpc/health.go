package xrpc

// This file implements adaptive hedging: instead of a static
// RetryPolicy.HedgeAfter guessed at configuration time, a HealthTracker
// observes every exchange's latency per peer and derives the hedge trigger
// from the live distribution — hedge when an attempt has outlived the
// peer's observed P90, so roughly the slowest tenth of exchanges pay a
// speculative duplicate and the rest pay nothing. The same observations
// drive replica spreading: lanes start on a rotation of the peers the
// tracker considers healthy, so sessions stop dog-piling each shard's
// primary while failover order stays deterministic per lane.

import (
	"sort"
	"sync"
	"time"
)

// Defaults of HealthTracker's tuning knobs.
const (
	// DefaultHealthWindow is the per-peer latency sample ring size.
	DefaultHealthWindow = 64
	// DefaultHealthStaleAfter is the age beyond which a sample stops
	// counting: a peer that slowed down five minutes ago must not keep
	// poisoning (or flattering) today's quantiles.
	DefaultHealthStaleAfter = 30 * time.Second
	// DefaultHealthMinSamples is the fresh-sample floor below which the
	// tracker declines to set a hedge trigger (the static policy applies).
	DefaultHealthMinSamples = 8
	// healthEWMAAlpha weighs the newest sample in the latency EWMA.
	healthEWMAAlpha = 0.2
	// healthSlowFactor marks a peer unhealthy for spreading when its EWMA
	// exceeds the best peer's by this factor.
	healthSlowFactor = 1.5
)

// healthSample is one timestamped latency observation.
type healthSample struct {
	ns int64
	at time.Time
}

// peerHealth is one peer's live latency and fault state.
type peerHealth struct {
	ewmaNS float64
	seen   int
	ring   []healthSample
	next   int
	// faults counts consecutive failed exchanges; any success resets it.
	faults  int
	lastObs time.Time
}

// HealthTracker tracks per-peer exchange latency (EWMA plus a windowed
// quantile estimator over timestamped samples) and recent faults. It is
// safe for concurrent use; one tracker is typically shared by every session
// of a daemon so observations accumulate across queries.
type HealthTracker struct {
	// Window bounds the per-peer sample ring; zero means
	// DefaultHealthWindow.
	Window int
	// StaleAfter bounds sample age for quantiles and hedge triggers; zero
	// means DefaultHealthStaleAfter.
	StaleAfter time.Duration
	// MinSamples is the fresh-sample floor for adaptive hedge triggers;
	// zero means DefaultHealthMinSamples.
	MinSamples int

	mu    sync.Mutex
	peers map[string]*peerHealth
	// now is the clock, swappable by tests.
	now func() time.Time
}

// NewHealthTracker returns an empty tracker with default tuning.
func NewHealthTracker() *HealthTracker {
	return &HealthTracker{peers: map[string]*peerHealth{}}
}

func (h *HealthTracker) timeNow() time.Time {
	if h.now != nil {
		return h.now()
	}
	return time.Now()
}

func (h *HealthTracker) window() int {
	if h.Window > 0 {
		return h.Window
	}
	return DefaultHealthWindow
}

func (h *HealthTracker) staleAfter() time.Duration {
	if h.StaleAfter > 0 {
		return h.StaleAfter
	}
	return DefaultHealthStaleAfter
}

func (h *HealthTracker) minSamples() int {
	if h.MinSamples > 0 {
		return h.MinSamples
	}
	return DefaultHealthMinSamples
}

func (h *HealthTracker) peer(name string) *peerHealth {
	if h.peers == nil {
		h.peers = map[string]*peerHealth{}
	}
	p, ok := h.peers[name]
	if !ok {
		p = &peerHealth{ring: make([]healthSample, h.window())}
		h.peers[name] = p
	}
	return p
}

// Observe records one successful exchange's latency against a peer and
// clears its fault streak.
func (h *HealthTracker) Observe(peer string, latency time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(peer)
	ns := latency.Nanoseconds()
	if p.seen == 0 {
		p.ewmaNS = float64(ns)
	} else {
		p.ewmaNS = healthEWMAAlpha*float64(ns) + (1-healthEWMAAlpha)*p.ewmaNS
	}
	p.ring[p.next] = healthSample{ns: ns, at: h.timeNow()}
	p.next = (p.next + 1) % len(p.ring)
	p.seen++
	p.faults = 0
	p.lastObs = h.timeNow()
}

// ObserveFault records a genuine exchange failure against a peer (not a
// cancellation echo — the dispatcher filters those before reporting).
func (h *HealthTracker) ObserveFault(peer string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(peer)
	p.faults++
	p.lastObs = h.timeNow()
}

// freshLocked returns the peer's non-stale latency samples in ns.
func (h *HealthTracker) freshLocked(p *peerHealth) []int64 {
	cutoff := h.timeNow().Add(-h.staleAfter())
	var out []int64
	for _, s := range p.ring {
		if s.at.IsZero() || s.at.Before(cutoff) {
			continue
		}
		out = append(out, s.ns)
	}
	return out
}

// EWMA returns the peer's smoothed latency; ok is false for a peer the
// tracker has never seen succeed or whose last observation has gone stale.
func (h *HealthTracker) EWMA(peer string) (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[peer]
	if !ok || p.seen == 0 || h.timeNow().Sub(p.lastObs) > h.staleAfter() {
		return 0, false
	}
	return time.Duration(p.ewmaNS), true
}

// Quantile returns the q-quantile (nearest rank, 0 < q <= 1) of the peer's
// fresh latency samples; ok is false with no fresh samples.
func (h *HealthTracker) Quantile(peer string, q float64) (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[peer]
	if !ok {
		return 0, false
	}
	fresh := h.freshLocked(p)
	if len(fresh) == 0 {
		return 0, false
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	rank := int(q*float64(len(fresh)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(fresh) {
		rank = len(fresh)
	}
	return time.Duration(fresh[rank-1]), true
}

// HedgeAfter derives the adaptive hedge trigger of one peer: its observed
// P90 over fresh samples. ok is false below the fresh-sample floor — the
// caller falls back to the static policy value until the tracker has seen
// enough traffic to know better.
func (h *HealthTracker) HedgeAfter(peer string) (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	p, ok := h.peers[peer]
	var fresh []int64
	if ok {
		fresh = h.freshLocked(p)
	}
	h.mu.Unlock()
	if len(fresh) < h.minSamples() {
		return 0, false
	}
	d, _ := h.Quantile(peer, 0.9)
	return d, true
}

// PeerHealthState is one peer's tracker state at snapshot time — what the
// daemon's /stats and /metrics surfaces expose so adaptive-hedging decisions
// can be audited from outside.
type PeerHealthState struct {
	// EWMANS is the smoothed exchange latency in nanoseconds.
	EWMANS int64 `json:"ewma_ns"`
	// FreshP90NS is the P90 over fresh samples (the adaptive hedge trigger),
	// zero below the fresh-sample floor.
	FreshP90NS int64 `json:"fresh_p90_ns"`
	// FreshSamples counts non-stale latency samples in the window.
	FreshSamples int `json:"fresh_samples"`
	// Seen counts successful exchanges ever observed.
	Seen int `json:"seen"`
	// Faults is the current consecutive-failure streak.
	Faults int `json:"faults"`
	// AgeNS is the time since the last observation of any kind.
	AgeNS int64 `json:"age_ns"`
}

// SnapshotAll returns every tracked peer's state, keyed by peer name.
func (h *HealthTracker) SnapshotAll() map[string]PeerHealthState {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.peers))
	for name := range h.peers {
		names = append(names, name)
	}
	now := h.timeNow()
	out := make(map[string]PeerHealthState, len(names))
	for _, name := range names {
		p := h.peers[name]
		st := PeerHealthState{
			EWMANS: int64(p.ewmaNS),
			Seen:   p.seen,
			Faults: p.faults,
		}
		if !p.lastObs.IsZero() {
			st.AgeNS = now.Sub(p.lastObs).Nanoseconds()
		}
		st.FreshSamples = len(h.freshLocked(p))
		out[name] = st
	}
	h.mu.Unlock()
	// Quantile re-locks per peer; fill the P90 after releasing the lock.
	for _, name := range names {
		st := out[name]
		if st.FreshSamples >= h.minSamples() {
			if d, ok := h.Quantile(name, 0.9); ok {
				st.FreshP90NS = d.Nanoseconds()
				out[name] = st
			}
		}
	}
	return out
}

// Rank orders a lane's target rotation for dispatch: the healthy targets —
// no fault streak, EWMA within healthSlowFactor of the best (unknown peers
// count as healthy; they deserve traffic to get measured) — rotated by seq
// so consecutive lanes spread across them, followed by the unhealthy ones
// in their original failover order. The result is a permutation of targets,
// deterministic given seq and the tracker state, so each lane's failover
// order stays reproducible.
func (h *HealthTracker) Rank(targets []string, seq uint64) []string {
	if len(targets) <= 1 {
		return targets
	}
	_, bad := h.classify(targets)
	var healthy, unhealthy []string
	for i, t := range targets {
		if bad[i] {
			unhealthy = append(unhealthy, t)
		} else {
			healthy = append(healthy, t)
		}
	}
	if len(healthy) == 0 {
		healthy, unhealthy = unhealthy, nil
	}
	off := int(seq % uint64(len(healthy)))
	out := make([]string, 0, len(targets))
	out = append(out, healthy[off:]...)
	out = append(out, healthy[:off]...)
	out = append(out, unhealthy...)
	return out
}

// classify snapshots each target's dispatch-relevant state: its EWMA (-1
// when unknown or stale) and whether it counts unhealthy — a fault streak,
// or an EWMA beyond healthSlowFactor of the best target's.
func (h *HealthTracker) classify(targets []string) (ewma []float64, unhealthy []bool) {
	h.mu.Lock()
	best := 0.0
	ewma = make([]float64, len(targets))
	faulty := make([]bool, len(targets))
	stale := h.staleAfter()
	for i, t := range targets {
		p, ok := h.peers[t]
		if !ok || p.seen == 0 || h.timeNow().Sub(p.lastObs) > stale {
			ewma[i] = -1 // unknown
		} else {
			ewma[i] = p.ewmaNS
			if best == 0 || p.ewmaNS < best {
				best = p.ewmaNS
			}
		}
		if ok && p.faults > 0 {
			faulty[i] = true
		}
	}
	h.mu.Unlock()
	unhealthy = make([]bool, len(targets))
	for i := range targets {
		slow := ewma[i] > 0 && best > 0 && ewma[i] > healthSlowFactor*best
		unhealthy[i] = faulty[i] || slow
	}
	return ewma, unhealthy
}

// RankLive orders a lane's target rotation by live health, fastest copy
// first: healthy targets with a known EWMA in ascending-latency order, then
// healthy-but-unmeasured targets in canonical failover order (they deserve
// traffic to get measured), then targets with a fault streak or a slow EWMA,
// again in canonical order. Unlike Rank there is no per-lane rotation —
// every lane's first attempt goes to the live, fastest copy, which is what
// re-route (as opposed to fail-over) semantics want: a departed or degraded
// primary stops receiving first attempts the moment the tracker has seen it
// fault, instead of every lane burning an attempt against the corpse. A nil
// tracker returns targets unchanged.
func (h *HealthTracker) RankLive(targets []string) []string {
	if h == nil || len(targets) <= 1 {
		return targets
	}
	ewma, unhealthy := h.classify(targets)
	idx := make([]int, len(targets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if unhealthy[ia] != unhealthy[ib] {
			return !unhealthy[ia]
		}
		if unhealthy[ia] {
			return false // canonical order among the unhealthy
		}
		knownA, knownB := ewma[ia] >= 0, ewma[ib] >= 0
		if knownA != knownB {
			return knownA
		}
		if knownA {
			return ewma[ia] < ewma[ib]
		}
		return false // canonical order among the unmeasured
	})
	out := make([]string, len(targets))
	for i, j := range idx {
		out[i] = targets[j]
	}
	return out
}
