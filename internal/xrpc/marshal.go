package xrpc

import (
	"fmt"
	"strconv"
	"strings"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/trace"
	"distxq/internal/xdm"
)

// MarshalRequest serializes a request into a SOAP message. For
// pass-by-projection, paramUsed/paramReturned supply the per-parameter
// relative projection paths applied while serializing, and the request's
// ResultUsed/ResultReturned travel in the projection-paths element for the
// server to apply on the response (Fig. 5).
func MarshalRequest(r *Request, paramUsed, paramReturned []projection.PathSet, opts projection.Options) ([]byte, error) {
	st := &encodeState{
		sem:           r.Semantics,
		paramUsed:     paramUsed,
		paramReturned: paramReturned,
		projOpts:      opts,
	}
	var seqs []xdm.Sequence
	var paramOf []int
	for _, call := range r.Calls {
		if len(call) != r.Arity {
			return nil, fmt.Errorf("xrpc: call has %d parameters, arity is %d", len(call), r.Arity)
		}
		for p, s := range call {
			seqs = append(seqs, s)
			paramOf = append(paramOf, p)
		}
	}
	if err := st.buildFragments(seqs, paramOf); err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(envelopeOpen)
	fmt.Fprintf(&sb, "<%s>", elBody)
	fmt.Fprintf(&sb,
		`<%s method="%s" arity="%d" semantics="%s" base-uri="%s" collation="%s" datetime="%s"`,
		elRequest, escapeAttr(r.Method), r.Arity, r.Semantics,
		escapeAttr(r.Static.BaseURI), escapeAttr(r.Static.DefaultCollation),
		escapeAttr(r.Static.CurrentDateTime))
	if r.BudgetNS > 0 {
		fmt.Fprintf(&sb, ` budget-ns="%d"`, r.BudgetNS)
	}
	if r.TraceID != 0 {
		fmt.Fprintf(&sb, ` trace-id="%d" span-id="%d"`, r.TraceID, r.TraceSpan)
	}
	sb.WriteString(">")
	fmt.Fprintf(&sb, "<%s>%s</%s>", elModule, escapeText(r.Module), elModule)
	if r.Semantics == ByProjection {
		fmt.Fprintf(&sb, "<%s>", elProjPaths)
		for _, p := range r.ResultUsed {
			fmt.Fprintf(&sb, "<%s>%s</%s>", elUsedPath, escapeText(p.String()), elUsedPath)
		}
		for _, p := range r.ResultReturned {
			fmt.Fprintf(&sb, "<%s>%s</%s>", elRetPath, escapeText(p.String()), elRetPath)
		}
		fmt.Fprintf(&sb, "</%s>", elProjPaths)
	}
	st.writeFragments(&sb)
	for _, call := range r.Calls {
		fmt.Fprintf(&sb, "<%s>", elCall)
		for _, s := range call {
			if err := st.writeSequence(&sb, s); err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(&sb, "</%s>", elCall)
	}
	fmt.Fprintf(&sb, "</%s></%s></env:Envelope>", elRequest, elBody)
	return []byte(sb.String()), nil
}

// ParseRequest shreds a request message: fragments become fresh documents
// and parameter sequences resolve into them (preserving node identity and
// order among parameters of the same message, §V).
func ParseRequest(data []byte) (*Request, error) {
	doc, err := xdm.ParseBytes(data, "xrpc:request")
	if err != nil {
		return nil, fmt.Errorf("xrpc: malformed request: %w", err)
	}
	reqEl, err := messagePayload(doc, elRequest)
	if err != nil {
		return nil, err
	}
	r := &Request{Method: attrOr(reqEl, "method", "")}
	r.Arity, _ = strconv.Atoi(attrOr(reqEl, "arity", "0"))
	r.Semantics, err = ParseSemantics(attrOr(reqEl, "semantics", "by-value"))
	if err != nil {
		return nil, err
	}
	r.Static = eval.StaticContext{
		BaseURI:          attrOr(reqEl, "base-uri", ""),
		DefaultCollation: attrOr(reqEl, "collation", ""),
		CurrentDateTime:  attrOr(reqEl, "datetime", ""),
	}
	r.BudgetNS, _ = strconv.ParseInt(attrOr(reqEl, "budget-ns", "0"), 10, 64)
	r.TraceID, _ = strconv.ParseUint(attrOr(reqEl, "trace-id", "0"), 10, 64)
	r.TraceSpan, _ = strconv.ParseUint(attrOr(reqEl, "span-id", "0"), 10, 64)
	if m := findChild(reqEl, elModule); m != nil {
		r.Module = m.StringValue()
	}
	if pp := findChild(reqEl, elProjPaths); pp != nil {
		for _, c := range childElems(pp) {
			p, perr := projection.ParsePath(c.StringValue())
			if perr != nil {
				return nil, perr
			}
			switch localName(c.Name) {
			case localName(elUsedPath):
				r.ResultUsed = r.ResultUsed.Add(p)
			case localName(elRetPath):
				r.ResultReturned = r.ResultReturned.Add(p)
			}
		}
	}
	st, err := decodeFragments(findChild(reqEl, elFragments))
	if err != nil {
		return nil, err
	}
	r.fragDocs = st.fragDocs
	for _, callEl := range childElems(reqEl) {
		if !nameIs(callEl, elCall) {
			continue
		}
		var params []xdm.Sequence
		for _, seqEl := range childElems(callEl) {
			if !nameIs(seqEl, elSequence) {
				return nil, fmt.Errorf("xrpc: unexpected %s in call", seqEl.Name)
			}
			s, err := st.decodeSequence(seqEl)
			if err != nil {
				return nil, err
			}
			params = append(params, s)
		}
		if len(params) != r.Arity {
			return nil, fmt.Errorf("xrpc: call carries %d sequences, arity is %d", len(params), r.Arity)
		}
		if params == nil {
			params = []xdm.Sequence{}
		}
		r.Calls = append(r.Calls, params)
	}
	if len(r.Calls) == 0 {
		return nil, fmt.Errorf("xrpc: request without calls")
	}
	return r, nil
}

// MarshalResponse serializes the results of every call. For
// pass-by-projection, resultUsed/resultReturned are the relative paths from
// the request's projection-paths element, applied to the result sequences
// while building the response fragments.
func MarshalResponse(resp *Response, resultUsed, resultReturned projection.PathSet, opts projection.Options) ([]byte, error) {
	st := &encodeState{
		sem:           resp.Semantics,
		paramUsed:     []projection.PathSet{resultUsed},
		paramReturned: []projection.PathSet{resultReturned},
		projOpts:      opts,
	}
	if err := st.buildFragments(resp.Results, nil); err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(envelopeOpen)
	fmt.Fprintf(&sb, "<%s>", elBody)
	fmt.Fprintf(&sb, `<%s semantics="%s" exec-ns="%d" serde-ns="%d">`,
		elResponse, resp.Semantics, resp.ExecNanos, resp.SerializeNanos)
	writeTraceEl(&sb, resp.Spans)
	st.writeFragments(&sb)
	for _, res := range resp.Results {
		fmt.Fprintf(&sb, "<%s>", elCall)
		if err := st.writeSequence(&sb, res); err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "</%s>", elCall)
	}
	fmt.Fprintf(&sb, "</%s></%s></env:Envelope>", elResponse, elBody)
	return []byte(sb.String()), nil
}

// ParseResponse shreds a response message.
func ParseResponse(data []byte) (*Response, error) {
	doc, err := xdm.ParseBytes(data, "xrpc:response")
	if err != nil {
		return nil, fmt.Errorf("xrpc: malformed response: %w", err)
	}
	respEl, err := messagePayload(doc, elResponse)
	if err != nil {
		return nil, err
	}
	resp := &Response{}
	resp.Semantics, err = ParseSemantics(attrOr(respEl, "semantics", "by-value"))
	if err != nil {
		return nil, err
	}
	resp.ExecNanos, _ = strconv.ParseInt(attrOr(respEl, "exec-ns", "0"), 10, 64)
	resp.SerializeNanos, _ = strconv.ParseInt(attrOr(respEl, "serde-ns", "0"), 10, 64)
	resp.Spans = parseTraceEl(respEl)
	st, err := decodeFragments(findChild(respEl, elFragments))
	if err != nil {
		return nil, err
	}
	resp.fragDocs = st.fragDocs
	for _, callEl := range childElems(respEl) {
		if !nameIs(callEl, elCall) {
			continue
		}
		seqEl := findChild(callEl, elSequence)
		if seqEl == nil {
			return nil, fmt.Errorf("xrpc: response call without sequence")
		}
		s, err := st.decodeSequence(seqEl)
		if err != nil {
			return nil, err
		}
		resp.Results = append(resp.Results, s)
	}
	return resp, nil
}

// Fault is an XRPC error travelling back as a SOAP fault. Code, when
// non-empty, types the failure class (FaultCodeDeadline, FaultCodeOverloaded)
// so originators can match it with errors.Is instead of parsing messages.
type Fault struct {
	Msg  string
	Code string
	// Spans carries the server-side spans of a traced request that faulted —
	// a lane that fails over mid-stream still contributes its partial server
	// work to the originator's tree.
	Spans []trace.Span
}

func (f *Fault) Error() string {
	if f.Code != "" {
		return "xrpc: remote fault [" + f.Code + "]: " + f.Msg
	}
	return "xrpc: remote fault: " + f.Msg
}

// Is maps the wire-level fault codes back onto the typed sentinels, so a
// deadline or overload failure keeps its identity across the SOAP hop.
func (f *Fault) Is(target error) bool {
	switch f.Code {
	case FaultCodeDeadline:
		return target == ErrDeadlineExceeded
	case FaultCodeOverloaded:
		return target == ErrOverloaded
	}
	return false
}

// MarshalFault renders an error as a SOAP fault message, carrying the typed
// failure class (when the error has one) as an env:Code child.
func MarshalFault(err error) []byte {
	var sb strings.Builder
	sb.WriteString(envelopeOpen)
	fmt.Fprintf(&sb, "<%s><env:Fault>", elBody)
	if code := faultCode(err); code != "" {
		fmt.Fprintf(&sb, "<env:Code>%s</env:Code>", escapeText(code))
	}
	fmt.Fprintf(&sb, "<env:Reason>%s</env:Reason>", escapeText(err.Error()))
	writeTraceEl(&sb, faultSpans(err))
	fmt.Fprintf(&sb, "</env:Fault></%s></env:Envelope>", elBody)
	return []byte(sb.String())
}

// writeTraceEl emits the piggybacked-span element when spans are present;
// untraced messages stay byte-identical to the pre-trace wire form.
func writeTraceEl(sb *strings.Builder, spans []trace.Span) {
	if len(spans) == 0 {
		return
	}
	data, err := trace.EncodeSpans(spans)
	if err != nil {
		return // dropping spans never fails a message
	}
	fmt.Fprintf(sb, "<%s>%s</%s>", elTrace, escapeText(string(data)), elTrace)
}

// parseTraceEl decodes a piggybacked-span child of el, nil when absent or
// malformed — trace data is advisory and never fails message decoding.
func parseTraceEl(el *xdm.Node) []trace.Span {
	tEl := findChild(el, elTrace)
	if tEl == nil {
		return nil
	}
	spans, err := trace.DecodeSpans([]byte(tEl.StringValue()))
	if err != nil {
		return nil
	}
	return spans
}

// messagePayload unwraps Envelope/Body and returns the payload element,
// surfacing faults as errors.
func messagePayload(doc *xdm.Document, want string) (*xdm.Node, error) {
	env := doc.DocElem()
	if env == nil || !nameIs(env, elEnvelope) {
		return nil, fmt.Errorf("xrpc: not a SOAP envelope")
	}
	body := findChild(env, elBody)
	if body == nil {
		return nil, fmt.Errorf("xrpc: envelope without body")
	}
	if f := findChild(body, "env:Fault"); f != nil {
		fault := &Fault{Msg: f.StringValue()}
		if r := findChild(f, "env:Reason"); r != nil {
			fault.Msg = r.StringValue()
		}
		if c := findChild(f, "env:Code"); c != nil {
			fault.Code = c.StringValue()
		}
		fault.Spans = parseTraceEl(f)
		return nil, fault
	}
	el := findChild(body, want)
	if el == nil {
		return nil, fmt.Errorf("xrpc: body lacks %s", want)
	}
	return el, nil
}
