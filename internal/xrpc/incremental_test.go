package xrpc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
)

// incrementalRequest marshals a one-call request for a shipped function
// whose body is given verbatim.
func incrementalRequest(t testing.TB, body string) []byte {
	t.Helper()
	req := &Request{
		Method: "f", Arity: 1, Semantics: ByValue,
		Module: `declare function f($p as item()*) as item()* { ` + body + ` };`,
		Static: eval.DefaultStatic(),
		Calls:  [][]xdm.Sequence{{xdm.Singleton(xdm.NewString("p"))}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHandleStreamFirstFrameMidEvaluation is the incremental-evaluation
// acceptance test: the server must deliver a chunk frame while call
// evaluation is still in progress. The shipped body concatenates a fast
// document with one whose resolution blocks on a channel; with small
// chunks, frames from the fast prefix must arrive while the resolver is
// still parked.
func TestHandleStreamFirstFrameMidEvaluation(t *testing.T) {
	gate := make(chan struct{})
	resolver := eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
		switch uri {
		case "fast.xml":
			return xdm.ParseString("<r><x>1</x><x>2</x><x>3</x><x>4</x></r>", uri)
		case "slow.xml":
			<-gate
			return xdm.ParseString("<r><x>5</x><x>6</x></r>", uri)
		}
		return nil, fmt.Errorf("no such document %q", uri)
	})
	srv := &Server{Engine: eval.NewEngine(resolver), ChunkItems: 2}
	request := incrementalRequest(t,
		`(doc("fast.xml")/child::r/child::x, doc("slow.xml")/child::r/child::x)`)

	frames := make(chan []byte, 16)
	done := make(chan error, 1)
	go func() {
		done <- srv.HandleStream(request, func(frame []byte) error {
			frames <- append([]byte(nil), frame...)
			return nil
		})
	}()

	// A frame carrying results must arrive while slow.xml is still blocked,
	// i.e. strictly before the call's evaluation completes.
	var early [][]byte
	select {
	case fr := <-frames:
		early = append(early, fr)
		ch, err := ParseResponseChunk(fr)
		if err != nil {
			t.Fatalf("parse early frame: %v", err)
		}
		if ch.Last || len(ch.Items) == 0 {
			t.Fatalf("early frame should carry result items, got %+v", ch)
		}
	case err := <-done:
		t.Fatalf("HandleStream returned (%v) before emitting a frame mid-evaluation", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no frame delivered while evaluation was blocked")
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("HandleStream: %v", err)
	}
	close(frames)
	for fr := range frames {
		early = append(early, fr)
	}
	got := reassemble(t, early, 1)
	if g := serialize(got[0]); g != "<x>1</x> <x>2</x> <x>3</x> <x>4</x> <x>5</x> <x>6</x>" {
		t.Fatalf("reassembled result = %q", g)
	}
}

// TestIncrementalPeakBufferedBounded: an incremental stream holds at most
// one frame's worth of result items at a time, while the eager-stream
// baseline and the gather-whole handler buffer the entire result.
func TestIncrementalPeakBufferedBounded(t *testing.T) {
	const n, chunk = 500, 8
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<x>%d</x>", i)
	}
	sb.WriteString("</r>")
	docs := mapResolver{"d.xml": sb.String()}
	request := incrementalRequest(t, `doc("d.xml")/child::r/child::x`)

	run := func(srv *Server, stream bool) int64 {
		t.Helper()
		srv.Metrics = &Metrics{}
		var err error
		if stream {
			err = srv.HandleStream(request, func([]byte) error { return nil })
		} else {
			_, err = srv.Handle(request)
		}
		if err != nil {
			t.Fatal(err)
		}
		return srv.Metrics.Snapshot().PeakBufferedItems
	}

	if peak := run(&Server{Engine: eval.NewEngine(docs), ChunkItems: chunk}, true); peak > chunk {
		t.Errorf("incremental peak = %d items, want <= %d (one frame)", peak, chunk)
	}
	if peak := run(&Server{Engine: eval.NewEngine(docs), ChunkItems: chunk, EagerStream: true}, true); peak < n {
		t.Errorf("eager-stream peak = %d items, want >= %d (whole call)", peak, n)
	}
	if peak := run(&Server{Engine: eval.NewEngine(docs)}, false); peak < n {
		t.Errorf("gather-whole peak = %d items, want >= %d (whole response)", peak, n)
	}
}

// TestStreamedLazyEagerEquivalenceRandomized: across randomized documents,
// chunk sizes 1/4/32, and both server modes, the streamed scatter results
// serialize byte-identically to the gather-whole baseline — chunk
// boundaries falling mid-evaluation must be invisible to the client.
func TestStreamedLazyEagerEquivalenceRandomized(t *testing.T) {
	queries := []string{
		// positional predicate over a streamed child step
		`declare function f($p as item()*) as item()* { doc("d.xml")/child::lib/child::book[2]/child::title };
		 for $p in ("a", "b") return execute at {$p} { f($p) }`,
		// value predicate plus mixed atomic results
		`declare function f($p as item()*) as item()* { ($p, count(doc("d.xml")/child::lib/child::book), doc("d.xml")/child::lib/child::book[child::pages > 110]/child::title) };
		 for $p in ("a", "b") return execute at {$p} { f($p) }`,
		// descendant step (streamed) and a last() predicate (materialize fallback)
		`declare function f($p as item()*) as item()* { (doc("d.xml")/descendant-or-self::node()/child::pages, doc("d.xml")/child::lib/child::book[last()]/child::title) };
		 for $p in ("a", "b") return execute at {$p} { f($p) }`,
	}
	for _, sem := range []Semantics{ByValue, ByFragment, ByProjection} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			var sb strings.Builder
			sb.WriteString("<lib>")
			n := 5 + rng.Intn(30)
			for i := 0; i < n; i++ {
				fmt.Fprintf(&sb, `<book id="b%d"><title>T%d &amp; more</title><pages>%d</pages></book>`,
					i, rng.Intn(100), 100+rng.Intn(40))
			}
			sb.WriteString("</lib>")
			docXML := sb.String()
			mkPeers := func(chunk int, eager bool) map[string]*Server {
				peers := map[string]*Server{}
				for _, name := range []string{"a", "b"} {
					peers[name] = &Server{
						Engine:      eval.NewEngine(mapResolver{"d.xml": docXML}),
						ChunkItems:  chunk,
						EagerStream: eager,
					}
				}
				return peers
			}
			for qi, q := range queries {
				gatherEng, _ := wire(t, sem, mkPeers(0, false))
				want, err := gatherEng.QueryString(q)
				if err != nil {
					t.Fatalf("sem=%v seed=%d q=%d gather: %v", sem, seed, qi, err)
				}
				w := serialize(want)
				for _, chunk := range []int{1, 4, 32} {
					for _, eager := range []bool{false, true} {
						eng, _ := streamWire(t, sem, mkPeers(chunk, eager))
						got, err := eng.QueryString(q)
						if err != nil {
							t.Fatalf("sem=%v seed=%d q=%d chunk=%d eager=%v: %v",
								sem, seed, qi, chunk, eager, err)
						}
						if g := serialize(got); g != w {
							t.Fatalf("sem=%v seed=%d q=%d chunk=%d eager=%v:\n got %q\nwant %q",
								sem, seed, qi, chunk, eager, g, w)
						}
					}
				}
			}
		}
	}
}
