package xrpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// wireRetry builds a client engine with a retry policy and a replica map
// over the in-memory transport.
func wireRetry(peers map[string]*Server, pol *RetryPolicy, replicas map[string][]string) (*eval.Engine, *Client, *InMemoryTransport) {
	tr := NewInMemoryTransport()
	for name, srv := range peers {
		tr.Register(name, srv)
	}
	cl := &Client{
		Transport: tr,
		Semantics: ByValue,
		Static:    eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{},
		Metrics:   &Metrics{},
		Retry:     pol,
	}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	eng.Replicas = replicas
	return eng, cl, tr
}

const echoScatter = `
declare function f($x as xs:string) as item()* { $x };
for $p in ("p1", "p2", "p3") return execute at {$p} { f($p) }`

// TestScatterFailoverToReplica: a dead primary's lane completes via its
// replica, the result is identical to the healthy run, and the winning
// lane's provenance records the failover.
func TestScatterFailoverToReplica(t *testing.T) {
	peers := map[string]*Server{"p1": newPeer(nil), "p3": newPeer(nil), "r2": newPeer(nil)}
	// p2 is never registered: its lane must fail over to r2.
	eng, cl, _ := wireRetry(peers, nil, map[string][]string{"p2": {"r2"}})
	res, err := eng.QueryString(echoScatter)
	if err != nil {
		t.Fatal(err)
	}
	// The shipped body echoes its parameter, which is the loop's target
	// string — so the gathered result proves loop order survived failover.
	if got := serialize(res); got != "p1 p2 p3" {
		t.Fatalf("result = %q, want loop-ordered p1 p2 p3", got)
	}
	s := cl.Metrics.Snapshot()
	var failedOver *Lane
	for _, w := range s.Waves {
		for i := range w {
			if w[i].Target == "p2" {
				failedOver = &w[i]
			}
		}
	}
	if failedOver == nil {
		t.Fatal("no lane recorded for target p2")
	}
	if failedOver.Peer != "r2" || failedOver.Replica != 1 || failedOver.Retries != 1 || failedOver.Hedges != 0 {
		t.Errorf("lane provenance = %+v, want winner r2 / replica 1 / 1 retry / 0 hedges", failedOver)
	}
}

// flakyServer fails its first n exchanges, then behaves.
type flakyServer struct {
	*Server
	failures atomic.Int64
}

func (f *flakyServer) Handle(request []byte) ([]byte, error) {
	if f.failures.Add(-1) >= 0 {
		return nil, errors.New("injected transient failure")
	}
	return f.Server.Handle(request)
}

// TestRetrySameTarget: with MaxAttempts > 1 and no replicas, a transient
// fault on a sequential Bulk RPC is retried against the same peer.
func TestRetrySameTarget(t *testing.T) {
	fl := &flakyServer{Server: newPeer(nil)}
	fl.failures.Store(1)
	eng, cl, _ := wireRetry(map[string]*Server{"p": fl.Server}, &RetryPolicy{MaxAttempts: 2}, nil)
	cl.Transport.(*InMemoryTransport).Register("p", fl)
	res, err := eng.QueryString(`
	declare function f() as item()* { "ok" };
	let $r := execute at {"p"} { f() } return $r`)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "ok" {
		t.Fatalf("result = %q, want ok", serialize(res))
	}
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 1 || len(s.Waves[0]) != 1 {
		t.Fatalf("waves = %+v, want one single-lane wave", s.Waves)
	}
	lane := s.Waves[0][0]
	if lane.Retries != 1 || lane.Replica != 0 || lane.Peer != "p" {
		t.Errorf("lane = %+v, want one same-target retry", lane)
	}
}

// slowTransport delays exchanges to selected peers, honoring cancellation —
// the injected-straggler harness for hedging tests.
type slowTransport struct {
	inner     *InMemoryTransport
	delay     map[string]time.Duration
	cancelled atomic.Int64
}

func (s *slowTransport) wait(ctx context.Context, peer string) error {
	if d := s.delay[peer]; d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			s.cancelled.Add(1)
			return ctx.Err()
		}
	}
	return nil
}

func (s *slowTransport) RoundTrip(peer string, req []byte) ([]byte, error) {
	return s.RoundTripContext(context.Background(), peer, req)
}

func (s *slowTransport) RoundTripContext(ctx context.Context, peer string, req []byte) ([]byte, error) {
	if err := s.wait(ctx, peer); err != nil {
		return nil, err
	}
	return s.inner.RoundTrip(peer, req)
}

func (s *slowTransport) RoundTripStream(ctx context.Context, peer string, req []byte, sink func([]byte) error) error {
	if err := s.wait(ctx, peer); err != nil {
		return err
	}
	return s.inner.RoundTripStream(ctx, peer, req, sink)
}

// TestHedgeRaceReplicaWins: a straggling primary is hedged after HedgeAfter
// and the replica's response wins; the straggler is cancelled and the lane
// records the hedge and its wasted time.
func TestHedgeRaceReplicaWins(t *testing.T) {
	peers := map[string]*Server{"p1": newPeer(nil), "r1": newPeer(nil)}
	eng, cl, tr := wireRetry(peers, &RetryPolicy{MaxAttempts: 2, HedgeAfter: 5 * time.Millisecond},
		map[string][]string{"p1": {"r1"}})
	slow := &slowTransport{inner: tr, delay: map[string]time.Duration{"p1": 2 * time.Second}}
	cl.Transport = slow
	t0 := time.Now()
	res, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("p1") return execute at {$p} { f($p) }`)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "p1" {
		t.Fatalf("result = %q, want p1", serialize(res))
	}
	if wall := time.Since(t0); wall > time.Second {
		t.Fatalf("query took %v — the hedge did not cut the straggler short", wall)
	}
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 1 || len(s.Waves[0]) != 1 {
		t.Fatalf("waves = %+v, want one single-lane wave", s.Waves)
	}
	lane := s.Waves[0][0]
	if lane.Peer != "r1" || lane.Replica != 1 || lane.Hedges != 1 || lane.Retries != 0 {
		t.Errorf("lane = %+v, want hedged winner r1", lane)
	}
	if lane.WastedNS <= 0 {
		t.Errorf("lane.WastedNS = %d, want > 0 (the losing straggler burned time)", lane.WastedNS)
	}
	// The winner returns without waiting for the loser to unwind; give the
	// cancelled straggler a moment to observe its torn-down context.
	for deadline := time.Now().Add(2 * time.Second); slow.cancelled.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("straggling attempt was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExhaustedReplicasReportOriginalFault: when the primary and every
// replica fail, the lane error is the original fault, never a cancellation
// echo of the retry machinery tearing attempts down.
func TestExhaustedReplicasReportOriginalFault(t *testing.T) {
	// Neither "dead" nor its replica exist; "up" answers.
	eng, _, _ := wireRetry(map[string]*Server{"up": newPeer(nil)}, nil,
		map[string][]string{"dead": {"alsodead"}})
	_, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("up", "dead") return execute at {$p} { f($p) }`)
	if err == nil {
		t.Fatal("query succeeded with every replica dead")
	}
	if errors.Is(err, context.Canceled) || strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error = %v, a cancellation echo instead of the original fault", err)
	}
	if !strings.Contains(err.Error(), `unknown peer "dead"`) {
		t.Fatalf("error = %v, want the original unknown-peer fault of the primary", err)
	}
}

// failAfterFrames streams n frames of each exchange, then dies — the
// mid-stream kill-peer injection.
type failAfterFrames struct {
	*Server
	frames int
}

func (f *failAfterFrames) HandleStream(request []byte, emit func([]byte) error) error {
	n := 0
	return f.Server.HandleStream(request, func(frame []byte) error {
		if n >= f.frames {
			return errors.New("injected: peer died mid-stream")
		}
		n++
		return emit(frame)
	})
}

// streamedScatterResult runs a streamed two-peer scatter over the given
// transport-registered servers and returns the serialized result and lanes.
func runStreamedScatter(t *testing.T, eng *eval.Engine, src string) string {
	t.Helper()
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	return serialize(res)
}

// TestStreamedFailoverMidStream: a peer that dies after emitting part of its
// chunked stream fails over to its replica; the replayed prefix is
// suppressed, so the gathered result is byte-identical to the healthy run.
func TestStreamedFailoverMidStream(t *testing.T) {
	docs := mapResolver{"xmk.xml": "<r><a>1</a><a>2</a><a>3</a><a>4</a><a>5</a></r>"}
	src := `
	declare function f() as item()* { doc("xmk.xml")/child::r/child::a };
	for $p in ("p1", "p2") return execute at {$p} { f() }`

	mkEngine := func(pol *RetryPolicy, install func(tr *InMemoryTransport)) (*eval.Engine, *Client) {
		tr := NewInMemoryTransport()
		// One item per chunk so several frames flow before the injected death.
		tr.Register("p1", &Server{Engine: eval.NewEngine(docs), ChunkItems: 1})
		tr.Register("p2", &Server{Engine: eval.NewEngine(docs), ChunkItems: 1})
		if install != nil {
			install(tr)
		}
		cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
			Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}, Retry: pol}
		eng := eval.NewEngine(nil)
		eng.Remote = &StreamedClient{Client: cl}
		return eng, cl
	}

	healthyEng, _ := mkEngine(nil, nil)
	want := runStreamedScatter(t, healthyEng, src)

	for _, dieAfter := range []int{0, 1, 2, 3} {
		eng, cl := mkEngine(&RetryPolicy{}, func(tr *InMemoryTransport) {
			tr.Register("p2", &failAfterFrames{
				Server: &Server{Engine: eval.NewEngine(docs), ChunkItems: 1}, frames: dieAfter})
		})
		eng.Replicas = map[string][]string{"p2": {"r2"}}
		cl.Transport.(*InMemoryTransport).Register("r2", &Server{Engine: eval.NewEngine(docs), ChunkItems: 2})
		got := runStreamedScatter(t, eng, src)
		if got != want {
			t.Fatalf("die-after-%d-frames: result %q != healthy %q", dieAfter, got, want)
		}
		s := cl.Metrics.Snapshot()
		var lane *Lane
		for _, w := range s.Waves {
			for i := range w {
				if w[i].Target == "p2" {
					lane = &w[i]
				}
			}
		}
		if lane == nil || lane.Peer != "r2" || lane.Retries != 1 {
			t.Fatalf("die-after-%d-frames: lane = %+v, want one retry won by r2", dieAfter, lane)
		}
	}
}

// TestStreamedStallSwitches: a streamed lane whose first frame never arrives
// within HedgeAfter is cancelled and re-issued to the replica.
func TestStreamedStallSwitches(t *testing.T) {
	docs := mapResolver{"d.xml": "<r><a>1</a><a>2</a></r>"}
	tr := NewInMemoryTransport()
	tr.Register("p1", &Server{Engine: eval.NewEngine(docs), ChunkItems: 1})
	tr.Register("r1", &Server{Engine: eval.NewEngine(docs), ChunkItems: 1})
	slow := &slowTransport{inner: tr, delay: map[string]time.Duration{"p1": 2 * time.Second}}
	cl := &Client{Transport: slow, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{},
		Retry: &RetryPolicy{MaxAttempts: 2, HedgeAfter: 5 * time.Millisecond}}
	eng := eval.NewEngine(nil)
	eng.Remote = &StreamedClient{Client: cl}
	eng.Replicas = map[string][]string{"p1": {"r1"}}
	t0 := time.Now()
	got := runStreamedScatter(t, eng, `
	declare function f() as item()* { doc("d.xml")/child::r/child::a };
	for $p in ("p1") return execute at {$p} { f() }`)
	if got != "<a>1</a> <a>2</a>" {
		t.Fatalf("result = %q", got)
	}
	if wall := time.Since(t0); wall > time.Second {
		t.Fatalf("query took %v — the stalled stream was not switched away from", wall)
	}
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 1 || len(s.Waves[0]) != 1 {
		t.Fatalf("waves = %+v, want one single-lane wave", s.Waves)
	}
	lane := s.Waves[0][0]
	if lane.Peer != "r1" || lane.Hedges != 1 {
		t.Errorf("lane = %+v, want stall-hedged winner r1", lane)
	}
	if slow.cancelled.Load() == 0 {
		t.Error("stalled stream attempt was never cancelled")
	}
}

// TestReplayFilterSuppressesPrefix exercises the replay arithmetic directly,
// with the replacement stream chunking its calls differently from the
// original: only the suffix beyond the failover point may reach the
// consumer, empty calls included.
func TestReplayFilterSuppressesPrefix(t *testing.T) {
	mk := func(vals ...string) xdm.Sequence {
		var s xdm.Sequence
		for _, v := range vals {
			s = append(s, xdm.NewString(v))
		}
		return s
	}
	var got []string
	deliver := func(chunk eval.StreamChunk) bool {
		got = append(got, fmt.Sprintf("%d:%s", chunk.Iteration, serialize(chunk.Items)))
		return true
	}
	p := &laneProgress{}
	// Attempt 1 delivers call 0 = [a b c] as two chunks plus the start of
	// call 1, then dies.
	f1 := replayFilter(p, deliver)
	f1(eval.StreamChunk{Iteration: 0, Items: mk("a", "b")})
	f1(eval.StreamChunk{Iteration: 0, Items: mk("c")})
	f1(eval.StreamChunk{Iteration: 1, Items: mk("d")})
	// Attempt 2 replays from the start with coarser chunks; only e (the rest
	// of call 1), the empty call 2 and call 3 are new.
	f2 := replayFilter(p, deliver)
	f2(eval.StreamChunk{Iteration: 0, Items: mk("a", "b", "c")})
	f2(eval.StreamChunk{Iteration: 1, Items: mk("d", "e")})
	f2(eval.StreamChunk{Iteration: 2, Items: nil})
	f2(eval.StreamChunk{Iteration: 3, Items: mk("f")})
	want := []string{"0:a b", "0:c", "1:d", "1:e", "2:", "3:f"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}
