package xrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Lane is one peer's request/response exchange within a dispatch wave. The
// network cost model charges overlapped lanes the per-wave maximum instead
// of the serial sum.
type Lane struct {
	Peer          string
	BytesSent     int64
	BytesReceived int64
	RemoteExecNS  int64
	// DeserNS is the client-side time spent shredding this lane's response
	// (the per-lane share of Metrics.DeserializeNS).
	DeserNS int64
	// Chunks, when non-empty, records the streamed arrival of the response
	// frame by frame; gather-whole exchanges leave it nil.
	Chunks []ChunkStat
	// Fault-tolerance provenance, filled by replica-aware dispatch under a
	// RetryPolicy; zero values mean the first attempt on the primary target
	// answered. Peer above is always the peer that produced the winning
	// response; Target is the lane's original scatter target when the two
	// can differ (replica dispatch).
	Target string
	// Replica is the index of the winning peer in the lane's target
	// rotation (0 = the primary).
	Replica int
	// Retries counts fault-triggered re-issues of the exchange.
	Retries int
	// Hedges counts hedge-timer-triggered speculative attempts.
	Hedges int
	// WastedNS is the wall time burned in attempts that did not win.
	WastedNS int64
}

// Metrics accumulates per-exchange measurements used by the benchmark
// harness to reproduce the paper's bandwidth and time-breakdown figures.
type Metrics struct {
	mu            sync.Mutex
	Requests      int64
	BytesSent     int64
	BytesReceived int64
	SerializeNS   int64 // client-side marshal time
	DeserializeNS int64 // client-side shred time
	RemoteExecNS  int64 // as reported by the server
	ServerSerdeNS int64 // server-side (de)serialization, as reported
	RoundTripWall int64 // wall time of Transport.RoundTrip
	// PeakBufferedItems is the high-water mark of result items buffered at
	// once on a server while producing responses — one frame's worth under
	// incremental streaming, the whole result under gather or eager
	// streaming. Unlike the counters it combines by maximum, being a peak.
	PeakBufferedItems int64
	// Waves records the dispatch structure for overlap-aware network
	// accounting: each entry is one wave of exchanges that were in flight
	// together. A sequential call appends a single-lane wave; a scatter
	// dispatch appends one wave with a lane per destination peer.
	Waves [][]Lane
}

// Add accumulates another metrics snapshot. The source is snapshotted under
// its own lock first — most callers pass fresh locals, but nothing stops a
// shared accumulator from being added into another while it is still being
// written (the session-aggregate path does exactly that), and reading its
// fields bare would tear under the race detector.
func (m *Metrics) Add(o *Metrics) {
	if m == nil || o == nil || m == o {
		return
	}
	snap := o.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Requests += snap.Requests
	m.BytesSent += snap.BytesSent
	m.BytesReceived += snap.BytesReceived
	m.SerializeNS += snap.SerializeNS
	m.DeserializeNS += snap.DeserializeNS
	m.RemoteExecNS += snap.RemoteExecNS
	m.ServerSerdeNS += snap.ServerSerdeNS
	m.RoundTripWall += snap.RoundTripWall
	if snap.PeakBufferedItems > m.PeakBufferedItems {
		m.PeakBufferedItems = snap.PeakBufferedItems
	}
	// Snapshot already deep-copied the waves.
	m.Waves = append(m.Waves, snap.Waves...)
}

// AddWave records one dispatch wave of overlapped exchanges.
func (m *Metrics) AddWave(lanes []Lane) {
	if m == nil || len(lanes) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Waves = append(m.Waves, append([]Lane(nil), lanes...))
}

// Reset zeroes the counters. It must not replace the struct wholesale: that
// would clobber the held mutex and panic the deferred unlock.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Requests = 0
	m.BytesSent = 0
	m.BytesReceived = 0
	m.SerializeNS = 0
	m.DeserializeNS = 0
	m.RemoteExecNS = 0
	m.ServerSerdeNS = 0
	m.RoundTripWall = 0
	m.PeakBufferedItems = 0
	m.Waves = nil
}

// Snapshot returns a copy for reading.
func (m *Metrics) Snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	waves := make([][]Lane, 0, len(m.Waves))
	for _, w := range m.Waves {
		waves = append(waves, append([]Lane(nil), w...))
	}
	return Metrics{
		Requests: m.Requests, BytesSent: m.BytesSent, BytesReceived: m.BytesReceived,
		SerializeNS: m.SerializeNS, DeserializeNS: m.DeserializeNS,
		RemoteExecNS: m.RemoteExecNS, ServerSerdeNS: m.ServerSerdeNS,
		RoundTripWall: m.RoundTripWall, PeakBufferedItems: m.PeakBufferedItems,
		Waves: waves,
	}
}

var clientFuncSeq atomic.Uint64

// DefaultMaxConcurrent bounds the per-wave worker pool of scatter-gather
// dispatch when Client.MaxConcurrent is zero.
const DefaultMaxConcurrent = 8

// Client executes XRPCExprs remotely over a Transport. It implements
// eval.RemoteCaller, including Bulk RPC and concurrent scatter-gather
// dispatch (eval.ScatterCaller). A Client is safe for concurrent use when
// its Transport is.
type Client struct {
	Transport Transport
	Semantics Semantics
	Static    eval.StaticContext
	// Relatives carries the §VI-B relative projection paths per decomposed
	// XRPCExpr; the planner fills it for pass-by-projection.
	Relatives map[*xq.XRPCExpr]projection.RelativePaths
	// ProjOpts tunes message projection (schema-aware knobs).
	ProjOpts projection.Options
	// Metrics, when non-nil, accumulates exchange measurements.
	Metrics *Metrics
	// MaxConcurrent bounds the number of in-flight per-peer Bulk RPCs of one
	// scatter wave; zero means DefaultMaxConcurrent.
	MaxConcurrent int
	// Context, when non-nil, is the base context of every dispatch:
	// cancelling it aborts in-flight exchanges (through a ContextTransport
	// or StreamTransport) and releases queued pool workers.
	Context context.Context
	// Retry, when non-nil, makes per-lane dispatch fault-tolerant: a failed
	// exchange is re-issued to the lane's next replica (ScatterBatch.Replicas)
	// and a slow one is hedged after Retry.HedgeAfter. A nil policy with
	// replicas present still fails over on faults (see RetryPolicy).
	Retry *RetryPolicy
	// Health, when non-nil, observes every exchange's latency and faults and
	// makes hedging adaptive: once a peer has enough fresh samples, the hedge
	// trigger is its observed P90 instead of the static Retry.HedgeAfter, and
	// replica spreading (Retry.SpreadReplicas) ranks lanes' initial targets
	// by health instead of blind rotation.
	Health *HealthTracker
	// Reroute, when non-nil, is the epoch-aware re-dispatch hook: given a
	// lane's plan-time target it returns the current rotation (live primary
	// first, then replicas) of the shard that target owned at plan time, or
	// nil when the topology has not moved past the plan's epoch. Dispatch
	// consults it after a genuine fault and extends the lane's rotation with
	// the unseen peers, so a lane whose primary departed mid-query follows
	// its shard to the new layout instead of exhausting retries against a
	// corpse. Sessions over a live topology install it (peer.Network).
	Reroute func(target string) []string
	// Trace, when active, is the span every dispatch records under: scatter
	// spans, per-lane spans, and per-attempt spans (winner/loser tagged) hang
	// off it, attempt identity travels on the wire, and remote server-side
	// spans are grafted back in. The zero value disables tracing at the cost
	// of a nil check per span site.
	Trace trace.SpanRef

	// laneSeq numbers dispatched lanes for replica-spread rotation.
	laneSeq atomic.Uint64
}

// observe feeds the health tracker one exchange outcome. Cancellation and
// deadline teardowns are not the peer's fault and are dropped — only a
// genuine failure extends a fault streak.
func (c *Client) observe(peer string, wallNS int64, err error) {
	if c.Health == nil {
		return
	}
	if err == nil {
		c.Health.Observe(peer, time.Duration(wallNS))
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrDeadlineExceeded) {
		return
	}
	c.Health.ObserveFault(peer)
}

// hedgeDelay resolves the hedge trigger for an attempt to peer: the health
// tracker's observed P90 when it has enough fresh samples, else the static
// policy value.
func (c *Client) hedgeDelay(peer string) time.Duration {
	if c.Health != nil {
		if d, ok := c.Health.HedgeAfter(peer); ok {
			return d
		}
	}
	return c.Retry.hedgeAfter()
}

// baseContext returns the dispatch base context.
func (c *Client) baseContext() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

var _ eval.RemoteCaller = (*Client)(nil)
var _ eval.ScatterCaller = (*Client)(nil)

// CallRemote implements eval.RemoteCaller for a single call.
func (c *Client) CallRemote(target string, x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error) {
	results, err := c.CallRemoteBulk(target, x, [][]xdm.Sequence{params})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// laneSpan opens the span one scatter lane records under.
func laneSpan(parent trace.SpanRef, target string) trace.SpanRef {
	return parent.Child("lane", trace.Str("target", target))
}

// finishLane closes a lane span with its fault-tolerance provenance: the
// winning peer and replica index, retry/hedge counts, and the wall time
// burned by losing attempts.
func finishLane(sp trace.SpanRef, lane Lane, err error) {
	if !sp.Active() {
		return
	}
	if err == nil {
		sp.Set(trace.Str("winner-peer", lane.Peer),
			trace.Int("replica", int64(lane.Replica)),
			trace.Int("retries", int64(lane.Retries)),
			trace.Int("hedges", int64(lane.Hedges)),
			trace.Int("wasted_ns", lane.WastedNS))
	}
	sp.EndErr(err)
}

// CallRemoteBulk implements Bulk RPC: all iterations travel in one message.
// Under a RetryPolicy with MaxAttempts > 1 a failed exchange is re-issued to
// the same target (sequential dispatch carries no replica set — scatter
// batches do).
func (c *Client) CallRemoteBulk(target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence) ([]xdm.Sequence, error) {
	lsp := laneSpan(c.Trace, target)
	results, lane, err := c.callLane(c.baseContext(), x, eval.ScatterBatch{Target: target, Iterations: iterations}, lsp)
	finishLane(lsp, lane, err)
	if err != nil {
		return nil, err
	}
	c.Metrics.AddWave([]Lane{lane})
	return results, nil
}

// CallRemoteScatter implements eval.ScatterCaller: one Bulk RPC per batch,
// dispatched concurrently through a bounded worker pool. Results and errors
// are positional per batch; the successful exchanges are recorded as one
// metrics wave so the cost model charges their transfers as overlapped.
//
// The first lane to fail cancels the dispatch context: exchanges in flight
// over a cancellation-aware Transport (ContextTransport — e.g. HTTP) are
// torn down instead of dragging out a query that is going to fail anyway,
// and external cancellation (Client.Context) additionally stops queued
// lanes before they dispatch. Transports without cancellation support (the
// synchronous in-memory one) run every lane to completion, preserving
// deterministic per-lane outcomes and metrics. Lanes killed by
// cancellation report context.Canceled — the evaluator reports the genuine
// failure, never the echo.
//
// Under a RetryPolicy (or when a batch carries Replicas) each lane is
// dispatched through the fault-tolerant runner: a lane only fails — and
// only then cancels the wave — once its retry/hedge attempts are exhausted,
// and the error it reports is the original fault of its earliest failed
// attempt, never a cancellation echo of the loser of a hedge race.
func (c *Client) CallRemoteScatter(x *xq.XRPCExpr, batches []eval.ScatterBatch) ([][]xdm.Sequence, []error) {
	results := make([][]xdm.Sequence, len(batches))
	errs := make([]error, len(batches))
	lanes := make([]Lane, len(batches))
	width := c.MaxConcurrent
	if width <= 0 {
		width = DefaultMaxConcurrent
	}
	base := c.baseContext()
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	ssp := c.Trace.Child("scatter", trace.Int("lanes", int64(len(batches))))
	defer ssp.End()
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := base.Err(); err != nil {
				// The lane never dispatched; when the budget (not a peer
				// fault elsewhere) killed the wave, say so in type.
				errs[i] = budgetFailure(base, err, batches[i].Target, time.Now())
				return
			}
			lsp := laneSpan(ssp, batches[i].Target)
			results[i], lanes[i], errs[i] = c.callLane(ctx, x, batches[i], lsp)
			finishLane(lsp, lanes[i], errs[i])
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	var ok []Lane
	for i := range lanes {
		if errs[i] == nil {
			ok = append(ok, lanes[i])
		}
	}
	// Record the dispatch as waves no wider than the worker pool: with more
	// batches than workers only `width` exchanges are ever in flight
	// together, and the overlap model must not pretend otherwise.
	for len(ok) > 0 {
		n := width
		if n > len(ok) {
			n = len(ok)
		}
		c.Metrics.AddWave(ok[:n])
		ok = ok[n:]
	}
	return results, errs
}

// marshalCall builds and serializes the request message of one Bulk RPC.
// When ctx carries a deadline, the remaining budget is stamped into the
// request (relative nanoseconds, see Request.BudgetNS); an already-spent
// budget fails the attempt before any bytes move. sp, when active, stamps
// the attempt's trace identity into the request so the server records and
// returns its own spans.
func (c *Client) marshalCall(ctx context.Context, target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence, sp trace.SpanRef) (data []byte, serNS int64, err error) {
	if containsRemote(x.Body) {
		return nil, 0, fmt.Errorf("xrpc: shipped function body contains a nested execute-at; " +
			"the decomposer never generates these (fcn0 stays local)")
	}
	name := x.FuncName
	if name == "" {
		name = fmt.Sprintf("xrpcgen:f%d", clientFuncSeq.Add(1))
	}
	req := &Request{
		Method:    name,
		Arity:     len(x.Params),
		Semantics: c.Semantics,
		Module:    shipModule(x, name),
		Static:    c.Static,
		Calls:     iterations,
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, 0, &DeadlineError{Peer: target}
		}
		req.BudgetNS = remaining.Nanoseconds()
	}
	if sp.Active() {
		req.TraceID = uint64(sp.TraceID())
		req.TraceSpan = uint64(sp.SpanID())
	}
	var paramU, paramR []projection.PathSet
	if c.Semantics == ByProjection {
		rel, ok := c.Relatives[x]
		if ok {
			paramU, paramR = rel.ParamUsed, rel.ParamReturned
			req.ResultUsed = rel.ResultUsed
			req.ResultReturned = rel.ResultReturn
		} else {
			// Without an analysis the safe fallback keeps parameter values
			// whole (self is returned) and the response unprojected.
			for range x.Params {
				paramU = append(paramU, nil)
				paramR = append(paramR, nil)
			}
			req.ResultReturned = projection.PathSet{}.Add(projection.Path{})
		}
	}
	t0 := time.Now()
	data, err = MarshalRequest(req, paramU, paramR, c.ProjOpts)
	if err != nil {
		return nil, 0, err
	}
	return data, time.Since(t0).Nanoseconds(), nil
}

// roundTrip performs a gather-whole exchange, honoring ctx through a
// ContextTransport when the transport provides one. A plain Transport
// ignores cancellation: its exchanges cannot block on a network, so
// letting them finish keeps per-lane outcomes deterministic.
func roundTrip(ctx context.Context, t Transport, peer string, request []byte) ([]byte, error) {
	if ct, ok := t.(ContextTransport); ok {
		return ct.RoundTripContext(ctx, peer, request)
	}
	return t.RoundTrip(peer, request)
}

func (c *Client) callBulkCtx(ctx context.Context, target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence, sp trace.SpanRef) ([]xdm.Sequence, Lane, error) {
	data, serNS, err := c.marshalCall(ctx, target, x, iterations, sp)
	if err != nil {
		return nil, Lane{}, err
	}
	if sp.Active() {
		ctx = withTraceInfo(ctx, uint64(sp.TraceID()), uint64(sp.SpanID()))
	}
	t1 := time.Now()
	respData, err := roundTrip(ctx, c.Transport, target, data)
	wallNS := time.Since(t1).Nanoseconds()
	if err != nil {
		c.observe(target, wallNS, err)
		return nil, Lane{}, err
	}
	t2 := time.Now()
	resp, err := ParseResponse(respData)
	if err != nil {
		// A faulting server still reports the spans of the work it did before
		// failing; graft them in so failed attempts have server-side detail.
		var f *Fault
		if errors.As(err, &f) && len(f.Spans) > 0 {
			sp.IngestRemote(f.Spans)
		}
		c.observe(target, wallNS, err)
		return nil, Lane{}, err
	}
	c.observe(target, wallNS, nil)
	sp.IngestRemote(resp.Spans)
	deserNS := time.Since(t2).Nanoseconds()
	if len(resp.Results) != len(iterations) {
		return nil, Lane{}, fmt.Errorf("xrpc: response carries %d results for %d calls",
			len(resp.Results), len(iterations))
	}
	lane := Lane{
		Peer:          target,
		BytesSent:     int64(len(data)),
		BytesReceived: int64(len(respData)),
		RemoteExecNS:  resp.ExecNanos,
		DeserNS:       deserNS,
	}
	if c.Metrics != nil {
		c.Metrics.Add(&Metrics{
			Requests:      1,
			BytesSent:     int64(len(data)),
			BytesReceived: int64(len(respData)),
			SerializeNS:   serNS,
			DeserializeNS: deserNS,
			RemoteExecNS:  resp.ExecNanos,
			ServerSerdeNS: resp.SerializeNanos,
			RoundTripWall: wallNS,
		})
	}
	return resp.Results, lane, nil
}

// shipModule renders the self-contained function declaration shipped in the
// request's module element.
func shipModule(x *xq.XRPCExpr, name string) string {
	f := &xq.FuncDecl{Name: name, Return: xq.AnyItems, Body: x.Body}
	for i, par := range x.Params {
		typ := xq.AnyItems
		if i < len(x.Types) {
			typ = x.Types[i]
		}
		f.Params = append(f.Params, xq.Param{Name: par.Name, Type: typ})
	}
	return xq.PrintFuncDecl(f)
}

func containsRemote(e xq.Expr) bool {
	found := false
	xq.Walk(e, func(sub xq.Expr) bool {
		switch sub.(type) {
		case *xq.XRPCExpr, *xq.ExecuteAt:
			found = true
			return false
		}
		return true
	})
	return found
}
