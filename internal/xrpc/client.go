package xrpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Metrics accumulates per-exchange measurements used by the benchmark
// harness to reproduce the paper's bandwidth and time-breakdown figures.
type Metrics struct {
	mu            sync.Mutex
	Requests      int64
	BytesSent     int64
	BytesReceived int64
	SerializeNS   int64 // client-side marshal time
	DeserializeNS int64 // client-side shred time
	RemoteExecNS  int64 // as reported by the server
	ServerSerdeNS int64 // server-side (de)serialization, as reported
	RoundTripWall int64 // wall time of Transport.RoundTrip
}

// Add accumulates another metrics snapshot.
func (m *Metrics) Add(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Requests += o.Requests
	m.BytesSent += o.BytesSent
	m.BytesReceived += o.BytesReceived
	m.SerializeNS += o.SerializeNS
	m.DeserializeNS += o.DeserializeNS
	m.RemoteExecNS += o.RemoteExecNS
	m.ServerSerdeNS += o.ServerSerdeNS
	m.RoundTripWall += o.RoundTripWall
}

// Reset zeroes the metrics.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	*m = Metrics{}
}

// Snapshot returns a copy for reading.
func (m *Metrics) Snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Requests: m.Requests, BytesSent: m.BytesSent, BytesReceived: m.BytesReceived,
		SerializeNS: m.SerializeNS, DeserializeNS: m.DeserializeNS,
		RemoteExecNS: m.RemoteExecNS, ServerSerdeNS: m.ServerSerdeNS,
		RoundTripWall: m.RoundTripWall,
	}
}

var clientFuncSeq atomic.Uint64

// Client executes XRPCExprs remotely over a Transport. It implements
// eval.RemoteCaller, including Bulk RPC.
type Client struct {
	Transport Transport
	Semantics Semantics
	Static    eval.StaticContext
	// Relatives carries the §VI-B relative projection paths per decomposed
	// XRPCExpr; the planner fills it for pass-by-projection.
	Relatives map[*xq.XRPCExpr]projection.RelativePaths
	// ProjOpts tunes message projection (schema-aware knobs).
	ProjOpts projection.Options
	// Metrics, when non-nil, accumulates exchange measurements.
	Metrics *Metrics
}

var _ eval.RemoteCaller = (*Client)(nil)

// CallRemote implements eval.RemoteCaller for a single call.
func (c *Client) CallRemote(target string, x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error) {
	results, err := c.CallRemoteBulk(target, x, [][]xdm.Sequence{params})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// CallRemoteBulk implements Bulk RPC: all iterations travel in one message.
func (c *Client) CallRemoteBulk(target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence) ([]xdm.Sequence, error) {
	if containsRemote(x.Body) {
		return nil, fmt.Errorf("xrpc: shipped function body contains a nested execute-at; " +
			"the decomposer never generates these (fcn0 stays local)")
	}
	name := x.FuncName
	if name == "" {
		name = fmt.Sprintf("xrpcgen:f%d", clientFuncSeq.Add(1))
	}
	req := &Request{
		Method:    name,
		Arity:     len(x.Params),
		Semantics: c.Semantics,
		Module:    shipModule(x, name),
		Static:    c.Static,
		Calls:     iterations,
	}
	var paramU, paramR []projection.PathSet
	if c.Semantics == ByProjection {
		rel, ok := c.Relatives[x]
		if ok {
			paramU, paramR = rel.ParamUsed, rel.ParamReturned
			req.ResultUsed = rel.ResultUsed
			req.ResultReturned = rel.ResultReturn
		} else {
			// Without an analysis the safe fallback keeps parameter values
			// whole (self is returned) and the response unprojected.
			for range x.Params {
				paramU = append(paramU, nil)
				paramR = append(paramR, nil)
			}
			req.ResultReturned = projection.PathSet{}.Add(projection.Path{})
		}
	}
	t0 := time.Now()
	data, err := MarshalRequest(req, paramU, paramR, c.ProjOpts)
	if err != nil {
		return nil, err
	}
	serNS := time.Since(t0).Nanoseconds()
	t1 := time.Now()
	respData, err := c.Transport.RoundTrip(target, data)
	wallNS := time.Since(t1).Nanoseconds()
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	resp, err := ParseResponse(respData)
	if err != nil {
		return nil, err
	}
	deserNS := time.Since(t2).Nanoseconds()
	if len(resp.Results) != len(iterations) {
		return nil, fmt.Errorf("xrpc: response carries %d results for %d calls",
			len(resp.Results), len(iterations))
	}
	if c.Metrics != nil {
		c.Metrics.Add(&Metrics{
			Requests:      1,
			BytesSent:     int64(len(data)),
			BytesReceived: int64(len(respData)),
			SerializeNS:   serNS,
			DeserializeNS: deserNS,
			RemoteExecNS:  resp.ExecNanos,
			ServerSerdeNS: resp.SerializeNanos,
			RoundTripWall: wallNS,
		})
	}
	return resp.Results, nil
}

// shipModule renders the self-contained function declaration shipped in the
// request's module element.
func shipModule(x *xq.XRPCExpr, name string) string {
	f := &xq.FuncDecl{Name: name, Return: xq.AnyItems, Body: x.Body}
	for i, par := range x.Params {
		typ := xq.AnyItems
		if i < len(x.Types) {
			typ = x.Types[i]
		}
		f.Params = append(f.Params, xq.Param{Name: par.Name, Type: typ})
	}
	return xq.PrintFuncDecl(f)
}

func containsRemote(e xq.Expr) bool {
	found := false
	xq.Walk(e, func(sub xq.Expr) bool {
		switch sub.(type) {
		case *xq.XRPCExpr, *xq.ExecuteAt:
			found = true
			return false
		}
		return true
	})
	return found
}
