package xrpc

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Transport moves a serialized request to a peer and returns the serialized
// response. Implementations must be safe for concurrent use.
type Transport interface {
	RoundTrip(peer string, request []byte) (response []byte, err error)
}

// Handler processes one raw XRPC request (the server side of a Transport).
type Handler interface {
	Handle(request []byte) (response []byte, err error)
}

// InMemoryTransport connects peers within one process; the benchmark harness
// uses it together with the netsim cost model to reproduce the paper's
// testbed deterministically.
type InMemoryTransport struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewInMemoryTransport returns an empty in-process peer network.
func NewInMemoryTransport() *InMemoryTransport {
	return &InMemoryTransport{handlers: map[string]Handler{}}
}

// Register installs the handler serving a peer name.
func (t *InMemoryTransport) Register(peer string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[peer] = h
}

// RoundTrip implements Transport. Handler failures travel back as SOAP
// fault messages — exactly what an HTTP peer produces — so callers observe
// the same *Fault through every transport (ParseResponse surfaces it). Only
// an unknown peer is a transport-level error, the in-memory equivalent of a
// connection failure.
func (t *InMemoryTransport) RoundTrip(peer string, request []byte) ([]byte, error) {
	t.mu.RLock()
	h, ok := t.handlers[peer]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("xrpc: unknown peer %q", peer)
	}
	resp, err := h.Handle(request)
	if err != nil {
		return MarshalFault(err), nil
	}
	return resp, nil
}

// HTTPTransport performs XRPC over HTTP POST, the wire protocol of the
// paper (SOAP request messages sent as synchronous HTTP POST requests).
type HTTPTransport struct {
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// URLFor maps a peer name to an endpoint URL. The default prepends
	// http:// and appends /xrpc.
	URLFor func(peer string) string
}

// RoundTrip implements Transport.
func (t *HTTPTransport) RoundTrip(peer string, request []byte) ([]byte, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	urlFor := t.URLFor
	if urlFor == nil {
		urlFor = func(p string) string { return "http://" + p + "/xrpc" }
	}
	resp, err := client.Post(urlFor(peer), "application/soap+xml", bytes.NewReader(request))
	if err != nil {
		return nil, fmt.Errorf("xrpc: POST to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("xrpc: reading response from %s: %w", peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("xrpc: peer %s returned HTTP %d: %s", peer, resp.StatusCode, truncate(body))
	}
	return body, nil
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// NewHTTPHandler adapts a Handler into an http.Handler serving POST /xrpc.
func NewHTTPHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "xrpc requires POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := h.Handle(body)
		if err != nil {
			w.Header().Set("Content-Type", "application/soap+xml")
			w.WriteHeader(http.StatusOK) // faults travel as SOAP messages
			_, _ = w.Write(MarshalFault(err))
			return
		}
		w.Header().Set("Content-Type", "application/soap+xml")
		_, _ = w.Write(resp)
	})
}
