package xrpc

import (
	"context"
	"fmt"
	"sync"
)

// Transport moves a serialized request to a peer and returns the serialized
// response. Implementations must be safe for concurrent use.
type Transport interface {
	RoundTrip(peer string, request []byte) (response []byte, err error)
}

// ContextTransport is an optional Transport extension that honors
// cancellation: an aborted dispatch tears down the in-flight exchange
// instead of waiting it out.
type ContextTransport interface {
	RoundTripContext(ctx context.Context, peer string, request []byte) ([]byte, error)
}

// Handler processes one raw XRPC request (the server side of a Transport).
type Handler interface {
	Handle(request []byte) (response []byte, err error)
}

// InMemoryTransport connects peers within one process; the benchmark harness
// uses it together with the netsim cost model to reproduce the paper's
// testbed deterministically.
type InMemoryTransport struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewInMemoryTransport returns an empty in-process peer network.
func NewInMemoryTransport() *InMemoryTransport {
	return &InMemoryTransport{handlers: map[string]Handler{}}
}

// Register installs the handler serving a peer name.
func (t *InMemoryTransport) Register(peer string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[peer] = h
}

// Deregister removes a peer's handler: subsequent exchanges naming the peer
// fail with the unknown-peer transport error — the in-memory equivalent of
// a dead host refusing connections. Fault-injection harnesses use it to
// kill a peer; Register revives it.
func (t *InMemoryTransport) Deregister(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, peer)
}

func (t *InMemoryTransport) handler(peer string) (Handler, error) {
	t.mu.RLock()
	h, ok := t.handlers[peer]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("xrpc: unknown peer %q", peer)
	}
	return h, nil
}

// RoundTrip implements Transport. Handler failures travel back as SOAP
// fault messages — exactly what an HTTP peer produces — so callers observe
// the same *Fault through every transport (ParseResponse surfaces it). Only
// an unknown peer is a transport-level error, the in-memory equivalent of a
// connection failure.
func (t *InMemoryTransport) RoundTrip(peer string, request []byte) ([]byte, error) {
	h, err := t.handler(peer)
	if err != nil {
		return nil, err
	}
	resp, err := h.Handle(request)
	if err != nil {
		return MarshalFault(err), nil
	}
	return resp, nil
}

// RoundTripStream implements StreamTransport. A handler that streams
// (StreamHandler) has its frames passed straight through to sink, with a
// cancellation check between frames so an abandoned consumer stops a long
// in-process stream; a gather-only handler's whole response is delivered as
// a single frame, which the streaming client detects and degrades to one
// increment per call. Handler errors travel to sink as a fault frame, for
// parity with RoundTrip.
func (t *InMemoryTransport) RoundTripStream(ctx context.Context, peer string, request []byte, sink func(frame []byte) error) error {
	h, err := t.handler(peer)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sh, streams := h.(StreamHandler)
	if !streams {
		resp, err := h.Handle(request)
		if err != nil {
			resp = MarshalFault(err)
		}
		return sink(resp)
	}
	sinkFailed := false
	err = sh.HandleStream(request, func(frame []byte) error {
		if cerr := ctx.Err(); cerr != nil {
			sinkFailed = true
			return cerr
		}
		if serr := sink(frame); serr != nil {
			sinkFailed = true
			return serr
		}
		return nil
	})
	if err != nil {
		if sinkFailed {
			return err
		}
		// The peer failed mid-stream: the error travels as a terminal fault
		// frame, like a Handler error travels as a fault message.
		return sink(MarshalFault(err))
	}
	return nil
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}
