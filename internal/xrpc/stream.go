package xrpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// This file implements streaming XRPC: instead of one gather-whole response
// message, a peer's Bulk-RPC results travel as an ordered sequence of
// self-contained chunk frames. Each frame is a complete SOAP envelope
// (decodable on its own with xdm.ParseBytes) carrying a run of consecutive
// result items of one call, its own fragments preamble, a sequence number,
// and per-chunk timing; a terminal frame closes the stream. The originator
// starts processing the first chunk while the peer is still evaluating and
// serializing the rest — first-result latency drops from "slowest peer's
// whole response" to "first chunk of the fastest lane".

// DefaultChunkItems is the per-chunk item budget of a streaming server when
// Server.ChunkItems is zero. The value trades pipelining granularity
// against framing overhead: each frame repeats the envelope and pays its
// own parse, so chunks must be big enough that decoding streams behind the
// transfer instead of dominating it, and small enough that a lane still
// spans several frames.
const DefaultChunkItems = 32

// DefaultBufferChunks bounds each lane's decoded-chunk buffer on the
// originator when StreamedClient.BufferChunks is zero. The bound is the
// backpressure mechanism: once a lane's buffer is full the producer blocks
// (in-memory) or stops reading the connection (HTTP), so originator peak
// buffering is limited by chunks in flight, not by total result size.
const DefaultBufferChunks = 4

// StreamTransport is an optional Transport extension: the response arrives
// as an ordered sequence of frames delivered to sink as they become
// available instead of one buffered message. A sink error aborts the
// exchange and is returned; ctx cancels the in-flight exchange.
type StreamTransport interface {
	RoundTripStream(ctx context.Context, peer string, request []byte, sink func(frame []byte) error) error
}

// StreamHandler is an optional Handler extension — the server side of a
// StreamTransport. Implementations emit response chunk frames in order; an
// error returned after partial emission is delivered to the caller by the
// transport (as a fault frame), exactly like a Handler error.
type StreamHandler interface {
	HandleStream(request []byte, emit func(frame []byte) error) error
}

// ResponseChunk is the logical content of one stream frame.
type ResponseChunk struct {
	// Seq numbers frames consecutively from 0 within one stream.
	Seq int
	// Last marks the terminal frame: no results, only the total call count
	// (for completeness validation) and the server's request-shred time.
	Last  bool
	Calls int
	// Call / FirstItem locate the run: the 0-based call index and the offset
	// of Items[0] within that call's full result sequence.
	Call      int
	FirstItem int
	Items     xdm.Sequence
	Semantics Semantics
	// ExecNanos reports the call's evaluation time on the first chunk of
	// each call (zero on continuation chunks).
	ExecNanos int64
	// SerializeNanos reports this chunk's marshal time (terminal frame: the
	// request shred time, so client-side serde totals match gather-whole).
	SerializeNanos int64
	// Spans piggybacks the server-side span tree on the terminal frame of a
	// traced stream — the streamed analogue of Response.Spans.
	Spans []trace.Span
}

// MarshalResponseChunk serializes one chunk frame. Pass-by-projection
// result paths apply per chunk, exactly as MarshalResponse applies them to
// whole results.
func MarshalResponseChunk(ch *ResponseChunk, resultUsed, resultReturned projection.PathSet, opts projection.Options) ([]byte, error) {
	var sb strings.Builder
	sb.WriteString(envelopeOpen)
	fmt.Fprintf(&sb, "<%s>", elBody)
	if ch.Last {
		if len(ch.Spans) > 0 {
			fmt.Fprintf(&sb, `<%s seq="%d" last="true" calls="%d" serde-ns="%d">`,
				elChunk, ch.Seq, ch.Calls, ch.SerializeNanos)
			writeTraceEl(&sb, ch.Spans)
			fmt.Fprintf(&sb, "</%s>", elChunk)
		} else {
			// Untraced terminal frames keep the pre-trace self-closing form,
			// byte-identical for old goldens and parsers.
			fmt.Fprintf(&sb, `<%s seq="%d" last="true" calls="%d" serde-ns="%d"/>`,
				elChunk, ch.Seq, ch.Calls, ch.SerializeNanos)
		}
	} else {
		st := &encodeState{
			sem:           ch.Semantics,
			paramUsed:     []projection.PathSet{resultUsed},
			paramReturned: []projection.PathSet{resultReturned},
			projOpts:      opts,
		}
		if err := st.buildFragments([]xdm.Sequence{ch.Items}, nil); err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, `<%s seq="%d" call="%d" first-item="%d" semantics="%s" exec-ns="%d" serde-ns="%d">`,
			elChunk, ch.Seq, ch.Call, ch.FirstItem, ch.Semantics, ch.ExecNanos, ch.SerializeNanos)
		st.writeFragments(&sb)
		if err := st.writeSequence(&sb, ch.Items); err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "</%s>", elChunk)
	}
	fmt.Fprintf(&sb, "</%s></env:Envelope>", elBody)
	return []byte(sb.String()), nil
}

// ParseResponseChunk shreds one stream frame. A fault frame surfaces as a
// *Fault error, like ParseResponse.
func ParseResponseChunk(data []byte) (*ResponseChunk, error) {
	doc, err := xdm.ParseBytes(data, "xrpc:chunk")
	if err != nil {
		return nil, fmt.Errorf("xrpc: malformed chunk frame: %w", err)
	}
	el, err := messagePayload(doc, elChunk)
	if err != nil {
		return nil, err
	}
	ch := &ResponseChunk{}
	ch.Seq, err = strconv.Atoi(attrOr(el, "seq", ""))
	if err != nil {
		return nil, fmt.Errorf("xrpc: chunk frame without seq")
	}
	ch.SerializeNanos, _ = strconv.ParseInt(attrOr(el, "serde-ns", "0"), 10, 64)
	if attrOr(el, "last", "") == "true" {
		ch.Last = true
		ch.Calls, err = strconv.Atoi(attrOr(el, "calls", ""))
		if err != nil {
			return nil, fmt.Errorf("xrpc: terminal frame without calls count")
		}
		ch.Spans = parseTraceEl(el)
		return ch, nil
	}
	ch.Semantics, err = ParseSemantics(attrOr(el, "semantics", "by-value"))
	if err != nil {
		return nil, err
	}
	if ch.Call, err = strconv.Atoi(attrOr(el, "call", "")); err != nil {
		return nil, fmt.Errorf("xrpc: chunk frame without call index")
	}
	if ch.FirstItem, err = strconv.Atoi(attrOr(el, "first-item", "")); err != nil {
		return nil, fmt.Errorf("xrpc: chunk frame without first-item")
	}
	ch.ExecNanos, _ = strconv.ParseInt(attrOr(el, "exec-ns", "0"), 10, 64)
	st, err := decodeFragments(findChild(el, elFragments))
	if err != nil {
		return nil, err
	}
	seqEl := findChild(el, elSequence)
	if seqEl == nil {
		return nil, fmt.Errorf("xrpc: chunk frame without sequence")
	}
	ch.Items, err = st.decodeSequence(seqEl)
	if err != nil {
		return nil, err
	}
	return ch, nil
}

// patchSerdeNS rewrites the serde-ns attribute in a marshalled message: the
// value is written in the payload open tag, which precedes any payload
// bytes, so the first occurrence of the placeholder is always the attribute.
func patchSerdeNS(data []byte, old, new int64) []byte {
	return bytes.Replace(data,
		[]byte(fmt.Sprintf(`serde-ns="%d"`, old)),
		[]byte(fmt.Sprintf(`serde-ns="%d"`, new)), 1)
}

// chunkWriter emits the ordered chunk frames of one streamed response. It
// supports two producers: writeCall frames an already-materialized call
// result (the eager path), and beginCall/addItem/endCall frame a call as its
// items are pulled from a live iterator — a frame leaves the peer every
// itemsPer items, mid-evaluation, so the writer never holds more than one
// frame's worth of a result. peak records the high-water mark of buffered
// items either way; it is what the bounded-memory guarantee is measured by.
type chunkWriter struct {
	sem            Semantics
	used, returned projection.PathSet
	opts           projection.Options
	itemsPer       int
	emit           func([]byte) error
	// takeExec, when non-nil, returns (and resets) the evaluation time spent
	// since the previous frame; incremental frames carry it as their exec-ns
	// so first-result pricing reflects partial, not whole-call, evaluation.
	takeExec func() int64

	seq     int
	calls   int
	serdeNS int64
	peak    int

	// per-call incremental state
	buf       xdm.Sequence
	call      int
	firstItem int
	emitted   bool // current call has at least one frame out
}

// per returns the effective items-per-frame budget.
func (w *chunkWriter) per() int {
	if w.itemsPer > 0 {
		return w.itemsPer
	}
	return DefaultChunkItems
}

// writeCall splits one call's result into item runs of at most itemsPer and
// emits each as a frame; an empty result still emits one (empty) frame so
// the client can distinguish "empty result" from "missing call". The call's
// evaluation time is attributed to its first chunk.
func (w *chunkWriter) writeCall(call int, items xdm.Sequence, execNS int64) error {
	per := w.per()
	if len(items) > w.peak {
		w.peak = len(items) // the whole call result was materialized
	}
	first := 0
	for {
		run := items[first:min(first+per, len(items))]
		t0 := time.Now()
		data, err := MarshalResponseChunk(&ResponseChunk{
			Seq: w.seq, Call: call, FirstItem: first,
			Items: run, Semantics: w.sem, ExecNanos: execNS,
		}, w.used, w.returned, w.opts)
		if err != nil {
			return err
		}
		ser := time.Since(t0).Nanoseconds()
		w.serdeNS += ser
		data = patchSerdeNS(data, 0, ser)
		w.seq++
		execNS = 0
		if err := w.emit(data); err != nil {
			return err
		}
		first += len(run)
		if first >= len(items) {
			break
		}
	}
	w.calls = call + 1
	return nil
}

// beginCall starts incremental emission of one call's result.
func (w *chunkWriter) beginCall(call int) {
	w.call, w.firstItem, w.emitted = call, 0, false
	w.buf = w.buf[:0]
}

// addItem buffers one item of the current call, emitting a frame the moment
// a full chunk has accumulated — while the producing evaluation is still
// running. Buffering never exceeds one frame.
func (w *chunkWriter) addItem(it xdm.Item) error {
	w.buf = append(w.buf, it)
	if len(w.buf) > w.peak {
		w.peak = len(w.buf)
	}
	if len(w.buf) >= w.per() {
		return w.flushChunk()
	}
	return nil
}

// endCall flushes the remainder of the current call. An empty result still
// emits one (empty) frame, matching writeCall, so the client can tell
// "empty call" from "missing call".
func (w *chunkWriter) endCall() error {
	if len(w.buf) > 0 || !w.emitted {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	w.calls = w.call + 1
	return nil
}

// flushChunk emits the buffered run as one frame, carrying the evaluation
// time accumulated since the previous frame.
func (w *chunkWriter) flushChunk() error {
	exec := int64(0)
	if w.takeExec != nil {
		exec = w.takeExec()
	}
	t0 := time.Now()
	data, err := MarshalResponseChunk(&ResponseChunk{
		Seq: w.seq, Call: w.call, FirstItem: w.firstItem,
		Items: w.buf, Semantics: w.sem, ExecNanos: exec,
	}, w.used, w.returned, w.opts)
	if err != nil {
		return err
	}
	ser := time.Since(t0).Nanoseconds()
	w.serdeNS += ser
	data = patchSerdeNS(data, 0, ser)
	w.seq++
	w.firstItem += len(w.buf)
	w.buf = w.buf[:0]
	w.emitted = true
	return w.emit(data)
}

// close emits the terminal frame; shredNS is the server's request-shred
// time, delivered here so the client's serde accounting matches Handle's.
// spans, when present, piggyback the server's trace tree on the frame.
func (w *chunkWriter) close(shredNS int64, spans []trace.Span) error {
	data, err := MarshalResponseChunk(&ResponseChunk{
		Seq: w.seq, Last: true, Calls: w.calls, SerializeNanos: shredNS, Spans: spans,
	}, nil, nil, w.opts)
	if err != nil {
		return err
	}
	w.seq++
	return w.emit(data)
}

// MarshalResponseStream splits an already-evaluated response into chunk
// frames (at most itemsPerChunk result items each) delivered to emit in
// order, terminal frame included. It is the gather-to-stream adaptor: the
// framing tests and non-incremental servers use it; Server.HandleStream
// instead emits each call's frames as soon as that call has evaluated.
func MarshalResponseStream(resp *Response, itemsPerChunk int, resultUsed, resultReturned projection.PathSet, opts projection.Options, emit func([]byte) error) error {
	w := &chunkWriter{
		sem: resp.Semantics, used: resultUsed, returned: resultReturned,
		opts: opts, itemsPer: itemsPerChunk, emit: emit,
	}
	for ci, res := range resp.Results {
		exec := int64(0)
		if ci == 0 {
			exec = resp.ExecNanos
		}
		if err := w.writeCall(ci, res, exec); err != nil {
			return err
		}
	}
	return w.close(resp.SerializeNanos, resp.Spans)
}

// HandleStream implements StreamHandler: each call's results leave the peer
// as chunk frames while the call is still evaluating — the server pulls the
// engine's lazy result sequence and a frame departs every ChunkItems items,
// so peak result buffering is one frame, not one call, and the first frame's
// latency is the time to the first ChunkItems items rather than the whole
// call. Evaluation errors are returned after the frames that precede them
// (those frames are a valid prefix — laziness never reorders items); the
// transport delivers them as fault frames, and failover replay suppression
// resumes past the delivered prefix as with any mid-stream fault.
// Server.EagerStream restores the evaluate-whole-call-then-frame behavior.
func (s *Server) HandleStream(request []byte, emit func([]byte) error) error {
	arrival := time.Now()
	req, q, static, shredNS, err := s.prepare(request)
	if err != nil {
		return err
	}
	root := s.serveSpan(req, arrival, "serve-stream", shredNS)
	// fail closes the server span tree and attaches it to the outgoing error,
	// so the fault frame still carries the partial server-side work — the
	// originator's failover lane ingests it even though the stream died.
	fail := func(err error) error {
		root.EndErr(err)
		return TracedError(err, root.Trace().ExportSpans())
	}
	deadline := requestDeadline(req, arrival)
	resultU, resultR := responsePaths(req)
	var bytesSent int64
	var execTotal, execSince int64
	w := &chunkWriter{
		sem: req.Semantics, used: resultU, returned: resultR,
		opts: s.ProjOpts, itemsPer: s.ChunkItems,
		emit: func(frame []byte) error {
			bytesSent += int64(len(frame))
			return emit(frame)
		},
		takeExec: func() int64 {
			e := execSince
			execSince = 0
			return e
		},
	}
	for ci, params := range req.Calls {
		csp := root.Child("call")
		if s.EagerStream {
			t0 := time.Now()
			res, err := s.Engine.EvalFunctionDeadline(q, req.Method, params, static, deadline)
			if err != nil {
				csp.EndErr(err)
				return fail(fmt.Errorf("xrpc: evaluating %s: %w", req.Method, err))
			}
			exec := time.Since(t0).Nanoseconds()
			execTotal += exec
			if err := w.writeCall(ci, res, exec); err != nil {
				csp.EndErr(err)
				return fail(err)
			}
			csp.End()
			continue
		}
		seq, err := s.Engine.EvalFunctionSeqDeadline(q, req.Method, params, static, deadline)
		if err != nil {
			csp.EndErr(err)
			return fail(fmt.Errorf("xrpc: evaluating %s: %w", req.Method, err))
		}
		w.beginCall(ci)
		// mark brackets the evaluation spans between frames: time inside the
		// producer counts as exec, time spent marshalling/emitting as serde.
		var emitErr error
		mark := time.Now()
		err = seq(func(it xdm.Item) bool {
			span := time.Since(mark).Nanoseconds()
			execSince += span
			execTotal += span
			if err := w.addItem(it); err != nil {
				emitErr = err
				return false
			}
			mark = time.Now()
			return true
		})
		tail := time.Since(mark).Nanoseconds()
		execSince += tail
		execTotal += tail
		if emitErr != nil {
			csp.EndErr(emitErr)
			return fail(emitErr)
		}
		if err != nil {
			csp.EndErr(err)
			return fail(fmt.Errorf("xrpc: evaluating %s: %w", req.Method, err))
		}
		if err := w.endCall(); err != nil {
			csp.EndErr(err)
			return fail(err)
		}
		csp.End()
	}
	// The root closes before the terminal frame so its end time travels in
	// the exported tree; the frame's own marshal cost stays in serde-ns.
	root.End()
	if err := w.close(shredNS, root.Trace().ExportSpans()); err != nil {
		return err
	}
	if s.Metrics != nil {
		s.Metrics.Add(&Metrics{
			Requests:          1,
			BytesReceived:     int64(len(request)),
			BytesSent:         bytesSent,
			RemoteExecNS:      execTotal,
			ServerSerdeNS:     shredNS + w.serdeNS,
			PeakBufferedItems: int64(w.peak),
		})
	}
	return nil
}

// ---------------------------------------------------------- client side --

// ChunkStat records one received chunk of a streamed lane, in arrival
// order: its frame size, the server-side evaluation time that preceded it,
// and the client-side decode time — the inputs of the netsim streamed-
// transfer model.
type ChunkStat struct {
	Bytes   int64
	ExecNS  int64
	DeserNS int64
}

// StreamedClient dispatches scatter waves in streaming mode: it implements
// eval.StreamCaller on top of the embedded Client, yielding per-lane result
// chunks as frames arrive instead of gathering whole responses. Lanes
// travel over StreamTransport when the Transport provides it and fall back
// to gather-whole exchanges (delivered as a single increment per iteration)
// when it does not.
type StreamedClient struct {
	*Client
	// BufferChunks bounds each lane's decoded-chunk buffer; zero means
	// DefaultBufferChunks.
	BufferChunks int
}

var _ eval.RemoteCaller = (*StreamedClient)(nil)
var _ eval.ScatterCaller = (*StreamedClient)(nil)
var _ eval.StreamCaller = (*StreamedClient)(nil)

// CallRemoteScatterStream implements eval.StreamCaller. The pool admits
// lanes strictly in batch order — lane i starts once lane i-width has
// finished — so the consumer, which drains lanes in batch order too, is
// always waiting on an admitted lane: a lane blocked on its full chunk
// buffer can never starve the one being consumed (racy slot acquisition
// deadlocked exactly that way when batches outnumbered the pool).
// Successful lanes are recorded as metrics waves no wider than the pool
// once all lanes finish. The returned cancel function aborts every
// in-flight lane (producers blocked on a full buffer included) — the
// consumer must call it.
func (c *StreamedClient) CallRemoteScatterStream(x *xq.XRPCExpr, batches []eval.ScatterBatch) ([]<-chan eval.StreamChunk, func()) {
	buf := c.BufferChunks
	if buf <= 0 {
		buf = DefaultBufferChunks
	}
	width := c.MaxConcurrent
	if width <= 0 {
		width = DefaultMaxConcurrent
	}
	ctx, cancel := context.WithCancel(c.baseContext())
	chans := make([]chan eval.StreamChunk, len(batches))
	out := make([]<-chan eval.StreamChunk, len(batches))
	done := make([]chan struct{}, len(batches))
	for i := range chans {
		chans[i] = make(chan eval.StreamChunk, buf)
		out[i] = chans[i]
		done[i] = make(chan struct{})
	}
	lanes := make([]Lane, len(batches))
	failed := make([]bool, len(batches))
	ssp := c.Trace.Child("scatter",
		trace.Int("lanes", int64(len(batches))), trace.Bool("streamed", true))
	var remaining atomic.Int64
	remaining.Store(int64(len(batches)))
	for i := range batches {
		go func(i int) {
			// Defers run in reverse order: the last lane to finish records
			// the metrics waves and closes the scatter span, then closes its
			// channel — so by the time the consumer has drained every lane,
			// the waves are visible and the span tree is complete.
			defer close(chans[i])
			defer func() {
				if remaining.Add(-1) != 0 {
					return
				}
				var ok []Lane
				for j := range lanes {
					if !failed[j] {
						ok = append(ok, lanes[j])
					}
				}
				for len(ok) > 0 {
					n := min(width, len(ok))
					c.Metrics.AddWave(ok[:n])
					ok = ok[n:]
				}
				ssp.End()
			}()
			defer close(done[i])
			if i >= width {
				select {
				case <-done[i-width]:
				case <-ctx.Done():
					failed[i] = true
					// Queued behind the pool and never dispatched: a blown
					// budget must surface in type, not as a bare ctx error.
					sendChunk(ctx, chans[i], eval.StreamChunk{
						Err: budgetFailure(ctx, ctx.Err(), batches[i].Target, time.Now())})
					return
				}
			}
			lsp := laneSpan(ssp, batches[i].Target)
			lane, err := c.runStreamLane(ctx, x, batches[i], chans[i], lsp)
			lanes[i] = lane
			finishLane(lsp, lane, err)
			if err != nil {
				failed[i] = true
				sendChunk(ctx, chans[i], eval.StreamChunk{Err: err})
			}
		}(i)
	}
	return out, cancel
}

// sendChunk delivers a chunk unless the dispatch was cancelled (then the
// consumer is gone and the chunk is dropped instead of blocking forever).
func sendChunk(ctx context.Context, ch chan<- eval.StreamChunk, chunk eval.StreamChunk) bool {
	select {
	case ch <- chunk:
		return true
	case <-ctx.Done():
		return false
	}
}

// laneState validates the frame protocol of one lane and converts frames
// into eval.StreamChunks.
type laneState struct {
	expect  int // iterations of the batch
	nextSeq int
	curCall int
	curItem int   // items delivered of curCall
	seen    bool  // curCall has appeared in at least one frame
	done    bool  // terminal frame (or gather-whole response) received
	chunks  []ChunkStat
	execNS  int64
	serdeNS int64
	deserNS int64
	recvd   int64
}

func (st *laneState) accept(ch *ResponseChunk) error {
	if st.done {
		return fmt.Errorf("xrpc: frame %d after terminal frame", ch.Seq)
	}
	if ch.Seq != st.nextSeq {
		return fmt.Errorf("xrpc: stream frame %d out of order (want %d)", ch.Seq, st.nextSeq)
	}
	st.nextSeq++
	if ch.Last {
		if ch.Calls != st.expect {
			return fmt.Errorf("xrpc: stream carries %d calls for %d iterations", ch.Calls, st.expect)
		}
		if st.expect > 0 && (st.curCall != st.expect-1 || !st.seen) {
			return fmt.Errorf("xrpc: stream ended after call %d of %d", st.curCall, st.expect)
		}
		st.done = true
		return nil
	}
	switch {
	case ch.Call == st.curCall+1 && st.seen:
		st.curCall++
		st.curItem = 0
	case ch.Call == st.curCall:
	default:
		return fmt.Errorf("xrpc: stream chunk for call %d item %d arrived at call %d item %d",
			ch.Call, ch.FirstItem, st.curCall, st.curItem)
	}
	if ch.Call >= st.expect {
		return fmt.Errorf("xrpc: stream carries call %d for %d iterations", ch.Call, st.expect)
	}
	if ch.FirstItem != st.curItem {
		return fmt.Errorf("xrpc: stream chunk of call %d starts at item %d, want %d",
			ch.Call, ch.FirstItem, st.curItem)
	}
	st.seen = true
	st.curItem += len(ch.Items)
	return nil
}

// deliverFunc forwards one decoded result increment to the lane's consumer;
// false means the dispatch was cancelled and the lane must abort.
type deliverFunc func(eval.StreamChunk) bool

// streamLane performs one streamed Bulk RPC exchange, delivering result
// increments through deliver as frames arrive and accumulating metrics
// totals exactly like callBulkCtx does for gather-whole exchanges. onFrame,
// when non-nil, is invoked as each response frame reaches the originator —
// the liveness signal the retry runner's hedge timer watches.
func (c *StreamedClient) streamLane(ctx context.Context, target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence, deliver deliverFunc, onFrame func(), sp trace.SpanRef) (Lane, error) {
	stx, streams := c.Transport.(StreamTransport)
	if !streams {
		return c.gatherLane(ctx, target, x, iterations, deliver, sp)
	}
	data, serNS, err := c.marshalCall(ctx, target, x, iterations, sp)
	if err != nil {
		return Lane{}, err
	}
	if sp.Active() {
		ctx = withTraceInfo(ctx, uint64(sp.TraceID()), uint64(sp.SpanID()))
	}
	st := &laneState{expect: len(iterations)}
	sink := func(frame []byte) error {
		if onFrame != nil {
			onFrame()
		}
		t0 := time.Now()
		chunk, perr := ParseResponseChunk(frame)
		if perr != nil {
			// A peer that does not stream answers with one gather-whole
			// response message; fall back to delivering it in one increment
			// per iteration. Only legal as the very first frame — a whole
			// response after chunk frames would silently duplicate results.
			if resp, rerr := ParseResponse(frame); rerr == nil {
				if st.nextSeq != 0 || st.done {
					return fmt.Errorf("xrpc: gather-whole response after %d stream frames", st.nextSeq)
				}
				deser := time.Since(t0).Nanoseconds()
				if len(resp.Results) != len(iterations) {
					return fmt.Errorf("xrpc: response carries %d results for %d calls",
						len(resp.Results), len(iterations))
				}
				st.recvd += int64(len(frame))
				st.deserNS += deser
				st.execNS += resp.ExecNanos
				st.serdeNS += resp.SerializeNanos
				st.done = true
				for i, res := range resp.Results {
					if !deliver(eval.StreamChunk{Iteration: i, Items: res}) {
						return context.Canceled
					}
				}
				return nil
			}
			return perr
		}
		deser := time.Since(t0).Nanoseconds()
		if err := st.accept(chunk); err != nil {
			return err
		}
		st.recvd += int64(len(frame))
		st.deserNS += deser
		st.execNS += chunk.ExecNanos
		st.serdeNS += chunk.SerializeNanos
		if chunk.Last {
			// The terminal frame piggybacks the server's span tree.
			sp.IngestRemote(chunk.Spans)
			return nil
		}
		sp.Event("frame",
			trace.Int("seq", int64(chunk.Seq)),
			trace.Int("call", int64(chunk.Call)),
			trace.Int("bytes", int64(len(frame))))
		st.chunks = append(st.chunks, ChunkStat{
			Bytes: int64(len(frame)), ExecNS: chunk.ExecNanos, DeserNS: deser,
		})
		if !deliver(eval.StreamChunk{Iteration: chunk.Call, Items: chunk.Items}) {
			return context.Canceled
		}
		return nil
	}
	t1 := time.Now()
	err = stx.RoundTripStream(ctx, target, data, sink)
	wallNS := time.Since(t1).Nanoseconds()
	if err == nil && !st.done {
		err = fmt.Errorf("xrpc: stream from %s ended without terminal frame", target)
	}
	if err != nil {
		// A mid-stream fault frame still carries the server's partial spans.
		var f *Fault
		if errors.As(err, &f) && len(f.Spans) > 0 {
			sp.IngestRemote(f.Spans)
		}
	}
	c.observe(target, wallNS, err)
	if err != nil {
		// A lane that died mid-stream still moved real bytes (the request,
		// plus every frame received before the fault); account them so a
		// failover run's traffic totals include the dead primary's partial
		// stream, not just the winner's. Waves still carry winners only.
		if c.Metrics != nil && st.recvd > 0 {
			c.Metrics.Add(&Metrics{
				Requests:      1,
				BytesSent:     int64(len(data)),
				BytesReceived: st.recvd,
				SerializeNS:   serNS,
				DeserializeNS: st.deserNS,
				RemoteExecNS:  st.execNS,
				ServerSerdeNS: st.serdeNS,
				RoundTripWall: wallNS,
			})
		}
		return Lane{}, err
	}
	lane := Lane{
		Peer:          target,
		BytesSent:     int64(len(data)),
		BytesReceived: st.recvd,
		RemoteExecNS:  st.execNS,
		DeserNS:       st.deserNS,
		Chunks:        st.chunks,
	}
	if c.Metrics != nil {
		c.Metrics.Add(&Metrics{
			Requests:      1,
			BytesSent:     int64(len(data)),
			BytesReceived: st.recvd,
			SerializeNS:   serNS,
			DeserializeNS: st.deserNS,
			RemoteExecNS:  st.execNS,
			ServerSerdeNS: st.serdeNS,
			RoundTripWall: wallNS,
		})
	}
	return lane, nil
}

// gatherLane is the degraded streamLane over a Transport without streaming:
// one gather-whole exchange, delivered as one increment per iteration.
func (c *StreamedClient) gatherLane(ctx context.Context, target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence, deliver deliverFunc, sp trace.SpanRef) (Lane, error) {
	results, lane, err := c.callBulkCtx(ctx, target, x, iterations, sp)
	if err != nil {
		return Lane{}, err
	}
	for i, res := range results {
		if !deliver(eval.StreamChunk{Iteration: i, Items: res}) {
			return lane, context.Canceled
		}
	}
	return lane, nil
}

// ------------------------------------------------- fault-tolerant lanes --

// laneProgress records how much of a streamed lane has already been
// delivered to the consumer, across attempts: everything of calls before
// call, plus the first item items of call itself (seen marks whether any
// chunk of call was forwarded — an empty call delivers an itemless chunk).
type laneProgress struct {
	call int
	item int
	seen bool
}

// replayFilter wraps deliver so a failover attempt's replayed increments
// are suppressed. A retried stream restarts from call 0: because replicas
// hold byte-identical shard documents and evaluation is deterministic, the
// replayed prefix is byte-identical to what the consumer already received,
// so the filter forwards only the suffix beyond p — results stay exactly
// loop-ordered and duplicate-free even when the replacement peer chunks its
// stream differently.
func replayFilter(p *laneProgress, deliver deliverFunc) deliverFunc {
	acall, aitem := 0, 0 // this attempt's position in its own stream
	return func(chunk eval.StreamChunk) bool {
		if chunk.Iteration != acall {
			acall, aitem = chunk.Iteration, 0
		}
		start := aitem
		aitem += len(chunk.Items)
		switch {
		case chunk.Iteration < p.call:
			return true // fully delivered before the failover
		case chunk.Iteration == p.call:
			skip := p.item - start
			if skip < 0 {
				skip = 0
			}
			if skip > len(chunk.Items) {
				skip = len(chunk.Items)
			}
			if skip == len(chunk.Items) && p.seen {
				return true // nothing new in this chunk
			}
			p.seen = true
			if aitem > p.item {
				p.item = aitem
			}
			return deliver(eval.StreamChunk{Iteration: chunk.Iteration, Items: chunk.Items[skip:]})
		default: // first chunk of a call beyond the failover point
			p.call, p.item, p.seen = chunk.Iteration, aitem, true
			return deliver(chunk)
		}
	}
}

// runStreamLane dispatches one streamed scatter lane under the client's
// RetryPolicy. A lane fault — connection failure, a fault frame, a protocol
// violation — cancels the attempt and re-issues the call to the lane's next
// replica, with already-delivered increments suppressed by replayFilter; a
// lane whose stream has not produced its first frame within HedgeAfter is
// treated as stalled, cancelled, and re-issued the same way (the streamed
// hedge is a cancel-and-switch rather than the gather path's concurrent
// race: racing two incremental streams would interleave increments, and
// only one attempt may feed the consumer's ordered channel).
func (c *StreamedClient) runStreamLane(ctx context.Context, x *xq.XRPCExpr, batch eval.ScatterBatch, ch chan<- eval.StreamChunk, lsp trace.SpanRef) (Lane, error) {
	start := time.Now()
	forward := func(chunk eval.StreamChunk) bool { return sendChunk(ctx, ch, chunk) }
	max := c.Retry.maxAttempts(len(batch.Replicas))
	// As in callLane: a Reroute hook routes even single-attempt lanes
	// through the retry loop, so a fault can re-dispatch to the shard's new
	// home under a newer topology epoch.
	if max <= 1 && c.Reroute == nil {
		asp := lsp.Child("attempt", trace.Str("peer", batch.Target), trace.Str("kind", "primary"))
		lane, err := c.streamLane(ctx, batch.Target, x, batch.Iterations, forward, nil, asp)
		asp.EndErr(err)
		if err != nil {
			err = budgetFailure(ctx, err, batch.Target, start)
		} else {
			asp.Set(trace.Bool("winner", true))
		}
		return lane, err
	}
	targets := c.dispatchTargets(batch)
	progress := &laneProgress{}
	fault := &firstFault{}
	var lastFresh []string
	retries, hedges := 0, 0
	var wasted int64
	stalled := false
	terminal := false
	for attempt := 0; attempt < max; attempt++ {
		if attempt > 0 {
			if stalled {
				hedges++
			} else {
				retries++
				if d := c.Retry.backoff(); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
				}
			}
		}
		if ctx.Err() != nil {
			break
		}
		target := targets[attempt%len(targets)]
		asp := lsp.Child("attempt",
			trace.Str("peer", target),
			trace.Int("replica", int64(replicaIndex(batch, target))),
			trace.Str("kind", attemptKind(attempt == 0, stalled)))
		actx, acancel := context.WithCancel(ctx)
		frames := make(chan struct{}, 1)
		onFrame := func() {
			select {
			case frames <- struct{}{}:
			default:
			}
		}
		type outcome struct {
			lane Lane
			err  error
		}
		win := func(o outcome) Lane {
			lane := o.lane
			lane.Target = batch.Target
			lane.Replica = replicaIndex(batch, target)
			lane.Retries = retries
			lane.Hedges = hedges
			lane.WastedNS = wasted
			return lane
		}
		outc := make(chan outcome, 1)
		// The filter's attempt-local stream position starts fresh for each
		// attempt (every retry replays from call 0); only the shared
		// delivered-progress record persists across attempts.
		deliver := replayFilter(progress, forward)
		t0 := time.Now()
		go func() {
			lane, err := c.streamLane(actx, target, x, batch.Iterations, deliver, onFrame, asp)
			outc <- outcome{lane, err}
		}()
		var hedgeC <-chan time.Time
		var hedgeTimer *time.Timer
		if d := c.hedgeDelay(target); d > 0 && attempt+1 < max {
			hedgeTimer = time.NewTimer(d)
			hedgeC = hedgeTimer.C
		}
		stalled = false
	wait:
		for {
			select {
			case o := <-outc:
				if o.err == nil {
					if hedgeTimer != nil {
						hedgeTimer.Stop()
					}
					acancel()
					asp.End()
					asp.Set(trace.Bool("winner", true))
					return win(o), nil
				}
				asp.EndErr(o.err)
				fault.record(attempt, o.err)
				wasted += time.Since(t0).Nanoseconds()
				// A spent budget is terminal: no replica answers in time that
				// no longer exists, so the lane stops failing over.
				terminal = isDeadline(o.err)
				break wait
			case <-frames:
				// The stream is alive: disarm the stall bound. Mid-stream
				// faults still fail over (with replay suppression); only
				// the never-started case is time-bounded.
				if hedgeTimer != nil {
					hedgeTimer.Stop()
					hedgeC = nil
				}
			case <-hedgeC:
				stalled = true
				acancel()
				o := <-outc // let the cancelled attempt unwind
				if o.err == nil {
					// The stream completed in the race window between the
					// timer firing and the cancellation landing: that is a
					// win, not a stall — re-issuing would discard a fully
					// delivered lane.
					if hedgeTimer != nil {
						hedgeTimer.Stop()
					}
					asp.End()
					asp.Set(trace.Bool("winner", true))
					return win(o), nil
				}
				asp.Set(trace.Bool("stalled", true))
				asp.EndErr(o.err)
				fault.record(attempt, o.err)
				wasted += time.Since(t0).Nanoseconds()
				terminal = isDeadline(o.err)
				break wait
			}
		}
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
		acancel()
		if terminal {
			break
		}
		// Epoch-aware re-dispatch, as in callLane: a genuine fault re-consults
		// the live topology and extends the rotation (and attempt budget) with
		// the shard's new home under a newer epoch.
		var added int
		if targets, added = c.reroutedTargets(batch, targets, &lastFresh); added > 0 {
			max += added
		}
	}
	return Lane{}, budgetFailure(ctx, fault.error(), batch.Target, start)
}
