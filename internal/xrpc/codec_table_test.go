package xrpc

import (
	"testing"

	"distxq/internal/xdm"
)

// referenceCanonicalIndex is the seed's per-node O(n) numbering walk, kept as
// the oracle for the one-pass fragment numbering table.
func referenceCanonicalIndex(root, target *xdm.Node) int {
	idx := 0
	found := 0
	var walk func(n *xdm.Node, prevWasText bool) bool
	walk = func(n *xdm.Node, prevWasText bool) bool {
		merged := n.Kind == xdm.TextNode && prevWasText
		if !merged {
			idx++
		}
		if n == target {
			found = idx
			return false
		}
		prevText := false
		for _, c := range n.Children {
			if !walk(c, prevText) {
				return false
			}
			prevText = c.Kind == xdm.TextNode
		}
		return true
	}
	walk(root, false)
	return found
}

// TestFragmentNumberingTableMatchesReference compares the memoized encode
// table against the reference walk for every node, on a tree that contains
// adjacent text siblings (which must share one nodeid: a re-parsed
// serialization merges them).
func TestFragmentNumberingTableMatchesReference(t *testing.T) {
	d := xdm.NewDocument("table-test")
	root := xdm.NewElement("r")
	d.Root.AppendChild(root)
	a := xdm.NewElement("a")
	a.AppendChild(xdm.NewText("one"))
	a.AppendChild(xdm.NewText("two")) // adjacent texts: one canonical nodeid
	a.AppendChild(xdm.NewComment("c"))
	a.AppendChild(xdm.NewText("three"))
	root.AppendChild(a)
	b := xdm.NewElement("b")
	b.SetAttr("k", "v")
	b.AppendChild(xdm.NewElement("leaf"))
	root.AppendChild(b)
	d.Freeze()

	f := &fragInfo{root: root, origDoc: d}
	root.WalkDescendants(func(n *xdm.Node) bool {
		if got, want := f.idOf(n), referenceCanonicalIndex(root, n); got != want {
			t.Errorf("idOf(%s %s pre=%d) = %d, want %d", n.Kind, n.Name, n.Pre(), got, want)
		}
		return true
	})
	// Nodes outside the fragment resolve to 0 (not covered).
	if got := f.idOf(d.Root); got != 0 {
		t.Errorf("idOf(document node outside fragment) = %d, want 0", got)
	}
}

// TestDecodeTableMatchesNthDescendantOrSelf checks the decode-side numbering
// table against the seed's per-reference walk.
func TestDecodeTableMatchesNthDescendantOrSelf(t *testing.T) {
	d, err := xdm.ParseString(
		`<r><a>onetwo<!--c-->three</a><b k="v"><leaf/></b></r>`, "decode-test")
	if err != nil {
		t.Fatal(err)
	}
	root := d.DocElem()
	st := &decodeState{
		fragRoots: []*xdm.Node{root},
		fragDocs:  []*xdm.Document{d},
		fragNodes: make([][]*xdm.Node, 1),
	}
	n := 0
	root.WalkDescendants(func(*xdm.Node) bool { n++; return true })
	for id := 0; id <= n+1; id++ {
		if got, want := st.nodeByID(0, id), root.NthDescendantOrSelf(id); got != want {
			t.Errorf("nodeByID(0, %d) differs from NthDescendantOrSelf", id)
		}
	}
}
