package xrpc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"distxq/internal/projection"
	"distxq/internal/xdm"
)

var decodedDocSeq atomic.Uint64

// ---------------------------------------------------------------- encode --

// encodeState carries the fragment table built for one message.
type encodeState struct {
	sem Semantics
	// paramUsed/paramReturned: relative projection paths per parameter
	// position (pass-by-projection requests) or a single entry for results.
	paramUsed     []projection.PathSet
	paramReturned []projection.PathSet
	projOpts      projection.Options

	frags []*fragInfo
}

// fragInfo is one fragment of the preamble.
type fragInfo struct {
	// root is the serialized fragment root: an original node (by-fragment)
	// or a projected copy (by-projection).
	root *xdm.Node
	// origDoc/origRoot identify where the fragment came from.
	origDoc *xdm.Document
	// proj maps original nodes to projected copies (by-projection only).
	proj map[*xdm.Node]*xdm.Node
	// isDoc records that the fragment root is a document node.
	isDoc bool
	// ids numbers every node below root with its canonical nodeid, built by
	// one walk on first reference so encoding n references costs O(size + n)
	// instead of O(size × n).
	ids map[*xdm.Node]int
}

// idOf returns the canonical 1-based nodeid of target within the fragment
// (0 when target is not below the fragment root), memoizing the numbering
// table on first use.
func (f *fragInfo) idOf(target *xdm.Node) int {
	if f.ids == nil {
		f.ids = make(map[*xdm.Node]int)
		idx := 0
		var walk func(n *xdm.Node, prevWasText bool)
		walk = func(n *xdm.Node, prevWasText bool) {
			// Adjacent text siblings share one nodeid: a re-parsed
			// serialization merges them.
			if !(n.Kind == xdm.TextNode && prevWasText) {
				idx++
			}
			f.ids[n] = idx
			prevText := false
			for _, c := range n.Children {
				walk(c, prevText)
				prevText = c.Kind == xdm.TextNode
			}
		}
		walk(f.root, false)
	}
	return f.ids[target]
}

// buildFragments collects every node item of every sequence and constructs
// the fragments preamble per the message semantics. seqAt(i) must yield the
// parameter position of the i-th sequence (for per-parameter projection
// paths); calls× params are flattened.
func (st *encodeState) buildFragments(seqs []xdm.Sequence, paramOf []int) error {
	if st.sem == ByValue {
		return nil
	}
	type byDocGroup struct {
		doc      *xdm.Document
		nodes    []*xdm.Node
		perParam map[int][]*xdm.Node
	}
	groups := map[*xdm.Document]*byDocGroup{}
	var order []*byDocGroup
	for si, s := range seqs {
		for _, it := range s {
			n, isNode := it.(*xdm.Node)
			if !isNode {
				continue
			}
			if n.Doc == nil {
				return fmt.Errorf("xrpc: cannot ship node %q outside a frozen document", n.Name)
			}
			g := groups[n.Doc]
			if g == nil {
				g = &byDocGroup{doc: n.Doc, perParam: map[int][]*xdm.Node{}}
				groups[n.Doc] = g
				order = append(order, g)
			}
			g.nodes = append(g.nodes, n)
			p := 0
			if paramOf != nil {
				p = paramOf[si]
			}
			g.perParam[p] = append(g.perParam[p], n)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].doc.Seq() < order[j].doc.Seq() })
	for _, g := range order {
		switch st.sem {
		case ByFragment:
			// One fragment per maximal node: a shipped node nested in
			// another shipped node reuses the outer fragment (§V).
			roots := maximalNodes(g.nodes)
			for _, r := range roots {
				st.frags = append(st.frags, &fragInfo{
					root:    r,
					origDoc: g.doc,
					isDoc:   r.Kind == xdm.DocumentNode,
				})
			}
		case ByProjection:
			// One projected fragment per source document, rooted at the LCA
			// that the projection post-processing determines.
			var used, returned []*xdm.Node
			for p, nodes := range g.perParam {
				var uPaths, rPaths projection.PathSet
				if p < len(st.paramUsed) {
					uPaths = st.paramUsed[p]
				}
				if p < len(st.paramReturned) {
					rPaths = st.paramReturned[p]
				}
				ctx := normalizeCtx(nodes)
				used = append(used, projection.EvalPaths(ctx, uPaths)...)
				returned = append(returned, projection.EvalPaths(ctx, rPaths)...)
				// Shipped nodes must exist in the fragment as reference
				// targets, but only as used nodes: whether their subtrees
				// travel is exactly what the returned paths decide (§VI —
				// "until now, when sending nodes, we had to serialize all
				// descendants").
				used = append(used, nodes...)
			}
			used = xdm.SortDocOrder(used)
			returned = xdm.SortDocOrder(returned)
			proj, err := projection.Project(used, returned, g.doc, st.projOpts)
			if err != nil {
				return err
			}
			st.frags = append(st.frags, &fragInfo{
				root:    proj.Root,
				origDoc: g.doc,
				proj:    proj.Map,
				isDoc:   proj.Root.Kind == xdm.DocumentNode,
			})
		}
	}
	return nil
}

// normalizeCtx replaces attribute nodes by their owners for path evaluation
// (projection paths navigate from elements; the attribute itself is added to
// the returned set separately by the caller).
func normalizeCtx(nodes []*xdm.Node) []*xdm.Node {
	out := make([]*xdm.Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Kind == xdm.AttributeNode {
			out = append(out, n.Parent)
			continue
		}
		out = append(out, n)
	}
	return xdm.SortDocOrder(out)
}

// maximalNodes returns the nodes of set that have no proper ancestor in set,
// sorted in document order.
func maximalNodes(nodes []*xdm.Node) []*xdm.Node {
	sorted := xdm.SortDocOrder(append([]*xdm.Node(nil), nodes...))
	var out []*xdm.Node
	for _, n := range sorted {
		covered := false
		m := n
		if m.Kind == xdm.AttributeNode {
			m = m.Parent
			// an attribute is shipped via its owner element's fragment
			if m != nil {
				n = m
			}
		}
		for _, r := range out {
			if r == n || r.IsAncestorOf(n) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, n)
		}
	}
	return out
}

// refFor locates the fragment reference of a node; ok=false means the node
// is not covered by any fragment (caller falls back to by-value copying —
// only happens for by-value semantics).
func (st *encodeState) refFor(n *xdm.Node) (fragid, nodeid int, attrName string, ok bool) {
	target := n
	if n.Kind == xdm.AttributeNode {
		attrName = n.Name
		target = n.Parent
	}
	for fi, f := range st.frags {
		if f.origDoc != target.Doc && f.proj == nil {
			continue
		}
		var within *xdm.Node
		if f.proj != nil {
			cp := f.proj[target]
			if cp == nil {
				continue
			}
			if cp != f.root && !f.root.IsAncestorOf(cp) {
				continue
			}
			within = cp
		} else {
			if f.root != target && !f.root.IsAncestorOf(target) {
				continue
			}
			within = target
		}
		id := f.idOf(within)
		if id == 0 {
			continue
		}
		return fi + 1, id, attrName, true
	}
	return 0, 0, "", false
}

// writeFragments emits the fragments preamble.
func (st *encodeState) writeFragments(sb *strings.Builder) {
	if len(st.frags) == 0 {
		fmt.Fprintf(sb, "<%s/>", elFragments)
		return
	}
	fmt.Fprintf(sb, "<%s>", elFragments)
	for _, f := range st.frags {
		uri := ""
		if f.origDoc != nil {
			uri = f.origDoc.URI
		}
		fmt.Fprintf(sb, `<%s base-uri="%s"`, elFragment, escapeAttr(uri))
		if f.isDoc {
			sb.WriteString(` kind="document"`)
		}
		sb.WriteString(">")
		_ = xdm.Serialize(sb, f.root)
		fmt.Fprintf(sb, "</%s>", elFragment)
	}
	fmt.Fprintf(sb, "</%s>", elFragments)
}

var attrEscaperMsg = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func escapeAttr(s string) string { return attrEscaperMsg.Replace(s) }

// writeSequence emits one xrpc:sequence for a value sequence.
func (st *encodeState) writeSequence(sb *strings.Builder, s xdm.Sequence) error {
	fmt.Fprintf(sb, "<%s>", elSequence)
	for _, it := range s {
		switch v := it.(type) {
		case xdm.Atomic:
			writeAtomic(sb, v)
		case *xdm.Node:
			if st.sem != ByValue {
				fragid, nodeid, attrName, ok := st.refFor(v)
				if !ok {
					return fmt.Errorf("xrpc: node %s not covered by any fragment", v.Name)
				}
				el := refElName(v.Kind)
				fmt.Fprintf(sb, `<%s fragid="%d" nodeid="%d"`, el, fragid, nodeid)
				if attrName != "" {
					fmt.Fprintf(sb, ` name="%s"`, escapeAttr(attrName))
				}
				sb.WriteString("/>")
				continue
			}
			writeValueCopy(sb, v)
		}
	}
	fmt.Fprintf(sb, "</%s>", elSequence)
	return nil
}

func refElName(k xdm.Kind) string {
	switch k {
	case xdm.AttributeNode:
		return elAttribute
	case xdm.TextNode:
		return elTextNode
	case xdm.CommentNode:
		return elCommentEl
	case xdm.DocumentNode:
		return elDocumentEl
	default:
		return elElement
	}
}

// writeValueCopy serializes a deep copy of a node (pass-by-value, Fig. 1).
func writeValueCopy(sb *strings.Builder, n *xdm.Node) {
	base := ""
	if n.Doc != nil {
		base = n.Doc.URI
	}
	switch n.Kind {
	case xdm.AttributeNode:
		fmt.Fprintf(sb, `<%s name="%s" value="%s" base-uri="%s"/>`,
			elAttribute, escapeAttr(n.Name), escapeAttr(n.Text), escapeAttr(base))
	case xdm.TextNode:
		fmt.Fprintf(sb, `<%s>%s</%s>`, elTextNode, escapeText(n.Text), elTextNode)
	case xdm.CommentNode:
		fmt.Fprintf(sb, `<%s>%s</%s>`, elCommentEl, escapeText(n.Text), elCommentEl)
	case xdm.DocumentNode:
		fmt.Fprintf(sb, `<%s base-uri="%s">`, elDocumentEl, escapeAttr(base))
		_ = xdm.Serialize(sb, n)
		fmt.Fprintf(sb, "</%s>", elDocumentEl)
	default:
		fmt.Fprintf(sb, `<%s base-uri="%s">`, elElement, escapeAttr(base))
		_ = xdm.Serialize(sb, n)
		fmt.Fprintf(sb, "</%s>", elElement)
	}
}

// ---------------------------------------------------------------- decode --

// decodeState resolves references against decoded fragment documents.
type decodeState struct {
	fragRoots []*xdm.Node // numbering roots, one per fragment
	fragDocs  []*xdm.Document
	// fragNodes memoizes, per fragment, the descendant-or-self sequence of
	// its numbering root (attributes excluded), built by one walk on first
	// reference so decoding n references costs O(size + n) instead of
	// O(size × n). Decoded fragments went through the parser, which already
	// merged adjacent text siblings, so plain preorder matches the encoder's
	// canonical numbering.
	fragNodes [][]*xdm.Node
}

// nodeByID resolves the 1-based nodeid within fragment frag (0-based), or nil
// when the id is out of range.
func (st *decodeState) nodeByID(frag, nodeid int) *xdm.Node {
	tbl := st.fragNodes[frag]
	if tbl == nil {
		root := st.fragRoots[frag]
		tbl = make([]*xdm.Node, 0, root.SubtreeSize())
		root.WalkDescendants(func(m *xdm.Node) bool {
			tbl = append(tbl, m)
			return true
		})
		st.fragNodes[frag] = tbl
	}
	if nodeid < 1 || nodeid > len(tbl) {
		return nil
	}
	return tbl[nodeid-1]
}

// decodeFragments parses the fragments preamble into fresh documents, in
// message order (which the encoder arranged to be original document order,
// preserving inter-fragment node ordering).
func decodeFragments(fragsEl *xdm.Node) (*decodeState, error) {
	st := &decodeState{}
	if fragsEl == nil {
		return st, nil
	}
	for _, f := range childElems(fragsEl) {
		if !nameIs(f, elFragment) {
			return nil, fmt.Errorf("xrpc: unexpected %s in fragments", f.Name)
		}
		d := xdm.NewDocument(fmt.Sprintf("xrpc-fragment://%d", decodedDocSeq.Add(1)))
		// Adopt the fragment subtrees instead of deep-copying them: the
		// message tree is transient and nothing reads fragment content
		// through it after this point. Freeze renumbers the adopted nodes
		// for the fresh document.
		for _, c := range f.Children {
			d.Root.AppendChild(c)
		}
		f.Children = nil
		d.Freeze()
		if base := attrOr(f, "base-uri", ""); base != "" {
			d.Root.BaseURI = base
		}
		var numberingRoot *xdm.Node
		if attrOr(f, "kind", "") == "document" {
			numberingRoot = d.Root
		} else {
			// The fragment root is the first content node; text and comment
			// nodes are legal roots (a shipped text() result).
			if len(d.Root.Children) == 0 {
				return nil, fmt.Errorf("xrpc: empty fragment")
			}
			numberingRoot = d.Root.Children[0]
		}
		st.fragRoots = append(st.fragRoots, numberingRoot)
		st.fragDocs = append(st.fragDocs, d)
	}
	st.fragNodes = make([][]*xdm.Node, len(st.fragRoots))
	return st, nil
}

// decodeSequence rebuilds one xrpc:sequence element into a value sequence.
func (st *decodeState) decodeSequence(seqEl *xdm.Node) (xdm.Sequence, error) {
	var out xdm.Sequence
	for _, item := range childElems(seqEl) {
		switch "xrpc:" + localName(item.Name) {
		case elAtomic:
			a, err := parseAtomicEl(item)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		case elElement, elAttribute, elTextNode, elCommentEl, elDocumentEl:
			if item.Attr("fragid") != nil {
				n, err := st.resolveRef(item)
				if err != nil {
					return nil, err
				}
				out = append(out, n)
				continue
			}
			n, err := decodeValueCopy(item)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		default:
			return nil, fmt.Errorf("xrpc: unexpected sequence item %s", item.Name)
		}
	}
	return out, nil
}

func (st *decodeState) resolveRef(item *xdm.Node) (*xdm.Node, error) {
	fragid, err := strconv.Atoi(attrOr(item, "fragid", ""))
	if err != nil || fragid < 1 || fragid > len(st.fragRoots) {
		return nil, fmt.Errorf("xrpc: bad fragid %q", attrOr(item, "fragid", ""))
	}
	nodeid, err := strconv.Atoi(attrOr(item, "nodeid", ""))
	if err != nil || nodeid < 1 {
		return nil, fmt.Errorf("xrpc: bad nodeid %q", attrOr(item, "nodeid", ""))
	}
	n := st.nodeByID(fragid-1, nodeid)
	if n == nil {
		return nil, fmt.Errorf("xrpc: nodeid %d out of range in fragment %d", nodeid, fragid)
	}
	if nameIs(item, elAttribute) {
		name := attrOr(item, "name", "")
		a := n.Attr(name)
		if a == nil {
			return nil, fmt.Errorf("xrpc: referenced attribute %q missing on %s", name, n.Name)
		}
		return a, nil
	}
	return n, nil
}

// decodeValueCopy materializes a pass-by-value item as its own document
// (each parameter is a separate XML fragment — exactly the semantics whose
// consequences §II catalogues).
func decodeValueCopy(item *xdm.Node) (*xdm.Node, error) {
	base := attrOr(item, "base-uri", "")
	switch "xrpc:" + localName(item.Name) {
	case elAttribute:
		a := xdm.NewAttr(attrOr(item, "name", ""), attrOr(item, "value", ""))
		a.BaseURI = base
		return a, nil
	case elTextNode, elCommentEl:
		d := xdm.NewDocument(fmt.Sprintf("xrpc-value://%d", decodedDocSeq.Add(1)))
		var n *xdm.Node
		if nameIs(item, elTextNode) {
			n = xdm.NewText(item.StringValue())
		} else {
			n = xdm.NewComment(item.StringValue())
		}
		n.BaseURI = base
		d.Root.AppendChild(n)
		d.Freeze()
		return n, nil
	case elDocumentEl, elElement:
		d := xdm.NewDocument(fmt.Sprintf("xrpc-value://%d", decodedDocSeq.Add(1)))
		// Adopt the copied content out of the transient message tree (see
		// decodeFragments).
		for _, c := range item.Children {
			d.Root.AppendChild(c)
		}
		item.Children = nil
		d.Freeze()
		if base != "" {
			d.Root.BaseURI = base
		}
		if nameIs(item, elDocumentEl) {
			return d.Root, nil
		}
		for _, c := range d.Root.Children {
			if c.Kind == xdm.ElementNode {
				c.BaseURI = base
				return c, nil
			}
		}
		return nil, fmt.Errorf("xrpc: element copy without element content")
	}
	return nil, fmt.Errorf("xrpc: unknown copy item %s", item.Name)
}
