package xrpc

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

type mapResolver map[string]string

func (m mapResolver) ResolveDoc(uri string) (*xdm.Document, error) {
	s, ok := m[uri]
	if !ok {
		return nil, fmt.Errorf("no such document %q", uri)
	}
	return xdm.ParseString(s, uri)
}

// newPeer wires a server around a local engine.
func newPeer(docs mapResolver) *Server {
	return &Server{Engine: eval.NewEngine(docs)}
}

// wire builds a client engine whose execute-at calls reach the given peers
// over the in-memory transport under the chosen semantics.
func wire(t *testing.T, sem Semantics, peers map[string]*Server) (*eval.Engine, *Client) {
	t.Helper()
	tr := NewInMemoryTransport()
	for name, srv := range peers {
		tr.Register(name, srv)
	}
	cl := &Client{
		Transport: tr,
		Semantics: sem,
		Static:    eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{},
		Metrics:   &Metrics{},
	}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	return eng, cl
}

// planProjection fills the client's Relatives from a path analysis, the job
// the core planner performs in the full pipeline.
func planProjection(t *testing.T, q *xq.Query, cl *Client) {
	t.Helper()
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	a, err := projection.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	xq.Walk(q.Body, func(e xq.Expr) bool {
		if x, ok := e.(*xq.XRPCExpr); ok {
			cl.Relatives[x] = a.Relative(x, q.Body)
		}
		return true
	})
}

func serialize(s xdm.Sequence) string {
	var parts []string
	for _, it := range s {
		switch v := it.(type) {
		case *xdm.Node:
			parts = append(parts, xdm.SerializeString(v))
		case xdm.Atomic:
			parts = append(parts, v.ItemString())
		}
	}
	return strings.Join(parts, " ")
}

func TestRequestRoundTripAtomics(t *testing.T) {
	req := &Request{
		Method: "f", Arity: 3, Semantics: ByValue,
		Module: `declare function f($a as item()*, $b as item()*, $c as item()*) as item()* { ($a,$b,$c) };`,
		Static: eval.DefaultStatic(),
		Calls: [][]xdm.Sequence{{
			xdm.Singleton(xdm.NewInteger(42)),
			xdm.Singleton(xdm.NewString("hi <&>")),
			{xdm.NewBoolean(true), xdm.NewDouble(2.5)},
		}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatalf("parse: %v\nmessage: %s", err, data)
	}
	if got.Method != "f" || got.Arity != 3 || got.Semantics != ByValue {
		t.Errorf("header: %+v", got)
	}
	if got.Static != req.Static {
		t.Errorf("static context: %+v", got.Static)
	}
	if len(got.Calls) != 1 || len(got.Calls[0]) != 3 {
		t.Fatalf("calls: %d", len(got.Calls))
	}
	if got.Calls[0][0][0].(xdm.Atomic).I != 42 {
		t.Error("integer param")
	}
	if got.Calls[0][1][0].(xdm.Atomic).S != "hi <&>" {
		t.Error("string param escaping")
	}
	if b := got.Calls[0][2]; len(b) != 2 || !b[0].(xdm.Atomic).B || b[1].(xdm.Atomic).F != 2.5 {
		t.Errorf("mixed sequence: %v", b)
	}
}

func TestRequestRoundTripByValueNodes(t *testing.T) {
	d := xdm.MustParseString(`<a x="1"><b>t</b></a>`, "orig.xml")
	req := &Request{
		Method: "f", Arity: 2, Semantics: ByValue, Module: "m", Static: eval.DefaultStatic(),
		Calls: [][]xdm.Sequence{{
			xdm.Singleton(d.DocElem()),
			xdm.Singleton(d.DocElem().Attr("x")),
		}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	n := got.Calls[0][0][0].(*xdm.Node)
	if xdm.SerializeString(n) != `<a x="1"><b>t</b></a>` {
		t.Errorf("copied node = %s", xdm.SerializeString(n))
	}
	if n == d.DocElem() {
		t.Error("by-value must copy")
	}
	if n.BaseURI != "orig.xml" {
		t.Errorf("base-uri = %q", n.BaseURI)
	}
	a := got.Calls[0][1][0].(*xdm.Node)
	if a.Kind != xdm.AttributeNode || a.Name != "x" || a.Text != "1" {
		t.Errorf("attr copy = %+v", a)
	}
}

func TestByFragmentSharedFragmentFig4(t *testing.T) {
	// The Fig. 4 scenario: $abc = <a><b><c/></b></a>, $bc = its b child.
	// One fragment; $bc gets nodeid 2, $abc nodeid 1.
	d := xdm.MustParseString(`<a><b><c/></b></a>`, "makenodes")
	abc := d.DocElem()
	bc := abc.Children[0]
	req := &Request{
		Method: "earlier", Arity: 2, Semantics: ByFragment, Module: "m",
		Static: eval.DefaultStatic(),
		Calls:  [][]xdm.Sequence{{xdm.Singleton(bc), xdm.Singleton(abc)}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msg := string(data)
	if strings.Count(msg, "<xrpc:fragment ") != 1 {
		t.Errorf("want exactly one fragment:\n%s", msg)
	}
	if !strings.Contains(msg, `fragid="1" nodeid="2"`) || !strings.Contains(msg, `fragid="1" nodeid="1"`) {
		t.Errorf("fragment refs missing:\n%s", msg)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	gotBC := got.Calls[0][0][0].(*xdm.Node)
	gotABC := got.Calls[0][1][0].(*xdm.Node)
	if gotABC.Name != "a" || gotBC.Name != "b" {
		t.Fatalf("decoded names: %s, %s", gotBC.Name, gotABC.Name)
	}
	// Structural relationships within the message are preserved:
	if gotBC.Parent != gotABC {
		t.Error("by-fragment must preserve the parent relationship")
	}
	if xdm.Compare(gotABC, gotBC) >= 0 {
		t.Error("document order must be preserved ($abc << $bc)")
	}
	if len(got.RequestFragmentDocs()) != 1 {
		t.Error("one shared fragment document expected")
	}
}

func TestByFragmentDisjointNodesSeparateFragments(t *testing.T) {
	d := xdm.MustParseString(`<r><x>1</x><y>2</y></r>`, "two.xml")
	x := d.DocElem().Children[0]
	y := d.DocElem().Children[1]
	req := &Request{
		Method: "f", Arity: 2, Semantics: ByFragment, Module: "m",
		Static: eval.DefaultStatic(),
		Calls:  [][]xdm.Sequence{{xdm.Singleton(x), xdm.Singleton(y)}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "<xrpc:fragment ") != 2 {
		t.Errorf("disjoint nodes need two fragments:\n%s", data)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	gx := got.Calls[0][0][0].(*xdm.Node)
	gy := got.Calls[0][1][0].(*xdm.Node)
	// Fragments are ordered in original document order, so order between
	// parameters is still correct even across fragments.
	if xdm.Compare(gx, gy) >= 0 {
		t.Error("cross-fragment document order must follow original order")
	}
}

func TestByFragmentAttributeParam(t *testing.T) {
	d := xdm.MustParseString(`<p id="7"><sub/></p>`, "attr.xml")
	idAttr := d.DocElem().Attr("id")
	req := &Request{
		Method: "f", Arity: 1, Semantics: ByFragment, Module: "m",
		Static: eval.DefaultStatic(),
		Calls:  [][]xdm.Sequence{{xdm.Singleton(idAttr)}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `name="id"`) {
		t.Errorf("attribute ref must carry the name:\n%s", data)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	a := got.Calls[0][0][0].(*xdm.Node)
	if a.Kind != xdm.AttributeNode || a.Text != "7" {
		t.Errorf("decoded attribute: %+v", a)
	}
}

func TestEndToEndProblem3Earlier(t *testing.T) {
	// earlier($bc,$abc) must return $abc under by-fragment (order kept) but
	// returns the $bc copy under by-value (Problem 3).
	src := `
	declare function earlier($l as node(), $r as node()) as node()
	{ if ($l << $r) then $l else $r };
	let $abc := <a><b><c/></b></a>
	let $bc := $abc/b
	return execute at {"peer"} { earlier($bc, $abc) }`
	for _, tc := range []struct {
		sem  Semantics
		want string
	}{
		{ByValue, "<b><c/></b>"},             // wrong: copy of $bc
		{ByFragment, "<a><b><c/></b></a>"},   // correct: $abc
		{ByProjection, "<a><b><c/></b></a>"}, // correct: $abc
	} {
		eng, cl := wire(t, tc.sem, map[string]*Server{"peer": newPeer(nil)})
		q := xq.MustParseQuery(src)
		if tc.sem == ByProjection {
			planProjection(t, q, cl)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.sem, err)
		}
		if got := serialize(res); got != tc.want {
			t.Errorf("%s: earlier() = %s, want %s", tc.sem, got, tc.want)
		}
	}
}

func TestEndToEndProblem2Overlap(t *testing.T) {
	// overlap($abc,$bc) is true locally; by-value separates the copies so it
	// is false (Problem 2); by-fragment preserves identity, so true.
	src := `
	declare function overlap($l as node(), $r as node()) as item()*
	{ not(empty(($l/descendant-or-self::node()) intersect ($r/descendant-or-self::node()))) };
	let $abc := <a><b><c/></b></a>
	let $bc := $abc/b
	return execute at {"peer"} { overlap($abc, $bc) }`
	for _, tc := range []struct {
		sem  Semantics
		want string
	}{
		{ByValue, "false"},
		{ByFragment, "true"},
		{ByProjection, "true"},
	} {
		eng, cl := wire(t, tc.sem, map[string]*Server{"peer": newPeer(nil)})
		q := xq.MustParseQuery(src)
		if tc.sem == ByProjection {
			planProjection(t, q, cl)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.sem, err)
		}
		if got := serialize(res); got != tc.want {
			t.Errorf("%s: overlap = %s, want %s", tc.sem, got, tc.want)
		}
	}
}

func TestEndToEndProblem1ParentNavigation(t *testing.T) {
	// $bc := execute at {peer} {makenodes()}; $bc/parent::a is empty under
	// by-value and by-fragment (the response ships only the b subtree), but
	// by-projection detects the parent::a returned path and ships the full
	// fragment (Fig. 5), making the parent step work.
	src := `
	declare function makenodes() as node() { <a><b><c/></b></a>/b };
	let $bc := execute at {"peer"} { makenodes() }
	return count($bc/parent::a)`
	for _, tc := range []struct {
		sem  Semantics
		want string
	}{
		{ByValue, "0"},
		{ByFragment, "0"},
		{ByProjection, "1"},
	} {
		eng, cl := wire(t, tc.sem, map[string]*Server{"peer": newPeer(nil)})
		q := xq.MustParseQuery(src)
		if tc.sem == ByProjection {
			planProjection(t, q, cl)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.sem, err)
		}
		if got := serialize(res); got != tc.want {
			t.Errorf("%s: count(parent) = %s, want %s", tc.sem, got, tc.want)
		}
	}
}

func TestEndToEndRemoteDocQuery(t *testing.T) {
	docs := mapResolver{"depts.xml": `<depts><dept name="hr"/><dept name="it"/></depts>`}
	src := `
	declare function fcn($n as xs:string) as item()*
	{ $n = doc("depts.xml")//dept/@name };
	(execute at {"example.org"} { fcn("it") },
	 execute at {"example.org"} { fcn("legal") })`
	eng, _ := wire(t, ByValue, map[string]*Server{"example.org": newPeer(docs)})
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "true false" {
		t.Errorf("remote predicate = %s", serialize(res))
	}
}

func TestBulkRPCOneMessage(t *testing.T) {
	docs := mapResolver{"depts.xml": `<depts><dept name="a"/><dept name="b"/></depts>`}
	srv := newPeer(docs)
	eng, cl := wire(t, ByFragment, map[string]*Server{"p": srv})
	src := `
	declare function fcn($n as xs:string) as item()*
	{ $n = doc("depts.xml")//dept/@name };
	for $x in ("a","b","zz","b") return execute at {"p"} { fcn($x) }`
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "true true false true" {
		t.Errorf("bulk results = %s", serialize(res))
	}
	m := cl.Metrics.Snapshot()
	if m.Requests != 1 {
		t.Errorf("bulk loop should use 1 message, used %d", m.Requests)
	}
}

func TestStaticContextPropagation(t *testing.T) {
	srv := newPeer(nil)
	eng, cl := wire(t, ByValue, map[string]*Server{"p": srv})
	cl.Static = eval.StaticContext{
		BaseURI:          "caller://base",
		DefaultCollation: "caller://collation",
		CurrentDateTime:  "2009-06-15T12:00:00Z",
	}
	src := `
	declare function ctx() as item()*
	{ (static-base-uri(), default-collation(), current-dateTime()) };
	execute at {"p"} { ctx() }`
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "caller://base caller://collation 2009-06-15T12:00:00Z"
	if serialize(res) != want {
		t.Errorf("remote static context = %s, want %s", serialize(res), want)
	}
}

func TestRemoteFaultSurfacesAsError(t *testing.T) {
	eng, _ := wire(t, ByValue, map[string]*Server{"p": newPeer(nil)})
	src := `
	declare function boom() as item()* { doc("missing.xml") };
	execute at {"p"} { boom() }`
	if _, err := eng.QueryString(src); err == nil {
		t.Fatal("expected remote error")
	} else if !strings.Contains(err.Error(), "missing.xml") {
		t.Errorf("error should carry cause: %v", err)
	}
}

func TestUnknownPeer(t *testing.T) {
	eng, _ := wire(t, ByValue, map[string]*Server{})
	src := `declare function f() as item()* { 1 }; execute at {"ghost"} { f() }`
	if _, err := eng.QueryString(src); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown peer should fail, got %v", err)
	}
}

func TestHTTPTransportEndToEnd(t *testing.T) {
	docs := mapResolver{"d.xml": `<r><v>7</v></r>`}
	hs := httptest.NewServer(NewHTTPHandler(newPeer(docs)))
	defer hs.Close()
	tr := &HTTPTransport{URLFor: func(peer string) string { return hs.URL + "/xrpc" }}
	cl := &Client{Transport: tr, Semantics: ByFragment, Static: eval.DefaultStatic(), Metrics: &Metrics{}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	src := `
	declare function f() as item()* { doc("d.xml")//v };
	execute at {"whatever"} { f() }`
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "<v>7</v>" {
		t.Errorf("HTTP result = %s", serialize(res))
	}
	if cl.Metrics.Snapshot().BytesSent == 0 || cl.Metrics.Snapshot().BytesReceived == 0 {
		t.Error("metrics must count HTTP bytes")
	}
}

func TestHTTPTransportFault(t *testing.T) {
	hs := httptest.NewServer(NewHTTPHandler(newPeer(nil)))
	defer hs.Close()
	tr := &HTTPTransport{URLFor: func(peer string) string { return hs.URL + "/xrpc" }}
	cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic()}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	src := `declare function f() as item()* { doc("nope.xml") }; execute at {"x"} { f() }`
	_, err := eng.QueryString(src)
	var fault *Fault
	if err == nil {
		t.Fatal("expected fault")
	}
	if !asFault(err, &fault) {
		t.Errorf("expected *Fault, got %T: %v", err, err)
	}
}

func asFault(err error, out **Fault) bool {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			*out = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestProjectionShrinksMessages(t *testing.T) {
	// A parameter with a large untouched payload: projection must ship less.
	big := strings.Repeat("<filler>xxxxxxxxxxxxxxxx</filler>", 50)
	doc := xdm.MustParseString(`<people><person><id>1</id>`+big+`</person></people>`, "big.xml")
	person := doc.DocElem().Children[0]

	src := `
	declare function f($p as node()*) as item()* { $p/id/text() };
	let $t := $in
	return execute at {"peer"} { f($t) }`
	_ = src
	// Build the XRPC expr by hand-wiring a query that binds $in… simpler:
	// construct the query around a doc the client engine can resolve.
	docs := mapResolver{"big.xml": xdm.SerializeString(doc.Root)}
	full := `
	declare function f($p as node()*) as item()* { $p/child::id };
	let $t := doc("big.xml")/child::people/child::person
	return execute at {"peer"} { f($t) }`

	sizes := map[Semantics]int64{}
	for _, sem := range []Semantics{ByFragment, ByProjection} {
		srv := newPeer(nil)
		tr := NewInMemoryTransport()
		tr.Register("peer", srv)
		cl := &Client{Transport: tr, Semantics: sem, Static: eval.DefaultStatic(),
			Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
		eng := eval.NewEngine(docs)
		eng.Remote = cl
		q := xq.MustParseQuery(full)
		if sem == ByProjection {
			planProjection(t, q, cl)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if !strings.Contains(serialize(res), "<id>1</id>") {
			t.Errorf("%s: result = %s", sem, serialize(res))
		}
		sizes[sem] = cl.Metrics.Snapshot().BytesSent
	}
	if sizes[ByProjection] >= sizes[ByFragment] {
		t.Errorf("projection request (%d B) should be smaller than fragment request (%d B)",
			sizes[ByProjection], sizes[ByFragment])
	}
	if sizes[ByFragment] < int64(len(big)) {
		t.Errorf("fragment request should carry the filler (%d B < %d B)", sizes[ByFragment], len(big))
	}
	_ = person
}

func TestResponseRoundTripEmptyAndMultiResult(t *testing.T) {
	resp := &Response{
		Semantics: ByValue,
		Results: []xdm.Sequence{
			{},
			xdm.Singleton(xdm.NewInteger(1)),
		},
		ExecNanos: 123,
	}
	data, err := MarshalResponse(resp, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || len(got.Results[0]) != 0 || len(got.Results[1]) != 1 {
		t.Errorf("results: %+v", got.Results)
	}
	if got.ExecNanos != 123 {
		t.Errorf("exec-ns = %d", got.ExecNanos)
	}
}

func TestSemanticsParse(t *testing.T) {
	for _, s := range []Semantics{ByValue, ByFragment, ByProjection} {
		got, err := ParseSemantics(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSemantics(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSemantics("bogus"); err == nil {
		t.Error("bogus semantics must error")
	}
}

func TestMarshalFaultParse(t *testing.T) {
	data := MarshalFault(fmt.Errorf("kaboom"))
	_, err := ParseResponse(data)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("fault parse: %v", err)
	}
}
