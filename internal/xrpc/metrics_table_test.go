package xrpc

import (
	"fmt"
	"sync"
	"testing"
)

// lane is shorthand for building test waves.
func lane(peer string, sent, recv, exec int64) Lane {
	return Lane{Peer: peer, BytesSent: sent, BytesReceived: recv, RemoteExecNS: exec}
}

// TestMetricsWaveAccounting is the table-driven check of the dispatch-wave
// bookkeeping: how AddWave/Add/Reset sequences shape Waves, and the widest
// wave (the Parallelism a peer.Report derives).
func TestMetricsWaveAccounting(t *testing.T) {
	type op struct {
		kind  string // "wave", "add", "reset"
		lanes []Lane // for wave; for add, one single-lane wave per lane
	}
	cases := []struct {
		name        string
		ops         []op
		wantWaves   [][]Lane
		wantWidest  int
		wantReqs    int64
		wantBytes   int64 // sent+received
		wantMaxExec int64
	}{
		{
			name:       "empty",
			wantWaves:  nil,
			wantWidest: 0,
		},
		{
			// AddWave records dispatch structure only; the byte counters
			// accumulate separately through Add (as Client.callBulk does).
			name:       "single sequential exchange is a one-lane wave",
			ops:        []op{{kind: "wave", lanes: []Lane{lane("a", 10, 20, 5)}}},
			wantWaves:  [][]Lane{{lane("a", 10, 20, 5)}},
			wantWidest: 1, wantMaxExec: 5,
		},
		{
			name: "scatter wave keeps lanes together",
			ops: []op{{kind: "wave", lanes: []Lane{
				lane("a", 1, 2, 3), lane("b", 4, 5, 6), lane("c", 7, 8, 9)}}},
			wantWaves:  [][]Lane{{lane("a", 1, 2, 3), lane("b", 4, 5, 6), lane("c", 7, 8, 9)}},
			wantWidest: 3, wantMaxExec: 9,
		},
		{
			name: "sequential waves stay separate",
			ops: []op{
				{kind: "wave", lanes: []Lane{lane("a", 1, 1, 1)}},
				{kind: "wave", lanes: []Lane{lane("b", 2, 2, 2)}},
			},
			wantWaves:  [][]Lane{{lane("a", 1, 1, 1)}, {lane("b", 2, 2, 2)}},
			wantWidest: 1, wantMaxExec: 2,
		},
		{
			name:      "empty wave is dropped",
			ops:       []op{{kind: "wave"}},
			wantWaves: nil,
		},
		{
			name: "add merges counters and appends waves",
			ops: []op{
				{kind: "wave", lanes: []Lane{lane("a", 1, 1, 1)}},
				{kind: "add", lanes: []Lane{lane("b", 10, 10, 7), lane("c", 20, 20, 2)}},
			},
			wantWaves: [][]Lane{
				{lane("a", 1, 1, 1)},
				{lane("b", 10, 10, 7)},
				{lane("c", 20, 20, 2)},
			},
			wantWidest: 1, wantReqs: 2, wantBytes: 60, wantMaxExec: 7,
		},
		{
			// The PR 2 regression: Reset must zero the counters in place (not
			// replace the struct and clobber the mutex) and later Adds must
			// land on the cleared state.
			name: "reset then add starts from zero",
			ops: []op{
				{kind: "wave", lanes: []Lane{lane("a", 100, 100, 50), lane("b", 100, 100, 60)}},
				{kind: "reset"},
				{kind: "add", lanes: []Lane{lane("c", 3, 4, 5)}},
				{kind: "wave", lanes: []Lane{lane("d", 6, 7, 8), lane("e", 9, 10, 11)}},
			},
			wantWaves:  [][]Lane{{lane("c", 3, 4, 5)}, {lane("d", 6, 7, 8), lane("e", 9, 10, 11)}},
			wantWidest: 2, wantReqs: 1, wantBytes: 7, wantMaxExec: 11,
		},
		{
			name: "double reset is idempotent",
			ops: []op{
				{kind: "wave", lanes: []Lane{lane("a", 1, 1, 1)}},
				{kind: "reset"},
				{kind: "reset"},
			},
			wantWaves: nil, wantWidest: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Metrics{}
			for _, o := range tc.ops {
				switch o.kind {
				case "wave":
					m.AddWave(o.lanes)
				case "reset":
					m.Reset()
				case "add":
					for _, l := range o.lanes {
						other := &Metrics{
							Requests:      1,
							BytesSent:     l.BytesSent,
							BytesReceived: l.BytesReceived,
							RemoteExecNS:  l.RemoteExecNS,
						}
						other.AddWave([]Lane{l})
						m.Add(other)
					}
				}
			}
			snap := m.Snapshot()
			if got, want := fmt.Sprint(snap.Waves), fmt.Sprint(tc.wantWaves); got != want {
				t.Fatalf("waves = %s, want %s", got, want)
			}
			widest := 0
			maxExec := int64(0)
			for _, w := range snap.Waves {
				if len(w) > widest {
					widest = len(w)
				}
				for _, l := range w {
					if l.RemoteExecNS > maxExec {
						maxExec = l.RemoteExecNS
					}
				}
			}
			if widest != tc.wantWidest {
				t.Fatalf("widest wave = %d, want %d", widest, tc.wantWidest)
			}
			if maxExec != tc.wantMaxExec {
				t.Fatalf("max lane exec = %d, want %d", maxExec, tc.wantMaxExec)
			}
			if tc.wantReqs != 0 && snap.Requests != tc.wantReqs {
				t.Fatalf("requests = %d, want %d", snap.Requests, tc.wantReqs)
			}
			if got := snap.BytesSent + snap.BytesReceived; got != tc.wantBytes {
				t.Fatalf("bytes = %d, want %d", got, tc.wantBytes)
			}
		})
	}
}

// TestMetricsSnapshotIsolation locks in that Snapshot deep-copies the wave
// slices: mutating a snapshot must not corrupt the live metrics.
func TestMetricsSnapshotIsolation(t *testing.T) {
	m := &Metrics{}
	m.AddWave([]Lane{lane("a", 1, 2, 3)})
	snap := m.Snapshot()
	snap.Waves[0][0].BytesSent = 999
	if got := m.Snapshot().Waves[0][0].BytesSent; got != 1 {
		t.Fatalf("snapshot aliases live wave storage: BytesSent = %d", got)
	}
	src := &Metrics{}
	src.AddWave([]Lane{lane("b", 4, 5, 6)})
	dst := &Metrics{}
	dst.Add(src)
	src.Reset()
	if got := dst.Snapshot().Waves[0][0].Peer; got != "b" {
		t.Fatalf("Add aliases source wave storage: peer = %q", got)
	}
}

// TestMetricsResetConcurrent exercises the PR 2 mutex-clobber regression
// under the race detector: Reset while Adds and AddWaves are in flight must
// neither panic nor deadlock.
func TestMetricsResetConcurrent(t *testing.T) {
	m := &Metrics{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					m.AddWave([]Lane{lane(fmt.Sprintf("p%d", g), int64(i), int64(i), 1)})
				case 1:
					m.Add(&Metrics{Requests: 1, BytesSent: 1, BytesReceived: 1})
				default:
					m.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	m.Snapshot() // must not panic on a clobbered mutex
}
