package xrpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// httpFederation starts one httptest server per peer (gather and stream
// endpoints) and returns an HTTPTransport routing peer names to them.
func httpFederation(t *testing.T, peers map[string]*Server) *HTTPTransport {
	t.Helper()
	urls := map[string]string{}
	for name, srv := range peers {
		mux := http.NewServeMux()
		mux.Handle("/xrpc", NewHTTPHandler(srv))
		mux.Handle("/xrpc/stream", NewStreamHTTPHandler(srv))
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		urls[name] = ts.URL
	}
	return &HTTPTransport{
		URLFor: func(peer string) string { return urls[peer] + "/xrpc" },
	}
}

// TestScatterOverHTTPConcurrent drives concurrent scatter-gather over real
// HTTP connections: many sessions in flight at once, each dispatching one
// Bulk RPC per peer concurrently, gather-whole and streamed.
func TestScatterOverHTTPConcurrent(t *testing.T) {
	tr := httpFederation(t, streamScatterPeers(2))

	gatherEng, _ := wire(t, ByFragment, streamScatterPeers(0))
	want, err := gatherEng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	w := serialize(want)

	newEngine := func(streamed bool) *eval.Engine {
		cl := &Client{Transport: tr, Semantics: ByFragment, Static: eval.DefaultStatic(),
			Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
		eng := eval.NewEngine(nil)
		if streamed {
			eng.Remote = &StreamedClient{Client: cl}
		} else {
			eng.Remote = cl
		}
		return eng
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := newEngine(i%2 == 0)
			got, err := eng.QueryString(interleavedScatterSrc)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if g := serialize(got); g != w {
				errs <- fmt.Errorf("session %d: got %q want %q", i, g, w)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHTTPStreamDeliversChunkFrames: the streaming endpoint must actually
// deliver multiple chunk frames (not one buffered response).
func TestHTTPStreamDeliversChunkFrames(t *testing.T) {
	tr := httpFederation(t, streamScatterPeers(1))
	var frames int
	err := tr.RoundTripStream(context.Background(), "a",
		mustMarshalScatterRequest(t), func(frame []byte) error {
			frames++
			if _, err := ParseResponseChunk(frame); err != nil {
				return err
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if frames < 3 {
		t.Fatalf("stream delivered %d frames, want several (chunked)", frames)
	}
}

// mustMarshalScatterRequest builds a one-call request for peer function f.
func mustMarshalScatterRequest(t *testing.T) []byte {
	t.Helper()
	req := &Request{
		Method: "f", Arity: 0, Semantics: ByValue,
		Module: `declare function f() as item()* { ("x", doc("d.xml")/child::r/child::v) };`,
		Calls:  [][]xdm.Sequence{{}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHTTPStreamFallbackWithoutEndpoint: a peer serving only /xrpc (no
// stream endpoint) degrades to one gather-whole frame.
func TestHTTPStreamFallbackWithoutEndpoint(t *testing.T) {
	peers := streamScatterPeers(1)
	urls := map[string]string{}
	for name, srv := range peers {
		mux := http.NewServeMux()
		mux.Handle("/xrpc", NewHTTPHandler(srv)) // no /xrpc/stream
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		urls[name] = ts.URL
	}
	tr := &HTTPTransport{URLFor: func(p string) string { return urls[p] + "/xrpc" }}
	cl := &StreamedClient{Client: &Client{Transport: tr, Semantics: ByFragment,
		Static: eval.DefaultStatic(), Relatives: map[*xq.XRPCExpr]projection.RelativePaths{},
		Metrics: &Metrics{}}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	got, err := eng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	gatherEng, _ := wire(t, ByFragment, streamScatterPeers(0))
	want, _ := gatherEng.QueryString(interleavedScatterSrc)
	if g, w := serialize(got), serialize(want); g != w {
		t.Fatalf("got %q want %q", g, w)
	}
}

// TestRouteTransportMixedFederation: in-memory peers and HTTP peers in one
// scatter wave.
func TestRouteTransportMixedFederation(t *testing.T) {
	peers := streamScatterPeers(1)
	mem := NewInMemoryTransport()
	mem.Register("a", peers["a"])
	mem.Register("b", peers["b"])
	httpTr := httpFederation(t, map[string]*Server{"c": peers["c"]})
	router := NewRouteTransport(mem)
	router.Route("c", httpTr)

	for _, streamed := range []bool{false, true} {
		cl := &Client{Transport: router, Semantics: ByValue, Static: eval.DefaultStatic(),
			Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
		eng := eval.NewEngine(nil)
		if streamed {
			eng.Remote = &StreamedClient{Client: cl}
		} else {
			eng.Remote = cl
		}
		got, err := eng.QueryString(interleavedScatterSrc)
		if err != nil {
			t.Fatalf("streamed=%v: %v", streamed, err)
		}
		gatherEng, _ := wire(t, ByValue, streamScatterPeers(0))
		want, _ := gatherEng.QueryString(interleavedScatterSrc)
		if g, w := serialize(got), serialize(want); g != w {
			t.Fatalf("streamed=%v: got %q want %q", streamed, g, w)
		}
	}
}

// TestScatterCancelsInFlightHTTP: when one lane fails, in-flight HTTP calls
// to slower peers are torn down through the request context instead of
// being waited out (and instead of leaking pool workers).
func TestScatterCancelsInFlightHTTP(t *testing.T) {
	slowCancelled := make(chan struct{})
	slowStarted := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only notices a client disconnect
		// (and cancels r.Context()) once the request has been consumed.
		_, _ = io.ReadAll(r.Body)
		close(slowStarted)
		select {
		case <-r.Context().Done():
			close(slowCancelled)
		case <-time.After(30 * time.Second):
		}
	}))
	t.Cleanup(slow.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail only once the slow peer's exchange is in flight, so the
		// cancellation provably tears down an in-flight call (not a lane
		// that never dispatched).
		<-slowStarted
		http.Error(w, "dead peer", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	urls := map[string]string{"slow": slow.URL, "dead": dead.URL}
	tr := &HTTPTransport{URLFor: func(p string) string { return urls[p] }}
	cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl

	start := time.Now()
	_, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("slow", "dead") return execute at {$p} { f($p) }`)
	if err == nil || !strings.Contains(err.Error(), "scatter to dead") {
		t.Fatalf("error = %v, want failure naming the dead peer", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("scatter took %v — the slow lane was waited out instead of cancelled", elapsed)
	}
	select {
	case <-slowCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("slow peer's request context was never cancelled")
	}
}

// TestExternalContextCancelsDispatch: cancelling Client.Context aborts a
// dispatch outright.
func TestExternalContextCancelsDispatch(t *testing.T) {
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.ReadAll(r.Body) // see TestScatterCancelsInFlightHTTP
		<-r.Context().Done()
	}))
	t.Cleanup(blocked.Close)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	tr := &HTTPTransport{URLFor: func(string) string { return blocked.URL }}
	cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}, Context: ctx}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	_, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("p1", "p2") return execute at {$p} { f($p) }`)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
