package xrpc

import (
	"strings"
	"testing"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// TestMalformedRequests injects broken messages into the server and checks
// every one surfaces as an error instead of a panic or silent misbehavior.
func TestMalformedRequests(t *testing.T) {
	srv := newPeer(nil)
	cases := map[string]string{
		"not xml":          `garbage{{{`,
		"not soap":         `<hello/>`,
		"no body":          `<env:Envelope xmlns:env="urn:e"/>`,
		"no request":       `<env:Envelope xmlns:env="urn:e"><env:Body/></env:Envelope>`,
		"no calls":         `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="0" semantics="by-value"><xrpc:module>declare function f() as item()* { 1 };</xrpc:module></xrpc:request></env:Body></env:Envelope>`,
		"bad semantics":    `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="0" semantics="by-magic"><xrpc:call/></xrpc:request></env:Body></env:Envelope>`,
		"arity mismatch":   `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="2" semantics="by-value"><xrpc:module>m</xrpc:module><xrpc:call><xrpc:sequence/></xrpc:call></xrpc:request></env:Body></env:Envelope>`,
		"bad module":       `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="0" semantics="by-value"><xrpc:module>((((</xrpc:module><xrpc:call/></xrpc:request></env:Body></env:Envelope>`,
		"unknown function": `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="ghost" arity="0" semantics="by-value"><xrpc:module>declare function f() as item()* { 1 };</xrpc:module><xrpc:call/></xrpc:request></env:Body></env:Envelope>`,
		"bad fragid":       `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="1" semantics="by-fragment"><xrpc:module>declare function f($a as item()*) as item()* { $a };</xrpc:module><xrpc:fragments/><xrpc:call><xrpc:sequence><xrpc:element fragid="9" nodeid="1"/></xrpc:sequence></xrpc:call></xrpc:request></env:Body></env:Envelope>`,
		"bad nodeid":       `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="1" semantics="by-fragment"><xrpc:module>declare function f($a as item()*) as item()* { $a };</xrpc:module><xrpc:fragments><xrpc:fragment base-uri="u"><a/></xrpc:fragment></xrpc:fragments><xrpc:call><xrpc:sequence><xrpc:element fragid="1" nodeid="99"/></xrpc:sequence></xrpc:call></xrpc:request></env:Body></env:Envelope>`,
		"bad atomic":       `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body><xrpc:request method="f" arity="1" semantics="by-value"><xrpc:module>declare function f($a as item()*) as item()* { $a };</xrpc:module><xrpc:call><xrpc:sequence><xrpc:atomic-value type="xs:integer">not-a-number</xrpc:atomic-value></xrpc:sequence></xrpc:call></xrpc:request></env:Body></env:Envelope>`,
	}
	for name, msg := range cases {
		if _, err := srv.Handle([]byte(msg)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMalformedResponses(t *testing.T) {
	for name, msg := range map[string]string{
		"not xml":     `<<<`,
		"no response": `<env:Envelope xmlns:env="urn:e"><env:Body/></env:Envelope>`,
		"bad ref": `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body>` +
			`<xrpc:response semantics="by-fragment"><xrpc:fragments/>` +
			`<xrpc:call><xrpc:sequence><xrpc:element fragid="1" nodeid="1"/></xrpc:sequence></xrpc:call>` +
			`</xrpc:response></env:Body></env:Envelope>`,
	} {
		if _, err := ParseResponse([]byte(msg)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestAttributeRefMissingName covers the reference-resolution error path for
// attributes whose name attribute is absent or wrong.
func TestAttributeRefMissingName(t *testing.T) {
	msg := `<env:Envelope xmlns:env="urn:e" xmlns:xrpc="urn:x"><env:Body>` +
		`<xrpc:request method="f" arity="1" semantics="by-fragment">` +
		`<xrpc:module>declare function f($a as item()*) as item()* { $a };</xrpc:module>` +
		`<xrpc:fragments><xrpc:fragment base-uri="u"><a x="1"/></xrpc:fragment></xrpc:fragments>` +
		`<xrpc:call><xrpc:sequence><xrpc:attribute fragid="1" nodeid="1" name="zz"/></xrpc:sequence></xrpc:call>` +
		`</xrpc:request></env:Body></env:Envelope>`
	if _, err := ParseRequest([]byte(msg)); err == nil || !strings.Contains(err.Error(), "zz") {
		t.Errorf("missing attribute should error with its name, got %v", err)
	}
}

// TestBulkMixedResults checks bulk responses where calls return node and
// atomic results of different shapes.
func TestBulkMixedResults(t *testing.T) {
	docs := mapResolver{"d.xml": `<r><a>1</a><b>2</b></r>`}
	eng, cl := wire(t, ByFragment, map[string]*Server{"p": newPeer(docs)})
	src := `
	declare function f($n as xs:string) as item()*
	{ if ($n = "a") then doc("d.xml")//a else if ($n = "num") then 42 else () };
	for $x in ("a", "num", "none", "a") return execute at {"p"} { f($x) }`
	res, err := eng.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "<a>1</a> 42 <a>1</a>" {
		t.Errorf("bulk mixed = %s", got)
	}
	if cl.Metrics.Snapshot().Requests != 1 {
		t.Errorf("one bulk message expected")
	}
}

// TestResultIdentityWithinOneResponse: two references to the same node in a
// single response resolve to ONE decoded node under by-fragment (Problem 2
// on the result side).
func TestResultIdentityWithinOneResponse(t *testing.T) {
	docs := mapResolver{"d.xml": `<r><x/></r>`}
	src := `
	declare function twice() as item()*
	{ let $n := doc("d.xml")//x return ($n, $n) };
	let $r := execute at {"p"} { twice() }
	return ($r[1] is $r[2])`
	for _, tc := range []struct {
		sem  Semantics
		want string
	}{
		{ByValue, "false"}, // separate copies: Problem 2
		{ByFragment, "true"},
		{ByProjection, "true"},
	} {
		eng, cl := wire(t, tc.sem, map[string]*Server{"p": newPeer(docs)})
		q := mustQuery(t, src)
		if tc.sem == ByProjection {
			planProjection(t, q, cl)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.sem, err)
		}
		if got := serialize(res); got != tc.want {
			t.Errorf("%s: identity within response = %s, want %s", tc.sem, got, tc.want)
		}
	}
}

func mustQuery(t *testing.T, src string) *xq.Query {
	t.Helper()
	q, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestProjectionPathsSurviveMessageRoundTrip: the projection-paths element
// carries Table V paths faithfully.
func TestProjectionPathsSurviveMessageRoundTrip(t *testing.T) {
	used, _ := projection.ParsePath(`child::seller/attribute::person`)
	ret, _ := projection.ParsePath(`parent::a/root()`)
	req := &Request{
		Method: "f", Arity: 0, Semantics: ByProjection, Module: "m",
		Static:         eval.DefaultStatic(),
		ResultUsed:     projection.PathSet{used},
		ResultReturned: projection.PathSet{ret},
		Calls:          [][]xdm.Sequence{{}},
	}
	data, err := MarshalRequest(req, nil, nil, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResultUsed.String() != req.ResultUsed.String() ||
		got.ResultReturned.String() != req.ResultReturned.String() {
		t.Errorf("paths changed: used %s→%s returned %s→%s",
			req.ResultUsed, got.ResultUsed, req.ResultReturned, got.ResultReturned)
	}
}
