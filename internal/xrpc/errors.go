package xrpc

// This file defines the typed failure taxonomy of overload-safe dispatch.
// Two failure classes must survive every hop — transport, SOAP fault
// message, retry runner, evaluator — without decaying into a bare
// context.Canceled: a query that ran out of its budget (deadline-exceeded)
// and a peer that refused work under load (overloaded). Both travel on the
// wire as SOAP fault codes and surface to callers as errors.Is-matchable
// sentinels.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"distxq/internal/eval"
)

// ErrDeadlineExceeded is the sentinel matched by every deadline failure,
// wherever it was detected: a server-side evaluation cut short (the eval
// layer owns the canonical value), a deadline-coded fault frame, or a lane
// abandoned client-side. errors.Is(err, ErrDeadlineExceeded) is the one
// test callers need.
var ErrDeadlineExceeded = eval.ErrDeadlineExceeded

// ErrOverloaded is the sentinel matched by admission-control rejections: a
// peer or daemon that shed the query instead of queueing it into latency
// collapse. Shed queries fail fast and carry this, never a timeout.
var ErrOverloaded = errors.New("xrpc: peer overloaded, query shed")

// SOAP fault codes of the typed failure classes. A fault without a code is
// a generic evaluation failure, exactly as before.
const (
	FaultCodeDeadline   = "deadline-exceeded"
	FaultCodeOverloaded = "overloaded"
)

// faultCode maps an error to the fault code it must carry on the wire.
func faultCode(err error) string {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return FaultCodeDeadline
	case errors.Is(err, ErrOverloaded):
		return FaultCodeOverloaded
	}
	return ""
}

// DeadlineError reports a lane the dispatcher abandoned because the query
// budget expired, with the lane's elapsed wall time — the client-side twin
// of the server's deadline fault.
type DeadlineError struct {
	// Peer is the lane's scatter target.
	Peer string
	// Elapsed is the lane's wall time from first dispatch to abandonment.
	Elapsed time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("xrpc: lane to %s exceeded query deadline after %v", e.Peer, e.Elapsed)
}

// Is matches the deadline sentinel so one errors.Is test covers client- and
// server-detected expiry alike.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadlineExceeded }

// isDeadline reports whether a lane failure is a deadline expiry — the one
// failure class retrying cannot fix: the budget is gone no matter which
// replica answers, so the retry runner must stop, not fail over.
func isDeadline(err error) bool { return errors.Is(err, ErrDeadlineExceeded) }

// budgetFailure maps a lane failure to a *DeadlineError when the dispatch
// deadline is the real cause: either an attempt already reported a
// deadline-typed error, or the context's deadline has passed and the
// recorded failure is only a cancellation echo of the teardown. Genuine
// faults (a dead peer, a parse error) pass through untouched — a lane must
// never blame the deadline for a failure that preceded it.
func budgetFailure(ctx context.Context, err error, peer string, start time.Time) error {
	if _, ok := err.(*DeadlineError); ok {
		return err
	}
	if isDeadline(err) {
		return &DeadlineError{Peer: peer, Elapsed: time.Since(start)}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			return &DeadlineError{Peer: peer, Elapsed: time.Since(start)}
		}
	}
	return err
}
