package xrpc

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xq"
)

// TestMetricsResetThenAdd is the regression test for the Reset bug: the old
// implementation replaced the whole struct (`*m = Metrics{}`), clobbering the
// held mutex so the deferred Unlock panicked with "unlock of unlocked mutex".
func TestMetricsResetThenAdd(t *testing.T) {
	m := &Metrics{}
	m.Add(&Metrics{Requests: 2, BytesSent: 100, Waves: [][]Lane{{{Peer: "a"}}}})
	m.Reset()
	m.Add(&Metrics{Requests: 3, BytesSent: 7})
	s := m.Snapshot()
	if s.Requests != 3 || s.BytesSent != 7 || len(s.Waves) != 0 {
		t.Errorf("after Add→Reset→Add: requests=%d bytes=%d waves=%d, want 3/7/0",
			s.Requests, s.BytesSent, len(s.Waves))
	}
	// Reset must also be safe under contention with Add/Snapshot.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add(&Metrics{Requests: 1})
				m.Reset()
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
}

// TestFaultParityAcrossTransports: a failing shipped function must surface
// as the same *Fault through the in-memory transport and through HTTP, so
// fault semantics do not depend on the wiring.
func TestFaultParityAcrossTransports(t *testing.T) {
	srv := newPeer(nil) // no resolver: doc() inside the shipped body fails
	src := `
	declare function f() as item()* { doc("missing.xml") };
	let $r := execute at {"peer"} { f() } return $r`

	runVia := func(tr Transport) error {
		cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
			Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
		eng := eval.NewEngine(nil)
		eng.Remote = cl
		_, err := eng.QueryString(src)
		return err
	}

	mem := NewInMemoryTransport()
	mem.Register("peer", srv)
	memErr := runVia(mem)

	hs := httptest.NewServer(NewHTTPHandler(srv))
	defer hs.Close()
	httpErr := runVia(&HTTPTransport{URLFor: func(string) string { return hs.URL }})

	for name, err := range map[string]error{"in-memory": memErr, "http": httpErr} {
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("%s: error %v (%T) is not a *Fault", name, err, err)
		}
		if !strings.Contains(f.Msg, "missing.xml") {
			t.Errorf("%s: fault message %q lacks the original cause", name, f.Msg)
		}
	}
	var mf, hf *Fault
	errors.As(memErr, &mf)
	errors.As(httpErr, &hf)
	if mf.Msg != hf.Msg {
		t.Errorf("fault messages differ across transports:\n in-memory: %q\n http:      %q", mf.Msg, hf.Msg)
	}
}

// countingTransport tracks the number of exchanges in flight simultaneously.
type countingTransport struct {
	inner      Transport
	inFlight   atomic.Int64
	maxFlight  atomic.Int64
	started    chan struct{}
	holdUntil  chan struct{}
	holdFirstN int64
}

func (c *countingTransport) RoundTrip(peer string, req []byte) ([]byte, error) {
	n := c.inFlight.Add(1)
	defer c.inFlight.Add(-1)
	for {
		old := c.maxFlight.Load()
		if n <= old || c.maxFlight.CompareAndSwap(old, n) {
			break
		}
	}
	if c.started != nil {
		c.started <- struct{}{}
	}
	if c.holdUntil != nil {
		<-c.holdUntil
	}
	return c.inner.RoundTrip(peer, req)
}

// TestScatterDispatchesConcurrently proves the per-peer bulk RPCs of one
// wave are actually in flight together: every lane blocks inside the
// transport until all peers have started.
func TestScatterDispatchesConcurrently(t *testing.T) {
	const peers = 4
	tr := NewInMemoryTransport()
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		tr.Register(name, newPeer(nil))
	}
	ct := &countingTransport{inner: tr, started: make(chan struct{}, peers), holdUntil: make(chan struct{})}
	cl := &Client{Transport: ct, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl

	done := make(chan error, 1)
	go func() {
		res, err := eng.QueryString(`
		declare function f($x as xs:string) as item()* { $x };
		for $p in ("p1", "p2", "p3", "p4") return execute at {$p} { f($p) }`)
		if err == nil && serialize(res) != "p1 p2 p3 p4" {
			err = errors.New("wrong result order: " + serialize(res))
		}
		done <- err
	}()
	// All four exchanges must start before any is released.
	for i := 0; i < peers; i++ {
		<-ct.started
	}
	close(ct.holdUntil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := ct.maxFlight.Load(); got != peers {
		t.Errorf("max in-flight exchanges = %d, want %d", got, peers)
	}
	s := cl.Metrics.Snapshot()
	if s.Requests != peers {
		t.Errorf("requests = %d, want %d", s.Requests, peers)
	}
	if len(s.Waves) != 1 || len(s.Waves[0]) != peers {
		t.Fatalf("waves = %v, want one wave of %d lanes", s.Waves, peers)
	}
}

// TestScatterHonorsMaxConcurrent: a width-1 pool serializes the wave.
func TestScatterHonorsMaxConcurrent(t *testing.T) {
	tr := NewInMemoryTransport()
	for _, name := range []string{"p1", "p2", "p3"} {
		tr.Register(name, newPeer(nil))
	}
	ct := &countingTransport{inner: tr}
	cl := &Client{Transport: ct, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{},
		MaxConcurrent: 1}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	if _, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("p1", "p2", "p3") return execute at {$p} { f($p) }`); err != nil {
		t.Fatal(err)
	}
	if got := ct.maxFlight.Load(); got != 1 {
		t.Errorf("max in-flight = %d, want 1 under MaxConcurrent=1", got)
	}
	// The recorded waves must not claim more overlap than the pool allowed:
	// three lanes through a width-1 pool are three single-lane waves.
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 3 {
		t.Fatalf("waves = %d, want 3 (one per lane at width 1)", len(s.Waves))
	}
	for i, w := range s.Waves {
		if len(w) != 1 {
			t.Errorf("wave %d has %d lanes, want 1", i, len(w))
		}
	}
}

// TestScatterPartialFailure: one dead peer fails the query with a fault,
// while the metrics wave still records the surviving lanes.
func TestScatterPartialFailure(t *testing.T) {
	tr := NewInMemoryTransport()
	tr.Register("up", newPeer(nil))
	// "down" is not registered: transport-level failure for that lane only.
	cl := &Client{Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	_, err := eng.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("up", "down") return execute at {$p} { f($p) }`)
	if err == nil || !strings.Contains(err.Error(), `scatter to down`) {
		t.Fatalf("error = %v, want scatter failure naming peer down", err)
	}
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 1 || len(s.Waves[0]) != 1 || s.Waves[0][0].Peer != "up" {
		t.Errorf("waves = %+v, want one wave with only the surviving lane", s.Waves)
	}
}
