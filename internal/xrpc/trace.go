package xrpc

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"distxq/internal/trace"
)

// This file carries trace identity across the two places the protocol layer
// cannot pass it structurally: error returns (a server that faults mid-work
// still owes the originator its partial spans) and the HTTP hop (the header
// mirrors the in-band request attributes for proxies and log correlation).

// tracedError attaches server-side spans to an error so they survive the
// trip through MarshalFault on any transport — the in-memory transport, the
// HTTP handler's 200-fault path, and the mid-stream fault frame all funnel
// handler errors through MarshalFault unchanged.
type tracedError struct {
	err   error
	spans []trace.Span
}

func (e *tracedError) Error() string { return e.err.Error() }

func (e *tracedError) Unwrap() error { return e.err }

// TracedError wraps err with the spans a faulting server recorded; err is
// returned unchanged when there are no spans.
func TracedError(err error, spans []trace.Span) error {
	if err == nil || len(spans) == 0 {
		return err
	}
	return &tracedError{err: err, spans: spans}
}

// faultSpans extracts piggybacked spans from an error chain.
func faultSpans(err error) []trace.Span {
	for ; err != nil; err = unwrapOnce(err) {
		if te, ok := err.(*tracedError); ok {
			return te.spans
		}
	}
	return nil
}

func unwrapOnce(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TraceHeader mirrors the request's trace identity on the HTTP hop as
// "<trace-id>-<span-id>", so intermediaries can correlate without parsing
// the SOAP body.
const TraceHeader = "X-Xrpc-Trace"

// traceCtxKey carries the (TraceID, SpanID) pair of the in-flight request
// from the client call site to the HTTP transport.
type traceCtxKey struct{}

type traceCtxVal struct {
	id   uint64
	span uint64
}

// withTraceInfo stamps the request's trace identity into ctx for the
// transport layer to surface as TraceHeader.
func withTraceInfo(ctx context.Context, id, span uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceCtxVal{id: id, span: span})
}

// setTraceHeader adds TraceHeader to req when ctx carries trace identity.
func setTraceHeader(req *http.Request, ctx context.Context) {
	v, ok := ctx.Value(traceCtxKey{}).(traceCtxVal)
	if !ok {
		return
	}
	req.Header.Set(TraceHeader, fmt.Sprintf("%d-%d", v.id, v.span))
}

// ParseTraceHeader splits a TraceHeader value into its trace and span IDs,
// zeroes when absent or malformed.
func ParseTraceHeader(val string) (id, span uint64) {
	i := strings.IndexByte(val, '-')
	if i < 0 {
		return 0, 0
	}
	id, err1 := strconv.ParseUint(val[:i], 10, 64)
	span, err2 := strconv.ParseUint(val[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0
	}
	return id, span
}
