package xrpc

// This file implements per-lane fault tolerance for scatter-gather dispatch:
// a RetryPolicy that re-issues a failed Bulk RPC to the lane's next replica
// (retry) and races a speculative duplicate against a slow one (hedging).
// The winner's response is used, the loser is cancelled, and the lane's
// provenance (winning replica, retries, hedges, wasted wall time) travels on
// the Lane record so sessions can report tail-tolerance costs. Correctness
// rests on the repo-wide invariant that peers evaluate deterministically:
// two replicas holding byte-identical shard documents produce byte-identical
// results for the same shipped function, so whichever attempt wins, the
// gathered query result is unchanged.

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"distxq/internal/eval"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// RetryPolicy configures per-lane fault tolerance of dispatch. The zero
// value (or a nil policy) with no replicas disables retrying entirely —
// exactly the pre-policy behavior.
type RetryPolicy struct {
	// MaxAttempts caps the total attempts of one lane, the first try
	// included; attempts rotate through the lane's target list (primary,
	// then replicas in order, wrapping around). Zero means one attempt per
	// available target — with two replicas, up to three attempts.
	MaxAttempts int
	// Backoff is the wait before re-issuing after a failed attempt. Hedged
	// attempts skip it: a hedge races the slow attempt, it does not replace
	// a failed one.
	Backoff time.Duration
	// HedgeAfter, when positive, launches a speculative duplicate of the
	// exchange on the next target of the rotation if the newest attempt has
	// not answered within this duration. The first response wins and the
	// losers are cancelled (torn down over cancellation-aware transports).
	// Streamed lanes treat it as a liveness bound on the first response
	// frame: a lane whose stream has not started by then is cancelled and
	// re-issued to the next replica (see StreamedClient). A Client with a
	// HealthTracker overrides this per peer with the observed P90 once
	// enough fresh samples exist.
	HedgeAfter time.Duration
	// SpreadReplicas starts lanes on a rotation of the lane's replica set
	// instead of always on the primary, so concurrent sessions spread load
	// across replicas rather than dog-piling each shard's primary. The
	// rotation is health-ranked when the Client has a HealthTracker and
	// round-robin otherwise; each lane's failover order stays a fixed,
	// deterministic permutation of its target list, and replicas hold
	// byte-identical shards, so results are unchanged. Off by default: the
	// primary-first baseline keeps single-session runs reproducible.
	SpreadReplicas bool
	// RouteLive consults the Client's HealthTracker at dispatch time and
	// sends every lane to the live, fastest copy up front: targets order by
	// observed EWMA with fault-streaked peers demoted to the back (see
	// HealthTracker.RankLive), so a dead or degraded primary stops receiving
	// first attempts as soon as the tracker has seen it fail, instead of
	// every lane burning an attempt (and a hedge window) against it. This is
	// re-route rather than fail-over; replicas hold byte-identical shards, so
	// results are unchanged. Takes precedence over SpreadReplicas; without a
	// tracker it falls back to the primary-first rotation.
	RouteLive bool
}

// spread reports whether initial lane targets rotate across replicas.
func (p *RetryPolicy) spread() bool { return p != nil && p.SpreadReplicas }

// routeLive reports whether lanes route to the fastest live copy up front.
func (p *RetryPolicy) routeLive() bool { return p != nil && p.RouteLive }

// maxAttempts resolves the attempt budget of a lane with the given number
// of replicas. A nil policy still fails over across replicas once each —
// installing a replica set alone buys fault tolerance, without hedging.
func (p *RetryPolicy) maxAttempts(replicas int) int {
	if p != nil && p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 1 + replicas
}

// hedgeAfter returns the hedge deadline, zero when hedging is off.
func (p *RetryPolicy) hedgeAfter() time.Duration {
	if p == nil {
		return 0
	}
	return p.HedgeAfter
}

// backoff returns the retry backoff, zero when none is configured.
func (p *RetryPolicy) backoff() time.Duration {
	if p == nil {
		return 0
	}
	return p.Backoff
}

// laneTargets returns the lane's canonical target list: the primary first,
// then the replicas in failover order. Lane.Replica indexes into this list
// regardless of how dispatch rotated it, so "Replica > 0" always means "not
// the primary".
func laneTargets(batch eval.ScatterBatch) []string {
	return append([]string{batch.Target}, batch.Replicas...)
}

// dispatchTargets returns the rotation a lane's attempts walk. Primary-first
// by default; under SpreadReplicas consecutive lanes start at different
// targets — health-ranked when a tracker is installed, round-robin otherwise
// — while each individual lane's order stays deterministic.
func (c *Client) dispatchTargets(batch eval.ScatterBatch) []string {
	targets := laneTargets(batch)
	if len(targets) <= 1 {
		return targets
	}
	if c.Retry.routeLive() && c.Health != nil {
		return c.Health.RankLive(targets)
	}
	if !c.Retry.spread() {
		return targets
	}
	seq := c.laneSeq.Add(1) - 1
	if c.Health != nil {
		return c.Health.Rank(targets, seq)
	}
	off := int(seq % uint64(len(targets)))
	rot := make([]string, 0, len(targets))
	rot = append(rot, targets[off:]...)
	return append(rot, targets[:off]...)
}

// replicaIndex maps a winning peer back to its index in the lane's
// canonical (primary-first) target list. A peer beyond the list — a target
// epoch-aware re-dispatch pulled in from a newer shard layout — maps just
// past it, so "Replica > 0" still always means "not the plan-time primary".
func replicaIndex(batch eval.ScatterBatch, peer string) int {
	targets := laneTargets(batch)
	for i, t := range targets {
		if t == peer {
			return i
		}
	}
	return len(targets)
}

// reroutedTargets consults the client's Reroute hook after a genuine fault:
// when the live topology has moved past the lane's plan epoch, the fresh
// rotation's unseen peers (typically the shard's new primary) are appended
// to the lane's rotation so the remaining — and extended — attempts reach
// the shard's current home instead of exhausting retries against a corpse.
// last carries the fresh rotation of the lane's previous consult: when the
// rotation changed again but names only already-known peers (a primary and
// replica swapped roles, or a downed copy came back), the whole fresh
// rotation is appended verbatim, buying the lane one re-wrap through peers
// whose earlier attempts predate the change. An unchanged rotation adds
// nothing, so extensions are bounded by actual topology transitions. It
// returns the extended rotation and how many attempts were added.
func (c *Client) reroutedTargets(batch eval.ScatterBatch, targets []string, last *[]string) ([]string, int) {
	if c.Reroute == nil {
		return targets, 0
	}
	fresh := c.Reroute(batch.Target)
	if len(fresh) == 0 || slices.Equal(fresh, *last) {
		return targets, 0
	}
	*last = slices.Clone(fresh)
	added := 0
	for _, t := range fresh {
		if !slices.Contains(targets, t) {
			targets = append(targets, t)
			added++
		}
	}
	if added == 0 {
		targets = append(targets, fresh...)
		added = len(fresh)
	}
	return targets, added
}

// firstFault tracks the error the lane reports when every attempt failed:
// the fault of the earliest attempt that failed genuinely. Cancellation
// echoes (the dispatcher tearing down the loser of a race, or the whole
// wave aborting) are remembered only as a last resort — a lane must never
// report "context canceled" when a real fault started the failover.
type firstFault struct {
	attempt int
	err     error
	echo    error
}

func (f *firstFault) record(attempt int, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if f.echo == nil {
			f.echo = err
		}
		return
	}
	if f.err == nil || attempt < f.attempt {
		f.attempt, f.err = attempt, err
	}
}

func (f *firstFault) error() error {
	if f.err != nil {
		return f.err
	}
	if f.echo != nil {
		return f.echo
	}
	return fmt.Errorf("xrpc: lane dispatch exhausted its attempts")
}

// attemptOutcome is one attempt's report back to the lane runner.
type attemptOutcome struct {
	attempt int
	replica int
	peer    string
	results []xdm.Sequence
	lane    Lane
	err     error
	wallNS  int64
	sp      trace.SpanRef
}

// attemptKind names an attempt for its span: the first try is the primary,
// later ones are retries (after a fault) or hedges (racing a straggler).
func attemptKind(first, hedge bool) string {
	switch {
	case first:
		return "primary"
	case hedge:
		return "hedge"
	default:
		return "retry"
	}
}

// callLane performs one scatter lane's Bulk RPC under the client's
// RetryPolicy. Without a policy and without replicas it is exactly one
// exchange. Otherwise attempts rotate through the lane's targets: a failed
// attempt is re-issued (after Backoff) to the next one, and when HedgeAfter
// is set a speculative duplicate races any attempt that has not answered in
// time. The first successful attempt wins; every other attempt is cancelled
// and its wall time accounted as the lane's WastedNS. Exchanges already in
// flight over transports without cancellation support run to completion,
// but their results are discarded — duplicated responses are safe because
// peer evaluation is deterministic and only the winner's response is
// gathered.
func (c *Client) callLane(ctx context.Context, x *xq.XRPCExpr, batch eval.ScatterBatch, lsp trace.SpanRef) ([]xdm.Sequence, Lane, error) {
	start := time.Now()
	max := c.Retry.maxAttempts(len(batch.Replicas))
	// A client with a Reroute hook takes the full event loop even for
	// single-attempt lanes: a fault may pull the shard's new home into the
	// rotation, turning what would be a dead lane into a re-dispatch.
	if max <= 1 && c.Reroute == nil {
		asp := lsp.Child("attempt", trace.Str("peer", batch.Target), trace.Str("kind", "primary"))
		results, lane, err := c.callBulkCtx(ctx, batch.Target, x, batch.Iterations, asp)
		asp.EndErr(err)
		if err != nil {
			err = budgetFailure(ctx, err, batch.Target, start)
		} else {
			asp.Set(trace.Bool("winner", true))
		}
		return results, lane, err
	}
	targets := c.dispatchTargets(batch)
	lctx, lcancel := context.WithCancel(ctx)
	defer lcancel()

	outcomes := make(chan attemptOutcome, max)
	starts := make([]time.Time, 0, max)
	launched, outstanding := 0, 0
	retries, hedges := 0, 0
	launch := func(hedge bool) {
		a := launched
		starts = append(starts, time.Now())
		launched++
		outstanding++
		if a > 0 {
			if hedge {
				hedges++
			} else {
				retries++
			}
		}
		// Resolve peer and rotation slot here on the event loop: the rotation
		// may grow under epoch-aware re-dispatch, and the attempt goroutine
		// must not touch the shared slice.
		rot := a % len(targets)
		peer := targets[rot]
		// The attempt goroutine owns its span end-to-end: it may outlive the
		// lane (a cancelled loser over a synchronous transport runs to
		// completion), so nobody else may End it — the winner tag lands
		// post-hoc via Set, which is legal on an ended span.
		asp := lsp.Child("attempt",
			trace.Str("peer", peer),
			trace.Int("replica", int64(replicaIndex(batch, peer))),
			trace.Str("kind", attemptKind(a == 0, hedge)))
		go func() {
			t0 := time.Now()
			results, lane, err := c.callBulkCtx(lctx, peer, x, batch.Iterations, asp)
			asp.EndErr(err)
			outcomes <- attemptOutcome{
				attempt: a, replica: rot, peer: peer,
				results: results, lane: lane, err: err,
				wallNS: time.Since(t0).Nanoseconds(), sp: asp,
			}
		}()
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	armHedge := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		// The trigger is resolved per attempt against the newest attempt's
		// peer: a tracked peer hedges at its own observed P90.
		if d := c.hedgeDelay(targets[(launched-1)%len(targets)]); d > 0 && launched < max {
			timer = time.NewTimer(d)
			timerC = timer.C
		}
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	// A failed attempt schedules its re-issue through retryC instead of
	// sleeping the backoff inline: the event loop keeps draining outcomes
	// while waiting, so a concurrently outstanding hedge's success wins
	// immediately and the pending retry is abandoned.
	var retryTimer *time.Timer
	var retryC <-chan time.Time
	scheduleRetry := func() {
		if launched >= max || lctx.Err() != nil || retryC != nil {
			return
		}
		if d := c.Retry.backoff(); d > 0 {
			retryTimer = time.NewTimer(d)
			retryC = retryTimer.C
			return
		}
		launch(false)
		armHedge()
	}
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()

	fault := &firstFault{}
	loserWall := map[int]int64{}
	var lastFresh []string
	var winner *attemptOutcome
	launch(false)
	armHedge()
	for winner == nil && (outstanding > 0 || retryC != nil) {
		select {
		case o := <-outcomes:
			outstanding--
			if o.err == nil {
				winner = &o
				continue
			}
			fault.record(o.attempt, o.err)
			loserWall[o.attempt] = o.wallNS
			// A deadline expiry is terminal: no replica can answer within a
			// budget that is already spent, so the lane stops failing over
			// instead of burning attempts on work the originator will discard.
			if !isDeadline(o.err) {
				// Epoch-aware re-dispatch: a genuine fault re-consults the live
				// topology — if the shard has moved since this plan's epoch, the
				// new rotation's unseen peers join the lane's rotation and buy
				// the attempts to reach them.
				var added int
				if targets, added = c.reroutedTargets(batch, targets, &lastFresh); added > 0 {
					max += added
				}
				scheduleRetry()
			}
		case <-retryC:
			retryTimer, retryC = nil, nil
			launch(false)
			armHedge()
		case <-timerC:
			launch(true)
			armHedge()
		}
	}
	if winner == nil {
		return nil, Lane{}, budgetFailure(ctx, fault.error(), batch.Target, start)
	}
	// Tear down the losers (cancellation-aware transports abort mid-flight)
	// and charge the lane for the work they burned: completed losers their
	// measured wall time, still-running ones the time since their launch.
	lcancel()
	var wasted int64
	for a := 0; a < launched; a++ {
		if a == winner.attempt {
			continue
		}
		if w, ok := loserWall[a]; ok {
			wasted += w
		} else {
			wasted += time.Since(starts[a]).Nanoseconds()
		}
	}
	winner.sp.Set(trace.Bool("winner", true))
	lane := winner.lane
	lane.Target = batch.Target
	lane.Replica = replicaIndex(batch, winner.peer)
	lane.Retries = retries
	lane.Hedges = hedges
	lane.WastedNS = wasted
	return winner.results, lane, nil
}
