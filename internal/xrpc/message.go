// Package xrpc implements the XRPC protocol of the paper: SOAP request/
// response messages carrying shipped XQuery functions and their parameters
// under three passing semantics — pass-by-value (deep copies, Fig. 1),
// pass-by-fragment (a fragments preamble with fragid/nodeid references,
// Fig. 4), and pass-by-projection (runtime-projected fragments plus a
// projection-paths element steering response projection, Fig. 5) — together
// with Bulk RPC, the client (an eval.RemoteCaller), the server handler, and
// byte-counting transports.
//
// The layer's contract: a Client turns eval's remote-call hooks into wire
// exchanges over any Transport (in-memory, HTTP, or a per-peer router) and
// guarantees that what the evaluator gathers is independent of the wiring —
// faults surface as the same *Fault through every transport, scatter lanes
// keep loop order, streamed dispatch (StreamedClient, chunk frames over a
// StreamTransport) is byte-identical to gather-whole, and under a
// RetryPolicy a lane transparently fails over to replica peers (retry on
// fault, hedge on straggle; retry.go) without changing results. Metrics
// records every exchange, grouped into overlap waves, for the netsim cost
// model.
package xrpc

import (
	"fmt"
	"strconv"
	"strings"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/trace"
	"distxq/internal/xdm"
)

// Semantics selects the parameter-passing semantics of a message exchange.
type Semantics uint8

// The three passing semantics of the paper.
const (
	ByValue Semantics = iota
	ByFragment
	ByProjection
)

func (s Semantics) String() string {
	switch s {
	case ByValue:
		return "by-value"
	case ByFragment:
		return "by-fragment"
	case ByProjection:
		return "by-projection"
	}
	return fmt.Sprintf("Semantics(%d)", uint8(s))
}

// ParseSemantics parses the message attribute form.
func ParseSemantics(s string) (Semantics, error) {
	switch s {
	case "by-value":
		return ByValue, nil
	case "by-fragment":
		return ByFragment, nil
	case "by-projection":
		return ByProjection, nil
	}
	return ByValue, fmt.Errorf("xrpc: unknown semantics %q", s)
}

// Request is the logical content of an XRPC request message. Calls holds one
// entry per Bulk RPC iteration; a plain call has exactly one.
type Request struct {
	Method    string
	Arity     int
	Semantics Semantics
	// Module carries the generated function declaration(s) shipped inline
	// (source text, self-contained).
	Module string
	// Static context propagated to the remote peer (Problem 5 class 1).
	Static eval.StaticContext
	// ResultUsed/ResultReturned are the relative projection paths the remote
	// peer must apply when serializing the response (pass-by-projection).
	ResultUsed     projection.PathSet
	ResultReturned projection.PathSet
	// BudgetNS, when positive, is the originator's remaining query budget in
	// nanoseconds at marshal time. It travels as a relative duration — never
	// an absolute deadline — so propagation needs no clock synchronization:
	// the server re-clocks it from receipt time and aborts evaluation once
	// the budget is spent, reporting a deadline-coded fault.
	BudgetNS int64
	// TraceID/TraceSpan propagate the originator's trace identity: when
	// TraceID is non-zero the server records its own spans (anchored at
	// request arrival) and piggybacks them on the response so the originator
	// can stitch one cross-peer tree. TraceSpan is the client-side attempt
	// span the server's work logically nests under.
	TraceID   uint64
	TraceSpan uint64
	// Calls: per iteration, per parameter, the encoded sequence.
	Calls [][]xdm.Sequence
	// fragDocs holds the decoded fragment documents (server side), so tests
	// can inspect identity preservation.
	fragDocs []*xdm.Document
}

// Response is the logical content of an XRPC response message.
type Response struct {
	Semantics Semantics
	// Results holds one result sequence per call.
	Results []xdm.Sequence
	// ExecNanos reports the server's function-evaluation time, letting the
	// client separate remote-exec from network time in breakdowns.
	ExecNanos int64
	// SerializeNanos reports the server-side (de)serialization time.
	SerializeNanos int64
	// Spans carries the server-side span tree of a traced request, on the
	// peer's own timeline (anchored at request arrival); the originator
	// ingests them under the attempt span that issued the call.
	Spans    []trace.Span
	fragDocs []*xdm.Document
}

// Message framing names. The xdm layer keeps prefixes literal, so these are
// plain string matches.
const (
	elEnvelope   = "env:Envelope"
	elBody       = "env:Body"
	elRequest    = "xrpc:request"
	elResponse   = "xrpc:response"
	elChunk      = "xrpc:chunk"
	elModule     = "xrpc:module"
	elProjPaths  = "xrpc:projection-paths"
	elUsedPath   = "xrpc:used-path"
	elRetPath    = "xrpc:returned-path"
	elFragments  = "xrpc:fragments"
	elFragment   = "xrpc:fragment"
	elCall       = "xrpc:call"
	elSequence   = "xrpc:sequence"
	elAtomic     = "xrpc:atomic-value"
	elElement    = "xrpc:element"
	elAttribute  = "xrpc:attribute"
	elTextNode   = "xrpc:text"
	elCommentEl  = "xrpc:comment"
	elDocumentEl = "xrpc:document"
	// elTrace carries piggybacked server-side spans (JSON text payload) on
	// responses, terminal stream frames, and faults. Parsers that predate it
	// skip unknown children, so the element is backward compatible.
	elTrace = "xrpc:trace"
)

const envelopeOpen = `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope" xmlns:xrpc="http://monetdb.cwi.nl/XQuery">`

// atomTypeName maps atomic types to their lexical message form.
func atomTypeName(t xdm.AtomType) string { return t.String() }

func writeAtomic(sb *strings.Builder, a xdm.Atomic) {
	fmt.Fprintf(sb, `<%s type="%s">%s</%s>`, elAtomic, atomTypeName(a.T),
		escapeText(a.ItemString()), elAtomic)
}

var msgTextEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeText(s string) string { return msgTextEscaper.Replace(s) }

func parseAtomicEl(n *xdm.Node) (xdm.Atomic, error) {
	tname := "xs:string"
	if a := n.Attr("type"); a != nil {
		tname = a.Text
	}
	t, ok := xdm.ParseAtomType(tname)
	if !ok {
		return xdm.Atomic{}, fmt.Errorf("xrpc: unknown atomic type %q", tname)
	}
	s := n.StringValue()
	switch t {
	case xdm.TBoolean:
		return xdm.NewBoolean(s == "true" || s == "1"), nil
	case xdm.TInteger:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return xdm.Atomic{}, fmt.Errorf("xrpc: bad integer %q", s)
		}
		return xdm.NewInteger(i), nil
	case xdm.TDouble:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return xdm.Atomic{}, fmt.Errorf("xrpc: bad double %q", s)
		}
		return xdm.NewDouble(f), nil
	case xdm.TUntyped:
		return xdm.NewUntyped(s), nil
	default:
		return xdm.NewString(s), nil
	}
}

// localName strips a namespace prefix. The xdm parser resolves declared
// prefixes away (encoding/xml semantics), so message decoding matches on
// local names.
func localName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// nameIs compares element names modulo namespace prefix.
func nameIs(n *xdm.Node, want string) bool {
	return localName(n.Name) == localName(want)
}

// childElems returns the element children of n.
func childElems(n *xdm.Node) []*xdm.Node {
	var out []*xdm.Node
	for _, c := range n.Children {
		if c.Kind == xdm.ElementNode {
			out = append(out, c)
		}
	}
	return out
}

func findChild(n *xdm.Node, name string) *xdm.Node {
	for _, c := range n.Children {
		if c.Kind == xdm.ElementNode && nameIs(c, name) {
			return c
		}
	}
	return nil
}

func attrOr(n *xdm.Node, name, def string) string {
	if a := n.Attr(name); a != nil {
		return a.Text
	}
	return def
}
