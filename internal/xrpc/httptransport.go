package xrpc

// This file implements XRPC over HTTP POST — the wire protocol of the
// paper (SOAP request messages sent as synchronous POST requests) — plus
// the streaming variant, which delivers the response as length-prefixed
// chunk frames over a chunked HTTP response body so the originator decodes
// results while the peer is still producing them, and RouteTransport,
// which lets one federation mix in-memory and HTTP peers.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// BudgetHeader duplicates the request message's relative budget (see
// Request.BudgetNS) as an HTTP header, so daemons can make layer-7
// admission decisions — shed on overload, fast-reject an already-expired
// query — without shredding the SOAP body first.
const BudgetHeader = "X-Xrpc-Budget-Ns"

// setBudgetHeader stamps the remaining budget of ctx onto an outgoing
// request; a context without a deadline sends none.
func setBudgetHeader(req *http.Request, ctx context.Context) {
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(BudgetHeader, strconv.FormatInt(time.Until(dl).Nanoseconds(), 10))
	}
}

// headerBudgetExpired reports whether an incoming request declares a budget
// that is already spent — the cheapest possible rejection.
func headerBudgetExpired(r *http.Request) bool {
	h := r.Header.Get(BudgetHeader)
	if h == "" {
		return false
	}
	ns, err := strconv.ParseInt(h, 10, 64)
	return err == nil && ns <= 0
}

// HTTPTransport performs XRPC over HTTP POST. It implements Transport,
// ContextTransport and StreamTransport.
type HTTPTransport struct {
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// URLFor maps a peer name to the gather-whole endpoint URL. The default
	// prepends http:// and appends /xrpc.
	URLFor func(peer string) string
	// StreamURLFor maps a peer name to the streaming endpoint URL. The
	// default appends /stream to URLFor's answer.
	StreamURLFor func(peer string) string
}

var _ Transport = (*HTTPTransport)(nil)
var _ ContextTransport = (*HTTPTransport)(nil)
var _ StreamTransport = (*HTTPTransport)(nil)

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) urlFor(peer string) string {
	if t.URLFor != nil {
		return t.URLFor(peer)
	}
	return "http://" + peer + "/xrpc"
}

func (t *HTTPTransport) streamURLFor(peer string) string {
	if t.StreamURLFor != nil {
		return t.StreamURLFor(peer)
	}
	return t.urlFor(peer) + "/stream"
}

// RoundTrip implements Transport.
func (t *HTTPTransport) RoundTrip(peer string, request []byte) ([]byte, error) {
	return t.RoundTripContext(context.Background(), peer, request)
}

// RoundTripContext implements ContextTransport: cancelling ctx tears down
// the in-flight HTTP exchange.
func (t *HTTPTransport) RoundTripContext(ctx context.Context, peer string, request []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.urlFor(peer), bytes.NewReader(request))
	if err != nil {
		return nil, fmt.Errorf("xrpc: POST to %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/soap+xml")
	setBudgetHeader(req, ctx)
	setTraceHeader(req, ctx)
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("xrpc: POST to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("xrpc: reading response from %s: %w", peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("xrpc: peer %s returned HTTP %d: %s", peer, resp.StatusCode, truncate(body))
	}
	return body, nil
}

// RoundTripStream implements StreamTransport: the peer's streaming endpoint
// answers with a chunked body carrying length-prefixed frames, each decoded
// and delivered to sink as it arrives. Backpressure is the TCP window: a
// sink that blocks stops the read loop, which stops the peer's writes. A
// peer without the streaming endpoint (404/405) degrades to one gather-
// whole exchange delivered as a single frame.
func (t *HTTPTransport) RoundTripStream(ctx context.Context, peer string, request []byte, sink func(frame []byte) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.streamURLFor(peer), bytes.NewReader(request))
	if err != nil {
		return fmt.Errorf("xrpc: POST to %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/soap+xml")
	setBudgetHeader(req, ctx)
	setTraceHeader(req, ctx)
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("xrpc: POST to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		io.Copy(io.Discard, resp.Body)
		whole, err := t.RoundTripContext(ctx, peer, request)
		if err != nil {
			return err
		}
		return sink(whole)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("xrpc: peer %s returned HTTP %d: %s", peer, resp.StatusCode, truncate(body))
	}
	br := bufio.NewReader(resp.Body)
	for {
		frame, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("xrpc: reading stream from %s: %w", peer, err)
		}
		if err := sink(frame); err != nil {
			return err
		}
	}
}

// Frame encoding on a byte stream: ASCII decimal length, '\n', frame bytes.
// (HTTP chunked transfer encoding does not expose chunk boundaries to
// net/http readers, so frames carry their own.)

func writeFrame(w io.Writer, frame []byte) error {
	if _, err := fmt.Fprintf(w, "%d\n", len(frame)); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

func readFrame(br *bufio.Reader) ([]byte, error) {
	header, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && header == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("frame header: %w", err)
	}
	n, err := strconv.Atoi(header[:len(header)-1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("bad frame length %q", header[:len(header)-1])
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, fmt.Errorf("frame body: %w", err)
	}
	return frame, nil
}

// NewHTTPHandler adapts a Handler into an http.Handler serving POST /xrpc.
func NewHTTPHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "xrpc requires POST", http.StatusMethodNotAllowed)
			return
		}
		if headerBudgetExpired(r) {
			w.Header().Set("Content-Type", "application/soap+xml")
			_, _ = w.Write(MarshalFault(fmt.Errorf("xrpc: budget spent before dispatch: %w", ErrDeadlineExceeded)))
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := h.Handle(body)
		if err != nil {
			w.Header().Set("Content-Type", "application/soap+xml")
			w.WriteHeader(http.StatusOK) // faults travel as SOAP messages
			_, _ = w.Write(MarshalFault(err))
			return
		}
		w.Header().Set("Content-Type", "application/soap+xml")
		_, _ = w.Write(resp)
	})
}

// NewStreamHTTPHandler adapts a handler into the streaming endpoint
// (POST /xrpc/stream): response frames leave as they are produced, each
// flushed so the originator sees chunks without buffering delays. A handler
// without streaming support answers with its whole response as one frame;
// errors — upfront or mid-stream — travel as a fault frame.
func NewStreamHTTPHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "xrpc requires POST", http.StatusMethodNotAllowed)
			return
		}
		if headerBudgetExpired(r) {
			w.Header().Set("Content-Type", "application/xrpc-stream")
			_ = writeFrame(w, MarshalFault(fmt.Errorf("xrpc: budget spent before dispatch: %w", ErrDeadlineExceeded)))
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/xrpc-stream")
		flusher, _ := w.(http.Flusher)
		wroteOK := true
		emit := func(frame []byte) error {
			if err := writeFrame(w, frame); err != nil {
				wroteOK = false
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		sh, streams := h.(StreamHandler)
		if !streams {
			resp, err := h.Handle(body)
			if err != nil {
				resp = MarshalFault(err)
			}
			_ = emit(resp)
			return
		}
		if err := sh.HandleStream(body, emit); err != nil && wroteOK {
			_ = emit(MarshalFault(err))
		}
	})
}

// RouteTransport routes each peer name to its own transport, falling back
// to a default for unrouted peers — how an in-process federation reaches
// external HTTP peers. Extension interfaces (ContextTransport,
// StreamTransport) are forwarded per route, degrading gracefully when the
// routed transport lacks them.
type RouteTransport struct {
	// Fallback serves peers without a route; nil means unrouted peers fail.
	Fallback Transport

	mu     sync.RWMutex
	routes map[string]Transport
}

var _ Transport = (*RouteTransport)(nil)
var _ ContextTransport = (*RouteTransport)(nil)
var _ StreamTransport = (*RouteTransport)(nil)

// NewRouteTransport returns a router over the given fallback.
func NewRouteTransport(fallback Transport) *RouteTransport {
	return &RouteTransport{Fallback: fallback, routes: map[string]Transport{}}
}

// Route installs (or replaces) the transport serving one peer name.
func (t *RouteTransport) Route(peer string, transport Transport) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[peer] = transport
}

func (t *RouteTransport) transportFor(peer string) (Transport, error) {
	t.mu.RLock()
	tr, ok := t.routes[peer]
	t.mu.RUnlock()
	if ok {
		return tr, nil
	}
	if t.Fallback != nil {
		return t.Fallback, nil
	}
	return nil, fmt.Errorf("xrpc: no route to peer %q", peer)
}

// RoundTrip implements Transport.
func (t *RouteTransport) RoundTrip(peer string, request []byte) ([]byte, error) {
	tr, err := t.transportFor(peer)
	if err != nil {
		return nil, err
	}
	return tr.RoundTrip(peer, request)
}

// RoundTripContext implements ContextTransport.
func (t *RouteTransport) RoundTripContext(ctx context.Context, peer string, request []byte) ([]byte, error) {
	tr, err := t.transportFor(peer)
	if err != nil {
		return nil, err
	}
	return roundTrip(ctx, tr, peer, request)
}

// RoundTripStream implements StreamTransport; a routed transport without
// streaming degrades to one gather-whole exchange delivered as one frame.
func (t *RouteTransport) RoundTripStream(ctx context.Context, peer string, request []byte, sink func(frame []byte) error) error {
	tr, err := t.transportFor(peer)
	if err != nil {
		return err
	}
	if st, ok := tr.(StreamTransport); ok {
		return st.RoundTripStream(ctx, peer, request, sink)
	}
	whole, err := roundTrip(ctx, tr, peer, request)
	if err != nil {
		return err
	}
	return sink(whole)
}
