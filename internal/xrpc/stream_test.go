package xrpc

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// collectFrames marshals a response into its stream frames.
func collectFrames(t testing.TB, resp *Response, itemsPerChunk int) [][]byte {
	t.Helper()
	var frames [][]byte
	err := MarshalResponseStream(resp, itemsPerChunk, nil, nil, projection.Options{},
		func(frame []byte) error {
			frames = append(frames, append([]byte(nil), frame...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// reassemble parses every frame, validates the lane protocol, and
// reassembles the per-call result sequences.
func reassemble(t testing.TB, frames [][]byte, calls int) []xdm.Sequence {
	t.Helper()
	st := &laneState{expect: calls}
	out := make([]xdm.Sequence, calls)
	for _, frame := range frames {
		ch, err := ParseResponseChunk(frame)
		if err != nil {
			t.Fatalf("parse chunk: %v", err)
		}
		if err := st.accept(ch); err != nil {
			t.Fatalf("accept chunk %d: %v", ch.Seq, err)
		}
		if !ch.Last {
			out[ch.Call] = append(out[ch.Call], ch.Items...)
		}
	}
	if !st.done {
		t.Fatal("stream ended without terminal frame")
	}
	return out
}

// streamTestResponse builds a response with mixed content: atomics of every
// type, fragment-referenced nodes (elements, attributes, text), an empty
// call, and calls of very different sizes.
func streamTestResponse(t testing.TB, sem Semantics, rng *rand.Rand, calls int) *Response {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<lib>")
	n := 5 + rng.Intn(40)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<book id="b%d"><title>T%d &amp; more</title><pages>%d</pages></book>`,
			i, i, 100+i)
	}
	sb.WriteString("</lib>")
	doc, err := xdm.ParseString(sb.String(), "mem://stream-test")
	if err != nil {
		t.Fatal(err)
	}
	var books []*xdm.Node
	doc.Root.WalkDescendants(func(m *xdm.Node) bool {
		if m.Kind == xdm.ElementNode && m.Name == "book" {
			books = append(books, m)
		}
		return true
	})
	resp := &Response{Semantics: sem, ExecNanos: 12345, SerializeNanos: 678}
	for c := 0; c < calls; c++ {
		var s xdm.Sequence
		for len(s) < rng.Intn(2*n) {
			switch rng.Intn(6) {
			case 0:
				s = append(s, xdm.NewInteger(int64(rng.Intn(1000))))
			case 1:
				s = append(s, xdm.NewString(fmt.Sprintf("s<%d>&", rng.Intn(100))))
			case 2:
				s = append(s, xdm.NewBoolean(rng.Intn(2) == 0))
			case 3:
				s = append(s, xdm.NewDouble(float64(rng.Intn(100))/4))
			default:
				b := books[rng.Intn(len(books))]
				if sem != ByValue && rng.Intn(3) == 0 {
					if a := b.Attr("id"); a != nil {
						s = append(s, a)
						continue
					}
				}
				s = append(s, b)
			}
		}
		resp.Results = append(resp.Results, s)
	}
	if calls > 1 {
		resp.Results[rng.Intn(calls)] = xdm.Sequence{} // an empty call
	}
	return resp
}

// TestChunkFramingRoundTripAdversarial: for adversarially small and odd
// split points, the reassembled stream must serialize byte-identically to
// the gather-whole response.
func TestChunkFramingRoundTripAdversarial(t *testing.T) {
	for _, sem := range []Semantics{ByValue, ByFragment} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			calls := 1 + rng.Intn(4)
			resp := streamTestResponse(t, sem, rng, calls)

			whole, err := MarshalResponse(resp, nil, nil, projection.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wholeParsed, err := ParseResponse(whole)
			if err != nil {
				t.Fatal(err)
			}

			maxItems := 0
			for _, s := range resp.Results {
				maxItems = max(maxItems, len(s))
			}
			for per := 1; per <= maxItems+1; per++ {
				frames := collectFrames(t, resp, per)
				got := reassemble(t, frames, calls)
				for c := range got {
					want := serialize(wholeParsed.Results[c])
					if g := serialize(got[c]); g != want {
						t.Fatalf("sem=%v seed=%d per=%d call %d:\n got %q\nwant %q",
							sem, seed, per, c, g, want)
					}
				}
			}
		}
	}
}

// FuzzChunkRoundTrip drives the framing codec with fuzzer-chosen content
// shapes and split points.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add(int64(7), 1, false)
	f.Add(int64(42), 3, true)
	f.Add(int64(99), 1000, false)
	f.Fuzz(func(t *testing.T, seed int64, per int, byValue bool) {
		if per < 1 || per > 10000 {
			t.Skip()
		}
		sem := ByFragment
		if byValue {
			sem = ByValue
		}
		rng := rand.New(rand.NewSource(seed))
		calls := 1 + rng.Intn(5)
		resp := streamTestResponse(t, sem, rng, calls)
		whole, err := MarshalResponse(resp, nil, nil, projection.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wholeParsed, err := ParseResponse(whole)
		if err != nil {
			t.Fatal(err)
		}
		got := reassemble(t, collectFrames(t, resp, per), calls)
		for c := range got {
			if g, w := serialize(got[c]), serialize(wholeParsed.Results[c]); g != w {
				t.Fatalf("per=%d call %d: got %q want %q", per, c, g, w)
			}
		}
	})
}

// TestChunkFrameValidation: protocol violations are rejected, not silently
// reassembled.
func TestChunkFrameValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	resp := streamTestResponse(t, ByValue, rng, 2)
	frames := collectFrames(t, resp, 2)
	if len(frames) < 3 {
		t.Fatalf("fixture too small: %d frames", len(frames))
	}

	check := func(name string, frames [][]byte, wantErr string) {
		t.Helper()
		st := &laneState{expect: 2}
		var err error
		for _, fr := range frames {
			ch, perr := ParseResponseChunk(fr)
			if perr != nil {
				err = perr
				break
			}
			if aerr := st.accept(ch); aerr != nil {
				err = aerr
				break
			}
		}
		if err == nil && !st.done {
			err = fmt.Errorf("stream ended without terminal frame")
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: err = %v, want %q", name, err, wantErr)
		}
	}

	dropped := append([][]byte{}, frames[:1]...)
	dropped = append(dropped, frames[2:]...)
	check("dropped frame", dropped, "out of order")

	swapped := append([][]byte{}, frames...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	check("swapped frames", swapped, "out of order")

	check("missing terminal", frames[:len(frames)-1], "without terminal")

	check("garbage frame", [][]byte{[]byte("<not-xml")}, "malformed")
}

// streamWire wires a streaming client engine to peers over the in-memory
// transport, mirroring wire().
func streamWire(t *testing.T, sem Semantics, peers map[string]*Server) (*eval.Engine, *StreamedClient) {
	t.Helper()
	tr := NewInMemoryTransport()
	for name, srv := range peers {
		tr.Register(name, srv)
	}
	cl := &StreamedClient{Client: &Client{
		Transport: tr,
		Semantics: sem,
		Static:    eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{},
		Metrics:   &Metrics{},
	}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	return eng, cl
}

const interleavedScatterSrc = `
	declare function f($x as xs:string) as item()* { ($x, doc("d.xml")/child::r/child::v) };
	for $p in ("a", "b", "a", "c", "b", "a") return execute at {$p} { f($p) }`

func streamScatterPeers(chunkItems int) map[string]*Server {
	peers := map[string]*Server{}
	for _, name := range []string{"a", "b", "c"} {
		peers[name] = &Server{
			Engine:     eval.NewEngine(mapResolver{"d.xml": "<r><v>" + name + "1</v><v>" + name + "2</v></r>"}),
			ChunkItems: chunkItems,
		}
	}
	return peers
}

// TestStreamedScatterMatchesGather: the streamed dispatch must produce the
// same serialized results as the gather-whole client, for every passing
// semantics and down to single-item chunks, with interleaved multi-call
// lanes. Runs under -race in CI (interleaved multi-lane streaming).
func TestStreamedScatterMatchesGather(t *testing.T) {
	for _, sem := range []Semantics{ByValue, ByFragment, ByProjection} {
		gatherEng, _ := wire(t, sem, streamScatterPeers(0))
		want, err := gatherEng.QueryString(interleavedScatterSrc)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkItems := range []int{1, 2, 0} {
			eng, cl := streamWire(t, sem, streamScatterPeers(chunkItems))
			got, err := eng.QueryString(interleavedScatterSrc)
			if err != nil {
				t.Fatalf("sem=%v chunk=%d: %v", sem, chunkItems, err)
			}
			if g, w := serialize(got), serialize(want); g != w {
				t.Fatalf("sem=%v chunk=%d:\n got %q\nwant %q", sem, chunkItems, g, w)
			}
			s := cl.Metrics.Snapshot()
			if len(s.Waves) != 1 || len(s.Waves[0]) != 3 {
				t.Fatalf("sem=%v chunk=%d: waves %+v, want one wave of 3 lanes", sem, chunkItems, s.Waves)
			}
			for _, lane := range s.Waves[0] {
				if len(lane.Chunks) == 0 {
					t.Fatalf("sem=%v chunk=%d: lane %s has no chunk stats", sem, chunkItems, lane.Peer)
				}
			}
		}
	}
}

// TestStreamedScatterConcurrentSessions exercises interleaved multi-lane
// streaming from several goroutines at once (the -race workout).
func TestStreamedScatterConcurrentSessions(t *testing.T) {
	peers := streamScatterPeers(1)
	gatherEng, _ := wire(t, ByFragment, streamScatterPeers(0))
	want, err := gatherEng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	w := serialize(want)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng, _ := streamWire(t, ByFragment, peers)
			got, err := eng.QueryString(interleavedScatterSrc)
			if err != nil {
				errs <- err
				return
			}
			if g := serialize(got); g != w {
				errs <- fmt.Errorf("got %q want %q", g, w)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamedFaultMidStream: a peer failing on a later call of a streamed
// lane surfaces as a deterministic scatter error after the early calls
// already streamed.
func TestStreamedFaultMidStream(t *testing.T) {
	peers := streamScatterPeers(1)
	peers["b"] = &Server{Engine: eval.NewEngine(nil), ChunkItems: 1} // doc() fails on b
	eng, _ := streamWire(t, ByValue, peers)
	_, err := eng.QueryString(interleavedScatterSrc)
	if err == nil || !strings.Contains(err.Error(), "scatter to b") {
		t.Fatalf("error = %v, want scatter failure naming peer b", err)
	}
}

// TestStreamedUnknownPeer: a transport-level failure on one lane fails the
// query while other lanes stream on.
func TestStreamedUnknownPeer(t *testing.T) {
	peers := streamScatterPeers(1)
	delete(peers, "c")
	eng, _ := streamWire(t, ByValue, peers)
	_, err := eng.QueryString(interleavedScatterSrc)
	if err == nil || !strings.Contains(err.Error(), "scatter to c") {
		t.Fatalf("error = %v, want scatter failure naming peer c", err)
	}
}

// TestStreamedGatherFallback: over a Transport without streaming support the
// StreamedClient degrades to gather-whole exchanges with identical results.
type gatherOnlyTransport struct{ inner *InMemoryTransport }

func (t gatherOnlyTransport) RoundTrip(peer string, req []byte) ([]byte, error) {
	return t.inner.RoundTrip(peer, req)
}

func TestStreamedGatherFallback(t *testing.T) {
	tr := NewInMemoryTransport()
	for name, srv := range streamScatterPeers(1) {
		tr.Register(name, srv)
	}
	gatherEng, _ := wire(t, ByValue, streamScatterPeers(0))
	want, err := gatherEng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	cl := &StreamedClient{Client: &Client{
		Transport: gatherOnlyTransport{tr}, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{},
	}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	got, err := eng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := serialize(got), serialize(want); g != w {
		t.Fatalf("got %q want %q", g, w)
	}
}

// TestStreamedNonStreamingHandler: a StreamTransport whose remote handler
// only gathers (one whole-response frame) still yields correct results.
type handlerOnly struct{ h Handler }

func (h handlerOnly) Handle(req []byte) ([]byte, error) { return h.h.Handle(req) }

func TestStreamedNonStreamingHandler(t *testing.T) {
	tr := NewInMemoryTransport()
	for name, srv := range streamScatterPeers(0) {
		tr.Register(name, handlerOnly{srv}) // hides StreamHandler
	}
	cl := &StreamedClient{Client: &Client{
		Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{},
	}}
	eng := eval.NewEngine(nil)
	eng.Remote = cl
	got, err := eng.QueryString(interleavedScatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	gatherEng, _ := wire(t, ByValue, streamScatterPeers(0))
	want, _ := gatherEng.QueryString(interleavedScatterSrc)
	if g, w := serialize(got), serialize(want); g != w {
		t.Fatalf("got %q want %q", g, w)
	}
}

// scriptedStream replays prebuilt frames, recording how far emission ran
// ahead of consumption.
type scriptedStream struct {
	frames   [][]byte
	emitted  atomic.Int64
	maxAhead atomic.Int64
	consumed *atomic.Int64
}

func (s *scriptedStream) RoundTrip(string, []byte) ([]byte, error) {
	return nil, fmt.Errorf("gather-whole not supported")
}

func (s *scriptedStream) RoundTripStream(ctx context.Context, peer string, req []byte, sink func([]byte) error) error {
	for _, frame := range s.frames {
		n := s.emitted.Add(1)
		if ahead := n - s.consumed.Load(); ahead > s.maxAhead.Load() {
			s.maxAhead.Store(ahead)
		}
		if err := sink(frame); err != nil {
			return err
		}
	}
	return nil
}

// TestStreamBackpressureBounded: with a slow consumer, the producer must
// never run more than the lane buffer (plus the frame in flight) ahead —
// originator peak buffering is bounded by chunks in flight, not by the
// total result size.
func TestStreamBackpressureBounded(t *testing.T) {
	const items, buffer = 64, 2
	resp := &Response{Semantics: ByValue}
	var s xdm.Sequence
	for i := 0; i < items; i++ {
		s = append(s, xdm.NewInteger(int64(i)))
	}
	resp.Results = []xdm.Sequence{s}
	var consumed atomic.Int64
	tr := &scriptedStream{frames: collectFrames(t, resp, 1), consumed: &consumed}

	cl := &StreamedClient{
		Client:       &Client{Transport: tr, Semantics: ByValue, Metrics: &Metrics{}},
		BufferChunks: buffer,
	}
	x := &xq.XRPCExpr{FuncName: "xrpc:f", Body: &xq.Literal{Val: xdm.NewInteger(1)}}
	lanes, cancel := cl.CallRemoteScatterStream(x, []eval.ScatterBatch{
		{Target: "p", Iterations: [][]xdm.Sequence{{}}},
	})
	defer cancel()
	var got xdm.Sequence
	for chunk := range lanes[0] {
		if chunk.Err != nil {
			t.Fatal(chunk.Err)
		}
		time.Sleep(200 * time.Microsecond) // slow consumer
		consumed.Add(1)
		got = append(got, chunk.Items...)
	}
	if len(got) != items {
		t.Fatalf("consumed %d items, want %d", len(got), items)
	}
	// Producer may be ahead by the channel buffer, the chunk blocked in
	// sendChunk, and the frame being decoded.
	if ahead := tr.maxAhead.Load(); ahead > buffer+2 {
		t.Fatalf("producer ran %d frames ahead, want <= %d", ahead, buffer+2)
	}
}

// TestStreamedConsumerAbandon: cancelling the dispatch releases a producer
// blocked on a full lane buffer (no leaked workers).
func TestStreamedConsumerAbandon(t *testing.T) {
	const items = 256
	resp := &Response{Semantics: ByValue}
	var s xdm.Sequence
	for i := 0; i < items; i++ {
		s = append(s, xdm.NewInteger(int64(i)))
	}
	resp.Results = []xdm.Sequence{s}
	var consumed atomic.Int64
	tr := &scriptedStream{frames: collectFrames(t, resp, 1), consumed: &consumed}
	cl := &StreamedClient{
		Client:       &Client{Transport: tr, Semantics: ByValue, Metrics: &Metrics{}},
		BufferChunks: 1,
	}
	x := &xq.XRPCExpr{FuncName: "xrpc:f", Body: &xq.Literal{Val: xdm.NewInteger(1)}}
	lanes, cancel := cl.CallRemoteScatterStream(x, []eval.ScatterBatch{
		{Target: "p", Iterations: [][]xdm.Sequence{{}}},
	})
	<-lanes[0] // one chunk, then walk away
	consumed.Add(1)
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-lanes[0]:
			if !ok {
				return // lane closed: producer exited
			}
		case <-deadline:
			t.Fatal("producer still blocked after cancel")
		}
	}
}

// TestStreamedScatterMoreBatchesThanWorkers is the deadlock regression:
// with more lanes than pool slots and tiny buffers, racy slot acquisition
// let later lanes grab every slot, fill their buffers and block, starving
// the lane the consumer was draining. Ordered admission (lane i waits for
// lane i-width) makes the drained lane always runnable.
func TestStreamedScatterMoreBatchesThanWorkers(t *testing.T) {
	peers := map[string]*Server{}
	var names []string
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("p%d", i)
		peers[name] = &Server{
			Engine:     eval.NewEngine(mapResolver{"d.xml": "<r><v>" + name + "a</v><v>" + name + "b</v><v>" + name + "c</v></r>"}),
			ChunkItems: 1,
		}
		names = append(names, `"`+name+`"`)
	}
	src := fmt.Sprintf(`
	declare function f() as item()* { doc("d.xml")/child::r/child::v };
	for $p in (%s) return execute at {$p} { f() }`, strings.Join(names, ", "))

	tr := NewInMemoryTransport()
	for name, srv := range peers {
		tr.Register(name, srv)
	}
	cl := &StreamedClient{Client: &Client{
		Transport: tr, Semantics: ByValue, Static: eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{}, Metrics: &Metrics{},
		MaxConcurrent: 1,
	}, BufferChunks: 1}
	eng := eval.NewEngine(nil)
	eng.Remote = cl

	donech := make(chan error, 1)
	var res xdm.Sequence
	go func() {
		var err error
		res, err = eng.QueryString(src)
		donech <- err
	}()
	select {
	case err := <-donech:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("streamed scatter deadlocked with more batches than pool slots")
	}
	if got := serialize(res); !strings.HasPrefix(got, "<v>p0a</v> <v>p0b</v> <v>p0c</v> <v>p1a</v>") ||
		!strings.HasSuffix(got, "<v>p9c</v>") {
		t.Fatalf("results out of order: %q", got)
	}
	// 10 lanes through a width-1 pool: waves of one lane each.
	s := cl.Metrics.Snapshot()
	if len(s.Waves) != 10 {
		t.Fatalf("waves = %d, want 10 single-lane waves", len(s.Waves))
	}
}
