package xrpc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/xq"
)

// Deadline propagation over real HTTP: the originator's budget travels as
// the X-Xrpc-Budget-Ns header, the peer re-clocks it at receipt and cuts
// its own evaluation short when it expires — observable in the peer
// engine's DeadlineAborts counter — and the client surfaces a
// *DeadlineError matching ErrDeadlineExceeded, never a bare
// context.Canceled. Gather-whole and streamed paths must behave alike.

// crunchSrc is a remote evaluation that runs far past any test budget (a
// million loop-body evaluations, ~2s of tree-walking), so the peer-side
// abort has to come from the propagated deadline.
const crunchSrc = `
declare function ten() as item()* { (1,2,3,4,5,6,7,8,9,10) };
declare function crunch() as item()* {
  count(for $a in ten() return
        for $b in ten() return
        for $c in ten() return
        for $d in ten() return
        for $e in ten() return
        for $f in ten() return $f)
};
execute at {"a"} { crunch() }`

func deadlineFederation(t *testing.T) (*HTTPTransport, *eval.Engine) {
	t.Helper()
	peerEng := eval.NewEngine(nil)
	tr := httpFederation(t, map[string]*Server{"a": {Engine: peerEng}})
	return tr, peerEng
}

func httpDeadlineClient(tr *HTTPTransport, ctx context.Context) *Client {
	return &Client{
		Transport: tr,
		Semantics: ByFragment,
		Static:    eval.DefaultStatic(),
		Relatives: map[*xq.XRPCExpr]projection.RelativePaths{},
		Metrics:   &Metrics{},
		Context:   ctx,
	}
}

// waitForAbort polls the peer engine until it records the server-side
// deadline abort — the proof the evaluation did not outlive the client's
// budget by running to completion.
func waitForAbort(t *testing.T, peerEng *eval.Engine) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if peerEng.StatsSnapshot().DeadlineAborts >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never aborted the over-budget evaluation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func checkDeadlineFailure(t *testing.T, err error, start time.Time) {
	t.Helper()
	if err == nil {
		t.Fatal("over-budget query succeeded")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error %v does not match ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline failure %v must not match ErrOverloaded", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error %v carries no *DeadlineError", err)
	}
	if de.Peer != "a" {
		t.Errorf("DeadlineError names peer %q, want a", de.Peer)
	}
	if de.Elapsed <= 0 || de.Elapsed > time.Since(start)+time.Second {
		t.Errorf("implausible lane elapsed time %v", de.Elapsed)
	}
}

// TestDeadlinePropagatesOverHTTPGather: gather-whole dispatch, the peer
// tree-walking and compiled — the compiled closure chains must hit the same
// budget checks and record the same typed abort.
func TestDeadlinePropagatesOverHTTPGather(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		tr, peerEng := deadlineFederation(t)
		peerEng.Options.Compile = compiled
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		eng := eval.NewEngine(nil)
		eng.Options.Compile = compiled
		eng.Remote = httpDeadlineClient(tr, ctx)

		start := time.Now()
		res, err := eng.QueryString(crunchSrc)
		checkDeadlineFailure(t, err, start)
		if res != nil {
			t.Errorf("compiled=%v: partial result %v survived a blown budget", compiled, res)
		}
		waitForAbort(t, peerEng)
		cancel()
	}
}

// TestDeadlinePropagatesOverHTTPStreamed: the streamed dispatch path must
// discard partial chunk frames and surface the same typed failure, again in
// both execution modes.
func TestDeadlinePropagatesOverHTTPStreamed(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		tr, peerEng := deadlineFederation(t)
		peerEng.Options.Compile = compiled
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		eng := eval.NewEngine(nil)
		eng.Options.Compile = compiled
		eng.Remote = &StreamedClient{Client: httpDeadlineClient(tr, ctx)}

		start := time.Now()
		res, err := eng.QueryString(crunchSrc)
		checkDeadlineFailure(t, err, start)
		if res != nil {
			t.Errorf("compiled=%v: partial streamed result %v survived a blown budget", compiled, res)
		}
		waitForAbort(t, peerEng)
		cancel()
	}
}

// TestBudgetedQueryWithinDeadlineSucceeds: the budget plumbing must be
// invisible to queries that finish in time.
func TestBudgetedQueryWithinDeadlineSucceeds(t *testing.T) {
	tr, peerEng := deadlineFederation(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	eng := eval.NewEngine(nil)
	eng.Remote = httpDeadlineClient(tr, ctx)

	res, err := eng.QueryString(`
declare function ten() as item()* { (1,2,3,4,5,6,7,8,9,10) };
declare function quick() as item()* { count(for $i in ten() return $i) };
execute at {"a"} { quick() }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "10" {
		t.Errorf("got %q, want 10", got)
	}
	if aborts := peerEng.StatsSnapshot().DeadlineAborts; aborts != 0 {
		t.Errorf("healthy query recorded %d deadline aborts", aborts)
	}
}

// TestBudgetExpiredBeforeDispatch: a budget already spent at dispatch fails
// the lane client-side without an exchange.
func TestBudgetExpiredBeforeDispatch(t *testing.T) {
	tr, _ := deadlineFederation(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	eng := eval.NewEngine(nil)
	eng.Remote = httpDeadlineClient(tr, ctx)

	start := time.Now()
	_, err := eng.QueryString(crunchSrc)
	checkDeadlineFailureNoPeerWait(t, err, start)
}

func checkDeadlineFailureNoPeerWait(t *testing.T, err error, start time.Time) {
	t.Helper()
	if err == nil {
		t.Fatal("spent-budget query succeeded")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error %v does not match ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("spent-budget dispatch took %v, want fast-fail", elapsed)
	}
}

// TestFaultCodeRoundTrip: typed fault codes survive marshalling — the wire
// form every transport shares.
func TestFaultCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
		code     string
	}{
		{fmt.Errorf("eval cut short: %w", ErrDeadlineExceeded), ErrDeadlineExceeded, FaultCodeDeadline},
		{fmt.Errorf("queue full: %w", ErrOverloaded), ErrOverloaded, FaultCodeOverloaded},
	}
	for _, c := range cases {
		_, err := ParseResponse(MarshalFault(c.err))
		if err == nil {
			t.Fatalf("%v round-tripped into success", c.err)
		}
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("parsed error %v is not a *Fault", err)
		}
		if f.Code != c.code {
			t.Errorf("fault code %q, want %q", f.Code, c.code)
		}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("parsed fault %v does not match its sentinel", err)
		}
	}
	// An uncoded fault stays a generic failure matching neither sentinel.
	_, err := ParseResponse(MarshalFault(errors.New("boom")))
	if errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrOverloaded) {
		t.Errorf("generic fault %v matches a typed sentinel", err)
	}
}
