package xrpc

import (
	"fmt"
	"time"

	"distxq/internal/eval"
	"distxq/internal/projection"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Server executes shipped XQuery functions against a peer-local engine and
// serializes responses under the request's passing semantics. It implements
// Handler (gather-whole responses) and StreamHandler (chunked streams).
type Server struct {
	// Engine evaluates shipped functions; its Resolver serves the peer's
	// local documents. Required.
	Engine *eval.Engine
	// Name identifies this peer in the server-side spans it piggybacks on
	// traced responses; empty renders as "remote" in assembled trees.
	Name string
	// ProjOpts tunes response projection.
	ProjOpts projection.Options
	// Metrics, when non-nil, accumulates server-side measurements.
	Metrics *Metrics
	// ChunkItems bounds the result items per frame of streamed responses;
	// zero means DefaultChunkItems.
	ChunkItems int
	// EagerStream disables incremental evaluation for streamed responses:
	// each call is fully materialized before its frames are cut, the
	// pre-incremental behavior. It exists as the baseline the incremental
	// figure and the lazy-vs-eager equivalence tests compare against.
	EagerStream bool
}

var _ Handler = (*Server)(nil)
var _ StreamHandler = (*Server)(nil)

// prepare shreds the request message and compiles the shipped module — the
// common front half of Handle and HandleStream.
func (s *Server) prepare(request []byte) (req *Request, q *xq.Query, static *eval.StaticContext, shredNS int64, err error) {
	if s.Engine == nil {
		return nil, nil, nil, 0, fmt.Errorf("xrpc: server has no engine")
	}
	t0 := time.Now()
	req, err = ParseRequest(request)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	shredNS = time.Since(t0).Nanoseconds()
	q, err = xq.ParseQuery(req.Module + "\n0")
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("xrpc: shipped module does not parse: %w", err)
	}
	// Propagate the caller's static context (Problem 5 class 1): the remote
	// side declares identical values for these context attributes.
	if req.Static != (eval.StaticContext{}) {
		static = &req.Static
	}
	return req, q, static, shredNS, nil
}

// responsePaths returns the projection paths the response serialization
// must apply for this request's semantics.
func responsePaths(req *Request) (used, returned projection.PathSet) {
	if req.Semantics != ByProjection {
		return nil, nil
	}
	used, returned = req.ResultUsed, req.ResultReturned
	if len(returned) == 0 && len(used) == 0 {
		// No projection paths at all: conservatively return the result
		// values whole.
		returned = projection.PathSet{}.Add(projection.Path{})
	}
	return used, returned
}

// serveSpan opens the server-side root span for a traced request, inert for
// untraced ones. The trace anchors at arrival, so server spans sit on the
// peer's own timeline starting near zero and the originator shifts them into
// place at ingest. Shred time — measured before the request's trace identity
// was known — is backfilled as a pre-closed child.
func (s *Server) serveSpan(req *Request, arrival time.Time, name string, shredNS int64) trace.SpanRef {
	if req.TraceID == 0 {
		return trace.SpanRef{}
	}
	peer := s.Name
	if peer == "" {
		peer = "remote"
	}
	tr := trace.NewAt(trace.TraceID(req.TraceID), peer, arrival)
	root := tr.Start(trace.SpanID(req.TraceSpan), name,
		trace.Str("method", req.Method), trace.Int("calls", int64(len(req.Calls))))
	root.Add("shred", 0, shredNS)
	return root
}

// requestDeadline re-clocks the request's relative budget from arrival
// time; the zero time means the request carries no budget.
func requestDeadline(req *Request, arrival time.Time) time.Time {
	if req.BudgetNS <= 0 {
		return time.Time{}
	}
	return arrival.Add(time.Duration(req.BudgetNS))
}

// Handle processes one request message: shred, compile the shipped module,
// evaluate every bulk call, and serialize the response. A request carrying
// a budget is evaluated under the re-clocked deadline: evaluation aborts
// once the originator's budget is spent, and the abort travels back as a
// deadline-coded fault instead of a result nobody is waiting for.
func (s *Server) Handle(request []byte) ([]byte, error) {
	arrival := time.Now()
	req, q, static, shredNS, err := s.prepare(request)
	if err != nil {
		return nil, err
	}
	root := s.serveSpan(req, arrival, "serve", shredNS)
	deadline := requestDeadline(req, arrival)

	t1 := time.Now()
	resp := &Response{Semantics: req.Semantics}
	for _, params := range req.Calls {
		csp := root.Child("call")
		res, err := s.Engine.EvalFunctionDeadline(q, req.Method, params, static, deadline)
		csp.EndErr(err)
		if err != nil {
			err = fmt.Errorf("xrpc: evaluating %s: %w", req.Method, err)
			root.EndErr(err)
			return nil, TracedError(err, root.Trace().ExportSpans())
		}
		resp.Results = append(resp.Results, res)
	}
	resp.ExecNanos = time.Since(t1).Nanoseconds()
	buffered := 0
	for _, res := range resp.Results {
		buffered += len(res)
	}
	// The root must close before marshal so its end time lands inside the
	// exported tree; the marshal cost still reaches the client via serde-ns.
	root.End()
	resp.Spans = root.Trace().ExportSpans()

	t2 := time.Now()
	resultU, resultR := responsePaths(req)
	resp.SerializeNanos = shredNS
	data, err := MarshalResponse(resp, resultU, resultR, s.ProjOpts)
	if err != nil {
		return nil, err
	}
	marshalNS := time.Since(t2).Nanoseconds()
	// The serde figure inside the message must include the marshal time just
	// measured. Instead of re-marshalling the whole response, patch the
	// serde-ns attribute in place: it is written in the response open tag,
	// which precedes any payload bytes, so the first occurrence of the
	// placeholder is always the attribute itself.
	resp.SerializeNanos = shredNS + marshalNS
	data = patchSerdeNS(data, shredNS, resp.SerializeNanos)
	if s.Metrics != nil {
		s.Metrics.Add(&Metrics{
			Requests:      1,
			BytesReceived: int64(len(request)),
			BytesSent:     int64(len(data)),
			RemoteExecNS:  resp.ExecNanos,
			ServerSerdeNS: resp.SerializeNanos,
			// Gather-whole holds every call's full result until marshal.
			PeakBufferedItems: int64(buffered),
		})
	}
	return data, nil
}

// RequestFragmentDocs exposes the decoded fragment documents of a parsed
// request; the semantics tests use it to check identity preservation.
func (r *Request) RequestFragmentDocs() []*xdm.Document { return r.fragDocs }
