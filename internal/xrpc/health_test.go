package xrpc

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"distxq/internal/eval"
)

// fakeClock is a swappable clock for staleness tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker() (*HealthTracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealthTracker()
	h.now = clk.now
	return h, clk
}

func TestHealthEWMA(t *testing.T) {
	h, clk := newTestTracker()
	if _, ok := h.EWMA("p"); ok {
		t.Fatal("EWMA of an unseen peer must not be ok")
	}
	h.Observe("p", 10*time.Millisecond)
	if d, ok := h.EWMA("p"); !ok || d != 10*time.Millisecond {
		t.Fatalf("EWMA after first sample = %v/%v, want 10ms/true", d, ok)
	}
	// alpha 0.2: 0.2*20 + 0.8*10 = 12ms.
	h.Observe("p", 20*time.Millisecond)
	if d, _ := h.EWMA("p"); d != 12*time.Millisecond {
		t.Fatalf("EWMA after second sample = %v, want 12ms", d)
	}
	// A stale peer reports not-ok: its last observation aged out.
	clk.advance(DefaultHealthStaleAfter + time.Second)
	if _, ok := h.EWMA("p"); ok {
		t.Fatal("EWMA of a stale peer must not be ok")
	}
}

func TestHealthHedgeAfterNeedsFreshSamples(t *testing.T) {
	h, clk := newTestTracker()
	for i := 0; i < DefaultHealthMinSamples-1; i++ {
		h.Observe("p", 10*time.Millisecond)
	}
	if _, ok := h.HedgeAfter("p"); ok {
		t.Fatal("hedge trigger set below the fresh-sample floor")
	}
	h.Observe("p", 10*time.Millisecond)
	if d, ok := h.HedgeAfter("p"); !ok || d != 10*time.Millisecond {
		t.Fatalf("HedgeAfter = %v/%v, want 10ms/true", d, ok)
	}
	// Decay: once the samples go stale the tracker declines again and the
	// static policy takes back over.
	clk.advance(DefaultHealthStaleAfter + time.Second)
	if _, ok := h.HedgeAfter("p"); ok {
		t.Fatal("hedge trigger survived sample staleness")
	}
}

func TestHealthHedgeAfterIsP90(t *testing.T) {
	h, _ := newTestTracker()
	// 100 samples 1..100ms: nearest-rank P90 = 90ms.
	for i := 1; i <= 100; i++ {
		h.Observe("p", time.Duration(i)*time.Millisecond)
	}
	// Only the last Window samples are retained (ring of 64): 37..100ms,
	// P90 over those = ceil-ish nearest rank.
	d, ok := h.HedgeAfter("p")
	if !ok {
		t.Fatal("no hedge trigger after 100 samples")
	}
	if d < 85*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("adaptive hedge trigger %v outside the windowed P90 region", d)
	}
	if q, _ := h.Quantile("p", 0.5); q >= d {
		t.Fatalf("P50 %v not below hedge trigger %v", q, d)
	}
}

func TestHealthRankSpreadsAndDemotes(t *testing.T) {
	h, _ := newTestTracker()
	targets := []string{"a", "b", "c"}
	// Unknown peers are all healthy: Rank rotates deterministically by seq.
	if got := h.Rank(targets, 0); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("seq 0: %v", got)
	}
	if got := h.Rank(targets, 1); !reflect.DeepEqual(got, []string{"b", "c", "a"}) {
		t.Fatalf("seq 1: %v", got)
	}
	// Same seq, same tracker state, same answer.
	if got := h.Rank(targets, 1); !reflect.DeepEqual(got, []string{"b", "c", "a"}) {
		t.Fatalf("seq 1 not deterministic: %v", got)
	}
	// A slow peer (EWMA beyond 1.5x best) is demoted behind the healthy.
	h.Observe("a", 10*time.Millisecond)
	h.Observe("b", 100*time.Millisecond)
	if got := h.Rank(targets, 0); !reflect.DeepEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("slow demotion: %v", got)
	}
	// A faulting peer is demoted; a success clears the streak.
	h.ObserveFault("a")
	if got := h.Rank(targets, 0); !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Fatalf("fault demotion: %v", got)
	}
	h.Observe("a", 10*time.Millisecond)
	if got := h.Rank(targets, 0); !reflect.DeepEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("fault recovery: %v", got)
	}
	// All unhealthy: the original failover order comes back rather than an
	// empty rotation.
	h.ObserveFault("a")
	h.ObserveFault("b")
	h.ObserveFault("c")
	if got := h.Rank(targets, 0); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("all-unhealthy fallback: %v", got)
	}
}

// TestDispatchTargetsSpread: replica spreading is opt-in, deterministic in
// lane sequence, and always a permutation of the canonical primary-first
// list — Lane.Replica provenance depends on that.
func TestDispatchTargetsSpread(t *testing.T) {
	batch := eval.ScatterBatch{Target: "p", Replicas: []string{"r1", "r2"}}
	canonical := []string{"p", "r1", "r2"}

	// Default policy: primary-first, no rotation.
	cl := &Client{Retry: &RetryPolicy{}}
	for i := 0; i < 3; i++ {
		if got := cl.dispatchTargets(batch); !reflect.DeepEqual(got, canonical) {
			t.Fatalf("no-spread dispatch %d: %v", i, got)
		}
	}

	// SpreadReplicas without a tracker: round-robin rotation by lane seq.
	cl = &Client{Retry: &RetryPolicy{SpreadReplicas: true}}
	want := [][]string{
		{"p", "r1", "r2"},
		{"r1", "r2", "p"},
		{"r2", "p", "r1"},
		{"p", "r1", "r2"},
	}
	for i, w := range want {
		if got := cl.dispatchTargets(batch); !reflect.DeepEqual(got, w) {
			t.Fatalf("spread lane %d = %v, want %v", i, got, w)
		}
	}

	// With a tracker, rotation runs over the health ranking; the result is
	// still a permutation of the canonical list and replicaIndex maps every
	// winner back to its canonical position.
	h, _ := newTestTracker()
	h.ObserveFault("p")
	cl = &Client{Retry: &RetryPolicy{SpreadReplicas: true}, Health: h}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		got := cl.dispatchTargets(batch)
		if len(got) != len(canonical) {
			t.Fatalf("lane %d: %v is not a permutation of %v", i, got, canonical)
		}
		perm := map[string]bool{}
		for _, p := range got {
			perm[p] = true
		}
		for _, p := range canonical {
			if !perm[p] {
				t.Fatalf("lane %d: %v dropped target %s", i, got, p)
			}
		}
		if got[len(got)-1] != "p" {
			t.Errorf("lane %d: faulting primary %v not demoted in %v", i, "p", got)
		}
		seen[fmt.Sprint(got)] = true
	}
	for i, p := range canonical {
		if idx := replicaIndex(batch, p); idx != i {
			t.Errorf("replicaIndex(%s) = %d, want %d", p, idx, i)
		}
	}
}
