package trace

import "sync"

// Ring is the bounded in-memory store behind /debug/traces: the N most
// recent traces plus the K slowest ever seen, so a burst of fast queries
// cannot evict the tail-latency evidence. It stores live *Trace references
// and snapshots lazily at read time — loser attempts of a hedge race may
// still be closing their spans when the query returns, and a dump taken
// later sees the completed tree.
type Ring struct {
	mu      sync.Mutex
	recent  []*Trace
	next    int
	filled  bool
	slowest []slowEntry // sorted by duration, slowest first
	keep    int
}

// slowEntry caches the duration seen at Add time, so insertion never has to
// re-snapshot the held traces — Add sits on every traced query's exit path.
type slowEntry struct {
	t *Trace
	d int64
}

// DefaultRingSize bounds the recent-trace ring when size is zero.
const DefaultRingSize = 32

// defaultSlowest bounds the slowest-trace list.
const defaultSlowest = 8

// NewRing returns a ring keeping the given number of recent traces (zero
// means DefaultRingSize) plus the 8 slowest.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{recent: make([]*Trace, size), keep: defaultSlowest}
}

// Add records a finished query's trace.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	d := t.ExtentNS()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent[r.next] = t
	r.next = (r.next + 1) % len(r.recent)
	if r.next == 0 {
		r.filled = true
	}
	// Insert into the slowest list (small, linear is fine).
	pos := len(r.slowest)
	for i, s := range r.slowest {
		if d > s.d {
			pos = i
			break
		}
	}
	if pos < r.keep {
		r.slowest = append(r.slowest, slowEntry{})
		copy(r.slowest[pos+1:], r.slowest[pos:])
		r.slowest[pos] = slowEntry{t: t, d: d}
		if len(r.slowest) > r.keep {
			r.slowest = r.slowest[:r.keep]
		}
	}
}

// Dump snapshots the ring: recent traces newest-first, then the slowest.
type Dump struct {
	Recent  []*Recorded `json:"recent"`
	Slowest []*Recorded `json:"slowest"`
}

// Dump returns a point-in-time snapshot of every held trace.
func (r *Ring) Dump() *Dump {
	if r == nil {
		return &Dump{}
	}
	r.mu.Lock()
	var live []*Trace
	n := len(r.recent)
	if !r.filled {
		n = r.next
	}
	for i := 1; i <= n; i++ {
		live = append(live, r.recent[(r.next-i+len(r.recent))%len(r.recent)])
	}
	slow := append([]slowEntry(nil), r.slowest...)
	r.mu.Unlock()
	d := &Dump{}
	for _, t := range live {
		d.Recent = append(d.Recent, t.Snapshot())
	}
	for _, s := range slow {
		d.Slowest = append(d.Slowest, s.t.Snapshot())
	}
	return d
}

// Last returns the most recently added trace, nil when empty — how the
// figure harness pulls the trace of the query it just ran.
func (r *Ring) Last() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := (r.next - 1 + len(r.recent)) % len(r.recent)
	return r.recent[i]
}
