// Package trace implements the per-query distributed tracing model: one
// Trace per query holding a tree of spans (admission, planning, compile,
// scatter dispatch, per-lane attempts, stream frames, remote server work),
// identified by a TraceID that travels on the XRPC wire so remote peers'
// server-side spans can be stitched back into the originator's tree.
//
// The layer's contract: tracing must cost nothing when off. Every
// instrumentation point holds a SpanRef by value; the zero SpanRef (nil
// trace) turns Start/End/Set/Event into branch-predictable no-ops, so the
// hot path pays one nil check per span site — benchmarked in this package.
// When on, a Trace is safe for concurrent use (scatter lanes and hedged
// attempts record spans from many goroutines), spans may be annotated after
// they end (winner/loser tags are only known once the race settles), and
// every started span must End exactly once — OpenSpans/DoubleEnds expose
// the leak check the invariant tests enforce.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query's trace across every peer it touches.
type TraceID uint64

// SpanID identifies one span within a trace. IDs are allocated locally per
// Trace; Ingest remaps remote IDs into the local space.
type SpanID uint64

// Attr is one typed span attribute: a string or an int64 (booleans encode
// as 0/1 ints). The flat struct keeps span recording allocation-light —
// no map, no interface boxing.
type Attr struct {
	Key string `json:"k"`
	Str string `json:"s,omitempty"`
	Int int64  `json:"i,omitempty"`
}

// Str returns a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int returns an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val} }

// Bool returns a boolean attribute (encoded as 0/1).
func Bool(key string, val bool) Attr {
	var i int64
	if val {
		i = 1
	}
	return Attr{Key: key, Int: i}
}

// Span is one recorded operation. Times are nanoseconds relative to the
// owning Trace's anchor (monotonic on one process; Ingest shifts remote
// spans into the originator's timeline). EndNS < StartNS means still open.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Peer names the process that recorded the span; empty means the trace
	// owner itself.
	Peer    string `json:"peer,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Error   string `json:"error,omitempty"`
}

// DurationNS returns the span's duration, zero while open.
func (s *Span) DurationNS() int64 {
	if s.EndNS < s.StartNS {
		return 0
	}
	return s.EndNS - s.StartNS
}

// Attr returns the value of a named attribute and whether it is present.
func (s *Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Trace is one query's span tree. Safe for concurrent use.
type Trace struct {
	id     TraceID
	peer   string
	anchor time.Time

	mu    sync.Mutex
	spans []Span
	// Span IDs are allocated densely in append order — span id occupies slot
	// id-1 forever — so completed spans can still be annotated (winner/loser
	// tags land after the race settles) without an ID-to-slot map.
	open   int
	nextID SpanID
	// doubleEnds counts End calls on already-ended spans — always a bug,
	// surfaced by the invariant tests instead of silently clobbering times.
	doubleEnds int
}

// traceSeq seeds derived trace IDs so two daemons started the same
// nanosecond still diverge.
var traceSeq atomic.Uint64

// New creates a trace anchored at the current time. id zero derives a
// process-unique one.
func New(id TraceID, peer string) *Trace {
	return NewAt(id, peer, time.Now())
}

// NewAt creates a trace with an explicit anchor — servers anchor at request
// arrival so their spans start near zero on their own timeline.
func NewAt(id TraceID, peer string, anchor time.Time) *Trace {
	if id == 0 {
		id = TraceID(uint64(anchor.UnixNano())<<16 | (traceSeq.Add(1) & 0xffff))
	}
	// Pre-size for a typical server-side trace; originator trees grow once
	// or twice. Span-slice churn is the dominant tracing allocation cost.
	return &Trace{id: id, peer: peer, anchor: anchor, spans: make([]Span, 0, 8)}
}

// slot returns the span's index in t.spans, -1 when unknown. Callers hold
// t.mu. The dense-ID invariant: every allocation path (Start, add, Ingest)
// takes nextID++ and appends in the same order.
func (t *Trace) slot(id SpanID) int {
	i := int(id) - 1
	if i < 0 || i >= len(t.spans) {
		return -1
	}
	return i
}

// ID returns the trace identifier.
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// now returns nanoseconds since the anchor (monotonic).
func (t *Trace) now() int64 { return time.Since(t.anchor).Nanoseconds() }

// Start opens a span under parent (zero parent = a root span) and returns
// its ref. Nil traces return the inert zero ref.
func (t *Trace) Start(parent SpanID, name string, attrs ...Attr) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	now := t.now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name, Peer: t.peer,
		StartNS: now, EndNS: -1, Attrs: copyAttrs(attrs),
	})
	t.open++
	t.mu.Unlock()
	return SpanRef{t: t, id: id}
}

// OpenSpans returns the number of started-but-not-ended spans — zero once a
// query's trace is fully assembled (the leak check).
func (t *Trace) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// DoubleEnds returns how many spans were ended more than once (always a
// bug; the invariant tests assert zero).
func (t *Trace) DoubleEnds() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doubleEnds
}

// Recorded is an immutable snapshot of a trace, the unit the ring stores
// views of and the exporters consume.
type Recorded struct {
	ID         TraceID `json:"trace_id"`
	Peer       string  `json:"peer"`
	DurationNS int64   `json:"duration_ns"`
	OpenSpans  int     `json:"open_spans"`
	Spans      []Span  `json:"spans"`
}

// Snapshot copies the trace's current state. Duration is the latest span
// end (or start, for open spans) — the assembled tree's extent.
func (t *Trace) Snapshot() *Recorded {
	if t == nil {
		return &Recorded{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &Recorded{ID: t.id, Peer: t.peer, OpenSpans: t.open}
	r.Spans = make([]Span, len(t.spans))
	copy(r.Spans, t.spans)
	for i := range r.Spans {
		r.Spans[i].Attrs = append([]Attr(nil), r.Spans[i].Attrs...)
		if ns := r.Spans[i].EndNS; ns > r.DurationNS {
			r.DurationNS = ns
		}
		if ns := r.Spans[i].StartNS; ns > r.DurationNS {
			r.DurationNS = ns
		}
	}
	return r
}

// ExtentNS returns the trace's current extent — the latest span end (or
// start, for open spans) — without copying any spans. The ring uses it to
// order traces by duration without paying a Snapshot per insertion.
func (t *Trace) ExtentNS() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d int64
	for i := range t.spans {
		if ns := t.spans[i].EndNS; ns > d {
			d = ns
		}
		if ns := t.spans[i].StartNS; ns > d {
			d = ns
		}
	}
	return d
}

// SpanRef is a value handle to one span of a trace. The zero SpanRef is the
// disabled recorder: every method is a cheap no-op, so instrumentation
// points never branch on a separate "tracing on?" flag.
type SpanRef struct {
	t  *Trace
	id SpanID
}

// Active reports whether the ref records anywhere.
func (r SpanRef) Active() bool { return r.t != nil }

// TraceID returns the owning trace's ID, zero when inert.
func (r SpanRef) TraceID() TraceID { return r.t.ID() }

// SpanID returns the span's ID, zero when inert.
func (r SpanRef) SpanID() SpanID {
	if r.t == nil {
		return 0
	}
	return r.id
}

// Trace returns the owning trace (nil when inert).
func (r SpanRef) Trace() *Trace { return r.t }

// Child opens a span under this one.
func (r SpanRef) Child(name string, attrs ...Attr) SpanRef {
	if r.t == nil {
		return SpanRef{}
	}
	return r.t.Start(r.id, name, attrs...)
}

// End closes the span at the current time. Ending twice is recorded as a
// bug (DoubleEnds) and leaves the first end time intact.
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	now := r.t.now()
	r.t.mu.Lock()
	if i := r.t.slot(r.id); i >= 0 {
		if r.t.spans[i].EndNS >= r.t.spans[i].StartNS {
			r.t.doubleEnds++
		} else {
			r.t.spans[i].EndNS = now
			r.t.open--
		}
	}
	r.t.mu.Unlock()
}

// EndErr closes the span, tagging it with err when non-nil.
func (r SpanRef) EndErr(err error) {
	if r.t == nil {
		return
	}
	if err != nil {
		r.SetError(err)
	}
	r.End()
}

// SetError tags the span with an error without ending it.
func (r SpanRef) SetError(err error) {
	if r.t == nil || err == nil {
		return
	}
	msg := err.Error()
	r.t.mu.Lock()
	if i := r.t.slot(r.id); i >= 0 {
		r.t.spans[i].Error = msg
	}
	r.t.mu.Unlock()
}

// Set appends attributes to the span — legal after End, which is how
// winner/loser and wasted-time tags land once a hedge race settles.
func (r SpanRef) Set(attrs ...Attr) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	if i := r.t.slot(r.id); i >= 0 {
		r.t.spans[i].Attrs = append(r.t.spans[i].Attrs, attrs...)
	}
	r.t.mu.Unlock()
}

// Event records an instantaneous child span (start == end) — stream frame
// arrivals use it.
func (r SpanRef) Event(name string, attrs ...Attr) {
	if r.t == nil {
		return
	}
	now := r.t.now()
	r.add(Span{Parent: r.id, Name: name, StartNS: now, EndNS: now, Attrs: attrs})
}

// Add records a completed child span with explicit times (relative to the
// trace anchor) — how servers backfill work measured before the trace
// object existed, and how the simulation builds deterministic trees.
func (r SpanRef) Add(name string, startNS, endNS int64, attrs ...Attr) SpanRef {
	if r.t == nil {
		return SpanRef{}
	}
	return r.add(Span{Parent: r.id, Name: name, StartNS: startNS, EndNS: endNS, Attrs: attrs})
}

// copyAttrs detaches the variadic attr slice so callers' argument slices
// never escape — the disabled fast path must stay allocation-free. The two
// spare slots absorb the Set calls that tag spans after the fact (winner
// marks, lane provenance) without a second allocation.
func copyAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	return append(make([]Attr, 0, len(attrs)+2), attrs...)
}

// add records one pre-closed span under the trace.
func (r SpanRef) add(s Span) SpanRef {
	t := r.t
	s.Attrs = copyAttrs(s.Attrs)
	t.mu.Lock()
	t.nextID++
	s.ID = t.nextID
	if s.Peer == "" {
		s.Peer = t.peer
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return SpanRef{t: t, id: s.ID}
}

// StartNS returns the span's recorded start time, -1 when inert.
func (r SpanRef) StartNS() int64 {
	if r.t == nil {
		return -1
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	if i := r.t.slot(r.id); i >= 0 {
		return r.t.spans[i].StartNS
	}
	return -1
}

// Ingest grafts remote spans under this span: every remote ID is remapped
// into the local space (preserving the remote tree's internal parentage),
// remote roots — spans whose parent is not among the ingested set — are
// reparented to this span, and all times shift by offsetNS, mapping the
// remote anchor onto the local timeline. Open remote spans ingest as
// zero-duration at their start (a peer that died mid-span cannot report an
// end).
func (r SpanRef) Ingest(spans []Span, offsetNS int64) {
	if r.t == nil || len(spans) == 0 {
		return
	}
	t := r.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if need := len(t.spans) + len(spans); cap(t.spans) < need {
		grown := make([]Span, len(t.spans), need)
		copy(grown, t.spans)
		t.spans = grown
	}
	// Remote IDs are almost always dense 1..n in order (the remote side
	// allocates them that way); the fast path remaps by offset alone.
	base := t.nextID
	dense := true
	for i, s := range spans {
		if s.ID != SpanID(i+1) {
			dense = false
			break
		}
	}
	var remote map[SpanID]SpanID
	if !dense {
		remote = make(map[SpanID]SpanID, len(spans))
		for _, s := range spans {
			t.nextID++
			remote[s.ID] = t.nextID
		}
	} else {
		t.nextID += SpanID(len(spans))
	}
	mapID := func(id SpanID) (SpanID, bool) {
		if dense {
			if id >= 1 && id <= SpanID(len(spans)) {
				return base + id, true
			}
			return 0, false
		}
		p, ok := remote[id]
		return p, ok
	}
	for _, s := range spans {
		ns := s
		ns.ID, _ = mapID(s.ID)
		if p, ok := mapID(s.Parent); ok {
			ns.Parent = p
		} else {
			ns.Parent = r.id
		}
		ns.StartNS += offsetNS
		if ns.EndNS < s.StartNS { // still open on the remote side
			ns.EndNS = ns.StartNS
		} else {
			ns.EndNS += offsetNS
		}
		t.spans = append(t.spans, ns)
	}
}

// IngestRemote is Ingest with the clock-offset policy applied: the remote
// spans (anchored at the peer's request arrival) are centered inside this
// span's elapsed window — offset = start + (elapsed - remoteExtent)/2,
// clamped to the span's start — splitting the network time symmetrically
// around the server work, which is the best a one-exchange estimate can do
// without clock synchronization.
func (r SpanRef) IngestRemote(spans []Span) {
	if r.t == nil || len(spans) == 0 {
		return
	}
	var extent int64
	for _, s := range spans {
		if s.EndNS > extent {
			extent = s.EndNS
		}
	}
	start := r.StartNS()
	if start < 0 {
		start = 0
	}
	offset := start
	if slack := r.t.now() - start - extent; slack > 0 {
		offset += slack / 2
	}
	r.Ingest(spans, offset)
}

// bareToken reports whether s can travel unquoted: nonempty, no spaces, no
// quoting metacharacters, no control bytes. Span names, peer names, and attr
// keys virtually always qualify, which keeps the payload small — every quote
// the wire avoids is six bytes of &quot; after XML escaping.
func bareToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '\\' || c == 0x7f {
			return false
		}
	}
	return true
}

// appendString appends s as a bare token when possible, Go-quoted otherwise.
// The empty string — most Error fields, every int attr's Str — encodes as
// the one-byte sentinel '-' (a literal "-" falls back to quoting).
func appendString(buf []byte, s string) []byte {
	if s == "" {
		return append(buf, '-')
	}
	if s != "-" && bareToken(s) {
		return append(buf, s...)
	}
	return strconv.AppendQuote(buf, s)
}

// EncodeSpans renders spans in a compact line format for wire piggybacking:
// one span per line of space-separated fields, strings bare when safe and
// Go-quoted otherwise. The format is hand-rolled because it sits on every
// traced response's hot path — reflection-based JSON decoding alone cost
// more than all other span bookkeeping of a scatter query combined.
func EncodeSpans(spans []Span) ([]byte, error) {
	buf := append(make([]byte, 0, 64*len(spans)+8), "v1\n"...)
	for i := range spans {
		s := &spans[i]
		buf = strconv.AppendUint(buf, uint64(s.ID), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(s.Parent), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.StartNS, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.EndNS, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(len(s.Attrs)), 10)
		buf = append(buf, ' ')
		buf = appendString(buf, s.Name)
		buf = append(buf, ' ')
		buf = appendString(buf, s.Peer)
		buf = append(buf, ' ')
		buf = appendString(buf, s.Error)
		for _, a := range s.Attrs {
			buf = append(buf, ' ')
			buf = appendString(buf, a.Key)
			buf = append(buf, ' ')
			buf = appendString(buf, a.Str)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, a.Int, 10)
		}
		buf = append(buf, '\n')
	}
	return buf, nil
}

// spanScanner walks one EncodeSpans payload field by field.
type spanScanner struct{ rest string }

func (sc *spanScanner) skipSpace() {
	for len(sc.rest) > 0 && (sc.rest[0] == ' ' || sc.rest[0] == '\n') {
		sc.rest = sc.rest[1:]
	}
}

func (sc *spanScanner) intField() (int64, error) {
	sc.skipSpace()
	i := 0
	for i < len(sc.rest) && sc.rest[i] != ' ' && sc.rest[i] != '\n' {
		i++
	}
	v, err := strconv.ParseInt(sc.rest[:i], 10, 64)
	sc.rest = sc.rest[i:]
	return v, err
}

func (sc *spanScanner) strField() (string, error) {
	sc.skipSpace()
	if len(sc.rest) > 0 && sc.rest[0] == '"' {
		q, err := strconv.QuotedPrefix(sc.rest)
		if err != nil {
			return "", err
		}
		sc.rest = sc.rest[len(q):]
		return strconv.Unquote(q)
	}
	i := 0
	for i < len(sc.rest) && sc.rest[i] != ' ' && sc.rest[i] != '\n' {
		i++
	}
	if i == 0 {
		return "", fmt.Errorf("missing string field")
	}
	tok := sc.rest[:i]
	sc.rest = sc.rest[i:]
	if tok == "-" {
		return "", nil
	}
	return tok, nil
}

// DecodeSpans parses EncodeSpans output.
func DecodeSpans(data []byte) ([]Span, error) {
	const header = "v1\n"
	s := string(data)
	if len(s) < len(header) || s[:len(header)] != header {
		return nil, fmt.Errorf("trace: unknown span encoding")
	}
	sc := &spanScanner{rest: s[len(header):]}
	lines := 0
	for i := 0; i < len(sc.rest); i++ {
		if sc.rest[i] == '\n' {
			lines++
		}
	}
	spans := make([]Span, 0, lines)
	for sc.skipSpace(); len(sc.rest) > 0; sc.skipSpace() {
		var sp Span
		var nattrs int64
		var err error
		var id, parent int64
		if id, err = sc.intField(); err == nil {
			sp.ID = SpanID(id)
			if parent, err = sc.intField(); err == nil {
				sp.Parent = SpanID(parent)
			}
		}
		if err == nil {
			sp.StartNS, err = sc.intField()
		}
		if err == nil {
			sp.EndNS, err = sc.intField()
		}
		if err == nil {
			nattrs, err = sc.intField()
		}
		if err == nil {
			sp.Name, err = sc.strField()
		}
		if err == nil {
			sp.Peer, err = sc.strField()
		}
		if err == nil {
			sp.Error, err = sc.strField()
		}
		if err != nil {
			return nil, fmt.Errorf("trace: bad span encoding: %w", err)
		}
		if nattrs < 0 || nattrs > int64(len(sc.rest)) {
			return nil, fmt.Errorf("trace: bad span attr count %d", nattrs)
		}
		if nattrs > 0 {
			sp.Attrs = make([]Attr, 0, nattrs)
		}
		for j := int64(0); j < nattrs; j++ {
			var a Attr
			if a.Key, err = sc.strField(); err == nil {
				if a.Str, err = sc.strField(); err == nil {
					a.Int, err = sc.intField()
				}
			}
			if err != nil {
				return nil, fmt.Errorf("trace: bad span attr encoding: %w", err)
			}
			sp.Attrs = append(sp.Attrs, a)
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// ExportSpans snapshots the trace's spans for piggybacking on a response.
// Unlike Snapshot it shares the attr slices with the live trace — callers
// must be done annotating (a server exports only after ending its root).
func (t *Trace) ExportSpans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}
