package trace

import "encoding/json"

// This file exports a Recorded trace in the Chrome trace-event format
// (chrome://tracing, Perfetto's legacy JSON loader): one complete ("X")
// event per span with microsecond timestamps, processes keyed by peer so
// server-side spans render as their own track group, and threads keyed so
// concurrent lane attempts stack instead of overlapping.

// chromeEvent is one trace-event entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeTraceJSON renders a recorded trace as a Chrome trace-event JSON
// document. Each distinct span Peer becomes a process (with a process_name
// metadata record); within a process, spans stack on the thread of their
// nearest lane/attempt ancestor so hedged attempts of one lane render as
// parallel tracks instead of overdrawing each other.
func ChromeTraceJSON(rec *Recorded) ([]byte, error) {
	pids := map[string]int{}
	pidOrder := []string{}
	pid := func(peer string) int {
		if peer == "" {
			peer = rec.Peer
		}
		if p, ok := pids[peer]; ok {
			return p
		}
		p := len(pids) + 1
		pids[peer] = p
		pidOrder = append(pidOrder, peer)
		return p
	}
	byID := map[SpanID]*Span{}
	for i := range rec.Spans {
		byID[rec.Spans[i].ID] = &rec.Spans[i]
	}
	// Thread assignment: walk ancestors; the nearest "attempt" span keys a
	// distinct thread (per attempt ordinal), else the nearest "lane" span,
	// else thread 0. Ordinals are assigned in span-record order, which is
	// start order, so numbering is deterministic.
	laneOrd := map[SpanID]int{}
	attemptOrd := map[SpanID]int{}
	for i := range rec.Spans {
		s := &rec.Spans[i]
		switch s.Name {
		case "lane":
			laneOrd[s.ID] = len(laneOrd)
		case "attempt":
			attemptOrd[s.ID] = len(attemptOrd)
		}
	}
	tid := func(s *Span) int {
		for cur := s; cur != nil; cur = byID[cur.Parent] {
			if o, ok := attemptOrd[cur.ID]; ok {
				return 200 + o
			}
			if o, ok := laneOrd[cur.ID]; ok {
				return 100 + o
			}
			if cur.Parent == 0 {
				break
			}
		}
		return 0
	}
	f := &chromeFile{TraceEvents: []chromeEvent{}}
	for i := range rec.Spans {
		s := &rec.Spans[i]
		args := map[string]any{}
		for _, a := range s.Attrs {
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Int
			}
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		if len(args) == 0 {
			args = nil
		}
		ev := chromeEvent{
			Name: s.Name,
			TS:   float64(s.StartNS) / 1e3,
			PID:  pid(s.Peer),
			TID:  tid(s),
			Args: args,
		}
		if s.EndNS > s.StartNS {
			ev.Ph = "X"
			ev.Dur = float64(s.EndNS-s.StartNS) / 1e3
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	for _, peer := range pidOrder {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pids[peer],
			Args: map[string]any{"name": peer},
		})
	}
	return json.MarshalIndent(f, "", "  ")
}
