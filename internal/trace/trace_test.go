package trace

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSpanLifecycle covers the basic start/end bookkeeping: open counts
// fall to zero, parentage records, attributes land, and post-End Set still
// annotates (the winner-tag path).
func TestSpanLifecycle(t *testing.T) {
	tr := New(0, "origin")
	if tr.ID() == 0 {
		t.Fatal("derived trace ID is zero")
	}
	root := tr.Start(0, "query", Int("budget_ns", 5))
	child := root.Child("plan", Str("cache", "miss"))
	if tr.OpenSpans() != 2 {
		t.Fatalf("open = %d, want 2", tr.OpenSpans())
	}
	child.End()
	child.Set(Bool("winner", true)) // post-end annotation must land
	root.EndErr(errors.New("boom"))
	if tr.OpenSpans() != 0 {
		t.Fatalf("open = %d, want 0", tr.OpenSpans())
	}
	rec := tr.Snapshot()
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	q, p := rec.Spans[0], rec.Spans[1]
	if q.Name != "query" || p.Name != "plan" || p.Parent != q.ID {
		t.Fatalf("tree wrong: %+v", rec.Spans)
	}
	if q.Error != "boom" {
		t.Fatalf("root error = %q", q.Error)
	}
	if a, ok := p.Attr("winner"); !ok || a.Int != 1 {
		t.Fatalf("post-end Set lost: %+v", p.Attrs)
	}
	if p.EndNS < p.StartNS || q.EndNS < p.EndNS {
		t.Fatalf("times not monotone: %+v", rec.Spans)
	}
}

// TestDoubleEndDetected: ending a span twice is recorded as a bug and does
// not clobber the first end time or the open count.
func TestDoubleEndDetected(t *testing.T) {
	tr := New(7, "x")
	s := tr.Start(0, "a")
	s.End()
	end1 := tr.Snapshot().Spans[0].EndNS
	s.End()
	if tr.DoubleEnds() != 1 {
		t.Fatalf("doubleEnds = %d, want 1", tr.DoubleEnds())
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("open = %d after double end", tr.OpenSpans())
	}
	if got := tr.Snapshot().Spans[0].EndNS; got != end1 {
		t.Fatalf("second End moved the end time: %d -> %d", end1, got)
	}
}

// TestNilFastPath: the zero SpanRef and nil Trace are inert through every
// method — the disabled-tracing contract.
func TestNilFastPath(t *testing.T) {
	var r SpanRef
	if r.Active() {
		t.Fatal("zero SpanRef claims active")
	}
	c := r.Child("x", Int("i", 1))
	c.End()
	c.EndErr(errors.New("e"))
	c.Set(Str("k", "v"))
	c.SetError(errors.New("e"))
	c.Event("ev")
	c.Add("a", 0, 1)
	c.Ingest([]Span{{ID: 1, Name: "s"}}, 0)
	c.IngestRemote([]Span{{ID: 1, Name: "s"}})
	if c.TraceID() != 0 || c.SpanID() != 0 || c.Trace() != nil || c.StartNS() != -1 {
		t.Fatal("zero SpanRef leaked state")
	}
	var tr *Trace
	if tr.ID() != 0 || tr.OpenSpans() != 0 || tr.ExportSpans() != nil {
		t.Fatal("nil Trace leaked state")
	}
	if s := tr.Start(0, "x"); s.Active() {
		t.Fatal("nil Trace started a live span")
	}
}

// TestIngestRemapsAndReparents: remote spans keep their internal tree shape
// under fresh local IDs, remote roots hang off the ingesting span, and
// times shift by the offset. An open remote span ingests as zero-duration.
func TestIngestRemapsAndReparents(t *testing.T) {
	tr := New(1, "origin")
	attempt := tr.Start(0, "attempt")
	remote := []Span{
		{ID: 1, Parent: 0, Name: "serve", Peer: "peer1", StartNS: 0, EndNS: 100},
		{ID: 2, Parent: 1, Name: "call", Peer: "peer1", StartNS: 10, EndNS: 90},
		{ID: 3, Parent: 1, Name: "hung", Peer: "peer1", StartNS: 50, EndNS: -1},
	}
	attempt.Ingest(remote, 1000)
	rec := tr.Snapshot()
	if len(rec.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(rec.Spans))
	}
	var serve, call, hung *Span
	for i := range rec.Spans {
		switch rec.Spans[i].Name {
		case "serve":
			serve = &rec.Spans[i]
		case "call":
			call = &rec.Spans[i]
		case "hung":
			hung = &rec.Spans[i]
		}
	}
	if serve.Parent != attempt.SpanID() {
		t.Fatalf("remote root not reparented: %+v", serve)
	}
	if call.Parent != serve.ID {
		t.Fatalf("internal parentage lost: call.Parent=%d serve.ID=%d", call.Parent, serve.ID)
	}
	if serve.StartNS != 1000 || serve.EndNS != 1100 || call.StartNS != 1010 {
		t.Fatalf("offset not applied: %+v %+v", serve, call)
	}
	if hung.EndNS != hung.StartNS {
		t.Fatalf("open remote span should ingest zero-duration: %+v", hung)
	}
	// Remapping must keep every span ID unique in the local space.
	seen := map[SpanID]bool{}
	for _, s := range rec.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID after ingest: %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestIngestRemoteCentersOffset: remote spans land inside the attempt's
// window, never before the attempt started.
func TestIngestRemoteCentersOffset(t *testing.T) {
	tr := New(1, "origin")
	attempt := tr.Start(0, "attempt")
	time.Sleep(2 * time.Millisecond)
	attempt.IngestRemote([]Span{{ID: 1, Name: "serve", Peer: "p", StartNS: 0, EndNS: 1000}})
	attempt.End()
	rec := tr.Snapshot()
	var serve, att *Span
	for i := range rec.Spans {
		if rec.Spans[i].Name == "serve" {
			serve = &rec.Spans[i]
		}
		if rec.Spans[i].Name == "attempt" {
			att = &rec.Spans[i]
		}
	}
	if serve.StartNS < att.StartNS {
		t.Fatalf("remote span starts before the attempt: %d < %d", serve.StartNS, att.StartNS)
	}
	if serve.EndNS > att.EndNS {
		t.Fatalf("remote span ends after the attempt: %d > %d", serve.EndNS, att.EndNS)
	}
}

// TestEncodeDecodeSpans round-trips the wire encoding.
func TestEncodeDecodeSpans(t *testing.T) {
	in := []Span{
		{ID: 1, Name: "serve", Peer: "p1", StartNS: 5, EndNS: 10,
			Attrs: []Attr{Str("method", "f1"), Int("calls", 3), Bool("ok", true)}},
		{ID: 2, Parent: 1, Name: "call", StartNS: 6, EndNS: 9, Error: "nope"},
	}
	data, err := EncodeSpans(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "serve" || out[1].Error != "nope" {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if a, ok := out[0].Attr("calls"); !ok || a.Int != 3 {
		t.Fatalf("attrs lost: %+v", out[0].Attrs)
	}
}

// TestConcurrentRecording hammers one trace from many goroutines — the
// pattern of a hedged scatter — and checks the books balance (run with
// -race in CI).
func TestConcurrentRecording(t *testing.T) {
	tr := New(0, "origin")
	root := tr.Start(0, "query")
	var wg sync.WaitGroup
	const lanes, attempts = 8, 4
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			lane := root.Child("lane", Int("l", int64(l)))
			var aw sync.WaitGroup
			for a := 0; a < attempts; a++ {
				aw.Add(1)
				go func(a int) {
					defer aw.Done()
					sp := lane.Child("attempt", Int("a", int64(a)))
					sp.Event("frame", Int("bytes", 10))
					sp.EndErr(nil)
					sp.Set(Bool("winner", a == 0))
				}(a)
			}
			aw.Wait()
			lane.End()
		}(l)
	}
	wg.Wait()
	root.End()
	if tr.OpenSpans() != 0 || tr.DoubleEnds() != 0 {
		t.Fatalf("open=%d doubleEnds=%d", tr.OpenSpans(), tr.DoubleEnds())
	}
	rec := tr.Snapshot()
	want := 1 + lanes + lanes*attempts*2 // root + lanes + (attempt+frame) each
	if len(rec.Spans) != want {
		t.Fatalf("spans = %d, want %d", len(rec.Spans), want)
	}
}

// TestRing: recency order, slowest retention, and Last.
func TestRing(t *testing.T) {
	r := NewRing(3)
	mk := func(id TraceID, d int64) *Trace {
		tr := New(id, "x")
		root := tr.Start(0, "query")
		root.Add("work", 0, d)
		root.End()
		return tr
	}
	slow := mk(99, 1_000_000_000)
	r.Add(slow)
	for i := 1; i <= 5; i++ {
		r.Add(mk(TraceID(i), int64(i)))
	}
	d := r.Dump()
	if len(d.Recent) != 3 {
		t.Fatalf("recent = %d, want 3", len(d.Recent))
	}
	if d.Recent[0].ID != 5 || d.Recent[1].ID != 4 || d.Recent[2].ID != 3 {
		t.Fatalf("recent order wrong: %v %v %v", d.Recent[0].ID, d.Recent[1].ID, d.Recent[2].ID)
	}
	if len(d.Slowest) == 0 || d.Slowest[0].ID != 99 {
		t.Fatalf("slowest trace evicted: %+v", d.Slowest)
	}
	if r.Last().ID() != 5 {
		t.Fatalf("Last = %v, want 5", r.Last().ID())
	}
}

// TestChromeExport: the exporter's output is valid JSON in the trace-event
// shape — every span becomes an event, peers become processes, and hedged
// attempts land on distinct threads.
func TestChromeExport(t *testing.T) {
	tr := New(42, "origin")
	root := tr.Start(0, "query")
	lane := root.Child("lane")
	a0 := lane.Child("attempt")
	a0.Ingest([]Span{{ID: 1, Name: "serve", Peer: "peer1", StartNS: 0, EndNS: 50}}, 10)
	a0.End()
	a1 := lane.Child("attempt")
	a1.Event("frame", Int("bytes", 128))
	a1.End()
	lane.End()
	root.End()
	data, err := ChromeTraceJSON(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	pids := map[int]bool{}
	tids := map[string][]int{}
	var metaNames []string
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			metaNames = append(metaNames, ev.Args["name"].(string))
			continue
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		pids[ev.PID] = true
		tids[ev.Name] = append(tids[ev.Name], ev.TID)
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 processes (origin + peer1), got %d", len(pids))
	}
	if len(metaNames) != 2 {
		t.Fatalf("want 2 process_name records, got %v", metaNames)
	}
	if a := tids["attempt"]; len(a) != 2 || a[0] == a[1] {
		t.Fatalf("attempts share a thread: %v", a)
	}
}

// BenchmarkSpanDisabled measures the nil-recorder fast path: the cost
// tracing adds to an instrumented call site when tracing is off. This is
// the near-zero-cost contract — a handful of nil checks, no allocation.
func BenchmarkSpanDisabled(b *testing.B) {
	var root SpanRef
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := root.Child("lane", Str("target", "p"))
		sp.Set(Bool("winner", true))
		sp.EndErr(nil)
	}
}

// BenchmarkSpanEnabled is the same site with a live trace, for the
// overhead table in DESIGN.md.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(0, "bench")
	root := tr.Start(0, "query")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("lane", Str("target", "p"))
		sp.Set(Bool("winner", true))
		sp.EndErr(nil)
	}
}
