package eval

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// streamFake implements StreamCaller: it evaluates shipped bodies locally
// like fakeRemote and yields each iteration's result split into chunks of
// splitAt items, optionally failing configured peers after a configured
// number of good iterations.
type streamFake struct {
	fakeRemote
	mu        sync.Mutex // fakeRemote counts calls; lanes run concurrently
	splitAt   int
	failPeers map[string]int // peer -> iterations delivered before failing
	cancelled bool
	// misbehave switches the fake into protocol-violation mode.
	skipIteration bool
}

func (f *streamFake) CallRemoteScatterStream(x *xq.XRPCExpr, batches []ScatterBatch) ([]<-chan StreamChunk, func()) {
	lanes := make([]<-chan StreamChunk, len(batches))
	for b, batch := range batches {
		ch := make(chan StreamChunk, 2)
		lanes[b] = ch
		go func(batch ScatterBatch, ch chan StreamChunk) {
			defer close(ch)
			failAfter, fails := -1, false
			if n, ok := f.failPeers[batch.Target]; ok {
				failAfter, fails = n, true
			}
			for it, params := range batch.Iterations {
				if fails && it >= failAfter {
					ch <- StreamChunk{Err: fmt.Errorf("peer %s down", batch.Target)}
					return
				}
				if f.skipIteration && it == 1 {
					continue // protocol violation: iteration never mentioned
				}
				f.mu.Lock()
				res, err := f.fakeRemote.CallRemoteBulk(batch.Target, x, [][]xdm.Sequence{params})
				f.mu.Unlock()
				if err != nil {
					ch <- StreamChunk{Err: err}
					return
				}
				items := res[0]
				split := f.splitAt
				if split <= 0 {
					split = 1
				}
				sent := false
				for len(items) > 0 {
					n := min(split, len(items))
					ch <- StreamChunk{Iteration: it, Items: items[:n]}
					items = items[n:]
					sent = true
				}
				if !sent {
					ch <- StreamChunk{Iteration: it, Items: nil}
				}
			}
		}(batch, ch)
	}
	return lanes, func() { f.cancelled = true }
}

func TestStreamScatterReassemblesLoopOrder(t *testing.T) {
	for _, split := range []int{1, 2, 100} {
		fake := &streamFake{splitAt: split}
		e := NewEngine(nil)
		e.Remote = fake
		res, err := e.QueryString(scatterSrc)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(res); got != "a b a c b a" {
			t.Errorf("split %d: results must reassemble in loop order, got %q", split, got)
		}
		if !fake.cancelled {
			t.Errorf("split %d: consumer must release the dispatch via cancel()", split)
		}
		st := e.StatsSnapshot()
		if st.StreamedWaves != 1 || st.ScatterWaves != 1 {
			t.Errorf("split %d: stats = %+v, want one streamed scatter wave", split, st)
		}
		e.ResetDocCache()
	}
}

// TestStreamScatterSplitsItemRuns: a single iteration whose result spans
// many chunks must concatenate byte-identically.
func TestStreamScatterSplitsItemRuns(t *testing.T) {
	fake := &streamFake{splitAt: 1}
	e := NewEngine(nil)
	e.Remote = fake
	res, err := e.QueryString(`
	declare function f() as item()* { (1, 2, 3, 4, 5) };
	for $p in ("a") return execute at {$p} { f() }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "1 2 3 4 5" {
		t.Errorf("item runs must concatenate in order, got %q", got)
	}
}

func TestStreamScatterEmptyIteration(t *testing.T) {
	fake := &streamFake{splitAt: 2}
	e := NewEngine(nil)
	e.Remote = fake
	res, err := e.QueryString(`
	declare function f($x as xs:string) as item()* { if ($x = "b") then () else $x };
	for $p in ("a", "b", "a") return execute at {$p} { f($p) }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "a a" {
		t.Errorf("empty iterations must vanish in place, got %q", got)
	}
}

// TestStreamScatterErrorDeterministic: the reported failure is the lane
// whose earliest unfinished loop iteration comes first, and the dispatch is
// always released via cancel().
func TestStreamScatterErrorDeterministic(t *testing.T) {
	for i := 0; i < 25; i++ {
		fake := &streamFake{splitAt: 1, failPeers: map[string]int{"b": 0, "c": 0}}
		e := NewEngine(nil)
		e.Remote = fake
		_, err := e.QueryString(scatterSrc)
		if err == nil || !strings.Contains(err.Error(), "scatter to b") {
			t.Fatalf("error = %v, want failure naming peer b (first failing loop position)", err)
		}
		if !fake.cancelled {
			t.Fatal("error path must release the dispatch via cancel()")
		}
	}
}

// TestStreamScatterMidLaneFailure: a lane that fails after delivering some
// iterations surfaces its error when the loop reaches the failed iteration.
func TestStreamScatterMidLaneFailure(t *testing.T) {
	fake := &streamFake{splitAt: 1, failPeers: map[string]int{"a": 2}}
	e := NewEngine(nil)
	e.Remote = fake
	_, err := e.QueryString(scatterSrc) // "a" appears at loop positions 0, 2, 5
	if err == nil || !strings.Contains(err.Error(), "scatter to a") {
		t.Fatalf("error = %v, want failure naming peer a", err)
	}
}

func TestStreamScatterSkippedIterationRejected(t *testing.T) {
	fake := &streamFake{splitAt: 1, skipIteration: true}
	e := NewEngine(nil)
	e.Remote = fake
	_, err := e.QueryString(scatterSrc)
	if err == nil || !strings.Contains(err.Error(), "skipped") {
		t.Fatalf("error = %v, want skipped-iteration protocol error", err)
	}
}
