package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// evalEager runs a query through the eager evaluator only, bypassing the
// lazy paths that Engine.Query now routes through — the reference for the
// lazy-vs-eager equivalence checks.
func evalEager(e *Engine, src string) (xdm.Sequence, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	ctx := e.newContext(q.Funcs)
	return ctx.eval(q.Body)
}

// evalLazy pulls the same query through QuerySeq item by item.
func evalLazy(e *Engine, src string) (xdm.Sequence, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	s, err := e.QuerySeq(q)
	if err != nil {
		return nil, err
	}
	return s.Materialize()
}

// lazyEquivQueries covers both the streaming cases (downward final steps,
// filters, FLWOR bodies, sequence construction) and the materializing
// fallbacks (last(), reverse axes, order by, //-desugared overlapping
// contexts, node-set operators, aggregates).
var lazyEquivQueries = []string{
	`doc("people.xml")/people/person`,
	`doc("people.xml")/people/person/name`,
	`doc("people.xml")/people/person/@id`,
	`doc("people.xml")/people/person[age > 40]/name`,
	`doc("people.xml")/people/person[2]`,
	`doc("people.xml")/people/person[position() > 1]/name`,
	`doc("people.xml")/people/person[last()]`,
	`doc("people.xml")//name`,
	`doc("people.xml")/descendant::name`,
	`doc("people.xml")/people/person/descendant-or-self::node()`,
	`doc("people.xml")/people/person/name/parent::person`,
	`doc("people.xml")/people/person[1]/following-sibling::person`,
	`for $p in doc("people.xml")/people/person return $p/name`,
	`for $p in doc("people.xml")/people/person return ($p/@id, $p/age)`,
	`for $p in doc("people.xml")/people/person order by $p/name descending return $p/name`,
	`for $p in doc("people.xml")/people/person where $p/age < 48 return $p/name`,
	`let $ps := doc("people.xml")/people/person return ($ps[1], $ps[3])`,
	`if (count(doc("people.xml")/people/person) > 2) then "many" else "few"`,
	`(1, 2, doc("people.xml")/people/person/age, "end")`,
	`(doc("people.xml")/people/person/name | doc("people.xml")/people/person/age)`,
	`count(doc("people.xml")/people/person)`,
	`doc("people.xml")/people/person/name/text()`,
	`(doc("people.xml")/people/person)[position() mod 2 = 1]/name`,
	`for $p in doc("people.xml")/people/person
	   for $q in doc("people.xml")/people/person
	   return ($p/@id, $q/@id)`,
	`doc("people.xml")/people/person[name = "Bob"]/age`,
	`some $p in doc("people.xml")/people/person satisfies $p/age > 48`,
	`typeswitch (doc("people.xml")/people/person) case $n as node()+ return $n[1]/name default return "none"`,
}

func TestLazyEagerEquivalence(t *testing.T) {
	for _, src := range lazyEquivQueries {
		eagerEng := NewEngine(peopleDocs)
		want, wantErr := evalEager(eagerEng, src)
		lazyEng := NewEngine(peopleDocs)
		got, gotErr := evalLazy(lazyEng, src)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("query %s: eager err %v, lazy err %v", src, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if serialize(want) != serialize(got) {
			t.Errorf("query %s\n eager: %s\n lazy:  %s", src, serialize(want), serialize(got))
		}
	}
}

// TestLazyEagerEquivalenceRandomized fuzzes the equivalence over generated
// documents: random trees, random downward paths with positional and value
// predicates, loops and sequence construction. Identical serialization is
// required — laziness must change when items are produced, never which.
func TestLazyEagerEquivalenceRandomized(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		var gen func(depth int)
		gen = func(depth int) {
			name := names[rng.Intn(len(names))]
			fmt.Fprintf(&sb, `<%s id="%d">`, name, rng.Intn(20))
			if depth < 4 {
				for i, kids := 0, rng.Intn(4); i < kids; i++ {
					gen(depth + 1)
				}
			}
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "t%d", rng.Intn(10))
			}
			fmt.Fprintf(&sb, `</%s>`, name)
		}
		sb.WriteString("<root>")
		for i := 0; i < 6; i++ {
			gen(0)
		}
		sb.WriteString("</root>")
		docs := mapResolver{"r.xml": sb.String()}

		steps := []string{
			"a", "b", "c", "*", "descendant::a", "descendant-or-self::b",
			"a[@id > 9]", "b[2]", "c[position() >= 1]", "*[last()]",
			"@id", "text()", "node()", "descendant::*[@id < 5]",
		}
		for qi := 0; qi < 40; qi++ {
			path := `doc("r.xml")/root`
			for s, n := 0, 1+rng.Intn(3); s < n; s++ {
				path += "/" + steps[rng.Intn(len(steps))]
			}
			src := path
			switch rng.Intn(4) {
			case 0:
				src = fmt.Sprintf(`for $x in %s return ($x, "|")`, path)
			case 1:
				src = fmt.Sprintf(`(%s, count(%s))`, path, path)
			case 2:
				src = fmt.Sprintf(`let $v := %s return $v[position() mod 2 = 1]`, path)
			}
			want, wantErr := evalEager(NewEngine(docs), src)
			got, gotErr := evalLazy(NewEngine(docs), src)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d query %s: eager err %v, lazy err %v", seed, src, wantErr, gotErr)
			}
			if wantErr == nil && serialize(want) != serialize(got) {
				t.Fatalf("seed %d query %s\n eager: %s\n lazy:  %s", seed, src, serialize(want), serialize(got))
			}
		}
	}
}

// TestQuerySeqIsLazy proves items are produced before evaluation completes:
// the second half of the sequence would divide by zero, but pulling only the
// first item never evaluates it.
func TestQuerySeqIsLazy(t *testing.T) {
	e := NewEngine(peopleDocs)
	q, err := xq.ParseQuery(`(doc("people.xml")/people/person/name, 1 div 0)`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.QuerySeq(q)
	if err != nil {
		t.Fatal(err)
	}
	var first xdm.Item
	if err := s(func(it xdm.Item) bool {
		first = it
		return false // stop after one item
	}); err != nil {
		t.Fatalf("pulling one item should not reach the failing tail: %v", err)
	}
	if first == nil || first.ItemString() != "Ann" {
		t.Fatalf("first item = %v, want Ann", first)
	}
	// Draining the same query does hit the error.
	if _, err := evalLazy(NewEngine(peopleDocs), `(doc("people.xml")/people/person/name, 1 div 0)`); err == nil {
		t.Fatal("materializing should surface the division error")
	}
}

// TestQuerySeqForLoopStreams verifies FLWOR laziness: the loop body of a
// later iteration is not evaluated when the consumer stops early (the body
// would error on the iteration bound to "boom").
func TestQuerySeqForLoopStreams(t *testing.T) {
	docs := mapResolver{"d.xml": `<r><x>1</x><x>2</x><x>0</x></r>`}
	e := NewEngine(docs)
	q, err := xq.ParseQuery(`for $x in doc("d.xml")/r/x return 10 idiv $x`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.QuerySeq(q)
	if err != nil {
		t.Fatal(err)
	}
	var got xdm.Sequence
	if err := s(func(it xdm.Item) bool {
		got = append(got, it)
		return len(got) < 2
	}); err != nil {
		t.Fatalf("first two iterations should stream cleanly: %v", err)
	}
	if serialize(got) != "10 5" {
		t.Fatalf("got %q, want \"10 5\"", serialize(got))
	}
	if _, err := e.Query(q); err == nil {
		t.Fatal("draining all iterations should fail on the third")
	}
}

// TestLazyDeadlineAbortsMidStream: the deadline cuts a streamed walk after a
// prefix — ErrDeadlineExceeded surfaces at the pull site and the abort is
// counted in Stats.
func TestLazyDeadlineAbortsMidStream(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&sb, "<x>%d</x>", i)
	}
	sb.WriteString("</r>")
	e := NewEngine(mapResolver{"big.xml": sb.String()})
	q, err := xq.ParseQuery(`doc("big.xml")/r/x`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.QuerySeq(q)
	if err != nil {
		t.Fatal(err)
	}
	// Arm the deadline after parsing: it must trip during the streamed walk.
	e.Deadline = time.Now()
	s, err = e.QuerySeq(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = s(func(xdm.Item) bool {
		n++
		return true
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded after %d items, got %v", n, err)
	}
	if e.StatsSnapshot().DeadlineAborts == 0 {
		t.Fatal("deadline abort not counted in Stats")
	}
}

// TestEvalFunctionSeqDeadlineStreams: the server entry point streams a
// declared function's result — early stop leaves the failing tail unreached.
func TestEvalFunctionSeqDeadlineStreams(t *testing.T) {
	src := `declare function local:f($d as item()*) { (doc("people.xml")/people/person/name, 1 div 0) }; 1`
	q, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(peopleDocs)
	s, err := e.EvalFunctionSeqDeadline(q, "local:f", []xdm.Sequence{{xdm.NewInteger(1)}}, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	var got xdm.Sequence
	if err := s(func(it xdm.Item) bool {
		got = append(got, it)
		return len(got) < 3
	}); err != nil {
		t.Fatalf("streaming the three names should not reach the failing tail: %v", err)
	}
	if serialize(got) != "<name>Ann</name> <name>Bob</name> <name>Cyd</name>" {
		t.Fatalf("got %s", serialize(got))
	}
	// Draining past the names hits the error, after the valid prefix.
	s, err = e.EvalFunctionSeqDeadline(q, "local:f", []xdm.Sequence{{xdm.NewInteger(1)}}, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	err = s(func(it xdm.Item) bool {
		got = append(got, it)
		return true
	})
	if err == nil {
		t.Fatal("draining should surface the division error")
	}
	if len(got) != 3 {
		t.Fatalf("error should follow the 3-item prefix, got %d items", len(got))
	}
}

// TestCallDeclaredSeqTypeChecks: constrained return types still enforce, both
// the occurrence fallback and the per-item streaming check.
func TestCallDeclaredSeqTypeChecks(t *testing.T) {
	src := `declare function local:one($d as item()*) as element() { doc("people.xml")/people/person };
	        declare function local:nodes($d as item()*) as element()* { (doc("people.xml")/people/person, "oops") }; 1`
	q, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(peopleDocs)
	s, err := e.EvalFunctionSeqDeadline(q, "local:one", []xdm.Sequence{{xdm.NewInteger(1)}}, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize(); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("occurrence violation not caught: %v", err)
	}
	s, err = e.EvalFunctionSeqDeadline(q, "local:nodes", []xdm.Sequence{{xdm.NewInteger(1)}}, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize(); err == nil || !strings.Contains(err.Error(), "does not match type") {
		t.Fatalf("item type violation not caught: %v", err)
	}
}
