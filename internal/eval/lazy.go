package eval

// Pull-based lazy evaluation. evalSeq is the lazy twin of context.eval: it
// returns an xdm.Seq whose items are produced on demand, so a consumer (most
// importantly the streaming XRPC server) can ship the first items of a result
// while the rest is still being computed, and peak buffering stays bounded by
// what the consumer holds rather than by the result size.
//
// The laziness contract, also documented in DESIGN.md:
//
//   - Sequence construction (a, b), let, if/else, typeswitch and FLWOR bodies
//     without order-by stream: items of earlier parts/iterations are yielded
//     before later parts are evaluated.
//   - The final step of a path streams when it provably preserves distinct
//     document order without a sort barrier: a downward axis (child,
//     attribute, self, descendant, descendant-or-self) over context nodes
//     that are already in document order with disjoint subtrees, or a filter
//     step. Predicates stream positionally — they may call position() but not
//     last(), which needs the full candidate count.
//   - Everything else — sorting (order by), reverse axes, node-set operators,
//     aggregates, overlapping path contexts — materializes exactly as the
//     eager evaluator does, then replays. Laziness never changes the produced
//     items, only when they are produced.
//
// Deadlines keep working mid-stream: every producer consults the shared
// stopCheck as it runs, so a deadline abort surfaces at the pull site as
// ErrDeadlineExceeded after a (valid) prefix of the result.

import (
	"fmt"
	"strings"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// QuerySeq normalizes a parsed query and returns its result as a lazy
// sequence. Nothing is evaluated until the sequence is pulled.
func (e *Engine) QuerySeq(q *xq.Query) (xdm.Seq, error) {
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	ctx := e.newContext(q.Funcs)
	if e.Options.Compile {
		p, err := e.program(q)
		if err != nil {
			return nil, err
		}
		return p.runSeq(ctx), nil
	}
	return ctx.evalSeq(q.Body), nil
}

// evalSeq returns a pull-based view of e. Expressions with a natural
// streaming order get dedicated lazy cases; everything else defers to the
// eager evaluator and replays its result, so the two paths cannot diverge on
// semantics — only on when work happens.
func (c *context) evalSeq(e xq.Expr) xdm.Seq {
	switch v := e.(type) {
	case nil:
		return xdm.EmptySeq()
	case *xq.SeqExpr:
		return func(yield func(xdm.Item) bool) error {
			if err := c.stop.check(); err != nil {
				return err
			}
			stopped := false
			for _, part := range v.Items {
				err := c.evalSeq(part)(func(it xdm.Item) bool {
					if !yield(it) {
						stopped = true
						return false
					}
					return true
				})
				if err != nil {
					return err
				}
				if stopped {
					return nil
				}
			}
			return nil
		}
	case *xq.LetExpr:
		return func(yield func(xdm.Item) bool) error {
			if err := c.stop.check(); err != nil {
				return err
			}
			bound, err := c.eval(v.Bind)
			if err != nil {
				return err
			}
			return c.bind(v.Var, bound).evalSeq(v.Return)(yield)
		}
	case *xq.IfExpr:
		return func(yield func(xdm.Item) bool) error {
			if err := c.stop.check(); err != nil {
				return err
			}
			cond, err := c.eval(v.Cond)
			if err != nil {
				return err
			}
			b, ok := cond.EffectiveBoolean()
			if !ok {
				return fmt.Errorf("eval: invalid effective boolean value in if condition")
			}
			if b {
				return c.evalSeq(v.Then)(yield)
			}
			return c.evalSeq(v.Else)(yield)
		}
	case *xq.TypeswitchExpr:
		return func(yield func(xdm.Item) bool) error {
			if err := c.stop.check(); err != nil {
				return err
			}
			op, err := c.eval(v.Operand)
			if err != nil {
				return err
			}
			for _, cs := range v.Cases {
				if checkSeqType(op, cs.Type) == nil {
					cc := c
					if cs.Var != "" {
						cc = c.bind(cs.Var, op)
					}
					return cc.evalSeq(cs.Return)(yield)
				}
			}
			cc := c
			if v.DefaultVar != "" {
				cc = c.bind(v.DefaultVar, op)
			}
			return cc.evalSeq(v.Default)(yield)
		}
	case *xq.ForExpr:
		// The remote special cases (bulk and scatter dispatch) and order-by
		// loops gather whole results by design; evalFor owns them.
		if _, isRPC := v.Return.(*xq.XRPCExpr); (isRPC && c.eng.Remote != nil) || len(v.OrderBy) > 0 {
			return c.deferEval(e)
		}
		return c.forSeq(v)
	case *xq.PathExpr:
		return c.pathSeq(v)
	default:
		return c.deferEval(e)
	}
}

// deferEval wraps the eager evaluator in a Seq: nothing runs until the first
// pull, then the whole subexpression materializes and replays.
func (c *context) deferEval(e xq.Expr) xdm.Seq {
	return func(yield func(xdm.Item) bool) error {
		s, err := c.eval(e)
		if err != nil {
			return err
		}
		for _, it := range s {
			if !yield(it) {
				return nil
			}
		}
		return nil
	}
}

// forSeq streams a FLWOR loop without order-by: each iteration's body items
// are yielded before the next input item is even pulled. The loop-invariant
// hoisting heuristic of evalFor (only rewrite loops with more than 4
// iterations) is preserved by buffering the first inputs until the heuristic
// decides, so the lazy and eager paths hoist identically.
func (c *context) forSeq(v *xq.ForExpr) xdm.Seq {
	return func(yield func(xdm.Item) bool) error {
		if err := c.stop.check(); err != nil {
			return err
		}
		ret := v.Return
		bound := c
		hoisted := false
		runBody := func(it xdm.Item) (bool, error) {
			ic := bound.bind(v.Var, xdm.Singleton(it))
			stopped := false
			err := ic.evalSeq(ret)(func(x xdm.Item) bool {
				if !yield(x) {
					stopped = true
					return false
				}
				return true
			})
			return !stopped, err
		}
		var buf xdm.Sequence // first inputs held until the hoist decision
		var inErr error
		stopped := false
		err := c.evalSeq(v.In)(func(it xdm.Item) bool {
			if !hoisted {
				buf = append(buf, it)
				if len(buf) <= 4 {
					return true
				}
				hoisted = true
				if h, bindings := hoistInvariantOperands(ret, v.Var); len(bindings) > 0 {
					ret = h
					for _, b := range bindings {
						val, err := c.eval(b.expr)
						if err != nil {
							inErr = err
							return false
						}
						bound = bound.bind(b.name, val)
					}
				}
				for _, b := range buf {
					cont, err := runBody(b)
					if err != nil || !cont {
						inErr, stopped = err, !cont
						return false
					}
				}
				buf = nil
				return true
			}
			cont, err := runBody(it)
			if err != nil || !cont {
				inErr, stopped = err, !cont
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if inErr != nil {
			return inErr
		}
		if stopped {
			return nil
		}
		for _, b := range buf { // short loop: never hoisted, replay now
			cont, err := runBody(b)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}
}

// pathSeq streams the final step of a path when that is provably
// order-preserving; the leading steps always evaluate eagerly through
// evalPath (they are context for the last step, not output). When the final
// step cannot stream, the whole path defers to the eager evaluator.
func (c *context) pathSeq(pe *xq.PathExpr) xdm.Seq {
	n := len(pe.Steps)
	if n == 0 || !stepStreamable(pe.Steps[n-1]) {
		return c.deferEval(pe)
	}
	last := pe.Steps[n-1]
	return func(yield func(xdm.Item) bool) error {
		if err := c.stop.check(); err != nil {
			return err
		}
		head := *pe
		head.Steps = pe.Steps[:n-1]
		cur, err := c.evalPath(&head)
		if err != nil {
			return err
		}
		if last.Filter {
			return c.filterItemsSeq(cur, last.Preds, yield)
		}
		nodes, ok := cur.Nodes()
		if !ok {
			return fmt.Errorf("eval: path step %s::%s applied to atomic value", last.Axis, last.Test)
		}
		if len(nodes) > 1 && !xdm.OrderedDisjointNodes(nodes) {
			// Overlapping or unordered context (e.g. the child step of a
			// desugared //): a sort barrier is required, so materialize.
			gathered, err := c.evalStep(nodes, last, nil)
			if err != nil {
				return err
			}
			for _, m := range gathered {
				if !yield(m) {
					return nil
				}
			}
			return nil
		}
		return c.streamStep(nodes, last, yield)
	}
}

// stepStreamable reports whether a path step can stream: predicates must not
// observe last() (position() is fine — it accumulates incrementally), and a
// node step's axis must enumerate descendants of its context node only, so
// that ordered disjoint context nodes concatenate in document order.
func stepStreamable(st *xq.Step) bool {
	for _, p := range st.Preds {
		if usesLast(p) {
			return false
		}
	}
	if st.Filter {
		return true
	}
	switch st.Axis {
	case xq.AxisChild, xq.AxisAttribute, xq.AxisSelf, xq.AxisDescendant, xq.AxisDescendantOrSelf:
		return true
	}
	return false
}

// usesLast reports whether the expression syntactically calls last().
// Declared functions cannot observe the caller's focus (callDeclared drops
// it), so scanning the predicate expression itself is sufficient. The scan is
// conservative: a last() in a nested step's own predicate (whose focus is
// that step's, not ours) also disables streaming.
func usesLast(e xq.Expr) bool {
	found := false
	xq.Walk(e, func(sub xq.Expr) bool {
		if fc, ok := sub.(*xq.FunCall); ok {
			if strings.TrimPrefix(fc.Name, "fn:") == "last" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// nodeSink consumes one candidate node of a streamed step. It returns false
// to end the walk early (consumer satisfied) and an error to abort it.
type nodeSink func(*xdm.Node) (bool, error)

// streamStep yields the final step's result incrementally: per context node,
// walk the axis in document order and push candidates through the predicate
// chain straight to the consumer. Position counters reset per context node,
// matching the eager per-segment predicate semantics. The concatenation of
// segments is in distinct document order by the OrderedDisjointNodes
// precondition, so no sort barrier is needed.
func (c *context) streamStep(nodes []*xdm.Node, st *xq.Step, yield func(xdm.Item) bool) error {
	for _, n := range nodes {
		sink := nodeSink(func(m *xdm.Node) (bool, error) {
			return yield(m), nil
		})
		for i := len(st.Preds) - 1; i >= 0; i-- {
			sink = c.predSink(st.Preds[i], sink)
		}
		cont, err := c.walkAxis(n, st.Axis, st.Test, sink)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// predSink wraps a sink with one streaming predicate: position is the
// 1-based count of candidates reaching this predicate (i.e. survivors of the
// preceding ones), exactly the eager filterPreds numbering. The context size
// is left unset — stepStreamable guarantees the predicate never calls
// last(), the only observer of size.
func (c *context) predSink(pred xq.Expr, next nodeSink) nodeSink {
	pos := 0
	return func(n *xdm.Node) (bool, error) {
		pos++
		keep, err := c.evalStreamPred(pred, n, pos)
		if err != nil {
			return false, err
		}
		if !keep {
			return true, nil
		}
		return next(n)
	}
}

// evalStreamPred decides one candidate of a streaming predicate: numeric
// values select by position, everything else by effective boolean value.
func (c *context) evalStreamPred(pred xq.Expr, it xdm.Item, pos int) (bool, error) {
	pc := c.withItem(it, pos, 0)
	s, err := pc.eval(pred)
	if err != nil {
		return false, err
	}
	if len(s) == 1 {
		if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
			return int(a.Number()) == pos, nil
		}
	}
	b, ok := s.EffectiveBoolean()
	if !ok {
		return false, fmt.Errorf("eval: invalid predicate value")
	}
	return b, nil
}

// filterItemsSeq streams a final filter step over a materialized input
// sequence: positions count over the whole sequence per predicate layer, as
// in the eager filterItems.
func (c *context) filterItemsSeq(items xdm.Sequence, preds []xq.Expr, yield func(xdm.Item) bool) error {
	sink := func(it xdm.Item) (bool, error) {
		return yield(it), nil
	}
	for i := len(preds) - 1; i >= 0; i-- {
		pred, next := preds[i], sink
		pos := 0
		sink = func(it xdm.Item) (bool, error) {
			pos++
			keep, err := c.evalStreamPred(pred, it, pos)
			if err != nil {
				return false, err
			}
			if !keep {
				return true, nil
			}
			return next(it)
		}
	}
	for _, it := range items {
		if err := c.stop.check(); err != nil {
			return err
		}
		cont, err := sink(it)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// walkAxis enumerates the axis of one context node in document order,
// feeding matching nodes to the sink. It returns false when the sink ended
// the walk early. The deadline check runs per visited node — a streamed huge
// step is exactly the evaluation a budget must be able to cut mid-flight.
func (c *context) walkAxis(n *xdm.Node, axis xq.Axis, test xq.NodeTest, sink nodeSink) (bool, error) {
	emit := func(m *xdm.Node) (bool, error) {
		if err := c.stop.check(); err != nil {
			return false, err
		}
		if !matchTest(m, axis, test) {
			return true, nil
		}
		return sink(m)
	}
	switch axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return true, nil
		}
		for _, ch := range n.Children {
			if cont, err := emit(ch); !cont || err != nil {
				return cont, err
			}
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			if cont, err := emit(a); !cont || err != nil {
				return cont, err
			}
		}
	case xq.AxisSelf:
		return emit(n)
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			if cont, err := walkSubtree(ch, emit); !cont || err != nil {
				return cont, err
			}
		}
	case xq.AxisDescendantOrSelf:
		return walkSubtree(n, emit)
	default:
		return false, fmt.Errorf("eval: axis %s is not streamable", axis)
	}
	return true, nil
}

// walkSubtree visits n and its descendants (attributes excluded) in document
// order with error/stop propagation — WalkDescendants with a fallible visitor.
func walkSubtree(n *xdm.Node, emit func(*xdm.Node) (bool, error)) (bool, error) {
	if cont, err := emit(n); !cont || err != nil {
		return cont, err
	}
	for _, ch := range n.Children {
		if cont, err := walkSubtree(ch, emit); !cont || err != nil {
			return cont, err
		}
	}
	return true, nil
}
