package eval

import (
	"fmt"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// evalPath evaluates a (possibly multi-step) path expression. Each step maps
// the current node sequence through its axis and node test, filters by
// predicates, and re-establishes distinct document order — the XPath
// semantics whose preservation under node shipping is the core concern of
// the paper.
func (c *context) evalPath(pe *xq.PathExpr) (xdm.Sequence, error) {
	var cur xdm.Sequence
	switch {
	case pe.Input != nil:
		s, err := c.eval(pe.Input)
		if err != nil {
			return nil, err
		}
		cur = s
	case c.item != nil:
		cur = xdm.Singleton(c.item)
	default:
		return nil, fmt.Errorf("eval: relative path with undefined context item")
	}
	// Node steps work on two scratch buffers that ping-pong between "current
	// context nodes" and "gather target", so a multi-step path allocates at
	// most two node slices total instead of one per context node per step.
	var curNodes, spare []*xdm.Node
	haveNodes := false
	for _, st := range pe.Steps {
		if st.Filter {
			if haveNodes {
				cur = xdm.NodeSeq(curNodes)
				haveNodes = false
			}
			filtered, err := c.filterItems(cur, st.Preds)
			if err != nil {
				return nil, err
			}
			cur = filtered
			continue
		}
		nodes := curNodes
		if !haveNodes {
			var ok bool
			nodes, ok = cur.Nodes()
			if !ok {
				return nil, fmt.Errorf("eval: path step %s::%s applied to atomic value", st.Axis, st.Test)
			}
		}
		gathered, err := c.evalStep(nodes, st, spare[:0])
		if err != nil {
			return nil, err
		}
		spare = nodes[:0] // the consumed context buffer becomes the next target
		curNodes, haveNodes = gathered, true
	}
	if haveNodes {
		cur = xdm.NodeSeq(curNodes)
	}
	return cur, nil
}

// evalStep maps one non-filter path step over its context nodes: per context
// node, gather the axis candidates and apply the step predicates within that
// segment, then re-establish distinct document order across segments. dst is
// the gather buffer (evalPath passes its ping-pong scratch slice). A single
// context node yields document-ordered, duplicate-free results on every axis;
// only unions across context nodes can disturb order (and SortDocOrder
// detects ordered unions in O(n)).
func (c *context) evalStep(nodes []*xdm.Node, st *xq.Step, dst []*xdm.Node) ([]*xdm.Node, error) {
	gathered := dst
	for _, n := range nodes {
		start := len(gathered)
		gathered = appendAxisNodes(gathered, n, st.Axis, st.Test)
		if len(st.Preds) > 0 {
			seg, err := c.filterPreds(gathered[start:], st.Preds)
			if err != nil {
				return nil, err
			}
			gathered = gathered[:start+len(seg)]
		}
	}
	if len(nodes) > 1 {
		gathered = xdm.SortDocOrder(gathered)
	}
	return gathered, nil
}

// filterItems applies filter-expression predicates over a whole sequence
// (which may include atomic items); a numeric predicate selects by position
// within the entire sequence.
func (c *context) filterItems(items xdm.Sequence, preds []xq.Expr) (xdm.Sequence, error) {
	for _, pred := range preds {
		kept := xdm.Sequence{}
		size := len(items)
		for i, it := range items {
			pc := c.withItem(it, i+1, size)
			s, err := pc.eval(pred)
			if err != nil {
				return nil, err
			}
			if len(s) == 1 {
				if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
					if int(a.Number()) == i+1 {
						kept = append(kept, it)
					}
					continue
				}
			}
			b, ok := s.EffectiveBoolean()
			if !ok {
				return nil, fmt.Errorf("eval: invalid predicate value")
			}
			if b {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}

// filterPreds applies the step predicates to a candidate list. A predicate
// evaluating to a number selects by position (1-based over the candidates as
// given, i.e. document order — a known deviation from XPath for reverse
// axes, where position should count from the context node outward); otherwise
// its effective boolean value filters. The input slice is compacted in place;
// the returned slice aliases it.
func (c *context) filterPreds(nodes []*xdm.Node, preds []xq.Expr) ([]*xdm.Node, error) {
	for _, pred := range preds {
		kept := nodes[:0]
		size := len(nodes)
		for i, n := range nodes {
			pc := c.withItem(n, i+1, size)
			s, err := pc.eval(pred)
			if err != nil {
				return nil, err
			}
			if len(s) == 1 {
				if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
					if int(a.Number()) == i+1 {
						kept = append(kept, n)
					}
					continue
				}
			}
			b, ok := s.EffectiveBoolean()
			if !ok {
				return nil, fmt.Errorf("eval: invalid predicate value")
			}
			if b {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes, nil
}

// AxisNodes returns the nodes reached from n over the axis that satisfy the
// node test, in document order. It is exported for the projection package,
// which evaluates projection paths with the engine's own axis semantics
// (§VI-B: runtime projection "relies on the normal XPath evaluation
// capabilities of the XQuery engine").
func AxisNodes(n *xdm.Node, axis xq.Axis, test xq.NodeTest) []*xdm.Node {
	return appendAxisNodes(nil, n, axis, test)
}

// appendAxisNodes appends the nodes reached from n over the axis that satisfy
// the node test to dst, in document order, and returns the extended slice.
// Appending lets evalPath gather a whole step into one reusable buffer.
func appendAxisNodes(dst []*xdm.Node, n *xdm.Node, axis xq.Axis, test xq.NodeTest) []*xdm.Node {
	switch axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return dst
		}
		for _, ch := range n.Children {
			if matchTest(ch, axis, test) {
				dst = append(dst, ch)
			}
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			if matchTest(a, axis, test) {
				dst = append(dst, a)
			}
		}
	case xq.AxisSelf:
		if matchTest(n, axis, test) {
			dst = append(dst, n)
		}
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			ch.WalkDescendants(func(m *xdm.Node) bool {
				if matchTest(m, axis, test) {
					dst = append(dst, m)
				}
				return true
			})
		}
	case xq.AxisDescendantOrSelf:
		n.WalkDescendants(func(m *xdm.Node) bool {
			if matchTest(m, axis, test) {
				dst = append(dst, m)
			}
			return true
		})
	case xq.AxisParent:
		if n.Parent != nil && matchTest(n.Parent, axis, test) {
			dst = append(dst, n.Parent)
		}
	case xq.AxisAncestor, xq.AxisAncestorOrSelf:
		start := n.Parent
		if axis == xq.AxisAncestorOrSelf {
			start = n
		}
		first := len(dst)
		for p := start; p != nil; p = p.Parent {
			if matchTest(p, axis, test) {
				dst = append(dst, p)
			}
		}
		// document order: root first
		for i, j := first, len(dst)-1; i < j; i, j = i+1, j-1 {
			dst[i], dst[j] = dst[j], dst[i]
		}
	case xq.AxisFollowingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return dst
		}
		sibs := n.Parent.Children
		idx := int(n.SiblingIndex())
		if idx >= len(sibs) || sibs[idx] != n {
			idx = -1
			for i, sib := range sibs {
				if sib == n {
					idx = i
					break
				}
			}
			if idx < 0 {
				return dst
			}
		}
		for _, sib := range sibs[idx+1:] {
			if matchTest(sib, axis, test) {
				dst = append(dst, sib)
			}
		}
	case xq.AxisPrecedingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return dst
		}
		for _, sib := range n.Parent.Children {
			if sib == n {
				break
			}
			if matchTest(sib, axis, test) {
				dst = append(dst, sib)
			}
		}
	case xq.AxisFollowing:
		start := n
		if n.Kind == xdm.AttributeNode {
			start = n.Parent
		}
		for f := start.Following(); f != nil; f = f.NextInDocument() {
			if matchTest(f, axis, test) {
				dst = append(dst, f)
			}
		}
	case xq.AxisPreceding:
		// All nodes before n in document order, excluding ancestors (the
		// ancestor test is an O(1) pre/size interval check on frozen trees).
		root := n.RootNode()
		target := n
		if n.Kind == xdm.AttributeNode {
			target = n.Parent
		}
		root.WalkDescendants(func(m *xdm.Node) bool {
			if m == target {
				return false
			}
			if !m.IsAncestorOf(target) && matchTest(m, axis, test) {
				dst = append(dst, m)
			}
			return true
		})
	}
	return dst
}

// matchTest applies the node test. The principal node kind of the attribute
// axis is attribute; of every other axis, element.
func matchTest(n *xdm.Node, axis xq.Axis, test xq.NodeTest) bool {
	switch test.Kind {
	case xq.TestAnyNode:
		return true
	case xq.TestText:
		return n.Kind == xdm.TextNode
	case xq.TestComment:
		return n.Kind == xdm.CommentNode
	case xq.TestWildcard:
		if axis == xq.AxisAttribute {
			return n.Kind == xdm.AttributeNode
		}
		return n.Kind == xdm.ElementNode
	case xq.TestName:
		if axis == xq.AxisAttribute {
			return n.Kind == xdm.AttributeNode && n.Name == test.Name
		}
		return n.Kind == xdm.ElementNode && n.Name == test.Name
	}
	return false
}
