package eval

import (
	"fmt"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// evalPath evaluates a (possibly multi-step) path expression. Each step maps
// the current node sequence through its axis and node test, filters by
// predicates, and re-establishes distinct document order — the XPath
// semantics whose preservation under node shipping is the core concern of
// the paper.
func (c *context) evalPath(pe *xq.PathExpr) (xdm.Sequence, error) {
	var cur xdm.Sequence
	switch {
	case pe.Input != nil:
		s, err := c.eval(pe.Input)
		if err != nil {
			return nil, err
		}
		cur = s
	case c.item != nil:
		cur = xdm.Singleton(c.item)
	default:
		return nil, fmt.Errorf("eval: relative path with undefined context item")
	}
	for _, st := range pe.Steps {
		if st.Filter {
			filtered, err := c.filterItems(cur, st.Preds)
			if err != nil {
				return nil, err
			}
			cur = filtered
			continue
		}
		nodes, ok := cur.Nodes()
		if !ok {
			return nil, fmt.Errorf("eval: path step %s::%s applied to atomic value", st.Axis, st.Test)
		}
		var gathered []*xdm.Node
		for _, n := range nodes {
			res := axisNodes(n, st.Axis, st.Test)
			res, err := c.filterPreds(res, st.Preds)
			if err != nil {
				return nil, err
			}
			gathered = append(gathered, res...)
		}
		gathered = xdm.SortDocOrder(gathered)
		cur = xdm.NodeSeq(gathered)
	}
	return cur, nil
}

// filterItems applies filter-expression predicates over a whole sequence
// (which may include atomic items); a numeric predicate selects by position
// within the entire sequence.
func (c *context) filterItems(items xdm.Sequence, preds []xq.Expr) (xdm.Sequence, error) {
	for _, pred := range preds {
		kept := xdm.Sequence{}
		size := len(items)
		for i, it := range items {
			pc := c.withItem(it, i+1, size)
			s, err := pc.eval(pred)
			if err != nil {
				return nil, err
			}
			if len(s) == 1 {
				if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
					if int(a.Number()) == i+1 {
						kept = append(kept, it)
					}
					continue
				}
			}
			b, ok := s.EffectiveBoolean()
			if !ok {
				return nil, fmt.Errorf("eval: invalid predicate value")
			}
			if b {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}

// filterPreds applies the step predicates to a candidate list. A predicate
// evaluating to a number selects by position (1-based, in axis order, which
// for our forward evaluation is document order); otherwise its effective
// boolean value filters.
func (c *context) filterPreds(nodes []*xdm.Node, preds []xq.Expr) ([]*xdm.Node, error) {
	for _, pred := range preds {
		var kept []*xdm.Node
		size := len(nodes)
		for i, n := range nodes {
			pc := c.withItem(n, i+1, size)
			s, err := pc.eval(pred)
			if err != nil {
				return nil, err
			}
			if len(s) == 1 {
				if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
					if int(a.Number()) == i+1 {
						kept = append(kept, n)
					}
					continue
				}
			}
			b, ok := s.EffectiveBoolean()
			if !ok {
				return nil, fmt.Errorf("eval: invalid predicate value")
			}
			if b {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes, nil
}

// AxisNodes returns the nodes reached from n over the axis that satisfy the
// node test, in document order. It is exported for the projection package,
// which evaluates projection paths with the engine's own axis semantics
// (§VI-B: runtime projection "relies on the normal XPath evaluation
// capabilities of the XQuery engine").
func AxisNodes(n *xdm.Node, axis xq.Axis, test xq.NodeTest) []*xdm.Node {
	return axisNodes(n, axis, test)
}

// axisNodes returns the nodes reached from n over the axis that satisfy the
// node test, in document order.
func axisNodes(n *xdm.Node, axis xq.Axis, test xq.NodeTest) []*xdm.Node {
	var out []*xdm.Node
	add := func(m *xdm.Node) {
		if matchTest(m, axis, test) {
			out = append(out, m)
		}
	}
	switch axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return nil
		}
		for _, ch := range n.Children {
			add(ch)
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			add(a)
		}
	case xq.AxisSelf:
		add(n)
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			ch.WalkDescendants(func(m *xdm.Node) bool { add(m); return true })
		}
	case xq.AxisDescendantOrSelf:
		n.WalkDescendants(func(m *xdm.Node) bool { add(m); return true })
	case xq.AxisParent:
		if n.Parent != nil {
			add(n.Parent)
		}
	case xq.AxisAncestor:
		var anc []*xdm.Node
		for p := n.Parent; p != nil; p = p.Parent {
			anc = append(anc, p)
		}
		for i := len(anc) - 1; i >= 0; i-- { // document order: root first
			add(anc[i])
		}
	case xq.AxisAncestorOrSelf:
		var anc []*xdm.Node
		for p := n; p != nil; p = p.Parent {
			anc = append(anc, p)
		}
		for i := len(anc) - 1; i >= 0; i-- {
			add(anc[i])
		}
	case xq.AxisFollowingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return nil
		}
		seen := false
		for _, sib := range n.Parent.Children {
			if sib == n {
				seen = true
				continue
			}
			if seen {
				add(sib)
			}
		}
	case xq.AxisPrecedingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return nil
		}
		for _, sib := range n.Parent.Children {
			if sib == n {
				break
			}
			add(sib)
		}
	case xq.AxisFollowing:
		start := n
		if n.Kind == xdm.AttributeNode {
			start = n.Parent
		}
		for f := start.Following(); f != nil; f = f.NextInDocument() {
			add(f)
		}
	case xq.AxisPreceding:
		// All nodes before n in document order, excluding ancestors.
		root := n.RootNode()
		target := n
		if n.Kind == xdm.AttributeNode {
			target = n.Parent
		}
		root.WalkDescendants(func(m *xdm.Node) bool {
			if m == target {
				return false
			}
			if !m.IsAncestorOf(target) {
				add(m)
			}
			return true
		})
	}
	return out
}

// matchTest applies the node test. The principal node kind of the attribute
// axis is attribute; of every other axis, element.
func matchTest(n *xdm.Node, axis xq.Axis, test xq.NodeTest) bool {
	switch test.Kind {
	case xq.TestAnyNode:
		return true
	case xq.TestText:
		return n.Kind == xdm.TextNode
	case xq.TestComment:
		return n.Kind == xdm.CommentNode
	case xq.TestWildcard:
		if axis == xq.AxisAttribute {
			return n.Kind == xdm.AttributeNode
		}
		return n.Kind == xdm.ElementNode
	case xq.TestName:
		if axis == xq.AxisAttribute {
			return n.Kind == xdm.AttributeNode && n.Name == test.Name
		}
		return n.Kind == xdm.ElementNode && n.Name == test.Name
	}
	return false
}
